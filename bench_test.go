// Benchmarks regenerating the paper's evaluation: one benchmark per
// table and figure (Sections 5-7). Custom metrics carry the columns
// the paper reports (element rates, rollbacks, overhead seconds,
// transfer counts); EXPERIMENTS.md interprets them against the paper.
//
//	go test -bench=. -benchmem
//
// The benchmarks use reduced phantom scales so the full suite runs in
// minutes; cmd/experiments runs the same studies at larger scales.
package pi2m

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fem"
	"repro/internal/geom"
	"repro/internal/img"
	"repro/internal/meshio"
	"repro/internal/quality"
	"repro/internal/smooth"
)

const benchScale = 64

// BenchmarkTable1_CM compares the four contention managers (paper
// Table 1): time, rollbacks, and overhead seconds per scheme.
func BenchmarkTable1_CM(b *testing.B) {
	im := experiments.Abdominal(benchScale)
	for _, cmName := range []string{"aggressive", "random", "global", "local"} {
		b.Run(cmName, func(b *testing.B) {
			var rollbacks, elements int64
			var overhead float64
			for i := 0; i < b.N; i++ {
				res, err := core.Run(core.Config{
					Image:             im,
					Workers:           4,
					ContentionManager: cmName,
					LivelockTimeout:   60 * time.Second,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Livelocked {
					b.Skip("livelocked (expected for aggressive/random at scale)")
				}
				rollbacks += res.Stats.Rollbacks
				elements += int64(res.Elements())
				overhead += float64(res.Stats.TotalOverheadNs()) / 1e9
			}
			b.ReportMetric(float64(rollbacks)/float64(b.N), "rollbacks/run")
			b.ReportMetric(overhead/float64(b.N), "overhead-s/run")
			b.ReportMetric(float64(elements)/float64(b.N), "elements/run")
		})
	}
}

// BenchmarkFig5_StrongScaling compares RWS and HWS across thread
// counts (paper Figure 5): wall time and inter-blade transfers.
func BenchmarkFig5_StrongScaling(b *testing.B) {
	im := experiments.Abdominal(benchScale)
	for _, bal := range []string{"rws", "hws"} {
		for _, workers := range []int{1, 2, 4} {
			b.Run(bal+"/"+itoa(workers), func(b *testing.B) {
				var interBlade, total int64
				for i := 0; i < b.N; i++ {
					res, err := core.Run(core.Config{
						Image:           im,
						Workers:         workers,
						Balancer:        bal,
						LivelockTimeout: 60 * time.Second,
					})
					if err != nil {
						b.Fatal(err)
					}
					interBlade += res.Stats.Transfers.InterBlade
					total += res.Stats.Transfers.Total()
				}
				b.ReportMetric(float64(interBlade)/float64(b.N), "interblade/run")
				b.ReportMetric(float64(total)/float64(b.N), "transfers/run")
			})
		}
	}
}

// BenchmarkTable4_WeakScaling grows the problem with the thread count
// via δ(n) = δ1 n^(-1/3) (paper Table 4): elements per second is the
// headline metric.
func BenchmarkTable4_WeakScaling(b *testing.B) {
	for _, input := range []string{"abdominal", "knee"} {
		im := map[string]*img.Image{
			"abdominal": experiments.Abdominal(benchScale),
			"knee":      experiments.Knee(benchScale),
		}[input]
		delta1 := 2 * im.MinSpacing()
		for _, workers := range []int{1, 2, 4} {
			b.Run(input+"/"+itoa(workers), func(b *testing.B) {
				delta := delta1 * math.Pow(float64(workers), -1.0/3.0)
				var elements int64
				var secs float64
				for i := 0; i < b.N; i++ {
					res, err := core.Run(core.Config{
						Image:           im,
						Workers:         workers,
						Delta:           delta,
						LivelockTimeout: 60 * time.Second,
					})
					if err != nil {
						b.Fatal(err)
					}
					elements += int64(res.Elements())
					secs += res.TotalTime.Seconds()
				}
				b.ReportMetric(float64(elements)/secs, "elements/s")
				b.ReportMetric(float64(elements)/float64(b.N), "elements/run")
			})
		}
	}
}

// BenchmarkTable5_HyperThreading oversubscribes two workers per
// modeled core (paper Table 5).
func BenchmarkTable5_HyperThreading(b *testing.B) {
	im := experiments.Abdominal(benchScale)
	for _, cores := range []int{1, 2, 4} {
		b.Run(itoa(cores)+"cores", func(b *testing.B) {
			var elements int64
			var secs, overhead float64
			for i := 0; i < b.N; i++ {
				res, err := core.Run(core.Config{
					Image:           im,
					Workers:         2 * cores,
					LivelockTimeout: 60 * time.Second,
				})
				if err != nil {
					b.Fatal(err)
				}
				elements += int64(res.Elements())
				secs += res.TotalTime.Seconds()
				overhead += float64(res.Stats.TotalOverheadNs()) / 1e9 / float64(2*cores)
			}
			b.ReportMetric(float64(elements)/secs, "elements/s")
			b.ReportMetric(overhead/float64(b.N), "overhead-s/thread")
		})
	}
}

// BenchmarkFig6_Timeline runs the overhead-timeline configuration
// (paper Figure 6) and reports the final cumulative overhead.
func BenchmarkFig6_Timeline(b *testing.B) {
	im := experiments.Abdominal(benchScale)
	var overhead float64
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.Config{
			Image:           im,
			Workers:         4,
			TimelineSample:  10 * time.Millisecond,
			LivelockTimeout: 60 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		if n := len(res.Timeline); n > 0 {
			overhead += float64(res.Timeline[n-1].OverheadNs) / 1e9
		}
	}
	b.ReportMetric(overhead/float64(b.N), "final-overhead-s")
}

// BenchmarkTable6_SingleThread compares single-threaded PI2M against
// the CGAL and TetGen stand-ins (paper Table 6): tetrahedra per
// second.
func BenchmarkTable6_SingleThread(b *testing.B) {
	for _, input := range []string{"knee", "headneck"} {
		im := map[string]*img.Image{
			"knee":     experiments.Knee(benchScale),
			"headneck": experiments.HeadNeck(benchScale),
		}[input]

		b.Run(input+"/PI2M", func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				res, err := core.Run(core.Config{
					Image:           im,
					Workers:         1,
					LivelockTimeout: 60 * time.Second,
				})
				if err != nil {
					b.Fatal(err)
				}
				rate += res.ElementsPerSecond()
			}
			b.ReportMetric(rate/float64(b.N), "tets/s")
		})
		b.Run(input+"/SeqMesher", func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				res, err := baseline.SeqMesh(im, baseline.Options{})
				if err != nil {
					b.Fatal(err)
				}
				rate += res.ElementsPerSecond()
			}
			b.ReportMetric(rate/float64(b.N), "tets/s")
		})
		b.Run(input+"/PLCMesher", func(b *testing.B) {
			// The PLC input is PI2M's recovered boundary, built once.
			pi, err := core.Run(core.Config{Image: im, Workers: 1, LivelockTimeout: 60 * time.Second})
			if err != nil {
				b.Fatal(err)
			}
			tris := quality.BoundaryTriangles(pi.Mesh, pi.Final, im)
			b.ResetTimer()
			var rate float64
			for i := 0; i < b.N; i++ {
				res, err := baseline.PLCMesh(im, tris, baseline.Options{})
				if err != nil {
					b.Fatal(err)
				}
				rate += res.ElementsPerSecond()
			}
			b.ReportMetric(rate/float64(b.N), "tets/s")
		})
	}
}

// BenchmarkAblation_Removals measures the cost/benefit of rule R6
// (DESIGN.md ablation: the paper's removals are its key novelty).
func BenchmarkAblation_Removals(b *testing.B) {
	im := img.TorusPhantom(benchScale)
	for _, disable := range []bool{false, true} {
		name := "withR6"
		if disable {
			name = "withoutR6"
		}
		b.Run(name, func(b *testing.B) {
			var elements, removals int64
			for i := 0; i < b.N; i++ {
				res, err := core.Run(core.Config{
					Image:           im,
					Workers:         2,
					DisableRemovals: disable,
					LivelockTimeout: 60 * time.Second,
				})
				if err != nil {
					b.Fatal(err)
				}
				elements += int64(res.Elements())
				removals += res.Stats.Removals
			}
			b.ReportMetric(float64(elements)/float64(b.N), "elements/run")
			b.ReportMetric(float64(removals)/float64(b.N), "removals/run")
		})
	}
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + itoa(n%10)
}

// BenchmarkAblation_QualityVsSolver quantifies the paper's motivating
// claim — "the robustness and accuracy of the solver rely on the
// quality of the mesh" — by solving the same Poisson problem on the
// PI2M quality mesh and on a degraded copy (interior vertices jittered
// toward element inversion, as an unguarded mesh-processing step would
// leave them): the conditioning gap shows up as CG iterations.
func BenchmarkAblation_QualityVsSolver(b *testing.B) {
	im := img.SpherePhantom(48)
	res, err := core.Run(core.Config{Image: im, Workers: 1, LivelockTimeout: 60 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	ext := smooth.Extract(res.Mesh, res.Final, im)

	build := func(verts []geom.Vec3) *fem.System {
		raw := &meshio.RawMesh{Verts: verts, Cells: ext.Cells}
		dir := map[int32]float64{}
		for _, tr := range ext.BoundaryTris {
			for _, v := range tr {
				dir[v] = verts[v].Z
			}
		}
		sys, err := fem.Assemble(&fem.Problem{Mesh: raw, Dirichlet: dir})
		if err != nil {
			b.Fatal(err)
		}
		return sys
	}

	// Degrade: pull every interior vertex most of the way toward one of
	// its cells' opposite faces (guarded against full inversion).
	degraded := append([]geom.Vec3(nil), ext.Verts...)
	onBoundary := make([]bool, len(degraded))
	for _, tr := range ext.BoundaryTris {
		for _, v := range tr {
			onBoundary[v] = true
		}
	}
	rng := rand.New(rand.NewSource(4))
	for _, cell := range ext.Cells {
		v := cell[rng.Intn(4)]
		if onBoundary[v] {
			continue
		}
		// Move toward the centroid of the cell's other three vertices.
		var c geom.Vec3
		n := 0
		for _, u := range cell {
			if u != v {
				c = c.Add(degraded[u])
				n++
			}
		}
		c = c.Scale(1 / float64(n))
		trial := degraded[v].Lerp(c, 0.95)
		old := degraded[v]
		degraded[v] = trial
		// Keep validity: revert if any cell inverted.
		ok := true
		for _, cl := range ext.Cells {
			if geom.TetraVolume(degraded[cl[0]], degraded[cl[1]], degraded[cl[2]], degraded[cl[3]]) <= 0 {
				ok = false
				break
			}
		}
		if !ok {
			degraded[v] = old
		}
	}

	for _, variant := range []struct {
		name  string
		verts []geom.Vec3
	}{{"quality", ext.Verts}, {"degraded", degraded}} {
		sys := build(variant.verts)
		b.Run(variant.name, func(b *testing.B) {
			var iters int
			for i := 0; i < b.N; i++ {
				sol, err := sys.Solve(1e-9, 100*sys.N)
				if err != nil {
					b.Fatal(err)
				}
				iters += sol.Iterations
			}
			b.ReportMetric(float64(iters)/float64(b.N), "cg-iters")
		})
	}
}

// BenchmarkAblation_Tuning sweeps the paper's tuned constants — the
// donation threshold ("we set that threshold equal to 5, since it
// yielded the best results", §4.4) and s+ ("the value for s+ is set to
// 10", §5.3) — so the tuning claims can be re-examined on any host.
func BenchmarkAblation_Tuning(b *testing.B) {
	im := experiments.Abdominal(benchScale)
	for _, donate := range []int{1, 5, 20} {
		b.Run(fmt.Sprintf("donate%d", donate), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(core.Config{
					Image:           im,
					Workers:         4,
					DonateThreshold: donate,
					LivelockTimeout: 60 * time.Second,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, sPlus := range []int{2, 10, 50} {
		b.Run(fmt.Sprintf("splus%d", sPlus), func(b *testing.B) {
			var rollbacks int64
			for i := 0; i < b.N; i++ {
				res, err := core.Run(core.Config{
					Image:           im,
					Workers:         4,
					SuccessLimit:    sPlus,
					LivelockTimeout: 60 * time.Second,
				})
				if err != nil {
					b.Fatal(err)
				}
				rollbacks += res.Stats.Rollbacks
			}
			b.ReportMetric(float64(rollbacks)/float64(b.N), "rollbacks/run")
		})
	}
}

// BenchmarkSession_ColdVsWarm measures the session tentpole: the
// per-run cost of a fresh session (allocate everything) against a
// reused one (reset-and-reuse arenas, grids, EDT buffers and cached
// transform). cmd/bench runs the same pair and emits BENCH_pr2.json.
func BenchmarkSession_ColdVsWarm(b *testing.B) {
	phantoms := []struct {
		name string
		im   *img.Image
	}{
		{"sphere", img.SpherePhantom(32)},
		{"torus", img.TorusPhantom(32)},
		{"abdominal", experiments.Abdominal(48)},
	}
	for _, ph := range phantoms {
		ph := ph
		b.Run(ph.name+"/cold", func(b *testing.B) {
			b.ReportAllocs()
			var elements int64
			for i := 0; i < b.N; i++ {
				s, err := NewSession(WithThreads(2), WithLivelockTimeout(time.Minute))
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.Run(nil, ph.im)
				if err != nil {
					b.Fatal(err)
				}
				elements += int64(res.Elements())
				s.Close()
			}
			b.ReportMetric(float64(elements)/b.Elapsed().Seconds(), "cells/s")
		})
		b.Run(ph.name+"/warm", func(b *testing.B) {
			s, err := NewSession(WithThreads(2), WithLivelockTimeout(time.Minute))
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			if _, err := s.Run(nil, ph.im); err != nil {
				b.Fatal(err) // prime the session outside the timer
			}
			b.ReportAllocs()
			b.ResetTimer()
			var elements int64
			for i := 0; i < b.N; i++ {
				res, err := s.Run(nil, ph.im)
				if err != nil {
					b.Fatal(err)
				}
				elements += int64(res.Elements())
			}
			b.ReportMetric(float64(elements)/b.Elapsed().Seconds(), "cells/s")
		})
	}
}
