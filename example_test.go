package pi2m_test

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"time"

	pi2m "repro"
)

// ExampleNewSession shows the context-first session API: build a
// session once, run it on an image, inspect the result.
func ExampleNewSession() {
	session, err := pi2m.NewSession(
		pi2m.WithThreads(1),
		pi2m.WithLivelockTimeout(time.Minute),
	)
	if err != nil {
		panic(err)
	}
	defer session.Close()

	image := pi2m.SpherePhantom(24)
	result, err := session.Run(context.Background(), image)
	if err != nil {
		panic(err)
	}

	topo := result.Topology()
	fmt.Println("status:", result.Status)
	fmt.Println("closed surface:", topo.Closed, "euler:", topo.Euler)
	// Output:
	// status: completed
	// closed surface: true euler: 2
}

// ExampleSession_Run shows warm reuse: the second Run on a session
// recycles the first run's arenas, grids and distance transform, and
// produces the identical mesh.
func ExampleSession_Run() {
	session, err := pi2m.NewSession(pi2m.WithThreads(1), pi2m.WithLivelockTimeout(time.Minute))
	if err != nil {
		panic(err)
	}
	defer session.Close()

	image := pi2m.SpherePhantom(24)
	cold, _ := session.Run(context.Background(), image)
	warm, _ := session.Run(context.Background(), image)

	stats := session.Stats()
	fmt.Println("runs:", stats.Runs, "warm:", stats.WarmRuns, "edt hits:", stats.WarmEDTHits)
	fmt.Println("same element count:", cold.Elements() == warm.Elements())
	// Output:
	// runs: 2 warm: 1 edt hits: 1
	// same element count: true
}

// ExampleRun shows the one-shot convenience wrapper kept for callers
// that mesh a single image.
func ExampleRun() {
	result, err := pi2m.Run(pi2m.Config{
		Image:           pi2m.SpherePhantom(24),
		Workers:         1,
		LivelockTimeout: time.Minute,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("status:", result.Status)
	// Output:
	// status: completed
}

// ExampleWriteVTK streams a mesh to any io.Writer — here an in-memory
// buffer — instead of a file path.
func ExampleWriteVTK() {
	session, _ := pi2m.NewSession(pi2m.WithThreads(1), pi2m.WithLivelockTimeout(time.Minute))
	defer session.Close()
	image := pi2m.SpherePhantom(16)
	result, err := session.Run(context.Background(), image)
	if err != nil {
		panic(err)
	}

	var buf bytes.Buffer
	if err := pi2m.WriteVTK(&buf, result.Mesh, result.Final, image); err != nil {
		panic(err)
	}
	line, _ := bufio.NewReader(&buf).ReadString('\n')
	fmt.Print(line)
	// Output:
	// # vtk DataFile Version 3.0
}
