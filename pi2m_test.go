package pi2m

import (
	"math"
	"testing"
	"time"
)

// TestPublicAPIRoundtrip exercises the facade end to end: phantom →
// run → quality → topology → export → NRRD roundtrip.
func TestPublicAPIRoundtrip(t *testing.T) {
	image := SpherePhantom(24)
	result, err := Run(Config{Image: image, Workers: 2, LivelockTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if result.Elements() == 0 {
		t.Fatal("empty mesh")
	}

	q := Evaluate(result.Mesh, result.Final, image)
	if q.MaxRadiusEdge > 2.5 {
		t.Errorf("radius-edge %v", q.MaxRadiusEdge)
	}
	tris := BoundaryTriangles(result.Mesh, result.Final, image)
	topo := SurfaceTopology(tris)
	if !topo.Closed || topo.Euler != 2 {
		t.Errorf("sphere topology: %v", topo)
	}

	dir := t.TempDir()
	if err := WriteVTKFile(dir+"/m.vtk", result.Mesh, result.Final, image); err != nil {
		t.Fatal(err)
	}
	if err := WriteOFFFile(dir+"/m.off", tris); err != nil {
		t.Fatal(err)
	}
	if err := WriteNRRDFile(dir+"/m.nrrd", image); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNRRDFile(dir + "/m.nrrd")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVoxels() != image.NumVoxels() {
		t.Fatal("NRRD roundtrip lost voxels")
	}

	sm := Extract(result.Mesh, result.Final, image)
	if len(sm.Cells) != result.Elements() {
		t.Fatal("extraction lost cells")
	}

	e := result.Energy(DefaultEnergyModel())
	if e.DVFSJoules > e.BusyWaitJoules {
		t.Error("energy model inverted")
	}
}

func TestPublicSizeFunctions(t *testing.T) {
	f := MinSize(UniformSize(5), BallSize(Vec3{X: 0, Y: 0, Z: 0}, 1, 2, 9))
	if got := f(Vec3{X: 0, Y: 0, Z: 0}); got != 2 {
		t.Errorf("composed size at center = %v", got)
	}
	if got := f(Vec3{X: 100, Y: 0, Z: 0}); got != 5 {
		t.Errorf("composed size far away = %v", got)
	}
	if !math.IsInf(MinSize()(Vec3{}), 1) {
		t.Error("empty MinSize")
	}
}
