// Multitissue: mesh the multi-label abdominal phantom (the stand-in
// for the paper's IRCAD atlas) and report per-tissue meshes — the
// conformal multi-material capability of Section 2 ("respecting at the
// same time the exterior and interior boundaries of tissues").
//
//	go run ./examples/multitissue
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/img"
	"repro/internal/meshio"
	"repro/internal/quality"
)

func main() {
	image := img.AbdominalPhantom(96, 96, 64)
	fmt.Printf("input: %dx%dx%d voxels, %d tissues\n",
		image.NX, image.NY, image.NZ, len(image.LabelVolumes()))

	// A size function densifies the small structures (vessels,
	// kidneys) more than the body envelope: custom densities are the
	// advantage the paper claims over voxel-spacing PLC methods.
	center := geom.Vec3{X: 48, Y: 54, Z: 32}
	result, err := core.Run(core.Config{
		Image: image,
		SizeFunc: func(p geom.Vec3) float64 {
			if p.Dist(center) < 20 {
				return 4 // fine near the aorta/kidney region
			}
			return 10 // coarse elsewhere
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("meshed %d tetrahedra in %v (R-counts %v)\n",
		result.Elements(), result.TotalTime.Round(time.Millisecond),
		result.Stats.RuleCounts)

	// Partition the final mesh by tissue.
	perTissue := map[img.Label]int{}
	for _, h := range result.Final {
		perTissue[image.LabelAt(result.Mesh.Cells.At(h).CC)]++
	}
	var labels []int
	for l := range perTissue {
		labels = append(labels, int(l))
	}
	sort.Ints(labels)
	names := map[int]string{
		1: "body", 2: "liver", 3: "left kidney",
		4: "right kidney", 5: "spine", 6: "aorta",
	}
	for _, l := range labels {
		fmt.Printf("  %-14s %6d tetrahedra\n", names[l], perTissue[img.Label(l)])
	}

	// The boundary set includes inter-tissue interfaces, not just the
	// outer surface.
	tris := quality.BoundaryTriangles(result.Mesh, result.Final, image)
	fmt.Printf("boundary + interface triangles: %d\n", len(tris))

	if err := meshio.WriteVTKFile("abdominal.vtk", result.Mesh, result.Final, image); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote abdominal.vtk (tissue labels as cell data)")
}
