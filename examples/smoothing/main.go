// Smoothing: the paper's future-work extension (Section 7) — CFD
// applications such as respiratory airway modeling want smooth mesh
// boundaries, but smoothing "tends to deteriorate quality" and must
// conserve volume. This example meshes the head-neck phantom (which
// contains an airway tube), applies volume-conserving Taubin smoothing
// to the boundary, and reports what happened to volume, roughness and
// element quality.
//
//	go run ./examples/smoothing
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/img"
	"repro/internal/meshio"
	"repro/internal/smooth"
)

func main() {
	image := img.HeadNeckPhantom(64, 64, 64)
	result, err := core.Run(core.Config{Image: image, LivelockTimeout: time.Minute})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("meshed %d tetrahedra\n", result.Elements())

	mesh := smooth.Extract(result.Mesh, result.Final, image)
	fmt.Printf("extracted: %d vertices, %d cells, %d boundary triangles\n",
		len(mesh.Verts), len(mesh.Cells), len(mesh.BoundaryTris))

	v0 := mesh.Volume()
	min0 := mesh.MinCellVolume()
	stats := mesh.Taubin(10, 0.5, -0.53)

	fmt.Println("\nvolume-conserving Taubin smoothing (10 iterations, λ=0.5 μ=-0.53):")
	fmt.Printf("  volume        %12.1f -> %12.1f (drift %+.3f%%)\n",
		v0, mesh.Volume(), 100*(mesh.Volume()-v0)/v0)
	fmt.Printf("  roughness     dropped by %.1f%%\n", 100*stats.RoughnessDrop)
	fmt.Printf("  displacements %d applied, %d reverted by the inversion guard\n",
		stats.Moved, stats.Reverted)
	fmt.Printf("  min cell vol  %.4g -> %.4g (still positive: %v)\n",
		min0, mesh.MinCellVolume(), mesh.MinCellVolume() > 0)

	raw := &meshio.RawMesh{Verts: mesh.Verts, Cells: mesh.Cells}
	for _, l := range mesh.Labels {
		raw.Labels = append(raw.Labels, int(l))
	}
	if err := meshio.WriteVTKRawFile("headneck-smoothed.vtk", raw); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote headneck-smoothed.vtk")
}
