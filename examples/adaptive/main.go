// Adaptive: the trade-off the paper highlights over PLC/voxel methods
// — "great control over the trade-off between quality and fidelity:
// parts of the isosurface of high curvature can be meshed with more
// elements" (Section 2). The vessel-tree phantom is meshed three ways:
// uniformly coarse, uniformly fine, and adaptively (fine δ only near
// the thin vessels, via a per-label surface-density function), showing
// the adaptive mesh matches fine-fidelity on the vessels at a fraction
// of the elements. A MaxElements budget caps the run for interactive
// use.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"time"

	pi2m "repro"
)

func mesh(image *pi2m.Image, cfg pi2m.Config) (int, int, time.Duration) {
	cfg.Image = image
	cfg.LivelockTimeout = time.Minute
	res, err := pi2m.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	vessels := 0
	for _, h := range res.Final {
		if image.LabelAt(res.Mesh.Cells.At(h).CC) == 2 {
			vessels++
		}
	}
	return res.Elements(), vessels, res.TotalTime
}

func main() {
	image := pi2m.VesselPhantom(96)

	// δ near the vessel tree (label 2) vs everywhere else.
	nearVessels := func(p pi2m.Vec3) float64 {
		if image.LabelAt(p) == 2 {
			return 1 // fine (clamped to Delta/4)
		}
		// Also fine just outside the vessel wall.
		for _, d := range []pi2m.Vec3{{X: 2}, {X: -2}, {Y: 2}, {Y: -2}, {Z: 2}, {Z: -2}} {
			if image.LabelAt(p.Add(d)) == 2 {
				return 1.5
			}
		}
		return 8 // coarse elsewhere
	}

	fmt.Println("meshing a branching vessel tree three ways:")
	fmt.Printf("%-22s %10s %14s %10s\n", "", "elements", "vessel cells", "time")

	e, v, d := mesh(image, pi2m.Config{Delta: 8})
	fmt.Printf("%-22s %10d %14d %10v\n", "uniform coarse (δ=8)", e, v, d.Round(time.Millisecond))

	e, v, d = mesh(image, pi2m.Config{Delta: 2})
	fmt.Printf("%-22s %10d %14d %10v\n", "uniform fine (δ=2)", e, v, d.Round(time.Millisecond))

	e, v, d = mesh(image, pi2m.Config{Delta: 8, DeltaFunc: nearVessels})
	fmt.Printf("%-22s %10d %14d %10v\n", "adaptive (δ=8→2)", e, v, d.Round(time.Millisecond))

	// A budgeted run for interactive preview.
	e, v, d = mesh(image, pi2m.Config{Delta: 2, MaxElements: 5000})
	fmt.Printf("%-22s %10d %14d %10v\n", "budgeted (≤5000)", e, v, d.Round(time.Millisecond))
}
