// Scaling: a strong-scaling demonstration sweeping worker counts,
// contention managers and load balancers on one input — a small
// interactive version of the paper's Sections 5.5 and 6.2 studies.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/img"
)

func main() {
	image := img.AbdominalPhantom(96, 96, 64)

	fmt.Println("strong scaling (Local-CM + HWS):")
	var t1 time.Duration
	for _, workers := range []int{1, 2, 4, 8} {
		res, err := core.Run(core.Config{
			Image:           image,
			Workers:         workers,
			LivelockTimeout: time.Minute,
		})
		if err != nil {
			log.Fatal(err)
		}
		if workers == 1 {
			t1 = res.TotalTime
		}
		fmt.Printf("  %2d workers: %8.3fs  speedup %.2f  rollbacks %5d  elements %d\n",
			workers, res.TotalTime.Seconds(),
			t1.Seconds()/res.TotalTime.Seconds(),
			res.Stats.Rollbacks, res.Elements())
	}

	fmt.Println("\ncontention managers at 4 workers:")
	for _, cmName := range []string{"aggressive", "random", "global", "local"} {
		res, err := core.Run(core.Config{
			Image:             image,
			Workers:           4,
			ContentionManager: cmName,
			LivelockTimeout:   time.Minute,
		})
		if err != nil {
			log.Fatal(err)
		}
		status := "ok"
		if res.Livelocked {
			status = "LIVELOCK"
		}
		fmt.Printf("  %-12s %8.3fs  rollbacks %5d  contention %6.3fs  %s\n",
			cmName, res.TotalTime.Seconds(), res.Stats.Rollbacks,
			float64(res.Stats.ContentionNs)/1e9, status)
	}

	fmt.Println("\nload balancers at 4 workers (modeled Blacklight topology):")
	for _, bal := range []string{"rws", "hws"} {
		res, err := core.Run(core.Config{
			Image:           image,
			Workers:         4,
			Balancer:        bal,
			LivelockTimeout: time.Minute,
		})
		if err != nil {
			log.Fatal(err)
		}
		tr := res.Stats.Transfers
		fmt.Printf("  %-4s %8.3fs  transfers: %d intra-socket, %d intra-blade, %d inter-blade\n",
			bal, res.TotalTime.Seconds(), tr.IntraSocket, tr.IntraBlade, tr.InterBlade)
	}
}
