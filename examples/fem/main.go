// FEM: the full pipeline the paper's title promises — Image-to-Mesh
// conversion *for finite element simulation*. A multi-tissue abdominal
// phantom is meshed with PI2M and a steady-state bioheat/potential
// problem is solved on the result with per-tissue conductivities: the
// aorta held at a source potential, the body surface grounded.
//
//	go run ./examples/fem
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/fem"
	"repro/internal/img"
	"repro/internal/meshio"
	"repro/internal/smooth"
)

func main() {
	// 1. Image to mesh.
	image := img.AbdominalPhantom(72, 72, 48)
	result, err := core.Run(core.Config{Image: image, LivelockTimeout: time.Minute})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("meshed %d tetrahedra from a %d-tissue image in %v\n",
		result.Elements(), len(image.LabelVolumes()), result.TotalTime.Round(time.Millisecond))

	// 2. Extract an indexed mesh with per-cell tissue labels.
	ext := smooth.Extract(result.Mesh, result.Final, image)
	raw := &meshio.RawMesh{Verts: ext.Verts, Cells: ext.Cells}
	for _, l := range ext.Labels {
		raw.Labels = append(raw.Labels, int(l))
	}

	// 3. Per-tissue conductivity (arbitrary units): blood conducts
	//    best, bone worst.
	conductivity := map[int]float64{
		1: 0.2, // body / soft tissue
		2: 0.5, // liver
		3: 0.4, // kidneys
		4: 0.4,
		5: 0.02, // spine (bone)
		6: 0.7,  // aorta (blood)
	}
	perCell := make([]float64, len(raw.Cells))
	for i, l := range raw.Labels {
		perCell[i] = conductivity[l]
	}

	// 4. Boundary conditions: the aorta's vertices at potential 1, the
	//    outer body surface at 0. The outer surface is identified as
	//    boundary vertices incident only to body-labeled (1) cells —
	//    interface vertices between tissues stay free.
	touches := make(map[int32]map[int]bool)
	for ci, cell := range raw.Cells {
		for _, v := range cell {
			if touches[v] == nil {
				touches[v] = map[int]bool{}
			}
			touches[v][raw.Labels[ci]] = true
		}
	}
	onBoundary := map[int32]bool{}
	for _, tr := range ext.BoundaryTris {
		for _, v := range tr {
			onBoundary[v] = true
		}
	}
	dirichlet := map[int32]float64{}
	aortaVerts := 0
	for v, labels := range touches {
		if labels[6] {
			dirichlet[v] = 1 // on or inside the aorta
			aortaVerts++
		} else if onBoundary[v] && len(labels) == 1 && labels[1] {
			dirichlet[v] = 0 // outer body surface
		}
	}
	fmt.Printf("boundary conditions: %d constrained vertices (%d at the source)\n",
		len(dirichlet), aortaVerts)

	// 5. Assemble and solve.
	sys, err := fem.Assemble(&fem.Problem{
		Mesh:         raw,
		Conductivity: perCell,
		Dirichlet:    dirichlet,
	})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	sol, err := sys.Solve(1e-8, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solved %d unknowns in %d CG iterations (%v, residual %.1e)\n",
		sys.N, sol.Iterations, time.Since(start).Round(time.Millisecond), sol.Residual)

	// 6. Field summary per tissue: mean potential.
	sum := map[int]float64{}
	cnt := map[int]int{}
	for ci, cell := range raw.Cells {
		var u float64
		for _, v := range cell {
			u += sol.U[v]
		}
		sum[raw.Labels[ci]] += u / 4
		cnt[raw.Labels[ci]]++
	}
	names := map[int]string{1: "body", 2: "liver", 3: "kidney L", 4: "kidney R", 5: "spine", 6: "aorta"}
	fmt.Println("mean potential per tissue:")
	for l := 1; l <= 6; l++ {
		if cnt[l] == 0 {
			continue
		}
		fmt.Printf("  %-10s %.3f\n", names[l], sum[l]/float64(cnt[l]))
	}

	// Sanity: the discrete maximum principle — all values in [0, 1].
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, u := range sol.U {
		lo = math.Min(lo, u)
		hi = math.Max(hi, u)
	}
	fmt.Printf("potential range [%.3f, %.3f] (maximum principle: within [0,1])\n", lo, hi)
}
