// Pointremoval: demonstrates rule R6, the paper's headline novelty —
// parallel Delaunay point *removals*. Circumcenters inserted early by
// the quality rules that end up within 2δ of a later isosurface sample
// are deleted on the fly; the example compares a run with removals
// enabled against the ablated version and shows the effect on mesh
// size and boundary quality.
//
//	go run ./examples/pointremoval
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/img"
	"repro/internal/quality"
)

func run(image *img.Image, disable bool) (*core.Result, quality.Stats) {
	res, err := core.Run(core.Config{
		Image:           image,
		DisableRemovals: disable,
		LivelockTimeout: time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res, quality.Evaluate(res.Mesh, res.Final, image)
}

func main() {
	// The torus has high curvature everywhere: many early circumcenters
	// land near later surface samples, so R6 fires often.
	image := img.TorusPhantom(64)

	with, qWith := run(image, false)
	without, qWithout := run(image, true)

	fmt.Println("rule R6 (dynamic point removal) ablation on a torus phantom:")
	fmt.Printf("%-28s %14s %14s\n", "", "with removals", "without")
	fmt.Printf("%-28s %14d %14d\n", "tetrahedra", with.Elements(), without.Elements())
	fmt.Printf("%-28s %14d %14d\n", "insertions", with.Stats.Inserts, without.Stats.Inserts)
	fmt.Printf("%-28s %14d %14d\n", "removals (R6)", with.Stats.Removals, without.Stats.Removals)
	fmt.Printf("%-28s %14.3f %14.3f\n", "max radius-edge", qWith.MaxRadiusEdge, qWithout.MaxRadiusEdge)
	fmt.Printf("%-28s %13.1f° %13.1f°\n", "min boundary planar angle", qWith.MinBoundaryPlanarAngle, qWithout.MinBoundaryPlanarAngle)
	fmt.Printf("%-28s %13.1f° %13.1f°\n", "min dihedral", qWith.MinDihedral, qWithout.MinDihedral)

	frac := 100 * float64(with.Stats.Removals) / float64(with.Stats.Inserts+with.Stats.Removals)
	fmt.Printf("\nremovals were %.1f%% of all operations (the paper reports ~2%%),\n", frac)
	fmt.Println("deleting circumcenters that crowd isosurface samples (within 2δ).")
}
