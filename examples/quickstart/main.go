// Quickstart: mesh a sphere phantom through the public pi2m API and
// export the result (the paper's Figure 1 pipeline: virtual box →
// refinement → final mesh of cells with circumcenters inside O).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	pi2m "repro"
)

func main() {
	// 1. A segmented image. Real users load an NRRD label map with
	//    pi2m.ReadNRRDFile; here a synthetic sphere (64^3, one tissue).
	image := pi2m.SpherePhantom(64)

	// 2. Mesh it. Defaults: δ = 2 voxels, radius-edge ≤ 2, boundary
	//    planar angles ≥ 30°, Local-CM, hierarchical work stealing.
	result, err := pi2m.Run(pi2m.Config{Image: image})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect the result.
	fmt.Printf("tetrahedra: %d in %v (%.0f elements/sec)\n",
		result.Elements(), result.TotalTime.Round(time.Millisecond),
		result.ElementsPerSecond())

	q := pi2m.Evaluate(result.Mesh, result.Final, image)
	fmt.Printf("quality: radius-edge ≤ %.2f, dihedral angles in (%.1f°, %.1f°)\n",
		q.MaxRadiusEdge, q.MinDihedral, q.MaxDihedral)

	tris := pi2m.BoundaryTriangles(result.Mesh, result.Final, image)
	topo := pi2m.SurfaceTopology(tris)
	fmt.Printf("topology: %d boundary triangles, Euler characteristic %d (sphere = 2), watertight %v\n",
		len(tris), topo.Euler, topo.Closed)

	// 4. Export for ParaView / Meshlab.
	if err := pi2m.WriteVTKFile("sphere.vtk", result.Mesh, result.Final, image); err != nil {
		log.Fatal(err)
	}
	if err := pi2m.WriteOFFFile("sphere-surface.off", tris); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote sphere.vtk and sphere-surface.off")
}
