package pi2m_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	pi2m "repro"
)

// TestSessionFacade exercises the functional-option surface: option
// validation, warm reuse, the io-based NRRD roundtrip, and Close.
func TestSessionFacade(t *testing.T) {
	if _, err := pi2m.NewSession(pi2m.WithContentionManager("bogus")); err == nil {
		t.Fatal("bad contention manager accepted")
	}
	if _, err := pi2m.NewSession(pi2m.WithDelta(-1)); err == nil {
		t.Fatal("negative delta accepted")
	}

	s, err := pi2m.NewSession(
		pi2m.WithThreads(2),
		pi2m.WithBalancer("hws"),
		pi2m.WithContentionManager("local"),
		pi2m.WithMaxRadiusEdge(2),
		pi2m.WithMinFacetAngle(30),
		pi2m.WithLivelockTimeout(time.Minute),
	)
	if err != nil {
		t.Fatal(err)
	}
	image := pi2m.TorusPhantom(24)
	res1, err := s.Run(context.Background(), image)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Elements() == 0 {
		t.Fatal("empty mesh")
	}
	if _, err := s.Run(context.Background(), image); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Runs != 2 || st.WarmRuns != 1 || st.WarmEDTHits != 1 {
		t.Fatalf("reuse stats = %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), image); err == nil {
		t.Fatal("Run after Close succeeded")
	}

	// io.Reader/io.Writer NRRD roundtrip through the facade.
	var buf bytes.Buffer
	if err := pi2m.WriteNRRD(&buf, image); err != nil {
		t.Fatal(err)
	}
	back, err := pi2m.ReadNRRD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVoxels() != image.NumVoxels() {
		t.Fatal("NRRD roundtrip lost voxels")
	}
}

// TestSessionFaultInjection arms the harness through the facade and
// checks the run still yields a complete, closed mesh.
func TestSessionFaultInjection(t *testing.T) {
	s, err := pi2m.NewSession(
		pi2m.WithThreads(2),
		pi2m.WithFaultInjection(11, 0.02),
		pi2m.WithPanicBudget(-1),
		pi2m.WithLivelockTimeout(time.Minute),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Run(context.Background(), pi2m.SpherePhantom(24))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == pi2m.StatusAborted {
		t.Fatalf("fault storm aborted: %s", res.Reason)
	}
	topo := res.Topology()
	if !topo.Closed || topo.Euler != 2 {
		t.Fatalf("sphere topology under faults: %+v", topo)
	}
}

// TestSessionVTKRawRoundtrip drives the new io-based VTK read/write
// pair through the facade.
func TestSessionVTKRawRoundtrip(t *testing.T) {
	res, err := pi2m.Run(pi2m.Config{
		Image:           pi2m.SpherePhantom(16),
		Workers:         1,
		LivelockTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	image := res.Config.Image
	var buf bytes.Buffer
	if err := pi2m.WriteVTK(&buf, res.Mesh, res.Final, image); err != nil {
		t.Fatal(err)
	}
	raw, err := pi2m.ReadVTK(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.Cells) != res.Elements() {
		t.Fatalf("VTK roundtrip: %d cells in, %d out", res.Elements(), len(raw.Cells))
	}
	var buf2 bytes.Buffer
	if err := pi2m.WriteVTKRaw(&buf2, raw); err != nil {
		t.Fatal(err)
	}
	raw2, err := pi2m.ReadVTK(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw2.Cells) != len(raw.Cells) || len(raw2.Verts) != len(raw.Verts) {
		t.Fatal("raw VTK roundtrip changed the mesh")
	}
}

// TestPoolFacade exercises pi2m.NewPool end to end: checkout with
// affinity, a run through a lease, the busy-rejection export, and a
// full NRRD → mesh → VTK round-trip with no temp files.
func TestPoolFacade(t *testing.T) {
	pool, err := pi2m.NewPool(2,
		pi2m.WithThreads(1),
		pi2m.WithLivelockTimeout(time.Minute),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// The image travels through the io.Reader/io.Writer NRRD path.
	var nrrd bytes.Buffer
	if err := pi2m.WriteNRRD(&nrrd, pi2m.SpherePhantom(12)); err != nil {
		t.Fatal(err)
	}
	im, err := pi2m.ReadNRRD(&nrrd)
	if err != nil {
		t.Fatal(err)
	}

	lease, err := pool.Checkout(context.Background(), "sphere12")
	if err != nil {
		t.Fatal(err)
	}
	res, err := lease.Run(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elements() == 0 {
		t.Fatal("pool run produced an empty mesh")
	}
	var vtk bytes.Buffer
	if err := pi2m.WriteVTK(&vtk, res.Mesh, res.Final, im); err != nil {
		t.Fatal(err)
	}
	lease.Release()
	raw, err := pi2m.ReadVTK(&vtk)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.Cells) != res.Elements() {
		t.Fatalf("round-trip: %d cells in, %d out", res.Elements(), len(raw.Cells))
	}

	st := pool.Stats()
	if st.Checkouts != 1 || st.Sessions.Runs != 1 {
		t.Fatalf("pool stats after one run: %+v", st)
	}
}

// TestSessionBusyExport verifies the facade exposes the core's
// busy-rejection sentinel under the same identity.
func TestSessionBusyExport(t *testing.T) {
	if pi2m.ErrSessionBusy == nil {
		t.Fatal("pi2m.ErrSessionBusy is nil")
	}
	if pi2m.ErrSessionBusy.Error() == "" {
		t.Fatal("pi2m.ErrSessionBusy has no message")
	}
}
