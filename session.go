package pi2m

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/serve"
)

// ErrSessionBusy is returned by Session.Run when another Run is
// already in flight on the same session: runs never queue. Retry
// after the in-flight run returns, or use a Pool.
var ErrSessionBusy = core.ErrSessionBusy

// SessionStats counts a Session's reuse behavior (runs, warm runs,
// cached-EDT hits); see internal/core.SessionStats.
type SessionStats = core.SessionStats

// Progress is a point-in-time snapshot of a running refinement,
// delivered to the WithProgress callback.
type Progress = core.Progress

// Option configures a Session at construction time. Options compose
// left to right; later options override earlier ones.
type Option func(*sessionOptions)

type sessionOptions struct {
	cfg core.Config

	// Facade-level fault-injection knobs (WithFaultInjection). The
	// injector itself is process-global, so the Session enables it
	// around each Run and restores the previous state afterwards.
	faultOn   bool
	faultSeed int64
	faultRate float64
}

// WithConfig replaces the whole configuration template at once — the
// escape hatch for knobs without a dedicated option (Topology,
// SuccessLimit, TimelineSample, ...). Image and Context fields are
// ignored: the image and a context are per-Run arguments. Options
// after WithConfig still apply on top of it.
func WithConfig(cfg Config) Option {
	return func(o *sessionOptions) { o.cfg = cfg }
}

// WithThreads sets the number of refinement threads (default
// GOMAXPROCS).
func WithThreads(n int) Option {
	return func(o *sessionOptions) { o.cfg.Workers = n }
}

// WithEDTWorkers sets the parallelism of the distance-transform
// pre-processing (default: the refinement thread count).
func WithEDTWorkers(n int) Option {
	return func(o *sessionOptions) { o.cfg.EDTWorkers = n }
}

// WithDelta sets the δ sampling parameter in world units — the
// fidelity knob of Theorem 1 and the dominant mesh-size control
// (default: 2x the minimum voxel spacing).
func WithDelta(d float64) Option {
	return func(o *sessionOptions) { o.cfg.Delta = d }
}

// WithDeltaFunc varies δ over space; values are clamped to
// [Delta/4, Delta].
func WithDeltaFunc(f SizeFunc) Option {
	return func(o *sessionOptions) { o.cfg.DeltaFunc = f }
}

// WithSizeFunc sets sf(.) of rule R5, the user size function bounding
// circumradii (default: unconstrained).
func WithSizeFunc(f SizeFunc) Option {
	return func(o *sessionOptions) { o.cfg.SizeFunc = f }
}

// WithMaxElements stops refinement early once the final mesh reaches
// n tetrahedra (0 = unlimited).
func WithMaxElements(n int) Option {
	return func(o *sessionOptions) { o.cfg.MaxElements = n }
}

// WithMaxRadiusEdge sets the radius-edge ratio bound of rule R4
// (default 2, the paper's provable bound).
func WithMaxRadiusEdge(r float64) Option {
	return func(o *sessionOptions) { o.cfg.MaxRadiusEdge = r }
}

// WithMinFacetAngle sets the boundary planar angle bound of rule R3
// in degrees (default 30).
func WithMinFacetAngle(deg float64) Option {
	return func(o *sessionOptions) { o.cfg.MinFacetAngle = deg }
}

// WithContentionManager selects the contention manager: "aggressive",
// "random", "global" or "local" (default "local").
func WithContentionManager(name string) Option {
	return func(o *sessionOptions) { o.cfg.ContentionManager = name }
}

// WithBalancer selects the begging-list organization: "rws" or "hws"
// (default "hws").
func WithBalancer(name string) Option {
	return func(o *sessionOptions) { o.cfg.Balancer = name }
}

// WithoutRemovals turns off rule R6 vertex removals (for ablation).
func WithoutRemovals() Option {
	return func(o *sessionOptions) { o.cfg.DisableRemovals = true }
}

// WithDonateThreshold sets the minimum number of valid poor elements
// a thread must hold before it may give work away (default 5).
func WithDonateThreshold(n int) Option {
	return func(o *sessionOptions) { o.cfg.DonateThreshold = n }
}

// WithLivelockTimeout aborts a run when no operation commits for this
// long (0 disables the watchdog).
func WithLivelockTimeout(d time.Duration) Option {
	return func(o *sessionOptions) { o.cfg.LivelockTimeout = d }
}

// WithPanicBudget sets how many panics a single worker thread may
// recover from before the run aborts (0 selects 3; negative means
// unlimited).
func WithPanicBudget(n int) Option {
	return func(o *sessionOptions) { o.cfg.PanicBudget = n }
}

// WithRetryBudget bounds how many times a poor element whose
// operation panicked is re-queued before being dropped (0 selects 2).
func WithRetryBudget(n int) Option {
	return func(o *sessionOptions) { o.cfg.RetryBudget = n }
}

// WithProgress installs a running-snapshot callback, sampled every
// `sample` (0 selects 250ms). The callback must be fast and
// thread-safe; a panic inside it degrades the run instead of
// crashing.
func WithProgress(f func(Progress), sample time.Duration) Option {
	return func(o *sessionOptions) {
		o.cfg.Progress = f
		o.cfg.ProgressSample = sample
	}
}

// WithTransitionLog installs a callback invoked on every recorded
// failure-handling Transition (contention-manager hot-swap,
// sequential drain, cancellation, abort). It must be thread-safe.
func WithTransitionLog(f func(Transition)) Option {
	return func(o *sessionOptions) { o.cfg.OnTransition = f }
}

// WithFaultInjection arms the deterministic fault harness around every
// Run of the session: lock denials and steal drops fire at `rate`,
// worker panics and commit delays at rate/10, seeded by `seed`. The
// bootstrap is kept clean (faults start only after the first few
// hundred lock attempts) so the storm targets refinement, mirroring
// the cmd/pi2m -fault-rate flag.
//
// The fault harness is process-global: while a Run of a session built
// with this option is in flight, other concurrently running sessions
// see the same faults. Intended for tests and resilience experiments,
// not production meshing.
func WithFaultInjection(seed int64, rate float64) Option {
	return func(o *sessionOptions) {
		o.faultOn = rate > 0
		o.faultSeed = seed
		o.faultRate = rate
	}
}

// Session is a reusable run engine. It retains the expensive
// allocations of the pipeline — mesh arenas, spatial grids, EDT
// buffers, per-thread refinement state — so consecutive Run calls
// reset-and-reuse instead of reallocating, and it caches the distance
// transform of the last image (by pointer identity).
//
// Runs are serialized; a Result's Mesh and Final handles stay valid
// only until the next Run on the same session. Reuse never changes
// output: a warm Run produces exactly the mesh a cold Run would.
type Session struct {
	s *core.Session

	faultOn   bool
	faultSeed int64
	faultRate float64
}

// NewSession validates the options and returns an empty session. The
// input image (and a context) are arguments to Run, not options — one
// session serves any sequence of images.
func NewSession(opts ...Option) (*Session, error) {
	var o sessionOptions
	for _, opt := range opts {
		opt(&o)
	}
	o.cfg.Image = nil
	o.cfg.Context = nil
	cs, err := core.NewSession(o.cfg)
	if err != nil {
		return nil, err
	}
	return &Session{
		s:         cs,
		faultOn:   o.faultOn,
		faultSeed: o.faultSeed,
		faultRate: o.faultRate,
	}, nil
}

// Run performs the complete PI2M pipeline on image, reusing the
// session's retained allocations from previous runs. ctx, when
// non-nil, cooperatively cancels the refinement: the workers stop at
// the next operation boundary and Run returns a partial Result with
// StatusAborted.
func (s *Session) Run(ctx context.Context, image *Image) (*Result, error) {
	if s.faultOn {
		restore := faultinject.Enable(faultinject.New(faultinject.Config{
			Seed: s.faultSeed,
			Rates: map[faultinject.Point]float64{
				faultinject.LockDeny:    s.faultRate,
				faultinject.WorkerPanic: s.faultRate / 10,
				faultinject.DropSteal:   s.faultRate,
				faultinject.CommitDelay: s.faultRate / 10,
			},
			After: map[faultinject.Point]int64{
				faultinject.LockDeny:    500,
				faultinject.WorkerPanic: 20,
			},
		}))
		defer restore()
	}
	return s.s.Run(ctx, image)
}

// RunTuned is Run with per-run configuration overrides: tune receives
// a copy of the session's configuration template (image attached) and
// may adjust per-run quality knobs — Delta, MaxElements,
// MaxRadiusEdge, MinFacetAngle, SizeFunc — before validation. The
// template itself is never modified. See core.Session.RunTuned.
func (s *Session) RunTuned(ctx context.Context, image *Image, tune func(*Config)) (*Result, error) {
	return s.s.RunTuned(ctx, image, tune)
}

// Close releases the session's pooled per-worker scratch and marks it
// unusable; the mesh of the last Result stays valid. Idempotent.
func (s *Session) Close() error { return s.s.Close() }

// Invalidate drops the cached distance transform. Call it after
// mutating an image in place before re-running on it.
func (s *Session) Invalidate() { s.s.Invalidate() }

// Stats returns a snapshot of the session's reuse counters.
func (s *Session) Stats() SessionStats { return s.s.Stats() }

// Pool multiplexes concurrent meshing over a fixed number of warm
// sessions with image-identity affinity and idle eviction — the
// building block of the serving layer (internal/serve carries the
// full documentation). Checkout a Lease, Run on it, Release it.
type Pool = serve.Pool

// PoolLease is exclusive ownership of one pool session between
// Checkout and Release.
type PoolLease = serve.Lease

// PoolStats snapshots a Pool's checkout/affinity/eviction counters
// and the member sessions' aggregated reuse counters.
type PoolStats = serve.PoolStats

// NewPool builds a pool of size identically-configured sessions. The
// options are the same ones NewSession takes; WithFaultInjection is
// ignored here (arm the harness process-globally in tests instead).
func NewPool(size int, opts ...Option) (*Pool, error) {
	var o sessionOptions
	for _, opt := range opts {
		opt(&o)
	}
	return serve.NewPool(size, o.cfg)
}
