// Package pi2m is the public API of this repository: a parallel
// Image-to-Mesh conversion library reproducing Foteinos &
// Chrisochoides, "High Quality Real-Time Image-to-Mesh Conversion for
// Finite Element Simulations" (SC 2012).
//
// The minimal flow:
//
//	image, _ := pi2m.ReadNRRDFile("segmentation.nrrd") // or a phantom
//	session, _ := pi2m.NewSession(pi2m.WithThreads(4))
//	defer session.Close()
//	result, err := session.Run(ctx, image)
//	pi2m.WriteVTKFile("mesh.vtk", result.Mesh, result.Final, image)
//
// A Session retains the pipeline's expensive allocations, so calling
// Run repeatedly (time series, parameter sweeps, interactive use)
// reuses memory instead of reallocating — the warm path of the
// paper's real-time story. One-shot callers can use pi2m.Run.
//
// The names here alias the implementation packages under internal/,
// which carry the full documentation: internal/core (the refiner),
// internal/img (images), internal/quality (metrics), internal/meshio
// (export), internal/sizing (size functions), internal/smooth
// (boundary smoothing), internal/fem (a P1 Poisson solver to consume
// the meshes).
package pi2m

import (
	"io"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/delaunay"
	"repro/internal/fem"
	"repro/internal/geom"
	"repro/internal/img"
	"repro/internal/meshio"
	"repro/internal/quality"
	"repro/internal/sizing"
	"repro/internal/smooth"
)

// Core types.
type (
	// Config parameterizes a run; see internal/core.Config.
	Config = core.Config
	// Result is a finished run; Result.Final lists the output cells.
	Result = core.Result
	// RunStats carries operation and overhead counters.
	RunStats = core.RunStats
	// SizeFunc is the R5 size function type.
	SizeFunc = core.SizeFunc
	// Status classifies how a run ended (completed/degraded/aborted).
	Status = core.Status
	// Transition is one recorded failure-handling action; Result.
	// Transitions logs them in order.
	Transition = core.Transition
	// EnergyModel and EnergyReport expose the Section 8 energy model.
	EnergyModel = core.EnergyModel
	// EnergyReport is the outcome of applying an EnergyModel.
	EnergyReport = core.EnergyReport
	// MeshSnapshot is a lease-independent copy of a run's final mesh;
	// take one with Result.Snapshot while the Result is still valid.
	MeshSnapshot = core.MeshSnapshot
	// RunSummary is the compact digest of a run carried by snapshots
	// and serving statistics.
	RunSummary = core.RunSummary

	// Image is a segmented multi-label voxel image.
	Image = img.Image
	// Label identifies a tissue (0 = background).
	Label = img.Label

	// Vec3 is a point in R^3.
	Vec3 = geom.Vec3

	// Mesh is the shared Delaunay triangulation a Result references.
	Mesh = delaunay.Mesh
	// CellHandle addresses one tetrahedron of a Mesh.
	CellHandle = arena.Handle

	// QualityStats summarizes element quality (Table 6 columns).
	QualityStats = quality.Stats
	// Triangle is a boundary triangle.
	Triangle = quality.Triangle
	// SurfaceTopologyInfo reports Euler characteristics and
	// watertightness of a boundary triangulation.
	SurfaceTopologyInfo = quality.Topology

	// SmoothMesh is the mutable extracted mesh used by smoothing and
	// the FEM solver.
	SmoothMesh = smooth.Mesh
	// RawMesh is the indexed interchange mesh for I/O and FEM.
	RawMesh = meshio.RawMesh

	// FEMProblem is a Poisson problem -∇·(k∇u) = f on a RawMesh with
	// Dirichlet constraints — the simulation the paper's meshes exist
	// for. See internal/fem.
	FEMProblem = fem.Problem
	// FEMSystem is an assembled, constraint-eliminated linear system.
	FEMSystem = fem.System
	// FEMSolution is a solved field with solver diagnostics.
	FEMSolution = fem.Solution
	// FEMSolveOptions parameterizes FEMSystem.SolveCtx (tolerance,
	// iteration cap, progress hook for supervision).
	FEMSolveOptions = fem.SolveOptions
)

// Statuses of a Result (see internal/core): a degraded run still holds
// a complete valid mesh; an aborted one is partial with Result.Err()
// carrying the structured reason.
const (
	StatusCompleted = core.StatusCompleted
	StatusDegraded  = core.StatusDegraded
	StatusAborted   = core.StatusAborted
)

// Run executes the PI2M pipeline (parallel EDT + parallel Delaunay
// refinement) on cfg — a one-shot convenience equivalent to creating
// a Session from cfg, running it once, and closing it. Callers that
// mesh more than one image (or the same image repeatedly) should hold
// a Session instead to reuse its memory across runs.
func Run(cfg Config) (*Result, error) { return core.Run(cfg) }

// DefaultEnergyModel returns the per-core power model used by
// Result.Energy.
func DefaultEnergyModel() EnergyModel { return core.DefaultEnergyModel() }

// Phantoms: synthetic stand-ins for segmented atlases (paper Table 3).
var (
	SpherePhantom    = img.SpherePhantom
	TorusPhantom     = img.TorusPhantom
	AbdominalPhantom = img.AbdominalPhantom
	KneePhantom      = img.KneePhantom
	HeadNeckPhantom  = img.HeadNeckPhantom
	VesselPhantom    = img.VesselPhantom
)

// NewImage creates an empty segmented image.
func NewImage(nx, ny, nz int, spacing Vec3) *Image { return img.New(nx, ny, nz, spacing) }

// ReadNRRD loads a uint8 label image in NRRD format from r.
func ReadNRRD(r io.Reader) (*Image, error) { return img.ReadNRRD(r) }

// WriteNRRD saves a label image in NRRD format to w.
func WriteNRRD(w io.Writer, im *Image) error { return img.WriteNRRD(w, im) }

// ReadNRRDFile loads a uint8 label image in NRRD format.
func ReadNRRDFile(path string) (*Image, error) { return img.ReadNRRDFile(path) }

// WriteNRRDFile saves a label image in NRRD format.
func WriteNRRDFile(path string, im *Image) error { return img.WriteNRRDFile(path, im) }

// Image processing helpers (Image methods, re-documented here for
// discoverability): (*Image).RemoveIslands cleans segmentation
// artifacts — the isolated voxel clusters the paper blames for its
// fidelity numbers — and (*Image).Downsample halves resolution with
// majority-vote labels for previews.

// Evaluate computes element quality statistics over a final mesh.
func Evaluate(m *Mesh, final []CellHandle, im *Image) QualityStats {
	return quality.Evaluate(m, final, im)
}

// BoundaryTriangles extracts the boundary/interface triangulation.
func BoundaryTriangles(m *Mesh, final []CellHandle, im *Image) []Triangle {
	return quality.BoundaryTriangles(m, final, im)
}

// SurfaceTopology verifies the combinatorial topology of a boundary
// triangulation (Theorem 1's guarantee, checkable).
func SurfaceTopology(tris []Triangle) SurfaceTopologyInfo {
	return quality.SurfaceTopology(tris)
}

// WriteVTK exports a final mesh as a legacy VTK unstructured grid
// with tissue labels to w.
func WriteVTK(w io.Writer, m *Mesh, final []CellHandle, im *Image) error {
	return meshio.WriteVTK(w, m, final, im)
}

// WriteVTKFile exports a final mesh as a legacy VTK unstructured grid
// with tissue labels.
func WriteVTKFile(path string, m *Mesh, final []CellHandle, im *Image) error {
	return meshio.WriteVTKFile(path, m, final, im)
}

// WriteVTKSnapshot exports a MeshSnapshot as a legacy VTK
// unstructured grid to w — byte-identical to WriteVTK over the Result
// the snapshot was taken from, but valid after the session has moved
// on (the serving layer's off-lease encoding path).
func WriteVTKSnapshot(w io.Writer, s *MeshSnapshot) error {
	return meshio.WriteVTKSnapshot(w, s)
}

// WriteOFFSnapshot exports a MeshSnapshot's boundary triangulation as
// an OFF surface to w.
func WriteOFFSnapshot(w io.Writer, s *MeshSnapshot) error {
	return meshio.WriteOFFSnapshot(w, s)
}

// WriteOFF exports boundary triangles as an OFF surface to w.
func WriteOFF(w io.Writer, tris []Triangle) error {
	return meshio.WriteOFF(w, tris)
}

// WriteOFFFile exports boundary triangles as an OFF surface.
func WriteOFFFile(path string, tris []Triangle) error {
	return meshio.WriteOFFFile(path, tris)
}

// ReadVTK parses a legacy-VTK tetrahedral mesh (as written by
// WriteVTK/WriteVTKRaw) from r into an indexed RawMesh.
func ReadVTK(r io.Reader) (*RawMesh, error) { return meshio.ReadVTK(r) }

// ReadVTKFile parses a legacy-VTK tetrahedral mesh from a file.
func ReadVTKFile(path string) (*RawMesh, error) { return meshio.ReadVTKFile(path) }

// WriteVTKRaw exports an indexed RawMesh as a legacy VTK unstructured
// grid to w.
func WriteVTKRaw(w io.Writer, m *RawMesh) error { return meshio.WriteVTKRaw(w, m) }

// WriteVTKRawFile exports an indexed RawMesh as a legacy VTK
// unstructured grid file.
func WriteVTKRawFile(path string, m *RawMesh) error { return meshio.WriteVTKRawFile(path, m) }

// Extract copies a final mesh into a standalone mutable mesh for
// smoothing or FE assembly.
func Extract(m *Mesh, final []CellHandle, im *Image) *SmoothMesh {
	return smooth.Extract(m, final, im)
}

// RawFromSnapshot adapts a MeshSnapshot to the RawMesh the FEM layer
// consumes — vertex and cell storage is shared, so treat the snapshot
// as read-only while the RawMesh is in use.
func RawFromSnapshot(s *MeshSnapshot) *RawMesh { return meshio.RawFromSnapshot(s) }

// FEMAssemble builds the stiffness matrix and load vector of a
// Poisson problem; solve the returned system with Solve or SolveCtx.
func FEMAssemble(p *FEMProblem) (*FEMSystem, error) { return fem.Assemble(p) }

// ConductivityFromLabels expands per-tissue-label conductivities into
// the per-cell coefficient array FEMProblem.Conductivity takes.
func ConductivityFromLabels(m *RawMesh, byLabel map[int]float64, def float64) ([]float64, error) {
	return fem.ConductivityFromLabels(m, byLabel, def)
}

// WriteVTKSnapshotField exports a MeshSnapshot with a solved per-vertex
// scalar field attached as VTK POINT_DATA — the /v1/simulate response
// encoding, usable directly by ParaView.
func WriteVTKSnapshotField(w io.Writer, s *MeshSnapshot, name string, u []float64) error {
	return meshio.WriteVTKSnapshotField(w, s, name, u)
}

// Size-function constructors (rule R5); see internal/sizing.
var (
	UniformSize     = sizing.Uniform
	BallSize        = sizing.Ball
	PerLabelSize    = sizing.PerLabel
	NearSurfaceSize = sizing.NearSurface
	GradedSize      = sizing.Graded
	MinSize         = sizing.Min
)
