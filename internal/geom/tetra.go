package geom

import "math"

// Circumsphere computes the circumcenter and squared circumradius of
// the tetrahedron (a, b, c, d). ok is false when the four points are
// (numerically) coplanar, in which case center and r2 are meaningless.
//
// The computation solves the 3x3 linear system arising from
// |x-a|^2 = |x-b|^2 = |x-c|^2 = |x-d|^2 by Cramer's rule.
func Circumsphere(a, b, c, d Vec3) (center Vec3, r2 float64, ok bool) {
	ba := b.Sub(a)
	ca := c.Sub(a)
	da := d.Sub(a)

	l1 := ba.Norm2()
	l2 := ca.Norm2()
	l3 := da.Norm2()

	// 2 * determinant of [ba; ca; da]
	det := ba.X*(ca.Y*da.Z-ca.Z*da.Y) -
		ba.Y*(ca.X*da.Z-ca.Z*da.X) +
		ba.Z*(ca.X*da.Y-ca.Y*da.X)
	denom := 2 * det
	if denom == 0 {
		return Vec3{}, 0, false
	}

	// Cramer's rule for the offset from a.
	ox := l1*(ca.Y*da.Z-ca.Z*da.Y) - l2*(ba.Y*da.Z-ba.Z*da.Y) + l3*(ba.Y*ca.Z-ba.Z*ca.Y)
	oy := -l1*(ca.X*da.Z-ca.Z*da.X) + l2*(ba.X*da.Z-ba.Z*da.X) - l3*(ba.X*ca.Z-ba.Z*ca.X)
	oz := l1*(ca.X*da.Y-ca.Y*da.X) - l2*(ba.X*da.Y-ba.Y*da.X) + l3*(ba.X*ca.Y-ba.Y*ca.X)

	off := Vec3{ox / denom, oy / denom, oz / denom}
	center = a.Add(off)
	r2 = off.Norm2()
	if math.IsNaN(r2) || math.IsInf(r2, 0) {
		return Vec3{}, 0, false
	}
	return center, r2, true
}

// CircumsphereTriangle computes the circumcenter and squared
// circumradius of triangle (a, b, c) in 3D (the circle's center, which
// lies in the triangle's plane). ok is false for degenerate triangles.
func CircumsphereTriangle(a, b, c Vec3) (center Vec3, r2 float64, ok bool) {
	ab := b.Sub(a)
	ac := c.Sub(a)
	n := ab.Cross(ac)
	denom := 2 * n.Norm2()
	if denom == 0 {
		return Vec3{}, 0, false
	}
	// center = a + (|ac|^2 (n x ab) + |ab|^2 (ac x n)) / (2 |n|^2)
	t := n.Cross(ab).Scale(ac.Norm2()).Add(ac.Cross(n).Scale(ab.Norm2())).Scale(1 / denom)
	center = a.Add(t)
	r2 = t.Norm2()
	if math.IsNaN(r2) || math.IsInf(r2, 0) {
		return Vec3{}, 0, false
	}
	return center, r2, true
}

// TetraVolume returns the signed volume of tetrahedron (a, b, c, d);
// positive when d lies on the positive side of plane (a, b, c)
// oriented counter-clockwise.
func TetraVolume(a, b, c, d Vec3) float64 {
	return b.Sub(a).Cross(c.Sub(a)).Dot(d.Sub(a)) / 6
}

// ShortestEdge returns the length of the shortest edge of tetrahedron
// (a, b, c, d).
func ShortestEdge(a, b, c, d Vec3) float64 {
	min := a.Dist2(b)
	for _, e := range [...]float64{
		a.Dist2(c), a.Dist2(d), b.Dist2(c), b.Dist2(d), c.Dist2(d),
	} {
		if e < min {
			min = e
		}
	}
	return math.Sqrt(min)
}

// RadiusEdgeRatio returns the circumradius-to-shortest-edge ratio of
// tetrahedron (a, b, c, d), the quality measure bounded by Delaunay
// refinement (rule R4 enforces a ratio <= 2). Degenerate tetrahedra
// report +Inf.
func RadiusEdgeRatio(a, b, c, d Vec3) float64 {
	_, r2, ok := Circumsphere(a, b, c, d)
	if !ok {
		return math.Inf(1)
	}
	se := ShortestEdge(a, b, c, d)
	if se == 0 {
		return math.Inf(1)
	}
	return math.Sqrt(r2) / se
}

// DihedralAngles computes the six dihedral angles (in degrees) of
// tetrahedron (a, b, c, d), one per edge. Degenerate configurations
// produce NaN entries.
func DihedralAngles(a, b, c, d Vec3) [6]float64 {
	v := [4]Vec3{a, b, c, d}
	// Outward-ish normals of the four faces; face i omits vertex i.
	// The dihedral along the edge shared by faces i and j is the angle
	// between the planes, measured inside the tetrahedron.
	normal := func(p, q, r Vec3) Vec3 { return q.Sub(p).Cross(r.Sub(p)) }
	n := [4]Vec3{
		normal(v[1], v[2], v[3]), // face opposite 0
		normal(v[0], v[3], v[2]), // face opposite 1
		normal(v[0], v[1], v[3]), // face opposite 2
		normal(v[0], v[2], v[1]), // face opposite 3
	}
	// Fix orientation so every normal points away from the omitted vertex.
	for i := range n {
		opp := v[i]
		onFace := v[(i+1)%4]
		if n[i].Dot(opp.Sub(onFace)) > 0 {
			n[i] = n[i].Scale(-1)
		}
	}
	pairs := [6][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	var out [6]float64
	for k, pr := range pairs {
		ni, nj := n[pr[0]], n[pr[1]]
		cosv := -ni.Dot(nj) / (ni.Norm() * nj.Norm())
		if cosv > 1 {
			cosv = 1
		} else if cosv < -1 {
			cosv = -1
		}
		out[k] = math.Acos(cosv) * 180 / math.Pi
	}
	return out
}

// MinMaxDihedral returns the smallest and largest dihedral angle of
// tetrahedron (a, b, c, d) in degrees.
func MinMaxDihedral(a, b, c, d Vec3) (min, max float64) {
	ang := DihedralAngles(a, b, c, d)
	min, max = ang[0], ang[0]
	for _, x := range ang[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// TriangleAngles returns the three planar angles of triangle (a, b, c)
// in degrees.
func TriangleAngles(a, b, c Vec3) [3]float64 {
	angle := func(p, q, r Vec3) float64 {
		u := q.Sub(p)
		w := r.Sub(p)
		den := u.Norm() * w.Norm()
		if den == 0 {
			return 0
		}
		cosv := u.Dot(w) / den
		if cosv > 1 {
			cosv = 1
		} else if cosv < -1 {
			cosv = -1
		}
		return math.Acos(cosv) * 180 / math.Pi
	}
	return [3]float64{angle(a, b, c), angle(b, c, a), angle(c, a, b)}
}

// MinTriangleAngle returns the smallest planar angle of triangle
// (a, b, c) in degrees.
func MinTriangleAngle(a, b, c Vec3) float64 {
	ang := TriangleAngles(a, b, c)
	min := ang[0]
	if ang[1] < min {
		min = ang[1]
	}
	if ang[2] < min {
		min = ang[2]
	}
	return min
}
