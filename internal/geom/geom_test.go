package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecBasics(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{4, -5, 6}
	if got := v.Add(w); got != (Vec3{5, -3, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vec3{-3, 7, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(w); got != 1*4+2*-5+3*6 {
		t.Errorf("Dot = %v", got)
	}
	if got := v.Cross(w); got != (Vec3{2*6 - 3*(-5), 3*4 - 1*6, 1*(-5) - 2*4}) {
		t.Errorf("Cross = %v", got)
	}
	if got := (Vec3{3, 4, 0}).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
}

func TestCrossOrthogonal(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		for _, x := range []float64{ax, ay, az, bx, by, bz} {
			if math.IsNaN(x) || math.Abs(x) > 1e6 {
				return true
			}
		}
		a := Vec3{ax, ay, az}
		b := Vec3{bx, by, bz}
		c := a.Cross(b)
		scale := a.Norm() * b.Norm()
		if scale == 0 {
			return true
		}
		return math.Abs(c.Dot(a))/(scale*c.Norm()+1) < 1e-9 && math.Abs(c.Dot(b))/(scale*c.Norm()+1) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	a := Vec3{0, 0, 0}
	b := Vec3{2, 4, 8}
	if got := a.Lerp(b, 0.5); got != (Vec3{1, 2, 4}) {
		t.Errorf("Lerp = %v", got)
	}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
}

func TestNormalize(t *testing.T) {
	v := Vec3{3, 0, 4}
	n := v.Normalize()
	if !almostEq(n.Norm(), 1, 1e-15) {
		t.Errorf("Normalize norm = %v", n.Norm())
	}
	zero := Vec3{}
	if zero.Normalize() != zero {
		t.Error("Normalize of zero changed the vector")
	}
}

func TestMinMax(t *testing.T) {
	v := Vec3{1, 5, 3}
	w := Vec3{2, 4, 3}
	if got := v.Min(w); got != (Vec3{1, 4, 3}) {
		t.Errorf("Min = %v", got)
	}
	if got := v.Max(w); got != (Vec3{2, 5, 3}) {
		t.Errorf("Max = %v", got)
	}
}

func TestCircumsphereRegularTetra(t *testing.T) {
	// A regular tetrahedron inscribed in the unit sphere: the four
	// alternating cube corners scaled to unit length.
	s := 1 / math.Sqrt(3)
	a := Vec3{s, s, s}
	b := Vec3{s, -s, -s}
	c := Vec3{-s, s, -s}
	d := Vec3{-s, -s, s}
	center, r2, ok := Circumsphere(a, b, c, d)
	if !ok {
		t.Fatal("Circumsphere reported degenerate")
	}
	if center.Norm() > 1e-12 {
		t.Errorf("center = %v, want origin", center)
	}
	if !almostEq(r2, 1, 1e-12) {
		t.Errorf("r2 = %v, want 1", r2)
	}
}

func TestCircumsphereEquidistance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		a := Vec3{rng.Float64(), rng.Float64(), rng.Float64()}
		b := Vec3{rng.Float64(), rng.Float64(), rng.Float64()}
		c := Vec3{rng.Float64(), rng.Float64(), rng.Float64()}
		d := Vec3{rng.Float64(), rng.Float64(), rng.Float64()}
		center, r2, ok := Circumsphere(a, b, c, d)
		if !ok {
			continue // random coplanar is vanishingly rare but allowed
		}
		for _, p := range []Vec3{a, b, c, d} {
			if !almostEq(center.Dist2(p), r2, 1e-6*(1+r2)) {
				t.Fatalf("vertex %v not equidistant: d2=%v r2=%v", p, center.Dist2(p), r2)
			}
		}
	}
}

func TestCircumsphereDegenerate(t *testing.T) {
	a := Vec3{0, 0, 0}
	b := Vec3{1, 0, 0}
	c := Vec3{0, 1, 0}
	d := Vec3{1, 1, 0} // coplanar
	if _, _, ok := Circumsphere(a, b, c, d); ok {
		t.Error("coplanar points reported as non-degenerate")
	}
}

func TestCircumsphereTriangle(t *testing.T) {
	a := Vec3{1, 0, 5}
	b := Vec3{-1, 0, 5}
	c := Vec3{0, 1, 5}
	center, r2, ok := CircumsphereTriangle(a, b, c)
	if !ok {
		t.Fatal("degenerate")
	}
	for _, p := range []Vec3{a, b, c} {
		if !almostEq(center.Dist2(p), r2, 1e-12) {
			t.Errorf("not equidistant to %v", p)
		}
	}
	if _, _, ok := CircumsphereTriangle(a, a, c); ok {
		t.Error("degenerate triangle accepted")
	}
}

func TestTetraVolume(t *testing.T) {
	a := Vec3{0, 0, 0}
	b := Vec3{1, 0, 0}
	c := Vec3{0, 1, 0}
	d := Vec3{0, 0, 1}
	if got := TetraVolume(a, b, c, d); !almostEq(got, 1.0/6, 1e-15) {
		t.Errorf("volume = %v, want 1/6", got)
	}
	if got := TetraVolume(a, c, b, d); !almostEq(got, -1.0/6, 1e-15) {
		t.Errorf("swapped volume = %v, want -1/6", got)
	}
}

func TestShortestEdge(t *testing.T) {
	a := Vec3{0, 0, 0}
	b := Vec3{0.5, 0, 0}
	c := Vec3{0, 2, 0}
	d := Vec3{0, 0, 3}
	if got := ShortestEdge(a, b, c, d); got != 0.5 {
		t.Errorf("ShortestEdge = %v, want 0.5", got)
	}
}

func TestRadiusEdgeRatioRegular(t *testing.T) {
	// Regular tetra: circumradius/edge = sqrt(3/8).
	s := 1 / math.Sqrt(3)
	a := Vec3{s, s, s}
	b := Vec3{s, -s, -s}
	c := Vec3{-s, s, -s}
	d := Vec3{-s, -s, s}
	want := math.Sqrt(3.0 / 8.0)
	if got := RadiusEdgeRatio(a, b, c, d); !almostEq(got, want, 1e-12) {
		t.Errorf("RadiusEdgeRatio = %v, want %v", got, want)
	}
}

func TestRadiusEdgeRatioDegenerate(t *testing.T) {
	a := Vec3{0, 0, 0}
	b := Vec3{1, 0, 0}
	c := Vec3{0, 1, 0}
	if !math.IsInf(RadiusEdgeRatio(a, b, c, Vec3{1, 1, 0}), 1) {
		t.Error("degenerate tetra should have infinite ratio")
	}
}

func TestDihedralAnglesRegular(t *testing.T) {
	// All six dihedral angles of a regular tetrahedron equal
	// arccos(1/3) ~ 70.5288 degrees.
	s := 1 / math.Sqrt(3)
	a := Vec3{s, s, s}
	b := Vec3{s, -s, -s}
	c := Vec3{-s, s, -s}
	d := Vec3{-s, -s, s}
	want := math.Acos(1.0/3.0) * 180 / math.Pi
	for _, ang := range DihedralAngles(a, b, c, d) {
		if !almostEq(ang, want, 1e-9) {
			t.Errorf("dihedral = %v, want %v", ang, want)
		}
	}
	min, max := MinMaxDihedral(a, b, c, d)
	if !almostEq(min, want, 1e-9) || !almostEq(max, want, 1e-9) {
		t.Errorf("MinMaxDihedral = %v, %v", min, max)
	}
}

func TestDihedralAnglesCorner(t *testing.T) {
	// Corner tetra (0,e1,e2,e3): three right dihedrals along the
	// coordinate axes edges and three of arccos(... ) along the
	// diagonal edges. Check min=60 isn't asserted; just sanity range
	// and the three exact 90s.
	a := Vec3{0, 0, 0}
	b := Vec3{1, 0, 0}
	c := Vec3{0, 1, 0}
	d := Vec3{0, 0, 1}
	ang := DihedralAngles(a, b, c, d)
	n90 := 0
	for _, x := range ang {
		if x <= 0 || x >= 180 || math.IsNaN(x) {
			t.Fatalf("dihedral out of range: %v", ang)
		}
		if almostEq(x, 90, 1e-9) {
			n90++
		}
	}
	if n90 != 3 {
		t.Errorf("corner tetra has %d right dihedrals, want 3 (%v)", n90, ang)
	}
}

func TestDihedralSumProperty(t *testing.T) {
	// For random non-degenerate tetrahedra every dihedral is in
	// (0, 180) and the angles around each face make sense.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		a := Vec3{rng.Float64(), rng.Float64(), rng.Float64()}
		b := Vec3{rng.Float64(), rng.Float64(), rng.Float64()}
		c := Vec3{rng.Float64(), rng.Float64(), rng.Float64()}
		d := Vec3{rng.Float64(), rng.Float64(), rng.Float64()}
		if math.Abs(TetraVolume(a, b, c, d)) < 1e-4 {
			continue
		}
		for _, x := range DihedralAngles(a, b, c, d) {
			if x <= 0 || x >= 180 || math.IsNaN(x) {
				t.Fatalf("dihedral out of range: %v", x)
			}
		}
	}
}

func TestTriangleAngles(t *testing.T) {
	a := Vec3{0, 0, 0}
	b := Vec3{1, 0, 0}
	c := Vec3{0, 1, 0}
	ang := TriangleAngles(a, b, c)
	if !almostEq(ang[0], 90, 1e-12) {
		t.Errorf("angle at a = %v, want 90", ang[0])
	}
	if !almostEq(ang[1], 45, 1e-12) || !almostEq(ang[2], 45, 1e-12) {
		t.Errorf("angles = %v, want 90/45/45", ang)
	}
	if got := MinTriangleAngle(a, b, c); !almostEq(got, 45, 1e-12) {
		t.Errorf("MinTriangleAngle = %v", got)
	}
}

func TestTriangleAngleSum(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz float64) bool {
		for _, x := range []float64{ax, ay, az, bx, by, bz, cx, cy, cz} {
			if math.IsNaN(x) || math.Abs(x) > 1e6 {
				return true
			}
		}
		a := Vec3{ax, ay, az}
		b := Vec3{bx, by, bz}
		c := Vec3{cx, cy, cz}
		if b.Sub(a).Cross(c.Sub(a)).Norm() < 1e-6 {
			return true // degenerate
		}
		ang := TriangleAngles(a, b, c)
		sum := ang[0] + ang[1] + ang[2]
		return almostEq(sum, 180, 1e-6)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5)), Values: nil}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
