// Package geom provides the 3D geometric primitives used throughout the
// PI2M mesher: vectors, tetrahedron circumspheres, and element quality
// measures (radius-edge ratio, dihedral angles, planar angles).
//
// All routines are allocation-free and safe for concurrent use; values
// are plain data.
package geom

import "math"

// Vec3 is a point or vector in R^3.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the dot product v . w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v x w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared Euclidean length of v.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Dist2 returns the squared Euclidean distance between v and w.
func (v Vec3) Dist2(w Vec3) float64 { return v.Sub(w).Norm2() }

// Normalize returns v scaled to unit length. The zero vector is
// returned unchanged.
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Lerp returns the point (1-t)*v + t*w.
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return Vec3{
		v.X + t*(w.X-v.X),
		v.Y + t*(w.Y-v.Y),
		v.Z + t*(w.Z-v.Z),
	}
}

// Min returns the component-wise minimum of v and w.
func (v Vec3) Min(w Vec3) Vec3 {
	return Vec3{math.Min(v.X, w.X), math.Min(v.Y, w.Y), math.Min(v.Z, w.Z)}
}

// Max returns the component-wise maximum of v and w.
func (v Vec3) Max(w Vec3) Vec3 {
	return Vec3{math.Max(v.X, w.X), math.Max(v.Y, w.Y), math.Max(v.Z, w.Z)}
}
