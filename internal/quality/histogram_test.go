package quality_test

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/img"
	"repro/internal/quality"
)

func TestHistogramBasics(t *testing.T) {
	h := quality.NewHistogram(0, 10, 10)
	for _, x := range []float64{0.5, 1.5, 1.6, 9.9, -1, 10, 15, math.NaN()} {
		h.Add(x)
	}
	if h.Count != 7 { // NaN dropped
		t.Errorf("Count = %d", h.Count)
	}
	if h.Bins[0] != 1 || h.Bins[1] != 2 || h.Bins[9] != 1 {
		t.Errorf("bins = %v", h.Bins)
	}
	if under, over := h.UnderOverForTest(); under != 1 || over != 2 {
		t.Errorf("under=%d over=%d", under, over)
	}
	if h.Min != -1 || h.Max != 15 {
		t.Errorf("min=%v max=%v", h.Min, h.Max)
	}
	if s := h.String(); !strings.Contains(s, "n=7") {
		t.Error("String missing count")
	}
}

func TestHistogramFraction(t *testing.T) {
	h := quality.NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	if f := h.Fraction(0, 5); math.Abs(f-0.5) > 1e-12 {
		t.Errorf("Fraction(0,5) = %v", f)
	}
	if f := h.Fraction(0, 10); f != 1 {
		t.Errorf("Fraction(0,10) = %v", f)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on bad range")
		}
	}()
	quality.NewHistogram(5, 5, 10)
}

func TestMeshHistograms(t *testing.T) {
	im := img.SpherePhantom(32)
	res, err := core.Run(core.Config{Image: im, Workers: 2, LivelockTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}

	dh := quality.DihedralHistogram(res.Mesh, res.Final, 18)
	if dh.Count != 6*res.Elements() {
		t.Errorf("dihedral samples = %d, want %d", dh.Count, 6*res.Elements())
	}
	if dh.Min <= 0 || dh.Max >= 180 {
		t.Errorf("dihedral range (%v, %v)", dh.Min, dh.Max)
	}

	rh := quality.RadiusEdgeHistogram(res.Mesh, res.Final, 30)
	if rh.Count != res.Elements() {
		t.Errorf("ratio samples = %d", rh.Count)
	}
	if rh.Max > 2.5 {
		t.Errorf("ratio max = %v", rh.Max)
	}
	// Essentially all ratios within the provable bound.
	if f := rh.Fraction(0, 2.05); f < 0.99 {
		t.Errorf("only %.2f of ratios within bound", f)
	}

	eh := quality.EdgeLengthHistogram(res.Mesh, res.Final, 40, 20)
	if eh.Count != 6*res.Elements() {
		t.Errorf("edge samples = %d", eh.Count)
	}
	if eh.Min <= 0 {
		t.Errorf("min edge %v", eh.Min)
	}
}

func TestVolumeAndPerTissue(t *testing.T) {
	im := img.AbdominalPhantom(36, 36, 24)
	res, err := core.Run(core.Config{Image: im, Workers: 2, LivelockTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	total := quality.Volume(res.Mesh, res.Final)
	if total <= 0 {
		t.Fatal("non-positive volume")
	}
	per := quality.EvaluatePerTissue(res.Mesh, res.Final, im)
	if len(per) < 3 {
		t.Fatalf("only %d tissues in per-tissue stats", len(per))
	}
	sum := 0
	for l, s := range per {
		if s.NumTets == 0 {
			t.Errorf("tissue %d empty", l)
		}
		if s.MaxRadiusEdge > 2.5 {
			t.Errorf("tissue %d ratio %v", l, s.MaxRadiusEdge)
		}
		sum += s.NumTets
	}
	if sum != res.Elements() {
		t.Errorf("per-tissue cells %d != total %d", sum, res.Elements())
	}
}
