package quality_test

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/img"
	"repro/internal/quality"
)

// Example evaluates the paper's Table 6 quality columns and the
// Theorem 1 topology check on a meshed torus.
func Example() {
	image := img.TorusPhantom(32)
	res, err := core.Run(core.Config{Image: image, Workers: 1, LivelockTimeout: time.Minute})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	s := quality.Evaluate(res.Mesh, res.Final, image)
	tris := quality.BoundaryTriangles(res.Mesh, res.Final, image)
	topo := quality.SurfaceTopology(tris)
	fmt.Println("radius-edge within bound:", s.MaxRadiusEdge <= 2.0+1e-9)
	fmt.Println("torus Euler characteristic:", topo.Euler)
	fmt.Println("watertight:", topo.Closed)
	// Output:
	// radius-edge within bound: true
	// torus Euler characteristic: 0
	// watertight: true
}
