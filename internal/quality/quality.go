// Package quality evaluates the element quality and surface fidelity
// statistics that Table 6 of the paper reports: radius-edge ratios,
// dihedral angles, boundary planar angles, and the symmetric Hausdorff
// distance between the mesh boundary and the image isosurface.
package quality

import (
	"math"

	"repro/internal/arena"
	"repro/internal/delaunay"
	"repro/internal/edt"
	"repro/internal/geom"
	"repro/internal/img"
)

// Triangle is a boundary triangle of the output mesh.
type Triangle struct {
	A, B, C geom.Vec3
}

// Centroid returns the triangle's centroid.
func (t Triangle) Centroid() geom.Vec3 {
	return t.A.Add(t.B).Add(t.C).Scale(1.0 / 3.0)
}

// Stats summarizes element quality of a final mesh.
type Stats struct {
	NumTets int

	MaxRadiusEdge float64
	MinDihedral   float64 // degrees
	MaxDihedral   float64 // degrees

	NumBoundaryTriangles   int
	MinBoundaryPlanarAngle float64 // degrees
}

// Evaluate computes Stats over the final cells of a mesh. The image is
// used to label cells (a facet between differently-labeled tissues
// counts as boundary, as does a facet to a cell outside the final
// mesh).
func Evaluate(m *delaunay.Mesh, final []arena.Handle, im *img.Image) Stats {
	s := Stats{
		NumTets:                len(final),
		MinDihedral:            math.Inf(1),
		MaxDihedral:            math.Inf(-1),
		MinBoundaryPlanarAngle: math.Inf(1),
	}
	for _, tri := range BoundaryTriangles(m, final, im) {
		s.NumBoundaryTriangles++
		if a := geom.MinTriangleAngle(tri.A, tri.B, tri.C); a < s.MinBoundaryPlanarAngle {
			s.MinBoundaryPlanarAngle = a
		}
	}
	for _, h := range final {
		c := m.Cells.At(h)
		a := m.Pos(c.V[0])
		b := m.Pos(c.V[1])
		cc := m.Pos(c.V[2])
		d := m.Pos(c.V[3])
		if re := geom.RadiusEdgeRatio(a, b, cc, d); re > s.MaxRadiusEdge {
			s.MaxRadiusEdge = re
		}
		lo, hi := geom.MinMaxDihedral(a, b, cc, d)
		if lo < s.MinDihedral {
			s.MinDihedral = lo
		}
		if hi > s.MaxDihedral {
			s.MaxDihedral = hi
		}
	}
	return s
}

// BoundaryTriangles extracts the boundary facets of the final mesh: a
// facet of a final cell whose neighbor is missing from the final set,
// or whose neighbor lies in a different tissue.
func BoundaryTriangles(m *delaunay.Mesh, final []arena.Handle, im *img.Image) []Triangle {
	inFinal := make(map[arena.Handle]img.Label, len(final))
	for _, h := range final {
		inFinal[h] = im.LabelAt(m.Cells.At(h).CC)
	}
	var out []Triangle
	for _, h := range final {
		c := m.Cells.At(h)
		myLabel := inFinal[h]
		for f := 0; f < 4; f++ {
			nb := c.Neighbor(f)
			nbLabel, ok := inFinal[nb]
			boundary := !ok || nbLabel != myLabel
			if !boundary {
				continue
			}
			// Emit interface facets once (from the lower handle side);
			// facets to non-final cells are emitted unconditionally.
			if ok && nb < h {
				continue
			}
			face := c.Face(f)
			out = append(out, Triangle{
				A: m.Pos(face[0]), B: m.Pos(face[1]), C: m.Pos(face[2]),
			})
		}
	}
	return out
}

// pointTriangleDist2 returns the squared distance from p to triangle
// (a, b, c) (Ericson, Real-Time Collision Detection).
func pointTriangleDist2(p, a, b, c geom.Vec3) float64 {
	ab := b.Sub(a)
	ac := c.Sub(a)
	ap := p.Sub(a)
	d1 := ab.Dot(ap)
	d2 := ac.Dot(ap)
	if d1 <= 0 && d2 <= 0 {
		return ap.Norm2()
	}
	bp := p.Sub(b)
	d3 := ab.Dot(bp)
	d4 := ac.Dot(bp)
	if d3 >= 0 && d4 <= d3 {
		return bp.Norm2()
	}
	vc := d1*d4 - d3*d2
	if vc <= 0 && d1 >= 0 && d3 <= 0 {
		v := d1 / (d1 - d3)
		return ap.Sub(ab.Scale(v)).Norm2()
	}
	cp := p.Sub(c)
	d5 := ab.Dot(cp)
	d6 := ac.Dot(cp)
	if d6 >= 0 && d5 <= d6 {
		return cp.Norm2()
	}
	vb := d5*d2 - d1*d6
	if vb <= 0 && d2 >= 0 && d6 <= 0 {
		w := d2 / (d2 - d6)
		return ap.Sub(ac.Scale(w)).Norm2()
	}
	va := d3*d6 - d5*d4
	if va <= 0 && (d4-d3) >= 0 && (d5-d6) >= 0 {
		w := (d4 - d3) / ((d4 - d3) + (d5 - d6))
		return bp.Sub(c.Sub(b).Scale(w)).Norm2()
	}
	denom := 1 / (va + vb + vc)
	v := vb * denom
	w := vc * denom
	return ap.Sub(ab.Scale(v)).Sub(ac.Scale(w)).Norm2()
}

// triGrid accelerates nearest-triangle queries with a uniform grid
// over triangle centroids.
type triGrid struct {
	tris []Triangle
	cell float64
	lo   geom.Vec3
	n    [3]int
	idx  map[[3]int][]int32
}

func newTriGrid(tris []Triangle, lo, hi geom.Vec3) *triGrid {
	span := hi.Sub(lo)
	// Aim for a few triangles per cell.
	cell := math.Cbrt(span.X * span.Y * span.Z / (float64(len(tris)) + 1))
	if cell <= 0 {
		cell = 1
	}
	g := &triGrid{tris: tris, cell: cell, lo: lo, idx: make(map[[3]int][]int32)}
	for i, t := range tris {
		k := g.key(t.Centroid())
		g.idx[k] = append(g.idx[k], int32(i))
	}
	return g
}

func (g *triGrid) key(p geom.Vec3) [3]int {
	d := p.Sub(g.lo)
	return [3]int{int(d.X / g.cell), int(d.Y / g.cell), int(d.Z / g.cell)}
}

// dist returns the distance from p to the nearest triangle.
func (g *triGrid) dist(p geom.Vec3) float64 {
	center := g.key(p)
	best := math.Inf(1)
	// Expand rings until a hit is found and the ring lower bound
	// exceeds the best distance.
	for ring := 0; ring < 1<<20; ring++ {
		lower := float64(ring-1) * g.cell
		if !math.IsInf(best, 1) && lower > math.Sqrt(best) {
			break
		}
		hit := false
		for dz := -ring; dz <= ring; dz++ {
			for dy := -ring; dy <= ring; dy++ {
				for dx := -ring; dx <= ring; dx++ {
					if max3(abs(dx), abs(dy), abs(dz)) != ring {
						continue // only the shell
					}
					k := [3]int{center[0] + dx, center[1] + dy, center[2] + dz}
					for _, ti := range g.idx[k] {
						t := g.tris[ti]
						if d2 := pointTriangleDist2(p, t.A, t.B, t.C); d2 < best {
							best = d2
						}
						hit = true
					}
				}
			}
		}
		_ = hit
	}
	return math.Sqrt(best)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func max3(a, b, c int) int {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

// Hausdorff computes the two-sided (symmetric) Hausdorff distance
// between the mesh boundary triangles and the image isosurface,
// estimated at voxel resolution: mesh→surface uses the distance
// transform of the surface voxels, surface→mesh samples an exact
// interface point near every surface voxel and measures the distance
// to the nearest boundary triangle.
func Hausdorff(tris []Triangle, im *img.Image, tr *edt.Transform) (meshToSurf, surfToMesh float64) {
	if len(tris) == 0 {
		return math.Inf(1), math.Inf(1)
	}
	// Mesh -> surface: sample each triangle at its corners, edge
	// midpoints and centroid.
	for _, t := range tris {
		samples := [7]geom.Vec3{
			t.A, t.B, t.C,
			t.A.Lerp(t.B, 0.5), t.B.Lerp(t.C, 0.5), t.C.Lerp(t.A, 0.5),
			t.Centroid(),
		}
		for _, p := range samples {
			if d := tr.DistanceToSurface(p); !math.IsInf(d, 1) && d > meshToSurf {
				meshToSurf = d
			}
		}
	}

	// Surface -> mesh: one exact interface sample per surface voxel.
	lo, hi := im.Bounds()
	g := newTriGrid(tris, lo, hi)
	for _, idx := range im.SurfaceVoxels() {
		i, j, k := im.Unindex(idx)
		c := im.VoxelCenter(i, j, k)
		// March toward the nearest differently-labeled 6-neighbor to
		// pin an exact interface point.
		p := c
		l := im.At(i, j, k)
		dirs := [6][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}}
		for _, d := range dirs {
			if im.At(i+d[0], j+d[1], k+d[2]) != l {
				q := im.VoxelCenter(i+d[0], j+d[1], k+d[2])
				if sp, ok := im.SurfacePoint(c, q, 1e-3*im.MinSpacing()); ok {
					p = sp
				}
				break
			}
		}
		if d := g.dist(p); d > surfToMesh {
			surfToMesh = d
		}
	}
	return meshToSurf, surfToMesh
}

// SymmetricHausdorff returns max(meshToSurf, surfToMesh).
func SymmetricHausdorff(tris []Triangle, im *img.Image, tr *edt.Transform) float64 {
	a, b := Hausdorff(tris, im, tr)
	return math.Max(a, b)
}

// SurfaceDistance estimates the one-sided distance from surface A to
// surface B: the maximum over samples of A's triangles of the distance
// to the nearest triangle of B. Used, e.g., to bound how far smoothing
// displaced a boundary.
func SurfaceDistance(a, b []Triangle) float64 {
	if len(a) == 0 || len(b) == 0 {
		return math.Inf(1)
	}
	lo := a[0].A
	hi := a[0].A
	grow := func(p geom.Vec3) {
		lo = lo.Min(p)
		hi = hi.Max(p)
	}
	for _, t := range append(append([]Triangle(nil), a...), b...) {
		grow(t.A)
		grow(t.B)
		grow(t.C)
	}
	g := newTriGrid(b, lo, hi)
	var worst float64
	for _, t := range a {
		for _, p := range [7]geom.Vec3{
			t.A, t.B, t.C,
			t.A.Lerp(t.B, 0.5), t.B.Lerp(t.C, 0.5), t.C.Lerp(t.A, 0.5),
			t.Centroid(),
		} {
			if d := g.dist(p); d > worst {
				worst = d
			}
		}
	}
	return worst
}
