package quality

import (
	"fmt"

	"repro/internal/geom"
)

// Topology summarizes the combinatorial topology of a boundary
// triangulation: the direct, checkable consequence of Theorem 1's
// "topologically correct representation of ∂O". For each connected
// closed surface component, the Euler characteristic χ = V - E + F
// identifies the genus (χ = 2 - 2g): a sphere-like tissue boundary has
// χ = 2, a torus χ = 0.
type Topology struct {
	Vertices   int
	Edges      int
	Faces      int
	Euler      int // V - E + F over the whole complex
	Components int

	// ComponentEuler lists χ per connected component.
	ComponentEuler []int

	// Closed reports whether every edge is shared by exactly two
	// triangles (a watertight surface). Non-manifold edges (more than
	// two incident triangles) appear at multi-tissue junction curves
	// and are counted separately.
	Closed           bool
	BorderEdges      int // edges with one incident triangle
	NonManifoldEdges int // edges with more than two incident triangles
}

// SurfaceTopology computes the topology of a triangle soup,
// identifying vertices by exact position.
func SurfaceTopology(tris []Triangle) Topology {
	type vkey geom.Vec3
	vid := make(map[vkey]int)
	id := func(p geom.Vec3) int {
		if i, ok := vid[vkey(p)]; ok {
			return i
		}
		i := len(vid)
		vid[vkey(p)] = i
		return i
	}

	type ekey [2]int
	edgeCount := make(map[ekey]int)
	edge := func(a, b int) ekey {
		if a > b {
			a, b = b, a
		}
		return ekey{a, b}
	}

	// Union-find over vertices for connected components.
	parent := make([]int, 0, 3*len(tris))
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	for _, t := range tris {
		a, b, c := id(t.A), id(t.B), id(t.C)
		for len(parent) < len(vid) {
			parent = append(parent, len(parent))
		}
		edgeCount[edge(a, b)]++
		edgeCount[edge(b, c)]++
		edgeCount[edge(c, a)]++
		union(a, b)
		union(b, c)
	}

	topo := Topology{
		Vertices: len(vid),
		Edges:    len(edgeCount),
		Faces:    len(tris),
		Closed:   true,
	}
	topo.Euler = topo.Vertices - topo.Edges + topo.Faces
	for _, n := range edgeCount {
		switch {
		case n == 1:
			topo.BorderEdges++
			topo.Closed = false
		case n > 2:
			topo.NonManifoldEdges++
			topo.Closed = false
		}
	}

	// Per-component Euler characteristics.
	compIdx := make(map[int]int)
	var vPer, ePer, fPer []int
	compOf := func(v int) int {
		r := find(v)
		if i, ok := compIdx[r]; ok {
			return i
		}
		i := len(compIdx)
		compIdx[r] = i
		vPer = append(vPer, 0)
		ePer = append(ePer, 0)
		fPer = append(fPer, 0)
		return i
	}
	for v := range parent {
		vPer[compOf(v)]++
	}
	for e := range edgeCount {
		ePer[compOf(e[0])]++
	}
	for _, t := range tris {
		fPer[compOf(vid[vkey(t.A)])]++
	}
	topo.Components = len(compIdx)
	for i := range vPer {
		topo.ComponentEuler = append(topo.ComponentEuler, vPer[i]-ePer[i]+fPer[i])
	}
	return topo
}

// String renders the topology summary.
func (t Topology) String() string {
	state := "closed"
	if !t.Closed {
		state = fmt.Sprintf("open (%d border, %d non-manifold edges)",
			t.BorderEdges, t.NonManifoldEdges)
	}
	return fmt.Sprintf("V=%d E=%d F=%d χ=%d, %d component(s) %v, %s",
		t.Vertices, t.Edges, t.Faces, t.Euler, t.Components, t.ComponentEuler, state)
}
