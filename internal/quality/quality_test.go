package quality_test

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/edt"
	"repro/internal/geom"
	"repro/internal/img"
	"repro/internal/quality"
)

func v3(x, y, z float64) geom.Vec3 { return geom.Vec3{X: x, Y: y, Z: z} }

func TestPointTriangleDist(t *testing.T) {
	a := v3(0, 0, 0)
	b := v3(1, 0, 0)
	c := v3(0, 1, 0)
	cases := []struct {
		p    geom.Vec3
		want float64
	}{
		{v3(0.25, 0.25, 1), 1},        // above interior
		{v3(0.25, 0.25, 0), 0},        // on the triangle
		{v3(-1, 0, 0), 1},             // beyond vertex a
		{v3(0.5, -2, 0), 2},           // beyond edge ab
		{v3(2, 0, 0), 1},              // beyond vertex b
		{v3(1, 1, 0), math.Sqrt2 / 2}, // beyond hypotenuse
	}
	for _, tc := range cases {
		got := math.Sqrt(quality.PointTriangleDist2ForTest(tc.p, a, b, c))
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("dist(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestPointTriangleDistProperty(t *testing.T) {
	// The computed distance must match a dense sampling lower bound.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		a := v3(rng.Float64(), rng.Float64(), rng.Float64())
		b := v3(rng.Float64(), rng.Float64(), rng.Float64())
		c := v3(rng.Float64(), rng.Float64(), rng.Float64())
		p := v3(rng.Float64()*2-0.5, rng.Float64()*2-0.5, rng.Float64()*2-0.5)
		got := math.Sqrt(quality.PointTriangleDist2ForTest(p, a, b, c))
		// Dense barycentric sampling.
		best := math.Inf(1)
		for i := 0; i <= 40; i++ {
			for j := 0; j <= 40-i; j++ {
				u := float64(i) / 40
				v := float64(j) / 40
				q := a.Scale(1 - u - v).Add(b.Scale(u)).Add(c.Scale(v))
				if d := q.Dist(p); d < best {
					best = d
				}
			}
		}
		if got > best+1e-9 {
			t.Fatalf("distance %v exceeds sampled bound %v", got, best)
		}
		if got < best-0.1 {
			t.Fatalf("distance %v far below sampled bound %v", got, best)
		}
	}
}

func meshSphere(t *testing.T, n int) (*core.Result, *img.Image) {
	t.Helper()
	im := img.SpherePhantom(n)
	res, err := core.Run(core.Config{Image: im, Workers: 2, LivelockTimeout: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return res, im
}

func TestEvaluateSphere(t *testing.T) {
	res, im := meshSphere(t, 32)
	s := quality.Evaluate(res.Mesh, res.Final, im)
	if s.NumTets != res.Elements() {
		t.Errorf("NumTets = %d, want %d", s.NumTets, res.Elements())
	}
	if s.MaxRadiusEdge > 2.5 || s.MaxRadiusEdge <= 0 {
		t.Errorf("MaxRadiusEdge = %v", s.MaxRadiusEdge)
	}
	if s.MinDihedral <= 0 || s.MaxDihedral >= 180 || s.MinDihedral > s.MaxDihedral {
		t.Errorf("dihedral range (%v, %v)", s.MinDihedral, s.MaxDihedral)
	}
	if s.NumBoundaryTriangles == 0 {
		t.Error("no boundary triangles")
	}
	if s.MinBoundaryPlanarAngle <= 0 || s.MinBoundaryPlanarAngle > 60 {
		t.Errorf("MinBoundaryPlanarAngle = %v", s.MinBoundaryPlanarAngle)
	}
}

func TestBoundaryTrianglesNearSurface(t *testing.T) {
	n := 32
	res, im := meshSphere(t, n)
	tris := quality.BoundaryTriangles(res.Mesh, res.Final, im)
	c := v3(float64(n)/2, float64(n)/2, float64(n)/2)
	r := 0.35 * float64(n)
	for _, tri := range tris {
		for _, p := range []geom.Vec3{tri.A, tri.B, tri.C} {
			if math.Abs(p.Dist(c)-r) > 3 {
				t.Fatalf("boundary vertex %v at radius %v, sphere radius %v", p, p.Dist(c), r)
			}
		}
	}
}

func TestHausdorffSphere(t *testing.T) {
	res, im := meshSphere(t, 32)
	tr := edt.Compute(im, 2)
	tris := quality.BoundaryTriangles(res.Mesh, res.Final, im)
	m2s, s2m := quality.Hausdorff(tris, im, tr)
	// Theorem 1 at voxel resolution: a few voxels at this δ (=2).
	if m2s > 4 || s2m > 4 {
		t.Errorf("Hausdorff (%v, %v) too large for a δ=2 sphere", m2s, s2m)
	}
	if m2s <= 0 || s2m <= 0 {
		t.Errorf("Hausdorff (%v, %v) suspiciously zero", m2s, s2m)
	}
	if sym := quality.SymmetricHausdorff(tris, im, tr); sym != math.Max(m2s, s2m) {
		t.Errorf("SymmetricHausdorff mismatch")
	}
}

func TestHausdorffEmptyTriangles(t *testing.T) {
	im := img.SpherePhantom(16)
	tr := edt.Compute(im, 1)
	m2s, s2m := quality.Hausdorff(nil, im, tr)
	if !math.IsInf(m2s, 1) || !math.IsInf(s2m, 1) {
		t.Error("empty triangle set should give infinite distances")
	}
}

func TestMultiTissueInterfacesAreBoundary(t *testing.T) {
	im := img.AbdominalPhantom(32, 32, 24)
	res, err := core.Run(core.Config{Image: im, Workers: 2, LivelockTimeout: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	tris := quality.BoundaryTriangles(res.Mesh, res.Final, im)
	s := quality.Evaluate(res.Mesh, res.Final, im)
	if len(tris) != s.NumBoundaryTriangles {
		t.Fatalf("triangle counts disagree")
	}
	if len(tris) == 0 {
		t.Fatal("no boundary triangles in multi-tissue mesh")
	}
}
