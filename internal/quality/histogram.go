package quality

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/arena"
	"repro/internal/delaunay"
	"repro/internal/geom"
	"repro/internal/img"
)

// Histogram accumulates a bounded scalar distribution (dihedral
// angles, radius-edge ratios, edge lengths) for mesh-quality reports.
type Histogram struct {
	Lo, Hi float64
	Bins   []int

	Count     int
	Min, Max  float64
	sum       float64
	underflow int
	overflow  int
}

// NewHistogram covers [lo, hi) with n bins.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("quality: invalid histogram range")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, n),
		Min: math.Inf(1), Max: math.Inf(-1)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	h.Count++
	h.sum += x
	if x < h.Min {
		h.Min = x
	}
	if x > h.Max {
		h.Max = x
	}
	switch {
	case x < h.Lo:
		h.underflow++
	case x >= h.Hi:
		h.overflow++
	default:
		i := int(float64(len(h.Bins)) * (x - h.Lo) / (h.Hi - h.Lo))
		h.Bins[i]++
	}
}

// Mean returns the sample mean.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.Count)
}

// Fraction returns the share of samples in [a, b), counted by bins
// (approximate at bin resolution).
func (h *Histogram) Fraction(a, b float64) float64 {
	if h.Count == 0 {
		return 0
	}
	n := 0
	w := (h.Hi - h.Lo) / float64(len(h.Bins))
	for i, c := range h.Bins {
		lo := h.Lo + float64(i)*w
		if lo >= a && lo+w <= b {
			n += c
		}
	}
	return float64(n) / float64(h.Count)
}

// String renders a compact ASCII bar chart.
func (h *Histogram) String() string {
	var b strings.Builder
	maxC := 1
	for _, c := range h.Bins {
		if c > maxC {
			maxC = c
		}
	}
	w := (h.Hi - h.Lo) / float64(len(h.Bins))
	for i, c := range h.Bins {
		bar := strings.Repeat("#", 50*c/maxC)
		fmt.Fprintf(&b, "%8.2f–%-8.2f %7d %s\n", h.Lo+float64(i)*w, h.Lo+float64(i+1)*w, c, bar)
	}
	fmt.Fprintf(&b, "n=%d min=%.3f mean=%.3f max=%.3f (under=%d over=%d)\n",
		h.Count, h.Min, h.Mean(), h.Max, h.underflow, h.overflow)
	return b.String()
}

// DihedralHistogram bins all dihedral angles (degrees) of the final
// cells.
func DihedralHistogram(m *delaunay.Mesh, final []arena.Handle, bins int) *Histogram {
	h := NewHistogram(0, 180, bins)
	for _, ch := range final {
		c := m.Cells.At(ch)
		for _, a := range geom.DihedralAngles(m.Pos(c.V[0]), m.Pos(c.V[1]), m.Pos(c.V[2]), m.Pos(c.V[3])) {
			h.Add(a)
		}
	}
	return h
}

// RadiusEdgeHistogram bins the radius-edge ratios of the final cells.
func RadiusEdgeHistogram(m *delaunay.Mesh, final []arena.Handle, bins int) *Histogram {
	h := NewHistogram(0, 3, bins)
	for _, ch := range final {
		c := m.Cells.At(ch)
		h.Add(geom.RadiusEdgeRatio(m.Pos(c.V[0]), m.Pos(c.V[1]), m.Pos(c.V[2]), m.Pos(c.V[3])))
	}
	return h
}

// EdgeLengthHistogram bins the edge lengths of the final cells (each
// edge counted once per incident cell).
func EdgeLengthHistogram(m *delaunay.Mesh, final []arena.Handle, hi float64, bins int) *Histogram {
	h := NewHistogram(0, hi, bins)
	pairs := [6][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	for _, ch := range final {
		c := m.Cells.At(ch)
		for _, pr := range pairs {
			h.Add(m.Pos(c.V[pr[0]]).Dist(m.Pos(c.V[pr[1]])))
		}
	}
	return h
}

// Volume sums the (positive) volumes of the final cells.
func Volume(m *delaunay.Mesh, final []arena.Handle) float64 {
	var v float64
	for _, ch := range final {
		c := m.Cells.At(ch)
		v += geom.TetraVolume(m.Pos(c.V[0]), m.Pos(c.V[1]), m.Pos(c.V[2]), m.Pos(c.V[3]))
	}
	return v
}

// EvaluatePerTissue computes Stats separately for each tissue label
// (boundary counts refer to each tissue's own interface set).
func EvaluatePerTissue(m *delaunay.Mesh, final []arena.Handle, im *img.Image) map[img.Label]Stats {
	byLabel := map[img.Label][]arena.Handle{}
	for _, h := range final {
		l := im.LabelAt(m.Cells.At(h).CC)
		byLabel[l] = append(byLabel[l], h)
	}
	out := make(map[img.Label]Stats, len(byLabel))
	for l, cells := range byLabel {
		out[l] = Evaluate(m, cells, im)
	}
	return out
}
