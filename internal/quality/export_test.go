package quality

// Hooks for the external test package (the tests live outside the
// package so they can exercise the core → quality integration without
// an import cycle).

var PointTriangleDist2ForTest = pointTriangleDist2

// UnderOverForTest exposes the out-of-range counters.
func (h *Histogram) UnderOverForTest() (under, over int) {
	return h.underflow, h.overflow
}
