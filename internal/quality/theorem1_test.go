package quality_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/edt"
	"repro/internal/img"
	"repro/internal/quality"
)

// TestTheorem1Convergence checks the quantitative half of Theorem 1:
// the two-sided Hausdorff distance between the recovered boundary and
// ∂O is O(δ²). The guarantee assumes a smooth ∂O; a voxelized label
// field bottoms out at a quantization floor of ~1.5 voxels (the EDT
// measures to voxel centers, and the interface staircases at voxel
// scale — the paper's own Table 6 Hausdorff values are likewise "far
// from ideal" for this reason). So the assertion is: super-linear
// improvement while δ is above the floor, monotone decrease
// throughout.
func TestTheorem1Convergence(t *testing.T) {
	im := img.SpherePhantom(96)
	tr := edt.Compute(im, 0)

	deltas := []float64{24, 16, 12}
	var hausdorff []float64
	for _, d := range deltas {
		res, err := core.Run(core.Config{
			Image:           im,
			Workers:         2,
			Delta:           d,
			LivelockTimeout: time.Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
		tris := quality.BoundaryTriangles(res.Mesh, res.Final, im)
		h := quality.SymmetricHausdorff(tris, im, tr)
		hausdorff = append(hausdorff, h)
		t.Logf("delta=%g: %d elements, Hausdorff %.3f", d, res.Elements(), h)
	}

	for i := 1; i < len(hausdorff); i++ {
		if hausdorff[i] >= hausdorff[i-1] {
			t.Errorf("Hausdorff did not improve: δ=%g gives %.3f, δ=%g gives %.3f",
				deltas[i-1], hausdorff[i-1], deltas[i], hausdorff[i])
		}
	}
	// O(δ²) over a 2x δ range predicts ~4x; require super-linear (>2.2x)
	// above the quantization floor.
	if hausdorff[0] < 2.2*hausdorff[len(hausdorff)-1] {
		t.Errorf("convergence not super-linear: %.3f -> %.3f over 2x δ",
			hausdorff[0], hausdorff[len(hausdorff)-1])
	}
}
