package quality_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/img"
	"repro/internal/quality"
)

// tetraSurface builds the closed surface of a single tetrahedron.
func tetraSurface() []quality.Triangle {
	a := geom.Vec3{X: 0, Y: 0, Z: 0}
	b := geom.Vec3{X: 1, Y: 0, Z: 0}
	c := geom.Vec3{X: 0, Y: 1, Z: 0}
	d := geom.Vec3{X: 0, Y: 0, Z: 1}
	return []quality.Triangle{
		{A: a, B: b, C: c}, {A: a, B: b, C: d},
		{A: a, B: c, C: d}, {A: b, B: c, C: d},
	}
}

func TestSurfaceTopologyTetrahedron(t *testing.T) {
	topo := quality.SurfaceTopology(tetraSurface())
	if topo.Vertices != 4 || topo.Edges != 6 || topo.Faces != 4 {
		t.Fatalf("V,E,F = %d,%d,%d", topo.Vertices, topo.Edges, topo.Faces)
	}
	if topo.Euler != 2 {
		t.Errorf("Euler = %d, want 2 (sphere)", topo.Euler)
	}
	if !topo.Closed || topo.Components != 1 {
		t.Errorf("topology: %v", topo)
	}
}

func TestSurfaceTopologyOpen(t *testing.T) {
	// Drop one face: 3 border edges, still one component.
	topo := quality.SurfaceTopology(tetraSurface()[:3])
	if topo.Closed {
		t.Error("open surface reported closed")
	}
	if topo.BorderEdges != 3 {
		t.Errorf("BorderEdges = %d, want 3", topo.BorderEdges)
	}
}

func TestSurfaceTopologyTwoComponents(t *testing.T) {
	tris := tetraSurface()
	// A second tetra far away.
	for _, tr := range tetraSurface() {
		off := geom.Vec3{X: 10, Y: 10, Z: 10}
		tris = append(tris, quality.Triangle{A: tr.A.Add(off), B: tr.B.Add(off), C: tr.C.Add(off)})
	}
	topo := quality.SurfaceTopology(tris)
	if topo.Components != 2 {
		t.Fatalf("Components = %d, want 2", topo.Components)
	}
	for _, chi := range topo.ComponentEuler {
		if chi != 2 {
			t.Errorf("component Euler = %d, want 2", chi)
		}
	}
}

// TestMeshedSphereIsTopologicalSphere checks Theorem 1's topological
// guarantee end-to-end: the recovered boundary of a meshed ball must
// be a single closed surface with Euler characteristic 2.
func TestMeshedSphereIsTopologicalSphere(t *testing.T) {
	im := img.SpherePhantom(48)
	res, err := core.Run(core.Config{Image: im, Workers: 2, LivelockTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	tris := quality.BoundaryTriangles(res.Mesh, res.Final, im)
	topo := quality.SurfaceTopology(tris)
	if !topo.Closed {
		t.Fatalf("sphere boundary not closed: %v", topo)
	}
	if topo.Components != 1 {
		t.Fatalf("sphere boundary has %d components: %v", topo.Components, topo)
	}
	if topo.Euler != 2 {
		t.Fatalf("sphere boundary Euler = %d, want 2: %v", topo.Euler, topo)
	}
}

// TestMeshedTorusIsTopologicalTorus checks genus recovery: the torus
// phantom's boundary must have Euler characteristic 0.
func TestMeshedTorusIsTopologicalTorus(t *testing.T) {
	im := img.TorusPhantom(48)
	res, err := core.Run(core.Config{Image: im, Workers: 2, LivelockTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	tris := quality.BoundaryTriangles(res.Mesh, res.Final, im)
	topo := quality.SurfaceTopology(tris)
	if !topo.Closed {
		t.Fatalf("torus boundary not closed: %v", topo)
	}
	if topo.Components != 1 {
		t.Fatalf("torus boundary has %d components: %v", topo.Components, topo)
	}
	if topo.Euler != 0 {
		t.Fatalf("torus boundary Euler = %d, want 0 (genus 1): %v", topo.Euler, topo)
	}
}

func TestTopologyString(t *testing.T) {
	s := quality.SurfaceTopology(tetraSurface()).String()
	if s == "" {
		t.Fatal("empty string")
	}
}
