// Package delaunay implements the concurrent 3D Delaunay kernel at the
// heart of PI2M: a shared tetrahedral mesh supporting speculative
// Bowyer-Watson point insertion and Devillers-style vertex removal by
// multiple workers, synchronized with fine-grained per-vertex locks
// and rollbacks (paper Section 4.2).
//
// Concurrency protocol. Every operation (insertion or removal) locks —
// via a compare-and-swap per-vertex lock — every vertex of every cell
// it reads during cavity expansion or ball gathering, *before* reading
// that cell's connectivity. Cell mutation (marking dead, rewiring a
// neighbor pointer across a face) is only performed by an operation
// holding the locks of the mutated cell's — respectively the shared
// face's — vertices. Consequently, once an operation holds a cell's
// four vertex locks and observes the cell alive, the cell's
// connectivity is frozen until the operation completes. A failed lock
// acquisition aborts the operation (a rollback): all held locks are
// released, no mutation has happened, and the conflicting owner is
// reported to the contention manager.
//
// Storage is append-only (package arena): a speculative reader holding
// a stale handle always sees type-stable memory, at worst flagged
// dead, never recycled.
package delaunay

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/geom"
	"repro/internal/predicates"
)

// VertKind classifies mesh vertices according to the refinement rules
// that created them (paper Section 3).
type VertKind uint8

const (
	// KindBox marks the eight virtual-box corners.
	KindBox VertKind = iota
	// KindIso marks isosurface samples (rules R1, R3's surface
	// centers are KindSurface).
	KindIso
	// KindCircum marks inserted circumcenters (rules R2, R4, R5).
	KindCircum
	// KindSurface marks surface-centers of facets (rule R3).
	KindSurface
)

// Vertex is a mesh vertex. Pos, Kind and Stamp are immutable after
// creation; lock, flags and incident are atomic.
type Vertex struct {
	Pos  geom.Vec3
	lock atomic.Int32 // 0 free, otherwise owner worker id + 1

	// incident is a hint: a cell that contained this vertex when the
	// last operation holding this vertex's lock committed. For a live,
	// locked vertex the hint is a live cell containing it.
	incident atomic.Uint32

	flags atomic.Uint32 // vertDead

	// Stamp is the global insertion order, used to replay insertions
	// in the same order inside the local triangulations of vertex
	// removal (paper Section 4.2).
	Stamp uint64

	Kind VertKind
}

const vertDead = 1

// Dead reports whether the vertex has been removed from the mesh.
func (v *Vertex) Dead() bool { return v.flags.Load()&vertDead != 0 }

// Incident returns the vertex's incident-cell hint.
func (v *Vertex) Incident() arena.Handle { return arena.Handle(v.incident.Load()) }

// LockedBy returns the id of the worker currently holding the vertex
// lock, or -1 when free. Intended for diagnostics.
func (v *Vertex) LockedBy() int { return int(v.lock.Load()) - 1 }

// Cell flags.
const (
	cellDead = 1 << iota
	// CellInside is set by the refiner when the cell's circumcenter
	// lies inside the imaged object O (the final mesh is the set of
	// such cells, paper Fig. 1c).
	CellInside = 1 << 1
)

// Cell is a tetrahedron. V, CC and R2 are immutable after creation;
// neighbor pointers and flags are atomic and mutated only under the
// locking protocol described in the package comment.
type Cell struct {
	// V holds the four vertex handles, positively oriented:
	// Orient3D(V[0], V[1], V[2], V[3]) > 0.
	V [4]arena.Handle
	n [4]atomic.Uint32

	// CC and R2 cache the circumcenter and squared circumradius.
	CC geom.Vec3
	R2 float64

	flags atomic.Uint32

	// Aux is scratch space for the refiner's per-cell bookkeeping
	// (poor-element-list membership); the kernel never touches it.
	Aux atomic.Uint64
}

// ftab lists, for each face index i (the face opposite vertex i), the
// three vertex indices of the face, ordered so that
// Orient3D(face, V[i]) > 0 for a positively oriented cell.
var ftab = [4][3]int{{1, 3, 2}, {0, 2, 3}, {0, 3, 1}, {0, 1, 2}}

// Dead reports whether the cell has been replaced by a later operation.
func (c *Cell) Dead() bool { return c.flags.Load()&cellDead != 0 }

// Inside reports whether the refiner classified the cell as having its
// circumcenter inside the object.
func (c *Cell) Inside() bool { return c.flags.Load()&CellInside != 0 }

// SetInside raises the CellInside flag (classification is monotone:
// a cell's circumcenter position never changes, so the flag is only
// ever set once, at creation).
func (c *Cell) SetInside(in bool) {
	if in {
		c.flags.Or(CellInside)
	}
}

// Neighbor returns the cell across face i (arena.Nil on the hull).
func (c *Cell) Neighbor(i int) arena.Handle { return arena.Handle(c.n[i].Load()) }

func (c *Cell) setNeighbor(i int, h arena.Handle) { c.n[i].Store(uint32(h)) }

// FaceIndex returns which face of c is shared with neighbor handle nb,
// or -1 if nb is not a neighbor.
func (c *Cell) FaceIndex(nb arena.Handle) int {
	for i := 0; i < 4; i++ {
		if c.Neighbor(i) == nb {
			return i
		}
	}
	return -1
}

// VertIndex returns the index of vertex handle v in c, or -1.
func (c *Cell) VertIndex(v arena.Handle) int {
	for i := 0; i < 4; i++ {
		if c.V[i] == v {
			return i
		}
	}
	return -1
}

// HasVert reports whether v is a vertex of c.
func (c *Cell) HasVert(v arena.Handle) bool { return c.VertIndex(v) >= 0 }

// Mesh is the shared Delaunay triangulation.
type Mesh struct {
	Verts *arena.Arena[Vertex]
	Cells *arena.Arena[Cell]

	stamp atomic.Uint64

	// Virtual box and super-tetrahedron geometry.
	boxLo, boxHi     geom.Vec3
	superLo, superHi geom.Vec3
	hullVolume       float64

	// firstCell is a recently created (hence probably live) cell used
	// as a default walk start; refreshed by every commit.
	firstCell atomic.Uint32

	// recoveredBoot counts panics recovered (and retried) inside this
	// mesh's bootstrap — only the fault harness can inject one there.
	// Mesh.Reset zeroes it; resetTo does not, so the removal scratch
	// meshes accumulate across the many rebuilds of one run.
	recoveredBoot atomic.Int64
}

// BootstrapPanicRecoveries reports panics recovered inside this mesh's
// bootstrap since construction or the last Reset.
func (m *Mesh) BootstrapPanicRecoveries() int64 { return m.recoveredBoot.Load() }

// NewMesh builds the initial triangulation enclosing the virtual box
// [lo, hi] (paper Fig. 1a). A super-tetrahedron comfortably containing
// the box is created first, and the eight box corners are then
// inserted through the regular kernel, so that the initial mesh is —
// like every later state — the unique symbolically perturbed Delaunay
// triangulation of its vertices. (The paper triangulates the box into
// six tetrahedra directly; routing the corners through the kernel
// preserves that picture while keeping the cospherical corners
// consistent with the perturbation scheme.) This bootstrap is the
// algorithm's only sequential part.
// A degenerate box (zero or inverted extent, or a corner insertion
// failure) is reported as an error rather than panicking, so a hostile
// or empty input image cannot crash the process.
func NewMesh(lo, hi geom.Vec3) (*Mesh, error) {
	m := &Mesh{
		Verts: arena.New[Vertex](),
		Cells: arena.New[Cell](),
	}
	if err := m.bootstrap(lo, hi); err != nil {
		return nil, err
	}
	return m, nil
}

// Reset clears the mesh and rebuilds the initial triangulation over a
// (possibly different) virtual box, retaining the arena chunks of the
// previous build so a warm rebuild performs almost no allocation. It
// must not race with any concurrent worker; a run session calls it
// between runs, when all workers are quiescent.
func (m *Mesh) Reset(lo, hi geom.Vec3) error {
	m.recoveredBoot.Store(0)
	return m.resetTo(lo, hi)
}

// resetTo clears the mesh and rebuilds the initial triangulation. Only
// valid when the caller owns the mesh exclusively (vertex removal's
// local triangulations, the inter-run reset of a session).
func (m *Mesh) resetTo(lo, hi geom.Vec3) error {
	m.Verts.Reset()
	m.Cells.Reset()
	m.stamp.Store(0)
	return m.bootstrap(lo, hi)
}

func (m *Mesh) bootstrap(lo, hi geom.Vec3) error {
	if !(lo.X < hi.X && lo.Y < hi.Y && lo.Z < hi.Z) {
		return fmt.Errorf("delaunay: degenerate virtual box [%v, %v]", lo, hi)
	}
	m.boxLo, m.boxHi = lo, hi
	va := m.Verts.NewAllocator()
	ca := m.Cells.NewAllocator()

	// Super-tetrahedron: a regular tetrahedron whose insphere contains
	// the box with a wide margin, centered on the box.
	ctr := lo.Add(hi).Scale(0.5)
	r := hi.Sub(lo).Norm() * 4 // >> box half-diagonal
	dirs := [4]geom.Vec3{
		{X: 1, Y: 1, Z: 1}, {X: 1, Y: -1, Z: -1}, {X: -1, Y: 1, Z: -1}, {X: -1, Y: -1, Z: 1},
	}
	var sv [4]arena.Handle
	for i, d := range dirs {
		h := va.Alloc()
		v := m.Verts.At(h)
		// The insphere radius of a regular tetrahedron is 1/3 of its
		// circumradius; scale so the insphere radius is 3r. Every field
		// is (re)initialized: scratch meshes recycle arena chunks.
		v.Pos = ctr.Add(d.Scale(3 * r * 3 / 1.7320508075688772)) // |d| = sqrt(3)
		v.Kind = KindBox
		v.Stamp = m.stamp.Add(1)
		v.flags.Store(0)
		v.lock.Store(0)
		sv[i] = h
	}
	if predicates.Orient3D(m.Verts.At(sv[0]).Pos, m.Verts.At(sv[1]).Pos,
		m.Verts.At(sv[2]).Pos, m.Verts.At(sv[3]).Pos) < 0 {
		sv[1], sv[2] = sv[2], sv[1]
	}
	ch := ca.Alloc()
	c := m.Cells.At(ch)
	c.V = sv
	c.CC, c.R2 = circum(m, sv)
	c.flags.Store(0)
	c.Aux.Store(0)
	for i := 0; i < 4; i++ {
		c.setNeighbor(i, arena.Nil)
	}
	for _, h := range sv {
		m.Verts.At(h).incident.Store(uint32(ch))
	}
	m.firstCell.Store(uint32(ch))
	m.hullVolume = geom.TetraVolume(m.Verts.At(sv[0]).Pos, m.Verts.At(sv[1]).Pos,
		m.Verts.At(sv[2]).Pos, m.Verts.At(sv[3]).Pos)
	mn, mx := m.Verts.At(sv[0]).Pos, m.Verts.At(sv[0]).Pos
	for _, h := range sv[1:] {
		mn = mn.Min(m.Verts.At(h).Pos)
		mx = mx.Max(m.Verts.At(h).Pos)
	}
	m.superLo, m.superHi = mn, mx

	// Insert the eight box corners through the kernel.
	w := m.NewWorker(0)
	defer w.Release()
	start := ch
	for b := 0; b < 8; b++ {
		p := geom.Vec3{
			X: pick(b&1 != 0, hi.X, lo.X),
			Y: pick(b&2 != 0, hi.Y, lo.Y),
			Z: pick(b&4 != 0, hi.Z, lo.Z),
		}
		// Bootstrap runs single-owner, so a Conflict can only be a
		// synthetic CAS denial from the fault harness, and a panic in
		// Insert only an injected one (every pre-commit site leaves
		// the mesh untouched). Retry a bounded number of times rather
		// than failing construction: the warm rebuild of a session
		// runs with any active injector's After budgets long spent.
		var res *OpResult
		var st Status
		for attempt := 0; ; attempt++ {
			res, st = bootstrapInsert(w, p, start)
			if st != Conflict || attempt >= 16 {
				break
			}
		}
		if st != OK {
			return fmt.Errorf("delaunay: bootstrap corner %d insertion failed: %s", b, st)
		}
		start = res.Created[0]
	}
	m.firstCell.Store(uint32(start))
	return nil
}

// bootstrapInsert performs one panic-guarded corner insertion: a panic
// (only the fault harness can inject one here) releases the worker's
// locks and reports Conflict so the caller's bounded retry loop runs.
func bootstrapInsert(w *Worker, p geom.Vec3, start arena.Handle) (res *OpResult, st Status) {
	defer func() {
		if pv := recover(); pv != nil {
			w.RecoverFromPanic()
			w.m.recoveredBoot.Add(1)
			res, st = nil, Conflict
		}
	}()
	return w.Insert(p, KindBox, start)
}

// circum computes the cached circumsphere of a cell; degenerate cells
// (which the kernel never creates) get an infinite radius so that
// quality rules reject them.
func circum(m *Mesh, vh [4]arena.Handle) (geom.Vec3, float64) {
	cc, r2, ok := geom.Circumsphere(
		m.Verts.At(vh[0]).Pos, m.Verts.At(vh[1]).Pos,
		m.Verts.At(vh[2]).Pos, m.Verts.At(vh[3]).Pos)
	if !ok {
		return geom.Vec3{}, math.Inf(1)
	}
	return cc, r2
}

// sortedFace returns face i of c as a sorted vertex-handle triple (a
// canonical key for face matching).
func sortedFace(c *Cell, i int) [3]arena.Handle {
	k := [3]arena.Handle{c.V[ftab[i][0]], c.V[ftab[i][1]], c.V[ftab[i][2]]}
	if k[0] > k[1] {
		k[0], k[1] = k[1], k[0]
	}
	if k[1] > k[2] {
		k[1], k[2] = k[2], k[1]
	}
	if k[0] > k[1] {
		k[0], k[1] = k[1], k[0]
	}
	return k
}

// FirstCell returns a recently created cell to start walks from. It
// may have died since (the caller retries with a fresh value on a
// Stale status); it is refreshed on every committed operation, so
// retries make progress.
func (m *Mesh) FirstCell() arena.Handle { return arena.Handle(m.firstCell.Load()) }

// Bounds returns the virtual box.
func (m *Mesh) Bounds() (lo, hi geom.Vec3) { return m.boxLo, m.boxHi }

// NumVerts returns the number of vertex slots allocated (including
// removed vertices).
func (m *Mesh) NumVerts() int { return m.Verts.Len() - 1 }

// NumCellsAllocated returns the number of cell slots allocated
// (including dead cells).
func (m *Mesh) NumCellsAllocated() int { return m.Cells.Len() - 1 }

// Pos returns the position of vertex h.
func (m *Mesh) Pos(h arena.Handle) geom.Vec3 { return m.Verts.At(h).Pos }

func pick(cond bool, a, b float64) float64 {
	if cond {
		return a
	}
	return b
}

// Face returns the vertex handles of face i (the face opposite vertex
// i), ordered so that Orient3D(face, V[i]) > 0.
func (c *Cell) Face(i int) [3]arena.Handle {
	return [3]arena.Handle{c.V[ftab[i][0]], c.V[ftab[i][1]], c.V[ftab[i][2]]}
}
