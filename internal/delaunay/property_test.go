package delaunay

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arena"
)

// TestQuickRandomOpSequences drives the kernel with many short random
// insert/remove programs (different seeds = different interleavings of
// positions, duplicates, and removal targets) and checks the full
// structural invariant set after each program.
func TestQuickRandomOpSequences(t *testing.T) {
	run := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := unitBox()
		w := m.NewWorker(0)
		start := m.FirstCell()
		var live []arena.Handle
		ops := 60 + rng.Intn(120)
		for i := 0; i < ops; i++ {
			switch {
			case len(live) > 8 && rng.Float64() < 0.35:
				k := rng.Intn(len(live))
				if _, st := w.Remove(live[k]); st == OK {
					live[k] = live[len(live)-1]
					live = live[:len(live)-1]
				} else if st != Failed && st != Stale {
					t.Logf("seed %d: remove status %v", seed, st)
					return false
				}
			default:
				// Mix of generic random points and lattice points that
				// force degenerate configurations.
				var p [3]float64
				if rng.Intn(3) == 0 {
					p = [3]float64{
						float64(1+rng.Intn(7)) / 8,
						float64(1+rng.Intn(7)) / 8,
						float64(1+rng.Intn(7)) / 8,
					}
				} else {
					p = [3]float64{rng.Float64(), rng.Float64(), rng.Float64()}
				}
				res, st := w.Insert(v3(p[0], p[1], p[2]), KindCircum, start)
				switch st {
				case OK:
					live = append(live, res.NewVert)
					start = res.Created[0]
				case Failed:
					// duplicate lattice point: fine
				case Stale:
					start = m.FirstCell()
				default:
					t.Logf("seed %d: insert status %v", seed, st)
					return false
				}
			}
		}
		if err := m.Check(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(run, cfg); err != nil {
		t.Error(err)
	}
}

// TestRemoveReinsertRoundtrip removes a vertex and re-inserts the same
// position: by uniqueness of the (perturbed) Delaunay triangulation
// the live vertex count and Delaunayness must be restored.
func TestRemoveReinsertRoundtrip(t *testing.T) {
	m := unitBox()
	w := m.NewWorker(0)
	rng := rand.New(rand.NewSource(123))
	start := m.FirstCell()
	var live []arena.Handle
	for i := 0; i < 80; i++ {
		res, st := w.Insert(v3(rng.Float64(), rng.Float64(), rng.Float64()), KindCircum, start)
		if st != OK {
			t.Fatal(st)
		}
		live = append(live, res.NewVert)
		start = res.Created[0]
	}
	cellsBefore := m.NumLiveCells()

	for trial := 0; trial < 20; trial++ {
		k := rng.Intn(len(live))
		vh := live[k]
		pos := m.Pos(vh)
		res, st := w.Remove(vh)
		if st == Failed {
			continue
		}
		if st != OK {
			t.Fatalf("remove: %v", st)
		}
		res, st = w.Insert(pos, KindCircum, res.Created[0])
		if st != OK {
			t.Fatalf("re-insert: %v", st)
		}
		live[k] = res.NewVert
		if got := m.NumLiveCells(); got != cellsBefore {
			t.Fatalf("trial %d: cell count %d != %d after roundtrip (triangulation not unique?)",
				trial, got, cellsBefore)
		}
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckDelaunayGlobal(); err != nil {
		t.Fatal(err)
	}
}

// TestWalkFromArbitraryStarts verifies point location succeeds from
// any live cell, not just a nearby hint.
func TestWalkFromArbitraryStarts(t *testing.T) {
	m := unitBox()
	w := m.NewWorker(0)
	rng := rand.New(rand.NewSource(7))
	start := m.FirstCell()
	for i := 0; i < 150; i++ {
		res, st := w.Insert(v3(rng.Float64(), rng.Float64(), rng.Float64()), KindCircum, start)
		if st != OK {
			t.Fatal(st)
		}
		start = res.Created[0]
	}
	var starts []arena.Handle
	m.LiveCells(func(h arena.Handle, c *Cell) { starts = append(starts, h) })
	for trial := 0; trial < 100; trial++ {
		p := v3(rng.Float64(), rng.Float64(), rng.Float64())
		from := starts[rng.Intn(len(starts))]
		if _, st := w.locate(p, from); st != OK {
			t.Fatalf("locate from arbitrary cell: %v", st)
		}
	}
}

// TestStampsStrictlyIncreasing checks the removal-ordering invariant
// the paper relies on.
func TestStampsStrictlyIncreasing(t *testing.T) {
	m := unitBox()
	w := m.NewWorker(0)
	rng := rand.New(rand.NewSource(77))
	start := m.FirstCell()
	var last uint64
	for i := 0; i < 50; i++ {
		res, st := w.Insert(v3(rng.Float64(), rng.Float64(), rng.Float64()), KindCircum, start)
		if st != OK {
			t.Fatal(st)
		}
		stamp := m.Verts.At(res.NewVert).Stamp
		if stamp <= last {
			t.Fatalf("stamp %d not increasing (prev %d)", stamp, last)
		}
		last = stamp
		start = res.Created[0]
	}
}
