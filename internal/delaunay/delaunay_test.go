package delaunay

import (
	"math/rand"
	"testing"

	"repro/internal/arena"
	"repro/internal/geom"
)

func v3(x, y, z float64) geom.Vec3 { return geom.Vec3{X: x, Y: y, Z: z} }

func unitBox() *Mesh {
	m, err := NewMesh(v3(0, 0, 0), v3(1, 1, 1))
	if err != nil {
		panic(err)
	}
	return m
}

func TestNewMeshDegenerateBox(t *testing.T) {
	if _, err := NewMesh(v3(0, 0, 0), v3(0, 1, 1)); err == nil {
		t.Fatal("zero-extent box accepted")
	}
	if _, err := NewMesh(v3(1, 1, 1), v3(0, 0, 0)); err == nil {
		t.Fatal("inverted box accepted")
	}
}

func TestNewMeshInvariants(t *testing.T) {
	m := unitBox()
	if got := m.NumLiveVerts(); got != 12 {
		t.Fatalf("initial verts = %d, want 12 (super-tet + box corners)", got)
	}
	if got := m.NumLiveCells(); got < 6 {
		t.Fatalf("initial cells = %d, want >= 6", got)
	}
	if err := m.Check(); err != nil {
		t.Fatalf("initial mesh invalid: %v", err)
	}
	if err := m.CheckDelaunayGlobal(); err != nil {
		t.Fatalf("initial mesh not Delaunay: %v", err)
	}
}

func TestSingleInsert(t *testing.T) {
	m := unitBox()
	w := m.NewWorker(0)
	res, st := w.Insert(v3(0.5, 0.5, 0.5), KindCircum, m.FirstCell())
	if st != OK {
		t.Fatalf("Insert status = %v", st)
	}
	if res.NewVert == arena.Nil {
		t.Fatal("no new vertex")
	}
	if len(res.Created) == 0 || len(res.Killed) == 0 {
		t.Fatalf("created %d, killed %d", len(res.Created), len(res.Killed))
	}
	if err := m.Check(); err != nil {
		t.Fatalf("mesh invalid after insert: %v", err)
	}
	if err := m.CheckDelaunayGlobal(); err != nil {
		t.Fatalf("not Delaunay after insert: %v", err)
	}
	// All locks must be released.
	m.LiveVerts(func(h arena.Handle, v *Vertex) {
		if v.LockedBy() != -1 {
			t.Errorf("vertex %d still locked by %d", h, v.LockedBy())
		}
	})
}

func TestInsertRandomSequential(t *testing.T) {
	m := unitBox()
	w := m.NewWorker(0)
	rng := rand.New(rand.NewSource(42))
	start := m.FirstCell()
	for i := 0; i < 300; i++ {
		p := v3(rng.Float64(), rng.Float64(), rng.Float64())
		res, st := w.Insert(p, KindCircum, start)
		if st != OK {
			t.Fatalf("insert %d: status %v", i, st)
		}
		start = res.Created[0]
	}
	if err := m.Check(); err != nil {
		t.Fatalf("mesh invalid: %v", err)
	}
	if err := m.CheckDelaunayGlobal(); err != nil {
		t.Fatalf("not Delaunay: %v", err)
	}
	if got := m.NumLiveVerts(); got != 312 {
		t.Errorf("verts = %d, want 312", got)
	}
}

func TestInsertGridDegenerate(t *testing.T) {
	// A regular grid maximizes cospherical/coplanar degeneracies; the
	// exact predicates plus the cospherical=no-conflict rule must still
	// produce a valid triangulation.
	m := unitBox()
	w := m.NewWorker(0)
	start := m.FirstCell()
	const n = 5
	for k := 1; k <= n; k++ {
		for j := 1; j <= n; j++ {
			for i := 1; i <= n; i++ {
				p := v3(float64(i)/(n+1), float64(j)/(n+1), float64(k)/(n+1))
				res, st := w.Insert(p, KindCircum, start)
				if st != OK {
					t.Fatalf("grid insert (%d,%d,%d): %v", i, j, k, st)
				}
				start = res.Created[0]
			}
		}
	}
	if err := m.Check(); err != nil {
		t.Fatalf("grid mesh invalid: %v", err)
	}
}

func TestInsertDuplicateFails(t *testing.T) {
	m := unitBox()
	w := m.NewWorker(0)
	p := v3(0.5, 0.5, 0.5)
	res, st := w.Insert(p, KindCircum, m.FirstCell())
	if st != OK {
		t.Fatalf("first insert: %v", st)
	}
	_, st = w.Insert(p, KindCircum, res.Created[0])
	if st != Failed {
		t.Fatalf("duplicate insert status = %v, want Failed", st)
	}
	if err := m.Check(); err != nil {
		t.Fatalf("mesh invalid after failed duplicate: %v", err)
	}
}

func TestInsertOutsideHull(t *testing.T) {
	m := unitBox()
	w := m.NewWorker(0)
	_, st := w.Insert(v3(1e6, 1e6, 1e6), KindCircum, m.FirstCell())
	if st != Outside {
		t.Fatalf("status = %v, want Outside", st)
	}
	if err := m.Check(); err != nil {
		t.Fatalf("mesh mutated by Outside insert: %v", err)
	}
	// Points outside the virtual box but inside the super-tetrahedron
	// are insertable (the refiner's rules, not the kernel, confine
	// refinement to the box).
	if _, st := w.Insert(v3(2, 2, 2), KindCircum, m.FirstCell()); st != OK {
		t.Fatalf("inside-hull insert: %v", st)
	}
}

func TestInsertStaleStart(t *testing.T) {
	m := unitBox()
	w := m.NewWorker(0)
	res, st := w.Insert(v3(0.5, 0.5, 0.5), KindCircum, m.FirstCell())
	if st != OK {
		t.Fatal(st)
	}
	dead := res.Killed[0]
	_, st = w.Insert(v3(0.4, 0.4, 0.4), KindCircum, dead)
	if st != Stale {
		t.Fatalf("status = %v, want Stale", st)
	}
}

func TestRemoveSingle(t *testing.T) {
	m := unitBox()
	w := m.NewWorker(0)
	rng := rand.New(rand.NewSource(7))
	start := m.FirstCell()
	var inserted []arena.Handle
	for i := 0; i < 60; i++ {
		p := v3(rng.Float64(), rng.Float64(), rng.Float64())
		res, st := w.Insert(p, KindCircum, start)
		if st != OK {
			t.Fatal(st)
		}
		inserted = append(inserted, res.NewVert)
		start = res.Created[0]
	}
	before := m.NumLiveVerts()
	res, st := w.Remove(inserted[30])
	if st != OK {
		t.Fatalf("Remove status = %v", st)
	}
	if len(res.Created) == 0 || len(res.Killed) == 0 {
		t.Fatal("removal produced no cells")
	}
	if m.Verts.At(inserted[30]).Dead() != true {
		t.Error("removed vertex not flagged dead")
	}
	if got := m.NumLiveVerts(); got != before-1 {
		t.Errorf("verts = %d, want %d", got, before-1)
	}
	if err := m.Check(); err != nil {
		t.Fatalf("mesh invalid after removal: %v", err)
	}
	if err := m.CheckDelaunayGlobal(); err != nil {
		t.Fatalf("not Delaunay after removal: %v", err)
	}
}

func TestRemoveMany(t *testing.T) {
	m := unitBox()
	w := m.NewWorker(0)
	rng := rand.New(rand.NewSource(11))
	start := m.FirstCell()
	var inserted []arena.Handle
	for i := 0; i < 200; i++ {
		p := v3(rng.Float64(), rng.Float64(), rng.Float64())
		res, st := w.Insert(p, KindCircum, start)
		if st != OK {
			t.Fatal(st)
		}
		inserted = append(inserted, res.NewVert)
		start = res.Created[0]
	}
	rng.Shuffle(len(inserted), func(i, j int) { inserted[i], inserted[j] = inserted[j], inserted[i] })
	removed := 0
	for _, vh := range inserted[:100] {
		_, st := w.Remove(vh)
		switch st {
		case OK:
			removed++
		case Failed:
			// Acceptable on degenerate links; must be rare for random
			// points.
		default:
			t.Fatalf("Remove status = %v", st)
		}
	}
	if removed < 95 {
		t.Errorf("only %d/100 random removals succeeded", removed)
	}
	if err := m.Check(); err != nil {
		t.Fatalf("mesh invalid: %v", err)
	}
	if err := m.CheckDelaunayGlobal(); err != nil {
		t.Fatalf("not Delaunay: %v", err)
	}
}

func TestRemoveBoxCornerRejected(t *testing.T) {
	m := unitBox()
	w := m.NewWorker(0)
	var corner arena.Handle
	m.LiveVerts(func(h arena.Handle, v *Vertex) {
		if v.Kind == KindBox {
			corner = h
		}
	})
	if _, st := w.Remove(corner); st != Failed {
		t.Fatalf("removing box corner: status %v, want Failed", st)
	}
}

func TestRemoveDeadVertexStale(t *testing.T) {
	m := unitBox()
	w := m.NewWorker(0)
	res, st := w.Insert(v3(0.5, 0.5, 0.5), KindCircum, m.FirstCell())
	if st != OK {
		t.Fatal(st)
	}
	vh := res.NewVert
	if _, st := w.Remove(vh); st != OK {
		t.Fatalf("first remove: %v", st)
	}
	if _, st := w.Remove(vh); st != Stale {
		t.Fatalf("second remove: %v, want Stale", st)
	}
}

func TestInsertRemoveInterleaved(t *testing.T) {
	m := unitBox()
	w := m.NewWorker(0)
	rng := rand.New(rand.NewSource(13))
	start := m.FirstCell()
	var live []arena.Handle
	for i := 0; i < 500; i++ {
		if len(live) > 20 && rng.Float64() < 0.3 {
			k := rng.Intn(len(live))
			res, st := w.Remove(live[k])
			if st != OK && st != Failed {
				t.Fatalf("remove: %v", st)
			}
			if st == OK {
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
				start = res.Created[0]
			}
		} else {
			p := v3(rng.Float64(), rng.Float64(), rng.Float64())
			res, st := w.Insert(p, KindCircum, start)
			if st != OK {
				t.Fatalf("insert: %v", st)
			}
			live = append(live, res.NewVert)
			start = res.Created[0]
		}
		if i%100 == 99 {
			if err := m.Check(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	if err := m.CheckDelaunayGlobal(); err != nil {
		t.Fatalf("not Delaunay at end: %v", err)
	}
}

func TestLocateFindsContainingCell(t *testing.T) {
	m := unitBox()
	w := m.NewWorker(0)
	rng := rand.New(rand.NewSource(17))
	start := m.FirstCell()
	for i := 0; i < 100; i++ {
		p := v3(rng.Float64(), rng.Float64(), rng.Float64())
		res, st := w.Insert(p, KindCircum, start)
		if st != OK {
			t.Fatal(st)
		}
		start = res.Created[0]
	}
	// Locate random points and verify containment via orientation.
	for i := 0; i < 200; i++ {
		p := v3(rng.Float64(), rng.Float64(), rng.Float64())
		h, st := w.locate(p, start)
		if st != OK {
			t.Fatalf("locate: %v", st)
		}
		c := m.Cells.At(h)
		for f := 0; f < 4; f++ {
			a := m.Pos(c.V[ftab[f][0]])
			b := m.Pos(c.V[ftab[f][1]])
			cc := m.Pos(c.V[ftab[f][2]])
			if geom.TetraVolume(a, b, cc, p) < -1e-12 {
				t.Fatalf("located cell does not contain point (face %d)", f)
			}
		}
	}
}

func TestWorkerStats(t *testing.T) {
	m := unitBox()
	w := m.NewWorker(0)
	rng := rand.New(rand.NewSource(3))
	start := m.FirstCell()
	for i := 0; i < 50; i++ {
		res, st := w.Insert(v3(rng.Float64(), rng.Float64(), rng.Float64()), KindCircum, start)
		if st != OK {
			t.Fatal(st)
		}
		start = res.Created[0]
	}
	if w.Stats.Inserts != 50 {
		t.Errorf("Inserts = %d", w.Stats.Inserts)
	}
	if w.Stats.CavityCells < 50 {
		t.Errorf("CavityCells = %d", w.Stats.CavityCells)
	}
	if w.Stats.LocksAcquired == 0 || w.Stats.WalkSteps == 0 {
		t.Error("locks/walk steps not counted")
	}
}

func TestVertexKindsAndStamps(t *testing.T) {
	m := unitBox()
	w := m.NewWorker(0)
	res, st := w.Insert(v3(0.3, 0.3, 0.3), KindIso, m.FirstCell())
	if st != OK {
		t.Fatal(st)
	}
	v := m.Verts.At(res.NewVert)
	if v.Kind != KindIso {
		t.Errorf("Kind = %v", v.Kind)
	}
	if v.Stamp != 13 { // 4 super-tet + 8 box corners + 1
		t.Errorf("Stamp = %d, want 13", v.Stamp)
	}
	res2, st := w.Insert(v3(0.7, 0.7, 0.7), KindSurface, res.Created[0])
	if st != OK {
		t.Fatal(st)
	}
	if m.Verts.At(res2.NewVert).Stamp != v.Stamp+1 {
		t.Error("stamps not monotone")
	}
}

func TestPublicLocate(t *testing.T) {
	m := unitBox()
	w := m.NewWorker(0)
	res, st := w.Insert(v3(0.5, 0.5, 0.5), KindCircum, m.FirstCell())
	if st != OK {
		t.Fatal(st)
	}
	h, st := w.Locate(v3(0.25, 0.25, 0.25), res.Created[0])
	if st != OK {
		t.Fatalf("Locate: %v", st)
	}
	if m.Cells.At(h).Dead() {
		t.Fatal("located a dead cell")
	}
	if _, st := w.Locate(v3(1e9, 0, 0), res.Created[0]); st != Outside {
		t.Fatalf("far point: %v, want Outside", st)
	}
}

func TestAccessors(t *testing.T) {
	m := unitBox()
	w := m.NewWorker(3)
	if w.Mesh() != m {
		t.Error("Worker.Mesh")
	}
	if w.ID() != 3 {
		t.Error("Worker.ID")
	}
	lo, hi := m.Bounds()
	if lo != v3(0, 0, 0) || hi != v3(1, 1, 1) {
		t.Errorf("Bounds = %v %v", lo, hi)
	}
	if m.NumVerts() != 12 {
		t.Errorf("NumVerts = %d", m.NumVerts())
	}
	if m.NumCellsAllocated() < m.NumLiveCells() {
		t.Error("allocated < live")
	}
	for _, st := range []Status{OK, Conflict, Stale, Failed, Outside, Status(99)} {
		if st.String() == "" {
			t.Errorf("empty Status string for %d", st)
		}
	}
	// Face returns the ftab ordering with the opposite vertex positive.
	var anyCell arena.Handle
	m.LiveCells(func(h arena.Handle, c *Cell) { anyCell = h })
	c := m.Cells.At(anyCell)
	for f := 0; f < 4; f++ {
		face := c.Face(f)
		if geom.TetraVolume(m.Pos(face[0]), m.Pos(face[1]), m.Pos(face[2]), m.Pos(c.V[f])) <= 0 {
			t.Fatalf("Face(%d) orientation wrong", f)
		}
	}
	// Inside flag defaults to false and latches on.
	if c.Inside() {
		t.Error("fresh cell marked inside")
	}
	c.SetInside(false)
	if c.Inside() {
		t.Error("SetInside(false) set the flag")
	}
	c.SetInside(true)
	if !c.Inside() {
		t.Error("SetInside(true) did not set the flag")
	}
}
