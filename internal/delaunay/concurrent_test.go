package delaunay

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/arena"
)

// TestConcurrentInserts stresses the speculative protocol: several
// workers insert random points simultaneously, retrying on rollbacks,
// and the final mesh must satisfy every invariant.
func TestConcurrentInserts(t *testing.T) {
	m := unitBox()
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	const perWorker = 400

	var rollbacks atomic.Int64
	var wg sync.WaitGroup
	for tid := 0; tid < workers; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			w := m.NewWorker(tid)
			rng := rand.New(rand.NewSource(int64(tid) + 100))
			start := m.FirstCell()
			inserted := 0
			for inserted < perWorker {
				p := v3(rng.Float64(), rng.Float64(), rng.Float64())
				res, st := w.Insert(p, KindCircum, start)
				switch st {
				case OK:
					inserted++
					start = res.Created[0]
				case Conflict:
					rollbacks.Add(1)
				case Stale:
					start = m.FirstCell()
				default:
					t.Errorf("worker %d: unexpected status %v", tid, st)
					return
				}
			}
		}(tid)
	}
	wg.Wait()

	want := workers*perWorker + 12
	if got := m.NumLiveVerts(); got != want {
		t.Errorf("verts = %d, want %d", got, want)
	}
	if err := m.Check(); err != nil {
		t.Fatalf("mesh invalid after concurrent inserts: %v", err)
	}
	t.Logf("workers=%d rollbacks=%d", workers, rollbacks.Load())
}

// TestConcurrentInsertRemove mixes insertions and removals across
// workers. Each worker only removes vertices it inserted itself, so
// the vertex is live unless the removal already happened (retried
// conflicts aside).
func TestConcurrentInsertRemove(t *testing.T) {
	m := unitBox()
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	const ops = 500

	var wg sync.WaitGroup
	for tid := 0; tid < workers; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			w := m.NewWorker(tid)
			rng := rand.New(rand.NewSource(int64(tid) + 999))
			start := m.FirstCell()
			var mine []arena.Handle
			for n := 0; n < ops; n++ {
				if len(mine) > 10 && rng.Float64() < 0.25 {
					k := rng.Intn(len(mine))
					_, st := w.Remove(mine[k])
					switch st {
					case OK, Failed:
						if st == OK {
							mine[k] = mine[len(mine)-1]
							mine = mine[:len(mine)-1]
						}
					case Conflict:
						// retry later
					default:
						t.Errorf("worker %d remove: %v", tid, st)
						return
					}
					continue
				}
				p := v3(rng.Float64(), rng.Float64(), rng.Float64())
				res, st := w.Insert(p, KindCircum, start)
				switch st {
				case OK:
					mine = append(mine, res.NewVert)
					start = res.Created[0]
				case Conflict:
					// retry later
				case Stale:
					start = m.FirstCell()
				default:
					t.Errorf("worker %d insert: %v", tid, st)
					return
				}
			}
		}(tid)
	}
	wg.Wait()

	if err := m.Check(); err != nil {
		t.Fatalf("mesh invalid after concurrent insert/remove: %v", err)
	}
	// No locks may remain.
	m.LiveVerts(func(h arena.Handle, v *Vertex) {
		if v.LockedBy() != -1 {
			t.Errorf("vertex %d still locked by %d", h, v.LockedBy())
		}
	})
}

// TestConcurrentDenseContention forces heavy conflicts by inserting
// into a tiny region from many workers.
func TestConcurrentDenseContention(t *testing.T) {
	m := unitBox()
	workers := 8
	const perWorker = 150

	var wg sync.WaitGroup
	var totalRollbacks atomic.Int64
	for tid := 0; tid < workers; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			w := m.NewWorker(tid)
			rng := rand.New(rand.NewSource(int64(tid) * 31))
			start := m.FirstCell()
			inserted := 0
			for inserted < perWorker {
				// All points crowd into a small ball.
				p := v3(
					0.5+0.05*(rng.Float64()-0.5),
					0.5+0.05*(rng.Float64()-0.5),
					0.5+0.05*(rng.Float64()-0.5),
				)
				res, st := w.Insert(p, KindCircum, start)
				switch st {
				case OK:
					inserted++
					start = res.Created[0]
				case Conflict:
					totalRollbacks.Add(1)
				case Stale:
					start = m.FirstCell()
				case Failed:
					inserted++ // exact duplicate of a concurrent point
				default:
					t.Errorf("status %v", st)
					return
				}
			}
		}(tid)
	}
	wg.Wait()
	if err := m.Check(); err != nil {
		t.Fatalf("mesh invalid under dense contention: %v", err)
	}
	if totalRollbacks.Load() == 0 {
		t.Log("warning: no rollbacks observed (contention not exercised)")
	}
}
