package delaunay

import (
	"repro/internal/arena"
	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/predicates"
)

const (
	maxWalkSteps    = 1 << 16
	maxWalkRestarts = 4
)

// Insert speculatively inserts a point at p with the given kind,
// locating it by walking from start (usually the poor cell being
// refined). On OK, the result lists the created and killed cells and
// the new vertex's handle. Any other status leaves the mesh untouched.
func (w *Worker) Insert(p geom.Vec3, kind VertKind, start arena.Handle) (*OpResult, Status) {
	w.reset()

	loc, st := w.locate(p, start)
	if st != OK {
		w.countFailure(st)
		return nil, st
	}

	st = w.growCavity(p, loc)
	if st != OK {
		if st == Conflict {
			w.rollback()
		} else {
			w.unlockAll()
			w.countFailure(st)
		}
		return nil, st
	}

	// Validate the star shape: p must be strictly interior to every
	// boundary face, otherwise connecting p would create a flat cell.
	for _, bf := range w.sc.boundary {
		c := w.m.Cells.At(bf.in)
		a := w.m.Pos(c.V[ftab[bf.face][0]])
		b := w.m.Pos(c.V[ftab[bf.face][1]])
		cc := w.m.Pos(c.V[ftab[bf.face][2]])
		if predicates.Orient3D(a, b, cc, p) <= 0 {
			w.unlockAll()
			w.Stats.FailedOps++
			return nil, Failed
		}
	}

	// Fault-injection sites, both at the point of maximum leverage:
	// every cavity lock is held but the mesh is still untouched, so a
	// recovered panic here must release the locks to unwedge the run,
	// and a delay here maximizes the contention window other workers
	// see. Both compile to a nil-check when injection is disabled.
	faultinject.Check(faultinject.WorkerPanic)
	faultinject.Sleep(faultinject.CommitDelay)

	w.commitInsert(p, kind)
	return &w.result, OK
}

func (w *Worker) countFailure(st Status) {
	switch st {
	case Stale:
		w.Stats.StaleOps++
	case Failed, Outside:
		w.Stats.FailedOps++
	}
}

// locate walks from start to the cell containing p. It runs lock-free:
// the result is re-validated under locks by growCavity. Stepping onto
// a dead cell restarts the walk from start (the structure changed
// underfoot); a dead start is reported Stale.
func (w *Worker) locate(p geom.Vec3, start arena.Handle) (arena.Handle, Status) {
	if start == arena.Nil {
		return arena.Nil, Stale
	}
	restarts := 0
	cur := start
	for steps := 0; steps < maxWalkSteps; steps++ {
		c := w.m.Cells.At(cur)
		if c.Dead() {
			if cur == start || restarts >= maxWalkRestarts {
				return arena.Nil, Stale
			}
			restarts++
			cur = start
			continue
		}
		w.Stats.WalkSteps++

		moved := false
		off := w.rng.Intn(4)
		for k := 0; k < 4; k++ {
			f := (k + off) & 3
			a := w.m.Pos(c.V[ftab[f][0]])
			b := w.m.Pos(c.V[ftab[f][1]])
			cc := w.m.Pos(c.V[ftab[f][2]])
			if predicates.Orient3D(a, b, cc, p) < 0 {
				nb := c.Neighbor(f)
				if nb == arena.Nil {
					// Off the hull: either p really lies outside the
					// super-tetrahedron, or the lock-free walk crossed
					// a region mutated underfoot. Restarts separate
					// the two (a genuine Outside reproduces).
					if restarts >= maxWalkRestarts {
						return arena.Nil, Outside
					}
					restarts++
					cur = start
					moved = true
					break
				}
				cur = nb
				moved = true
				break
			}
		}
		if !moved {
			return cur, OK
		}
	}
	return arena.Nil, Stale
}

// conflict reports whether p lies inside the (symbolically perturbed)
// circumsphere of cell c. The symbolic perturbation makes the answer
// unambiguous for cospherical configurations and identical for every
// observer, so the mesh is at all times the unique perturbed Delaunay
// triangulation of its live vertices — the property vertex removal
// relies on to re-derive a hole filling that matches the shared mesh.
func (w *Worker) conflict(c *Cell, p geom.Vec3) bool {
	return predicates.InSphereSoS(
		w.m.Pos(c.V[0]), w.m.Pos(c.V[1]), w.m.Pos(c.V[2]), w.m.Pos(c.V[3]), p) > 0
}

// Cavity BFS marks in w.sc.visited.
const (
	visitCavity  = 1
	visitOutside = 2
)

// growCavity expands the conflict region of p starting from the cell
// loc, locking every touched vertex before reading connectivity
// through it (the speculative-execution protocol). On OK, w.sc.cavity
// lists the conflict cells and w.sc.boundary their boundary faces; all
// their vertices (and the apexes of tested outside cells) are locked.
func (w *Worker) growCavity(p geom.Vec3, loc arena.Handle) Status {
	c0 := w.m.Cells.At(loc)
	if !w.lockCell(c0) {
		return Conflict
	}
	if c0.Dead() {
		return Stale
	}
	for i := 0; i < 4; i++ {
		if w.m.Pos(c0.V[i]) == p {
			// Exact duplicate of an existing vertex: the containing
			// cell of a mesh vertex always has it as a corner.
			return Failed
		}
	}
	if !w.conflict(c0, p) {
		// The located cell must be in conflict (p is inside it, hence
		// inside its circumsphere) unless p duplicates a vertex or the
		// walk raced; re-checked here exactly.
		return Failed
	}
	w.sc.visited[loc] = visitCavity
	w.sc.cavity = append(w.sc.cavity, loc)

	// Depth-first expansion; w.sc.cavity doubles as the worklist since
	// appended cells are processed exactly once.
	for i := 0; i < len(w.sc.cavity); i++ {
		ch := w.sc.cavity[i]
		c := w.m.Cells.At(ch)
		for f := 0; f < 4; f++ {
			nb := c.Neighbor(f)
			if nb == arena.Nil {
				// Hull face: a legitimate cavity boundary (the new point
				// connects to it and the new cell becomes a hull cell).
				w.sc.boundary = append(w.sc.boundary, bFace{in: ch, face: f, out: arena.Nil})
				continue
			}
			switch w.sc.visited[nb] {
			case visitCavity:
				continue
			case visitOutside:
				w.sc.boundary = append(w.sc.boundary, bFace{in: ch, face: f, out: nb})
				continue
			}
			n := w.m.Cells.At(nb)
			if !w.lockCell(n) {
				return Conflict
			}
			if n.Dead() {
				return Stale
			}
			if w.conflict(n, p) {
				w.sc.visited[nb] = visitCavity
				w.sc.cavity = append(w.sc.cavity, nb)
			} else {
				w.sc.visited[nb] = visitOutside
				w.sc.boundary = append(w.sc.boundary, bFace{in: ch, face: f, out: nb})
			}
		}
	}
	return OK
}

// edgeKey canonicalizes an edge for internal-face matching.
func edgeKey(a, b arena.Handle) [2]arena.Handle {
	if a > b {
		a, b = b, a
	}
	return [2]arena.Handle{a, b}
}

// commitInsert performs the irreversible part of an insertion: all
// needed locks are held and validated, so no failure is possible past
// this point.
func (w *Worker) commitInsert(p geom.Vec3, kind VertKind) {
	m := w.m

	// New vertex, born locked by this worker. Every field is written:
	// arena slots may be recycled scratch storage.
	vh := w.va.Alloc()
	v := m.Verts.At(vh)
	v.Pos = p
	v.Kind = kind
	v.Stamp = m.stamp.Add(1)
	v.flags.Store(0)
	v.incident.Store(0)
	v.lock.Store(w.tid + 1)
	w.locked = append(w.locked, vh)
	w.result.NewVert = vh

	// One new cell per boundary face: (a, b, c, p), positively
	// oriented because Orient3D(face, p) > 0 was verified.
	// Phase 1: create and fully wire the new star among itself. The
	// new cells stay unreachable from the live mesh until phase 2, so
	// lock-free walkers never observe half-wired connectivity.
	edges := w.sc.edges
	clear(edges)
	for _, bf := range w.sc.boundary {
		in := m.Cells.At(bf.in)
		a := in.V[ftab[bf.face][0]]
		b := in.V[ftab[bf.face][1]]
		c := in.V[ftab[bf.face][2]]

		nh := w.ca.Alloc()
		nc := m.Cells.At(nh)
		nc.V = [4]arena.Handle{a, b, c, vh}
		nc.CC, nc.R2 = circum(m, nc.V)
		nc.flags.Store(0)
		nc.Aux.Store(0)

		// Across face 3 (= (a,b,c)) lies the old outside cell (or the
		// hull).
		nc.setNeighbor(3, bf.out)

		// Faces 0,1,2 of (a,b,c,p) are internal; each corresponds to
		// one edge of the triangle: face 0 ~ (b,c), face 1 ~ (a,c),
		// face 2 ~ (a,b).
		wire := func(x, y arena.Handle, face int) {
			k := edgeKey(x, y)
			if other, ok := edges[k]; ok {
				nc.setNeighbor(face, other.cell)
				m.Cells.At(other.cell).setNeighbor(other.face, nh)
				delete(edges, k)
			} else {
				edges[k] = edgeRef{nh, face}
			}
		}
		wire(b, c, 0)
		wire(a, c, 1)
		wire(a, b, 2)

		w.result.Created = append(w.result.Created, nh)
	}

	// Phase 2: publish, pointing the surviving outside cells at the
	// new star.
	for i, bf := range w.sc.boundary {
		if bf.out == arena.Nil {
			continue
		}
		out := m.Cells.At(bf.out)
		if j := out.FaceIndex(bf.in); j >= 0 {
			out.setNeighbor(j, w.result.Created[i])
		}
	}

	// Refresh incident hints (we hold all these vertices' locks).
	for _, nh := range w.result.Created {
		nc := m.Cells.At(nh)
		for i := 0; i < 4; i++ {
			m.Verts.At(nc.V[i]).incident.Store(uint32(nh))
		}
	}

	// Retire the cavity.
	for _, ch := range w.sc.cavity {
		m.Cells.At(ch).flags.Or(cellDead)
		w.result.Killed = append(w.result.Killed, ch)
	}

	m.firstCell.Store(uint32(w.result.Created[0]))
	w.Stats.Inserts++
	w.Stats.CavityCells += int64(len(w.sc.cavity))
	w.unlockAll()
}

// Locate returns the live cell containing p, walking from start. It is
// the public point-location entry for library users (field probes,
// in-mesh queries); refinement itself uses the internal path. The
// result may be stale immediately under concurrent mutation.
func (w *Worker) Locate(p geom.Vec3, start arena.Handle) (arena.Handle, Status) {
	return w.locate(p, start)
}
