package delaunay

import (
	"math/rand"
	"sync"

	"repro/internal/arena"
	"repro/internal/faultinject"
)

// Status is the outcome of a speculative operation.
type Status int

const (
	// OK: the operation committed.
	OK Status = iota
	// Conflict: a vertex lock was held by another worker; the
	// operation rolled back with no effect. ConflictTid identifies the
	// owner for the contention manager.
	Conflict
	// Stale: the operation's target (start cell or vertex) was dead on
	// arrival; the caller should drop the work item.
	Stale
	// Failed: the operation could not be applied for geometric reasons
	// (exact duplicate point, degenerate configuration, removal
	// retriangulation mismatch). No effect.
	Failed
	// Outside: the point to insert lies outside the triangulated box.
	Outside
)

func (s Status) String() string {
	switch s {
	case OK:
		return "OK"
	case Conflict:
		return "Conflict"
	case Stale:
		return "Stale"
	case Failed:
		return "Failed"
	case Outside:
		return "Outside"
	}
	return "Unknown"
}

// OpResult reports the cells changed by a committed operation. The
// slices are owned by the worker and valid until its next operation.
type OpResult struct {
	Created []arena.Handle
	Killed  []arena.Handle
	NewVert arena.Handle
}

// Stats counts a worker's kernel-level activity.
type Stats struct {
	Inserts       int64 // committed insertions
	Removals      int64 // committed removals
	Rollbacks     int64 // operations aborted on a lock conflict
	StaleOps      int64 // operations dropped on dead targets
	FailedOps     int64 // geometric failures
	WalkSteps     int64 // point-location steps
	CavityCells   int64 // cells deleted by insertions (cavity sizes)
	LocksAcquired int64
}

// Worker performs speculative operations on a shared Mesh on behalf of
// one thread. A Worker must only be used from a single goroutine.
type Worker struct {
	m   *Mesh
	tid int32

	va *arena.Allocator[Vertex]
	ca *arena.Allocator[Cell]

	// locked holds the vertices locked by the in-flight operation, in
	// acquisition order.
	locked []arena.Handle

	// sc is the pooled per-operation scratch (cavity walk, boundary,
	// removal maps), drawn from scratchPool so transient workers — the
	// bootstrap of every mesh (re)build, one-shot query workers — reuse
	// buffers that long-lived workers warmed up.
	sc *opScratch

	result OpResult
	rng    *rand.Rand

	// scratch is the reusable local mesh for vertex removal's hole
	// re-triangulation (see Remove).
	scratch  *Mesh
	scratchW *Worker

	// ConflictTid is the owner of the lock that caused the most recent
	// Conflict status (-1 otherwise).
	ConflictTid int

	Stats Stats
}

// opScratch bundles every buffer an operation needs beyond the
// worker's allocators: the Bowyer-Watson cavity walk state and the
// vertex-removal bookkeeping. Instances cycle through scratchPool;
// all fields are length-reset or cleared at the start of each use, so
// stale contents are harmless.
type opScratch struct {
	cavity   []arena.Handle
	boundary []bFace
	visited  map[arena.Handle]uint8
	edges    map[[2]arena.Handle]edgeRef

	// Vertex-removal state (nil until the worker's first Remove).
	hole       map[[3]arena.Handle]holeFace
	linkSet    map[arena.Handle]struct{}
	link       []arena.Handle
	toGlobal   map[arena.Handle]arena.Handle
	localToNew map[arena.Handle]arena.Handle
	fill       []arena.Handle
	rewires    []rewire
}

var scratchPool = sync.Pool{New: func() any {
	return &opScratch{
		visited: make(map[arena.Handle]uint8, 64),
		edges:   make(map[[2]arena.Handle]edgeRef, 64),
	}
}}

// bFace is a cavity boundary face: face `face` of inside (cavity) cell
// `in`, with the live outside cell `out` across it.
type bFace struct {
	in   arena.Handle
	face int
	out  arena.Handle
}

// edgeRef identifies a pending internal face during cavity
// re-triangulation.
type edgeRef struct {
	cell arena.Handle
	face int
}

// NewWorker creates a worker with the given id (ids must be unique
// among concurrently operating workers and >= 0).
func (m *Mesh) NewWorker(tid int) *Worker {
	return &Worker{
		m:           m,
		tid:         int32(tid),
		va:          m.Verts.NewAllocator(),
		ca:          m.Cells.NewAllocator(),
		sc:          scratchPool.Get().(*opScratch),
		rng:         walkRNG(tid),
		ConflictTid: -1,
	}
}

// walkRNG seeds the walk-randomization generator deterministically per
// worker id, so a reused worker reproduces a fresh one's behavior.
func walkRNG(tid int) *rand.Rand {
	return rand.New(rand.NewSource(int64(tid)*7919 + 1))
}

// PrepareReuse readies a retained worker for a fresh run on a mesh
// that has been Reset: the allocators detach from the recycled arena
// chunks, kernel counters restart, and the walk RNG is reseeded so a
// warm run is indistinguishable from a cold one. The removal scratch
// mesh is deliberately kept — it is the single largest per-worker
// allocation and self-resets on each use.
func (w *Worker) PrepareReuse() {
	w.va.Reset()
	w.ca.Reset()
	w.Stats = Stats{}
	w.rng = walkRNG(int(w.tid))
	w.ConflictTid = -1
	w.locked = w.locked[:0]
	if w.sc == nil {
		w.sc = scratchPool.Get().(*opScratch)
	}
	if w.scratch != nil {
		w.scratch.recoveredBoot.Store(0)
	}
}

// ScratchPanicRecoveries reports panics recovered inside the removal
// scratch mesh's bootstrap, so a run can fold them into its failure
// accounting.
func (w *Worker) ScratchPanicRecoveries() int64 {
	if w.scratch == nil {
		return 0
	}
	return w.scratch.BootstrapPanicRecoveries()
}

// Release returns the worker's pooled scratch (and its removal scratch
// worker's, recursively) to the package pool. The worker must not be
// used afterwards. Optional — a dropped worker is simply collected —
// but short-lived workers that Release let the bootstrap of the next
// mesh reset reuse their buffers.
func (w *Worker) Release() {
	if w.sc != nil {
		scratchPool.Put(w.sc)
		w.sc = nil
	}
	if w.scratchW != nil {
		w.scratchW.Release()
		w.scratchW = nil
		w.scratch = nil
	}
}

// Mesh returns the shared mesh the worker operates on.
func (w *Worker) Mesh() *Mesh { return w.m }

// ID returns the worker id.
func (w *Worker) ID() int { return int(w.tid) }

// tryLock attempts to acquire v's lock. It reports success; on failure
// it records the conflicting owner in w.ConflictTid. Re-acquiring a
// vertex already held by this worker succeeds without recording it
// twice.
func (w *Worker) tryLock(vh arena.Handle) bool {
	v := w.m.Verts.At(vh)
	if faultinject.Fire(faultinject.LockDeny) {
		// Synthetic CAS denial: behave exactly like a lost race with an
		// unknown owner so the rollback/contention-manager path runs.
		w.ConflictTid = -1
		return false
	}
	if v.lock.CompareAndSwap(0, w.tid+1) {
		w.locked = append(w.locked, vh)
		w.Stats.LocksAcquired++
		return true
	}
	owner := v.lock.Load()
	if owner == w.tid+1 {
		return true // reentrant
	}
	// The owner may have released between the CAS and the Load; retry
	// once to avoid a spurious rollback.
	if v.lock.CompareAndSwap(0, w.tid+1) {
		w.locked = append(w.locked, vh)
		w.Stats.LocksAcquired++
		return true
	}
	owner = v.lock.Load()
	w.ConflictTid = int(owner) - 1
	return false
}

// lockCell locks all four vertices of cell c.
func (w *Worker) lockCell(c *Cell) bool {
	for i := 0; i < 4; i++ {
		if !w.tryLock(c.V[i]) {
			return false
		}
	}
	return true
}

// unlockAll releases every lock held by the in-flight operation.
func (w *Worker) unlockAll() {
	for _, vh := range w.locked {
		w.m.Verts.At(vh).lock.Store(0)
	}
	w.locked = w.locked[:0]
}

// reset prepares the worker's scratch state for a new operation.
func (w *Worker) reset() {
	sc := w.sc
	sc.cavity = sc.cavity[:0]
	sc.boundary = sc.boundary[:0]
	clear(sc.visited)
	w.result.Created = w.result.Created[:0]
	w.result.Killed = w.result.Killed[:0]
	w.result.NewVert = arena.Nil
	w.ConflictTid = -1
}

// rollback aborts the in-flight operation.
func (w *Worker) rollback() {
	w.unlockAll()
	w.Stats.Rollbacks++
}

// RecoverFromPanic restores the worker to a usable state after a panic
// unwound an in-flight operation: every held vertex lock is released in
// reverse acquisition order (innermost first, mirroring the unwind) and
// the scratch state is cleared. It returns the number of locks that
// were released. The shared mesh is untouched by definition at every
// panic-safe site (the commit phases perform no allocation and no call
// that can panic), so dropping the locks re-exposes a consistent mesh.
func (w *Worker) RecoverFromPanic() int {
	n := len(w.locked)
	for i := n - 1; i >= 0; i-- {
		w.m.Verts.At(w.locked[i]).lock.Store(0)
	}
	w.locked = w.locked[:0]
	w.reset()
	return n
}
