package delaunay

import (
	"sort"

	"repro/internal/arena"
	"repro/internal/geom"
)

// holeFace records one face of the hole boundary left by removing a
// vertex: the retiring ball cell that provided it and the live cell
// outside the hole (arena.Nil on the hull).
type holeFace struct {
	ball arena.Handle
	out  arena.Handle
}

// rewire defers one outside-cell neighbor update to the commit point
// of a removal (the first mutation other workers can observe).
type rewire struct {
	out     arena.Handle
	oldBall arena.Handle
	cell    arena.Handle
	face    int
}

// removeScratch lazily builds, then clears, the removal maps of the
// worker's pooled scratch, returning the hole map ready for use. Most
// workers never remove, so the maps are not part of the pool's New.
func (w *Worker) removeScratch() map[[3]arena.Handle]holeFace {
	sc := w.sc
	if sc.hole == nil {
		sc.hole = make(map[[3]arena.Handle]holeFace, 32)
		sc.linkSet = make(map[arena.Handle]struct{}, 32)
		sc.toGlobal = make(map[arena.Handle]arena.Handle, 32)
		sc.localToNew = make(map[arena.Handle]arena.Handle, 32)
	} else {
		clear(sc.hole)
		clear(sc.linkSet)
		clear(sc.toGlobal)
		clear(sc.localToNew)
	}
	sc.link = sc.link[:0]
	sc.fill = sc.fill[:0]
	sc.rewires = sc.rewires[:0]
	return sc.hole
}

// Remove speculatively deletes vertex vh from the triangulation,
// re-triangulating its ball so that the mesh remains Delaunay (paper
// Section 4.2). The hole left by the vertex is filled with the
// conflict region of the vertex's position inside a *local* Delaunay
// triangulation of its link, built by re-inserting the link vertices
// in their global insertion (timestamp) order — the paper's strategy
// for keeping the local re-triangulation compatible with the shared
// mesh in degenerate configurations. If the local and global
// triangulations still disagree (exactly cospherical links), the
// operation returns Failed and the mesh is untouched.
func (w *Worker) Remove(vh arena.Handle) (*OpResult, Status) {
	w.reset()
	m := w.m

	if !w.tryLock(vh) {
		w.rollback()
		return nil, Conflict
	}
	v := m.Verts.At(vh)
	if v.Dead() {
		w.unlockAll()
		w.Stats.StaleOps++
		return nil, Stale
	}
	if v.Kind == KindBox {
		w.unlockAll()
		w.Stats.FailedOps++
		return nil, Failed
	}

	// Gather the ball of v. Cells containing v cannot die while we
	// hold v's lock, so the hint is live and the BFS below sees a
	// frozen star; we still must lock every ball vertex because the
	// commit rewires cells incident to them.
	ball := w.sc.cavity[:0] // reuse the cavity scratch buffer
	start := v.Incident()
	if start == arena.Nil {
		w.unlockAll()
		w.Stats.FailedOps++
		return nil, Failed
	}
	if !w.lockCell(m.Cells.At(start)) {
		w.rollback()
		return nil, Conflict
	}
	w.sc.visited[start] = visitCavity
	ball = append(ball, start)
	hole := w.removeScratch()
	for i := 0; i < len(ball); i++ {
		ch := ball[i]
		c := m.Cells.At(ch)
		iv := c.VertIndex(vh)
		for f := 0; f < 4; f++ {
			nb := c.Neighbor(f)
			if f == iv {
				// Face opposite v: hole boundary. nb is live: a
				// neighbor pointer read under the face's vertex locks
				// always refers to a live cell.
				hole[sortedFace(c, f)] = holeFace{ball: ch, out: nb}
				continue
			}
			if nb == arena.Nil {
				// v on the hull: only box corners are hull vertices and
				// those were rejected above; defensive.
				w.unlockAll()
				w.Stats.FailedOps++
				return nil, Failed
			}
			if w.sc.visited[nb] != 0 {
				continue
			}
			if !w.lockCell(m.Cells.At(nb)) {
				w.rollback()
				return nil, Conflict
			}
			w.sc.visited[nb] = visitCavity
			ball = append(ball, nb)
		}
	}
	w.sc.cavity = ball

	// Link vertices, sorted by global insertion stamp.
	linkSet := w.sc.linkSet
	for _, ch := range ball {
		c := m.Cells.At(ch)
		for i := 0; i < 4; i++ {
			if c.V[i] != vh {
				linkSet[c.V[i]] = struct{}{}
			}
		}
	}
	link := w.sc.link[:0]
	for h := range linkSet {
		link = append(link, h)
	}
	w.sc.link = link
	sort.Slice(link, func(i, j int) bool {
		return m.Verts.At(link[i]).Stamp < m.Verts.At(link[j]).Stamp
	})

	fill, st := w.triangulateHole(v.Pos, link, hole)
	if st != OK {
		// No mutation has happened; release and report.
		if st == Conflict {
			w.rollback()
		} else {
			w.unlockAll()
			w.countFailure(st)
		}
		return nil, st
	}

	// Commit: publish fill cells (triangulateHole wired them), refresh
	// hints, retire the ball, kill the vertex.
	for _, nh := range fill {
		nc := m.Cells.At(nh)
		for i := 0; i < 4; i++ {
			m.Verts.At(nc.V[i]).incident.Store(uint32(nh))
		}
		w.result.Created = append(w.result.Created, nh)
	}
	for _, ch := range ball {
		m.Cells.At(ch).flags.Or(cellDead)
		w.result.Killed = append(w.result.Killed, ch)
	}
	v.flags.Or(vertDead)
	m.firstCell.Store(uint32(fill[0]))
	w.Stats.Removals++
	w.unlockAll()
	return &w.result, OK
}

// triangulateHole builds the local Delaunay triangulation of the link
// vertices and instantiates the conflict region of p as new global
// cells, wired internally and to the hole boundary. It returns the new
// cell handles without publishing them (they are unreachable until the
// caller retires the ball). Nothing is mutated on failure: the new
// cells are allocated but never linked, which the append-only arena
// tolerates (they are simply garbage).
func (w *Worker) triangulateHole(
	p geom.Vec3,
	link []arena.Handle,
	hole map[[3]arena.Handle]holeFace,
) ([]arena.Handle, Status) {
	m := w.m

	// (Re)build the scratch mesh: the global hull's bounding box
	// inflated 4x, so every global vertex — box corners and super-tet
	// corners included — stays strictly interior to the scratch hull.
	lo, hi := m.superLo, m.superHi
	span := hi.Sub(lo)
	slo := lo.Sub(span.Scale(1.5))
	shi := hi.Add(span.Scale(1.5))
	if w.scratch == nil {
		sm, err := NewMesh(slo, shi)
		if err != nil {
			return nil, Failed
		}
		w.scratch = sm
		w.scratchW = w.scratch.NewWorker(0)
	} else {
		if err := w.scratch.resetTo(slo, shi); err != nil {
			return nil, Failed
		}
		w.scratchW.va.Reset()
		w.scratchW.ca.Reset()
	}
	sm, sw := w.scratch, w.scratchW

	// Insert link vertices in stamp order, tracking local->global.
	toGlobal := w.sc.toGlobal
	hint := sm.FirstCell()
	for _, gh := range link {
		res, st := sw.Insert(m.Verts.At(gh).Pos, KindIso, hint)
		if st != OK {
			return nil, Failed
		}
		toGlobal[res.NewVert] = gh
		hint = res.Created[0]
	}

	// Conflict region of p in the local triangulation.
	loc, st := sw.locate(p, hint)
	if st != OK {
		return nil, Failed
	}
	sw.reset()
	st = sw.growCavity(p, loc)
	sw.unlockAll()
	if st != OK {
		return nil, Failed
	}

	// Every conflict cell must consist purely of link vertices.
	for _, lch := range sw.sc.cavity {
		lc := sm.Cells.At(lch)
		for i := 0; i < 4; i++ {
			if _, ok := toGlobal[lc.V[i]]; !ok {
				return nil, Failed
			}
		}
	}
	// The conflict region's boundary must match the hole boundary
	// exactly: same number of faces, every face present.
	if len(sw.sc.boundary) != len(hole) {
		return nil, Failed
	}

	// Instantiate fill cells.
	localToNew := w.sc.localToNew
	fill := w.sc.fill[:0]
	for _, lch := range sw.sc.cavity {
		lc := sm.Cells.At(lch)
		nh := w.ca.Alloc()
		nc := m.Cells.At(nh)
		for i := 0; i < 4; i++ {
			nc.V[i] = toGlobal[lc.V[i]]
		}
		nc.CC, nc.R2 = circum(m, nc.V)
		nc.flags.Store(0)
		nc.Aux.Store(0)
		localToNew[lch] = nh
		fill = append(fill, nh)
	}

	w.sc.fill = fill

	// Wire adjacency. Interior faces copy the local structure;
	// boundary faces attach to the hole.
	// discard abandons the (still unpublished) fill cells on a late
	// failure so that post-hoc sweeps do not see them as live.
	discard := func() {
		for _, h := range fill {
			m.Cells.At(h).flags.Or(cellDead)
		}
	}
	rewires := w.sc.rewires[:0]
	for _, lch := range sw.sc.cavity {
		lc := sm.Cells.At(lch)
		nh := localToNew[lch]
		nc := m.Cells.At(nh)
		for f := 0; f < 4; f++ {
			lnb := lc.Neighbor(f)
			if inner, ok := localToNew[lnb]; ok {
				nc.setNeighbor(f, inner)
				continue
			}
			key := sortedFace(nc, f)
			hf, ok := hole[key]
			if !ok {
				discard()
				return nil, Failed
			}
			nc.setNeighbor(f, hf.out)
			rewires = append(rewires, rewire{out: hf.out, oldBall: hf.ball, cell: nh, face: f})
			delete(hole, key)
		}
	}
	if len(hole) != 0 {
		discard()
		return nil, Failed
	}

	w.sc.rewires = rewires

	// Point the outside cells at the fill. This is the first mutation
	// visible to other workers; all checks have passed.
	for _, r := range rewires {
		if r.out == arena.Nil {
			continue
		}
		out := m.Cells.At(r.out)
		if j := out.FaceIndex(r.oldBall); j >= 0 {
			out.setNeighbor(j, r.cell)
		}
	}
	return fill, OK
}
