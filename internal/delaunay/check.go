package delaunay

import (
	"fmt"
	"math"

	"repro/internal/arena"
	"repro/internal/geom"
	"repro/internal/predicates"
)

// LiveCells visits every live cell. It must not race with operations
// (quiesce workers first).
func (m *Mesh) LiveCells(fn func(arena.Handle, *Cell)) {
	m.Cells.ForEach(func(h arena.Handle, c *Cell) {
		if c.V[0] == arena.Nil || c.Dead() {
			return
		}
		fn(h, c)
	})
}

// LiveVerts visits every live (not removed, initialized) vertex.
func (m *Mesh) LiveVerts(fn func(arena.Handle, *Vertex)) {
	m.Verts.ForEach(func(h arena.Handle, v *Vertex) {
		if v.Stamp == 0 || v.Dead() {
			return
		}
		fn(h, v)
	})
}

// NumLiveCells counts live cells (sweep; quiesced meshes only).
func (m *Mesh) NumLiveCells() int {
	n := 0
	m.LiveCells(func(arena.Handle, *Cell) { n++ })
	return n
}

// NumLiveVerts counts live vertices.
func (m *Mesh) NumLiveVerts() int {
	n := 0
	m.LiveVerts(func(arena.Handle, *Vertex) { n++ })
	return n
}

// Check verifies the structural invariants of a quiesced mesh:
// positive orientation of every live cell, no dead or removed
// vertices referenced, symmetric adjacency with matching shared faces,
// local Delaunayhood (no neighbor apex inside a cell's symbolically
// perturbed circumsphere), valid incident-cell hints, and that the
// live cells tile the hull (by total volume). It returns the first
// violation found.
func (m *Mesh) Check() error {
	var err error
	fail := func(format string, args ...any) bool {
		if err == nil {
			err = fmt.Errorf(format, args...)
		}
		return true
	}

	var vol float64
	live := make(map[arena.Handle]bool)
	m.LiveCells(func(h arena.Handle, c *Cell) { live[h] = true })

	m.LiveCells(func(h arena.Handle, c *Cell) {
		if err != nil {
			return
		}
		var p [4]geom.Vec3
		for i := 0; i < 4; i++ {
			if c.V[i] == arena.Nil {
				fail("cell %d: nil vertex %d", h, i)
				return
			}
			v := m.Verts.At(c.V[i])
			if v.Dead() {
				fail("cell %d: references removed vertex %d", h, c.V[i])
				return
			}
			p[i] = v.Pos
		}
		if predicates.Orient3D(p[0], p[1], p[2], p[3]) <= 0 {
			fail("cell %d: not positively oriented", h)
			return
		}
		vol += geom.TetraVolume(p[0], p[1], p[2], p[3])

		for f := 0; f < 4; f++ {
			nb := c.Neighbor(f)
			if nb == arena.Nil {
				continue
			}
			if !live[nb] {
				fail("cell %d: neighbor %d across face %d is dead", h, nb, f)
				return
			}
			n := m.Cells.At(nb)
			back := n.FaceIndex(h)
			if back < 0 {
				fail("cell %d: neighbor %d does not point back", h, nb)
				return
			}
			if sortedFace(c, f) != sortedFace(n, back) {
				fail("cell %d face %d: shared face mismatch with %d", h, f, nb)
				return
			}
			// Local Delaunay: the apex of the neighbor must not lie
			// strictly inside this cell's circumsphere.
			apex := n.V[back]
			if c.HasVert(apex) {
				fail("cell %d: neighbor %d apex %d is shared", h, nb, apex)
				return
			}
			if predicates.InSphereSoS(p[0], p[1], p[2], p[3], m.Verts.At(apex).Pos) > 0 {
				fail("cell %d: neighbor apex %d strictly inside circumsphere (not Delaunay)", h, apex)
				return
			}
		}
	})
	if err != nil {
		return err
	}

	want := m.hullVolume
	if math.Abs(vol-want) > 1e-6*want {
		return fmt.Errorf("live cells volume %g does not tile hull volume %g", vol, want)
	}

	m.LiveVerts(func(h arena.Handle, v *Vertex) {
		if err != nil {
			return
		}
		inc := v.Incident()
		if inc == arena.Nil {
			fail("vertex %d: nil incident hint", h)
			return
		}
		c := m.Cells.At(inc)
		if c.Dead() {
			fail("vertex %d: incident hint %d is dead", h, inc)
			return
		}
		if !c.HasVert(h) {
			fail("vertex %d: incident hint %d does not contain it", h, inc)
		}
	})
	return err
}

// CheckDelaunayGlobal verifies the empty-circumsphere property against
// every live vertex (O(cells x verts); small meshes only).
func (m *Mesh) CheckDelaunayGlobal() error {
	var verts []arena.Handle
	m.LiveVerts(func(h arena.Handle, v *Vertex) { verts = append(verts, h) })
	var err error
	m.LiveCells(func(h arena.Handle, c *Cell) {
		if err != nil {
			return
		}
		p0 := m.Pos(c.V[0])
		p1 := m.Pos(c.V[1])
		p2 := m.Pos(c.V[2])
		p3 := m.Pos(c.V[3])
		for _, vh := range verts {
			if c.HasVert(vh) {
				continue
			}
			if predicates.InSphereSoS(p0, p1, p2, p3, m.Pos(vh)) > 0 {
				err = fmt.Errorf("cell %d: vertex %d strictly inside circumsphere", h, vh)
				return
			}
		}
	})
	return err
}
