// Package faultinject is a deterministic fault-injection harness for
// the refinement engine. Production code is instrumented with named
// injection points (a denied CAS lock, a delayed commit, a worker
// panic, a dropped work-steal, a slowed EDT slice); when no injector is
// installed every hook reduces to a single atomic nil-check, so the
// instrumentation is free in normal operation.
//
// Determinism. Each point keeps its own check counter, and the verdict
// of the N-th check of a point is a pure function of (seed, point, N):
// a splitmix64 hash compared against the point's rate threshold.
// Re-running with the same seed therefore denies/fires the same
// positions in each point's check sequence. (The interleaving of checks
// across goroutines still varies run to run — full replay determinism
// is impossible under preemptive scheduling — but the *pattern* of
// faults is reproducible, which is what the soak tests need.)
package faultinject

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Point names one injection site compiled into the engine.
type Point int

const (
	// LockDeny makes Worker.tryLock fail as if another worker held the
	// vertex lock (a synthetic CAS denial → rollback storm).
	LockDeny Point = iota
	// CommitDelay stalls a committing insertion while it holds its
	// cavity locks, inflating the contention window.
	CommitDelay
	// WorkerPanic panics inside an in-flight operation at the
	// pre-commit site (locks held, mesh untouched), exercising the
	// refiner's panic isolation.
	WorkerPanic
	// DropSteal makes the load balancer's ClaimBeggar come back empty,
	// as if the begging list were lost; donors keep the work local.
	DropSteal
	// SlowEDT stalls one slice of the parallel distance transform.
	SlowEDT
	// QueueFull makes the serving layer's admission check report a
	// full job queue, forcing a synthetic 429 rejection.
	QueueFull
	// SlowSession stalls a checked-out pool session just before its
	// run, inflating queue wait for everyone behind it.
	SlowSession
	// RunPoisoned fails a serving-layer run outright before it starts,
	// simulating an input that reliably crashes the engine — the
	// trigger for per-key circuit breakers and session suspicion.
	RunPoisoned
	// LeaseLeak stalls a run while it ignores its context, simulating
	// a wedged run that holds its pool lease past cancellation — the
	// trigger for the runaway-run watchdog's abandon path.
	LeaseLeak
	// RebuildFail fails an asynchronous quarantined-session rebuild
	// attempt, forcing the pool's rebuild loop to retry with backoff.
	RebuildFail
	// CacheWriteFail fails a cachestore blob write with an I/O error
	// (EIO-like), exercising the store's degradation to memory-only
	// mode.
	CacheWriteFail
	// CacheTornWrite truncates a cachestore blob mid-write before the
	// rename, simulating a crash that left a torn-but-visible blob; the
	// CRC trailer must catch it on the next read or fsck.
	CacheTornWrite
	// CacheBitFlip corrupts one byte of a cachestore blob after its CRC
	// was computed, simulating silent media corruption; reads must
	// detect and quarantine it, never serve it.
	CacheBitFlip
	// CacheENOSPC fails a cachestore blob write with ENOSPC,
	// exercising the disk-full degradation ladder.
	CacheENOSPC
	// ProxyDialFail fails a router→backend proxied request at the
	// transport, as if the network partitioned that backend away
	// mid-traffic; the router must fall back to the next ring replica.
	ProxyDialFail
	// ProbeFail drops a router health probe (the probe observes a dead
	// network even though the backend may be fine), driving the
	// fail-open ejection and rejoin machinery.
	ProbeFail
	// BrownoutStuck pins the serving layer's brownout controller at
	// maximal pressure, as if its load signals were wedged high — the
	// controller degrades every request to the deepest ladder tier until
	// the storm subsides and hysteresis walks quality back up.
	BrownoutStuck
	// HedgeLoser stalls a router cache-only probe so that its hedge
	// (fired after the probe-latency quantile) races ahead and wins,
	// exercising first-winner selection and loser cancellation.
	HedgeLoser

	// NumPoints is the number of injection points.
	NumPoints int = iota
)

// String returns the point's name.
func (p Point) String() string {
	switch p {
	case LockDeny:
		return "lock-deny"
	case CommitDelay:
		return "commit-delay"
	case WorkerPanic:
		return "worker-panic"
	case DropSteal:
		return "drop-steal"
	case SlowEDT:
		return "slow-edt"
	case QueueFull:
		return "queue-full"
	case SlowSession:
		return "slow-session"
	case RunPoisoned:
		return "run-poisoned"
	case LeaseLeak:
		return "lease-leak"
	case RebuildFail:
		return "rebuild-fail"
	case CacheWriteFail:
		return "cache-write-fail"
	case CacheTornWrite:
		return "cache-torn-write"
	case CacheBitFlip:
		return "cache-bit-flip"
	case CacheENOSPC:
		return "cache-enospc"
	case ProxyDialFail:
		return "proxy-dial-fail"
	case ProbeFail:
		return "probe-fail"
	case BrownoutStuck:
		return "brownout-stuck"
	case HedgeLoser:
		return "hedge-loser"
	}
	return fmt.Sprintf("point(%d)", int(p))
}

// InjectedPanic is the value thrown by a WorkerPanic firing, so that
// recovery sites can distinguish harness panics from genuine bugs.
type InjectedPanic struct {
	Point Point
	N     int64 // which check in the point's sequence fired
}

func (e InjectedPanic) Error() string {
	return fmt.Sprintf("faultinject: injected %v (check %d)", e.Point, e.N)
}

// Config parameterizes an Injector.
type Config struct {
	// Seed drives the per-point fault pattern.
	Seed int64
	// Rates[p] is the probability in [0,1] that a check of point p
	// fires. Points absent from the map never fire.
	Rates map[Point]float64
	// MaxFires[p] optionally caps the number of firings of point p
	// (0 = unlimited); a bounded "storm" that subsides on its own.
	MaxFires map[Point]int64
	// After[p] suppresses the first N checks of point p — a
	// deterministic warm-up, so a storm can start mid-run after the
	// bootstrap and early refinement have gone through cleanly.
	After map[Point]int64
	// Delay is the stall applied by CommitDelay and SlowEDT firings
	// (default 1ms).
	Delay time.Duration
}

type pointState struct {
	threshold uint64 // hash < threshold → fire; 0 = never
	maxFires  int64  // 0 = unlimited
	after     int64  // first `after` checks never fire
	checks    atomic.Int64
	fires     atomic.Int64
	disarmed  atomic.Bool
}

// Injector evaluates injection points against a seeded fault pattern.
type Injector struct {
	seed  int64
	delay time.Duration
	pts   [NumPoints]pointState
}

// New builds an injector from cfg. It is inert until installed with
// Enable.
func New(cfg Config) *Injector {
	in := &Injector{seed: cfg.Seed, delay: cfg.Delay}
	if in.delay <= 0 {
		in.delay = time.Millisecond
	}
	for p, rate := range cfg.Rates {
		if int(p) < 0 || int(p) >= NumPoints {
			continue
		}
		switch {
		case rate >= 1:
			in.pts[p].threshold = ^uint64(0)
		case rate > 0:
			in.pts[p].threshold = uint64(rate * float64(1<<63) * 2)
		}
	}
	for p, m := range cfg.MaxFires {
		if int(p) >= 0 && int(p) < NumPoints {
			in.pts[p].maxFires = m
		}
	}
	for p, a := range cfg.After {
		if int(p) >= 0 && int(p) < NumPoints {
			in.pts[p].after = a
		}
	}
	return in
}

// splitmix64 is the finalizer of the SplitMix64 generator: a strong
// 64-bit mixing function, used here as hash(seed, point, check index).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fire evaluates one check of point p.
func (in *Injector) fire(p Point) bool {
	s := &in.pts[p]
	if s.threshold == 0 || s.disarmed.Load() {
		return false
	}
	n := s.checks.Add(1)
	if n <= s.after {
		return false
	}
	if s.threshold != ^uint64(0) {
		h := splitmix64(uint64(in.seed) ^ uint64(p)<<56 ^ uint64(n))
		if h >= s.threshold {
			return false
		}
	}
	f := s.fires.Add(1)
	if s.maxFires > 0 && f > s.maxFires {
		s.fires.Add(-1)
		return false
	}
	return true
}

// Fired reports how many times point p has fired.
func (in *Injector) Fired(p Point) int64 { return in.pts[p].fires.Load() }

// Checked reports how many times point p has been evaluated.
func (in *Injector) Checked(p Point) int64 { return in.pts[p].checks.Load() }

// Disarm permanently silences point p on this injector (used by tests
// to end a storm once the behavior under it has been observed).
func (in *Injector) Disarm(p Point) { in.pts[p].disarmed.Store(true) }

// active is the globally installed injector; nil when injection is
// disabled, which is the fast path every hook takes in production.
var active atomic.Pointer[Injector]

// Enable installs in as the process-wide injector and returns a
// function restoring the previous state (for tests).
func Enable(in *Injector) (restore func()) {
	prev := active.Swap(in)
	return func() { active.Store(prev) }
}

// Disable removes any installed injector.
func Disable() { active.Store(nil) }

// Enabled reports whether an injector is installed.
func Enabled() bool { return active.Load() != nil }

// Fire evaluates one check of point p against the installed injector;
// with none installed it is a nil-check and returns false.
func Fire(p Point) bool {
	in := active.Load()
	if in == nil {
		return false
	}
	return in.fire(p)
}

// Check panics with an InjectedPanic if point p fires.
func Check(p Point) {
	in := active.Load()
	if in == nil {
		return
	}
	if in.fire(p) {
		panic(InjectedPanic{Point: p, N: in.pts[p].checks.Load()})
	}
}

// Sleep stalls for the injector's configured delay if point p fires.
func Sleep(p Point) {
	in := active.Load()
	if in == nil {
		return
	}
	if in.fire(p) {
		time.Sleep(in.delay)
	}
}
