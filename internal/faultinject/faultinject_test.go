package faultinject

import (
	"testing"
	"time"
)

func TestDisabledHooksAreInert(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("no injector installed, Enabled() = true")
	}
	if Fire(LockDeny) {
		t.Fatal("Fire fired with no injector")
	}
	Check(WorkerPanic) // must not panic
	Sleep(CommitDelay) // must not sleep
}

func TestDeterministicPattern(t *testing.T) {
	pattern := func(seed int64) []bool {
		in := New(Config{Seed: seed, Rates: map[Point]float64{LockDeny: 0.3}})
		out := make([]bool, 1000)
		for i := range out {
			out[i] = in.fire(LockDeny)
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("check %d differs between identical seeds", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires < 200 || fires > 400 {
		t.Errorf("rate 0.3 produced %d/1000 fires", fires)
	}
	c := pattern(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical patterns")
	}
}

func TestRateOneAndMaxFires(t *testing.T) {
	in := New(Config{Seed: 1, Rates: map[Point]float64{DropSteal: 1}, MaxFires: map[Point]int64{DropSteal: 5}})
	fires := 0
	for i := 0; i < 100; i++ {
		if in.fire(DropSteal) {
			fires++
		}
	}
	if fires != 5 {
		t.Fatalf("MaxFires=5 but %d fires", fires)
	}
	if got := in.Fired(DropSteal); got != 5 {
		t.Fatalf("Fired() = %d, want 5", got)
	}
	if got := in.Checked(DropSteal); got != 100 {
		t.Fatalf("Checked() = %d, want 100", got)
	}
}

func TestDisarm(t *testing.T) {
	in := New(Config{Seed: 1, Rates: map[Point]float64{LockDeny: 1}})
	if !in.fire(LockDeny) {
		t.Fatal("rate-1 point did not fire")
	}
	in.Disarm(LockDeny)
	if in.fire(LockDeny) {
		t.Fatal("disarmed point fired")
	}
}

func TestEnableRestoreAndPanicValue(t *testing.T) {
	in := New(Config{Seed: 7, Rates: map[Point]float64{WorkerPanic: 1}, Delay: time.Microsecond})
	restore := Enable(in)
	defer restore()

	defer func() {
		p := recover()
		ip, ok := p.(InjectedPanic)
		if !ok {
			t.Fatalf("recovered %T, want InjectedPanic", p)
		}
		if ip.Point != WorkerPanic {
			t.Fatalf("panic point %v", ip.Point)
		}
		if ip.Error() == "" {
			t.Fatal("empty error string")
		}
		restore()
		if Enabled() {
			t.Fatal("restore did not uninstall")
		}
	}()
	Check(WorkerPanic)
	t.Fatal("Check did not panic")
}

func TestAfterSuppressesWarmup(t *testing.T) {
	in := New(Config{
		Seed:  1,
		Rates: map[Point]float64{LockDeny: 1},
		After: map[Point]int64{LockDeny: 10},
	})
	for i := 0; i < 10; i++ {
		if in.fire(LockDeny) {
			t.Fatalf("fired during warm-up (check %d)", i+1)
		}
	}
	if !in.fire(LockDeny) {
		t.Fatal("rate-1 point did not fire after the warm-up")
	}
	if got := in.Fired(LockDeny); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
	if got := in.Checked(LockDeny); got != 11 {
		t.Fatalf("Checked = %d, want 11 (warm-up checks still count)", got)
	}
}
