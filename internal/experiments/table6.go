package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/edt"
	"repro/internal/img"
	"repro/internal/quality"
)

// Table6Row is one mesher column of paper Table 6 for one input.
type Table6Row struct {
	Input  string
	Mesher string // "PI2M", "SeqMesher (CGAL stand-in)", "PLCMesher (TetGen stand-in)"

	Tetrahedra     int
	Time           time.Duration
	TetraPerSecond float64

	MaxRadiusEdge    float64
	MinBoundaryAngle float64
	MinDihedral      float64
	MaxDihedral      float64
	Hausdorff        float64 // NaN where not applicable (PLC input)
}

// Table6 runs the single-threaded comparison of PI2M against the two
// baselines on the knee and head-neck phantoms (paper Section 7). PI2M
// runs with one worker, carrying its full synchronization machinery,
// exactly as the paper stresses.
func Table6(p Params) ([]Table6Row, error) {
	p = p.withDefaults()
	inputs := []struct {
		name string
		im   *img.Image
	}{
		{"knee atlas", Knee(p.ImageScale)},
		{"head-neck atlas", HeadNeck(p.ImageScale)},
	}

	var rows []Table6Row
	for _, in := range inputs {
		tr := edt.Compute(in.im, 1)

		// PI2M, single thread.
		res, err := core.Run(core.Config{
			Image:             in.im,
			Workers:           1,
			Delta:             p.Delta,
			ContentionManager: "local",
			Balancer:          "hws",
			LivelockTimeout:   p.LivelockTimeout,
		})
		if err != nil {
			return nil, err
		}
		piTris := quality.BoundaryTriangles(res.Mesh, res.Final, in.im)
		rows = append(rows, table6Row(in.name, "PI2M",
			res.Elements(), res.TotalTime,
			quality.Evaluate(res.Mesh, res.Final, in.im),
			quality.SymmetricHausdorff(piTris, in.im, tr)))

		// CGAL stand-in. As in the paper, its sizing parameter is
		// calibrated so it produces a mesh of similar size to PI2M's
		// ("we set the sizing parameters of CGAL and TetGen to values
		// that produced meshes of similar size to ours").
		seqDelta := p.Delta
		if seqDelta == 0 {
			seqDelta = 2 * in.im.MinSpacing()
		}
		seq, err := baseline.SeqMesh(in.im, baseline.Options{Delta: seqDelta})
		if err != nil {
			return nil, err
		}
		for iter := 0; iter < 2; iter++ {
			ratio := float64(seq.Elements()) / float64(res.Elements())
			if ratio > 0.85 && ratio < 1.18 {
				break
			}
			seqDelta *= math.Cbrt(ratio)
			seq, err = baseline.SeqMesh(in.im, baseline.Options{Delta: seqDelta})
			if err != nil {
				return nil, err
			}
		}
		seqTris := quality.BoundaryTriangles(seq.Mesh, seq.Final, in.im)
		rows = append(rows, table6Row(in.name, "SeqMesher (CGAL stand-in)",
			seq.Elements(), seq.TotalTime,
			quality.Evaluate(seq.Mesh, seq.Final, in.im),
			quality.SymmetricHausdorff(seqTris, in.im, tr)))

		// TetGen stand-in: receives PI2M's boundary triangulation.
		plc, err := baseline.PLCMesh(in.im, piTris, baseline.Options{Delta: p.Delta})
		if err != nil {
			return nil, err
		}
		r := table6Row(in.name, "PLCMesher (TetGen stand-in)",
			plc.Elements(), plc.TotalTime,
			quality.Evaluate(plc.Mesh, plc.Final, in.im),
			-1) // fidelity not reported: the surface was its input
		rows = append(rows, r)
	}
	return rows, nil
}

func table6Row(input, mesher string, tets int, t time.Duration, q quality.Stats, hausdorff float64) Table6Row {
	return Table6Row{
		Input:            input,
		Mesher:           mesher,
		Tetrahedra:       tets,
		Time:             t,
		TetraPerSecond:   float64(tets) / t.Seconds(),
		MaxRadiusEdge:    q.MaxRadiusEdge,
		MinBoundaryAngle: q.MinBoundaryPlanarAngle,
		MinDihedral:      q.MinDihedral,
		MaxDihedral:      q.MaxDihedral,
		Hausdorff:        hausdorff,
	}
}

// FormatTable6 renders the single-threaded comparison.
func FormatTable6(rows []Table6Row) string {
	var b strings.Builder
	byInput := map[string][]Table6Row{}
	var order []string
	for _, r := range rows {
		if len(byInput[r.Input]) == 0 {
			order = append(order, r.Input)
		}
		byInput[r.Input] = append(byInput[r.Input], r)
	}
	for _, input := range order {
		group := byInput[input]
		fmt.Fprintf(&b, "Table 6 — single-threaded comparison (%s)\n", input)
		fmt.Fprintf(&b, "%-30s", "")
		for _, r := range group {
			fmt.Fprintf(&b, "%30s", r.Mesher)
		}
		b.WriteByte('\n')
		line := func(label string, f func(Table6Row) string) {
			fmt.Fprintf(&b, "%-30s", label)
			for _, r := range group {
				fmt.Fprintf(&b, "%30s", f(r))
			}
			b.WriteByte('\n')
		}
		line("#tetrahedra / second", func(r Table6Row) string { return fmt.Sprintf("%.0f", r.TetraPerSecond) })
		line("time", func(r Table6Row) string { return fmt.Sprintf("%.2f secs", r.Time.Seconds()) })
		line("#tetrahedra", func(r Table6Row) string { return fmt.Sprintf("%d", r.Tetrahedra) })
		line("max radius-edge ratio", func(r Table6Row) string { return fmt.Sprintf("%.2f", r.MaxRadiusEdge) })
		line("min boundary planar angle", func(r Table6Row) string { return fmt.Sprintf("%.1f deg", r.MinBoundaryAngle) })
		line("(min,max) dihedral angles", func(r Table6Row) string {
			return fmt.Sprintf("(%.1f, %.1f)", r.MinDihedral, r.MaxDihedral)
		})
		line("Hausdorff distance", func(r Table6Row) string {
			if r.Hausdorff < 0 {
				return "n/a (PLC input)"
			}
			return fmt.Sprintf("%.2f", r.Hausdorff)
		})
		b.WriteByte('\n')
	}
	return b.String()
}
