// Package experiments reproduces every table and figure of the
// paper's evaluation (Sections 5-7) at host scale. Each experiment
// returns typed rows plus a formatter that prints the same columns the
// paper reports; cmd/experiments drives them from the command line and
// bench_test.go wraps them as Go benchmarks.
//
// Scale. The paper ran on Blacklight (up to 256 cores, 150M-element
// meshes). This host runs the same code paths with the thread counts
// mapped onto a modeled Blacklight topology and phantom images sized
// so a run takes seconds; the *shape* of each result (which scheme
// wins, where the trends bend) is the reproduction target, not the
// absolute numbers. See EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/balance"
	"repro/internal/core"
	"repro/internal/img"
)

// Params scales the experiments to the host.
type Params struct {
	// ImageScale is the base phantom edge length in voxels.
	ImageScale int
	// Threads are the worker counts to sweep.
	Threads []int
	// Delta is the base δ; zero uses 2 voxels.
	Delta float64
	// LivelockTimeout bounds runs with livelock-prone managers.
	LivelockTimeout time.Duration
	// Repeats averages timings over this many runs (default 1).
	Repeats int
	// Topology models the machine for the load balancer; zero means a
	// Blacklight-shaped topology sized for the largest thread count.
	Topology balance.Topology
}

// DefaultParams returns host-scale defaults.
func DefaultParams() Params {
	return Params{
		ImageScale:      96,
		Threads:         []int{1, 2, 4, 8},
		LivelockTimeout: 60 * time.Second,
		Repeats:         1,
	}
}

func (p Params) withDefaults() Params {
	if p.ImageScale == 0 {
		p.ImageScale = 96
	}
	if len(p.Threads) == 0 {
		p.Threads = []int{1, 2, 4, 8}
	}
	if p.LivelockTimeout == 0 {
		p.LivelockTimeout = 60 * time.Second
	}
	if p.Repeats == 0 {
		p.Repeats = 1
	}
	return p
}

// Abdominal builds the abdominal-atlas phantom at the given scale
// (stands in for the IRCAD image of Table 3, 512x512x219).
func Abdominal(scale int) *img.Image {
	return img.AbdominalPhantom(scale, scale, 2*scale/3)
}

// Knee builds the knee-atlas phantom (SPL, 512x512x119).
func Knee(scale int) *img.Image {
	return img.KneePhantom(scale, scale, scale)
}

// HeadNeck builds the head-neck-atlas phantom (SPL, 255x255x229).
func HeadNeck(scale int) *img.Image {
	return img.HeadNeckPhantom(scale, scale, scale)
}

// run executes one PI2M configuration, averaging over p.Repeats.
func (p Params) run(im *img.Image, workers int, cmName, balName string, delta float64) (*core.Result, time.Duration, error) {
	last, avg, _, err := p.runStd(im, workers, cmName, balName, delta)
	return last, avg, err
}

// runStd is run, also reporting the sample standard deviation of the
// run times (the paper reports timing stddev in Section 6.3).
func (p Params) runStd(im *img.Image, workers int, cmName, balName string, delta float64) (*core.Result, time.Duration, time.Duration, error) {
	var last *core.Result
	var times []float64
	for i := 0; i < p.Repeats; i++ {
		topo := p.Topology
		if topo == (balance.Topology{}) {
			topo = balance.ForWorkers(maxInt(p.Threads))
		}
		res, err := core.Run(core.Config{
			Image:             im,
			Workers:           workers,
			ContentionManager: cmName,
			Balancer:          balName,
			Delta:             delta,
			Topology:          topo,
			LivelockTimeout:   p.LivelockTimeout,
		})
		if err != nil {
			return nil, 0, 0, err
		}
		times = append(times, res.TotalTime.Seconds())
		last = res
		if res.Livelocked {
			break
		}
	}
	var mean float64
	for _, t := range times {
		mean += t
	}
	mean /= float64(len(times))
	var varsum float64
	for _, t := range times {
		varsum += (t - mean) * (t - mean)
	}
	std := 0.0
	if len(times) > 1 {
		std = math.Sqrt(varsum / float64(len(times)-1))
	}
	return last, time.Duration(mean * float64(time.Second)), time.Duration(std * float64(time.Second)), nil
}

func maxInt(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func secs(ns int64) float64 { return float64(ns) / 1e9 }

// ---------------------------------------------------------------------
// Table 1: contention manager comparison.

// Table1Row is one column of paper Table 1 for a given thread count.
type Table1Row struct {
	CM             string
	Threads        int
	Time           time.Duration
	Rollbacks      int64
	ContentionSecs float64
	LoadBalSecs    float64
	RollbackSecs   float64
	TotalOverhead  float64
	Speedup        float64
	Livelocked     bool
	Elements       int
}

// Table1 compares the four contention managers on the abdominal
// phantom (paper Section 5.5). The single-threaded Local-CM run is the
// speedup baseline, as in the paper.
func Table1(p Params) ([]Table1Row, error) {
	p = p.withDefaults()
	im := Abdominal(p.ImageScale)

	_, baseTime, err := p.run(im, 1, "local", "hws", p.Delta)
	if err != nil {
		return nil, err
	}

	var rows []Table1Row
	for _, threads := range p.Threads {
		for _, cmName := range []string{"aggressive", "random", "global", "local"} {
			res, avg, err := p.run(im, threads, cmName, "hws", p.Delta)
			if err != nil {
				return nil, err
			}
			row := Table1Row{
				CM:             res.Config.ContentionManager,
				Threads:        threads,
				Time:           avg,
				Rollbacks:      res.Stats.Rollbacks,
				ContentionSecs: secs(res.Stats.ContentionNs),
				LoadBalSecs:    secs(res.Stats.LoadBalanceNs),
				RollbackSecs:   secs(res.Stats.RollbackNs),
				TotalOverhead:  secs(res.Stats.TotalOverheadNs()),
				Livelocked:     res.Livelocked,
				Elements:       res.Elements(),
			}
			if !res.Livelocked && avg > 0 {
				row.Speedup = baseTime.Seconds() / avg.Seconds()
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatTable1 renders rows in the paper's Table 1 layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	byThreads := map[int][]Table1Row{}
	var order []int
	for _, r := range rows {
		if len(byThreads[r.Threads]) == 0 {
			order = append(order, r.Threads)
		}
		byThreads[r.Threads] = append(byThreads[r.Threads], r)
	}
	for _, th := range order {
		group := byThreads[th]
		fmt.Fprintf(&b, "Table 1 — contention managers, %d threads\n", th)
		fmt.Fprintf(&b, "%-28s", "")
		for _, r := range group {
			fmt.Fprintf(&b, "%14s", r.CM)
		}
		b.WriteByte('\n')
		line := func(label string, f func(Table1Row) string) {
			fmt.Fprintf(&b, "%-28s", label)
			for _, r := range group {
				fmt.Fprintf(&b, "%14s", f(r))
			}
			b.WriteByte('\n')
		}
		na := func(r Table1Row, s string) string {
			if r.Livelocked {
				return "n/a"
			}
			return s
		}
		line("time (secs)", func(r Table1Row) string { return na(r, fmt.Sprintf("%.2f", r.Time.Seconds())) })
		line("rollbacks", func(r Table1Row) string { return na(r, fmt.Sprintf("%d", r.Rollbacks)) })
		line("contention overhead (secs)", func(r Table1Row) string { return na(r, fmt.Sprintf("%.3f", r.ContentionSecs)) })
		line("load balance overhead", func(r Table1Row) string { return na(r, fmt.Sprintf("%.3f", r.LoadBalSecs)) })
		line("rollback overhead (secs)", func(r Table1Row) string { return na(r, fmt.Sprintf("%.3f", r.RollbackSecs)) })
		line("total overhead (secs)", func(r Table1Row) string { return na(r, fmt.Sprintf("%.3f", r.TotalOverhead)) })
		line("speedup", func(r Table1Row) string { return na(r, fmt.Sprintf("%.2f", r.Speedup)) })
		line("livelock", func(r Table1Row) string {
			if r.Livelocked {
				return "yes"
			}
			switch r.CM {
			case "global", "local":
				return "not possible"
			}
			return "no"
		})
		b.WriteByte('\n')
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 5: strong scaling, RWS vs HWS.

// Fig5Row is one thread count of the strong-scaling study.
type Fig5Row struct {
	Threads int

	TimeRWS, TimeHWS       time.Duration
	SpeedupRWS, SpeedupHWS float64

	InterBladeRWS, InterBladeHWS int64
	TransfersRWS, TransfersHWS   int64

	// HWS per-thread overhead breakdown (Figure 5c).
	ContentionSecs float64
	LoadBalSecs    float64
	RollbackSecs   float64
}

// Fig5 runs the strong-scaling comparison of the two load balancers on
// a fixed abdominal phantom (paper Section 6.2).
func Fig5(p Params) ([]Fig5Row, error) {
	p = p.withDefaults()
	if p.Topology == (balance.Topology{}) {
		// A fine-grained topology (2 cores/socket, 2 sockets/blade), so
		// host-scale thread counts already span several blades and the
		// RWS/HWS locality difference is visible — the paper's 176
		// threads spanned 11 Blacklight blades.
		blades := (maxInt(p.Threads) + 3) / 4
		if blades < 2 {
			blades = 2
		}
		p.Topology = balance.Topology{CoresPerSocket: 2, SocketsPerBlade: 2, Blades: blades}
	}
	im := Abdominal(p.ImageScale)

	_, t1, err := p.run(im, 1, "local", "hws", p.Delta)
	if err != nil {
		return nil, err
	}

	var rows []Fig5Row
	for _, threads := range p.Threads {
		rws, tRWS, err := p.run(im, threads, "local", "rws", p.Delta)
		if err != nil {
			return nil, err
		}
		hws, tHWS, err := p.run(im, threads, "local", "hws", p.Delta)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig5Row{
			Threads:        threads,
			TimeRWS:        tRWS,
			TimeHWS:        tHWS,
			SpeedupRWS:     t1.Seconds() / tRWS.Seconds(),
			SpeedupHWS:     t1.Seconds() / tHWS.Seconds(),
			InterBladeRWS:  rws.Stats.Transfers.InterBlade,
			InterBladeHWS:  hws.Stats.Transfers.InterBlade,
			TransfersRWS:   rws.Stats.Transfers.Total(),
			TransfersHWS:   hws.Stats.Transfers.Total(),
			ContentionSecs: secs(hws.Stats.ContentionNs) / float64(threads),
			LoadBalSecs:    secs(hws.Stats.LoadBalanceNs) / float64(threads),
			RollbackSecs:   secs(hws.Stats.RollbackNs) / float64(threads),
		})
	}
	return rows, nil
}

// FormatFig5 renders the three panels of Figure 5 as tables.
func FormatFig5(rows []Fig5Row) string {
	var b strings.Builder
	b.WriteString("Figure 5a — strong scaling speedup (RWS vs HWS)\n")
	fmt.Fprintf(&b, "%8s %12s %12s %12s %12s\n", "threads", "time RWS", "time HWS", "speedup RWS", "speedup HWS")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %12.2f %12.2f %12.2f %12.2f\n",
			r.Threads, r.TimeRWS.Seconds(), r.TimeHWS.Seconds(), r.SpeedupRWS, r.SpeedupHWS)
	}
	b.WriteString("\nFigure 5b — work-transfer locality (inter-blade counts)\n")
	fmt.Fprintf(&b, "%8s %16s %16s %16s %16s\n", "threads", "RWS inter-blade", "HWS inter-blade", "RWS total", "HWS total")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %16d %16d %16d %16d\n",
			r.Threads, r.InterBladeRWS, r.InterBladeHWS, r.TransfersRWS, r.TransfersHWS)
	}
	b.WriteString("\nFigure 5c — HWS overhead breakdown per thread (secs)\n")
	fmt.Fprintf(&b, "%8s %12s %12s %12s\n", "threads", "contention", "load bal", "rollback")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %12.4f %12.4f %12.4f\n",
			r.Threads, r.ContentionSecs, r.LoadBalSecs, r.RollbackSecs)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Table 4: weak scaling.

// Table4Row is one thread count of the weak-scaling study.
type Table4Row struct {
	Threads        int
	Elements       int
	Time           time.Duration
	TimeStdDev     time.Duration // across Repeats (paper Section 6.3)
	ElementsPerSec float64
	Speedup        float64
	Efficiency     float64
	OverheadSecs   float64 // per thread
}

// Table4 runs the weak-scaling study (paper Section 6.3): the problem
// size grows with the thread count by shrinking δ as n^(-1/3), so each
// thread keeps an approximately constant number of elements. input
// selects the phantom: "abdominal" (Table 4a) or "knee" (Table 4b).
func Table4(p Params, input string) ([]Table4Row, error) {
	p = p.withDefaults()
	var im *img.Image
	switch input {
	case "abdominal", "":
		im = Abdominal(p.ImageScale)
	case "knee":
		im = Knee(p.ImageScale)
	case "headneck":
		im = HeadNeck(p.ImageScale)
	default:
		return nil, fmt.Errorf("experiments: unknown input %q", input)
	}
	delta1 := p.Delta
	if delta1 == 0 {
		delta1 = 2 * im.MinSpacing()
	}

	var rows []Table4Row
	var base Table4Row
	for i, threads := range p.Threads {
		delta := delta1 * math.Pow(float64(threads), -1.0/3.0)
		res, avg, std, err := p.runStd(im, threads, "local", "hws", delta)
		if err != nil {
			return nil, err
		}
		row := Table4Row{
			Threads:        threads,
			Elements:       res.Elements(),
			Time:           avg,
			TimeStdDev:     std,
			ElementsPerSec: float64(res.Elements()) / avg.Seconds(),
			OverheadSecs:   secs(res.Stats.TotalOverheadNs()) / float64(threads),
		}
		if i == 0 {
			base = row
			row.Speedup = 1
			row.Efficiency = 1
		} else {
			// Paper: speedup = Elements(n)*Time(1) / (Time(n)*Elements(1)).
			row.Speedup = float64(row.Elements) * base.Time.Seconds() /
				(row.Time.Seconds() * float64(base.Elements))
			row.Efficiency = row.Speedup / (float64(threads) / float64(base.Threads))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable4 renders the weak-scaling table.
func FormatTable4(rows []Table4Row, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4 — weak scaling (%s)\n", title)
	fmt.Fprintf(&b, "%-24s", "#Threads")
	for _, r := range rows {
		fmt.Fprintf(&b, "%12d", r.Threads)
	}
	b.WriteByte('\n')
	line := func(label string, f func(Table4Row) string) {
		fmt.Fprintf(&b, "%-24s", label)
		for _, r := range rows {
			fmt.Fprintf(&b, "%12s", f(r))
		}
		b.WriteByte('\n')
	}
	line("#Elements", func(r Table4Row) string { return fmt.Sprintf("%.2e", float64(r.Elements)) })
	line("Time (secs)", func(r Table4Row) string { return fmt.Sprintf("%.2f", r.Time.Seconds()) })
	line("Time stddev (secs)", func(r Table4Row) string { return fmt.Sprintf("%.3f", r.TimeStdDev.Seconds()) })
	line("Elements per second", func(r Table4Row) string { return fmt.Sprintf("%.2e", r.ElementsPerSec) })
	line("Speedup", func(r Table4Row) string { return fmt.Sprintf("%.2f", r.Speedup) })
	line("Efficiency", func(r Table4Row) string { return fmt.Sprintf("%.2f", r.Efficiency) })
	line("Overhead secs/thread", func(r Table4Row) string { return fmt.Sprintf("%.3f", r.OverheadSecs) })
	return b.String()
}

// ---------------------------------------------------------------------
// Table 5: hyper-threading (oversubscription).

// Table5Row compares an oversubscribed run (2 workers per modeled
// core) against the corresponding Table 4 row.
type Table5Row struct {
	Cores          int
	Elements       int
	Time           time.Duration
	ElementsPerSec float64
	// Speedup is relative to the non-oversubscribed run on the same
	// core count, as in the paper.
	Speedup      float64
	OverheadSecs float64
}

// Table5 reruns the Table 4a weak-scaling points with two workers per
// modeled core (the paper's hyper-threading study; hardware SMT
// counters are not observable from Go, so the reproduction reports the
// timing columns).
func Table5(p Params) ([]Table5Row, error) {
	p = p.withDefaults()
	base, err := Table4(p, "abdominal")
	if err != nil {
		return nil, err
	}
	im := Abdominal(p.ImageScale)
	delta1 := p.Delta
	if delta1 == 0 {
		delta1 = 2 * im.MinSpacing()
	}
	var rows []Table5Row
	for i, cores := range p.Threads {
		delta := delta1 * math.Pow(float64(cores), -1.0/3.0)
		res, avg, err := p.run(im, 2*cores, "local", "hws", delta)
		if err != nil {
			return nil, err
		}
		row := Table5Row{
			Cores:          cores,
			Elements:       res.Elements(),
			Time:           avg,
			ElementsPerSec: float64(res.Elements()) / avg.Seconds(),
			Speedup:        base[i].Time.Seconds() / avg.Seconds(),
			OverheadSecs:   secs(res.Stats.TotalOverheadNs()) / float64(2*cores),
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable5 renders the hyper-threading table.
func FormatTable5(rows []Table5Row) string {
	var b strings.Builder
	b.WriteString("Table 5 — 2x oversubscription (hyper-threading model)\n")
	fmt.Fprintf(&b, "%-24s", "#Cores")
	for _, r := range rows {
		fmt.Fprintf(&b, "%12d", r.Cores)
	}
	b.WriteByte('\n')
	line := func(label string, f func(Table5Row) string) {
		fmt.Fprintf(&b, "%-24s", label)
		for _, r := range rows {
			fmt.Fprintf(&b, "%12s", f(r))
		}
		b.WriteByte('\n')
	}
	line("#Elements", func(r Table5Row) string { return fmt.Sprintf("%.2e", float64(r.Elements)) })
	line("Time (secs)", func(r Table5Row) string { return fmt.Sprintf("%.2f", r.Time.Seconds()) })
	line("Elements per second", func(r Table5Row) string { return fmt.Sprintf("%.2e", r.ElementsPerSec) })
	line("Speedup vs 1x", func(r Table5Row) string { return fmt.Sprintf("%.2f", r.Speedup) })
	line("Overhead secs/thread", func(r Table5Row) string { return fmt.Sprintf("%.3f", r.OverheadSecs) })
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 6: overhead timeline.

// Fig6 runs the maximum-thread configuration with timeline sampling
// and returns the cumulative wasted-seconds curve (paper Figure 6).
func Fig6(p Params) ([]core.TimelinePoint, error) {
	p = p.withDefaults()
	im := Abdominal(p.ImageScale)
	res, err := core.Run(core.Config{
		Image:             im,
		Workers:           maxInt(p.Threads),
		ContentionManager: "local",
		Balancer:          "hws",
		Delta:             p.Delta,
		LivelockTimeout:   p.LivelockTimeout,
		TimelineSample:    20 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	return res.Timeline, nil
}

// FormatFig6 renders the timeline as (wall secs, cumulative overhead
// secs) pairs, followed by the useful-work fraction the paper derives
// from the same curve ("73% of the time, all 176 threads were doing
// useful work" during its Phase 1).
func FormatFig6(points []core.TimelinePoint) string {
	return FormatFig6Threads(points, 0)
}

// FormatFig6Threads is FormatFig6 with the thread count known, so the
// useful-work fraction can be reported.
func FormatFig6Threads(points []core.TimelinePoint, threads int) string {
	var b strings.Builder
	b.WriteString("Figure 6 — cumulative overhead vs wall time\n")
	fmt.Fprintf(&b, "%12s %20s\n", "wall (s)", "wasted thread-secs")
	for _, pt := range points {
		fmt.Fprintf(&b, "%12.3f %20.4f\n", pt.Wall.Seconds(), secs(pt.OverheadNs))
	}
	if threads > 0 && len(points) > 0 {
		last := points[len(points)-1]
		total := float64(threads) * last.Wall.Seconds()
		if total > 0 {
			fmt.Fprintf(&b, "useful-work fraction: %.1f%% of %d x %.2fs\n",
				100*(1-secs(last.OverheadNs)/total), threads, last.Wall.Seconds())
		}
	}
	return b.String()
}
