package experiments

import (
	"bytes"
	"encoding/csv"
	"testing"
	"time"

	"repro/internal/core"
)

func parseCSV(t *testing.T, buf *bytes.Buffer, wantCols int) [][]string {
	t.Helper()
	rows, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if len(r) != wantCols {
			t.Fatalf("row %d has %d columns, want %d", i, len(r), wantCols)
		}
	}
	return rows
}

func TestCSVWriters(t *testing.T) {
	var buf bytes.Buffer

	t1 := []Table1Row{{CM: "local", Threads: 4, Time: time.Second, Rollbacks: 7,
		Speedup: 1.5, Elements: 100}}
	if err := Table1CSV(&buf, t1); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf, 11)
	if len(rows) != 2 || rows[1][0] != "local" || rows[1][3] != "7" {
		t.Fatalf("table1 rows: %v", rows)
	}

	buf.Reset()
	f5 := []Fig5Row{{Threads: 8, TimeRWS: time.Second, TimeHWS: 500 * time.Millisecond,
		InterBladeRWS: 21, InterBladeHWS: 3}}
	if err := Fig5CSV(&buf, f5); err != nil {
		t.Fatal(err)
	}
	rows = parseCSV(t, &buf, 12)
	if rows[1][5] != "21" || rows[1][6] != "3" {
		t.Fatalf("fig5 rows: %v", rows)
	}

	buf.Reset()
	t4 := []Table4Row{{Threads: 2, Elements: 1000, Time: time.Second,
		TimeStdDev: 100 * time.Millisecond, Speedup: 1.1, Efficiency: 0.55}}
	if err := Table4CSV(&buf, t4); err != nil {
		t.Fatal(err)
	}
	rows = parseCSV(t, &buf, 8)
	if rows[1][3] != "0.1" {
		t.Fatalf("table4 stddev column: %v", rows[1])
	}

	buf.Reset()
	if err := Table5CSV(&buf, []Table5Row{{Cores: 4, Elements: 10}}); err != nil {
		t.Fatal(err)
	}
	parseCSV(t, &buf, 6)

	buf.Reset()
	pts := []core.TimelinePoint{{Wall: time.Second, OverheadNs: 2e9}}
	if err := Fig6CSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	rows = parseCSV(t, &buf, 2)
	if rows[1][1] != "2" {
		t.Fatalf("fig6 rows: %v", rows)
	}

	buf.Reset()
	t6 := []Table6Row{
		{Input: "knee", Mesher: "PI2M", Tetrahedra: 5, Time: time.Second, Hausdorff: 1.5},
		{Input: "knee", Mesher: "PLC", Tetrahedra: 5, Time: time.Second, Hausdorff: -1},
	}
	if err := Table6CSV(&buf, t6); err != nil {
		t.Fatal(err)
	}
	rows = parseCSV(t, &buf, 10)
	if rows[1][9] != "1.5" {
		t.Fatalf("hausdorff column: %v", rows[1])
	}
	if rows[2][9] != "" {
		t.Fatalf("n/a hausdorff should be empty: %q", rows[2][9])
	}
	if rows[0][5] != "max_radius_edge" {
		t.Fatalf("header: %v", rows[0])
	}
}
