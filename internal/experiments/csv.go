package experiments

import (
	"encoding/csv"
	"io"
	"strconv"

	"repro/internal/core"
)

// CSV writers: one file per table/figure, ready for plotting tools.
// cmd/experiments -csv <dir> writes them next to the text output.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(x float64) string { return strconv.FormatFloat(x, 'g', 6, 64) }
func d(x int64) string   { return strconv.FormatInt(x, 10) }

// Table1CSV writes the contention-manager comparison.
func Table1CSV(w io.Writer, rows []Table1Row) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.CM, strconv.Itoa(r.Threads), f(r.Time.Seconds()), d(r.Rollbacks),
			f(r.ContentionSecs), f(r.LoadBalSecs), f(r.RollbackSecs),
			f(r.TotalOverhead), f(r.Speedup), strconv.FormatBool(r.Livelocked),
			strconv.Itoa(r.Elements),
		})
	}
	return writeCSV(w, []string{
		"cm", "threads", "time_s", "rollbacks", "contention_s", "loadbal_s",
		"rollback_s", "total_overhead_s", "speedup", "livelocked", "elements",
	}, out)
}

// Fig5CSV writes the strong-scaling / locality comparison.
func Fig5CSV(w io.Writer, rows []Fig5Row) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			strconv.Itoa(r.Threads),
			f(r.TimeRWS.Seconds()), f(r.TimeHWS.Seconds()),
			f(r.SpeedupRWS), f(r.SpeedupHWS),
			d(r.InterBladeRWS), d(r.InterBladeHWS),
			d(r.TransfersRWS), d(r.TransfersHWS),
			f(r.ContentionSecs), f(r.LoadBalSecs), f(r.RollbackSecs),
		})
	}
	return writeCSV(w, []string{
		"threads", "time_rws_s", "time_hws_s", "speedup_rws", "speedup_hws",
		"interblade_rws", "interblade_hws", "transfers_rws", "transfers_hws",
		"hws_contention_s_per_thread", "hws_loadbal_s_per_thread", "hws_rollback_s_per_thread",
	}, out)
}

// Table4CSV writes a weak-scaling table.
func Table4CSV(w io.Writer, rows []Table4Row) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			strconv.Itoa(r.Threads), strconv.Itoa(r.Elements),
			f(r.Time.Seconds()), f(r.TimeStdDev.Seconds()),
			f(r.ElementsPerSec), f(r.Speedup), f(r.Efficiency), f(r.OverheadSecs),
		})
	}
	return writeCSV(w, []string{
		"threads", "elements", "time_s", "time_stddev_s", "elements_per_s",
		"speedup", "efficiency", "overhead_s_per_thread",
	}, out)
}

// Table5CSV writes the oversubscription table.
func Table5CSV(w io.Writer, rows []Table5Row) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			strconv.Itoa(r.Cores), strconv.Itoa(r.Elements),
			f(r.Time.Seconds()), f(r.ElementsPerSec), f(r.Speedup), f(r.OverheadSecs),
		})
	}
	return writeCSV(w, []string{
		"cores", "elements", "time_s", "elements_per_s", "speedup_vs_1x",
		"overhead_s_per_thread",
	}, out)
}

// Fig6CSV writes the overhead timeline.
func Fig6CSV(w io.Writer, points []core.TimelinePoint) error {
	out := make([][]string, 0, len(points))
	for _, pt := range points {
		out = append(out, []string{
			f(pt.Wall.Seconds()), f(float64(pt.OverheadNs) / 1e9),
		})
	}
	return writeCSV(w, []string{"wall_s", "cumulative_overhead_s"}, out)
}

// Table6CSV writes the single-threaded comparison.
func Table6CSV(w io.Writer, rows []Table6Row) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		h := ""
		if r.Hausdorff >= 0 {
			h = f(r.Hausdorff)
		}
		out = append(out, []string{
			r.Input, r.Mesher, strconv.Itoa(r.Tetrahedra),
			f(r.Time.Seconds()), f(r.TetraPerSecond),
			f(r.MaxRadiusEdge), f(r.MinBoundaryAngle),
			f(r.MinDihedral), f(r.MaxDihedral), h,
		})
	}
	return writeCSV(w, []string{
		"input", "mesher", "tets", "time_s", "tets_per_s", "max_radius_edge",
		"min_boundary_angle_deg", "min_dihedral_deg", "max_dihedral_deg",
		"hausdorff",
	}, out)
}
