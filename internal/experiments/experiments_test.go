package experiments

import (
	"strings"
	"testing"
	"time"
)

// tinyParams keeps experiment tests fast.
func tinyParams() Params {
	return Params{
		ImageScale:      32,
		Threads:         []int{1, 2},
		LivelockTimeout: 30 * time.Second,
	}
}

func TestPhantomBuilders(t *testing.T) {
	if im := Abdominal(24); im.NX != 24 || im.NZ != 16 {
		t.Error("Abdominal dims")
	}
	if im := Knee(24); im.NZ != 24 {
		t.Error("Knee dims")
	}
	if im := HeadNeck(24); im.NY != 24 {
		t.Error("HeadNeck dims")
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	// 4 CMs x 2 thread counts.
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	for _, r := range rows {
		if r.Livelocked {
			continue
		}
		if r.Time <= 0 || r.Elements == 0 {
			t.Errorf("%s/%d: empty result", r.CM, r.Threads)
		}
		if r.Speedup <= 0 {
			t.Errorf("%s/%d: speedup %v", r.CM, r.Threads, r.Speedup)
		}
	}
	out := FormatTable1(rows)
	for _, want := range []string{"Table 1", "rollbacks", "speedup", "livelock", "local"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatTable1 missing %q", want)
		}
	}
}

func TestFig5(t *testing.T) {
	rows, err := Fig5(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TimeRWS <= 0 || r.TimeHWS <= 0 {
			t.Error("missing timings")
		}
	}
	out := FormatFig5(rows)
	for _, want := range []string{"Figure 5a", "Figure 5b", "Figure 5c", "inter-blade"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatFig5 missing %q", want)
		}
	}
}

func TestTable4(t *testing.T) {
	rows, err := Table4(tinyParams(), "abdominal")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Speedup != 1 || rows[0].Efficiency != 1 {
		t.Error("baseline row not normalized")
	}
	// Weak scaling: more threads => smaller delta => more elements.
	if rows[1].Elements <= rows[0].Elements {
		t.Errorf("problem size did not grow: %d -> %d", rows[0].Elements, rows[1].Elements)
	}
	if !strings.Contains(FormatTable4(rows, "x"), "Efficiency") {
		t.Error("format missing Efficiency")
	}
	if _, err := Table4(tinyParams(), "bogus"); err == nil {
		t.Error("bogus input accepted")
	}
}

func TestTable5(t *testing.T) {
	rows, err := Table5(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Speedup <= 0 || r.Elements == 0 {
			t.Errorf("row %+v", r)
		}
	}
	if !strings.Contains(FormatTable5(rows), "Table 5") {
		t.Error("format missing title")
	}
}

func TestFig6(t *testing.T) {
	pts, err := Fig6(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	// The run is short; the sampler may catch only a few points, but
	// the curve must be monotone in both coordinates.
	for i := 1; i < len(pts); i++ {
		if pts[i].Wall < pts[i-1].Wall {
			t.Error("wall time not monotone")
		}
		if pts[i].OverheadNs < pts[i-1].OverheadNs {
			t.Error("cumulative overhead decreased")
		}
	}
	if !strings.Contains(FormatFig6(pts), "Figure 6") {
		t.Error("format missing title")
	}
}

func TestTable6(t *testing.T) {
	p := tinyParams()
	p.ImageScale = 40
	rows, err := Table6(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 2 inputs x 3 meshers
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Tetrahedra == 0 || r.TetraPerSecond <= 0 {
			t.Errorf("%s/%s: empty", r.Input, r.Mesher)
		}
		if r.MaxRadiusEdge <= 0 || r.MaxRadiusEdge > 2.5 {
			t.Errorf("%s/%s: radius-edge %v", r.Input, r.Mesher, r.MaxRadiusEdge)
		}
	}
	// Size calibration: the CGAL stand-in's mesh is within 2x of PI2M's.
	for i := 0; i < len(rows); i += 3 {
		ratio := float64(rows[i+1].Tetrahedra) / float64(rows[i].Tetrahedra)
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("%s: size calibration failed (ratio %.2f)", rows[i].Input, ratio)
		}
	}
	out := FormatTable6(rows)
	for _, want := range []string{"Table 6", "PI2M", "CGAL", "TetGen", "Hausdorff"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatTable6 missing %q", want)
		}
	}
}
