package sizing_test

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/img"
	"repro/internal/sizing"
)

// Example composes a per-tissue density with a focus ball, taking the
// pointwise minimum — the conservative combination.
func Example() {
	im := img.AbdominalPhantom(32, 32, 24)
	sf := sizing.Min(
		sizing.PerLabel(im, map[img.Label]float64{6: 1.5}, 8), // fine vessels
		sizing.Ball(geom.Vec3{X: 16, Y: 16, Z: 12}, 6, 3, 8),  // focus region
	)
	fmt.Printf("far from everything: %.1f\n", sf(geom.Vec3{X: 2, Y: 2, Z: 2}))
	fmt.Printf("inside the focus:    %.1f\n", sf(geom.Vec3{X: 16, Y: 16, Z: 12}))
	// Output:
	// far from everything: 8.0
	// inside the focus:    3.0
}
