package sizing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/edt"
	"repro/internal/geom"
	"repro/internal/img"
)

func v3(x, y, z float64) geom.Vec3 { return geom.Vec3{X: x, Y: y, Z: z} }

func TestUniformAndUnbounded(t *testing.T) {
	if Uniform(3)(v3(1, 2, 3)) != 3 {
		t.Error("Uniform")
	}
	if !math.IsInf(Unbounded()(v3(0, 0, 0)), 1) {
		t.Error("Unbounded")
	}
}

func TestBallRamp(t *testing.T) {
	f := Ball(v3(0, 0, 0), 2, 1, 5)
	if f(v3(1, 0, 0)) != 1 {
		t.Error("inside value")
	}
	if f(v3(10, 0, 0)) != 5 {
		t.Error("outside value")
	}
	mid := f(v3(3, 0, 0)) // halfway through the ramp
	if math.Abs(mid-3) > 1e-12 {
		t.Errorf("ramp midpoint = %v, want 3", mid)
	}
}

func TestBallMonotoneAlongRay(t *testing.T) {
	f := Ball(v3(0, 0, 0), 2, 1, 5)
	prev := 0.0
	for d := 0.0; d < 8; d += 0.1 {
		h := f(v3(d, 0, 0))
		if h < prev-1e-12 {
			t.Fatalf("Ball not monotone at %v", d)
		}
		prev = h
	}
}

func TestPerLabel(t *testing.T) {
	im := img.AbdominalPhantom(32, 32, 24)
	f := PerLabel(im, map[img.Label]float64{6: 0.5}, 4)
	// The aorta (label 6) runs vertically near (0.5, 0.56) of the box.
	foundFine := false
	for k := 4; k < 20; k++ {
		p := v3(16, 18, float64(k))
		if im.LabelAt(p) == 6 && f(p) == 0.5 {
			foundFine = true
		}
	}
	if !foundFine {
		t.Error("no fine sizing inside the labeled vessel")
	}
	if f(v3(1, 1, 1)) != 4 {
		t.Error("default not applied outside")
	}
}

func TestNearSurfaceGrading(t *testing.T) {
	im := img.SpherePhantom(32)
	tr := edt.Compute(im, 1)
	f := NearSurface(tr, 1, 6, 2)
	center := v3(16, 16, 16) // ~11 voxels from the surface
	nearSurf := v3(16+11, 16, 16)
	if h := f(nearSurf); h != 1 {
		t.Errorf("near-surface size = %v, want 1", h)
	}
	if h := f(center); h <= 1 || h > 6 {
		t.Errorf("center size = %v, want in (1, 6]", h)
	}
}

func TestGradedLipschitz(t *testing.T) {
	src := []Source{{At: v3(0, 0, 0), H: 1}, {At: v3(10, 0, 0), H: 2}}
	f := Graded(src, 0.5, 100)
	if f(v3(0, 0, 0)) != 1 {
		t.Error("at source")
	}
	// Lipschitz property: |f(p) - f(q)| <= g*|p-q|.
	check := func(px, py, pz, qx, qy, qz float64) bool {
		for _, c := range []float64{px, py, pz, qx, qy, qz} {
			if math.IsNaN(c) || math.Abs(c) > 1e3 {
				return true
			}
		}
		p := v3(px, py, pz)
		q := v3(qx, qy, qz)
		return math.Abs(f(p)-f(q)) <= 0.5*p.Dist(q)+1e-9
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

func TestMinAndScale(t *testing.T) {
	f := Min(Uniform(5), Uniform(3), Uniform(7))
	if f(v3(0, 0, 0)) != 3 {
		t.Error("Min")
	}
	if Scale(Uniform(3), 2)(v3(0, 0, 0)) != 6 {
		t.Error("Scale")
	}
	if !math.IsInf(Min()(v3(0, 0, 0)), 1) {
		t.Error("empty Min")
	}
}

// TestSizingDrivesRefinement runs PI2M with a per-label size function
// and verifies the targeted tissue is meshed more densely.
func TestSizingDrivesRefinement(t *testing.T) {
	im := img.AbdominalPhantom(40, 40, 28)
	base, err := core.Run(core.Config{Image: im, Workers: 2, LivelockTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := core.Run(core.Config{
		Image:           im,
		Workers:         2,
		SizeFunc:        core.SizeFunc(PerLabel(im, map[img.Label]float64{2: 2.5}, math.Inf(1))),
		LivelockTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	count := func(res *core.Result, label img.Label) int {
		n := 0
		for _, h := range res.Final {
			if im.LabelAt(res.Mesh.Cells.At(h).CC) == label {
				n++
			}
		}
		return n
	}
	if count(fine, 2) <= count(base, 2) {
		t.Errorf("liver not densified: %d vs %d", count(fine, 2), count(base, 2))
	}
}
