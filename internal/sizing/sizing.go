// Package sizing provides composable size functions sf(.) for rule R5.
// The paper's flexibility claim over voxel-based PLC methods is
// exactly this: "our method is able to satisfy both surface and volume
// custom element densities, as dictated by the user-specified size
// functions" (Section 2). A size function maps a point to the largest
// allowed circumradius for tetrahedra whose circumcenter lies there.
package sizing

import (
	"math"

	"repro/internal/edt"
	"repro/internal/geom"
	"repro/internal/img"
)

// Func is the size-function type consumed by core.Config.SizeFunc.
type Func func(geom.Vec3) float64

// Uniform bounds circumradii by h everywhere.
func Uniform(h float64) Func {
	return func(geom.Vec3) float64 { return h }
}

// Unbounded applies no size constraint (quality rules only).
func Unbounded() Func {
	inf := math.Inf(1)
	return func(geom.Vec3) float64 { return inf }
}

// Ball refines to hInside within radius r of center, hOutside beyond
// 2r, with a linear ramp between — a focus region (e.g. a surgical
// target) meshed finer than its surroundings.
func Ball(center geom.Vec3, r, hInside, hOutside float64) Func {
	return func(p geom.Vec3) float64 {
		d := p.Dist(center)
		switch {
		case d <= r:
			return hInside
		case d >= 2*r:
			return hOutside
		default:
			t := (d - r) / r
			return hInside + t*(hOutside-hInside)
		}
	}
}

// PerLabel assigns a size bound per tissue label; labels without an
// entry get def. Small structures (vessels, cartilage) can be meshed
// finer than bulk tissue.
func PerLabel(im *img.Image, byLabel map[img.Label]float64, def float64) Func {
	return func(p geom.Vec3) float64 {
		if h, ok := byLabel[im.LabelAt(p)]; ok {
			return h
		}
		return def
	}
}

// NearSurface grades element size with the distance to the isosurface:
// hNear within `band` of ∂O, growing linearly with distance at unit
// rate up to hFar — boundary layers for FE solvers.
func NearSurface(tr *edt.Transform, hNear, hFar, band float64) Func {
	return func(p geom.Vec3) float64 {
		d := tr.DistanceToSurface(p)
		if math.IsInf(d, 1) {
			return hFar
		}
		h := hNear
		if d > band {
			h = hNear + (d - band)
		}
		return math.Min(h, hFar)
	}
}

// Graded builds a Lipschitz size field from point sources: the bound
// at x is min_i (h_i + g*|x - p_i|), clamped to hMax. A gradation g <
// 1 keeps neighboring element sizes within the usual FE smoothness
// requirements.
func Graded(sources []Source, g, hMax float64) Func {
	return func(p geom.Vec3) float64 {
		h := hMax
		for _, s := range sources {
			if v := s.H + g*p.Dist(s.At); v < h {
				h = v
			}
		}
		return h
	}
}

// Source is a sizing sample for Graded.
type Source struct {
	At geom.Vec3
	H  float64
}

// Min composes size functions by pointwise minimum (the conservative
// combination: every constraint holds).
func Min(fs ...Func) Func {
	return func(p geom.Vec3) float64 {
		h := math.Inf(1)
		for _, f := range fs {
			if v := f(p); v < h {
				h = v
			}
		}
		return h
	}
}

// Scale multiplies a size function by a constant factor.
func Scale(f Func, k float64) Func {
	return func(p geom.Vec3) float64 { return k * f(p) }
}
