package smooth

import (
	"math"

	"repro/internal/quality"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/img"
)

func extractSphere(t *testing.T, n int) (*Mesh, *core.Result) {
	t.Helper()
	im := img.SpherePhantom(n)
	res, err := core.Run(core.Config{Image: im, Workers: 2, LivelockTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	return Extract(res.Mesh, res.Final, im), res
}

func TestExtractConsistency(t *testing.T) {
	s, res := extractSphere(t, 32)
	if len(s.Cells) != res.Elements() {
		t.Fatalf("cells %d, want %d", len(s.Cells), res.Elements())
	}
	if len(s.BoundaryTris) == 0 {
		t.Fatal("no boundary")
	}
	if s.MinCellVolume() <= 0 {
		t.Fatal("extracted mesh has non-positive cells")
	}
	// Watertight extraction: enclosed volume equals summed volume.
	if v, ev := s.Volume(), s.EnclosedVolume(); math.Abs(v-ev) > 1e-6*v {
		t.Fatalf("Volume %v != EnclosedVolume %v", v, ev)
	}
	if len(s.Labels) != len(s.Cells) {
		t.Fatalf("labels %d", len(s.Labels))
	}
}

func TestTaubinSmoothsAndConservesVolume(t *testing.T) {
	s, _ := extractSphere(t, 32)
	v0 := s.Volume()
	st := s.Taubin(10, 0.5, -0.53)

	if st.Moved == 0 {
		t.Fatal("no vertices moved")
	}
	if st.RoughnessDrop <= 0 {
		t.Errorf("roughness did not drop: %v", st.RoughnessDrop)
	}
	// Volume conserved within 1%.
	if math.Abs(s.Volume()-v0) > 0.01*v0 {
		t.Errorf("volume drifted: %v -> %v", v0, s.Volume())
	}
	// No inverted elements.
	if s.MinCellVolume() <= 0 {
		t.Fatal("smoothing inverted an element")
	}
}

func TestTaubinZeroIterationsIsNoOp(t *testing.T) {
	s, _ := extractSphere(t, 24)
	v0 := s.Verts[0]
	st := s.Taubin(0, 0.5, -0.53)
	if st.Moved != 0 && s.Verts[0] != v0 {
		// restoreVolume may nudge if volume drifted, but with zero
		// iterations there is no drift.
		t.Errorf("no-op smoothing moved vertices: %+v", st)
	}
}

func TestSmoothMultiTissue(t *testing.T) {
	im := img.AbdominalPhantom(36, 36, 24)
	res, err := core.Run(core.Config{Image: im, Workers: 2, LivelockTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	s := Extract(res.Mesh, res.Final, im)
	v0 := s.Volume()
	s.Taubin(5, 0.5, -0.53)
	if s.MinCellVolume() <= 0 {
		t.Fatal("inverted element in multi-tissue smoothing")
	}
	if math.Abs(s.Volume()-v0) > 0.02*v0 {
		t.Errorf("multi-tissue volume drift %v -> %v", v0, s.Volume())
	}
}

func TestInteriorVerticesFixed(t *testing.T) {
	s, _ := extractSphere(t, 24)
	// Record interior vertex positions.
	type vp struct {
		i int
		p [3]float64
	}
	var interior []vp
	for i, b := range s.boundaryVert {
		if !b {
			interior = append(interior, vp{i, [3]float64{s.Verts[i].X, s.Verts[i].Y, s.Verts[i].Z}})
		}
	}
	if len(interior) == 0 {
		t.Skip("no interior vertices at this scale")
	}
	s.Taubin(5, 0.5, -0.53)
	for _, v := range interior {
		q := s.Verts[v.i]
		if q.X != v.p[0] || q.Y != v.p[1] || q.Z != v.p[2] {
			t.Fatal("interior vertex moved")
		}
	}
}

// TestSmoothingDisplacementBounded measures how far the boundary moved
// using the quality package's surface distance: Taubin smoothing is a
// local averaging, so displacement must stay within ~2 local edge
// lengths.
func TestSmoothingDisplacementBounded(t *testing.T) {
	s, res := extractSphere(t, 32)
	before := boundaryTriangles(s)
	_ = res
	s.Taubin(10, 0.5, -0.53)
	after := boundaryTriangles(s)
	d := quality.SurfaceDistance(after, before)
	if d > 6 { // delta=2 mesh: edges ~2-4 voxels
		t.Errorf("smoothing displaced the surface by %.2f voxels", d)
	}
	if d <= 0 {
		t.Errorf("no displacement measured (smoothing inert?)")
	}
}

func boundaryTriangles(s *Mesh) []quality.Triangle {
	out := make([]quality.Triangle, 0, len(s.BoundaryTris))
	for _, tr := range s.BoundaryTris {
		out = append(out, quality.Triangle{
			A: s.Verts[tr[0]], B: s.Verts[tr[1]], C: s.Verts[tr[2]],
		})
	}
	return out
}
