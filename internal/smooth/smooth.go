// Package smooth implements volume-conserving mesh-boundary smoothing,
// the extension the paper explicitly leaves as future work ("the
// extension of our framework to support the computationally expensive
// step of volume-conserving smoothing ... is left for future work",
// Section 7): CFD applications such as airway modeling want smooth
// boundaries, while FE quality must not be destroyed.
//
// The implementation extracts a mutable copy of the final mesh,
// applies Taubin λ|μ smoothing to the boundary vertices, restores the
// enclosed volume exactly by a uniform offset along vertex normals,
// and guards every displacement against element inversion.
package smooth

import (
	"math"

	"repro/internal/arena"
	"repro/internal/delaunay"
	"repro/internal/geom"
	"repro/internal/img"
)

// Mesh is a standalone, mutable tetrahedral mesh extracted from a
// refinement result (the shared Delaunay structure is immutable).
type Mesh struct {
	Verts  []geom.Vec3
	Cells  [][4]int32
	Labels []img.Label // per-cell tissue label (may be nil)

	// Boundary structure.
	BoundaryTris  [][3]int32 // outward-oriented boundary triangles
	boundaryVert  []bool
	vertNeighbors [][]int32 // boundary-edge adjacency for boundary verts
	vertCells     [][]int32 // incident cells per vertex (boundary verts only)
}

// Extract copies the final cells into a standalone mesh. Boundary
// facets are those without a final cell on the other side, or between
// different tissues when im is non-nil.
func Extract(m *delaunay.Mesh, final []arena.Handle, im *img.Image) *Mesh {
	s := &Mesh{}
	vidOf := make(map[arena.Handle]int32)
	vid := func(h arena.Handle) int32 {
		if i, ok := vidOf[h]; ok {
			return i
		}
		i := int32(len(s.Verts))
		vidOf[h] = i
		s.Verts = append(s.Verts, m.Pos(h))
		return i
	}

	inFinal := make(map[arena.Handle]img.Label, len(final))
	for _, h := range final {
		var l img.Label
		if im != nil {
			l = im.LabelAt(m.Cells.At(h).CC)
		}
		inFinal[h] = l
	}

	for _, h := range final {
		c := m.Cells.At(h)
		var cell [4]int32
		for i := 0; i < 4; i++ {
			cell[i] = vid(c.V[i])
		}
		s.Cells = append(s.Cells, cell)
		if im != nil {
			s.Labels = append(s.Labels, inFinal[h])
		}

		myLabel := inFinal[h]
		for f := 0; f < 4; f++ {
			nb := c.Neighbor(f)
			nbLabel, ok := inFinal[nb]
			if ok && nbLabel == myLabel {
				continue
			}
			if ok && nb < h {
				continue // interface facet emitted once
			}
			face := c.Face(f)
			// ftab orients the face with the opposite vertex on the
			// positive side (inside); reverse for an outward normal.
			s.BoundaryTris = append(s.BoundaryTris,
				[3]int32{vid(face[0]), vid(face[2]), vid(face[1])})
		}
	}

	s.buildAdjacency()
	return s
}

func (s *Mesh) buildAdjacency() {
	n := len(s.Verts)
	s.boundaryVert = make([]bool, n)
	nbSet := make([]map[int32]struct{}, n)
	addEdge := func(a, b int32) {
		if nbSet[a] == nil {
			nbSet[a] = make(map[int32]struct{}, 8)
		}
		nbSet[a][b] = struct{}{}
	}
	for _, tr := range s.BoundaryTris {
		for i := 0; i < 3; i++ {
			a, b := tr[i], tr[(i+1)%3]
			s.boundaryVert[a] = true
			addEdge(a, b)
			addEdge(b, a)
		}
	}
	s.vertNeighbors = make([][]int32, n)
	for v, set := range nbSet {
		for u := range set {
			s.vertNeighbors[v] = append(s.vertNeighbors[v], u)
		}
	}
	s.vertCells = make([][]int32, n)
	for ci, cell := range s.Cells {
		for _, v := range cell {
			if s.boundaryVert[v] {
				s.vertCells[v] = append(s.vertCells[v], int32(ci))
			}
		}
	}
}

// Volume returns the total volume of the tetrahedra.
func (s *Mesh) Volume() float64 {
	var v float64
	for _, c := range s.Cells {
		v += geom.TetraVolume(s.Verts[c[0]], s.Verts[c[1]], s.Verts[c[2]], s.Verts[c[3]])
	}
	return v
}

// EnclosedVolume integrates the boundary surface (divergence theorem);
// equal to Volume for a watertight extraction.
func (s *Mesh) EnclosedVolume() float64 {
	var v float64
	for _, tr := range s.BoundaryTris {
		a, b, c := s.Verts[tr[0]], s.Verts[tr[1]], s.Verts[tr[2]]
		v += a.Dot(b.Cross(c)) / 6
	}
	return math.Abs(v)
}

// MinCellVolume returns the smallest signed cell volume (negative
// means an inverted element).
func (s *Mesh) MinCellVolume() float64 {
	min := math.Inf(1)
	for _, c := range s.Cells {
		if v := geom.TetraVolume(s.Verts[c[0]], s.Verts[c[1]], s.Verts[c[2]], s.Verts[c[3]]); v < min {
			min = v
		}
	}
	return min
}

// Stats reports what a smoothing pass did.
type Stats struct {
	Iterations    int
	Moved         int // vertex displacements applied
	Reverted      int // displacements undone by the inversion guard
	VolumeBefore  float64
	VolumeAfter   float64
	RoughnessDrop float64 // relative decrease of the surface roughness energy
}

// Taubin runs `iters` λ|μ smoothing passes over the boundary vertices
// with inversion guarding, then restores the enclosed volume by a
// uniform normal offset (itself guarded). Typical parameters:
// λ=0.5, μ=-0.53.
func (s *Mesh) Taubin(iters int, lambda, mu float64) Stats {
	st := Stats{Iterations: iters, VolumeBefore: s.Volume()}
	r0 := s.roughness()

	for it := 0; it < iters; it++ {
		st.apply(s, lambda)
		st.apply(s, mu)
	}

	// Volume conservation: offset boundary vertices along their
	// area-weighted normals to undo the shrink/growth.
	s.restoreVolume(st.VolumeBefore, &st)

	st.VolumeAfter = s.Volume()
	if r1 := s.roughness(); r0 > 0 {
		st.RoughnessDrop = (r0 - r1) / r0
	}
	return st
}

// apply performs one Laplacian step scaled by k over all boundary
// vertices (Jacobi style: displacements computed from the current
// positions, then applied with the inversion guard).
func (st *Stats) apply(s *Mesh, k float64) {
	disp := make([]geom.Vec3, len(s.Verts))
	for v := range s.Verts {
		if !s.boundaryVert[v] || len(s.vertNeighbors[v]) == 0 {
			continue
		}
		var avg geom.Vec3
		for _, u := range s.vertNeighbors[v] {
			avg = avg.Add(s.Verts[u])
		}
		avg = avg.Scale(1 / float64(len(s.vertNeighbors[v])))
		disp[v] = avg.Sub(s.Verts[v]).Scale(k)
	}
	for v := range s.Verts {
		if disp[v] == (geom.Vec3{}) {
			continue
		}
		if s.tryMove(int32(v), disp[v]) {
			st.Moved++
		} else {
			st.Reverted++
		}
	}
}

// tryMove displaces vertex v, halving the step until no incident cell
// inverts (up to 4 halvings; reports failure if even the smallest step
// inverts something).
func (s *Mesh) tryMove(v int32, d geom.Vec3) bool {
	old := s.Verts[v]
	for attempt := 0; attempt < 4; attempt++ {
		s.Verts[v] = old.Add(d)
		if s.incidentOK(v) {
			return true
		}
		d = d.Scale(0.5)
	}
	s.Verts[v] = old
	return false
}

func (s *Mesh) incidentOK(v int32) bool {
	const eps = 1e-12
	for _, ci := range s.vertCells[v] {
		c := s.Cells[ci]
		if geom.TetraVolume(s.Verts[c[0]], s.Verts[c[1]], s.Verts[c[2]], s.Verts[c[3]]) <= eps {
			return false
		}
	}
	return true
}

// restoreVolume offsets boundary vertices along area-weighted normals
// so the total volume returns to target (one Newton step suffices for
// the small volume drift of Taubin smoothing; iterate three times for
// safety).
func (s *Mesh) restoreVolume(target float64, st *Stats) {
	for iter := 0; iter < 3; iter++ {
		cur := s.Volume()
		dv := target - cur
		if math.Abs(dv) < 1e-9*math.Abs(target) {
			return
		}
		normals := s.vertexNormals()
		var area float64
		for _, tr := range s.BoundaryTris {
			a, b, c := s.Verts[tr[0]], s.Verts[tr[1]], s.Verts[tr[2]]
			area += b.Sub(a).Cross(c.Sub(a)).Norm() / 2
		}
		if area == 0 {
			return
		}
		// dV ≈ area * offset.
		offset := dv / area
		for v := range s.Verts {
			if !s.boundaryVert[v] || normals[v] == (geom.Vec3{}) {
				continue
			}
			if s.tryMove(int32(v), normals[v].Scale(offset)) {
				st.Moved++
			} else {
				st.Reverted++
			}
		}
	}
}

// vertexNormals returns area-weighted outward unit normals for
// boundary vertices.
func (s *Mesh) vertexNormals() []geom.Vec3 {
	normals := make([]geom.Vec3, len(s.Verts))
	for _, tr := range s.BoundaryTris {
		a, b, c := s.Verts[tr[0]], s.Verts[tr[1]], s.Verts[tr[2]]
		n := b.Sub(a).Cross(c.Sub(a)) // outward, area-weighted
		for _, v := range tr {
			normals[v] = normals[v].Add(n)
		}
	}
	for v := range normals {
		if normals[v] != (geom.Vec3{}) {
			normals[v] = normals[v].Normalize()
		}
	}
	return normals
}

// roughness is a surface energy: the sum of squared deviations of each
// boundary vertex from its neighbors' centroid. Smoothing should
// reduce it.
func (s *Mesh) roughness() float64 {
	var e float64
	for v := range s.Verts {
		if !s.boundaryVert[v] || len(s.vertNeighbors[v]) == 0 {
			continue
		}
		var avg geom.Vec3
		for _, u := range s.vertNeighbors[v] {
			avg = avg.Add(s.Verts[u])
		}
		avg = avg.Scale(1 / float64(len(s.vertNeighbors[v])))
		e += avg.Sub(s.Verts[v]).Norm2()
	}
	return e
}
