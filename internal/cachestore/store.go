package cachestore

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
)

// Config parameterizes a Store.
type Config struct {
	// Dir is the cache directory; created if absent. Layout:
	//
	//	<dir>/blobs/<sha256(key)>.snap   framed snapshot blobs
	//	<dir>/journal                    append-only index journal
	//	<dir>/index.ckpt                 compacting index checkpoint
	//	<dir>/quarantine/                corrupt blobs, moved aside
	Dir string
	// MaxBytes is the LRU byte budget across all live entries (blob
	// bytes on disk, estimated snapshot bytes for memory-only entries).
	// 0 selects the default of 1 GiB.
	MaxBytes int64
	// ReprobeInterval is how often a degraded (memory-only) store
	// re-probes the disk with a real write, flipping back to durable
	// mode on success. 0 selects the default of 5s.
	ReprobeInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxBytes <= 0 {
		c.MaxBytes = 1 << 30
	}
	if c.ReprobeInterval <= 0 {
		c.ReprobeInterval = 5 * time.Second
	}
	return c
}

// Stats is a snapshot of the store's counters (the serving layer
// exposes them as pi2md_cache_* / pi2md_fsck_* metrics).
type Stats struct {
	Hits            int64 `json:"hits"`
	Misses          int64 `json:"misses"`
	Writes          int64 `json:"writes"`
	Evictions       int64 `json:"evictions"`
	Corrupt         int64 `json:"corrupt"`
	Adopted         int64 `json:"adopted,omitempty"`
	FsckRecovered   int64 `json:"fsck_recovered"`
	FsckQuarantined int64 `json:"fsck_quarantined"`
	Bytes           int64 `json:"bytes"`
	Entries         int   `json:"entries"`
	Degraded        bool  `json:"degraded"`
}

// entry is one live index entry. mem is non-nil for entries accepted
// while the store was degraded: they live in memory only and are
// served without touching the disk.
type entry struct {
	imageKey  string
	variant   string
	file      string // blob filename under blobs/
	bytes     int64
	etag      string
	createdNS int64
	elem      *list.Element
	mem       *core.MeshSnapshot
}

func entryKey(imageKey, variant string) string { return imageKey + "\x00" + variant }

// blobName content-addresses the (image key, variant) pair.
func blobName(imageKey, variant string) string {
	sum := sha256.Sum256([]byte(entryKey(imageKey, variant)))
	return hex.EncodeToString(sum[:]) + ".snap"
}

// Store is a crash-safe persistent snapshot cache. All methods are
// safe for concurrent use.
type Store struct {
	cfg Config

	mu         sync.Mutex
	entries    map[string]*entry
	lru        *list.List // front = most recently used
	totalBytes int64
	journal    *os.File
	journalLen int
	closed     bool
	lastProbe  time.Time

	degraded atomic.Bool

	hits, misses, writes, evictions, corrupt atomic.Int64
	adopted                                  atomic.Int64
	fsckRecovered, fsckQuarantined           atomic.Int64
}

// Open opens (or creates) the store at cfg.Dir and runs the boot-time
// fsck pass described in the package comment. The returned report says
// what fsck found; Open only fails for unrecoverable environment
// problems (the directory cannot be created or written).
func Open(cfg Config) (*Store, FsckReport, error) {
	cfg = cfg.withDefaults()
	s := &Store{
		cfg:     cfg,
		entries: make(map[string]*entry),
		lru:     list.New(),
	}
	for _, d := range []string{cfg.Dir, filepath.Join(cfg.Dir, blobsDirName), filepath.Join(cfg.Dir, quarantineName)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, FsckReport{}, fmt.Errorf("cachestore: creating %s: %w", d, err)
		}
	}
	rep, err := s.fsck()
	if err != nil {
		return nil, rep, err
	}
	s.fsckRecovered.Store(int64(rep.Recovered))
	s.fsckQuarantined.Store(int64(rep.Quarantined))
	// Persist the reconciled index and start a fresh journal, so the
	// next boot replays from a state fsck has already blessed.
	if err := s.compactLocked(); err != nil {
		// The disk is refusing writes already at boot: open degraded
		// rather than failing — reads of verified blobs still work.
		s.degrade()
	}
	return s, rep, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.cfg.Dir }

// Degraded reports whether the store is in memory-only mode after a
// disk write failure.
func (s *Store) Degraded() bool { return s.degraded.Load() }

// Len returns the number of live entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	bytes := s.totalBytes
	n := len(s.entries)
	s.mu.Unlock()
	return Stats{
		Hits:            s.hits.Load(),
		Misses:          s.misses.Load(),
		Writes:          s.writes.Load(),
		Evictions:       s.evictions.Load(),
		Corrupt:         s.corrupt.Load(),
		Adopted:         s.adopted.Load(),
		FsckRecovered:   s.fsckRecovered.Load(),
		FsckQuarantined: s.fsckQuarantined.Load(),
		Bytes:           bytes,
		Entries:         n,
		Degraded:        s.degraded.Load(),
	}
}

// ETag answers a conditional-GET lookup from the index alone — no blob
// I/O. ok is false when the pair is not cached. A successful lookup
// counts as a hit and refreshes the entry's recency: the caller is
// about to answer 304 from it.
func (s *Store) ETag(imageKey, variant string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[entryKey(imageKey, variant)]
	if !ok {
		return "", false
	}
	s.lru.MoveToFront(e.elem)
	s.hits.Add(1)
	return e.etag, true
}

// Contains reports whether the pair is indexed, without counting a hit
// or touching recency.
func (s *Store) Contains(imageKey, variant string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[entryKey(imageKey, variant)]
	return ok
}

// Get returns the cached snapshot for (imageKey, variant), re-verifying
// the blob's CRC before a byte is trusted. A corrupt blob is moved to
// quarantine, dropped from the index, counted, and reported as a miss —
// corrupt bytes are never served, they cost one re-mesh.
func (s *Store) Get(imageKey, variant string) (*core.MeshSnapshot, string, bool) {
	k := entryKey(imageKey, variant)
	s.mu.Lock()
	e, ok := s.entries[k]
	if !ok {
		s.misses.Add(1)
		s.mu.Unlock()
		return nil, "", false
	}
	if e.mem != nil {
		s.lru.MoveToFront(e.elem)
		s.hits.Add(1)
		snap, etag := e.mem, e.etag
		s.mu.Unlock()
		return snap, etag, true
	}
	path := filepath.Join(s.cfg.Dir, blobsDirName, e.file)
	s.mu.Unlock()

	data, err := os.ReadFile(path)
	if err != nil {
		// Concurrently evicted, or the disk is failing reads: either way
		// this is a miss, not an error the caller must handle.
		s.dropEntry(k, e, false)
		s.misses.Add(1)
		return nil, "", false
	}
	meta, snap, etag, derr := decodeBlob(data)
	if derr == nil && (meta.ImageKey != imageKey || meta.Variant != variant) {
		derr = fmt.Errorf("cachestore: blob %s carries identity (%.16s…, %q), index says (%.16s…, %q)",
			e.file, meta.ImageKey, meta.Variant, imageKey, variant)
	}
	if derr != nil {
		s.quarantineBlob(e.file)
		s.dropEntry(k, e, true)
		s.corrupt.Add(1)
		s.misses.Add(1)
		return nil, "", false
	}
	s.mu.Lock()
	if cur, still := s.entries[k]; still && cur == e {
		s.lru.MoveToFront(e.elem)
	}
	s.hits.Add(1)
	s.mu.Unlock()
	return snap, etag, true
}

// Lookup is Get plus an adoptive disk fallback. Blob filenames are a
// pure function of (imageKey, variant), so when the index has no entry
// the deterministic blob path is probed directly: a verified blob that
// another process sharing the directory wrote — a replica on shared
// storage, or a peer that was killed before this boot's fsck — is
// adopted into the index and served as a hit. A corrupt blob at that
// path is quarantined exactly as Get would. The distributed tier's
// replica cache reads are built on this: a survivor can answer for a
// dead owner's key the moment the bytes are reachable, without a
// restart or a re-mesh.
func (s *Store) Lookup(imageKey, variant string) (*core.MeshSnapshot, string, bool) {
	if snap, etag, ok := s.Get(imageKey, variant); ok {
		return snap, etag, true
	}
	if imageKey == "" {
		return nil, "", false
	}
	name := blobName(imageKey, variant)
	data, err := os.ReadFile(filepath.Join(s.cfg.Dir, blobsDirName, name))
	if err != nil {
		return nil, "", false // Get already counted the miss
	}
	meta, snap, etag, derr := decodeBlob(data)
	if derr == nil && (meta.ImageKey != imageKey || meta.Variant != variant) {
		derr = fmt.Errorf("cachestore: blob %s carries identity (%.16s…, %q), caller asked for (%.16s…, %q)",
			name, meta.ImageKey, meta.Variant, imageKey, variant)
	}
	if derr != nil {
		s.quarantineBlob(name)
		s.corrupt.Add(1)
		return nil, "", false
	}

	k := entryKey(imageKey, variant)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, "", false
	}
	if _, raced := s.entries[k]; !raced {
		e := &entry{
			imageKey:  imageKey,
			variant:   variant,
			file:      name,
			bytes:     int64(len(data)),
			etag:      etag,
			createdNS: meta.CreatedNS,
		}
		e.elem = s.lru.PushFront(e)
		s.entries[k] = e
		s.totalBytes += e.bytes
		s.appendJournalLocked(journalRec{
			Op: "put", ImageKey: imageKey, Variant: variant,
			File: name, Bytes: e.bytes, ETag: etag, CreatedNS: e.createdNS,
		})
		s.evictLocked()
	}
	s.adopted.Add(1)
	s.hits.Add(1)
	s.mu.Unlock()
	return snap, etag, true
}

// Exists reports whether the pair is servable — indexed, or present as
// an un-indexed blob at its deterministic path. Like Contains it counts
// nothing and touches no recency; unlike Contains it sees blobs written
// by other processes sharing the directory.
func (s *Store) Exists(imageKey, variant string) bool {
	if s.Contains(imageKey, variant) {
		return true
	}
	if imageKey == "" {
		return false
	}
	_, err := os.Stat(filepath.Join(s.cfg.Dir, blobsDirName, blobName(imageKey, variant)))
	return err == nil
}

// Put stores a snapshot for (imageKey, variant). Disk failures never
// propagate to the caller: a write error (ENOSPC, EIO, injected) flips
// the store to memory-only degraded mode and the entry is kept in
// memory instead, so meshing never fails because the disk did. The
// returned etag identifies the entry for conditional GETs.
func (s *Store) Put(imageKey, variant string, snap *core.MeshSnapshot) (string, error) {
	if imageKey == "" || snap == nil {
		return "", errors.New("cachestore: Put needs an image key and a snapshot")
	}
	meta := blobMeta{
		ImageKey:  imageKey,
		Variant:   variant,
		CreatedNS: time.Now().UnixNano(),
		Summary:   snap.Summary,
	}
	data, etag, err := encodeBlob(meta, snap)
	if err != nil {
		return "", err
	}
	if int64(len(data)) > s.cfg.MaxBytes {
		// One oversized entry must not evict the whole cache; skip it.
		return etag, nil
	}
	name := blobName(imageKey, variant)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return etag, errors.New("cachestore: store closed")
	}

	durable := true
	if s.degraded.Load() {
		if time.Since(s.lastProbe) < s.cfg.ReprobeInterval {
			durable = false
		} else {
			s.lastProbe = time.Now()
		}
	}
	if durable {
		if werr := s.writeBlobFile(name, data); werr != nil {
			s.degrade()
			s.lastProbe = time.Now()
			durable = false
		} else if s.degraded.Load() {
			// The re-probe landed: the disk accepts writes again.
			s.degraded.Store(false)
		}
	}

	k := entryKey(imageKey, variant)
	if old, ok := s.entries[k]; ok {
		s.removeLocked(k, old, false)
	}
	e := &entry{
		imageKey:  imageKey,
		variant:   variant,
		file:      name,
		bytes:     int64(len(data)),
		etag:      etag,
		createdNS: meta.CreatedNS,
	}
	if !durable {
		e.mem = snap
		e.bytes = int64(snap.SizeBytes())
	}
	e.elem = s.lru.PushFront(e)
	s.entries[k] = e
	s.totalBytes += e.bytes
	s.writes.Add(1)
	if durable {
		s.appendJournalLocked(journalRec{
			Op: "put", ImageKey: imageKey, Variant: variant,
			File: name, Bytes: e.bytes, ETag: etag, CreatedNS: e.createdNS,
		})
	}
	s.evictLocked()
	return etag, nil
}

// writeBlobFile writes one framed blob with the crash-safe discipline:
// temp file, fsync, atomic rename, directory fsync. The faultinject
// points simulate the disk failing (CacheWriteFail/CacheENOSPC) or
// lying (CacheTornWrite/CacheBitFlip — the write "succeeds" but the
// blob is corrupt, which the CRC must catch later). Caller holds s.mu.
func (s *Store) writeBlobFile(name string, data []byte) error {
	if faultinject.Fire(faultinject.CacheENOSPC) {
		return fmt.Errorf("cachestore: injected disk-full: %w", syscall.ENOSPC)
	}
	if faultinject.Fire(faultinject.CacheWriteFail) {
		return fmt.Errorf("cachestore: injected write failure: %w", syscall.EIO)
	}
	if faultinject.Fire(faultinject.CacheTornWrite) {
		data = data[:len(data)/2]
	} else if faultinject.Fire(faultinject.CacheBitFlip) {
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)/3] ^= 0x40
		data = flipped
	}
	return atomicWriteFile(filepath.Join(s.cfg.Dir, blobsDirName, name), data)
}

// degrade flips the store to memory-only mode. Reads of already-stored
// blobs keep working (the disk may still read fine); new entries live
// in memory until a re-probe write lands.
func (s *Store) degrade() { s.degraded.Store(true) }

// appendJournalLocked appends one record; journal failures degrade the
// store rather than failing the operation (the checkpoint on a healthy
// restart repairs the history). Caller holds s.mu.
func (s *Store) appendJournalLocked(rec journalRec) {
	if s.journal == nil {
		f, err := os.OpenFile(filepath.Join(s.cfg.Dir, journalName), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			s.degrade()
			return
		}
		s.journal = f
	}
	line, err := encodeJournalLine(rec)
	if err != nil {
		return
	}
	if _, err := s.journal.Write(line); err != nil {
		s.degrade()
		return
	}
	if err := s.journal.Sync(); err != nil {
		s.degrade()
		return
	}
	s.journalLen++
	if s.journalLen >= journalCompactAfter {
		if err := s.compactLocked(); err != nil {
			s.degrade()
		}
	}
}

// compactLocked writes a checkpoint of the live index (LRU order,
// oldest first) and restarts the journal. Caller holds s.mu (or is
// Open, before the store is shared).
func (s *Store) compactLocked() error {
	recs := make([]journalRec, 0, len(s.entries))
	for el := s.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		if e.mem != nil {
			continue // memory-only entries die with the process by definition
		}
		recs = append(recs, journalRec{
			Op: "put", ImageKey: e.imageKey, Variant: e.variant,
			File: e.file, Bytes: e.bytes, ETag: e.etag, CreatedNS: e.createdNS,
		})
	}
	if err := writeCheckpoint(s.cfg.Dir, recs); err != nil {
		return err
	}
	if s.journal != nil {
		s.journal.Close()
		s.journal = nil
	}
	if err := os.Remove(filepath.Join(s.cfg.Dir, journalName)); err != nil && !os.IsNotExist(err) {
		return err
	}
	s.journalLen = 0
	return nil
}

// evictLocked enforces the byte budget, least-recently-used first. The
// newest entry is never evicted (budget admission already capped its
// size). Caller holds s.mu.
func (s *Store) evictLocked() {
	for s.totalBytes > s.cfg.MaxBytes && s.lru.Len() > 1 {
		el := s.lru.Back()
		if el == nil {
			return
		}
		e := el.Value.(*entry)
		s.removeLocked(entryKey(e.imageKey, e.variant), e, true)
		s.evictions.Add(1)
	}
}

// removeLocked unlinks an entry and (optionally) deletes its blob and
// journals the deletion. Caller holds s.mu.
func (s *Store) removeLocked(k string, e *entry, deleteBlob bool) {
	if cur, ok := s.entries[k]; !ok || cur != e {
		return
	}
	delete(s.entries, k)
	s.lru.Remove(e.elem)
	s.totalBytes -= e.bytes
	if e.mem == nil {
		if deleteBlob {
			os.Remove(filepath.Join(s.cfg.Dir, blobsDirName, e.file))
		}
		s.appendJournalLocked(journalRec{Op: "del", ImageKey: e.imageKey, Variant: e.variant, File: e.file})
	}
}

// dropEntry removes an entry from the index after an out-of-lock read
// found it unusable. The blob itself is handled by the caller
// (quarantined or already gone).
func (s *Store) dropEntry(k string, e *entry, journalDel bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.entries[k]; ok && cur == e {
		delete(s.entries, k)
		s.lru.Remove(e.elem)
		s.totalBytes -= e.bytes
		if journalDel && e.mem == nil {
			s.appendJournalLocked(journalRec{Op: "del", ImageKey: e.imageKey, Variant: e.variant, File: e.file})
		}
	}
}

// quarantineBlob moves a corrupt blob into quarantine/ so it is never
// served again but stays available for post-mortem; if the move fails
// the blob is deleted outright.
func (s *Store) quarantineBlob(name string) {
	src := filepath.Join(s.cfg.Dir, blobsDirName, name)
	dst := filepath.Join(s.cfg.Dir, quarantineName, name)
	if err := os.Rename(src, dst); err != nil {
		os.Remove(src)
	}
}

// KeyInfo names one cached entry for warm-start consumers.
type KeyInfo struct {
	ImageKey string
	Variant  string
	ETag     string
	Bytes    int64
}

// KeysMRU lists the live entries, most recently used first — the boot
// warm-start uses it to seed pool affinity before the first request.
func (s *Store) KeysMRU() []KeyInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]KeyInfo, 0, s.lru.Len())
	for el := s.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		out = append(out, KeyInfo{ImageKey: e.imageKey, Variant: e.variant, ETag: e.etag, Bytes: e.bytes})
	}
	return out
}

// WriteSidecar atomically writes a small named state file (e.g. the
// serving layer's breaker priors) next to the index. name must be a
// bare filename.
func (s *Store) WriteSidecar(name string, data []byte) error {
	if strings.ContainsAny(name, `/\`) || name == "" {
		return fmt.Errorf("cachestore: bad sidecar name %q", name)
	}
	return atomicWriteFile(filepath.Join(s.cfg.Dir, name), data)
}

// ReadSidecar reads a sidecar written by WriteSidecar; a missing file
// returns (nil, false).
func (s *Store) ReadSidecar(name string) ([]byte, bool) {
	if strings.ContainsAny(name, `/\`) || name == "" {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(s.cfg.Dir, name))
	if err != nil {
		return nil, false
	}
	return data, true
}

// Close checkpoints the index and closes the journal. The store must
// not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.compactLocked()
	if s.journal != nil {
		s.journal.Close()
		s.journal = nil
	}
	return err
}
