package cachestore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/img"
)

// testSnap builds a small deterministic snapshot; n varies the size so
// tests can distinguish entries and exercise byte accounting.
func testSnap(n int) *core.MeshSnapshot {
	s := &core.MeshSnapshot{
		Summary: core.RunSummary{Status: "complete", Elements: n},
	}
	for i := 0; i < n+4; i++ {
		s.Verts = append(s.Verts, geom.Vec3{X: float64(i), Y: float64(i) * 0.5, Z: float64(n)})
	}
	for i := 0; i < n+1; i++ {
		s.Cells = append(s.Cells, [4]int32{0, 1, 2, int32(3 + i%(len(s.Verts)-3))})
		s.Labels = append(s.Labels, img.Label(i%3+1))
	}
	return s
}

func snapsEqual(a, b *core.MeshSnapshot) bool {
	if len(a.Verts) != len(b.Verts) || len(a.Cells) != len(b.Cells) || len(a.Labels) != len(b.Labels) {
		return false
	}
	for i := range a.Verts {
		if a.Verts[i] != b.Verts[i] {
			return false
		}
	}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			return false
		}
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			return false
		}
	}
	return a.Summary.Elements == b.Summary.Elements
}

func TestBlobRoundTrip(t *testing.T) {
	snap := testSnap(7)
	meta := blobMeta{ImageKey: "abc", Variant: "delta=2.5", CreatedNS: 42, Summary: snap.Summary}
	data, etag, err := encodeBlob(meta, snap)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if len(etag) != 16 {
		t.Fatalf("etag %q is not 16 hex chars", etag)
	}
	gotMeta, got, gotTag, err := decodeBlob(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if gotTag != etag {
		t.Fatalf("etag mismatch: %q vs %q", gotTag, etag)
	}
	if gotMeta.ImageKey != "abc" || gotMeta.Variant != "delta=2.5" || gotMeta.CreatedNS != 42 {
		t.Fatalf("meta mismatch: %+v", gotMeta)
	}
	if !snapsEqual(snap, got) {
		t.Fatal("snapshot did not round-trip")
	}
	// verifyBlobHeader must agree with the full decoder.
	hMeta, hTag, err := verifyBlobHeader(data)
	if err != nil {
		t.Fatalf("verifyBlobHeader: %v", err)
	}
	if hTag != etag || hMeta.ImageKey != "abc" {
		t.Fatalf("header verify disagrees: %q %+v", hTag, hMeta)
	}
}

func TestBlobDecodeRejectsCorruption(t *testing.T) {
	snap := testSnap(5)
	data, _, err := encodeBlob(blobMeta{ImageKey: "k"}, snap)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"short":     data[:10],
		"truncated": data[:len(data)-3],
		"badmagic":  append([]byte("XXXXXXXX"), data[8:]...),
	}
	flip := append([]byte(nil), data...)
	flip[len(flip)/2] ^= 0x01
	cases["bitflip"] = flip
	for name, d := range cases {
		if _, _, _, err := decodeBlob(d); err == nil {
			t.Errorf("%s: decode accepted corrupt blob", name)
		}
		if _, _, err := verifyBlobHeader(d); err == nil {
			t.Errorf("%s: verifyBlobHeader accepted corrupt blob", name)
		}
	}
}

func TestStorePutGetPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, rep, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if rep.Verified != 0 || rep.Quarantined != 0 {
		t.Fatalf("fresh dir fsck found things: %+v", rep)
	}
	snap := testSnap(9)
	etag, err := s.Put("img1", "delta=2.5", snap)
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	got, gotTag, ok := s.Get("img1", "delta=2.5")
	if !ok || gotTag != etag || !snapsEqual(snap, got) {
		t.Fatalf("get after put: ok=%v tag=%q", ok, gotTag)
	}
	if _, _, ok := s.Get("img1", ""); ok {
		t.Fatal("different variant must miss")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	s2, rep2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if !rep2.CheckpointUsed || rep2.Verified != 1 {
		t.Fatalf("reopen fsck: %+v", rep2)
	}
	got, gotTag, ok = s2.Get("img1", "delta=2.5")
	if !ok || gotTag != etag || !snapsEqual(snap, got) {
		t.Fatal("entry did not survive reopen")
	}
	if tag, ok := s2.ETag("img1", "delta=2.5"); !ok || tag != etag {
		t.Fatalf("ETag lookup after reopen: %q %v", tag, ok)
	}
}

func TestStoreLRUByBytesEviction(t *testing.T) {
	dir := t.TempDir()
	one, _, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	data, _, _ := encodeBlob(blobMeta{ImageKey: "size-probe"}, testSnap(10))
	one.Close()
	budget := int64(len(data))*2 + int64(len(data))/2 // room for 2 entries, not 3

	s, _, err := Open(Config{Dir: dir, MaxBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, k := range []string{"k1", "k2"} {
		if _, err := s.Put(k, "", testSnap(10)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch k1 so k2 is the LRU victim.
	if _, _, ok := s.Get("k1", ""); !ok {
		t.Fatal("k1 missing before eviction")
	}
	if _, err := s.Put("k3", "", testSnap(10)); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get("k2", ""); ok {
		t.Fatal("k2 should have been evicted (LRU)")
	}
	if _, _, ok := s.Get("k1", ""); !ok {
		t.Fatal("recently used k1 must survive")
	}
	if _, _, ok := s.Get("k3", ""); !ok {
		t.Fatal("newest k3 must survive")
	}
	if st := s.Stats(); st.Evictions != 1 || st.Bytes > budget {
		t.Fatalf("stats after eviction: %+v", st)
	}
}

func TestStoreOversizedEntryRefused(t *testing.T) {
	s, _, err := Open(Config{Dir: t.TempDir(), MaxBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Put("big", "", testSnap(50)); err != nil {
		t.Fatalf("oversized put must not error: %v", err)
	}
	if s.Len() != 0 {
		t.Fatal("oversized entry must not be admitted")
	}
}

func TestStoreQuarantinesCorruptBlobOnRead(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Put("img1", "", testSnap(6)); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the blob behind the store's back.
	name := blobName("img1", "")
	path := filepath.Join(dir, blobsDirName, name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x80
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get("img1", ""); ok {
		t.Fatal("corrupt blob was served")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt counter = %d, want 1", st.Corrupt)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineName, name)); err != nil {
		t.Fatalf("corrupt blob not quarantined: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt blob still visible in blobs/")
	}
	// The entry is gone from the index too.
	if s.Contains("img1", "") {
		t.Fatal("corrupt entry still indexed")
	}
}

func TestFsckQuarantinesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	goodSnap := testSnap(8)
	goodTag, err := s.Put("good", "", goodSnap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("bad", "", testSnap(5)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Corrupt one blob, drop an orphan (valid blob the index has never
	// heard of), leave a stray tmp file, and tear the journal.
	badPath := filepath.Join(dir, blobsDirName, blobName("bad", ""))
	raw, _ := os.ReadFile(badPath)
	raw[len(raw)-1] ^= 0xFF
	os.WriteFile(badPath, raw, 0o644)

	orphanSnap := testSnap(11)
	orphanData, orphanTag, _ := encodeBlob(blobMeta{ImageKey: "orphan", Variant: "v", CreatedNS: 1, Summary: orphanSnap.Summary}, orphanSnap)
	os.WriteFile(filepath.Join(dir, blobsDirName, blobName("orphan", "v")), orphanData, 0o644)
	os.WriteFile(filepath.Join(dir, blobsDirName, "stray.snap.tmp"), []byte("half"), 0o644)
	os.WriteFile(filepath.Join(dir, journalName), []byte("{\"op\":\"put\" TORN"), 0o644)

	s2, rep, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if rep.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1 (%+v)", rep.Quarantined, rep)
	}
	if rep.Recovered != 1 {
		t.Fatalf("recovered = %d, want 1 (%+v)", rep.Recovered, rep)
	}
	if rep.TmpCleaned != 1 {
		t.Fatalf("tmp cleaned = %d, want 1 (%+v)", rep.TmpCleaned, rep)
	}
	if got, tag, ok := s2.Get("good", ""); !ok || tag != goodTag || !snapsEqual(goodSnap, got) {
		t.Fatal("good entry lost")
	}
	if got, tag, ok := s2.Get("orphan", "v"); !ok || tag != orphanTag || !snapsEqual(orphanSnap, got) {
		t.Fatal("orphan not adopted")
	}
	if _, _, ok := s2.Get("bad", ""); ok {
		t.Fatal("corrupt entry served after fsck")
	}
	st := s2.Stats()
	if st.FsckQuarantined != 1 || st.FsckRecovered != 1 {
		t.Fatalf("fsck counters: %+v", st)
	}
}

func TestFsckRebuildsFromBlobsAlone(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("img%d", i)
		tag, err := s.Put(k, "", testSnap(i + 3))
		if err != nil {
			t.Fatal(err)
		}
		want[k] = tag
	}
	s.Close()

	// Destroy both index files: checkpoint garbage, journal gone.
	os.WriteFile(filepath.Join(dir, checkpointName), []byte("not json at all"), 0o644)
	os.Remove(filepath.Join(dir, journalName))

	s2, rep, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if !rep.CheckpointDamaged {
		t.Fatalf("checkpoint damage not reported: %+v", rep)
	}
	if rep.Recovered != len(want) {
		t.Fatalf("recovered %d of %d entries: %+v", rep.Recovered, len(want), rep)
	}
	for k, tag := range want {
		if gotTag, ok := s2.ETag(k, ""); !ok || gotTag != tag {
			t.Fatalf("entry %s not rebuilt (tag %q ok=%v)", k, gotTag, ok)
		}
	}
}

func TestStoreDegradesOnENOSPCAndReprobes(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(Config{Dir: dir, ReprobeInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	in := faultinject.New(faultinject.Config{
		Seed:     1,
		Rates:    map[faultinject.Point]float64{faultinject.CacheENOSPC: 1},
		MaxFires: map[faultinject.Point]int64{faultinject.CacheENOSPC: 1},
	})
	restore := faultinject.Enable(in)
	defer restore()

	snap := testSnap(6)
	etag, err := s.Put("img1", "", snap)
	if err != nil {
		t.Fatalf("put under ENOSPC must not fail the caller: %v", err)
	}
	if !s.Degraded() {
		t.Fatal("store not degraded after ENOSPC")
	}
	// The entry is served from memory even though the disk refused it.
	got, gotTag, ok := s.Get("img1", "")
	if !ok || gotTag != etag || !snapsEqual(snap, got) {
		t.Fatal("memory read-through failed while degraded")
	}
	if _, err := os.Stat(filepath.Join(dir, blobsDirName, blobName("img1", ""))); !os.IsNotExist(err) {
		t.Fatal("blob written despite injected ENOSPC")
	}
	// Within the re-probe window further puts stay memory-only.
	if _, err := s.Put("img2", "", testSnap(4)); err != nil {
		t.Fatal(err)
	}
	if !s.Degraded() {
		t.Fatal("degraded flag cleared without a successful probe")
	}
	// After the interval the next put probes the (now healthy) disk and
	// restores durable mode.
	time.Sleep(60 * time.Millisecond)
	if _, err := s.Put("img3", "", testSnap(5)); err != nil {
		t.Fatal(err)
	}
	if s.Degraded() {
		t.Fatal("store still degraded after successful re-probe")
	}
	if _, err := os.Stat(filepath.Join(dir, blobsDirName, blobName("img3", ""))); err != nil {
		t.Fatalf("post-recovery blob missing: %v", err)
	}
}

func TestStoreTornWriteNeverServed(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	in := faultinject.New(faultinject.Config{
		Seed:     2,
		Rates:    map[faultinject.Point]float64{faultinject.CacheTornWrite: 1},
		MaxFires: map[faultinject.Point]int64{faultinject.CacheTornWrite: 1},
	})
	restore := faultinject.Enable(in)
	snap := testSnap(8)
	if _, err := s.Put("torn", "", snap); err != nil {
		t.Fatal(err)
	}
	restore()
	// The torn blob is on disk and indexed, but the CRC check on read
	// must refuse it.
	if _, _, ok := s.Get("torn", ""); ok {
		t.Fatal("torn blob was served")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt = %d, want 1", st.Corrupt)
	}
	s.Close()

	// And fsck on the next boot must not resurrect it either: the blob
	// was already quarantined by the read, so the index entry is dropped.
	s2, rep, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, _, ok := s2.Get("torn", ""); ok {
		t.Fatal("torn blob served after reopen")
	}
	_ = rep
}

// TestKillMidWriteFsckSoak is the dedicated crash soak: across several
// seeds, a store takes writes while torn writes and bit flips are
// injected, then the process "dies" (the store is abandoned without
// Close, journal mid-life), the directory is reopened, and every
// surviving read either misses or returns bytes that re-verify —
// corrupt entries are never served.
func TestKillMidWriteFsckSoak(t *testing.T) {
	for _, seed := range []int64{101, 202, 303} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			s, _, err := Open(Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			in := faultinject.New(faultinject.Config{
				Seed: seed,
				Rates: map[faultinject.Point]float64{
					faultinject.CacheTornWrite: 0.25,
					faultinject.CacheBitFlip:   0.25,
					faultinject.CacheWriteFail: 0.10,
				},
			})
			restore := faultinject.Enable(in)
			want := map[string]*core.MeshSnapshot{}
			for i := 0; i < 40; i++ {
				k := fmt.Sprintf("img%d", i)
				snap := testSnap(i%7 + 3)
				if _, err := s.Put(k, "", snap); err != nil {
					t.Fatalf("put %s: %v", k, err)
				}
				want[k] = snap
			}
			restore()
			// kill -9: no Close, journal and checkpoint left mid-life.
			// Simulate a torn journal tail too.
			if f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644); err == nil {
				f.WriteString(`{"op":"put","k":"half`)
				f.Close()
			}

			s2, rep, err := Open(Config{Dir: dir})
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			defer s2.Close()
			served := 0
			for k, snap := range want {
				got, _, ok := s2.Get(k, "")
				if !ok {
					continue // lost to injected corruption — allowed
				}
				served++
				if !snapsEqual(snap, got) {
					t.Fatalf("served wrong bytes for %s", k)
				}
			}
			t.Logf("seed %d: %d/%d survived, fsck %+v", seed, served, len(want), rep)
			if served == 0 {
				t.Fatal("soak lost every entry; fault rates are implausibly destructive")
			}
			// No corrupt blob may remain visible in blobs/.
			des, _ := os.ReadDir(filepath.Join(dir, blobsDirName))
			for _, de := range des {
				data, err := os.ReadFile(filepath.Join(dir, blobsDirName, de.Name()))
				if err != nil {
					t.Fatal(err)
				}
				if _, _, err := verifyBlobHeader(data); err != nil {
					t.Fatalf("unverified blob %s visible after fsck: %v", de.Name(), err)
				}
			}
		})
	}
}

func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the same key enough times to cross the compaction
	// threshold; the journal must restart instead of growing forever.
	for i := 0; i < journalCompactAfter+10; i++ {
		if _, err := s.Put("hot", "", testSnap(3)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d, want 1", s.Len())
	}
	if data, err := os.ReadFile(filepath.Join(dir, journalName)); err == nil {
		if n := strings.Count(string(data), "\n"); n >= journalCompactAfter {
			t.Fatalf("journal has %d lines after compaction threshold", n)
		}
	}
	s.Close()
	s2, rep, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !rep.CheckpointUsed || s2.Len() != 1 {
		t.Fatalf("reopen after compaction: len=%d rep=%+v", s2.Len(), rep)
	}
}

func TestSidecarRoundTrip(t *testing.T) {
	s, _, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, ok := s.ReadSidecar("priors.json"); ok {
		t.Fatal("missing sidecar read as present")
	}
	if err := s.WriteSidecar("priors.json", []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	data, ok := s.ReadSidecar("priors.json")
	if !ok || !bytes.Equal(data, []byte(`{"a":1}`)) {
		t.Fatalf("sidecar round trip: %q %v", data, ok)
	}
	if err := s.WriteSidecar("../escape", nil); err == nil {
		t.Fatal("path-traversal sidecar name accepted")
	}
}

func TestKeysMRUOrder(t *testing.T) {
	s, _, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, k := range []string{"a", "b", "c"} {
		if _, err := s.Put(k, "", testSnap(3)); err != nil {
			t.Fatal(err)
		}
	}
	s.Get("a", "") // refresh a
	keys := s.KeysMRU()
	if len(keys) != 3 || keys[0].ImageKey != "a" || keys[1].ImageKey != "c" || keys[2].ImageKey != "b" {
		t.Fatalf("MRU order wrong: %+v", keys)
	}
}
