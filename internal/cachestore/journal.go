package cachestore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// The index is persisted in two cooperating files:
//
//   - journal: append-only, one CRC32-guarded record per mutation
//     (put/del). A crash mid-append leaves a torn final line; replay
//     stops there and the surviving prefix is still a valid history.
//   - checkpoint: a full index image (entries in LRU order, oldest
//     first), written atomically whenever the journal grows past
//     journalCompactAfter records, after which the journal restarts
//     empty. Boot = load checkpoint + replay journal on top.
//
// Neither file is trusted: blobs carry their own self-describing
// header and CRC, so when both index files are damaged the index is
// rebuilt from the blobs alone (see fsck.go).

const (
	journalName    = "journal"
	checkpointName = "index.ckpt"
	blobsDirName   = "blobs"
	quarantineName = "quarantine"

	// journalCompactAfter bounds journal growth between checkpoints.
	journalCompactAfter = 512
)

// journalRec is one index mutation.
type journalRec struct {
	Op        string `json:"op"` // "put" or "del"
	ImageKey  string `json:"k"`
	Variant   string `json:"v,omitempty"`
	File      string `json:"f,omitempty"`
	Bytes     int64  `json:"b,omitempty"`
	ETag      string `json:"e,omitempty"`
	CreatedNS int64  `json:"t,omitempty"`
}

// encodeJournalLine frames a record as `<json> <crc32-hex>\n`; the CRC
// covers the JSON bytes, so a torn or bit-flipped line is detected at
// replay.
func encodeJournalLine(rec journalRec) ([]byte, error) {
	j, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	line := fmt.Sprintf("%s %08x\n", j, crc32.ChecksumIEEE(j))
	return []byte(line), nil
}

// decodeJournalLine parses and verifies one journal line.
func decodeJournalLine(line string) (journalRec, error) {
	var rec journalRec
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		return rec, fmt.Errorf("cachestore: journal line has no checksum")
	}
	payload, sum := line[:i], strings.TrimSpace(line[i+1:])
	want, err := strconv.ParseUint(sum, 16, 32)
	if err != nil {
		return rec, fmt.Errorf("cachestore: bad journal checksum %q", sum)
	}
	if crc32.ChecksumIEEE([]byte(payload)) != uint32(want) {
		return rec, fmt.Errorf("cachestore: journal line checksum mismatch")
	}
	if err := json.Unmarshal([]byte(payload), &rec); err != nil {
		return rec, fmt.Errorf("cachestore: decoding journal record: %w", err)
	}
	if rec.Op != "put" && rec.Op != "del" {
		return rec, fmt.Errorf("cachestore: unknown journal op %q", rec.Op)
	}
	return rec, nil
}

// replayJournal reads every valid record from the journal, stopping at
// the first damaged line (a torn append from a crash). It returns the
// valid records, how many trailing lines were discarded, and whether
// the journal file was present at all.
func replayJournal(path string) (recs []journalRec, torn int, present bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, true, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lines := 0
	for sc.Scan() {
		lines++
		rec, derr := decodeJournalLine(sc.Text())
		if derr != nil {
			// Everything from the first bad line on is untrusted: a torn
			// tail can only be at the end of an append-only file, and a
			// bad line in the middle means later appends raced a corrupt
			// region — either way replay must stop.
			torn = 1
			for sc.Scan() {
				torn++
			}
			return recs, torn, true, nil
		}
		recs = append(recs, rec)
	}
	if serr := sc.Err(); serr != nil {
		return recs, torn, true, nil // unreadable tail behaves like a torn one
	}
	_ = lines
	return recs, torn, true, nil
}

// checkpointDoc is the serialized checkpoint: every live entry in LRU
// order (oldest first), so recency survives a restart.
type checkpointDoc struct {
	Version int           `json:"version"`
	Entries []journalRec  `json:"entries"`
}

// writeCheckpoint atomically replaces the checkpoint: temp file, fsync,
// rename — the same discipline as blob writes, so a crash leaves either
// the old checkpoint or the new one, never a hybrid.
func writeCheckpoint(dir string, entries []journalRec) error {
	doc := checkpointDoc{Version: 1, Entries: entries}
	data, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	return atomicWriteFile(filepath.Join(dir, checkpointName), data)
}

// loadCheckpoint reads the checkpoint; ok reports whether a usable one
// was found (a missing file is not damage, a malformed one is).
func loadCheckpoint(dir string) (entries []journalRec, present, ok bool) {
	data, err := os.ReadFile(filepath.Join(dir, checkpointName))
	if os.IsNotExist(err) {
		return nil, false, false
	}
	if err != nil {
		return nil, true, false
	}
	var doc checkpointDoc
	if err := json.Unmarshal(data, &doc); err != nil || doc.Version != 1 {
		return nil, true, false
	}
	for _, rec := range doc.Entries {
		if rec.Op != "put" || rec.ImageKey == "" || rec.File == "" {
			return nil, true, false
		}
	}
	return doc.Entries, true, true
}

// atomicWriteFile writes data to path via temp file + fsync + rename,
// then fsyncs the parent directory so the rename itself is durable.
func atomicWriteFile(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash;
// best-effort (some filesystems reject directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
