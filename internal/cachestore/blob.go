// Package cachestore is a crash-safe, disk-backed, content-addressed
// store of encoded core.MeshSnapshot blobs keyed by (image hash,
// quality variant). It is the persistence layer behind the serving
// layer's result cache: identical requests are answered from disk
// across restarts instead of re-meshing.
//
// Crash safety is the design center, not an afterthought:
//
//   - every blob is written via temp file + fsync + atomic rename, and
//     framed with a magic/version header and a CRC64 trailer, so a torn
//     write is detectable and a half-written temp file is never visible
//     under a final name;
//   - the index is an append-only journal of CRC-guarded records with a
//     compacting checkpoint; a torn journal tail truncates cleanly;
//   - Open runs an fsck pass: every indexed blob is re-verified, corrupt
//     or mislabeled blobs are moved to quarantine/ (counted, never
//     served), orphan blobs that verify are adopted back into the index,
//     and when the journal and checkpoint are both damaged the index is
//     rebuilt from the surviving blobs alone;
//   - every read re-verifies the CRC before a byte is returned, so even
//     corruption that happens at rest after fsck cannot be served;
//   - a failing disk degrades, it does not fail requests: ENOSPC/EIO on
//     write flips the store to memory-only read-through with a periodic
//     durable re-probe.
package cachestore

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc64"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/img"
)

// blobMagic identifies a cachestore blob and its format version. A
// future format change bumps the trailing digits; fsck quarantines
// unknown versions rather than guessing.
const blobMagic = "PI2MCS01"

// crcTable is the CRC64 polynomial every blob trailer and ETag uses.
var crcTable = crc64.MakeTable(crc64.ECMA)

// blobMeta is the self-describing header carried inside every blob, so
// the index can be rebuilt from the blobs alone: fsck reads the header
// back and re-derives the (image key, variant) identity without any
// surviving journal.
type blobMeta struct {
	ImageKey  string          `json:"image_key"`
	Variant   string          `json:"variant,omitempty"`
	CreatedNS int64           `json:"created_unix_nano"`
	Summary   core.RunSummary `json:"summary"`
}

// encodeBlob frames a snapshot for disk:
//
//	magic[8] | u32 metaLen | metaJSON | u64 nVerts | u64 nCells |
//	u8 hasLabels | verts (3×f64 each) | cells (4×u32 each) |
//	labels (1 byte each, if present) | u64 CRC64(everything above)
//
// All integers are little-endian. The returned etag is the hex CRC64 —
// the same checksum the trailer carries — so conditional GETs can be
// answered from the index without touching the blob.
func encodeBlob(meta blobMeta, snap *core.MeshSnapshot) (data []byte, etag string, err error) {
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return nil, "", fmt.Errorf("cachestore: encoding blob meta: %w", err)
	}
	if snap.Labels != nil && len(snap.Labels) != len(snap.Cells) {
		return nil, "", fmt.Errorf("cachestore: %d labels for %d cells", len(snap.Labels), len(snap.Cells))
	}
	size := len(blobMagic) + 4 + len(metaJSON) + 8 + 8 + 1 +
		24*len(snap.Verts) + 16*len(snap.Cells) + len(snap.Labels) + 8
	buf := bytes.NewBuffer(make([]byte, 0, size))
	buf.WriteString(blobMagic)
	var u32 [4]byte
	var u64 [8]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(metaJSON)))
	buf.Write(u32[:])
	buf.Write(metaJSON)
	binary.LittleEndian.PutUint64(u64[:], uint64(len(snap.Verts)))
	buf.Write(u64[:])
	binary.LittleEndian.PutUint64(u64[:], uint64(len(snap.Cells)))
	buf.Write(u64[:])
	if snap.Labels != nil {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
	for _, v := range snap.Verts {
		binary.LittleEndian.PutUint64(u64[:], math.Float64bits(v.X))
		buf.Write(u64[:])
		binary.LittleEndian.PutUint64(u64[:], math.Float64bits(v.Y))
		buf.Write(u64[:])
		binary.LittleEndian.PutUint64(u64[:], math.Float64bits(v.Z))
		buf.Write(u64[:])
	}
	for _, c := range snap.Cells {
		for j := 0; j < 4; j++ {
			binary.LittleEndian.PutUint32(u32[:], uint32(c[j]))
			buf.Write(u32[:])
		}
	}
	for _, l := range snap.Labels {
		buf.WriteByte(byte(l))
	}
	crc := crc64.Checksum(buf.Bytes(), crcTable)
	binary.LittleEndian.PutUint64(u64[:], crc)
	buf.Write(u64[:])
	return buf.Bytes(), fmt.Sprintf("%016x", crc), nil
}

// decodeBlob verifies and decodes a framed blob. The CRC is checked
// before anything else is trusted, and the declared vertex/cell counts
// are bounds-checked against the actual payload length before any
// allocation, so a corrupt or hostile file cannot trigger a giant
// allocation or an out-of-range read.
func decodeBlob(data []byte) (blobMeta, *core.MeshSnapshot, string, error) {
	var meta blobMeta
	if len(data) < len(blobMagic)+4+8+8+1+8 {
		return meta, nil, "", fmt.Errorf("cachestore: blob too short (%d bytes)", len(data))
	}
	if string(data[:len(blobMagic)]) != blobMagic {
		return meta, nil, "", fmt.Errorf("cachestore: bad magic %q", data[:len(blobMagic)])
	}
	body, trailer := data[:len(data)-8], data[len(data)-8:]
	crc := crc64.Checksum(body, crcTable)
	if got := binary.LittleEndian.Uint64(trailer); got != crc {
		return meta, nil, "", fmt.Errorf("cachestore: CRC mismatch (stored %016x, computed %016x)", got, crc)
	}
	etag := fmt.Sprintf("%016x", crc)
	p := body[len(blobMagic):]
	metaLen := binary.LittleEndian.Uint32(p[:4])
	p = p[4:]
	if uint64(metaLen) > uint64(len(p)) {
		return meta, nil, "", fmt.Errorf("cachestore: meta length %d exceeds blob", metaLen)
	}
	if err := json.Unmarshal(p[:metaLen], &meta); err != nil {
		return meta, nil, "", fmt.Errorf("cachestore: decoding blob meta: %w", err)
	}
	p = p[metaLen:]
	if len(p) < 17 {
		return meta, nil, "", fmt.Errorf("cachestore: truncated geometry header")
	}
	nVerts := binary.LittleEndian.Uint64(p[:8])
	nCells := binary.LittleEndian.Uint64(p[8:16])
	hasLabels := p[16] == 1
	p = p[17:]
	want := 24 * nVerts
	cellsAt := want
	want += 16 * nCells
	labelsAt := want
	if hasLabels {
		want += nCells
	}
	if uint64(len(p)) != want {
		return meta, nil, "", fmt.Errorf("cachestore: payload is %d bytes, header declares %d", len(p), want)
	}
	snap := &core.MeshSnapshot{
		Summary: meta.Summary,
		Verts:   make([]geom.Vec3, nVerts),
		Cells:   make([][4]int32, nCells),
	}
	for i := range snap.Verts {
		off := 24 * i
		snap.Verts[i] = geom.Vec3{
			X: math.Float64frombits(binary.LittleEndian.Uint64(p[off:])),
			Y: math.Float64frombits(binary.LittleEndian.Uint64(p[off+8:])),
			Z: math.Float64frombits(binary.LittleEndian.Uint64(p[off+16:])),
		}
	}
	for i := range snap.Cells {
		off := int(cellsAt) + 16*i
		for j := 0; j < 4; j++ {
			idx := int32(binary.LittleEndian.Uint32(p[off+4*j:]))
			// A CRC-valid blob written by us always indexes in range; a
			// hand-crafted one must not crash a reader downstream.
			if idx < 0 || uint64(idx) >= nVerts {
				return meta, nil, "", fmt.Errorf("cachestore: cell %d references vertex %d of %d", i, idx, nVerts)
			}
			snap.Cells[i][j] = idx
		}
	}
	if hasLabels {
		snap.Labels = make([]img.Label, nCells)
		for i := range snap.Labels {
			snap.Labels[i] = img.Label(p[int(labelsAt)+i])
		}
	}
	return meta, snap, etag, nil
}
