package cachestore

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FsckReport summarizes what the boot-time verification pass found and
// repaired.
type FsckReport struct {
	// CheckpointUsed is true when a valid checkpoint seeded the index.
	CheckpointUsed bool `json:"checkpoint_used"`
	// CheckpointDamaged is true when a checkpoint existed but failed to
	// parse — the index was then reconstructed from journal + blobs.
	CheckpointDamaged bool `json:"checkpoint_damaged,omitempty"`
	// JournalRecords is how many valid journal records replayed.
	JournalRecords int `json:"journal_records"`
	// JournalTornLines is how many trailing journal lines were discarded
	// after the first damaged one (a crash mid-append).
	JournalTornLines int `json:"journal_torn_lines,omitempty"`
	// Verified is how many indexed blobs re-verified clean.
	Verified int `json:"verified"`
	// Recovered is how many verified blobs were adopted that the index
	// did not know about (orphans from a crash after rename but before
	// the journal append, or survivors of a destroyed index).
	Recovered int `json:"recovered,omitempty"`
	// Quarantined is how many blobs failed verification and were moved
	// to quarantine/.
	Quarantined int `json:"quarantined,omitempty"`
	// Dropped is how many index entries pointed at missing blobs.
	Dropped int `json:"dropped,omitempty"`
	// TmpCleaned is how many abandoned *.tmp files were removed.
	TmpCleaned int `json:"tmp_cleaned,omitempty"`
}

func (r FsckReport) String() string {
	return fmt.Sprintf("fsck: %d verified, %d recovered, %d quarantined, %d dropped, %d tmp cleaned (checkpoint used=%v damaged=%v, journal %d records, %d torn lines)",
		r.Verified, r.Recovered, r.Quarantined, r.Dropped, r.TmpCleaned,
		r.CheckpointUsed, r.CheckpointDamaged, r.JournalRecords, r.JournalTornLines)
}

// verifyBlobHeader checks a blob's frame (length, magic, CRC, declared
// geometry sizes) and returns its self-described identity without
// materializing the snapshot — fsck wants the verdict, not the mesh.
func verifyBlobHeader(data []byte) (blobMeta, string, error) {
	var meta blobMeta
	if len(data) < len(blobMagic)+4+8+8+1+8 {
		return meta, "", fmt.Errorf("cachestore: blob too short (%d bytes)", len(data))
	}
	if string(data[:len(blobMagic)]) != blobMagic {
		return meta, "", fmt.Errorf("cachestore: bad magic %q", data[:len(blobMagic)])
	}
	body, trailer := data[:len(data)-8], data[len(data)-8:]
	crc := crc64.Checksum(body, crcTable)
	if got := binary.LittleEndian.Uint64(trailer); got != crc {
		return meta, "", fmt.Errorf("cachestore: CRC mismatch (stored %016x, computed %016x)", got, crc)
	}
	p := body[len(blobMagic):]
	metaLen := binary.LittleEndian.Uint32(p[:4])
	if uint64(metaLen) > uint64(len(p)-4) {
		return meta, "", fmt.Errorf("cachestore: meta length %d exceeds blob", metaLen)
	}
	if err := json.Unmarshal(p[4:4+metaLen], &meta); err != nil {
		return meta, "", fmt.Errorf("cachestore: decoding blob meta: %w", err)
	}
	p = p[4+metaLen:]
	if len(p) < 17 {
		return meta, "", fmt.Errorf("cachestore: truncated geometry header")
	}
	nVerts := binary.LittleEndian.Uint64(p[:8])
	nCells := binary.LittleEndian.Uint64(p[8:16])
	want := 24*nVerts + 16*nCells
	if p[16] == 1 {
		want += nCells
	}
	if uint64(len(p)-17) != want {
		return meta, "", fmt.Errorf("cachestore: payload is %d bytes, header declares %d", len(p)-17, want)
	}
	if meta.ImageKey == "" {
		return meta, "", fmt.Errorf("cachestore: blob meta has no image key")
	}
	return meta, fmt.Sprintf("%016x", crc), nil
}

// fsck reconciles the index with the blobs on disk. It runs inside
// Open, before the store is shared, so no locking is needed. The ladder:
//
//  1. seed the index from the checkpoint (if one parses);
//  2. replay the journal on top, truncating at a torn tail;
//  3. scan blobs/: verify every indexed blob (quarantine failures),
//     adopt verified orphans (which is also how the index is rebuilt
//     when checkpoint and journal are both gone or damaged), drop index
//     entries whose blob is missing, and delete abandoned *.tmp files.
//
// Blobs are the ground truth: the index never overrules a blob's
// self-described identity, and a blob that fails its own CRC is
// quarantined no matter what the index claims.
func (s *Store) fsck() (FsckReport, error) {
	var rep FsckReport

	type idxEnt struct {
		rec journalRec
		seq int // replay order; higher = more recent
	}
	index := make(map[string]idxEnt)
	seq := 0

	ckRecs, ckPresent, ckOK := loadCheckpoint(s.cfg.Dir)
	if ckOK {
		rep.CheckpointUsed = true
		for _, rec := range ckRecs {
			index[entryKey(rec.ImageKey, rec.Variant)] = idxEnt{rec, seq}
			seq++
		}
	} else if ckPresent {
		rep.CheckpointDamaged = true
		// Quarantine the damaged checkpoint for post-mortem; the blob
		// scan below rebuilds the index without it.
		ckPath := filepath.Join(s.cfg.Dir, checkpointName)
		os.Rename(ckPath, filepath.Join(s.cfg.Dir, quarantineName, checkpointName))
	}

	jRecs, torn, _, jErr := replayJournal(filepath.Join(s.cfg.Dir, journalName))
	rep.JournalTornLines = torn
	if jErr == nil {
		rep.JournalRecords = len(jRecs)
		for _, rec := range jRecs {
			k := entryKey(rec.ImageKey, rec.Variant)
			switch rec.Op {
			case "put":
				index[k] = idxEnt{rec, seq}
				seq++
			case "del":
				delete(index, k)
			}
		}
	}

	blobsDir := filepath.Join(s.cfg.Dir, blobsDirName)
	names, err := os.ReadDir(blobsDir)
	if err != nil {
		return rep, fmt.Errorf("cachestore: reading %s: %w", blobsDir, err)
	}
	onDisk := make(map[string]bool, len(names))
	type adopted struct {
		rec journalRec
		seq int
	}
	var live []adopted
	for _, de := range names {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(blobsDir, name))
			rep.TmpCleaned++
			continue
		}
		path := filepath.Join(blobsDir, name)
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			s.quarantineBlob(name)
			rep.Quarantined++
			continue
		}
		meta, etag, verr := verifyBlobHeader(data)
		if verr == nil && blobName(meta.ImageKey, meta.Variant) != name {
			verr = fmt.Errorf("cachestore: blob %s self-describes as %s", name, blobName(meta.ImageKey, meta.Variant))
		}
		if verr != nil {
			s.quarantineBlob(name)
			rep.Quarantined++
			continue
		}
		onDisk[name] = true
		k := entryKey(meta.ImageKey, meta.Variant)
		ent, indexed := index[k]
		rec := journalRec{
			Op: "put", ImageKey: meta.ImageKey, Variant: meta.Variant,
			File: name, Bytes: int64(len(data)), ETag: etag, CreatedNS: meta.CreatedNS,
		}
		if indexed && ent.rec.File == name {
			rep.Verified++
			live = append(live, adopted{rec, ent.seq})
		} else {
			// Orphan: the blob landed but its journal record did not (a
			// crash between rename and append), or the index was lost.
			rep.Recovered++
			live = append(live, adopted{rec, seq})
			seq++
		}
	}
	for k, ent := range index {
		if !onDisk[ent.rec.File] {
			rep.Dropped++
			delete(index, k)
		}
	}

	// Materialize the in-memory index, oldest replay order first so the
	// LRU front ends up holding the most recently written entries.
	sort.Slice(live, func(i, j int) bool { return live[i].seq < live[j].seq })
	for _, a := range live {
		rec := a.rec
		e := &entry{
			imageKey:  rec.ImageKey,
			variant:   rec.Variant,
			file:      rec.File,
			bytes:     rec.Bytes,
			etag:      rec.ETag,
			createdNS: rec.CreatedNS,
		}
		e.elem = s.lru.PushFront(e)
		s.entries[entryKey(rec.ImageKey, rec.Variant)] = e
		s.totalBytes += rec.Bytes
	}
	s.evictLockedBoot()
	return rep, nil
}

// evictLockedBoot trims the recovered index to budget before serving
// begins (a restart with a smaller -cache-max-bytes must converge
// immediately). Runs inside Open, before the store is shared.
func (s *Store) evictLockedBoot() {
	for s.totalBytes > s.cfg.MaxBytes && s.lru.Len() > 0 {
		el := s.lru.Back()
		e := el.Value.(*entry)
		delete(s.entries, entryKey(e.imageKey, e.variant))
		s.lru.Remove(el)
		s.totalBytes -= e.bytes
		os.Remove(filepath.Join(s.cfg.Dir, blobsDirName, e.file))
		s.evictions.Add(1)
	}
}
