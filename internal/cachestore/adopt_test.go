package cachestore

import (
	"os"
	"path/filepath"
	"testing"
)

// copyBlob copies one blob file between two store directories.
func copyBlob(t *testing.T, srcDir, dstDir, name string) {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(srcDir, blobsDirName, name))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dstDir, blobsDirName, name), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestLookupAdoptsForeignBlob: a blob written by a peer sharing the
// cache directory after this store's boot fsck — so absent from the
// index — is found on disk by Lookup, verified, adopted into the index,
// and served; this is what lets a replica answer a dead peer's keys.
func TestLookupAdoptsForeignBlob(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	a, _, err := Open(Config{Dir: dirA})
	if err != nil {
		t.Fatal(err)
	}
	snap := testSnap(9)
	wantTag, err := a.Put("imgX", "d=2.5", snap)
	if err != nil {
		t.Fatal(err)
	}
	a.Close()

	b, _, err := Open(Config{Dir: dirB})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Contains("imgX", "d=2.5") {
		t.Fatal("fresh store claims to contain the foreign key")
	}
	if _, _, ok := b.Lookup("imgX", "d=2.5"); ok {
		t.Fatal("Lookup hit before the blob exists on disk")
	}

	copyBlob(t, dirA, dirB, blobName("imgX", "d=2.5"))

	// Exists sees the un-indexed blob; Lookup adopts and serves it.
	if !b.Exists("imgX", "d=2.5") {
		t.Fatal("Exists missed the on-disk blob")
	}
	got, tag, ok := b.Lookup("imgX", "d=2.5")
	if !ok {
		t.Fatal("Lookup missed the on-disk blob")
	}
	if tag != wantTag {
		t.Fatalf("adopted etag %q, want %q", tag, wantTag)
	}
	if !snapsEqual(got, snap) {
		t.Fatal("adopted snapshot differs from the written one")
	}
	st := b.Stats()
	if st.Adopted != 1 {
		t.Fatalf("adopted = %d, want 1", st.Adopted)
	}
	if st.Entries != 1 {
		t.Fatalf("entries = %d after adoption, want 1 (blob not indexed)", st.Entries)
	}
	// Adopted means indexed: the next read is a plain hit, no re-adoption.
	if !b.Contains("imgX", "d=2.5") {
		t.Fatal("adoption did not index the entry")
	}
	if _, _, ok := b.Get("imgX", "d=2.5"); !ok {
		t.Fatal("Get misses the adopted entry")
	}
	if _, _, ok := b.Lookup("imgX", "d=2.5"); !ok {
		t.Fatal("repeat Lookup missed")
	}
	if st := b.Stats(); st.Adopted != 1 {
		t.Fatalf("repeat read re-adopted (adopted = %d, want 1)", st.Adopted)
	}

	// The adoption survives a restart via the journal.
	b.Close()
	b2, _, err := Open(Config{Dir: dirB})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if !b2.Contains("imgX", "d=2.5") {
		t.Fatal("adopted entry lost across restart")
	}
}

// TestLookupQuarantinesCorruptForeignBlob: garbage at the key's
// deterministic blob path is quarantined, not served and not adopted.
func TestLookupQuarantinesCorruptForeignBlob(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	name := blobName("imgY", "")
	if err := os.WriteFile(filepath.Join(dir, blobsDirName, name), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Lookup("imgY", ""); ok {
		t.Fatal("Lookup served a corrupt blob")
	}
	st := s.Stats()
	if st.Corrupt != 1 || st.Adopted != 0 {
		t.Fatalf("corrupt=%d adopted=%d, want 1/0", st.Corrupt, st.Adopted)
	}
	if _, err := os.Stat(filepath.Join(dir, blobsDirName, name)); !os.IsNotExist(err) {
		t.Fatal("corrupt blob still in blobs/")
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineName, name)); err != nil {
		t.Fatalf("corrupt blob not quarantined: %v", err)
	}
}

// TestLookupRejectsMisplacedBlob: a valid blob sitting at the wrong
// key's path (a rename, a collision, an attack) decodes fine but its
// embedded identity disagrees — it must be quarantined, never served
// under the wrong key.
func TestLookupRejectsMisplacedBlob(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	a, _, err := Open(Config{Dir: dirA})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Put("imgReal", "", testSnap(5)); err != nil {
		t.Fatal(err)
	}
	a.Close()

	b, _, err := Open(Config{Dir: dirB})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// Plant imgReal's bytes at imgOther's deterministic path.
	data, err := os.ReadFile(filepath.Join(dirA, blobsDirName, blobName("imgReal", "")))
	if err != nil {
		t.Fatal(err)
	}
	misplaced := blobName("imgOther", "")
	if err := os.WriteFile(filepath.Join(dirB, blobsDirName, misplaced), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := b.Lookup("imgOther", ""); ok {
		t.Fatal("Lookup served a blob whose embedded identity disagrees with the key")
	}
	if st := b.Stats(); st.Corrupt != 1 || st.Adopted != 0 {
		t.Fatalf("corrupt=%d adopted=%d, want 1/0", st.Corrupt, st.Adopted)
	}
	if _, err := os.Stat(filepath.Join(dirB, quarantineName, misplaced)); err != nil {
		t.Fatalf("misplaced blob not quarantined: %v", err)
	}
}

// TestExistsSeesOnlyRealBlobs: Exists is the cheap probe — index first,
// then a stat, never a decode.
func TestExistsSeesOnlyRealBlobs(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Exists("nope", "") {
		t.Fatal("Exists true on an empty store")
	}
	if s.Exists("", "") {
		t.Fatal("Exists true for the empty key")
	}
	if _, err := s.Put("here", "", testSnap(4)); err != nil {
		t.Fatal(err)
	}
	if !s.Exists("here", "") {
		t.Fatal("Exists false for an indexed entry")
	}
	if s.Exists("here", "other-variant") {
		t.Fatal("Exists bled across variants")
	}
}
