// Package edt computes the exact Euclidean distance transform and
// feature transform of a segmented image's surface voxels, in
// parallel.
//
// PI2M needs, for an arbitrary query point p, the surface voxel
// closest to p (paper Section 3: the EDT "returns the surface voxel q
// which is closest to p"); the refiner then marches the ray pq to find
// the exact isosurface point. The paper uses the parallel Maurer
// filter of Staubs et al. [56]; this implementation uses the same
// dimension-by-dimension exact decomposition (lower envelopes of
// parabolas per scan line, Felzenszwalb-Huttenlocher form of the
// Maurer recurrence), parallelized across scan lines, which produces
// the identical exact transform and likewise scales linearly with the
// number of workers.
package edt

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/img"
)

// Transform holds the exact feature transform of an image: for every
// voxel, the linear index of the nearest surface voxel (in world
// metric, honoring anisotropic spacing) and the distance to it.
type Transform struct {
	im      *img.Image
	feature []int32   // linear index of nearest surface voxel, -1 if none
	dist    []float32 // world-space distance to that voxel's center
}

// Compute builds the feature transform of im's surface voxels using
// the given number of parallel workers (0 means GOMAXPROCS).
func Compute(im *img.Image, workers int) *Transform {
	return new(Computer).Compute(im, workers)
}

// Computer owns the large working buffers of the transform so that
// repeated Computes on same-sized images reuse them instead of
// reallocating (the warm path of a run session). The zero value is
// ready to use.
//
// Each call to Compute recycles the buffers backing the Transform the
// previous call on the same Computer returned, invalidating it; the
// caller owns that lifecycle (a Session only ever keeps the latest).
type Computer struct {
	d2   []float64
	feat []int32
	dist []float32
}

// grow returns s resliced to length n, reallocating only when the
// capacity is insufficient.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Compute builds the feature transform of im's surface voxels, reusing
// c's buffers (0 workers means GOMAXPROCS).
func (c *Computer) Compute(im *img.Image, workers int) *Transform {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nx, ny, nz := im.NX, im.NY, im.NZ
	n := nx * ny * nz

	// d2 holds running squared distance; feat the current best feature.
	c.d2 = grow(c.d2, n)
	c.feat = grow(c.feat, n)
	d2, feat := c.d2, c.feat
	for i := range d2 {
		d2[i] = math.Inf(1)
		feat[i] = -1
	}
	for _, idx := range im.SurfaceVoxels() {
		d2[idx] = 0
		feat[idx] = int32(idx)
	}

	// Pass 1: along X (stride 1), rows indexed by (j,k).
	sx, sy, sz := im.Spacing.X, im.Spacing.Y, im.Spacing.Z
	parallelFor(ny*nz, workers, func(row int, sc *lineScratch) {
		base := row * nx
		envelopeScan(nx, sx, base, 1, d2, feat, sc)
	})
	// Pass 2: along Y (stride nx), rows indexed by (i,k).
	parallelFor(nx*nz, workers, func(row int, sc *lineScratch) {
		i := row % nx
		k := row / nx
		base := k*nx*ny + i
		envelopeScan(ny, sy, base, nx, d2, feat, sc)
	})
	// Pass 3: along Z (stride nx*ny), rows indexed by (i,j).
	parallelFor(nx*ny, workers, func(row int, sc *lineScratch) {
		envelopeScan(nz, sz, row, nx*ny, d2, feat, sc)
	})

	c.dist = grow(c.dist, n)
	dist := c.dist
	for i := range dist {
		if feat[i] >= 0 {
			dist[i] = float32(math.Sqrt(d2[i]))
		} else {
			dist[i] = float32(math.Inf(1))
		}
	}
	return &Transform{im: im, feature: feat, dist: dist}
}

// lineScratch carries the per-scanline envelope buffers. One instance
// serves every row a goroutine processes (and is pooled across
// passes and Computes), replacing the four allocations the scan used
// to make per row.
type lineScratch struct {
	v   []int
	z   []float64
	f   []float64
	src []int32
}

var linePool = sync.Pool{New: func() any { return new(lineScratch) }}

func (sc *lineScratch) size(m int) {
	sc.v = grow(sc.v, m)
	sc.z = grow(sc.z, m+1)
	sc.f = grow(sc.f, m)
	sc.src = grow(sc.src, m)
}

// envelopeScan performs the exact 1D combination step along one scan
// line: out(x) = min_q ( (x-q)^2*s^2 + in(q) ), tracking the feature
// achieving the minimum. The line has length m, world step s, first
// element at `base` and consecutive elements `stride` apart in d2/feat.
func envelopeScan(m int, s float64, base, stride int, d2 []float64, feat []int32, sc *lineScratch) {
	// Lower envelope of parabolas (Felzenszwalb & Huttenlocher, exact
	// for the Maurer separable recurrence).
	sc.size(m)
	v := sc.v     // parabola sites
	z := sc.z     // envelope breakpoints
	f := sc.f
	src := sc.src
	for q := 0; q < m; q++ {
		f[q] = d2[base+q*stride]
		src[q] = feat[base+q*stride]
	}
	s2 := s * s

	k := 0
	v[0] = -1 // until the first finite parabola is seen
	z[0] = math.Inf(-1)
	z[1] = math.Inf(1)
	started := false
	for q := 0; q < m; q++ {
		if math.IsInf(f[q], 1) {
			continue
		}
		if !started {
			started = true
			k = 0
			v[0] = q
			z[0] = math.Inf(-1)
			z[1] = math.Inf(1)
			continue
		}
		var sIntersect float64
		for {
			p := v[k]
			// Intersection of parabolas rooted at p and q.
			sIntersect = (f[q] - f[p] + s2*float64(q*q-p*p)) / (2 * s2 * float64(q-p))
			if sIntersect > z[k] {
				break
			}
			k--
		}
		k++
		v[k] = q
		z[k] = sIntersect
		z[k+1] = math.Inf(1)
	}
	if !started {
		return // no finite input on this line
	}

	k = 0
	for x := 0; x < m; x++ {
		for z[k+1] < float64(x) {
			k++
		}
		q := v[k]
		dx := s * float64(x-q)
		d2[base+x*stride] = dx*dx + f[q]
		feat[base+x*stride] = src[q]
	}
}

// parallelFor runs fn(i, scratch) for i in [0, n) over `workers`
// goroutines; each goroutine draws one pooled scanline scratch for all
// its rows.
func parallelFor(n, workers int, fn func(int, *lineScratch)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		sc := linePool.Get().(*lineScratch)
		for i := 0; i < n; i++ {
			fn(i, sc)
		}
		linePool.Put(sc)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			// Injected straggler: one slice of one pass stalls, proving
			// the pass barrier tolerates wildly imbalanced slice times.
			faultinject.Sleep(faultinject.SlowEDT)
			sc := linePool.Get().(*lineScratch)
			for i := lo; i < hi; i++ {
				fn(i, sc)
			}
			linePool.Put(sc)
		}(lo, hi)
	}
	wg.Wait()
}

// NearestSurfaceVoxel returns the center of the surface voxel closest
// to world point p, and ok=false when the image has no surface voxels
// or p is outside the image.
func (t *Transform) NearestSurfaceVoxel(p geom.Vec3) (geom.Vec3, bool) {
	i, j, k := t.im.Voxel(p)
	if i < 0 || j < 0 || k < 0 || i >= t.im.NX || j >= t.im.NY || k >= t.im.NZ {
		return geom.Vec3{}, false
	}
	idx := (k*t.im.NY+j)*t.im.NX + i
	fidx := t.feature[idx]
	if fidx < 0 {
		return geom.Vec3{}, false
	}
	fi, fj, fk := t.im.Unindex(int(fidx))
	return t.im.VoxelCenter(fi, fj, fk), true
}

// DistanceToSurface returns the distance (world units) from the center
// of p's voxel to the nearest surface voxel center, +Inf when
// unavailable. The value is exact at voxel centers and accurate to
// within half a voxel diagonal elsewhere.
func (t *Transform) DistanceToSurface(p geom.Vec3) float64 {
	i, j, k := t.im.Voxel(p)
	if i < 0 || j < 0 || k < 0 || i >= t.im.NX || j >= t.im.NY || k >= t.im.NZ {
		return math.Inf(1)
	}
	idx := (k*t.im.NY+j)*t.im.NX + i
	fidx := t.feature[idx]
	if fidx < 0 {
		return math.Inf(1)
	}
	// Refine against the actual query point rather than the voxel
	// center: the stored feature is the nearest surface voxel of the
	// containing voxel's center, which is within one voxel diagonal of
	// the true nearest for any p in the voxel.
	fi, fj, fk := t.im.Unindex(int(fidx))
	return p.Dist(t.im.VoxelCenter(fi, fj, fk))
}
