package edt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/img"
)

// bruteNearest finds the nearest surface voxel center by exhaustive
// search (the reference the transform must match exactly at voxel
// centers).
func bruteNearest(im *img.Image, p geom.Vec3) (geom.Vec3, float64) {
	best := math.Inf(1)
	var bestC geom.Vec3
	for _, idx := range im.SurfaceVoxels() {
		i, j, k := im.Unindex(idx)
		c := im.VoxelCenter(i, j, k)
		if d := p.Dist(c); d < best {
			best = d
			bestC = c
		}
	}
	return bestC, best
}

func TestEDTMatchesBruteForce(t *testing.T) {
	im := img.SpherePhantom(16)
	tr := Compute(im, 1)
	for k := 0; k < im.NZ; k++ {
		for j := 0; j < im.NY; j++ {
			for i := 0; i < im.NX; i++ {
				p := im.VoxelCenter(i, j, k)
				_, wantD := bruteNearest(im, p)
				gotD := tr.DistanceToSurface(p)
				if math.Abs(gotD-wantD) > 1e-9 {
					t.Fatalf("voxel (%d,%d,%d): EDT dist %v, brute %v", i, j, k, gotD, wantD)
				}
			}
		}
	}
}

func TestEDTAnisotropicSpacing(t *testing.T) {
	scene := img.SphereScene(12)
	im := scene.Voxelize(12, 12, 12, geom.Vec3{X: 1, Y: 1, Z: 1})
	// Rebuild the same logical content with z-spacing 2.5: distances
	// must be computed in world units.
	aniso := img.New(12, 12, 12, geom.Vec3{X: 1, Y: 2, Z: 2.5})
	for k := 0; k < 12; k++ {
		for j := 0; j < 12; j++ {
			for i := 0; i < 12; i++ {
				aniso.Set(i, j, k, im.At(i, j, k))
			}
		}
	}
	tr := Compute(aniso, 2)
	rng := rand.New(rand.NewSource(5))
	for n := 0; n < 50; n++ {
		i, j, k := rng.Intn(12), rng.Intn(12), rng.Intn(12)
		p := aniso.VoxelCenter(i, j, k)
		_, wantD := bruteNearest(aniso, p)
		gotD := tr.DistanceToSurface(p)
		if math.Abs(gotD-wantD) > 1e-9 {
			t.Fatalf("anisotropic voxel (%d,%d,%d): EDT %v, brute %v", i, j, k, gotD, wantD)
		}
	}
}

func TestEDTParallelMatchesSerial(t *testing.T) {
	im := img.AbdominalPhantom(24, 24, 16)
	t1 := Compute(im, 1)
	t8 := Compute(im, 8)
	for idx := range t1.feature {
		if t1.dist[idx] != t8.dist[idx] {
			t.Fatalf("parallel/serial distance mismatch at %d: %v vs %v", idx, t1.dist[idx], t8.dist[idx])
		}
	}
}

func TestNearestSurfaceVoxelIsSurface(t *testing.T) {
	im := img.TorusPhantom(24)
	tr := Compute(im, 2)
	rng := rand.New(rand.NewSource(9))
	for n := 0; n < 200; n++ {
		p := geom.Vec3{X: rng.Float64() * 24, Y: rng.Float64() * 24, Z: rng.Float64() * 24}
		q, ok := tr.NearestSurfaceVoxel(p)
		if !ok {
			t.Fatal("no nearest surface voxel inside image")
		}
		i, j, k := im.Voxel(q)
		if !im.IsSurfaceVoxel(i, j, k) {
			t.Fatalf("feature voxel (%d,%d,%d) is not a surface voxel", i, j, k)
		}
	}
}

func TestNearestSurfaceVoxelOutsideImage(t *testing.T) {
	im := img.SpherePhantom(16)
	tr := Compute(im, 1)
	if _, ok := tr.NearestSurfaceVoxel(geom.Vec3{X: -3, Y: 5, Z: 5}); ok {
		t.Error("point outside image returned a feature")
	}
	if d := tr.DistanceToSurface(geom.Vec3{X: 100, Y: 100, Z: 100}); !math.IsInf(d, 1) {
		t.Errorf("distance outside image = %v, want +Inf", d)
	}
}

func TestEDTEmptyImage(t *testing.T) {
	im := img.New(8, 8, 8, geom.Vec3{X: 1, Y: 1, Z: 1})
	tr := Compute(im, 2)
	if _, ok := tr.NearestSurfaceVoxel(geom.Vec3{X: 4, Y: 4, Z: 4}); ok {
		t.Error("empty image returned a feature")
	}
	if d := tr.DistanceToSurface(geom.Vec3{X: 4, Y: 4, Z: 4}); !math.IsInf(d, 1) {
		t.Errorf("distance in empty image = %v, want +Inf", d)
	}
}

func TestEDTExactDistanceProperty(t *testing.T) {
	// Property: for random images, the EDT at every voxel center
	// equals the brute-force nearest surface voxel distance.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 5; trial++ {
		im := img.New(10, 9, 8, geom.Vec3{X: 1, Y: 1.3, Z: 0.7})
		for n := 0; n < 40; n++ {
			im.Set(rng.Intn(10), rng.Intn(9), rng.Intn(8), img.Label(1+rng.Intn(3)))
		}
		tr := Compute(im, 3)
		for k := 0; k < 8; k++ {
			for j := 0; j < 9; j++ {
				for i := 0; i < 10; i++ {
					p := im.VoxelCenter(i, j, k)
					_, want := bruteNearest(im, p)
					got := tr.DistanceToSurface(p)
					if math.IsInf(want, 1) != math.IsInf(got, 1) {
						t.Fatalf("inf mismatch at (%d,%d,%d)", i, j, k)
					}
					if !math.IsInf(want, 1) && math.Abs(got-want) > 1e-9 {
						t.Fatalf("trial %d voxel (%d,%d,%d): got %v want %v", trial, i, j, k, got, want)
					}
				}
			}
		}
	}
}

func BenchmarkEDT64(b *testing.B) {
	im := img.AbdominalPhantom(64, 64, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(im, 0)
	}
}
