package arena

import (
	"sync"
	"testing"
)

type entry struct {
	id  int64
	pad [2]int64
}

func TestAllocAndAt(t *testing.T) {
	a := New[entry]()
	al := a.NewAllocator()
	h := al.Alloc()
	if h == Nil {
		t.Fatal("Alloc returned the nil handle")
	}
	a.At(h).id = 42
	if got := a.At(h).id; got != 42 {
		t.Errorf("At(h).id = %d, want 42", got)
	}
}

func TestNilHandlePanics(t *testing.T) {
	a := New[entry]()
	defer func() {
		if recover() == nil {
			t.Error("At(Nil) did not panic")
		}
	}()
	a.At(Nil)
}

func TestHandlesAreDistinct(t *testing.T) {
	a := New[entry]()
	al := a.NewAllocator()
	const n = 3 * ChunkSize
	seen := make(map[Handle]bool, n)
	for i := 0; i < n; i++ {
		h := al.Alloc()
		if seen[h] {
			t.Fatalf("duplicate handle %d at iteration %d", h, i)
		}
		seen[h] = true
	}
}

func TestPointerStability(t *testing.T) {
	a := New[entry]()
	al := a.NewAllocator()
	h1 := al.Alloc()
	p1 := a.At(h1)
	p1.id = 7
	// Allocate enough to force many new chunks.
	for i := 0; i < 5*ChunkSize; i++ {
		al.Alloc()
	}
	if p1 != a.At(h1) {
		t.Error("pointer to early entry moved after growth")
	}
	if a.At(h1).id != 7 {
		t.Error("early entry value lost after growth")
	}
}

func TestConcurrentAllocators(t *testing.T) {
	a := New[entry]()
	const workers = 8
	const perWorker = 2 * ChunkSize
	handles := make([][]Handle, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			al := a.NewAllocator()
			hs := make([]Handle, perWorker)
			for i := range hs {
				h := al.Alloc()
				a.At(h).id = int64(w)<<32 | int64(i)
				hs[i] = h
			}
			handles[w] = hs
		}(w)
	}
	wg.Wait()
	seen := make(map[Handle]bool)
	for w, hs := range handles {
		for i, h := range hs {
			if seen[h] {
				t.Fatalf("handle %d allocated twice", h)
			}
			seen[h] = true
			if got := a.At(h).id; got != int64(w)<<32|int64(i) {
				t.Fatalf("worker %d entry %d corrupted: %d", w, i, got)
			}
		}
	}
}

func TestLen(t *testing.T) {
	a := New[entry]()
	if a.Len() != 1 {
		t.Errorf("fresh arena Len = %d, want 1 (reserved slot)", a.Len())
	}
	al := a.NewAllocator()
	for i := 0; i < 100; i++ {
		al.Alloc()
	}
	if a.Len() != 101 {
		t.Errorf("Len = %d, want 101", a.Len())
	}
}

func BenchmarkAlloc(b *testing.B) {
	a := New[entry]()
	al := a.NewAllocator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := al.Alloc()
		a.At(h).id = int64(i)
	}
}

func TestResetReusesChunks(t *testing.T) {
	a := New[entry]()
	al := a.NewAllocator()
	var first []Handle
	for i := 0; i < 2*ChunkSize; i++ {
		h := al.Alloc()
		a.At(h).id = int64(i)
		first = append(first, h)
	}
	a.Reset()
	al.Reset()
	if a.Len() != 1 {
		t.Fatalf("Len after reset = %d", a.Len())
	}
	// Reallocation hands out the same handle space; stale contents are
	// visible until the caller initializes them (the documented
	// contract: every field must be written on alloc).
	h := al.Alloc()
	if h != first[0] {
		t.Fatalf("first handle after reset = %d, want %d", h, first[0])
	}
	a.At(h).id = 42
	if a.At(h).id != 42 {
		t.Fatal("write after reuse lost")
	}
}

func TestResetRepeatedlyNoGrowth(t *testing.T) {
	a := New[entry]()
	al := a.NewAllocator()
	var chunksAfterFirst int
	for cycle := 0; cycle < 5; cycle++ {
		for i := 0; i < 3*ChunkSize; i++ {
			al.Alloc()
		}
		a.mu.Lock()
		n := int(a.numChunks)
		a.mu.Unlock()
		if cycle == 0 {
			chunksAfterFirst = n
		} else if n != chunksAfterFirst {
			t.Fatalf("cycle %d: %d chunks, want %d (reuse, not growth)", cycle, n, chunksAfterFirst)
		}
		a.Reset()
		al.Reset()
	}
}

func TestForEachSkipsNilChunks(t *testing.T) {
	a := New[entry]()
	al := a.NewAllocator()
	al.Alloc()
	count := 0
	a.ForEach(func(h Handle, e *entry) { count++ })
	// Chunk 0 (8191 visitable slots) + chunk 1 (ChunkSize slots).
	if count != 2*ChunkSize-1 {
		t.Fatalf("visited %d slots, want %d", count, 2*ChunkSize-1)
	}
}
