// Package arena provides chunked, handle-addressed concurrent storage
// for the mesh kernel.
//
// The shared Delaunay mesh stores vertices and cells in arenas instead
// of individual heap objects: entries are addressed by dense uint32
// handles, allocation is per-worker (a worker owns the chunk it is
// currently filling, so allocation is contention-free except when a
// new chunk must be registered), and storage is append-only so that
// speculative readers can always dereference a handle they obtained
// earlier — the entry may be marked dead by its owner, but the memory
// stays valid and type-stable. This mirrors the custom allocators of
// the paper's C++ implementation and keeps pressure off the Go GC by
// using a small number of large slices.
package arena

import (
	"fmt"
	"sync"
	"sync/atomic"
)

const (
	// ChunkShift determines the chunk size (entries per chunk).
	ChunkShift = 13
	// ChunkSize is the number of entries in one chunk.
	ChunkSize = 1 << ChunkShift
	chunkMask = ChunkSize - 1
	// MaxChunks bounds the total capacity at MaxChunks*ChunkSize
	// entries (2^29 with the defaults). The chunk-pointer table is a
	// fixed array scanned by the garbage collector, so it is kept
	// small.
	MaxChunks = 1 << 16
)

// Handle addresses one entry in an Arena. The zero handle is reserved
// as "nil" and is never returned by Alloc.
type Handle uint32

// Nil is the reserved null handle.
const Nil Handle = 0

// Arena is a concurrent chunked store of T. Create with New, allocate
// through per-worker Allocators, and dereference with At.
type Arena[T any] struct {
	chunks [MaxChunks]atomic.Pointer[[ChunkSize]T]

	mu        sync.Mutex
	numChunks int32 // guarded by mu for writers; read atomically

	length atomic.Int64 // total entries handed out (monotone)
}

// New returns an empty arena whose first slot (Handle 0) is burned as
// the nil handle.
func New[T any]() *Arena[T] {
	a := &Arena[T]{}
	a.chunks[0].Store(new([ChunkSize]T))
	a.numChunks = 1
	a.length.Store(1) // slot 0 reserved
	return a
}

// At returns a pointer to the entry addressed by h. The pointer stays
// valid for the lifetime of the arena. At panics on the nil handle or
// an out-of-range chunk.
func (a *Arena[T]) At(h Handle) *T {
	if h == Nil {
		panic("arena: dereference of nil handle")
	}
	c := a.chunks[h>>ChunkShift].Load()
	return &c[h&chunkMask]
}

// Len returns the total number of entries allocated so far (including
// the reserved slot 0 and any per-allocator slack at the tail of
// partially filled chunks' predecessors).
func (a *Arena[T]) Len() int { return int(a.length.Load()) }

// ForEach visits every slot of every registered chunk (except the
// reserved nil slot), including slots not yet handed out by an
// allocator — those hold zero values, which callers must be able to
// recognize and skip. It must not race with allocation; intended for
// whole-structure sweeps after parallel work has quiesced.
func (a *Arena[T]) ForEach(fn func(Handle, *T)) {
	a.mu.Lock()
	n := a.numChunks
	a.mu.Unlock()
	for ci := int32(0); ci < n; ci++ {
		c := a.chunks[ci].Load()
		if c == nil {
			continue
		}
		start := 0
		if ci == 0 {
			start = 1 // skip the nil handle
		}
		for off := start; off < ChunkSize; off++ {
			fn(Handle(uint32(ci)<<ChunkShift|uint32(off)), &c[off])
		}
	}
}

// newChunk registers a fresh chunk and returns its index.
func (a *Arena[T]) newChunk() int32 {
	a.mu.Lock()
	defer a.mu.Unlock()
	idx := a.numChunks
	if idx >= MaxChunks {
		panic(fmt.Sprintf("arena: capacity exhausted (%d chunks)", MaxChunks))
	}
	if a.chunks[idx].Load() == nil {
		a.chunks[idx].Store(new([ChunkSize]T))
	}
	a.numChunks = idx + 1
	return idx
}

// Reset logically discards all entries, returning the arena to its
// initial state while retaining the allocated chunks for reuse (the
// caller guarantees every field of an entry is initialized on
// allocation, so stale contents are harmless). It must not race with
// any concurrent use; it exists for single-owner scratch arenas (the
// local triangulations of vertex removal) that are rebuilt many
// times. Outstanding Allocators must be discarded or Reset as well.
func (a *Arena[T]) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.numChunks = 1
	a.length.Store(1)
}

// Allocator hands out handles from chunks owned by a single worker.
// An Allocator must not be used concurrently; each worker goroutine
// owns one.
type Allocator[T any] struct {
	a     *Arena[T]
	chunk int32
	next  uint32 // next free offset within chunk; ChunkSize means "no chunk"
}

// NewAllocator returns an allocator drawing from a.
func (a *Arena[T]) NewAllocator() *Allocator[T] {
	return &Allocator[T]{a: a, chunk: -1, next: ChunkSize}
}

// Alloc reserves one entry and returns its handle. The entry is
// zero-valued; the caller initializes it before publishing the handle
// to other workers.
func (al *Allocator[T]) Alloc() Handle {
	if al.next >= ChunkSize {
		al.chunk = al.a.newChunk()
		al.next = 0
	}
	h := Handle(uint32(al.chunk)<<ChunkShift | al.next)
	al.next++
	al.a.length.Add(1)
	return h
}

// At is shorthand for the arena's At.
func (al *Allocator[T]) At(h Handle) *T { return al.a.At(h) }

// Reset detaches the allocator from its current chunk so the next
// Alloc draws a fresh one; used together with Arena.Reset.
func (al *Allocator[T]) Reset() {
	al.chunk = -1
	al.next = ChunkSize
}
