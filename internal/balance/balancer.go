package balance

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
)

// TransferStats classifies work transfers by the topological distance
// between donor and beggar (paper Figure 5b counts the inter-blade
// accesses).
type TransferStats struct {
	IntraSocket int64
	IntraBlade  int64 // same blade, different socket
	InterBlade  int64
}

// Total returns the total number of transfers.
func (s TransferStats) Total() int64 { return s.IntraSocket + s.IntraBlade + s.InterBlade }

// Balancer is a begging list: idle threads park on it, running threads
// claim a beggar, hand it work, and wake it.
//
// Idle side:  AwaitWork(tid) — registers and blocks; returns false on
// termination. Donor side: ClaimBeggar(donor) pops a beggar (preferring
// topologically close ones for HWS); the donor then fills the beggar's
// work queue and calls Wake.
type Balancer interface {
	Name() string
	AwaitWork(tid int) bool
	ClaimBeggar(donor int) (beggar int, ok bool)
	Wake(beggar int)
	Quiesce()
	// IdleNs reports the total nanoseconds tid spent parked (the
	// paper's load-balance overhead).
	IdleNs(tid int) int64
	// Idle reports how many threads are currently parked.
	Idle() int
	Transfers() TransferStats
}

// common holds the machinery shared by RWS and HWS.
type common struct {
	topo    Topology
	hasWork []atomic.Bool
	idleNs  []atomic.Int64
	idle    atomic.Int32
	done    atomic.Bool

	stats struct {
		intraSocket atomic.Int64
		intraBlade  atomic.Int64
		interBlade  atomic.Int64
	}
}

func newCommon(n int, topo Topology) common {
	return common{
		topo:    topo,
		hasWork: make([]atomic.Bool, n),
		idleNs:  make([]atomic.Int64, n),
	}
}

func (c *common) wake(beggar int) { c.hasWork[beggar].Store(true) }

func (c *common) await(tid int) bool {
	start := time.Now()
	c.idle.Add(1)
	for !c.hasWork[tid].Load() && !c.done.Load() {
		runtime.Gosched()
	}
	c.idle.Add(-1)
	c.idleNs[tid].Add(int64(time.Since(start)))
	return !c.done.Load()
}

func (c *common) record(donor, beggar int) {
	switch {
	case c.topo.SameSocket(donor, beggar):
		c.stats.intraSocket.Add(1)
	case c.topo.SameBlade(donor, beggar):
		c.stats.intraBlade.Add(1)
	default:
		c.stats.interBlade.Add(1)
	}
}

func (c *common) transfers() TransferStats {
	return TransferStats{
		IntraSocket: c.stats.intraSocket.Load(),
		IntraBlade:  c.stats.intraBlade.Load(),
		InterBlade:  c.stats.interBlade.Load(),
	}
}

// RWS is the classic flat begging list (Random Work Stealing, Section
// 4.4): one global FIFO, donors serve whoever registered first
// regardless of topology.
type RWS struct {
	common
	mu    sync.Mutex
	queue []int
}

// NewRWS creates a flat begging list for n threads.
func NewRWS(n int, topo Topology) *RWS {
	return &RWS{common: newCommon(n, topo)}
}

// Name implements Balancer.
func (*RWS) Name() string { return "RWS" }

// AwaitWork implements Balancer.
func (b *RWS) AwaitWork(tid int) bool {
	b.hasWork[tid].Store(false)
	b.mu.Lock()
	b.queue = append(b.queue, tid)
	b.mu.Unlock()
	return b.await(tid)
}

// ClaimBeggar implements Balancer.
func (b *RWS) ClaimBeggar(donor int) (int, bool) {
	if faultinject.Fire(faultinject.DropSteal) {
		return 0, false // injected lost steal: donor keeps the work
	}
	b.mu.Lock()
	if len(b.queue) == 0 {
		b.mu.Unlock()
		return 0, false
	}
	beggar := b.queue[0]
	b.queue = b.queue[1:]
	b.mu.Unlock()
	b.record(donor, beggar)
	return beggar, true
}

// Wake implements Balancer.
func (b *RWS) Wake(beggar int) { b.wake(beggar) }

// Quiesce implements Balancer.
func (b *RWS) Quiesce() { b.done.Store(true) }

// IdleNs implements Balancer.
func (b *RWS) IdleNs(tid int) int64 { return b.idleNs[tid].Load() }

// Idle implements Balancer.
func (b *RWS) Idle() int { return int(b.idle.Load()) }

// Transfers implements Balancer.
func (b *RWS) Transfers() TransferStats { return b.transfers() }

// HWS is the Hierarchical Work Stealing begging list (Section 6.1):
// BL1 is shared among the threads of one socket (capacity
// cores/socket - 1), BL2 among the sockets of one blade (capacity
// sockets/blade - 1), BL3 among all blades (capacity one thread per
// blade). Idle threads overflow outward; donors serve BL1 of their own
// socket first, then BL2 of their blade, then BL3 — so work transfers
// stay topologically close and inter-blade traffic drops.
type HWS struct {
	common
	mu sync.Mutex
	// bl1[socket], bl2[blade], bl3 with per-blade occupancy.
	bl1      [][]int
	bl2      [][]int
	bl3      []int
	bl3Blade []int // occupancy per blade in bl3
}

// NewHWS creates the hierarchical begging list for n threads on topo.
func NewHWS(n int, topo Topology) *HWS {
	sockets := topo.SocketsPerBlade * topo.Blades
	return &HWS{
		common:   newCommon(n, topo),
		bl1:      make([][]int, sockets),
		bl2:      make([][]int, topo.Blades),
		bl3Blade: make([]int, topo.Blades),
	}
}

// Name implements Balancer.
func (*HWS) Name() string { return "HWS" }

// AwaitWork implements Balancer.
func (b *HWS) AwaitWork(tid int) bool {
	b.hasWork[tid].Store(false)
	s := b.topo.Socket(tid)
	bl := b.topo.Blade(tid)
	b.mu.Lock()
	switch {
	case len(b.bl1[s]) < b.topo.CoresPerSocket-1:
		b.bl1[s] = append(b.bl1[s], tid)
	case len(b.bl2[bl]) < b.topo.SocketsPerBlade-1:
		b.bl2[bl] = append(b.bl2[bl], tid)
	default:
		b.bl3 = append(b.bl3, tid)
		b.bl3Blade[bl]++
	}
	b.mu.Unlock()
	return b.await(tid)
}

// ClaimBeggar implements Balancer.
func (b *HWS) ClaimBeggar(donor int) (int, bool) {
	if faultinject.Fire(faultinject.DropSteal) {
		return 0, false // injected lost steal: donor keeps the work
	}
	s := b.topo.Socket(donor)
	bl := b.topo.Blade(donor)
	b.mu.Lock()
	var beggar int
	switch {
	case len(b.bl1[s]) > 0:
		beggar = b.bl1[s][0]
		b.bl1[s] = b.bl1[s][1:]
	case len(b.bl2[bl]) > 0:
		beggar = b.bl2[bl][0]
		b.bl2[bl] = b.bl2[bl][1:]
	case len(b.bl3) > 0:
		beggar = b.bl3[0]
		b.bl3 = b.bl3[1:]
		b.bl3Blade[b.topo.Blade(beggar)]--
	default:
		b.mu.Unlock()
		return 0, false
	}
	b.mu.Unlock()
	b.record(donor, beggar)
	return beggar, true
}

// Wake implements Balancer.
func (b *HWS) Wake(beggar int) { b.wake(beggar) }

// Quiesce implements Balancer.
func (b *HWS) Quiesce() { b.done.Store(true) }

// IdleNs implements Balancer.
func (b *HWS) IdleNs(tid int) int64 { return b.idleNs[tid].Load() }

// Idle implements Balancer.
func (b *HWS) Idle() int { return int(b.idle.Load()) }

// Transfers implements Balancer.
func (b *HWS) Transfers() TransferStats { return b.transfers() }
