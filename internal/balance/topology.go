// Package balance implements PI2M's load balancing (paper Sections
// 4.4 and 6.1): idle threads register on a Begging List and busy-wait;
// running threads donate freshly created poor elements to the first
// registered beggar. Two organizations of the begging list are
// provided — the classic flat Random Work Stealing (RWS) and the
// NUMA-aware three-level Hierarchical Work Stealing (HWS, lists per
// socket, per blade, and global) — together with a machine topology
// model that maps worker ids onto cores, sockets and blades.
//
// The topology is a *model*: worker goroutines are not pinned to
// hardware, but work transfers are classified (intra-socket,
// intra-blade, inter-blade) exactly as the paper counts remote
// accesses, so the HWS-vs-RWS comparison of Figure 5 is reproducible
// in shape on any host.
package balance

// Topology describes a cc-NUMA machine shape (paper Table 2).
type Topology struct {
	CoresPerSocket  int
	SocketsPerBlade int
	Blades          int
}

// Blacklight is the Pittsburgh Supercomputing Center machine used for
// the paper's scaling studies: Xeon X7560, 8 cores/socket, 2
// sockets/blade, 128 blades.
var Blacklight = Topology{CoresPerSocket: 8, SocketsPerBlade: 2, Blades: 128}

// CRTC is the single-blade Xeon X5690 workstation used for the
// single-threaded comparison: 6 cores/socket, 2 sockets.
var CRTC = Topology{CoresPerSocket: 6, SocketsPerBlade: 2, Blades: 1}

// Cores returns the total number of hardware cores.
func (t Topology) Cores() int { return t.CoresPerSocket * t.SocketsPerBlade * t.Blades }

// Core maps a worker id to its (virtual) core; oversubscribed workers
// (hyper-threading experiments) wrap around.
func (t Topology) Core(tid int) int { return tid % t.Cores() }

// Socket returns the socket index of a worker.
func (t Topology) Socket(tid int) int { return t.Core(tid) / t.CoresPerSocket }

// Blade returns the blade index of a worker.
func (t Topology) Blade(tid int) int { return t.Socket(tid) / t.SocketsPerBlade }

// SameSocket reports whether two workers share a socket.
func (t Topology) SameSocket(a, b int) bool { return t.Socket(a) == t.Socket(b) }

// SameBlade reports whether two workers share a blade.
func (t Topology) SameBlade(a, b int) bool { return t.Blade(a) == t.Blade(b) }

// ForWorkers returns a Blacklight-shaped topology with just enough
// blades for n workers, for host-scale experiments.
func ForWorkers(n int) Topology {
	per := Blacklight.CoresPerSocket * Blacklight.SocketsPerBlade
	blades := (n + per - 1) / per
	if blades < 1 {
		blades = 1
	}
	return Topology{
		CoresPerSocket:  Blacklight.CoresPerSocket,
		SocketsPerBlade: Blacklight.SocketsPerBlade,
		Blades:          blades,
	}
}
