package balance

import (
	"sync"
	"testing"
	"time"
)

func TestTopologyMapping(t *testing.T) {
	topo := Topology{CoresPerSocket: 8, SocketsPerBlade: 2, Blades: 4}
	if topo.Cores() != 64 {
		t.Fatalf("Cores = %d", topo.Cores())
	}
	if topo.Socket(0) != 0 || topo.Socket(7) != 0 || topo.Socket(8) != 1 {
		t.Error("Socket mapping wrong")
	}
	if topo.Blade(15) != 0 || topo.Blade(16) != 1 {
		t.Error("Blade mapping wrong")
	}
	if !topo.SameSocket(0, 7) || topo.SameSocket(7, 8) {
		t.Error("SameSocket wrong")
	}
	if !topo.SameBlade(7, 8) || topo.SameBlade(15, 16) {
		t.Error("SameBlade wrong")
	}
	// Oversubscription wraps.
	if topo.Core(64) != 0 || topo.Socket(64) != 0 {
		t.Error("oversubscribed worker not wrapped")
	}
}

func TestForWorkers(t *testing.T) {
	topo := ForWorkers(20)
	if topo.Cores() < 20 {
		t.Errorf("ForWorkers(20) has %d cores", topo.Cores())
	}
	if ForWorkers(1).Blades != 1 {
		t.Error("ForWorkers(1) should be one blade")
	}
}

func TestBlacklightSpec(t *testing.T) {
	if Blacklight.Cores() != 2048 {
		t.Errorf("Blacklight cores = %d, want 2048", Blacklight.Cores())
	}
	if CRTC.Cores() != 12 {
		t.Errorf("CRTC cores = %d, want 12", CRTC.Cores())
	}
}

func testHandoff(t *testing.T, b Balancer) {
	t.Helper()
	got := make(chan bool, 1)
	go func() {
		got <- b.AwaitWork(3)
	}()
	// Wait for registration.
	deadline := time.After(2 * time.Second)
	for b.Idle() == 0 {
		select {
		case <-deadline:
			t.Fatal("beggar never registered")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	beggar, ok := b.ClaimBeggar(0)
	if !ok || beggar != 3 {
		t.Fatalf("ClaimBeggar = %d, %v", beggar, ok)
	}
	b.Wake(beggar)
	select {
	case v := <-got:
		if !v {
			t.Fatal("AwaitWork returned false before quiesce")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("woken beggar did not return")
	}
	if _, ok := b.ClaimBeggar(0); ok {
		t.Fatal("phantom beggar claimed")
	}
}

func TestRWSHandoff(t *testing.T) {
	testHandoff(t, NewRWS(8, ForWorkers(8)))
}

func TestHWSHandoff(t *testing.T) {
	testHandoff(t, NewHWS(8, ForWorkers(8)))
}

func testQuiesce(t *testing.T, b Balancer) {
	t.Helper()
	done := make(chan bool, 1)
	go func() { done <- b.AwaitWork(1) }()
	for b.Idle() == 0 {
		time.Sleep(time.Millisecond)
	}
	b.Quiesce()
	select {
	case v := <-done:
		if v {
			t.Fatal("AwaitWork returned true after quiesce")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("quiesce did not release the beggar")
	}
}

func TestRWSQuiesce(t *testing.T) { testQuiesce(t, NewRWS(4, ForWorkers(4))) }
func TestHWSQuiesce(t *testing.T) { testQuiesce(t, NewHWS(4, ForWorkers(4))) }

// registerInOrder parks the given threads one at a time, so list
// placement is deterministic.
func registerInOrder(t *testing.T, b Balancer, wg *sync.WaitGroup, tids ...int) {
	t.Helper()
	for i, tid := range tids {
		wg.Add(1)
		go func(tid int) { defer wg.Done(); b.AwaitWork(tid) }(tid)
		deadline := time.After(2 * time.Second)
		for b.Idle() < i+1 {
			select {
			case <-deadline:
				t.Fatalf("thread %d never registered", tid)
			default:
				time.Sleep(time.Millisecond)
			}
		}
	}
}

func TestHWSPrefersLocalBeggars(t *testing.T) {
	// Topology: 2 cores/socket, 2 sockets/blade, 2 blades = 8 cores.
	// BL1 capacity is 1 per socket, BL2 capacity 1 per blade.
	topo := Topology{CoresPerSocket: 2, SocketsPerBlade: 2, Blades: 2}
	b := NewHWS(8, topo)
	var wg sync.WaitGroup
	// 1 -> BL1[socket0]; 3 -> BL1[socket1]; 2 -> BL2[blade0] (its BL1
	// is full); 4 -> BL1[socket2]; 5 -> BL2[blade1]; 6 -> BL1[socket3];
	// 7 -> BL3 (BL1[socket3] and BL2[blade1] full).
	registerInOrder(t, b, &wg, 1, 3, 2, 4, 5, 6, 7)

	// Donor 0 (socket 0, blade 0): own-socket BL1 first, then its
	// blade's BL2, then BL3. Other sockets' BL1 waiters are invisible
	// to it — that is the point of the hierarchy.
	wantOrder := []int{1, 2, 7}
	for _, want := range wantOrder {
		beggar, ok := b.ClaimBeggar(0)
		if !ok || beggar != want {
			t.Fatalf("claim = %d (ok=%v), want %d", beggar, ok, want)
		}
	}
	if _, ok := b.ClaimBeggar(0); ok {
		t.Fatal("donor 0 claimed a beggar from a foreign socket's BL1")
	}
	st := b.Transfers()
	if st.IntraSocket != 1 || st.IntraBlade != 1 || st.InterBlade != 1 {
		t.Errorf("transfer stats = %+v", st)
	}
	b.Quiesce()
	wg.Wait()
}

func TestHWSOverflowToOuterLists(t *testing.T) {
	// All of blade 0 (threads 0-3) go idle in order: 0 -> BL1[0],
	// 1 -> BL1[0] full -> BL2[0], wait: 1 is socket 0 too, so
	// 1 -> BL2[blade0]; 2 -> BL1[socket1]; 3 -> BL2 full -> BL3.
	topo := Topology{CoresPerSocket: 2, SocketsPerBlade: 2, Blades: 2}
	b := NewHWS(8, topo)
	var wg sync.WaitGroup
	registerInOrder(t, b, &wg, 0, 1, 2, 3)
	// A donor on blade 1 has empty BL1/BL2 of its own, so it must
	// reach BL3, where exactly one blade-0 thread sits.
	beggar, ok := b.ClaimBeggar(4)
	if !ok {
		t.Fatal("donor on blade 1 found no beggar in BL3")
	}
	if beggar != 3 {
		t.Errorf("BL3 beggar = %d, want 3", beggar)
	}
	st := b.Transfers()
	if st.InterBlade != 1 {
		t.Errorf("InterBlade = %d, want 1", st.InterBlade)
	}
	b.Quiesce()
	wg.Wait()
}

func TestRWSFIFO(t *testing.T) {
	b := NewRWS(8, ForWorkers(8))
	var wg sync.WaitGroup
	for _, tid := range []int{5, 2, 7} {
		wg.Add(1)
		go func(tid int) { defer wg.Done(); b.AwaitWork(tid) }(tid)
		// Ensure deterministic registration order.
		for b.Idle() == 0 {
			time.Sleep(time.Millisecond)
		}
		deadline := time.After(time.Second)
		for {
			if n := b.Idle(); n > 0 {
				break
			}
			select {
			case <-deadline:
				t.Fatal("registration timeout")
			default:
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	order := []int{}
	for {
		beggar, ok := b.ClaimBeggar(0)
		if !ok {
			break
		}
		order = append(order, beggar)
		b.Wake(beggar)
	}
	wg.Wait()
	if len(order) != 3 || order[0] != 5 || order[1] != 2 || order[2] != 7 {
		t.Errorf("FIFO order = %v, want [5 2 7]", order)
	}
}

func TestIdleTimeAccounting(t *testing.T) {
	b := NewRWS(2, ForWorkers(2))
	done := make(chan struct{})
	go func() {
		b.AwaitWork(0)
		close(done)
	}()
	for b.Idle() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	beggar, _ := b.ClaimBeggar(1)
	b.Wake(beggar)
	<-done
	if b.IdleNs(0) < int64(5*time.Millisecond) {
		t.Errorf("IdleNs = %d, want >= 5ms", b.IdleNs(0))
	}
}

func TestOversubscribedWorkersShareTopology(t *testing.T) {
	// 32 workers on a 16-core topology: workers 0 and 16 map to the
	// same core, so a transfer between them is intra-socket.
	topo := ForWorkers(16)
	b := NewHWS(32, topo)
	if !topo.SameSocket(0, 16) {
		t.Fatal("wrapped worker not on the same socket")
	}
	var wg sync.WaitGroup
	registerInOrder(t, b, &wg, 16)
	beggar, ok := b.ClaimBeggar(0)
	if !ok || beggar != 16 {
		t.Fatalf("claim = %d (%v)", beggar, ok)
	}
	if st := b.Transfers(); st.IntraSocket != 1 {
		t.Errorf("transfer stats = %+v, want intra-socket", st)
	}
	b.Quiesce()
	wg.Wait()
}

func TestTransfersTotal(t *testing.T) {
	s := TransferStats{IntraSocket: 3, IntraBlade: 2, InterBlade: 1}
	if s.Total() != 6 {
		t.Errorf("Total = %d", s.Total())
	}
}
