package baseline

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/img"
	"repro/internal/quality"
)

func TestSeqMeshSphere(t *testing.T) {
	im := img.SpherePhantom(24)
	res, err := SeqMesh(im, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elements() == 0 {
		t.Fatal("empty mesh")
	}
	if err := res.Mesh.Check(); err != nil {
		t.Fatalf("mesh invalid: %v", err)
	}
	if res.Inserts == 0 {
		t.Error("no insertions")
	}
	if res.MeshTime <= 0 || res.TotalTime < res.MeshTime {
		t.Error("timing bookkeeping wrong")
	}
}

func TestSeqMeshQualityMatchesPI2M(t *testing.T) {
	im := img.SpherePhantom(24)
	seq, err := SeqMesh(im, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.Run(core.Config{Image: im, Workers: 2, LivelockTimeout: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	sq := quality.Evaluate(seq.Mesh, seq.Final, im)
	pq := quality.Evaluate(par.Mesh, par.Final, im)
	if sq.MaxRadiusEdge > 2.5 || pq.MaxRadiusEdge > 2.5 {
		t.Errorf("radius-edge bounds: seq %v, pi2m %v", sq.MaxRadiusEdge, pq.MaxRadiusEdge)
	}
	// Comparable mesh sizes (same δ and rules).
	ratio := float64(seq.Elements()) / float64(par.Elements())
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("mesh sizes diverge: seq %d vs pi2m %d", seq.Elements(), par.Elements())
	}
}

func TestPLCMeshFillsVolume(t *testing.T) {
	im := img.SpherePhantom(24)
	// Boundary from a PI2M run, exactly like the paper feeds TetGen.
	par, err := core.Run(core.Config{Image: im, Workers: 2, LivelockTimeout: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	tris := quality.BoundaryTriangles(par.Mesh, par.Final, im)
	res, err := PLCMesh(im, tris, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elements() == 0 {
		t.Fatal("empty PLC mesh")
	}
	if err := res.Mesh.Check(); err != nil {
		t.Fatalf("mesh invalid: %v", err)
	}
	s := quality.Evaluate(res.Mesh, res.Final, im)
	if s.MaxRadiusEdge > 2.5 {
		t.Errorf("PLC mesh radius-edge = %v", s.MaxRadiusEdge)
	}
}

func TestPLCMeshEmptyInput(t *testing.T) {
	im := img.SpherePhantom(16)
	res, err := PLCMesh(im, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// With no PLC vertices the volume is still filled against the
	// voxel object (quality rules only).
	if err := res.Mesh.Check(); err != nil {
		t.Fatalf("mesh invalid: %v", err)
	}
}

func TestOptionsDefaults(t *testing.T) {
	im := img.SpherePhantom(16)
	o := Options{}.withDefaults(im)
	if o.Delta != 2*im.MinSpacing() {
		t.Errorf("Delta default = %v", o.Delta)
	}
	if o.MaxRadiusEdge != 2 || o.MinFacetAngle != 30 {
		t.Error("quality defaults wrong")
	}
}

func TestSizeBoundDensifies(t *testing.T) {
	im := img.SpherePhantom(24)
	coarse, err := SeqMesh(im, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := SeqMesh(im, Options{SizeBound: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if fine.Elements() <= coarse.Elements() {
		t.Errorf("size bound did not densify: %d vs %d", fine.Elements(), coarse.Elements())
	}
}
