// Package baseline provides the two sequential meshers PI2M is
// compared against in the paper's Section 7 (Table 6).
//
// CGAL and TetGen themselves are C++ codebases that cannot be linked
// here; instead, this package implements faithful stand-ins that
// differ from PI2M the way those tools differ:
//
//   - SeqMesher stands in for CGAL's Isosurface-based mesh_3: a purely
//     sequential Delaunay refiner working directly on the segmented
//     image with a FIFO refinement queue, no speculative machinery and
//     no point removals.
//   - PLCMesher stands in for TetGen: a PLC-based volume mesher that
//     receives an already-recovered boundary triangulation (exactly
//     what the paper feeds TetGen) and only fills the volume with
//     quality tetrahedra, skipping surface recovery and the distance
//     transform entirely.
//
// Both use the same Bowyer-Watson kernel as PI2M — the paper makes the
// same point about CGAL and TetGen ("both perform insertions via the
// Bowyer-Watson kernel, as is the case of PI2M, [so] such a comparison
// is quite insightful").
package baseline

import (
	"fmt"
	"math"
	"time"

	"repro/internal/arena"
	"repro/internal/delaunay"
	"repro/internal/edt"
	"repro/internal/geom"
	"repro/internal/img"
	"repro/internal/quality"
	"repro/internal/spatial"
)

// Result is the outcome of a baseline run.
type Result struct {
	Mesh  *delaunay.Mesh
	Final []arena.Handle

	// TotalTime includes pre-processing (the EDT for SeqMesher);
	// MeshTime is refinement only.
	TotalTime time.Duration
	MeshTime  time.Duration

	Inserts int64
}

// Elements returns the final tetrahedron count.
func (r *Result) Elements() int { return len(r.Final) }

// ElementsPerSecond is the generation rate of Table 6.
func (r *Result) ElementsPerSecond() float64 {
	if r.TotalTime <= 0 {
		return 0
	}
	return float64(r.Elements()) / r.TotalTime.Seconds()
}

// Options configures the baselines with the same knobs as PI2M.
type Options struct {
	Delta         float64 // isosurface sampling spacing (SeqMesher)
	MaxRadiusEdge float64 // quality bound (default 2)
	MinFacetAngle float64 // boundary planar angle bound (default 30)
	SizeBound     float64 // uniform sf(.) (default +Inf)
}

func (o Options) withDefaults(im *img.Image) Options {
	if o.Delta == 0 {
		o.Delta = 2 * im.MinSpacing()
	}
	if o.MaxRadiusEdge == 0 {
		o.MaxRadiusEdge = 2
	}
	if o.MinFacetAngle == 0 {
		o.MinFacetAngle = 30
	}
	if o.SizeBound == 0 {
		o.SizeBound = math.Inf(1)
	}
	return o
}

// SeqMesh runs the CGAL stand-in on a segmented image.
func SeqMesh(im *img.Image, opt Options) (*Result, error) {
	opt = opt.withDefaults(im)
	start := time.Now()
	tr := edt.Compute(im, 1)

	lo, hi := im.Bounds()
	m, err := delaunay.NewMesh(lo, hi)
	if err != nil {
		return nil, err
	}
	w := m.NewWorker(0)
	isoGrid := spatial.NewGrid(lo, hi, opt.Delta)
	meshStart := time.Now()

	s := &seqMesher{
		im: im, tr: tr, m: m, w: w, iso: isoGrid, opt: opt,
	}
	m.LiveCells(func(h arena.Handle, c *delaunay.Cell) {
		s.queue = append(s.queue, h)
	})
	if err := s.refine(); err != nil {
		return nil, err
	}

	res := &Result{Mesh: m, MeshTime: time.Since(meshStart), Inserts: s.inserts}
	m.LiveCells(func(h arena.Handle, c *delaunay.Cell) {
		if im.LabelAt(c.CC) != 0 {
			res.Final = append(res.Final, h)
		}
	})
	res.TotalTime = time.Since(start)
	return res, nil
}

type seqMesher struct {
	im  *img.Image
	tr  *edt.Transform
	m   *delaunay.Mesh
	w   *delaunay.Worker
	iso *spatial.Grid
	opt Options

	queue   []arena.Handle // FIFO
	head    int
	inserts int64
}

const maxSeqOps = 200_000_000 // hard safety bound

func (s *seqMesher) refine() error {
	for s.head < len(s.queue) {
		if s.inserts > maxSeqOps {
			return fmt.Errorf("baseline: runaway refinement")
		}
		ch := s.queue[s.head]
		s.head++
		// Periodically drop the consumed queue prefix.
		if s.head > 1<<16 && s.head*2 > len(s.queue) {
			s.queue = append(s.queue[:0], s.queue[s.head:]...)
			s.head = 0
		}
		c := s.m.Cells.At(ch)
		if c.Dead() {
			continue
		}
		p, kind, ok := s.classify(c)
		if !ok {
			continue
		}
		res, st := s.w.Insert(p, kind, ch)
		switch st {
		case delaunay.OK:
			s.inserts++
			if kind == delaunay.KindIso || kind == delaunay.KindSurface {
				s.iso.Add(p, uint32(res.NewVert))
			}
			s.queue = append(s.queue, res.Created...)
		case delaunay.Failed, delaunay.Outside, delaunay.Stale:
			// Re-examined when neighbors change; drop.
		default:
			return fmt.Errorf("baseline: unexpected status %v", st)
		}
	}
	return nil
}

// classify mirrors PI2M's rules R1-R5 (no removals — CGAL's refiner
// does not delete points either).
func (s *seqMesher) classify(c *delaunay.Cell) (geom.Vec3, delaunay.VertKind, bool) {
	if math.IsInf(c.R2, 1) {
		return geom.Vec3{}, 0, false
	}
	cc := c.CC
	rad := math.Sqrt(c.R2)
	im := s.im

	lo, hi := im.Bounds()
	eps := im.MinSpacing() / 2
	q := cc.Max(lo.Add(geom.Vec3{X: eps, Y: eps, Z: eps})).
		Min(hi.Sub(geom.Vec3{X: eps, Y: eps, Z: eps}))
	sv, haveSurface := s.tr.NearestSurfaceVoxel(q)
	if haveSurface {
		dist := cc.Dist(sv)
		if dist <= rad {
			dir := sv.Sub(cc)
			if n := dir.Norm(); n > 0 {
				dir = dir.Scale((n + 2*im.MinSpacing()) / n)
			} else {
				dir = geom.Vec3{X: 2 * im.MinSpacing()}
			}
			if z, ok := im.SurfacePoint(cc, cc.Add(dir), 1e-3*im.MinSpacing()); ok &&
				!s.iso.AnyWithin(z, s.opt.Delta) {
				return z, delaunay.KindIso, true
			}
			if rad > 2*s.opt.Delta {
				return cc, delaunay.KindCircum, true
			}
		}
		// Facet rule.
		m := s.m
		for f := 0; f < 4; f++ {
			nbh := c.Neighbor(f)
			if nbh == arena.Nil {
				continue
			}
			nb := m.Cells.At(nbh)
			if math.IsInf(nb.R2, 1) {
				continue
			}
			segLen := cc.Dist(nb.CC)
			if dist := cc.Dist(sv); dist > segLen+2*im.MinSpacing()+im.Spacing.Norm() {
				continue
			}
			cSurf, ok := im.SurfacePoint(cc, nb.CC, 1e-3*im.MinSpacing())
			if !ok {
				continue
			}
			face := c.Face(f)
			off := false
			for _, vh := range face {
				k := m.Verts.At(vh).Kind
				if k != delaunay.KindIso && k != delaunay.KindSurface {
					off = true
					break
				}
			}
			if !off {
				off = geom.MinTriangleAngle(m.Pos(face[0]), m.Pos(face[1]), m.Pos(face[2])) < s.opt.MinFacetAngle
			}
			if off && !s.iso.AnyWithin(cSurf, s.opt.Delta/4) {
				return cSurf, delaunay.KindSurface, true
			}
		}
	}
	if im.LabelAt(cc) != 0 {
		se := geom.ShortestEdge(s.m.Pos(c.V[0]), s.m.Pos(c.V[1]), s.m.Pos(c.V[2]), s.m.Pos(c.V[3]))
		if se > 0 && rad/se > s.opt.MaxRadiusEdge {
			return cc, delaunay.KindCircum, true
		}
		if rad > s.opt.SizeBound {
			return cc, delaunay.KindCircum, true
		}
	}
	return geom.Vec3{}, 0, false
}

// PLCMesh runs the TetGen stand-in: it receives the boundary
// triangulation recovered by PI2M (the paper passes TetGen "the
// triangulated iso-surfaces as recovered by our method"), inserts all
// its vertices, and fills the volume with quality tetrahedra.
func PLCMesh(im *img.Image, tris []quality.Triangle, opt Options) (*Result, error) {
	opt = opt.withDefaults(im)
	start := time.Now()

	lo, hi := im.Bounds()
	m, err := delaunay.NewMesh(lo, hi)
	if err != nil {
		return nil, err
	}
	w := m.NewWorker(0)

	// Insert the PLC vertices (deduplicated by exact position).
	seen := make(map[geom.Vec3]bool)
	hint := m.FirstCell()
	var inserts int64
	for _, t := range tris {
		for _, p := range []geom.Vec3{t.A, t.B, t.C} {
			if seen[p] {
				continue
			}
			seen[p] = true
			res, st := w.Insert(p, delaunay.KindIso, hint)
			switch st {
			case delaunay.OK:
				inserts++
				hint = res.Created[0]
			case delaunay.Failed, delaunay.Stale:
				// duplicate raced in; harmless
			default:
				return nil, fmt.Errorf("baseline: PLC vertex insertion: %v", st)
			}
		}
	}

	// Volume filling: quality + size refinement only (rules R4/R5).
	queue := make([]arena.Handle, 0, 1024)
	m.LiveCells(func(h arena.Handle, c *delaunay.Cell) { queue = append(queue, h) })
	head := 0
	for head < len(queue) {
		if inserts > maxSeqOps {
			return nil, fmt.Errorf("baseline: runaway refinement")
		}
		ch := queue[head]
		head++
		if head > 1<<16 && head*2 > len(queue) {
			queue = append(queue[:0], queue[head:]...)
			head = 0
		}
		c := m.Cells.At(ch)
		if c.Dead() || math.IsInf(c.R2, 1) {
			continue
		}
		cc := c.CC
		if im.LabelAt(cc) == 0 {
			continue
		}
		rad := math.Sqrt(c.R2)
		se := geom.ShortestEdge(m.Pos(c.V[0]), m.Pos(c.V[1]), m.Pos(c.V[2]), m.Pos(c.V[3]))
		poor := se > 0 && rad/se > opt.MaxRadiusEdge
		if !poor && rad <= opt.SizeBound {
			continue
		}
		res, st := w.Insert(cc, delaunay.KindCircum, ch)
		switch st {
		case delaunay.OK:
			inserts++
			queue = append(queue, res.Created...)
		case delaunay.Failed, delaunay.Outside, delaunay.Stale:
		default:
			return nil, fmt.Errorf("baseline: volume refinement: %v", st)
		}
	}

	res := &Result{Mesh: m, Inserts: inserts}
	m.LiveCells(func(h arena.Handle, c *delaunay.Cell) {
		if im.LabelAt(c.CC) != 0 {
			res.Final = append(res.Final, h)
		}
	})
	res.MeshTime = time.Since(start)
	res.TotalTime = res.MeshTime
	return res, nil
}
