package meshio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadVTK hardens the legacy-VTK parser against arbitrary input:
// parse or fail cleanly, and any accepted mesh must be internally
// consistent.
func FuzzReadVTK(f *testing.F) {
	var ok bytes.Buffer
	if err := WriteVTKRaw(&ok, rawTetra()); err != nil {
		f.Fatal(err)
	}
	f.Add(ok.String())
	f.Add("POINTS 1 double\n0 0 0\nCELLS 1 5\n4 0 0 0 0\nCELL_TYPES 1\n10\n")
	f.Add("POINTS 999999999999 double\n")
	f.Add("CELLS -5 0\n")
	f.Add("POINTS 1 double\n0 0 0\nCELLS 1 5\n4 0 0 0 7\n")

	f.Fuzz(func(t *testing.T, data string) {
		m, err := ReadVTK(strings.NewReader(data))
		if err != nil {
			return
		}
		if len(m.Verts) == 0 || len(m.Cells) == 0 {
			t.Fatal("accepted empty mesh")
		}
		for _, c := range m.Cells {
			for _, v := range c {
				if int(v) >= len(m.Verts) || v < 0 {
					t.Fatalf("accepted out-of-range vertex %d", v)
				}
			}
		}
		if len(m.Labels) != 0 && len(m.Labels) != len(m.Cells) {
			t.Fatal("label count disagrees with cells")
		}
	})
}
