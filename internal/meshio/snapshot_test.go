package meshio

import (
	"bytes"
	"sort"
	"testing"

	"repro/internal/quality"
)

// TestWriteVTKSnapshotParity: the snapshot encoder must be
// byte-identical to the lease-bound encoder over the same run — the
// serving layer fans the snapshot bytes out to coalesced waiters that
// would previously each have encoded from the live mesh.
func TestWriteVTKSnapshotParity(t *testing.T) {
	res, im := smallMesh(t)

	var direct bytes.Buffer
	if err := WriteVTK(&direct, res.Mesh, res.Final, im); err != nil {
		t.Fatal(err)
	}
	var fromSnap bytes.Buffer
	if err := WriteVTKSnapshot(&fromSnap, res.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), fromSnap.Bytes()) {
		t.Fatalf("snapshot VTK differs from direct VTK (%d vs %d bytes)",
			direct.Len(), fromSnap.Len())
	}
}

// TestWriteOFFSnapshotParity: the OFF fan-out path must byte-match the
// lease-bound encoder over the same run, mirroring the VTK parity test
// — coalesced waiters and cache-served repeats receive snapshot-encoded
// OFF bodies, so any drift between the two encoders would make a cache
// hit observably different from a fresh mesh.
func TestWriteOFFSnapshotParity(t *testing.T) {
	res, im := smallMesh(t)

	var direct bytes.Buffer
	if err := WriteOFF(&direct, quality.BoundaryTriangles(res.Mesh, res.Final, im)); err != nil {
		t.Fatal(err)
	}
	var fromSnap bytes.Buffer
	if err := WriteOFFSnapshot(&fromSnap, res.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), fromSnap.Bytes()) {
		t.Fatalf("snapshot OFF differs from direct OFF (%d vs %d bytes)",
			direct.Len(), fromSnap.Len())
	}
	// And the snapshot encoder is deterministic: the same snapshot must
	// encode to the same bytes every time (cache hits re-encode).
	var again bytes.Buffer
	if err := WriteOFFSnapshot(&again, res.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromSnap.Bytes(), again.Bytes()) {
		t.Fatal("WriteOFFSnapshot is not deterministic for the same snapshot")
	}
}

// triKey reduces a triangle to an order-independent identity so the
// two boundary extractions can be compared as multisets (they agree
// on the facet set, not necessarily on emission order or winding
// start).
func triKey(tr quality.Triangle) [9]float64 {
	pts := [3][3]float64{
		{tr.A.X, tr.A.Y, tr.A.Z},
		{tr.B.X, tr.B.Y, tr.B.Z},
		{tr.C.X, tr.C.Y, tr.C.Z},
	}
	sort.Slice(pts[:], func(i, j int) bool {
		for k := 0; k < 3; k++ {
			if pts[i][k] != pts[j][k] {
				return pts[i][k] < pts[j][k]
			}
		}
		return false
	})
	var k [9]float64
	for i, p := range pts {
		copy(k[3*i:], p[:])
	}
	return k
}

// TestSnapshotBoundaryParity: MeshSnapshot.BoundaryTriangles must
// produce the same facet multiset as quality.BoundaryTriangles over
// the live mesh, so OFF responses encoded off-lease match on-lease
// ones geometrically.
func TestSnapshotBoundaryParity(t *testing.T) {
	res, im := smallMesh(t)

	live := quality.BoundaryTriangles(res.Mesh, res.Final, im)
	snap := res.Snapshot().BoundaryTriangles()
	if len(live) != len(snap) {
		t.Fatalf("boundary sizes differ: live %d, snapshot %d", len(live), len(snap))
	}
	count := make(map[[9]float64]int, len(live))
	for _, tr := range live {
		count[triKey(tr)]++
	}
	for _, tr := range snap {
		k := triKey(tr)
		if count[k] == 0 {
			t.Fatal("snapshot boundary contains a facet the live extraction does not")
		}
		count[k]--
	}
	for _, n := range count {
		if n != 0 {
			t.Fatal("live boundary contains a facet the snapshot extraction does not")
		}
	}
}
