package meshio

import (
	"bufio"
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/img"
	"repro/internal/quality"
)

func smallMesh(t *testing.T) (*core.Result, *img.Image) {
	t.Helper()
	im := img.SpherePhantom(20)
	res, err := core.Run(core.Config{Image: im, Workers: 1, LivelockTimeout: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return res, im
}

func TestWriteVTK(t *testing.T) {
	res, im := smallMesh(t)
	var buf bytes.Buffer
	if err := WriteVTK(&buf, res.Mesh, res.Final, im); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# vtk DataFile Version 3.0") {
		t.Error("missing VTK header")
	}
	for _, want := range []string{"DATASET UNSTRUCTURED_GRID", "POINTS", "CELLS", "CELL_TYPES", "CELL_DATA", "SCALARS tissue"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}

	// Parse counts back and validate index ranges.
	var nPoints, nCells, cellsInts int
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "POINTS ") {
			fmt.Sscanf(line, "POINTS %d double", &nPoints)
		}
		if strings.HasPrefix(line, "CELLS ") {
			fmt.Sscanf(line, "CELLS %d %d", &nCells, &cellsInts)
			for i := 0; i < nCells && sc.Scan(); i++ {
				var k, a, b, c, d int
				if _, err := fmt.Sscanf(sc.Text(), "%d %d %d %d %d", &k, &a, &b, &c, &d); err != nil {
					t.Fatalf("cell line %d: %v", i, err)
				}
				if k != 4 {
					t.Fatalf("cell arity %d", k)
				}
				for _, idx := range []int{a, b, c, d} {
					if idx < 0 || idx >= nPoints {
						t.Fatalf("vertex index %d out of range [0,%d)", idx, nPoints)
					}
				}
			}
		}
	}
	if nCells != res.Elements() {
		t.Errorf("CELLS %d, want %d", nCells, res.Elements())
	}
	if cellsInts != 5*nCells {
		t.Errorf("cells ints %d, want %d", cellsInts, 5*nCells)
	}
}

func TestWriteVTKNoImage(t *testing.T) {
	res, _ := smallMesh(t)
	var buf bytes.Buffer
	if err := WriteVTK(&buf, res.Mesh, res.Final, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "CELL_DATA") {
		t.Error("cell data emitted without an image")
	}
}

func TestWriteOFF(t *testing.T) {
	res, im := smallMesh(t)
	tris := quality.BoundaryTriangles(res.Mesh, res.Final, im)
	var buf bytes.Buffer
	if err := WriteOFF(&buf, tris); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "OFF" {
		t.Fatal("missing OFF header")
	}
	var nv, nf, ne int
	fmt.Sscanf(lines[1], "%d %d %d", &nv, &nf, &ne)
	if nf != len(tris) {
		t.Errorf("faces %d, want %d", nf, len(tris))
	}
	if len(lines) != 2+nv+nf {
		t.Errorf("line count %d, want %d", len(lines), 2+nv+nf)
	}
	// Faces reference valid vertices.
	for _, l := range lines[2+nv:] {
		var k, a, b, c int
		fmt.Sscanf(l, "%d %d %d %d", &k, &a, &b, &c)
		if k != 3 || a >= nv || b >= nv || c >= nv {
			t.Fatalf("bad face line %q", l)
		}
	}
}

func TestWriteOFFSharedVertices(t *testing.T) {
	// Two triangles sharing an edge: 4 unique vertices.
	tris := []quality.Triangle{
		{A: geom.Vec3{X: 0}, B: geom.Vec3{X: 1}, C: geom.Vec3{Y: 1}},
		{A: geom.Vec3{X: 1}, B: geom.Vec3{Y: 1}, C: geom.Vec3{Z: 1}},
	}
	var buf bytes.Buffer
	if err := WriteOFF(&buf, tris); err != nil {
		t.Fatal(err)
	}
	var nv int
	fmt.Sscanf(strings.Split(buf.String(), "\n")[1], "%d", &nv)
	if nv != 4 {
		t.Errorf("unique vertices = %d, want 4", nv)
	}
}

func TestWriteFiles(t *testing.T) {
	res, im := smallMesh(t)
	dir := t.TempDir()
	if err := WriteVTKFile(dir+"/m.vtk", res.Mesh, res.Final, im); err != nil {
		t.Fatal(err)
	}
	tris := quality.BoundaryTriangles(res.Mesh, res.Final, im)
	if err := WriteOFFFile(dir+"/m.off", tris); err != nil {
		t.Fatal(err)
	}
}
