package meshio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/geom"
)

// RawMesh is a plain indexed tetrahedral mesh, the interchange form
// for post-processed (e.g. smoothed) meshes that no longer live in the
// Delaunay kernel's arena.
type RawMesh struct {
	Verts  []geom.Vec3
	Cells  [][4]int32
	Labels []int // optional per-cell tissue labels (len 0 or len(Cells))
}

// WriteVTKRaw writes a RawMesh as a legacy-ASCII VTK unstructured
// grid.
func WriteVTKRaw(w io.Writer, m *RawMesh) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# vtk DataFile Version 3.0")
	fmt.Fprintln(bw, "PI2M tetrahedral mesh")
	fmt.Fprintln(bw, "ASCII")
	fmt.Fprintln(bw, "DATASET UNSTRUCTURED_GRID")
	fmt.Fprintf(bw, "POINTS %d double\n", len(m.Verts))
	for _, p := range m.Verts {
		fmt.Fprintf(bw, "%g %g %g\n", p.X, p.Y, p.Z)
	}
	fmt.Fprintf(bw, "CELLS %d %d\n", len(m.Cells), 5*len(m.Cells))
	for _, c := range m.Cells {
		fmt.Fprintf(bw, "4 %d %d %d %d\n", c[0], c[1], c[2], c[3])
	}
	fmt.Fprintf(bw, "CELL_TYPES %d\n", len(m.Cells))
	for range m.Cells {
		fmt.Fprintln(bw, 10)
	}
	if len(m.Labels) == len(m.Cells) && len(m.Labels) > 0 {
		fmt.Fprintf(bw, "CELL_DATA %d\n", len(m.Cells))
		fmt.Fprintln(bw, "SCALARS tissue int 1")
		fmt.Fprintln(bw, "LOOKUP_TABLE default")
		for _, l := range m.Labels {
			fmt.Fprintln(bw, l)
		}
	}
	return bw.Flush()
}

// WriteVTKRawFile is WriteVTKRaw to a named file.
func WriteVTKRawFile(path string, m *RawMesh) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteVTKRaw(f, m); err != nil {
		return err
	}
	return f.Sync()
}

// ReadVTK parses the legacy-ASCII tetrahedral VTK files this package
// writes (POINTS/CELLS/CELL_TYPES and the optional tissue scalars).
func ReadVTK(r io.Reader) (*RawMesh, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	m := &RawMesh{}

	readN := func(n int, fn func(fields []string) error) error {
		for i := 0; i < n; i++ {
			if !sc.Scan() {
				return fmt.Errorf("vtk: unexpected EOF (wanted %d more lines)", n-i)
			}
			if err := fn(strings.Fields(sc.Text())); err != nil {
				return err
			}
		}
		return nil
	}

	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "POINTS "):
			var n int
			var typ string
			if _, err := fmt.Sscanf(line, "POINTS %d %s", &n, &typ); err != nil {
				return nil, fmt.Errorf("vtk: bad POINTS line %q", line)
			}
			m.Verts = make([]geom.Vec3, 0, clampCap(n))
			if err := readN(n, func(f []string) error {
				var p geom.Vec3
				if len(f) != 3 {
					return fmt.Errorf("vtk: bad point line")
				}
				if _, err := fmt.Sscanf(strings.Join(f, " "), "%g %g %g", &p.X, &p.Y, &p.Z); err != nil {
					return err
				}
				m.Verts = append(m.Verts, p)
				return nil
			}); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, "CELLS "):
			var n, ints int
			if _, err := fmt.Sscanf(line, "CELLS %d %d", &n, &ints); err != nil {
				return nil, fmt.Errorf("vtk: bad CELLS line %q", line)
			}
			m.Cells = make([][4]int32, 0, clampCap(n))
			if err := readN(n, func(f []string) error {
				var k int
				var c [4]int32
				if len(f) != 5 {
					return fmt.Errorf("vtk: only tetrahedra are supported")
				}
				if _, err := fmt.Sscanf(strings.Join(f, " "), "%d %d %d %d %d",
					&k, &c[0], &c[1], &c[2], &c[3]); err != nil {
					return err
				}
				if k != 4 {
					return fmt.Errorf("vtk: cell arity %d (want 4)", k)
				}
				for _, v := range c {
					if int(v) >= len(m.Verts) || v < 0 {
						return fmt.Errorf("vtk: vertex index %d out of range", v)
					}
				}
				m.Cells = append(m.Cells, c)
				return nil
			}); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, "LOOKUP_TABLE"):
			m.Labels = make([]int, 0, clampCap(len(m.Cells)))
			if err := readN(len(m.Cells), func(f []string) error {
				if len(f) == 0 {
					return fmt.Errorf("vtk: empty label line")
				}
				var l int
				if _, err := fmt.Sscanf(f[0], "%d", &l); err != nil {
					return err
				}
				m.Labels = append(m.Labels, l)
				return nil
			}); err != nil {
				return nil, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(m.Verts) == 0 || len(m.Cells) == 0 {
		return nil, fmt.Errorf("vtk: no tetrahedral mesh found")
	}
	return m, nil
}

// clampCap bounds slice preallocation against hostile headers; the
// slices still grow as real data arrives.
func clampCap(n int) int {
	const max = 1 << 20
	if n < 0 {
		return 0
	}
	if n > max {
		return max
	}
	return n
}

// ReadVTKFile reads a mesh from a named file.
func ReadVTKFile(path string) (*RawMesh, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadVTK(f)
}
