package meshio

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/img"
	"repro/internal/smooth"
)

func rawTetra() *RawMesh {
	return &RawMesh{
		Verts: []geom.Vec3{
			{X: 0, Y: 0, Z: 0}, {X: 1, Y: 0, Z: 0}, {X: 0, Y: 1, Z: 0}, {X: 0, Y: 0, Z: 1},
		},
		Cells:  [][4]int32{{0, 1, 2, 3}},
		Labels: []int{5},
	}
}

func TestRawRoundtrip(t *testing.T) {
	m := rawTetra()
	var buf bytes.Buffer
	if err := WriteVTKRaw(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadVTK(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Verts) != 4 || len(got.Cells) != 1 {
		t.Fatalf("got %d verts %d cells", len(got.Verts), len(got.Cells))
	}
	if got.Cells[0] != m.Cells[0] {
		t.Fatalf("cells %v", got.Cells)
	}
	if got.Verts[3] != m.Verts[3] {
		t.Fatalf("verts %v", got.Verts)
	}
	if len(got.Labels) != 1 || got.Labels[0] != 5 {
		t.Fatalf("labels %v", got.Labels)
	}
}

func TestRawNoLabels(t *testing.T) {
	m := rawTetra()
	m.Labels = nil
	var buf bytes.Buffer
	if err := WriteVTKRaw(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadVTK(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Labels) != 0 {
		t.Fatal("phantom labels appeared")
	}
}

func TestReadVTKRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"no mesh":    "# vtk DataFile Version 3.0\nASCII\n",
		"bad index":  "POINTS 1 double\n0 0 0\nCELLS 1 5\n4 0 0 0 9\nCELL_TYPES 1\n10\n",
		"non-tetra":  "POINTS 3 double\n0 0 0\n1 0 0\n0 1 0\nCELLS 1 4\n3 0 1 2\nCELL_TYPES 1\n5\n",
		"short cell": "POINTS 4 double\n0 0 0\n1 0 0\n0 1 0\n0 0 1\nCELLS 2 10\n4 0 1 2 3\n",
	}
	for name, in := range cases {
		if _, err := ReadVTK(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestVTKRoundtripOfRealMesh(t *testing.T) {
	im := img.SpherePhantom(24)
	res, err := core.Run(core.Config{Image: im, Workers: 1, LivelockTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteVTK(&buf, res.Mesh, res.Final, im); err != nil {
		t.Fatal(err)
	}
	got, err := ReadVTK(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != res.Elements() {
		t.Fatalf("cells %d, want %d", len(got.Cells), res.Elements())
	}
	if len(got.Labels) != res.Elements() {
		t.Fatalf("labels %d", len(got.Labels))
	}
}

func TestSmoothedMeshExport(t *testing.T) {
	im := img.SpherePhantom(24)
	res, err := core.Run(core.Config{Image: im, Workers: 1, LivelockTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	s := smooth.Extract(res.Mesh, res.Final, im)
	s.Taubin(3, 0.5, -0.53)
	raw := &RawMesh{Verts: s.Verts, Cells: s.Cells}
	for _, l := range s.Labels {
		raw.Labels = append(raw.Labels, int(l))
	}
	path := t.TempDir() + "/smoothed.vtk"
	if err := WriteVTKRawFile(path, raw); err != nil {
		t.Fatal(err)
	}
	got, err := ReadVTKFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != len(s.Cells) {
		t.Fatal("smoothed mesh round-trip lost cells")
	}
}
