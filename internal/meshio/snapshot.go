package meshio

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/core"
)

// WriteVTKSnapshot writes a MeshSnapshot as a legacy-ASCII VTK
// unstructured grid — byte-identical to WriteVTK over the Result the
// snapshot was taken from (the snapshot preserves WriteVTK's
// first-seen vertex compaction). This is the off-lease encoding path
// of the serving layer: the snapshot is copied out while the session
// lease is held, and the (much slower) text encoding happens after
// the session is already serving the next job.
func WriteVTKSnapshot(w io.Writer, s *core.MeshSnapshot) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# vtk DataFile Version 3.0")
	fmt.Fprintln(bw, "PI2M tetrahedral mesh")
	fmt.Fprintln(bw, "ASCII")
	fmt.Fprintln(bw, "DATASET UNSTRUCTURED_GRID")
	fmt.Fprintf(bw, "POINTS %d double\n", len(s.Verts))
	for _, p := range s.Verts {
		fmt.Fprintf(bw, "%g %g %g\n", p.X, p.Y, p.Z)
	}
	fmt.Fprintf(bw, "CELLS %d %d\n", len(s.Cells), 5*len(s.Cells))
	for _, c := range s.Cells {
		fmt.Fprintf(bw, "4 %d %d %d %d\n", c[0], c[1], c[2], c[3])
	}
	fmt.Fprintf(bw, "CELL_TYPES %d\n", len(s.Cells))
	for range s.Cells {
		fmt.Fprintln(bw, 10) // VTK_TETRA
	}
	if s.Labels != nil {
		fmt.Fprintf(bw, "CELL_DATA %d\n", len(s.Cells))
		fmt.Fprintln(bw, "SCALARS tissue int 1")
		fmt.Fprintln(bw, "LOOKUP_TABLE default")
		for _, l := range s.Labels {
			fmt.Fprintln(bw, int(l))
		}
	}
	return bw.Flush()
}

// RawFromSnapshot adapts a MeshSnapshot to the RawMesh shape the fem
// package consumes. Verts and Cells are shared, not copied — the
// snapshot is immutable and fem only reads them — so building a
// simulation problem from a cached snapshot costs one small labels
// slice, not a geometry copy.
func RawFromSnapshot(s *core.MeshSnapshot) *RawMesh {
	m := &RawMesh{Verts: s.Verts, Cells: s.Cells}
	if s.Labels != nil {
		m.Labels = make([]int, len(s.Labels))
		for i, l := range s.Labels {
			m.Labels[i] = int(l)
		}
	}
	return m
}

// WriteVTKSnapshotField writes the snapshot as VTK exactly like
// WriteVTKSnapshot, then appends a POINT_DATA section carrying one
// scalar field u (one value per snapshot vertex, in vertex order) —
// the encoding a simulation endpoint returns so the solved field can
// be visualized on the mesh it was computed on.
func WriteVTKSnapshotField(w io.Writer, s *core.MeshSnapshot, name string, u []float64) error {
	if len(u) != len(s.Verts) {
		return fmt.Errorf("meshio: field %q has %d values for %d vertices", name, len(u), len(s.Verts))
	}
	bw := bufio.NewWriter(w)
	if err := WriteVTKSnapshot(bw, s); err != nil {
		return err
	}
	fmt.Fprintf(bw, "POINT_DATA %d\n", len(s.Verts))
	fmt.Fprintf(bw, "SCALARS %s double 1\n", name)
	fmt.Fprintln(bw, "LOOKUP_TABLE default")
	for _, v := range u {
		fmt.Fprintf(bw, "%g\n", v)
	}
	return bw.Flush()
}

// WriteOFFSnapshot writes the snapshot's boundary triangulation as an
// OFF surface mesh, extracting the boundary from the copied geometry
// (MeshSnapshot.BoundaryTriangles) — no mesh or lease required.
func WriteOFFSnapshot(w io.Writer, s *core.MeshSnapshot) error {
	return WriteOFF(w, s.BoundaryTriangles())
}
