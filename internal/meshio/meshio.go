// Package meshio exports PI2M meshes to standard interchange formats:
// legacy VTK unstructured grids (viewable in ParaView, with tissue
// labels as cell data) and OFF surface files for the boundary
// triangulation — the artifacts behind the paper's Figures 7-9.
package meshio

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"repro/internal/arena"
	"repro/internal/delaunay"
	"repro/internal/img"
	"repro/internal/quality"
)

// WriteVTK writes the final cells as a legacy-ASCII VTK unstructured
// grid. When im is non-nil, each tetrahedron carries its tissue label
// (the label at its circumcenter) as cell data.
func WriteVTK(w io.Writer, m *delaunay.Mesh, final []arena.Handle, im *img.Image) error {
	bw := bufio.NewWriter(w)

	// Compact the vertex set to those used by final cells.
	index := make(map[arena.Handle]int)
	var order []arena.Handle
	for _, h := range final {
		c := m.Cells.At(h)
		for i := 0; i < 4; i++ {
			if _, ok := index[c.V[i]]; !ok {
				index[c.V[i]] = len(order)
				order = append(order, c.V[i])
			}
		}
	}

	fmt.Fprintln(bw, "# vtk DataFile Version 3.0")
	fmt.Fprintln(bw, "PI2M tetrahedral mesh")
	fmt.Fprintln(bw, "ASCII")
	fmt.Fprintln(bw, "DATASET UNSTRUCTURED_GRID")
	fmt.Fprintf(bw, "POINTS %d double\n", len(order))
	for _, vh := range order {
		p := m.Pos(vh)
		fmt.Fprintf(bw, "%g %g %g\n", p.X, p.Y, p.Z)
	}
	fmt.Fprintf(bw, "CELLS %d %d\n", len(final), 5*len(final))
	for _, h := range final {
		c := m.Cells.At(h)
		fmt.Fprintf(bw, "4 %d %d %d %d\n",
			index[c.V[0]], index[c.V[1]], index[c.V[2]], index[c.V[3]])
	}
	fmt.Fprintf(bw, "CELL_TYPES %d\n", len(final))
	for range final {
		fmt.Fprintln(bw, 10) // VTK_TETRA
	}
	if im != nil {
		fmt.Fprintf(bw, "CELL_DATA %d\n", len(final))
		fmt.Fprintln(bw, "SCALARS tissue int 1")
		fmt.Fprintln(bw, "LOOKUP_TABLE default")
		for _, h := range final {
			fmt.Fprintln(bw, int(im.LabelAt(m.Cells.At(h).CC)))
		}
	}
	return bw.Flush()
}

// WriteVTKFile is WriteVTK to a named file.
func WriteVTKFile(path string, m *delaunay.Mesh, final []arena.Handle, im *img.Image) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteVTK(f, m, final, im); err != nil {
		return err
	}
	return f.Sync()
}

// WriteOFF writes boundary triangles as an OFF surface mesh. Vertices
// are not deduplicated across triangles beyond exact position
// equality.
func WriteOFF(w io.Writer, tris []quality.Triangle) error {
	bw := bufio.NewWriter(w)
	type key [3]float64
	index := make(map[key]int)
	var pts []key
	id := func(x, y, z float64) int {
		k := key{x, y, z}
		if i, ok := index[k]; ok {
			return i
		}
		index[k] = len(pts)
		pts = append(pts, k)
		return len(pts) - 1
	}
	faces := make([][3]int, len(tris))
	for i, t := range tris {
		faces[i] = [3]int{
			id(t.A.X, t.A.Y, t.A.Z),
			id(t.B.X, t.B.Y, t.B.Z),
			id(t.C.X, t.C.Y, t.C.Z),
		}
	}
	fmt.Fprintln(bw, "OFF")
	fmt.Fprintf(bw, "%d %d 0\n", len(pts), len(faces))
	for _, p := range pts {
		fmt.Fprintf(bw, "%g %g %g\n", p[0], p[1], p[2])
	}
	for _, f := range faces {
		fmt.Fprintf(bw, "3 %d %d %d\n", f[0], f[1], f[2])
	}
	return bw.Flush()
}

// WriteOFFFile is WriteOFF to a named file.
func WriteOFFFile(path string, tris []quality.Triangle) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteOFF(f, tris); err != nil {
		return err
	}
	return f.Sync()
}
