package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/img"
)

func testPool(t *testing.T, n int) *Pool {
	t.Helper()
	p, err := NewPool(n, core.Config{Workers: 1, LivelockTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestPoolAffinityRouting(t *testing.T) {
	p := testPool(t, 2)
	im := img.SpherePhantom(12)

	// First run on key "a" lands somewhere and warms that session.
	l, err := p.Checkout(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if l.AffinityHit() {
		t.Error("cold pool reported an affinity hit")
	}
	if _, err := l.Run(context.Background(), im); err != nil {
		t.Fatal(err)
	}
	l.Release()

	// A checkout for the same key must be routed back to it, and the
	// run must reuse the cached distance transform (same image
	// pointer through the same session).
	l2, err := p.Checkout(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Release()
	if !l2.AffinityHit() {
		t.Error("checkout for a known key missed affinity")
	}
	if _, err := l2.Run(context.Background(), im); err != nil {
		t.Fatal(err)
	}
	if !l2.EDTHit() {
		t.Error("affinity-routed rerun did not hit the EDT cache")
	}
	if !l2.WarmRun() {
		t.Error("affinity-routed rerun was not warm")
	}

	st := p.Stats()
	if st.AffinityHits != 1 {
		t.Errorf("AffinityHits = %d, want 1", st.AffinityHits)
	}
	if st.Sessions.WarmEDTHits != 1 {
		t.Errorf("aggregated WarmEDTHits = %d, want 1", st.Sessions.WarmEDTHits)
	}
}

func TestPoolCheckoutBlocksAndDeadline(t *testing.T) {
	p := testPool(t, 1)
	l, err := p.Checkout(context.Background(), "x")
	if err != nil {
		t.Fatal(err)
	}

	// With the only session leased, a bounded checkout must time out.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := p.Checkout(ctx, "x"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("checkout on exhausted pool: err = %v, want deadline", err)
	}

	// Releasing unblocks a waiter.
	done := make(chan error, 1)
	go func() {
		l2, err := p.Checkout(context.Background(), "x")
		if err == nil {
			l2.Release()
		}
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	l.Release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("waiter failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("release did not wake the waiter")
	}
}

func TestPoolEvictIdle(t *testing.T) {
	p := testPool(t, 2)
	im := img.SpherePhantom(12)
	l, err := p.Checkout(context.Background(), "k")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Run(context.Background(), im); err != nil {
		t.Fatal(err)
	}
	l.Release()

	if n := p.EvictIdle(time.Hour); n != 0 {
		t.Fatalf("evicted %d sessions that were not idle long enough", n)
	}
	if n := p.EvictIdle(0); n != 1 {
		t.Fatalf("evicted %d sessions, want exactly the 1 that ever ran", n)
	}
	st := p.Stats()
	if st.Evictions != 1 || st.Rebuilds != 1 {
		t.Fatalf("stats after eviction: %+v", st)
	}

	// The evicted slot must serve again, cold.
	l2, err := p.Checkout(context.Background(), "k")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Release()
	if l2.AffinityHit() {
		t.Error("eviction left stale affinity behind")
	}
	res, err := l2.Run(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elements() == 0 {
		t.Fatal("rebuilt session produced an empty mesh")
	}
}

func TestPoolCloseFailsWaiters(t *testing.T) {
	p := testPool(t, 1)
	l, err := p.Checkout(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := p.Checkout(context.Background(), "")
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	p.Close()
	if err := <-done; !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("waiter got %v, want ErrPoolClosed", err)
	}
	l.Release() // lease outlives Close; releasing must not panic
	if _, err := p.Checkout(context.Background(), ""); !errors.Is(err, ErrPoolClosed) {
		t.Fatal("checkout after close succeeded")
	}
}

// TestPoolConcurrentRunners hammers a 2-session pool from 8
// goroutines; every run must succeed (leases guarantee exclusivity,
// so no ErrSessionBusy can surface). Run under -race in CI.
func TestPoolConcurrentRunners(t *testing.T) {
	p := testPool(t, 2)
	im := img.SpherePhantom(12)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l, err := p.Checkout(context.Background(), "same")
			if err != nil {
				t.Errorf("checkout: %v", err)
				return
			}
			defer l.Release()
			res, err := l.Run(context.Background(), im)
			if err != nil {
				t.Errorf("run: %v", err)
				return
			}
			if res.Elements() == 0 {
				t.Error("empty mesh")
			}
		}()
	}
	wg.Wait()
	st := p.Stats()
	if st.Sessions.Runs != 8 {
		t.Fatalf("runs = %d, want 8", st.Sessions.Runs)
	}
	if st.Sessions.BusyRejects != 0 {
		t.Fatalf("leased sessions were hit concurrently: %d busy rejects", st.Sessions.BusyRejects)
	}
}
