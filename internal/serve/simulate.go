package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/fem"
	"repro/internal/geom"
	"repro/internal/img"
	"repro/internal/meshio"
)

// SimSpec is the versioned request spec of /v1/simulate: the meshing
// knobs (a full MeshSpec — the mesh stage shares /v1/mesh's admission,
// coalescing, and cache path, keyed by the same variant), the material
// model, the boundary conditions, an optional source term, and the
// solver budget. The image travels beside it as the multipart "image"
// part.
type SimSpec struct {
	// Version is the spec revision; 0 (absent) and SpecVersion are
	// accepted.
	Version int `json:"version,omitempty"`
	// Mesh tunes the meshing stage; its Format and Timeout fields keep
	// their /v1/mesh meaning (Timeout bounds the mesh stage only — the
	// solve has its own budget under Solve.Timeout).
	Mesh MeshSpec `json:"mesh,omitempty"`
	// Format selects the response: "vtk" (default) returns the mesh
	// with the solved field as POINT_DATA plus an X-Simulate-Summary
	// header; "summary" returns the JSON summary alone.
	Format string `json:"format,omitempty"`
	// Conductivity is the per-tissue material model (nil = unit
	// conductivity everywhere).
	Conductivity *ConductivitySpec `json:"conductivity,omitempty"`
	// Dirichlet selects constrained exterior-surface vertices; at
	// least one clause is required, and together they must constrain at
	// least one vertex of the actual mesh (else 400 bad_bc).
	Dirichlet []BCSpec `json:"dirichlet"`
	// Source is the optional volumetric source term f (nil = 0).
	Source *SourceSpec `json:"source,omitempty"`
	// Solve bounds the solver.
	Solve SolveSpec `json:"solve,omitempty"`
}

// ConductivitySpec maps tissue labels to conductivities; labels
// without an entry get Default (0 = 1).
type ConductivitySpec struct {
	PerLabel map[string]float64 `json:"per_label,omitempty"`
	Default  float64            `json:"default,omitempty"`
}

// BCSpec is one Dirichlet clause: it constrains every exterior-surface
// vertex matching ALL of its predicates (absent predicates match
// everything, so an empty clause constrains the whole exterior
// boundary) to Value. Later clauses override earlier ones where they
// overlap.
type BCSpec struct {
	// Label matches vertices bounding a cell of this tissue label.
	Label *int `json:"label,omitempty"`
	// Plane matches vertices within Tol of the mesh's axis-aligned
	// bounding-box face.
	Plane *PlaneSpec `json:"plane,omitempty"`
	// Sphere matches vertices inside the ball.
	Sphere *SphereSpec `json:"sphere,omitempty"`
	// Value is the prescribed field value u = g.
	Value float64 `json:"value"`
}

// PlaneSpec selects an axis-aligned boundary slab: the vertices within
// Tol (default 0.5 world units) of the exterior surface's min or max
// coordinate along Axis.
type PlaneSpec struct {
	Axis string  `json:"axis"`          // "x", "y", or "z"
	Side string  `json:"side"`          // "min" or "max"
	Tol  float64 `json:"tol,omitempty"` // slab thickness (0 = 0.5)
}

// SphereSpec selects the boundary vertices inside a ball.
type SphereSpec struct {
	Center [3]float64 `json:"center"`
	R      float64    `json:"r"`
}

// SourceSpec is the volumetric source term f of -∇·(k∇u) = f:
// a uniform background plus an optional ball of different strength.
type SourceSpec struct {
	Uniform float64     `json:"uniform,omitempty"`
	Ball    *SourceBall `json:"ball,omitempty"`
}

// SourceBall overrides the source strength inside a ball.
type SourceBall struct {
	Center [3]float64 `json:"center"`
	R      float64    `json:"r"`
	Value  float64    `json:"value"`
}

// SolveSpec bounds the CG solve.
type SolveSpec struct {
	// Tol is the relative residual target (0 = 1e-8).
	Tol float64 `json:"tol,omitempty"`
	// MaxIter caps CG iterations (0 = 10 × unknowns).
	MaxIter int `json:"max_iter,omitempty"`
	// Timeout bounds the solve stage's wall time; it is capped by the
	// server's SolveTimeout (0 = the server's SolveTimeout).
	Timeout Duration `json:"timeout,omitempty"`
}

// ParseSimSpec decodes a JSON SimSpec strictly (unknown fields are
// errors) and validates every knob a 400 can catch before the mesh
// exists; mesh-dependent checks (does any vertex match the BCs?)
// happen after meshing and surface as bad_bc.
func ParseSimSpec(data []byte) (SimSpec, error) {
	var sp SimSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return sp, fmt.Errorf("decoding simulation spec: %v", err)
	}
	if err := sp.validate(); err != nil {
		return sp, err
	}
	return sp, nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func (sp *SimSpec) validate() error {
	if err := checkVersion(sp.Version); err != nil {
		return err
	}
	if err := sp.Mesh.validate(); err != nil {
		return fmt.Errorf("mesh: %v", err)
	}
	if sp.Format == "" {
		sp.Format = "vtk"
	}
	if sp.Format != "vtk" && sp.Format != "summary" {
		return fmt.Errorf("unknown format %q (want vtk or summary)", sp.Format)
	}
	if c := sp.Conductivity; c != nil {
		for k, v := range c.PerLabel {
			l, err := strconv.Atoi(k)
			if err != nil || l < 0 || l > 255 {
				return fmt.Errorf("bad conductivity label %q (want a decimal label 0-255)", k)
			}
			if v <= 0 || !finite(v) {
				return fmt.Errorf("bad conductivity for label %s: %g (want a positive finite number)", k, v)
			}
		}
		if c.Default < 0 || !finite(c.Default) {
			return fmt.Errorf("bad conductivity default %g", c.Default)
		}
	}
	if len(sp.Dirichlet) == 0 {
		return fmt.Errorf("no dirichlet clauses: a well-posed problem needs at least one boundary condition")
	}
	for i, bc := range sp.Dirichlet {
		if !finite(bc.Value) {
			return fmt.Errorf("dirichlet %d: non-finite value", i)
		}
		if bc.Label != nil && (*bc.Label < 0 || *bc.Label > 255) {
			return fmt.Errorf("dirichlet %d: bad label %d", i, *bc.Label)
		}
		if p := bc.Plane; p != nil {
			if p.Axis != "x" && p.Axis != "y" && p.Axis != "z" {
				return fmt.Errorf("dirichlet %d: bad plane axis %q (want x, y, or z)", i, p.Axis)
			}
			if p.Side != "min" && p.Side != "max" {
				return fmt.Errorf("dirichlet %d: bad plane side %q (want min or max)", i, p.Side)
			}
			if p.Tol < 0 || !finite(p.Tol) {
				return fmt.Errorf("dirichlet %d: bad plane tol %g", i, p.Tol)
			}
		}
		if sph := bc.Sphere; sph != nil {
			if sph.R <= 0 || !finite(sph.R) {
				return fmt.Errorf("dirichlet %d: bad sphere r=%g", i, sph.R)
			}
			for _, c := range sph.Center {
				if !finite(c) {
					return fmt.Errorf("dirichlet %d: non-finite sphere center", i)
				}
			}
		}
	}
	if src := sp.Source; src != nil {
		if !finite(src.Uniform) {
			return fmt.Errorf("bad source uniform %g", src.Uniform)
		}
		if b := src.Ball; b != nil {
			if b.R <= 0 || !finite(b.R) || !finite(b.Value) {
				return fmt.Errorf("bad source ball (r=%g, value=%g)", b.R, b.Value)
			}
			for _, c := range b.Center {
				if !finite(c) {
					return fmt.Errorf("non-finite source ball center")
				}
			}
		}
	}
	if sp.Solve.Tol < 0 || !finite(sp.Solve.Tol) {
		return fmt.Errorf("bad solve tol %g", sp.Solve.Tol)
	}
	if sp.Solve.MaxIter < 0 {
		return fmt.Errorf("bad solve max_iter %d", sp.Solve.MaxIter)
	}
	if sp.Solve.Timeout < 0 {
		return fmt.Errorf("bad solve timeout %v", time.Duration(sp.Solve.Timeout))
	}
	return nil
}

// SimSummary is the JSON summary a simulation answers with — in the
// body for format=summary, in the X-Simulate-Summary header beside the
// VTK field otherwise.
type SimSummary struct {
	ImageKey            string      `json:"image_key"`
	Variant             string      `json:"variant,omitempty"`
	CacheHit            bool        `json:"cache_hit,omitempty"`
	Coalesced           bool        `json:"coalesced,omitempty"`
	Vertices            int         `json:"vertices"`
	Cells               int         `json:"cells"`
	ConstrainedVertices int         `json:"constrained_vertices"`
	Iterations          int         `json:"iterations"`
	Residual            float64     `json:"residual"`
	FieldMin            float64     `json:"field_min"`
	FieldMax            float64     `json:"field_max"`
	SolveSeconds        float64     `json:"solve_seconds"`
	Quality             MeshQuality `json:"quality"`
}

// MeshQuality digests the snapshot's element quality: the worst
// radius-edge ratio (rule R4 bounds it at 2 on non-degraded runs) and
// the smallest dihedral angle.
type MeshQuality struct {
	MaxRadiusEdge  float64 `json:"max_radius_edge"`
	MinDihedralDeg float64 `json:"min_dihedral_deg"`
}

// snapshotQuality measures the mesh the field was solved on; it runs
// off-lease over the immutable snapshot.
func snapshotQuality(s *core.MeshSnapshot) MeshQuality {
	q := MeshQuality{MinDihedralDeg: 180}
	for _, c := range s.Cells {
		a, b, cc, d := s.Verts[c[0]], s.Verts[c[1]], s.Verts[c[2]], s.Verts[c[3]]
		if re := geom.RadiusEdgeRatio(a, b, cc, d); re > q.MaxRadiusEdge {
			q.MaxRadiusEdge = re
		}
		for _, ang := range geom.DihedralAngles(a, b, cc, d) {
			if ang < q.MinDihedralDeg {
				q.MinDihedralDeg = ang
			}
		}
	}
	return q
}

// specError is a mesh-dependent spec failure discovered after the mesh
// stage (e.g. boundary conditions that constrain nothing): still the
// client's fault, answered 400 with a specific code.
type specError struct {
	code string
	msg  string
}

func (e *specError) Error() string { return e.msg }

// dirichletFromSpec resolves the spec's clauses against the snapshot's
// exterior surface. Later clauses override earlier ones; the result
// must constrain at least one vertex.
func dirichletFromSpec(snap *core.MeshSnapshot, bcs []BCSpec) (map[int32]float64, error) {
	verts, labels := snap.ExteriorVertices()
	if len(verts) == 0 {
		return nil, &specError{code: CodeBadBC, msg: "mesh has no exterior surface"}
	}
	// Bounding box of the exterior surface, for plane predicates.
	lo := snap.Verts[verts[0]]
	hi := lo
	for _, v := range verts[1:] {
		p := snap.Verts[v]
		lo.X, lo.Y, lo.Z = math.Min(lo.X, p.X), math.Min(lo.Y, p.Y), math.Min(lo.Z, p.Z)
		hi.X, hi.Y, hi.Z = math.Max(hi.X, p.X), math.Max(hi.Y, p.Y), math.Max(hi.Z, p.Z)
	}
	axis := func(p geom.Vec3, name string) float64 {
		switch name {
		case "x":
			return p.X
		case "y":
			return p.Y
		default:
			return p.Z
		}
	}
	out := make(map[int32]float64)
	for _, bc := range bcs {
		for _, v := range verts {
			p := snap.Verts[v]
			if bc.Label != nil {
				if !containsIntLabel(labels[v], img.Label(*bc.Label)) {
					continue
				}
			}
			if pl := bc.Plane; pl != nil {
				tol := pl.Tol
				if tol == 0 {
					tol = 0.5
				}
				c := axis(p, pl.Axis)
				if pl.Side == "min" {
					if c > axis(lo, pl.Axis)+tol {
						continue
					}
				} else if c < axis(hi, pl.Axis)-tol {
					continue
				}
			}
			if sph := bc.Sphere; sph != nil {
				center := geom.Vec3{X: sph.Center[0], Y: sph.Center[1], Z: sph.Center[2]}
				if p.Dist(center) > sph.R {
					continue
				}
			}
			out[v] = bc.Value
		}
	}
	if len(out) == 0 {
		return nil, &specError{code: CodeBadBC,
			msg: "dirichlet clauses constrain no vertex of the meshed surface"}
	}
	return out, nil
}

func containsIntLabel(ls []img.Label, l img.Label) bool {
	for _, x := range ls {
		if x == l {
			return true
		}
	}
	return false
}

// sourceFunc compiles the spec's source term; nil means f = 0.
func (src *SourceSpec) sourceFunc() func(geom.Vec3) float64 {
	if src == nil || (src.Uniform == 0 && src.Ball == nil) {
		return nil
	}
	uniform := src.Uniform
	ball := src.Ball
	return func(p geom.Vec3) float64 {
		if ball != nil {
			center := geom.Vec3{X: ball.Center[0], Y: ball.Center[1], Z: ball.Center[2]}
			if p.Dist(center) <= ball.R {
				return ball.Value
			}
		}
		return uniform
	}
}

// solveBudget derives the solve stage's wall-time budget: the spec's
// ask, capped by the server's SolveTimeout (a hostile spec must not
// reserve unbounded solver time).
func (s *Server) solveBudget(spec *SimSpec) time.Duration {
	budget := time.Duration(spec.Solve.Timeout)
	if budget <= 0 || budget > s.cfg.SolveTimeout {
		budget = s.cfg.SolveTimeout
	}
	return budget
}

// runSolve assembles and solves the spec's problem on the snapshot,
// supervised like a meshing run: the solve runs under a deadline
// (budget), CG observes it cooperatively every few iterations, and a
// solve that somehow ignores cancellation past WatchdogGrace is
// abandoned to its goroutine with ErrWatchdog rather than wedging the
// request forever. Everything runs off-lease — the mesh session was
// released before this function is called.
func (s *Server) runSolve(ctx context.Context, snap *core.MeshSnapshot, spec *SimSpec) (*fem.Solution, map[int32]float64, error) {
	dirichlet, err := dirichletFromSpec(snap, spec.Dirichlet)
	if err != nil {
		return nil, nil, err
	}
	raw := meshio.RawFromSnapshot(snap)
	var byLabel map[int]float64
	def := 0.0
	if c := spec.Conductivity; c != nil {
		def = c.Default
		byLabel = make(map[int]float64, len(c.PerLabel))
		for k, v := range c.PerLabel {
			l, _ := strconv.Atoi(k)
			byLabel[l] = v
		}
	}
	conductivity, err := fem.ConductivityFromLabels(raw, byLabel, def)
	if err != nil {
		return nil, nil, &specError{code: CodeBadRequest, msg: err.Error()}
	}

	budget := s.solveBudget(spec)
	solveCtx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()

	type outcome struct {
		sol *fem.Solution
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		sys, err := fem.Assemble(&fem.Problem{
			Mesh:         raw,
			Conductivity: conductivity,
			Source:       spec.Source.sourceFunc(),
			Dirichlet:    dirichlet,
		})
		if err != nil {
			done <- outcome{nil, err}
			return
		}
		sol, err := sys.SolveCtx(solveCtx, fem.SolveOptions{
			Tol:     spec.Solve.Tol,
			MaxIter: spec.Solve.MaxIter,
		})
		done <- outcome{sol, err}
	}()

	grace := s.cfg.WatchdogGrace
	timer := time.NewTimer(budget + grace)
	defer timer.Stop()
	select {
	case o := <-done:
		if o.err != nil {
			return nil, nil, o.err
		}
		// A solve that converged right at the deadline still answers:
		// the field is complete and the caller is still listening.
		return o.sol, dirichlet, nil
	case <-timer.C:
		// The solve ignored its deadline past the grace window —
		// assembly wedged or the context checks stopped firing. Abandon
		// the goroutine (it holds only heap memory, no session) and
		// fail the request like a watchdogged run.
		return nil, nil, fmt.Errorf("%w: solve exceeded %v and ignored cancellation for %v",
			ErrWatchdog, budget, grace)
	}
}

// handleSimulate is POST /v1/simulate: a multipart request ("spec"
// JSON + "image" NRRD) is meshed through the exact pipeline /v1/mesh
// uses — same admission, coalescing, persistent cache, and supervision;
// a cached or coalesced mesh skips straight to the solve — then the
// FEM problem is assembled and solved off-lease under its own budget,
// and the field returns as VTK POINT_DATA with a JSON summary.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	outcome := func(o string) { s.mSimJobs.With(o).Inc() }

	specJSON, body, err := readSpecRequest(w, r, s.cfg.MaxRequestBytes)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			outcome("bad_request")
			httpError(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
				"request body exceeds the %d byte cap", s.cfg.MaxRequestBytes)
			return
		}
		outcome("bad_request")
		httpError(w, http.StatusBadRequest, CodeBadRequest, "reading body: %v", err)
		return
	}
	if specJSON == nil {
		outcome("bad_request")
		httpError(w, http.StatusBadRequest, CodeBadRequest,
			"missing %q part: POST /v1/simulate takes multipart/form-data with a JSON spec and an NRRD image", "spec")
		return
	}
	if len(body) == 0 {
		outcome("bad_request")
		httpError(w, http.StatusBadRequest, CodeBadRequest, "empty %q part: expected an NRRD label image", "image")
		return
	}
	spec, err := ParseSimSpec(specJSON)
	if err != nil {
		outcome("bad_request")
		httpError(w, http.StatusBadRequest, CodeBadRequest, "bad simulation spec: %v", err)
		return
	}

	key := ImageKey(body)
	variant := spec.Mesh.variant()
	image, err := s.decodeImage(key, body)
	if err != nil {
		outcome("bad_request")
		httpError(w, http.StatusBadRequest, CodeBadRequest, "decoding image: %v", err)
		return
	}

	// Mesh stage: identical to /v1/mesh, including the per-stage
	// timeout. A concurrent simulate (or mesh) request for the same
	// (image, variant) shares the run; a cached mesh skips it entirely.
	meshCtx := r.Context()
	if spec.Mesh.Timeout > 0 {
		var cancel context.CancelFunc
		meshCtx, cancel = context.WithTimeout(meshCtx, time.Duration(spec.Mesh.Timeout))
		defer cancel()
	}
	sr, err := s.MeshSnapshot(meshCtx, key, variant, image, spec.Mesh.tune())
	if err != nil {
		outcome("mesh_failed")
		s.writeMeshError(w, err)
		return
	}

	// Solve stage, off-lease and supervised under its own budget.
	solveStart := time.Now()
	sol, dirichlet, err := s.runSolve(r.Context(), sr.Snapshot, &spec)
	solveSecs := time.Since(solveStart).Seconds()
	if err != nil {
		var se *specError
		switch {
		case errors.As(err, &se):
			outcome("bad_bc")
			httpError(w, http.StatusBadRequest, se.code, "%v", se)
		case errors.Is(err, ErrWatchdog):
			outcome("watchdog")
			s.setRetryAfter(w)
			httpError(w, http.StatusServiceUnavailable, CodeWatchdog, "%v", err)
		case errors.Is(err, context.Canceled):
			outcome("canceled")
			httpError(w, StatusClientClosedRequest, CodeCanceled, "solve canceled: %v", err)
		case errors.Is(err, context.DeadlineExceeded):
			outcome("deadline")
			s.setRetryAfter(w)
			httpError(w, http.StatusServiceUnavailable, CodeDeadline,
				"solve exceeded its %v budget: %v", s.solveBudget(&spec), err)
		default:
			outcome("solve_failed")
			httpError(w, http.StatusInternalServerError, CodeSolveFailed, "solve failed: %v", err)
		}
		return
	}
	outcome("ok")
	s.mSolveSeconds.Observe(solveSecs)
	s.mSolveIters.Observe(float64(sol.Iterations))

	summary := SimSummary{
		ImageKey:            key,
		Variant:             variant,
		CacheHit:            sr.Summary.CacheHit,
		Coalesced:           sr.Summary.Coalesced,
		Vertices:            len(sr.Snapshot.Verts),
		Cells:               len(sr.Snapshot.Cells),
		ConstrainedVertices: len(dirichlet),
		Iterations:          sol.Iterations,
		Residual:            sol.Residual,
		SolveSeconds:        solveSecs,
		Quality:             snapshotQuality(sr.Snapshot),
	}
	summary.FieldMin, summary.FieldMax = math.Inf(1), math.Inf(-1)
	for _, u := range sol.U {
		summary.FieldMin = math.Min(summary.FieldMin, u)
		summary.FieldMax = math.Max(summary.FieldMax, u)
	}

	if spec.Format == "summary" {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(summary)
		return
	}
	compact, _ := json.Marshal(summary)
	w.Header().Set("X-Simulate-Summary", string(compact))
	w.Header().Set("Content-Type", "text/vtk")
	meshio.WriteVTKSnapshotField(w, sr.Snapshot, "u", sol.U)
}
