package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/img"
)

// Admission and execution errors; the HTTP layer maps them to status
// codes (queue full → 429, draining/deadline → 503, bad input → 400).
var (
	// ErrQueueFull rejects a job because the wait queue is at capacity
	// (or the QueueFull fault point fired).
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining rejects a job because the server is shutting down.
	ErrDraining = errors.New("serve: server draining")
	// ErrDeadline rejects a job whose deadline expired before a
	// session became available.
	ErrDeadline = errors.New("serve: deadline expired before a session was available")
)

// Config parameterizes a Server.
type Config struct {
	// PoolSize is the number of warm sessions — the run concurrency
	// ceiling (default 2).
	PoolSize int
	// QueueDepth is the maximum number of admitted jobs waiting for a
	// session beyond the ones running; one more is rejected with
	// ErrQueueFull (default 16).
	QueueDepth int
	// DefaultTimeout caps a job's total time (queue wait + run) when
	// the request does not carry its own deadline (default 60s).
	DefaultTimeout time.Duration
	// MaxRequestBytes caps the request body the HTTP layer will read
	// (default 64 MiB).
	MaxRequestBytes int64
	// ImageCacheSize is the number of parsed input images retained by
	// content hash, so a repeated identical request reuses the same
	// *img.Image pointer and can hit the session's distance-transform
	// cache (default 8, 0 keeps the default; negative disables).
	ImageCacheSize int
	// Session is the configuration template every pool session runs
	// with. Its Image and Context fields are ignored.
	Session core.Config
}

func (c Config) withDefaults() Config {
	if c.PoolSize <= 0 {
		c.PoolSize = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 64 << 20
	}
	if c.ImageCacheSize == 0 {
		c.ImageCacheSize = 8
	}
	return c
}

// Server multiplexes mesh jobs over a session Pool with bounded
// queueing, per-job deadlines, metrics, and graceful drain. Create
// one with NewServer, expose it with Handler, stop it with Drain.
type Server struct {
	cfg   Config
	pool  *Pool
	start time.Time

	waiting  atomic.Int64 // admitted jobs blocked in Checkout
	inflight sync.WaitGroup
	draining atomic.Bool

	imgCache struct {
		sync.Mutex
		m     map[string]*img.Image
		order []string // FIFO eviction
	}

	// Metrics (the catalogue documented in DESIGN.md "Serving layer").
	reg           *Registry
	mRequests     *CounterVec // pi2md_http_requests_total{code}
	mAccepted     *Counter
	mCompleted    *Counter
	mFailed       *Counter
	mRejected     *CounterVec // pi2md_jobs_rejected_total{reason}
	mQueueWait    *Histogram
	mRunSeconds   *Histogram
	mCells        *Counter
	mCellsPerSec  *Gauge
	mRollbacks    *Counter
	mDegraded     *Counter
	mAborted      *Counter
	mTransitions  *Counter
	mEDTHits      *Counter
	mWarmRuns     *Counter
	mAffinityHits *Counter
	mImgCacheHit  *Counter
	mImgCacheMiss *Counter
	mEvictions    *Counter

	// lastRuns is a ring of recent run summaries for /v1/stats.
	lastMu   sync.Mutex
	lastRuns []JobSummary
}

// JobSummary is one served job in /v1/stats' recent-runs ring.
type JobSummary struct {
	ImageKey    string          `json:"image_key"`
	QueueWaitMs float64         `json:"queue_wait_ms"`
	EDTCacheHit bool            `json:"edt_cache_hit"`
	WarmRun     bool            `json:"warm_run"`
	Run         core.RunSummary `json:"run"`
}

// NewServer validates the configuration, builds the pool and wires
// the metrics registry.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	pool, err := NewPool(cfg.PoolSize, cfg.Session)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, pool: pool, start: time.Now(), reg: NewRegistry()}
	s.imgCache.m = make(map[string]*img.Image)

	r := s.reg
	s.mRequests = r.CounterVec("pi2md_http_requests_total",
		"HTTP requests served, by status code.", "code")
	s.mAccepted = r.Counter("pi2md_jobs_accepted_total",
		"Mesh jobs admitted past the queue-depth check.")
	s.mCompleted = r.Counter("pi2md_jobs_completed_total",
		"Mesh jobs that produced a mesh (completed or degraded runs).")
	s.mFailed = r.Counter("pi2md_jobs_failed_total",
		"Admitted mesh jobs that ended without a mesh (aborts, run errors).")
	s.mRejected = r.CounterVec("pi2md_jobs_rejected_total",
		"Mesh jobs rejected by admission control, by reason.", "reason")
	r.GaugeFunc("pi2md_queue_depth",
		"Admitted jobs currently waiting for a session.",
		func() float64 { return float64(s.waiting.Load()) })
	r.GaugeFunc("pi2md_pool_sessions",
		"Sessions in the pool.",
		func() float64 { return float64(s.pool.Size()) })
	r.GaugeFunc("pi2md_pool_busy_sessions",
		"Sessions currently leased to a running job.",
		func() float64 { return float64(s.pool.Stats().Busy) })
	s.mQueueWait = r.Histogram("pi2md_queue_wait_seconds",
		"Time admitted jobs spent waiting for a session.",
		[]float64{0.001, 0.005, 0.02, 0.1, 0.5, 2, 10, 30})
	s.mRunSeconds = r.Histogram("pi2md_run_seconds",
		"Wall time of the meshing run itself.",
		[]float64{0.01, 0.05, 0.2, 1, 5, 20, 60})
	s.mCells = r.Counter("pi2md_cells_total",
		"Tetrahedra generated across all completed jobs.")
	s.mCellsPerSec = r.Gauge("pi2md_cells_per_second",
		"Generation rate of the most recent completed job.")
	s.mRollbacks = r.Counter("pi2md_rollbacks_total",
		"Speculative-operation rollbacks across all runs.")
	s.mDegraded = r.Counter("pi2md_degraded_runs_total",
		"Runs that completed through the failure-handling ladder.")
	s.mAborted = r.Counter("pi2md_aborted_runs_total",
		"Runs that aborted (cancellation, panic budget, livelock).")
	s.mTransitions = r.Counter("pi2md_degradation_transitions_total",
		"Failure-handling transitions recorded across all runs.")
	s.mEDTHits = r.Counter("pi2md_edt_cache_hits_total",
		"Runs that reused a session's cached distance transform.")
	s.mWarmRuns = r.Counter("pi2md_warm_runs_total",
		"Runs that reused a session's warm arenas.")
	s.mAffinityHits = r.Counter("pi2md_pool_affinity_hits_total",
		"Checkouts routed to the session that last ran the same image.")
	s.mImgCacheHit = r.Counter("pi2md_image_cache_hits_total",
		"Request bodies whose parsed image was served from the cache.")
	s.mImgCacheMiss = r.Counter("pi2md_image_cache_misses_total",
		"Request bodies that had to be parsed.")
	s.mEvictions = r.Counter("pi2md_pool_evictions_total",
		"Idle sessions evicted to release their retained memory.")
	return s, nil
}

// Registry exposes the metrics registry (for /metrics and tests).
func (s *Server) Registry() *Registry { return s.reg }

// Pool exposes the session pool (for stats and eviction janitors).
func (s *Server) Pool() *Pool { return s.pool }

// EvictIdle evicts pool sessions idle longer than maxIdle, recording
// the evictions in the metrics. See Pool.EvictIdle.
func (s *Server) EvictIdle(maxIdle time.Duration) int {
	n := s.pool.EvictIdle(maxIdle)
	s.mEvictions.Add(int64(n))
	return n
}

// ImageKey is the image identity used for session affinity and the
// parsed-image cache: a content hash of the serialized input.
func ImageKey(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:8])
}

// decodeImage parses body as NRRD through the cache: a repeated
// identical body returns the previously parsed *img.Image, giving the
// leased session a chance to reuse its cached distance transform
// (which is keyed by image pointer identity).
func (s *Server) decodeImage(key string, body []byte) (*img.Image, error) {
	if s.cfg.ImageCacheSize > 0 {
		s.imgCache.Lock()
		im, ok := s.imgCache.m[key]
		s.imgCache.Unlock()
		if ok {
			s.mImgCacheHit.Inc()
			return im, nil
		}
	}
	s.mImgCacheMiss.Inc()
	im, err := img.ReadNRRD(bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if s.cfg.ImageCacheSize > 0 {
		s.imgCache.Lock()
		if _, dup := s.imgCache.m[key]; !dup {
			for len(s.imgCache.order) >= s.cfg.ImageCacheSize {
				oldest := s.imgCache.order[0]
				s.imgCache.order = s.imgCache.order[1:]
				delete(s.imgCache.m, oldest)
			}
			s.imgCache.m[key] = im
			s.imgCache.order = append(s.imgCache.order, key)
		} else {
			im = s.imgCache.m[key] // lost a parse race; converge on one pointer
		}
		s.imgCache.Unlock()
	}
	return im, nil
}

// JobResult is the outcome Mesh hands back: the run plus the serving
// metadata a response encoder or stats consumer needs. Its Result
// (and the mesh inside) is only valid until the lease's session runs
// again, so Mesh extracts/encodes before releasing.
type JobResult struct {
	Summary JobSummary
	Result  *core.Result
}

// Mesh runs one image-to-mesh job under admission control: a
// queue-depth check, a bounded wait for a pool session (with image
// affinity), the run itself under the job deadline, and metrics
// accounting. tune, when non-nil, applies per-request quality knobs
// on top of the pool's session template (core.Session.RunTuned).
// encode, when non-nil, is called with the Result while the lease is
// still held — the only window in which the mesh may be read safely.
func (s *Server) Mesh(ctx context.Context, key string, image *img.Image, tune func(*core.Config), encode func(*core.Result) error) (*JobResult, error) {
	if s.draining.Load() {
		s.mRejected.With("draining").Inc()
		return nil, ErrDraining
	}
	// Admission: bounded queue. The waiting counter is incremented
	// optimistically so concurrent arrivals see each other.
	if n := s.waiting.Add(1); n > int64(s.cfg.QueueDepth) || faultinject.Fire(faultinject.QueueFull) {
		s.waiting.Add(-1)
		s.mRejected.With("queue_full").Inc()
		return nil, ErrQueueFull
	}
	s.mAccepted.Inc()
	s.inflight.Add(1)
	defer s.inflight.Done()

	if ctx == nil {
		ctx = context.Background()
	}
	jctx := ctx
	if _, has := ctx.Deadline(); !has {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(ctx, s.cfg.DefaultTimeout)
		defer cancel()
	}

	waitStart := time.Now()
	lease, err := s.pool.Checkout(jctx, key)
	s.waiting.Add(-1)
	wait := time.Since(waitStart)
	s.mQueueWait.Observe(wait.Seconds())
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.mRejected.With("deadline").Inc()
			return nil, fmt.Errorf("%w: %v", ErrDeadline, err)
		}
		s.mRejected.With("pool_closed").Inc()
		return nil, err
	}
	defer lease.Release()

	// Injectable stall between checkout and run: everyone queued
	// behind this session now waits longer (degradation under load).
	faultinject.Sleep(faultinject.SlowSession)

	runStart := time.Now()
	res, err := lease.RunTuned(jctx, image, tune)
	s.mRunSeconds.Observe(time.Since(runStart).Seconds())
	if err != nil {
		s.mFailed.Inc()
		return nil, fmt.Errorf("serve: run: %w", err)
	}

	if lease.AffinityHit() {
		s.mAffinityHits.Inc()
	}
	if lease.EDTHit() {
		s.mEDTHits.Inc()
	}
	if lease.WarmRun() {
		s.mWarmRuns.Inc()
	}
	sum := res.Summary()
	s.mRollbacks.Add(sum.Rollbacks)
	s.mTransitions.Add(int64(sum.Transitions))
	switch res.Status {
	case core.StatusAborted:
		s.mAborted.Inc()
		s.mFailed.Inc()
		return nil, fmt.Errorf("serve: run aborted: %w", res.Err())
	case core.StatusDegraded:
		s.mDegraded.Inc()
	}
	s.mCompleted.Inc()
	s.mCells.Add(int64(sum.Elements))
	s.mCellsPerSec.Set(int64(sum.CellsPerSec))

	jr := &JobResult{
		Summary: JobSummary{
			ImageKey:    key,
			QueueWaitMs: float64(wait) / 1e6,
			EDTCacheHit: lease.EDTHit(),
			WarmRun:     lease.WarmRun(),
			Run:         sum,
		},
		Result: res,
	}
	s.lastMu.Lock()
	s.lastRuns = append(s.lastRuns, jr.Summary)
	if len(s.lastRuns) > 16 {
		s.lastRuns = s.lastRuns[len(s.lastRuns)-16:]
	}
	s.lastMu.Unlock()

	if encode != nil {
		if err := encode(res); err != nil {
			return jr, fmt.Errorf("serve: encoding result: %w", err)
		}
	}
	return jr, nil
}

// Stats is the /v1/stats document.
type Stats struct {
	UptimeSeconds float64      `json:"uptime_seconds"`
	Draining      bool         `json:"draining"`
	QueueDepth    int64        `json:"queue_depth"`
	QueueCapacity int          `json:"queue_capacity"`
	Accepted      int64        `json:"jobs_accepted"`
	Completed     int64        `json:"jobs_completed"`
	Failed        int64        `json:"jobs_failed"`
	RejectedFull  int64        `json:"jobs_rejected_queue_full"`
	RejectedDL    int64        `json:"jobs_rejected_deadline"`
	Pool          PoolStats    `json:"pool"`
	RecentRuns    []JobSummary `json:"recent_runs"`
}

// Stats snapshots the serving counters for /v1/stats.
func (s *Server) Stats() Stats {
	s.lastMu.Lock()
	recent := append([]JobSummary(nil), s.lastRuns...)
	s.lastMu.Unlock()
	return Stats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Draining:      s.draining.Load(),
		QueueDepth:    s.waiting.Load(),
		QueueCapacity: s.cfg.QueueDepth,
		Accepted:      s.mAccepted.Value(),
		Completed:     s.mCompleted.Value(),
		Failed:        s.mFailed.Value(),
		RejectedFull:  s.mRejected.Value("queue_full"),
		RejectedDL:    s.mRejected.Value("deadline"),
		Pool:          s.pool.Stats(),
		RecentRuns:    recent,
	}
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully shuts the server down: new jobs are rejected with
// ErrDraining, in-flight jobs run to completion (bounded by ctx), and
// the pool is closed. It returns ctx.Err() if the wait was cut short
// (the pool is closed regardless).
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var err error
	if ctx == nil {
		<-done
	} else {
		select {
		case <-done:
		case <-ctx.Done():
			err = ctx.Err()
		}
	}
	s.pool.Close()
	return err
}
