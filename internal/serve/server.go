package serve

import (
	"bytes"
	"container/list"
	"context"
	cryptorand "crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cachestore"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/img"
)

// Admission and execution errors; the HTTP layer maps them to status
// codes (queue full → 429, draining/deadline → 503, caller
// cancellation → 499, bad input → 400).
var (
	// ErrQueueFull rejects a job because the wait queue is at capacity
	// (or the QueueFull fault point fired).
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining rejects a job because the server is shutting down.
	ErrDraining = errors.New("serve: server draining")
	// ErrDeadline rejects a job whose deadline expired before a
	// session became available.
	ErrDeadline = errors.New("serve: deadline expired before a session was available")
	// ErrCanceled rejects a job whose caller canceled it before a
	// session became available. Unlike ErrDeadline this is not a
	// server-capacity signal: the client went away, so the HTTP layer
	// answers 499 without a Retry-After.
	ErrCanceled = errors.New("serve: canceled by the caller before a session was available")
	// ErrWatchdog fails a job whose run exceeded the runaway-run
	// watchdog's limit and then ignored cancellation past the grace
	// window; its session was abandoned and quarantined rather than
	// leaked. The HTTP layer answers 503 with a Retry-After.
	ErrWatchdog = errors.New("serve: run abandoned by the runaway-run watchdog")
)

// StatusClientClosedRequest is nginx's non-standard 499: the client
// canceled the request before the server could answer.
const StatusClientClosedRequest = 499

// Config parameterizes a Server.
type Config struct {
	// PoolSize is the number of warm sessions — the run concurrency
	// ceiling (default 2).
	PoolSize int
	// QueueDepth is the maximum number of admitted jobs waiting for a
	// session beyond the ones running; one more is rejected with
	// ErrQueueFull (default 16). A job that finds a free session is
	// admitted without counting against the queue.
	QueueDepth int
	// DefaultTimeout caps a job's total time (queue wait + run) when
	// the request does not carry its own deadline (default 60s).
	DefaultTimeout time.Duration
	// MaxRequestBytes caps the request body the HTTP layer will read
	// (default 64 MiB).
	MaxRequestBytes int64
	// ImageCacheSize is the number of parsed input images retained by
	// content hash, so a repeated identical request reuses the same
	// *img.Image pointer and can hit the session's distance-transform
	// cache (default 8, 0 keeps the default; negative disables).
	ImageCacheSize int
	// ImageCacheBytes is the byte budget for the parsed-image cache —
	// the same LRU-by-bytes discipline as the persistent result cache,
	// accounting one byte per voxel. Eviction frees the least recently
	// used image first (default 256 MiB, 0 keeps the default; negative
	// disables the cache).
	ImageCacheBytes int64
	// Cache is the optional persistent result cache. When set, a
	// (image, variant) pair already stored is served from disk without
	// consuming a pool session or consulting breakers, every completed
	// leader run is persisted off-lease, and boot warm-starts pool
	// affinity and breaker priors from the recovered index.
	Cache *cachestore.Store
	// CoalesceMax caps how many jobs may share one meshing run via
	// single-flight coalescing, including the leader. A job whose
	// coalesce key (image key + tuning variant) matches a job already
	// queued or running subscribes to that job's snapshot instead of
	// consuming a pool session. 0 selects the default (32); 1 disables
	// coalescing; negative values are treated as 1.
	CoalesceMax int
	// SuspectThreshold is how many consecutive suspect runs (degraded
	// outcomes, recovered panics, run errors) quarantine a session for
	// an asynchronous rebuild (default 3). A run that panics or aborts
	// for non-caller reasons quarantines its session immediately.
	SuspectThreshold int
	// BreakerThreshold is how many consecutive leader failures for one
	// (image, variant) coalesce key trip that key's circuit breaker,
	// fast-failing the key with 503 + Retry-After while healthy keys
	// flow. 0 selects the default (3); negative disables breakers.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker fast-fails its key
	// before admitting a single half-open probe (default 5s).
	BreakerCooldown time.Duration
	// WatchdogFactor bounds a run's wall time at factor × its deadline
	// budget, tightened toward factor × the observed run p99 once
	// enough history accumulates — but never below the deadline the
	// caller agreed to. A run exceeding the limit is canceled; one that
	// ignores cancellation past WatchdogGrace has its session
	// quarantined instead of leaked. 0 selects the default (4);
	// values in (0,1) clamp to 1; negative disables the watchdog.
	WatchdogFactor float64
	// WatchdogGrace is how long a watchdog-canceled run may keep
	// running before its session is abandoned (default 2s).
	WatchdogGrace time.Duration
	// SolveTimeout caps the solve stage of a /v1/simulate job — the
	// ceiling a request's own solve budget is clamped to (default 30s).
	// The solve runs off-lease, so this bounds goroutine and CPU time,
	// not session occupancy.
	SolveTimeout time.Duration
	// Brownout enables the adaptive quality-brownout controller: under
	// queue or deadline pressure, /v1/mesh requests are rewritten to a
	// degraded quality tier (cached under their own honest variant key,
	// stamped X-Pi2md-Brownout) instead of being rejected. Disabled by
	// default; the daemon enables it with -brownout.
	Brownout bool
	// BrownoutLadder is the degradation ladder the controller walks
	// (nil = DefaultBrownoutLadder when Brownout is set).
	BrownoutLadder []BrownoutTier
	// BrownoutHold is how long load must stay calm before the
	// controller steps back up one quality tier — the de-escalation
	// hysteresis (default 5s).
	BrownoutHold time.Duration
	// Session is the configuration template every pool session runs
	// with. Its Image and Context fields are ignored.
	Session core.Config
}

func (c Config) withDefaults() Config {
	if c.PoolSize <= 0 {
		c.PoolSize = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 64 << 20
	}
	if c.ImageCacheSize == 0 {
		c.ImageCacheSize = 8
	}
	if c.ImageCacheBytes == 0 {
		c.ImageCacheBytes = 256 << 20
	}
	if c.CoalesceMax == 0 {
		c.CoalesceMax = 32
	}
	if c.CoalesceMax < 1 {
		c.CoalesceMax = 1
	}
	if c.SuspectThreshold <= 0 {
		c.SuspectThreshold = 3
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.WatchdogFactor == 0 {
		c.WatchdogFactor = 4
	} else if c.WatchdogFactor > 0 && c.WatchdogFactor < 1 {
		c.WatchdogFactor = 1
	}
	if c.WatchdogGrace <= 0 {
		c.WatchdogGrace = 2 * time.Second
	}
	if c.SolveTimeout <= 0 {
		c.SolveTimeout = 30 * time.Second
	}
	if c.Brownout {
		if c.BrownoutLadder == nil {
			c.BrownoutLadder = DefaultBrownoutLadder()
		}
		if c.BrownoutHold <= 0 {
			c.BrownoutHold = 5 * time.Second
		}
	}
	return c
}

// Server multiplexes mesh jobs over a session Pool with bounded
// queueing, per-job deadlines, single-flight coalescing, metrics, and
// graceful drain. Create one with NewServer, expose it with Handler,
// stop it with Drain.
type Server struct {
	cfg   Config
	pool  *Pool
	cache *cachestore.Store
	start time.Time

	// nodeID is this process's stable serving identity: random at boot,
	// surfaced in /v1/stats and on every response as X-Pi2md-Node, so a
	// router (or an operator) can verify shard affinity end to end.
	nodeID string

	waiting  atomic.Int64 // admitted jobs blocked in Checkout
	inflight sync.WaitGroup
	draining atomic.Bool

	// flights is the single-flight table: one entry per in-progress
	// (image key, tuning variant) pair; followers subscribe instead of
	// consuming a session. breakers shares flightMu: both tables decide
	// who may lead a run for a coalesce key, so they move under one
	// lock.
	flightMu sync.Mutex
	flights  map[string]*flight
	breakers *breakerTable

	// retryJitter randomizes the Retry-After hint (±20%) so
	// synchronized clients don't retry in lockstep; injectable for
	// deterministic tests.
	retryJitter func() float64

	// brownout is the adaptive quality controller; nil when disabled,
	// which is the fast path handleMesh takes by default.
	brownout *brownoutController

	// imgCache retains parsed input images under an LRU-by-bytes
	// discipline (one byte per voxel), bounded by both ImageCacheSize
	// (entries) and ImageCacheBytes (budget). lru holds *imgCacheEnt
	// values, front = most recently used; m indexes its elements.
	imgCache struct {
		sync.Mutex
		m     map[string]*list.Element
		lru   *list.List
		bytes int64
	}

	// Metrics (the catalogue documented in DESIGN.md "Serving layer").
	reg               *Registry
	mRequests         *CounterVec // pi2md_http_requests_total{code}
	mAccepted         *Counter
	mCompleted        *Counter
	mFailed           *Counter
	mRejected         *CounterVec // pi2md_jobs_rejected_total{reason}
	mCoalesced        *Counter
	mQueueWait        *Histogram
	mRunSeconds       *Histogram
	mLeaseSeconds     *Histogram
	mSnapshotBytes    *Histogram
	mCells            *Counter
	mCellsPerSec      *Gauge
	mRollbacks        *Counter
	mDegraded         *Counter
	mAborted          *Counter
	mTransitions      *Counter
	mEDTHits          *Counter
	mWarmRuns         *Counter
	mAffinityHits     *Counter
	mImgCacheHit      *Counter
	mImgCacheMiss     *Counter
	mEvictions        *Counter
	mWatchdogKills    *Counter
	mWatchdogAbandons *Counter
	mBreakerTrips     *Counter
	mCacheServed      *Counter
	mCacheOnlyServed  *Counter
	mCacheOnlyMiss    *Counter
	mImgCacheEvict    *Counter
	mSolveSeconds     *Histogram  // pi2md_solve_seconds
	mSolveIters       *Histogram  // pi2md_solve_iterations
	mSimJobs          *CounterVec // pi2md_simulate_jobs_total{outcome}
	mBrownedOut       *CounterVec // pi2md_browned_out_jobs_total{tier}

	// lastRuns is a ring of recent run summaries for /v1/stats.
	lastMu   sync.Mutex
	lastRuns []JobSummary
}

// JobSummary is one served job in /v1/stats' recent-runs ring.
type JobSummary struct {
	ImageKey    string          `json:"image_key"`
	QueueWaitMs float64         `json:"queue_wait_ms"`
	EDTCacheHit bool            `json:"edt_cache_hit"`
	WarmRun     bool            `json:"warm_run"`
	Coalesced   bool            `json:"coalesced,omitempty"`
	CacheHit    bool            `json:"cache_hit,omitempty"`
	Run         core.RunSummary `json:"run"`
}

// NewServer validates the configuration, builds the pool and wires
// the metrics registry.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	pool, err := NewPool(cfg.PoolSize, cfg.Session)
	if err != nil {
		return nil, err
	}
	pool.SetHealth(HealthConfig{SuspectThreshold: cfg.SuspectThreshold})
	s := &Server{cfg: cfg, pool: pool, cache: cfg.Cache, start: time.Now(), reg: NewRegistry(), nodeID: newNodeID()}
	s.imgCache.m = make(map[string]*list.Element)
	s.imgCache.lru = list.New()
	s.flights = make(map[string]*flight)
	s.breakers = newBreakerTable(cfg.BreakerThreshold, cfg.BreakerCooldown)
	s.retryJitter = rand.Float64
	if cfg.Brownout && len(cfg.BrownoutLadder) > 0 {
		s.brownout = newBrownoutController(cfg.BrownoutLadder, cfg.BrownoutHold, cfg.QueueDepth, cfg.PoolSize)
	}
	s.warmStart()

	r := s.reg
	s.mRequests = r.CounterVec("pi2md_http_requests_total",
		"HTTP requests served, by status code.", "code")
	s.mAccepted = r.Counter("pi2md_jobs_accepted_total",
		"Mesh jobs that reached a session (leaders) or a shared run's outcome (followers).")
	s.mCompleted = r.Counter("pi2md_jobs_completed_total",
		"Mesh jobs whose caller received a mesh (completed or degraded runs, coalesced followers included).")
	s.mFailed = r.Counter("pi2md_jobs_failed_total",
		"Admitted mesh jobs that ended without a mesh (aborts, run errors, fanned-out leader failures).")
	s.mRejected = r.CounterVec("pi2md_jobs_rejected_total",
		"Mesh jobs rejected by admission control, by reason.", "reason")
	s.mCoalesced = r.Counter("pi2md_coalesced_jobs_total",
		"Mesh jobs served from another job's run via single-flight coalescing (followers).")
	r.GaugeFunc("pi2md_queue_depth",
		"Admitted jobs currently waiting for a session.",
		func() float64 { return float64(s.waiting.Load()) })
	r.GaugeFunc("pi2md_pool_sessions",
		"Sessions in the pool.",
		func() float64 { return float64(s.pool.Size()) })
	r.GaugeFunc("pi2md_pool_busy_sessions",
		"Sessions currently leased to a running job.",
		func() float64 { return float64(s.pool.Stats().Busy) })
	s.mQueueWait = r.Histogram("pi2md_queue_wait_seconds",
		"Time admitted jobs spent waiting for a session.",
		[]float64{0.001, 0.005, 0.02, 0.1, 0.5, 2, 10, 30})
	s.mRunSeconds = r.Histogram("pi2md_run_seconds",
		"Wall time of the meshing run itself.",
		[]float64{0.01, 0.05, 0.2, 1, 5, 20, 60})
	s.mLeaseSeconds = r.Histogram("pi2md_lease_seconds",
		"Time a job held a pool session (checkout to release). Response encoding happens off-lease from a snapshot and is excluded.",
		[]float64{0.01, 0.05, 0.2, 1, 5, 20, 60})
	s.mSnapshotBytes = r.Histogram("pi2md_snapshot_bytes",
		"Size of the mesh snapshots copied out of the lease window.",
		[]float64{64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20})
	s.mCells = r.Counter("pi2md_cells_total",
		"Tetrahedra generated across all completed runs (coalesced fan-out not double-counted).")
	s.mCellsPerSec = r.Gauge("pi2md_cells_per_second",
		"Generation rate of the most recent completed job.")
	s.mRollbacks = r.Counter("pi2md_rollbacks_total",
		"Speculative-operation rollbacks across all runs.")
	s.mDegraded = r.Counter("pi2md_degraded_runs_total",
		"Runs that completed through the failure-handling ladder.")
	s.mAborted = r.Counter("pi2md_aborted_runs_total",
		"Runs that aborted (cancellation, panic budget, livelock).")
	s.mTransitions = r.Counter("pi2md_degradation_transitions_total",
		"Failure-handling transitions recorded across all runs.")
	s.mEDTHits = r.Counter("pi2md_edt_cache_hits_total",
		"Runs that reused a session's cached distance transform.")
	s.mWarmRuns = r.Counter("pi2md_warm_runs_total",
		"Runs that reused a session's warm arenas.")
	s.mAffinityHits = r.Counter("pi2md_pool_affinity_hits_total",
		"Checkouts routed to the session that last ran the same image.")
	s.mImgCacheHit = r.Counter("pi2md_image_cache_hits_total",
		"Request bodies whose parsed image was served from the cache.")
	s.mImgCacheMiss = r.Counter("pi2md_image_cache_misses_total",
		"Request bodies that had to be parsed.")
	s.mEvictions = r.Counter("pi2md_pool_evictions_total",
		"Idle sessions evicted to release their retained memory.")
	s.mWatchdogKills = r.Counter("pi2md_watchdog_kills_total",
		"Runs canceled by the runaway-run watchdog for exceeding their limit.")
	s.mWatchdogAbandons = r.Counter("pi2md_watchdog_abandoned_total",
		"Watchdog-canceled runs that ignored cancellation past the grace window; their sessions were quarantined.")
	s.mBreakerTrips = r.Counter("pi2md_breaker_trips_total",
		"Circuit-breaker transitions into the open state.")
	r.CounterFunc("pi2md_sessions_quarantined_total",
		"Sessions pulled from rotation by the health ledger (panicked, aborted, repeatedly suspect, or abandoned runs).",
		func() float64 { return float64(s.pool.Quarantines()) })
	r.CounterFunc("pi2md_session_rebuilds_total",
		"Quarantined pool slots rebuilt with a fresh session and returned to rotation.",
		func() float64 { return float64(s.pool.Rebuilds()) })
	r.GaugeFunc("pi2md_breaker_state",
		"Coalesce keys whose circuit breaker is currently open or half-open.",
		func() float64 {
			s.flightMu.Lock()
			n := s.breakers.openCountLocked()
			s.flightMu.Unlock()
			return float64(n)
		})
	r.GaugeFunc("pi2md_pool_healthy_sessions",
		"Pool slots holding a healthy (non-quarantined) session.",
		func() float64 { return float64(s.pool.Healthy()) })
	s.mCacheServed = r.Counter("pi2md_cache_served_jobs_total",
		"Mesh jobs answered from the persistent result cache without consuming a session.")
	s.mCacheOnlyServed = r.Counter("pi2md_cache_only_served_total",
		"Cache-only requests (X-Pi2md-Cache-Only or GET /v1/cache) answered from the result cache.")
	s.mCacheOnlyMiss = r.Counter("pi2md_cache_only_miss_total",
		"Cache-only requests answered 404 cache_miss because the pair is not cached.")
	s.mImgCacheEvict = r.Counter("pi2md_image_cache_evictions_total",
		"Parsed images evicted from the image cache by the LRU byte budget.")
	s.mSolveSeconds = r.Histogram("pi2md_solve_seconds",
		"Wall time of the FEM solve stage of /v1/simulate (assembly + CG), off-lease.",
		[]float64{0.001, 0.01, 0.05, 0.2, 1, 5, 15, 30})
	s.mSolveIters = r.Histogram("pi2md_solve_iterations",
		"CG iterations of completed /v1/simulate solves.",
		[]float64{10, 30, 100, 300, 1000, 3000, 10000})
	s.mSimJobs = r.CounterVec("pi2md_simulate_jobs_total",
		"Simulation jobs by outcome: ok, bad_request (pre-mesh), mesh_failed, and the post-mesh failures (bad_bc, solve_failed, canceled, deadline, watchdog).", "outcome")
	s.mBrownedOut = r.CounterVec("pi2md_browned_out_jobs_total",
		"Mesh jobs served at a degraded quality tier by the brownout controller, by tier.", "tier")
	r.GaugeFunc("pi2md_brownout_tier",
		"Current position of the brownout controller's degradation ladder (0 = full quality).",
		func() float64 {
			if s.brownout == nil {
				return 0
			}
			return float64(s.brownout.Tier())
		})
	cacheStat := func(pick func(cachestore.Stats) float64) func() float64 {
		return func() float64 {
			if s.cache == nil {
				return 0
			}
			return pick(s.cache.Stats())
		}
	}
	r.CounterFunc("pi2md_cache_hits_total",
		"Persistent-cache lookups answered from a verified entry (index-only ETag lookups included).",
		cacheStat(func(st cachestore.Stats) float64 { return float64(st.Hits) }))
	r.CounterFunc("pi2md_cache_misses_total",
		"Persistent-cache lookups that found no servable entry (corrupt entries count here, never as hits).",
		cacheStat(func(st cachestore.Stats) float64 { return float64(st.Misses) }))
	r.CounterFunc("pi2md_cache_writes_total",
		"Snapshots persisted into the result cache (memory-only writes while degraded included).",
		cacheStat(func(st cachestore.Stats) float64 { return float64(st.Writes) }))
	r.CounterFunc("pi2md_cache_evictions_total",
		"Result-cache entries evicted by the LRU byte budget.",
		cacheStat(func(st cachestore.Stats) float64 { return float64(st.Evictions) }))
	r.CounterFunc("pi2md_cache_corrupt_total",
		"Cached blobs that failed checksum verification on read and were quarantined.",
		cacheStat(func(st cachestore.Stats) float64 { return float64(st.Corrupt) }))
	r.GaugeFunc("pi2md_cache_bytes",
		"Bytes accounted to live result-cache entries.",
		cacheStat(func(st cachestore.Stats) float64 { return float64(st.Bytes) }))
	r.GaugeFunc("pi2md_cache_degraded",
		"1 while the result cache is in memory-only degraded mode after a disk write failure, else 0.",
		cacheStat(func(st cachestore.Stats) float64 {
			if st.Degraded {
				return 1
			}
			return 0
		}))
	r.CounterFunc("pi2md_cache_adopted_total",
		"Un-indexed blobs found at their deterministic path (written by a peer sharing the directory) verified and adopted at read time.",
		cacheStat(func(st cachestore.Stats) float64 { return float64(st.Adopted) }))
	r.CounterFunc("pi2md_fsck_recovered_total",
		"Verified orphan blobs the boot fsck adopted back into the cache index.",
		cacheStat(func(st cachestore.Stats) float64 { return float64(st.FsckRecovered) }))
	r.CounterFunc("pi2md_fsck_quarantined_total",
		"Blobs the boot fsck moved to quarantine for failing verification.",
		cacheStat(func(st cachestore.Stats) float64 { return float64(st.FsckQuarantined) }))
	return s, nil
}

// breakerPriorsSidecar is the sidecar file Drain persists next to the
// cache index so a graceful restart re-arms known-bad keys. A kill -9
// loses it by design — the priors are an optimization, the index is
// the durable artifact.
const breakerPriorsSidecar = "breaker_priors.json"

type breakerPriors struct {
	OpenKeys []string `json:"open_keys"`
}

// warmStart pre-populates state from the recovered cache index: pool
// image affinity from the most-recently-used cached keys, and breaker
// priors from the last graceful drain's sidecar (seeded open with an
// elapsed cooldown, so the first arrival probes instead of fast-failing).
func (s *Server) warmStart() {
	if s.cache == nil {
		return
	}
	seen := make(map[string]bool)
	var keys []string
	for _, ki := range s.cache.KeysMRU() {
		if !seen[ki.ImageKey] {
			seen[ki.ImageKey] = true
			keys = append(keys, ki.ImageKey)
		}
	}
	s.pool.SeedAffinity(keys)
	if data, ok := s.cache.ReadSidecar(breakerPriorsSidecar); ok {
		var priors breakerPriors
		if json.Unmarshal(data, &priors) == nil && len(priors.OpenKeys) > 0 {
			s.flightMu.Lock()
			s.breakers.seedLocked(priors.OpenKeys, time.Now())
			s.flightMu.Unlock()
		}
	}
}

// newNodeID draws the 8-byte random hex serving identity. Stability
// within one boot is the contract; two boots of the same binary get
// different identities, which is exactly what shard-affinity checks
// need (a restarted backend is a cold one).
func newNodeID() string {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively unreachable; fall back to a
		// time-derived identity rather than refusing to boot.
		return fmt.Sprintf("t%015x", time.Now().UnixNano()&0xffffffffffffff)
	}
	return hex.EncodeToString(b[:])
}

// NodeID returns this server's boot-stable serving identity.
func (s *Server) NodeID() string { return s.nodeID }

// InflightKeys snapshots the coalesce keys with an open single-flight
// entry — the flight-table introspection a router uses to verify that
// proxy-joined followers actually landed in an existing flight, and
// operators use to see what a node is computing right now. Sorted for
// stable output.
func (s *Server) InflightKeys() []string {
	s.flightMu.Lock()
	keys := make([]string, 0, len(s.flights))
	for k := range s.flights {
		keys = append(keys, k)
	}
	s.flightMu.Unlock()
	sort.Strings(keys)
	return keys
}

// Registry exposes the metrics registry (for /metrics and tests).
func (s *Server) Registry() *Registry { return s.reg }

// Pool exposes the session pool (for stats and eviction janitors).
func (s *Server) Pool() *Pool { return s.pool }

// LeaseOccupancy exposes the lease-occupancy histogram (checkout to
// release) — the benchmark harness reads it to show that off-lease
// encoding shortens session occupancy.
func (s *Server) LeaseOccupancy() *Histogram { return s.mLeaseSeconds }

// EvictIdle evicts pool sessions idle longer than maxIdle, recording
// the evictions in the metrics. See Pool.EvictIdle.
func (s *Server) EvictIdle(maxIdle time.Duration) int {
	n := s.pool.EvictIdle(maxIdle)
	s.mEvictions.Add(int64(n))
	return n
}

// ImageKey is the image identity used for session affinity, the
// parsed-image cache, and single-flight coalescing: the full SHA-256
// content hash of the serialized input. It must be the complete
// digest — a truncated key that collides would silently serve a wrong
// cached image to the colliding request and fan a wrong mesh out to
// every coalesced waiter.
func ImageKey(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// imgCacheEnt is one parsed-image cache entry; bytes is the image's
// voxel count (one byte per voxel), the unit the LRU budget accounts.
type imgCacheEnt struct {
	key   string
	im    *img.Image
	bytes int64
}

// imgCacheEnabled reports whether the parsed-image cache is active:
// both the entry cap and the byte budget must be non-negative.
func (s *Server) imgCacheEnabled() bool {
	return s.cfg.ImageCacheSize > 0 && s.cfg.ImageCacheBytes > 0
}

// decodeImage parses body as NRRD through the cache: a repeated
// identical body returns the previously parsed *img.Image, giving the
// leased session a chance to reuse its cached distance transform
// (which is keyed by image pointer identity). The cache is LRU
// accounted in bytes — a hit refreshes recency, and inserting past
// either the entry cap or the byte budget evicts the least recently
// used images first.
func (s *Server) decodeImage(key string, body []byte) (*img.Image, error) {
	if s.imgCacheEnabled() {
		s.imgCache.Lock()
		if el, ok := s.imgCache.m[key]; ok {
			s.imgCache.lru.MoveToFront(el)
			im := el.Value.(*imgCacheEnt).im
			s.imgCache.Unlock()
			s.mImgCacheHit.Inc()
			return im, nil
		}
		s.imgCache.Unlock()
	}
	s.mImgCacheMiss.Inc()
	im, err := img.ReadNRRD(bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if s.imgCacheEnabled() {
		s.imgCache.Lock()
		if el, dup := s.imgCache.m[key]; dup {
			im = el.Value.(*imgCacheEnt).im // lost a parse race; converge on one pointer
		} else if n := int64(im.NumVoxels()); n <= s.cfg.ImageCacheBytes {
			ent := &imgCacheEnt{key: key, im: im, bytes: n}
			s.imgCache.m[key] = s.imgCache.lru.PushFront(ent)
			s.imgCache.bytes += n
			for (s.imgCache.bytes > s.cfg.ImageCacheBytes ||
				s.imgCache.lru.Len() > s.cfg.ImageCacheSize) && s.imgCache.lru.Len() > 1 {
				back := s.imgCache.lru.Back()
				old := back.Value.(*imgCacheEnt)
				s.imgCache.lru.Remove(back)
				delete(s.imgCache.m, old.key)
				s.imgCache.bytes -= old.bytes
				s.mImgCacheEvict.Inc()
			}
		}
		s.imgCache.Unlock()
	}
	return im, nil
}

// SnapshotResult is the outcome a mesh job hands back: the serving
// metadata plus a MeshSnapshot copied out of the lease window, valid
// indefinitely — encode it, cache it, or hand it to another goroutine
// without holding any session. Coalesced followers share the leader's
// snapshot pointer; treat it as read-only.
type SnapshotResult struct {
	Summary  JobSummary
	Snapshot *core.MeshSnapshot
	// ETag is the persistent cache's entity identity for this snapshot
	// (hex CRC64 of the stored blob); empty when no cache is wired.
	ETag string
}

// cachedSnapshot answers a job from the persistent result cache, if it
// can: the blob is re-verified on read, the job never touches the pool,
// the queue, or the key's breaker. A cache-served job counts as
// accepted + completed (the caller got a mesh) plus cacheServed, so the
// run-count invariant stays runs == accepted − coalesced − abandoned −
// cacheServed.
func (s *Server) cachedSnapshot(key, variant string) (*SnapshotResult, bool) {
	if s.cache == nil || key == "" {
		return nil, false
	}
	// Lookup, not Get: the adoptive disk fallback lets this node serve
	// blobs a peer sharing the cache directory wrote after our boot fsck.
	snap, etag, ok := s.cache.Lookup(key, variant)
	if !ok {
		return nil, false
	}
	s.mAccepted.Inc()
	s.mCompleted.Inc()
	s.mCacheServed.Inc()
	sr := &SnapshotResult{
		Summary: JobSummary{
			ImageKey: key,
			CacheHit: true,
			Run:      snap.Summary,
		},
		Snapshot: snap,
		ETag:     etag,
	}
	s.lastMu.Lock()
	s.lastRuns = append(s.lastRuns, sr.Summary)
	if len(s.lastRuns) > 16 {
		s.lastRuns = s.lastRuns[len(s.lastRuns)-16:]
	}
	s.lastMu.Unlock()
	return sr, true
}

// CacheETag answers a conditional GET from the cache index alone — no
// blob I/O, no session. ok is false without a cache or a cached entry.
func (s *Server) CacheETag(key, variant string) (string, bool) {
	if s.cache == nil || key == "" {
		return "", false
	}
	return s.cache.ETag(key, variant)
}

// rejectForCtx classifies a context failure while waiting for a
// session: deadline expiry is a capacity signal (ErrDeadline, retry
// later), caller cancellation is not (ErrCanceled, the client went
// away). Conflating the two inflates the deadline metric and tells
// dead clients to retry.
func (s *Server) rejectForCtx(err error) error {
	if errors.Is(err, context.Canceled) {
		s.mRejected.With("canceled").Inc()
		return fmt.Errorf("%w: %v", ErrCanceled, err)
	}
	s.mRejected.With("deadline").Inc()
	return fmt.Errorf("%w: %v", ErrDeadline, err)
}

// runOnce executes one actual meshing run under admission control: a
// non-blocking checkout (free sessions bypass the queue entirely), a
// bounded wait otherwise, the run itself under the job deadline, the
// snapshot copy-out that ends the lease before any encoding, and the
// off-lease persist into the result cache. Coalesced followers never
// reach this function.
func (s *Server) runOnce(jctx context.Context, key, variant string, image *img.Image, tune func(*core.Config)) (*SnapshotResult, error) {
	// Admission: a job only counts against QueueDepth while it is
	// actually waiting. A burst that fits the free sessions is
	// admitted without touching the wait counter, so QueueDepth
	// bounds the waiters beyond the PoolSize running jobs — exactly
	// the documented contract.
	lease, err := s.pool.TryCheckout(key)
	if err != nil {
		s.mRejected.With("pool_closed").Inc()
		return nil, err
	}
	var wait time.Duration
	if lease == nil {
		if n := s.waiting.Add(1); n > int64(s.cfg.QueueDepth) {
			s.waiting.Add(-1)
			s.mRejected.With("queue_full").Inc()
			return nil, ErrQueueFull
		}
		waitStart := time.Now()
		lease, err = s.pool.Checkout(jctx, key)
		s.waiting.Add(-1)
		wait = time.Since(waitStart)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				return nil, s.rejectForCtx(err)
			}
			s.mRejected.With("pool_closed").Inc()
			return nil, err
		}
	}
	s.mAccepted.Inc()
	s.mQueueWait.Observe(wait.Seconds())

	// The lease window: released explicitly right after the snapshot
	// copy-out on success (the deferred release is the error path),
	// and its occupancy is observed exactly once.
	leaseStart := time.Now()
	released := false
	release := func() {
		if released {
			return
		}
		released = true
		lease.Release()
		s.mLeaseSeconds.Observe(time.Since(leaseStart).Seconds())
	}
	defer release()

	// Injectable stall between checkout and run: everyone queued
	// behind this session now waits longer (degradation under load).
	faultinject.Sleep(faultinject.SlowSession)

	runStart := time.Now()
	res, err := s.superviseRun(jctx, lease, image, tune)
	if errors.Is(err, ErrWatchdog) {
		// The run ignored cancellation past the grace window. Its lease
		// was abandoned (Release above is now a no-op) and the session
		// quarantined; the run's true wall time is unknowable here, so
		// mRunSeconds is deliberately not observed — the invariant is
		// runs == accepted − coalesced − watchdog_abandoned.
		s.mFailed.Inc()
		return nil, err
	}
	s.mRunSeconds.Observe(time.Since(runStart).Seconds())
	if err != nil {
		// Run errors and recovered panics: a panic already marked the
		// session bad in guardedRun; anything else makes it suspect.
		lease.MarkSuspect()
		s.mFailed.Inc()
		return nil, fmt.Errorf("serve: run: %w", err)
	}

	if lease.AffinityHit() {
		s.mAffinityHits.Inc()
	}
	if lease.EDTHit() {
		s.mEDTHits.Inc()
	}
	if lease.WarmRun() {
		s.mWarmRuns.Inc()
	}
	sum := res.Summary()
	s.mRollbacks.Add(sum.Rollbacks)
	s.mTransitions.Add(int64(sum.Transitions))
	if res.Stats.RecoveredPanics > 0 {
		// The run survived worker/bootstrap panics (possibly still
		// StatusCompleted): the session's arenas were touched by code
		// that crashed, so raise suspicion even on success.
		lease.MarkSuspect()
	}
	switch res.Status {
	case core.StatusAborted:
		s.mAborted.Inc()
		s.mFailed.Inc()
		if abortedByCaller(res) {
			// The caller's own deadline or cancellation cut the run
			// short mid-flight: the session cooperated and is healthy,
			// and the failure classifies like a pre-run rejection.
			if errors.Is(jctx.Err(), context.Canceled) {
				return nil, fmt.Errorf("%w: run aborted mid-flight: %v", ErrCanceled, res.Err())
			}
			return nil, fmt.Errorf("%w: run aborted mid-flight: %v", ErrDeadline, res.Err())
		}
		// Aborted for engine reasons (panic budget, livelock): the
		// session's internal state is untrustworthy — quarantine it.
		lease.MarkBad()
		return nil, fmt.Errorf("serve: run aborted: %w", res.Err())
	case core.StatusDegraded:
		s.mDegraded.Inc()
		lease.MarkSuspect()
	}

	// Copy the final geometry out of the lease window, then release:
	// everything below — metrics, the stats ring, response encoding in
	// the caller — runs off-lease while the session already serves the
	// next job.
	snap := res.Snapshot()
	release()
	s.mSnapshotBytes.Observe(float64(snap.SizeBytes()))

	s.mCompleted.Inc()
	s.mCells.Add(int64(sum.Elements))
	s.mCellsPerSec.Set(int64(sum.CellsPerSec))

	// Persist off-lease: the session already serves the next job, and
	// Put absorbs disk failures (degrading the store) rather than
	// surfacing them — a full disk must never fail a finished mesh.
	var etag string
	if s.cache != nil && key != "" {
		etag, _ = s.cache.Put(key, variant, snap)
	}

	sr := &SnapshotResult{
		ETag: etag,
		Summary: JobSummary{
			ImageKey:    key,
			QueueWaitMs: float64(wait) / 1e6,
			EDTCacheHit: lease.EDTHit(),
			WarmRun:     lease.WarmRun(),
			Run:         sum,
		},
		Snapshot: snap,
	}
	s.lastMu.Lock()
	s.lastRuns = append(s.lastRuns, sr.Summary)
	if len(s.lastRuns) > 16 {
		s.lastRuns = s.lastRuns[len(s.lastRuns)-16:]
	}
	s.lastMu.Unlock()
	return sr, nil
}

// guardedRun executes the run itself behind a panic guard: a panic
// escaping the engine (or a tune hook) is converted into an error so
// no coalesced follower can hang on a never-closed flight, and the
// session — whose internal state the panic may have corrupted — is
// marked bad for quarantine on release.
func (s *Server) guardedRun(ctx context.Context, lease *Lease, image *img.Image, tune func(*core.Config)) (res *core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			lease.MarkBad()
			err = fmt.Errorf("serve: run panicked: %v", r)
		}
	}()
	// Injectable wedge: the run stalls while ignoring its context —
	// exactly the failure the watchdog's abandon path exists for.
	faultinject.Sleep(faultinject.LeaseLeak)
	if faultinject.Fire(faultinject.RunPoisoned) {
		return nil, errors.New("serve: injected run-poisoned failure")
	}
	return lease.RunTuned(ctx, image, tune)
}

// superviseRun runs the job under the runaway-run watchdog. A run
// exceeding watchdogLimit is canceled; if it returns within the grace
// window the normal outcome path classifies it (the job deadline has
// expired by then, so it reads as a mid-flight deadline abort). A run
// that ignores cancellation past the grace window has its lease
// abandoned — the pool quarantines the slot and backfills with a
// fresh session — and a reaper goroutine closes the wedged session
// whenever the run finally returns.
func (s *Server) superviseRun(jctx context.Context, lease *Lease, image *img.Image, tune func(*core.Config)) (*core.Result, error) {
	if s.cfg.WatchdogFactor <= 0 {
		return s.guardedRun(jctx, lease, image, tune)
	}
	limit := s.watchdogLimit(jctx)
	runCtx, cancelRun := context.WithCancel(jctx)
	defer cancelRun()
	type outcome struct {
		res *core.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := s.guardedRun(runCtx, lease, image, tune)
		done <- outcome{res, err}
	}()
	timer := time.NewTimer(limit)
	defer timer.Stop()
	select {
	case o := <-done:
		return o.res, o.err
	case <-timer.C:
	}
	s.mWatchdogKills.Inc()
	cancelRun()
	grace := time.NewTimer(s.cfg.WatchdogGrace)
	defer grace.Stop()
	select {
	case o := <-done:
		return o.res, o.err
	case <-grace.C:
	}
	s.mWatchdogAbandons.Inc()
	lease.Abandon()
	go func() {
		<-done
		lease.FinishAbandoned()
	}()
	return nil, fmt.Errorf("%w: run exceeded %v and ignored cancellation for %v",
		ErrWatchdog, limit.Round(time.Millisecond), s.cfg.WatchdogGrace)
}

// watchdogLimit is the wall-time bound for one run: WatchdogFactor ×
// the job's remaining deadline budget, tightened toward factor × the
// observed run p99 once at least 64 runs are recorded — but never
// below the deadline (+grace) the caller agreed to, so the watchdog
// can only fire on runs that are already ignoring their own deadline.
func (s *Server) watchdogLimit(jctx context.Context) time.Duration {
	remaining := s.cfg.DefaultTimeout
	if dl, ok := jctx.Deadline(); ok {
		remaining = time.Until(dl)
	}
	if remaining < time.Millisecond {
		remaining = time.Millisecond
	}
	limit := time.Duration(s.cfg.WatchdogFactor * float64(remaining))
	if s.mRunSeconds.Count() >= 64 {
		if p99 := s.mRunSeconds.Quantile(0.99); p99 > 0 {
			alt := time.Duration(s.cfg.WatchdogFactor * p99 * float64(time.Second))
			if floor := remaining + s.cfg.WatchdogGrace; alt < floor {
				alt = floor
			}
			if alt < limit {
				limit = alt
			}
		}
	}
	return limit
}

// abortedByCaller reports whether an aborted run was cut short by its
// own context (a "cancel" transition) rather than by the engine's
// failure ladder — the session cooperated, so it stays healthy.
func abortedByCaller(res *core.Result) bool {
	for _, tr := range res.Transitions {
		if tr.Event == "cancel" {
			return true
		}
	}
	return false
}

// ClampRetryAfter is the serving tier's one Retry-After policy: the
// latency estimate (seconds) is jittered ±20% by jitter (so
// synchronized clients don't retry in lockstep) and clamped to [1, 30]
// seconds. Both the backend's capacity rejections and the router's
// own 503s (backend down, ring empty) derive their hints here — a
// router must never echo a raw cooldown the backend would have
// clamped.
func ClampRetryAfter(estSeconds float64, jitter func() float64) int {
	if jitter != nil {
		estSeconds *= 0.8 + 0.4*jitter()
	}
	sec := int(math.Ceil(estSeconds))
	if sec < 1 {
		sec = 1
	}
	if sec > 30 {
		sec = 30
	}
	return sec
}

// retryAfterSeconds derives the Retry-After hint for capacity
// rejections from the rejected waiter's actual queue position rather
// than a flat wait quantile: a job arriving now would drain behind
// queued/PoolSize lease slots plus its own run, each taking about a
// median lease. The estimate is therefore monotone in queue depth — a
// rejection from a deep queue backs its client off longer than one
// from a queue that is barely over — then jittered and clamped by the
// shared policy.
func (s *Server) retryAfterSeconds() int {
	return ClampRetryAfter(s.retryAfterEstimate(s.waiting.Load()), s.retryJitter)
}

// retryAfterEstimate is the raw (unjittered, unclamped) wait estimate
// in seconds for a waiter at queue position pos.
func (s *Server) retryAfterEstimate(pos int64) float64 {
	p50 := s.mLeaseSeconds.Quantile(0.50)
	return (float64(pos)/float64(s.cfg.PoolSize) + 1) * p50
}

// Ready reports whether the server can currently serve meshing work:
// not draining, and at least one healthy (non-quarantined) session in
// the pool. The /readyz endpoint exposes it.
func (s *Server) Ready() bool {
	return !s.draining.Load() && s.pool.Healthy() > 0
}

// Stats is the /v1/stats document.
type Stats struct {
	NodeID        string  `json:"node_id"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`
	QueueDepth    int64   `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`
	Accepted      int64   `json:"jobs_accepted"`
	Completed     int64   `json:"jobs_completed"`
	Failed        int64   `json:"jobs_failed"`
	Coalesced     int64   `json:"jobs_coalesced"`
	RejectedFull  int64   `json:"jobs_rejected_queue_full"`
	RejectedDL    int64   `json:"jobs_rejected_deadline"`
	RejectedCancl int64   `json:"jobs_rejected_canceled"`
	RejectedBrkr  int64   `json:"jobs_rejected_breaker_open"`
	WatchdogKills int64   `json:"watchdog_kills"`
	WatchdogAband int64   `json:"watchdog_abandoned"`
	BreakersOpen  int     `json:"breakers_open"`
	BreakerTrips  int64   `json:"breaker_trips"`
	CacheServed   int64   `json:"jobs_cache_served"`
	CacheOnly     int64   `json:"jobs_cache_only_served,omitempty"`
	CacheOnlyMiss int64   `json:"jobs_cache_only_miss,omitempty"`
	BrownoutTier  int     `json:"brownout_tier,omitempty"`
	BrownedOut    int64   `json:"jobs_browned_out,omitempty"`
	RejectedOver  int64   `json:"jobs_rejected_overloaded,omitempty"`
	// InflightKeys are the coalesce keys with an open single-flight
	// entry right now — how a router (or operator) verifies that
	// proxy-joined traffic landed in an existing flight.
	InflightKeys []string          `json:"inflight_keys,omitempty"`
	Pool         PoolStats         `json:"pool"`
	Cache        *cachestore.Stats `json:"cache,omitempty"`
	RecentRuns   []JobSummary      `json:"recent_runs"`
}

// Stats snapshots the serving counters for /v1/stats.
func (s *Server) Stats() Stats {
	s.lastMu.Lock()
	recent := append([]JobSummary(nil), s.lastRuns...)
	s.lastMu.Unlock()
	s.flightMu.Lock()
	breakersOpen := s.breakers.openCountLocked()
	s.flightMu.Unlock()
	var cacheStats *cachestore.Stats
	if s.cache != nil {
		st := s.cache.Stats()
		cacheStats = &st
	}
	brownoutTier := 0
	if s.brownout != nil {
		brownoutTier = s.brownout.Tier()
	}
	return Stats{
		NodeID:        s.nodeID,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Draining:      s.draining.Load(),
		QueueDepth:    s.waiting.Load(),
		QueueCapacity: s.cfg.QueueDepth,
		Accepted:      s.mAccepted.Value(),
		Completed:     s.mCompleted.Value(),
		Failed:        s.mFailed.Value(),
		Coalesced:     s.mCoalesced.Value(),
		RejectedFull:  s.mRejected.Value("queue_full"),
		RejectedDL:    s.mRejected.Value("deadline"),
		RejectedCancl: s.mRejected.Value("canceled"),
		RejectedBrkr:  s.mRejected.Value("breaker_open"),
		WatchdogKills: s.mWatchdogKills.Value(),
		WatchdogAband: s.mWatchdogAbandons.Value(),
		BreakersOpen:  breakersOpen,
		BreakerTrips:  s.mBreakerTrips.Value(),
		CacheServed:   s.mCacheServed.Value(),
		CacheOnly:     s.mCacheOnlyServed.Value(),
		CacheOnlyMiss: s.mCacheOnlyMiss.Value(),
		BrownoutTier:  brownoutTier,
		BrownedOut:    s.mBrownedOut.Total(),
		RejectedOver:  s.mRejected.Value("overloaded"),
		InflightKeys:  s.InflightKeys(),
		Pool:          s.pool.Stats(),
		Cache:         cacheStats,
		RecentRuns:    recent,
	}
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// AnnounceDrain flips the server into draining mode — /readyz answers
// 503 and new mesh jobs are rejected with ErrDraining — and returns up
// to limit most-recently-used cached keys as the warm-state handoff
// list a router pre-warms its replica routing with before ejecting this
// node. Unlike Drain it does not wait for in-flight work or close the
// pool: the operator (or the process's own signal handler) still owns
// the actual shutdown, and cache-only reads keep being served for the
// whole drain window — a draining node is a read replica until the
// process exits.
func (s *Server) AnnounceDrain(limit int) []cachestore.KeyInfo {
	s.draining.Store(true)
	if s.cache == nil {
		return nil
	}
	keys := s.cache.KeysMRU()
	if limit > 0 && len(keys) > limit {
		keys = keys[:limit]
	}
	return keys
}

// Drain gracefully shuts the server down: new jobs are rejected with
// ErrDraining, in-flight jobs (coalesced followers included) run to
// completion (bounded by ctx), breaker priors are persisted next to
// the cache index for the next boot's warm start, and the pool is
// closed. It returns ctx.Err() if the wait was cut short (the pool is
// closed regardless). The caller owns closing the cache store itself.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var err error
	if ctx == nil {
		<-done
	} else {
		select {
		case <-done:
		case <-ctx.Done():
			err = ctx.Err()
		}
	}
	if s.cache != nil {
		s.flightMu.Lock()
		open := s.breakers.openKeysLocked()
		s.flightMu.Unlock()
		if data, merr := json.Marshal(breakerPriors{OpenKeys: open}); merr == nil {
			s.cache.WriteSidecar(breakerPriorsSidecar, data)
		}
	}
	s.pool.Close()
	return err
}
