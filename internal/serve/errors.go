package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// Error codes of the structured error envelope. Every 4xx/5xx the
// server emits carries one; clients branch on the code, humans read
// the reason.
const (
	CodeBadRequest  = "bad_request"  // malformed image, spec, or parameters
	CodeBadBC       = "bad_bc"       // a boundary-condition spec constrained no vertex
	CodeTooLarge    = "too_large"    // request body over MaxRequestBytes
	CodeQueueFull   = "queue_full"   // admission queue at capacity
	CodeDeadline    = "deadline"     // job or solve deadline expired
	CodeBreakerOpen = "breaker_open" // the key's circuit breaker is open
	CodeWatchdog    = "watchdog"     // run/solve abandoned by the watchdog
	CodeCanceled    = "canceled"     // the client went away (499)
	CodeOverloaded  = "overloaded"   // even the coarsest brownout tier can't meet the deadline
	CodeDraining    = "draining"     // server shutting down
	CodeUnavailable = "unavailable"  // pool closed / no session
	CodeCacheMiss   = "cache_miss"   // cache-only request, pair not cached (404)
	CodeSolveFailed = "solve_failed" // assembly or CG failure
	CodeInternal    = "internal"     // anything else
)

// errorEnvelope is the JSON error document every non-2xx response
// carries:
//
//	{"error": {"code": "queue_full", "reason": "...", "retry_after_s": 2}}
//
// retry_after_s mirrors the Retry-After header when one is set, so a
// JSON-only client never has to read headers to back off correctly.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code        string `json:"code"`
	Reason      string `json:"reason"`
	RetryAfterS int    `json:"retry_after_s,omitempty"`
}

// WriteError writes the structured JSON error envelope with the given
// status and machine-readable code — the one rejection shape every
// tier speaks. The router uses it for its own 503s so a client can
// never tell a router-originated rejection from a backend one by
// format.
func WriteError(w http.ResponseWriter, status int, code, format string, args ...any) {
	httpError(w, status, code, format, args...)
}

// httpError writes the structured JSON error envelope with the given
// status and machine-readable code. It reads any Retry-After header
// already stamped on the response, so capacity call sites keep their
// existing set-header-then-error shape.
func httpError(w http.ResponseWriter, status int, code, format string, args ...any) {
	var retry int
	if ra := w.Header().Get("Retry-After"); ra != "" {
		retry, _ = strconv.Atoi(ra)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorEnvelope{Error: errorBody{
		Code:        code,
		Reason:      fmt.Sprintf(format, args...),
		RetryAfterS: retry,
	}})
}
