package serve

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryPrometheusText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs.")
	cv := r.CounterVec("rejects_total", "Rejects by reason.", "reason")
	g := r.Gauge("depth", "Queue depth.")
	r.GaugeFunc("pool_size", "Pool size.", func() float64 { return 3 })
	h := r.Histogram("wait_seconds", "Wait.", []float64{0.1, 1})

	c.Add(5)
	c.Inc()
	cv.With("queue_full").Add(2)
	cv.With("deadline").Inc()
	g.Set(7)
	g.Add(-2)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(30)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP jobs_total Jobs.",
		"# TYPE jobs_total counter",
		"jobs_total 6",
		`rejects_total{reason="deadline"} 1`,
		`rejects_total{reason="queue_full"} 2`,
		"# TYPE depth gauge",
		"depth 5",
		"pool_size 3",
		"# TYPE wait_seconds histogram",
		`wait_seconds_bucket{le="0.1"} 1`,
		`wait_seconds_bucket{le="1"} 2`,
		`wait_seconds_bucket{le="+Inf"} 3`,
		"wait_seconds_sum 30.55",
		"wait_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Label values must come out sorted (deterministic scrapes).
	if strings.Index(out, `reason="deadline"`) > strings.Index(out, `reason="queue_full"`) {
		t.Error("CounterVec series are not sorted by label value")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 10, 100})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(g*i) / 100)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Add(-5)
	if c.Value() != 3 {
		t.Fatalf("counter went backwards: %d", c.Value())
	}
}
