package serve

import (
	"bytes"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/cachestore"
	"repro/internal/faultinject"
)

// readAll drains and closes a response body.
func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestParseBrownoutLadder(t *testing.T) {
	good := []struct {
		in   string
		want int // tiers
	}{
		{"", 2}, // default ladder
		{"re=3,fa=15", 1},
		{"re=3,fa=15/re=4,fa=10,ds=2,n=100000", 2},
		{"ds=4", 1},
		{" re=2.5 , fa=20 ", 1},
	}
	for _, c := range good {
		ladder, err := ParseBrownoutLadder(c.in)
		if err != nil {
			t.Errorf("ParseBrownoutLadder(%q): %v", c.in, err)
			continue
		}
		if len(ladder) != c.want {
			t.Errorf("ParseBrownoutLadder(%q) = %d tiers, want %d", c.in, len(ladder), c.want)
		}
	}
	bad := []string{
		"re=1.5",      // below the provable R4 bound
		"ds=0.5",      // would refine, not coarsen
		"n=1.5",       // not an integer
		"re=NaN",      // not a number
		"zz=3",        // unknown knob
		"re=3//fa=10", // empty middle tier
		"re",          // not knob=value
		"fa=-4",       // negative
	}
	for _, in := range bad {
		if _, err := ParseBrownoutLadder(in); err == nil {
			t.Errorf("ParseBrownoutLadder(%q) accepted, want error", in)
		}
	}
}

// TestBrownedRelaxOnly: a tier rewrite only ever moves a knob in the
// cheaper direction — a client that already asked for something
// coarser keeps what it asked for — and the rewritten spec derives a
// different variant key than the original.
func TestBrownedRelaxOnly(t *testing.T) {
	tier := BrownoutTier{MaxRadiusEdge: 3, MinFacetAngle: 15, DeltaScale: 2, MaxElements: 100000}

	// Default-knob request: every tier knob applies.
	d := MeshSpec{}.browned(tier)
	if d.MaxRadiusEdge != 3 || d.MinFacetAngle != 15 || d.DeltaScale != 2 || d.MaxElements != 100000 {
		t.Fatalf("default spec browned = %+v, want all tier knobs applied", d)
	}
	empty := MeshSpec{}
	if d.variant() == empty.variant() {
		t.Fatal("degraded spec derives the same variant key as full quality")
	}
	if err := d.validate(); err != nil {
		t.Fatalf("browned spec fails validation: %v", err)
	}

	// Already-coarser request: nothing tightens.
	coarse := MeshSpec{MaxRadiusEdge: 5, MinFacetAngle: 5, DeltaScale: 4, MaxElements: 50000}
	b := coarse.browned(tier)
	if b != coarse {
		t.Fatalf("coarser-than-tier spec was rewritten: %+v -> %+v", coarse, b)
	}

	// Stricter-than-tier request: every knob relaxes to the tier.
	strict := MeshSpec{MaxRadiusEdge: 2, MinFacetAngle: 30, MaxElements: 500000}
	s := strict.browned(tier)
	if s.MaxRadiusEdge != 3 || s.MinFacetAngle != 15 || s.DeltaScale != 2 || s.MaxElements != 100000 {
		t.Fatalf("strict spec browned = %+v, want tier bounds", s)
	}
}

// TestBrownoutControllerHysteresis drives decide() with a synthetic
// clock: escalation is immediate under pressure, de-escalation takes a
// full hold period of calm per tier, and a blip of renewed pressure
// resets the calm timer.
func TestBrownoutControllerHysteresis(t *testing.T) {
	hold := 10 * time.Second
	b := newBrownoutController(DefaultBrownoutLadder(), hold, 16, 2)
	now := time.Unix(1000, 0)

	// Idle: stays at full quality.
	if tier, refuse := b.decide(now, 0, 0.1, time.Minute); tier != 0 || refuse {
		t.Fatalf("idle decide = (%d,%v), want (0,false)", tier, refuse)
	}

	// Full queue: escalates to the deepest tier immediately.
	if tier, _ := b.decide(now, 16, 0.1, time.Minute); tier != 2 {
		t.Fatalf("saturated decide = tier %d, want 2", tier)
	}

	// Calm again, but not for long enough: holds the tier.
	now = now.Add(hold / 2)
	if tier, _ := b.decide(now, 0, 0.1, time.Minute); tier != 2 {
		t.Fatalf("calm %v decide = tier %d, want 2 (hold is %v)", hold/2, tier, hold)
	}

	// A pressure blip resets the calm timer.
	if tier, _ := b.decide(now, 16, 0.1, time.Minute); tier != 2 {
		t.Fatalf("blip decide = tier %d, want 2", tier)
	}
	now = now.Add(hold * 3 / 4)
	if tier, _ := b.decide(now, 0, 0.1, time.Minute); tier != 2 {
		t.Fatal("calm timer not reset by pressure blip")
	}

	// Sustained calm: one tier per hold period, never skipping.
	now = now.Add(hold)
	if tier, _ := b.decide(now, 0, 0.1, time.Minute); tier != 1 {
		t.Fatalf("after one hold of calm tier = %d, want 1", tier)
	}
	now = now.Add(hold)
	if tier, _ := b.decide(now, 0, 0.1, time.Minute); tier != 0 {
		t.Fatalf("after two holds of calm tier = %d, want 0", tier)
	}

	// Deadline pressure escalates even with a shallow queue: the wait
	// estimate (2 queued / 2 pool + 1) x 30s p90 lease = 60s blows a
	// 10s headroom.
	if tier, _ := b.decide(now, 2, 30, 10*time.Second); tier != 2 {
		t.Fatalf("deadline-pressure decide = tier %d, want 2", tier)
	}

	// Hopeless: the wait estimate alone exceeds 4x the headroom at the
	// deepest tier.
	if _, refuse := b.decide(now, 8, 30, 10*time.Second); !refuse {
		t.Fatal("hopeless overload not refused")
	}
}

// TestBrownoutVariantIsolation: a browned-out response is cached under
// the degraded variant key only, and a follow-up full-quality request
// re-meshes at full quality — it never serves the coarse blob.
func TestBrownoutVariantIsolation(t *testing.T) {
	cache, _, err := cachestore.Open(cachestore.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cache.Close() })
	srv, ts := newTestServer(t, Config{
		PoolSize:     1,
		Cache:        cache,
		Brownout:     true,
		BrownoutHold: 10 * time.Millisecond,
	})

	// Pin the controller at maximal pressure: every request degrades to
	// the deepest tier.
	restore := faultinject.Enable(faultinject.New(faultinject.Config{
		Seed:  1,
		Rates: map[faultinject.Point]float64{faultinject.BrownoutStuck: 1},
	}))
	// Scale 6: large enough that the degraded tier's doubled δ
	// actually produces a different (smaller) mesh.
	body := nrrdBody(t, 6)
	key := ImageKey(body)
	empty := MeshSpec{}
	fullVariant := empty.variant()
	ladder := DefaultBrownoutLadder()
	degSpec := empty.browned(ladder[len(ladder)-1])
	degradedVariant := degSpec.variant()

	resp, err := http.Post(ts.URL+"/v1/mesh", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	degraded := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("browned request status %d: %s", resp.StatusCode, degraded)
	}
	if got := resp.Header.Get(BrownoutHeader); got != "2" {
		t.Fatalf("%s = %q, want \"2\"", BrownoutHeader, got)
	}
	if _, ok := srv.CacheETag(key, degradedVariant); !ok {
		t.Fatalf("degraded result not cached under its own variant %q", degradedVariant)
	}
	if _, ok := srv.CacheETag(key, fullVariant); ok {
		t.Fatal("degraded result poisoned the full-quality cache entry")
	}
	restore()

	// Load is gone; the controller walks back to full quality one tier
	// per hold. Poll until a response carries no brownout header.
	var full []byte
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("controller never returned to full quality")
		}
		time.Sleep(20 * time.Millisecond)
		resp, err := http.Post(ts.URL+"/v1/mesh", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		out := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-storm request status %d: %s", resp.StatusCode, out)
		}
		if resp.Header.Get(BrownoutHeader) == "" {
			full = out
			break
		}
	}
	if _, ok := srv.CacheETag(key, fullVariant); !ok {
		t.Fatal("full-quality result not cached under the full-quality variant")
	}
	if bytes.Equal(full, degraded) {
		t.Fatal("full-quality request served the coarse blob")
	}
	if st := srv.Stats(); st.BrownedOut == 0 || st.BrownoutTier != 0 {
		t.Fatalf("stats = browned_out %d, tier %d; want >0 jobs and tier 0", st.BrownedOut, st.BrownoutTier)
	}
}

// TestBrownoutCoalescedByteIdentity: two concurrent requests degraded
// to the same tier share one coalesced flight and receive
// byte-identical bodies, both stamped with the brownout header.
func TestBrownoutCoalescedByteIdentity(t *testing.T) {
	_, ts := newTestServer(t, Config{
		PoolSize:     1,
		Brownout:     true,
		BrownoutHold: time.Minute,
	})
	restore := faultinject.Enable(faultinject.New(faultinject.Config{
		Seed: 1,
		Rates: map[faultinject.Point]float64{
			faultinject.BrownoutStuck: 1,
			faultinject.SlowSession:   1,
		},
		MaxFires: map[faultinject.Point]int64{faultinject.SlowSession: 1},
		Delay:    200 * time.Millisecond,
	}))
	defer restore()

	body := nrrdBody(t, 2)
	type reply struct {
		code int
		hdr  string
		out  []byte
	}
	replies := make([]reply, 2)
	var wg sync.WaitGroup
	for i := range replies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/mesh", "application/octet-stream", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			replies[i] = reply{resp.StatusCode, resp.Header.Get(BrownoutHeader), readAll(t, resp)}
		}(i)
		// Stagger just enough that the second arrives while the first
		// (stalled by SlowSession) is still leading the flight.
		time.Sleep(30 * time.Millisecond)
	}
	wg.Wait()
	for i, r := range replies {
		if r.code != http.StatusOK {
			t.Fatalf("request %d status %d: %s", i, r.code, r.out)
		}
		if r.hdr != "2" {
			t.Fatalf("request %d %s = %q, want \"2\"", i, BrownoutHeader, r.hdr)
		}
	}
	if !bytes.Equal(replies[0].out, replies[1].out) {
		t.Fatal("coalesced degraded responses differ byte-for-byte")
	}
}
