package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"
)

// readEnvelope decodes the shared error envelope.
func readEnvelope(t *testing.T, body io.Reader) (code, reason string) {
	t.Helper()
	var env struct {
		Error struct {
			Code   string `json:"code"`
			Reason string `json:"reason"`
		} `json:"error"`
	}
	if err := json.NewDecoder(body).Decode(&env); err != nil {
		t.Fatalf("decoding envelope: %v", err)
	}
	return env.Error.Code, env.Error.Reason
}

// TestCacheOnlyFastPath: the X-Pi2md-Cache-Only header answers straight
// from the result cache — a hit streams the cached entity without a
// session lease or a run, a miss is 404 cache_miss without queueing —
// and keeps working while the node drains.
func TestCacheOnlyFastPath(t *testing.T) {
	cache := openTestCache(t, t.TempDir())
	srv, ts := newTestServer(t, Config{PoolSize: 1, Cache: cache})
	client := ts.Client()
	body := nrrdBody(t, 7)
	hdr := func(req *http.Request) { req.Header.Set(CacheOnlyHeader, "1") }

	post := func(mod func(*http.Request)) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/mesh", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if mod != nil {
			mod(req)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Cold cache: cache-only is a 404 cache_miss, not a mesh run.
	checkoutsBefore := srv.pool.Stats().Checkouts
	resp := post(hdr)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cold cache-only: status %d, want 404", resp.StatusCode)
	}
	code, reason := readEnvelope(t, resp.Body)
	resp.Body.Close()
	if code != CodeCacheMiss || reason == "" {
		t.Fatalf("cold cache-only envelope: code=%q reason=%q, want %q", code, reason, CodeCacheMiss)
	}
	if got := srv.pool.Stats().Checkouts; got != checkoutsBefore {
		t.Fatalf("cache-only miss consumed a session lease (%d -> %d)", checkoutsBefore, got)
	}
	if srv.mCacheOnlyMiss.Value() != 1 {
		t.Fatalf("cache_only_miss = %d, want 1", srv.mCacheOnlyMiss.Value())
	}

	// Warm the cache with one real mesh.
	resp = post(nil)
	meshed, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warming mesh: status %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("meshed response carries no ETag")
	}

	// Warm cache: cache-only serves the identical entity without a run.
	checkoutsBefore = srv.pool.Stats().Checkouts
	runsBefore := srv.mRunSeconds.Count()
	resp = post(hdr)
	served, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm cache-only: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(CacheOnlyHeader); got != "hit" {
		t.Fatalf("%s = %q, want \"hit\"", CacheOnlyHeader, got)
	}
	if got := resp.Header.Get("ETag"); got != etag {
		t.Fatalf("cache-only ETag %q differs from meshed %q", got, etag)
	}
	if !bytes.Equal(served, meshed) {
		t.Fatal("cache-only body differs from the meshed one")
	}
	if got := srv.pool.Stats().Checkouts; got != checkoutsBefore {
		t.Fatalf("cache-only hit consumed a session lease (%d -> %d)", checkoutsBefore, got)
	}
	if got := srv.mRunSeconds.Count(); got != runsBefore {
		t.Fatal("cache-only hit triggered a meshing run")
	}
	if srv.mCacheOnlyServed.Value() != 1 {
		t.Fatalf("cache_only_served = %d, want 1", srv.mCacheOnlyServed.Value())
	}

	// A draining node stays a read replica: readyz flips to 503 but the
	// cache-only path keeps serving — that is the window the router's
	// replica reads depend on.
	srv.AnnounceDrain(0)
	rz, err := client.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, rz.Body)
	rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", rz.StatusCode)
	}
	resp = post(hdr)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache-only while draining: status %d, want 200", resp.StatusCode)
	}
}

// TestCacheProbeEndpoint: GET /v1/cache/{imageKey}/{variant} is the
// body-less replica read — hits, misses, conditional 304s, key and
// format validation, and path-escaped variants.
func TestCacheProbeEndpoint(t *testing.T) {
	cache := openTestCache(t, t.TempDir())
	_, ts := newTestServer(t, Config{PoolSize: 1, Cache: cache})
	client := ts.Client()
	body := nrrdBody(t, 7)
	key := ImageKey(body)

	get := func(path, inm string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Malformed keys are rejected before any cache work.
	for _, bad := range []string{"notakey", strings.Repeat("A", 64), strings.Repeat("a", 63)} {
		resp := get("/v1/cache/"+bad, "")
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad key %q: status %d, want 400", bad, resp.StatusCode)
		}
		code, _ := readEnvelope(t, resp.Body)
		resp.Body.Close()
		if code != CodeBadRequest {
			t.Fatalf("bad key envelope code %q, want %q", code, CodeBadRequest)
		}
	}

	// Probing a cold cache is a clean miss.
	resp := get("/v1/cache/"+key, "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cold probe: status %d, want 404", resp.StatusCode)
	}
	code, _ := readEnvelope(t, resp.Body)
	resp.Body.Close()
	if code != CodeCacheMiss {
		t.Fatalf("cold probe envelope code %q, want %q", code, CodeCacheMiss)
	}

	// Warm the default variant, then probe it.
	mresp, err := client.Post(ts.URL+"/v1/mesh", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	meshed, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("warming mesh: status %d", mresp.StatusCode)
	}
	etag := mresp.Header.Get("ETag")

	resp = get("/v1/cache/"+key, "")
	probed, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm probe: status %d", resp.StatusCode)
	}
	if resp.Header.Get(CacheOnlyHeader) != "hit" || resp.Header.Get("ETag") != etag {
		t.Fatalf("warm probe headers: %s=%q ETag=%q, want hit/%q",
			CacheOnlyHeader, resp.Header.Get(CacheOnlyHeader), resp.Header.Get("ETag"), etag)
	}
	if !bytes.Equal(probed, meshed) {
		t.Fatal("probe body differs from the meshed one")
	}

	// A probe that already holds the entity costs a 304, not a body.
	resp = get("/v1/cache/"+key, etag)
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified || len(b) != 0 {
		t.Fatalf("conditional probe: status %d body %d bytes, want bare 304", resp.StatusCode, len(b))
	}
	if resp.Header.Get("ETag") != etag {
		t.Fatalf("304 probe ETag %q, want %q", resp.Header.Get("ETag"), etag)
	}

	// The format is part of the entity: an off probe of a vtk-tagged
	// validator must not 304, and a bogus format is a 400.
	resp = get("/v1/cache/"+key+"?format=off", etag)
	resp.Body.Close()
	if resp.StatusCode == http.StatusNotModified {
		t.Fatal("off-format probe validated a vtk entity tag")
	}
	resp = get("/v1/cache/"+key+"?format=stl", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus format: status %d, want 400", resp.StatusCode)
	}

	// Non-default variants travel path-escaped.
	mreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/mesh?delta=2.5", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	mresp, err = client.Do(mreq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("variant mesh: status %d", mresp.StatusCode)
	}
	spec, err := MeshSpecFromQuery(url.Values{"delta": {"2.5"}})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Variant() == "" {
		t.Fatal("delta knob produced the empty variant; test needs a non-default one")
	}
	resp = get("/v1/cache/"+key+"/"+url.PathEscape(spec.Variant()), "")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("escaped-variant probe: status %d, want 200", resp.StatusCode)
	}
	// The same probe without the variant segment is a different (cold)
	// identity — variants must not bleed into each other.
	resp = get("/v1/cache/"+key+"/"+url.PathEscape("d=9,n=0,re=0,fa=0"), "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown-variant probe: status %d, want 404", resp.StatusCode)
	}
}

// TestDrainHandoffEndpoint: POST /v1/drain flips the node to draining
// and answers its MRU cached keys, most recently used first, so a
// router can pre-warm replica routing before ejecting it.
func TestDrainHandoffEndpoint(t *testing.T) {
	cache := openTestCache(t, t.TempDir())
	srv, ts := newTestServer(t, Config{PoolSize: 1, Cache: cache})
	client := ts.Client()

	bodyA, bodyB := nrrdBody(t, 7), nrrdBody(t, 8)
	for _, b := range [][]byte{bodyA, bodyB} {
		resp, err := client.Post(ts.URL+"/v1/mesh", "application/octet-stream", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warming mesh: status %d", resp.StatusCode)
		}
	}

	resp, err := client.Post(ts.URL+"/v1/drain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var ann drainResponse
	if err := json.NewDecoder(resp.Body).Decode(&ann); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: status %d", resp.StatusCode)
	}
	if !ann.Draining || ann.NodeID == "" {
		t.Fatalf("drain response %+v, want draining with a node id", ann)
	}
	if len(ann.Keys) != 2 {
		t.Fatalf("drain announced %d keys, want 2", len(ann.Keys))
	}
	// MRU first: bodyB meshed last.
	if ann.Keys[0].ImageKey != ImageKey(bodyB) || ann.Keys[1].ImageKey != ImageKey(bodyA) {
		t.Fatalf("drain keys out of MRU order: %v", ann.Keys)
	}
	for _, k := range ann.Keys {
		if !ValidImageKey(k.ImageKey) || k.ETag == "" {
			t.Fatalf("drain key %+v malformed", k)
		}
	}
	if !srv.Draining() {
		t.Fatal("drain announcement did not flip the draining flag")
	}

	// New mesh work is now rejected...
	resp, err = client.Post(ts.URL+"/v1/mesh", "application/octet-stream", bytes.NewReader(nrrdBody(t, 9)))
	if err != nil {
		t.Fatal(err)
	}
	code, _ := readEnvelope(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || code != CodeDraining {
		t.Fatalf("post-drain mesh: status %d code %q, want 503 %q", resp.StatusCode, code, CodeDraining)
	}
	// ...but cached reads still serve (the handoff window).
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/cache/"+ImageKey(bodyA), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain cache probe: status %d, want 200", resp.StatusCode)
	}
}

// TestValidImageKey: the key validator accepts exactly the SHA-256
// lowercase-hex shape.
func TestValidImageKey(t *testing.T) {
	if !ValidImageKey(ImageKey([]byte("x"))) {
		t.Fatal("real image key rejected")
	}
	for _, bad := range []string{
		"", "abc",
		strings.Repeat("a", 63), strings.Repeat("a", 65),
		strings.Repeat("A", 64), strings.Repeat("g", 64),
		strings.Repeat("a", 32) + " " + strings.Repeat("a", 31),
	} {
		if ValidImageKey(bad) {
			t.Fatalf("ValidImageKey(%q) = true, want false", bad)
		}
	}
}
