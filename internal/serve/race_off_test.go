//go:build !race

package serve

const raceDetector = false
