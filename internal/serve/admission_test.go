package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/img"
)

// TestAdmissionCountsWaitersOnly is the regression test for the
// admission-accounting bug: a job that immediately acquires a free
// session must not count against QueueDepth. With PoolSize sessions
// all free and QueueDepth 1, a burst of PoolSize simultaneous jobs
// fits entirely in the pool — the old accounting (every arrival bumps
// the wait counter before checkout) spuriously rejected most of the
// burst.
func TestAdmissionCountsWaitersOnly(t *testing.T) {
	const pool = 4
	srv := newBareServer(t, Config{PoolSize: pool, QueueDepth: 1, CoalesceMax: 1})
	image := img.SpherePhantom(6)

	for round := 0; round < 5; round++ {
		start := make(chan struct{})
		errs := make(chan error, pool)
		for i := 0; i < pool; i++ {
			key := fmt.Sprintf("admit-%d-%d", round, i) // distinct keys: no coalescing path at all
			go func() {
				<-start
				_, err := srv.MeshSnapshot(context.Background(), key, "", image, nil)
				errs <- err
			}()
		}
		close(start)
		for i := 0; i < pool; i++ {
			if err := <-errs; errors.Is(err, ErrQueueFull) {
				t.Fatalf("round %d: burst of %d jobs on %d free sessions rejected queue-full", round, pool, pool)
			} else if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
	}
	if n := srv.mRejected.Value("queue_full"); n != 0 {
		t.Errorf("queue_full rejections = %d, want 0", n)
	}
}

// TestCancelClassification is the regression test for the
// cancel-vs-deadline misclassification: a caller that cancels while
// waiting for a session must be rejected with ErrCanceled and the
// "canceled" metric reason — not dressed up as a deadline expiry that
// invites a retry nobody will read.
func TestCancelClassification(t *testing.T) {
	srv, ts := newTestServer(t, Config{PoolSize: 1})
	image := img.SpherePhantom(8)

	// Occupy the only session so jobs must wait.
	lease, err := srv.Pool().Checkout(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer lease.Release()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Cancel once the job is parked in the wait queue.
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) && srv.waiting.Load() == 0 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	_, err = srv.MeshSnapshot(ctx, "cancel-classify", "", image, nil)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled job returned %v, want ErrCanceled", err)
	}
	if errors.Is(err, ErrDeadline) {
		t.Fatal("caller cancellation classified as deadline expiry")
	}
	if n := srv.mRejected.Value("canceled"); n != 1 {
		t.Errorf(`rejected{reason="canceled"} = %d, want 1`, n)
	}
	if n := srv.mRejected.Value("deadline"); n != 0 {
		t.Errorf(`rejected{reason="deadline"} = %d, want 0`, n)
	}

	// Through HTTP the same condition is 499 (client closed request)
	// with no Retry-After: there is no point telling a dead client to
	// come back later.
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	req := httptest.NewRequest("POST", ts.URL+"/v1/mesh", bytes.NewReader(nrrdBody(t, 8))).WithContext(cctx)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("canceled HTTP request: status %d, want %d", rec.Code, StatusClientClosedRequest)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "" {
		t.Errorf("canceled request carries Retry-After %q; a gone client must not be invited back", ra)
	}
}

// TestImageKeyFullDigest is the regression test for the truncated
// image key: the key doubles as the coalescing join key and the
// image-cache/affinity identity, so it must be the complete SHA-256
// digest, not a collision-prone 8-byte prefix.
func TestImageKeyFullDigest(t *testing.T) {
	body := []byte("not really an image, but hashing does not care")
	key := ImageKey(body)
	if len(key) != 64 {
		t.Fatalf("ImageKey is %d hex chars, want 64 (full SHA-256)", len(key))
	}
	sum := sha256.Sum256(body)
	if key != hex.EncodeToString(sum[:]) {
		t.Fatal("ImageKey does not match the full SHA-256 of the body")
	}
}

// TestImageCacheLRUBytes pins decodeImage's eviction policy: the cache
// is LRU accounted in bytes (one byte per voxel), a hit refreshes the
// entry's recency, and inserting past the byte budget evicts the least
// recently used image — not the oldest insertion.
func TestImageCacheLRUBytes(t *testing.T) {
	n := func(scale int) int64 { return int64(img.SpherePhantom(scale).NumVoxels()) }
	n1, n2, n3 := n(6), n(7), n(8)
	// Budget fits the two largest images but not all three, so the third
	// insert must evict exactly one entry — whichever is least recent.
	srv := newBareServer(t, Config{PoolSize: 1, ImageCacheSize: 10, ImageCacheBytes: n2 + n3})

	body := func(scale int) []byte {
		var b bytes.Buffer
		if err := img.WriteNRRD(&b, img.SpherePhantom(scale)); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	b1, b2, b3 := body(6), body(7), body(8)
	k1, k2, k3 := ImageKey(b1), ImageKey(b2), ImageKey(b3)

	im1, err := srv.decodeImage(k1, b1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.decodeImage(k2, b2); err != nil {
		t.Fatal(err)
	}
	// Refresh k1: under LRU this makes k2 the eviction victim; under the
	// old FIFO it would have been k1.
	again, err := srv.decodeImage(k1, b1)
	if err != nil {
		t.Fatal(err)
	}
	if again != im1 {
		t.Fatal("cached image not returned by pointer identity")
	}
	if hits := srv.mImgCacheHit.Value(); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}

	// Third image overflows the byte budget: k2 (least recently used)
	// goes, the refreshed k1 survives.
	if _, err := srv.decodeImage(k3, b3); err != nil {
		t.Fatal(err)
	}
	if got := srv.imgCache.bytes; got != n1+n3 || got > n2+n3 {
		t.Fatalf("cache accounts %d bytes after eviction, want %d (within budget %d)", got, n1+n3, n2+n3)
	}
	if ev := srv.mImgCacheEvict.Value(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	re1, err := srv.decodeImage(k1, b1)
	if err != nil {
		t.Fatal(err)
	}
	if re1 != im1 {
		t.Fatal("recently used k1 was evicted; eviction is not LRU")
	}
	if _, err := srv.decodeImage(k2, b2); err != nil {
		t.Fatal(err)
	}
	if hits := srv.mImgCacheHit.Value(); hits != 2 {
		t.Fatalf("hits = %d, want 2: k2 should have re-parsed after its eviction", hits)
	}

	// An image larger than the whole budget is refused outright rather
	// than evicting the entire cache.
	tiny := newBareServer(t, Config{PoolSize: 1, ImageCacheSize: 10, ImageCacheBytes: 16})
	if _, err := tiny.decodeImage(k1, b1); err != nil {
		t.Fatal(err)
	}
	if tiny.imgCache.lru.Len() != 0 {
		t.Fatal("over-budget image was admitted to the cache")
	}
}

// TestDecodeImageRace: concurrent decodes of the same body must
// converge on one *img.Image pointer — the session EDT cache is keyed
// by pointer identity, so divergent pointers silently defeat it.
func TestDecodeImageRace(t *testing.T) {
	srv := newBareServer(t, Config{PoolSize: 1})
	var b bytes.Buffer
	if err := img.WriteNRRD(&b, img.SpherePhantom(8)); err != nil {
		t.Fatal(err)
	}
	body := b.Bytes()
	key := ImageKey(body)

	const goroutines = 16
	ptrs := make([]*img.Image, goroutines)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			im, err := srv.decodeImage(key, body)
			if err != nil {
				t.Error(err)
				return
			}
			ptrs[i] = im
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if ptrs[i] != ptrs[0] {
			t.Fatal("racing decodes returned divergent image pointers")
		}
	}
}

// TestPoolTryCheckout covers the non-blocking checkout the admission
// fix relies on: a free pool leases immediately, a fully-busy pool
// answers (nil, nil) without blocking, a closed pool errors.
func TestPoolTryCheckout(t *testing.T) {
	p := testPool(t, 1)
	l, err := p.TryCheckout("k")
	if err != nil || l == nil {
		t.Fatalf("TryCheckout on a free pool: lease=%v err=%v", l, err)
	}
	busy, err := p.TryCheckout("k")
	if err != nil || busy != nil {
		t.Fatalf("TryCheckout on a busy pool: lease=%v err=%v, want (nil, nil)", busy, err)
	}
	l.Release()
	p.Close()
	if _, err := p.TryCheckout("k"); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("TryCheckout on a closed pool: %v, want ErrPoolClosed", err)
	}
}
