package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"mime"
	"mime/multipart"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/img"
	"repro/internal/sizing"
)

// SpecVersion is the current request-spec version. A spec may omit the
// field (treated as current) or state it explicitly; any other value
// is rejected so a client compiled against a future revision fails
// loudly instead of being silently misinterpreted.
const SpecVersion = 1

// Duration is a time.Duration that marshals as a Go duration string
// ("30s", "1m30s") and also accepts a bare JSON number of seconds.
type Duration time.Duration

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch x := v.(type) {
	case string:
		dd, err := time.ParseDuration(x)
		if err != nil {
			return fmt.Errorf("bad duration %q: %v", x, err)
		}
		*d = Duration(dd)
		return nil
	case float64:
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("bad duration %v", x)
		}
		*d = Duration(x * float64(time.Second))
		return nil
	default:
		return fmt.Errorf("duration must be a string like %q or a number of seconds", "30s")
	}
}

// MeshSpec is the versioned request spec of /v1/mesh: every per-job
// knob the query string historically carried, as one JSON document
// that can also travel in a request body. Query parameters and the
// JSON body parse into this same struct through one shared validation
// path, so the two surfaces can never drift. When a request carries
// both, the body spec wins wholesale — individual query parameters are
// not merged into it.
type MeshSpec struct {
	// Version is the spec revision; 0 (absent) and SpecVersion are
	// accepted.
	Version int `json:"version,omitempty"`
	// Format selects the response encoding: "vtk" (default) or "off".
	// It is per-waiter — excluded from the tuning variant, folded into
	// the entity tag.
	Format string `json:"format,omitempty"`
	// Delta overrides the sparsity parameter δ (0 = session template).
	Delta float64 `json:"delta,omitempty"`
	// MaxElements caps the final mesh size (0 = template).
	MaxElements int `json:"max_elements,omitempty"`
	// MaxRadiusEdge overrides the rule-R4 bound; values below the
	// paper's provable bound 2 are rejected (0 = template).
	MaxRadiusEdge float64 `json:"max_radius_edge,omitempty"`
	// MinFacetAngle overrides the rule-R1 planar bound in degrees
	// (0 = template).
	MinFacetAngle float64 `json:"min_facet_angle,omitempty"`
	// DeltaScale coarsens the effective δ by a factor ≥ 1 — a cheap
	// preview tier: 2 means half the sampling density per axis (~8×
	// fewer samples). It composes with Delta (or the template's δ when
	// Delta is 0) and is the knob the brownout controller's degradation
	// ladder turns under overload, so it is part of the variant key:
	// a scaled mesh is a different mesh. 0 or 1 = no scaling.
	DeltaScale float64 `json:"delta_scale,omitempty"`
	// Timeout caps the job's total time, queue wait included
	// (0 = server default).
	Timeout Duration `json:"timeout,omitempty"`
	// Size is an optional per-request size function (rule R5),
	// available only through the JSON spec — the query surface stays
	// exactly what it always was.
	Size *SizeSpec `json:"size,omitempty"`
}

// SizeSpec describes a per-request size function compiled to
// core.Config.SizeFunc: per-tissue circumradius bounds and/or
// ball-shaped focus regions, combined by pointwise minimum.
type SizeSpec struct {
	// PerLabel bounds circumradii per tissue label (JSON object keys
	// are decimal labels, 0-255).
	PerLabel map[string]float64 `json:"per_label,omitempty"`
	// Default is the bound for labels without a PerLabel entry
	// (0 = unbounded).
	Default float64 `json:"default,omitempty"`
	// Balls are focus regions refined to H within R of Center, ramping
	// to HOut beyond 2R (HOut 0 = unbounded outside).
	Balls []BallSpec `json:"balls,omitempty"`
}

// BallSpec is one focus region of a SizeSpec.
type BallSpec struct {
	Center [3]float64 `json:"center"`
	R      float64    `json:"r"`
	H      float64    `json:"h"`
	HOut   float64    `json:"h_out,omitempty"`
}

// checkVersion validates a spec-version field.
func checkVersion(v int) error {
	if v != 0 && v != SpecVersion {
		return fmt.Errorf("unsupported spec version %d (this server speaks version %d)", v, SpecVersion)
	}
	return nil
}

// checkKnob rejects NaN/Inf/negative values for an optional positive
// knob (0 = unset).
func checkKnob(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return fmt.Errorf("bad %s=%g (want a positive finite number)", name, v)
	}
	return nil
}

// validate is the single validation path shared by the query and body
// surfaces: everything parseMeshParams historically enforced, plus the
// size-spec rules.
func (m *MeshSpec) validate() error {
	if err := checkVersion(m.Version); err != nil {
		return err
	}
	if m.Format == "" {
		m.Format = "vtk"
	}
	if m.Format != "vtk" && m.Format != "off" {
		return fmt.Errorf("unknown format %q (want vtk or off)", m.Format)
	}
	for name, v := range map[string]float64{
		"delta":           m.Delta,
		"max_radius_edge": m.MaxRadiusEdge,
		"min_facet_angle": m.MinFacetAngle,
	} {
		if err := checkKnob(name, v); err != nil {
			return err
		}
	}
	if m.MaxRadiusEdge != 0 && m.MaxRadiusEdge < 2 {
		// Below the paper's provable bound the refinement rules are not
		// guaranteed to terminate; a server must not accept a request
		// that can spin until the livelock watchdog.
		return fmt.Errorf("max_radius_edge=%g below the provable bound 2", m.MaxRadiusEdge)
	}
	if m.MaxElements < 0 {
		return fmt.Errorf("bad max_elements=%d", m.MaxElements)
	}
	if m.DeltaScale != 0 && (math.IsNaN(m.DeltaScale) || math.IsInf(m.DeltaScale, 0) || m.DeltaScale < 1) {
		// A scale below 1 would refine under overload — the opposite of
		// what the preview tier exists for — and gives a client a lever
		// to request arbitrarily dense meshes outside the delta knob's
		// own validation.
		return fmt.Errorf("bad delta_scale=%g (want a finite factor >= 1)", m.DeltaScale)
	}
	if m.Timeout < 0 {
		return fmt.Errorf("bad timeout=%v (want a positive duration like 30s)", time.Duration(m.Timeout))
	}
	if m.Size != nil {
		if err := m.Size.validate(); err != nil {
			return err
		}
	}
	return nil
}

func (sz *SizeSpec) validate() error {
	if len(sz.PerLabel) == 0 && len(sz.Balls) == 0 {
		return fmt.Errorf("empty size spec: want per_label and/or balls")
	}
	for k, h := range sz.PerLabel {
		l, err := strconv.Atoi(k)
		if err != nil || l < 0 || l > 255 {
			return fmt.Errorf("bad size label %q (want a decimal label 0-255)", k)
		}
		if h <= 0 || math.IsNaN(h) || math.IsInf(h, 0) {
			return fmt.Errorf("bad size for label %s: %g (want a positive finite number)", k, h)
		}
	}
	if sz.Default < 0 || math.IsNaN(sz.Default) || math.IsInf(sz.Default, 0) {
		return fmt.Errorf("bad size default %g", sz.Default)
	}
	for i, b := range sz.Balls {
		for _, c := range b.Center {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return fmt.Errorf("ball %d: non-finite center", i)
			}
		}
		if b.R <= 0 || math.IsNaN(b.R) || math.IsInf(b.R, 0) {
			return fmt.Errorf("ball %d: bad r=%g", i, b.R)
		}
		if b.H <= 0 || math.IsNaN(b.H) || math.IsInf(b.H, 0) {
			return fmt.Errorf("ball %d: bad h=%g", i, b.H)
		}
		if b.HOut < 0 || math.IsNaN(b.HOut) || math.IsInf(b.HOut, 0) {
			return fmt.Errorf("ball %d: bad h_out=%g", i, b.HOut)
		}
	}
	return nil
}

// MeshSpecFromQuery parses the query-parameter surface into a MeshSpec
// through the shared validation path — exported for the router, which
// derives its routing variant from the same grammar the backend will
// apply.
func MeshSpecFromQuery(q url.Values) (MeshSpec, error) {
	return meshSpecFromQuery(q)
}

// meshSpecFromQuery parses the historical query-parameter surface into
// a MeshSpec and validates it through the shared path. The accepted
// grammar is unchanged: format, delta, max_elements, max_radius_edge,
// min_facet_angle, timeout.
func meshSpecFromQuery(q url.Values) (MeshSpec, error) {
	var m MeshSpec
	m.Format = q.Get("format")
	parseF := func(name string, dst *float64) error {
		v := q.Get(name)
		if v == "" {
			return nil
		}
		x, err := strconv.ParseFloat(v, 64)
		// ParseFloat accepts "NaN" and "Inf"; validate() catches those,
		// but a non-positive value must be rejected here too because 0
		// means "unset" in the struct.
		if err != nil || math.IsNaN(x) || math.IsInf(x, 0) || x <= 0 {
			return fmt.Errorf("bad %s=%q (want a positive finite number)", name, v)
		}
		*dst = x
		return nil
	}
	if err := parseF("delta", &m.Delta); err != nil {
		return m, err
	}
	if err := parseF("max_radius_edge", &m.MaxRadiusEdge); err != nil {
		return m, err
	}
	if err := parseF("min_facet_angle", &m.MinFacetAngle); err != nil {
		return m, err
	}
	if v := q.Get("max_elements"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return m, fmt.Errorf("bad max_elements=%q", v)
		}
		m.MaxElements = n
	}
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return m, fmt.Errorf("bad timeout=%q (want a positive duration like 30s)", v)
		}
		m.Timeout = Duration(d)
	}
	if err := m.validate(); err != nil {
		return m, err
	}
	return m, nil
}

// ParseMeshSpec decodes a JSON MeshSpec strictly (unknown fields are
// errors — a typoed knob must not silently run the template) and
// validates it through the same path as the query surface.
func ParseMeshSpec(data []byte) (MeshSpec, error) {
	var m MeshSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return m, fmt.Errorf("decoding mesh spec: %v", err)
	}
	if err := m.validate(); err != nil {
		return m, err
	}
	return m, nil
}

// hasTuning reports whether the spec overrides anything on the session
// template (format and timeout are serving-side, not tuning).
func (m *MeshSpec) hasTuning() bool {
	return m.Delta > 0 || m.MaxElements > 0 || m.MaxRadiusEdge > 0 ||
		m.MinFacetAngle > 0 || m.Size != nil || m.DeltaScale > 1
}

// Variant exposes the canonical tuning-variant encoding — the second
// half of the (image key, variant) identity that coalescing, breakers,
// the cachestore, and the router's hash ring all agree on.
func (m *MeshSpec) Variant() string { return m.variant() }

// variant canonicalizes the tuning knobs for the coalescing key and
// the result cache. The knob encoding is frozen — cache entries and
// breaker priors persisted by earlier builds must keep resolving — so
// the size spec, which did not exist then, is appended as a new
// segment rather than folded into the old one. Empty means "template
// verbatim".
func (m *MeshSpec) variant() string {
	var parts []string
	if m.Delta > 0 || m.MaxElements > 0 || m.MaxRadiusEdge > 0 || m.MinFacetAngle > 0 {
		parts = append(parts, fmt.Sprintf("d=%g,n=%d,re=%g,fa=%g",
			m.Delta, m.MaxElements, m.MaxRadiusEdge, m.MinFacetAngle))
	}
	if m.Size != nil {
		parts = append(parts, "sz="+m.Size.canonical())
	}
	// Appended as its own segment, like the size spec: the knob did not
	// exist when the encoding was frozen, and a scale of 1 (or 0) must
	// produce the exact bytes earlier builds produced.
	if m.DeltaScale > 1 {
		parts = append(parts, fmt.Sprintf("ds=%g", m.DeltaScale))
	}
	return strings.Join(parts, ",")
}

// canonical renders the size spec deterministically (labels sorted
// numerically) so equal specs — regardless of JSON key order — share a
// coalescing flight and a cache entry, and unequal ones never do.
func (sz *SizeSpec) canonical() string {
	var b strings.Builder
	if len(sz.PerLabel) > 0 {
		labels := make([]int, 0, len(sz.PerLabel))
		for k := range sz.PerLabel {
			l, _ := strconv.Atoi(k)
			labels = append(labels, l)
		}
		sort.Ints(labels)
		b.WriteString("pl{")
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(';')
			}
			fmt.Fprintf(&b, "%d:%g", l, sz.PerLabel[strconv.Itoa(l)])
		}
		b.WriteByte('}')
		if sz.Default > 0 {
			fmt.Fprintf(&b, "def=%g", sz.Default)
		}
	}
	for _, ball := range sz.Balls {
		fmt.Fprintf(&b, "b(%g,%g,%g;%g;%g;%g)",
			ball.Center[0], ball.Center[1], ball.Center[2], ball.R, ball.H, ball.HOut)
	}
	return b.String()
}

// tune compiles the spec into the per-run hook RunTuned applies over
// the session template; nil when the spec has no overrides (the common
// path runs the template verbatim). The size function is compiled
// inside the hook because PerLabel needs the run's attached image.
func (m *MeshSpec) tune() func(*core.Config) {
	if !m.hasTuning() {
		return nil
	}
	spec := *m // the hook outlives the request; copy the knobs
	return func(cfg *core.Config) {
		if spec.Delta > 0 {
			cfg.Delta = spec.Delta
		}
		if spec.MaxElements > 0 {
			cfg.MaxElements = spec.MaxElements
		}
		if spec.MaxRadiusEdge > 0 {
			cfg.MaxRadiusEdge = spec.MaxRadiusEdge
		}
		if spec.MinFacetAngle > 0 {
			cfg.MinFacetAngle = spec.MinFacetAngle
		}
		if spec.Size != nil {
			cfg.SizeFunc = core.SizeFunc(spec.Size.compile(cfg.Image))
		}
		if spec.DeltaScale > 1 {
			// Applied last, over whatever δ the run would otherwise use:
			// the explicit override above, the template's value, or the
			// auto default (2× min voxel spacing) resolved here because
			// the engine's own resolution happens after this hook.
			d := cfg.Delta
			if d <= 0 && cfg.Image != nil {
				d = 2 * cfg.Image.MinSpacing()
			}
			if d > 0 {
				cfg.Delta = d * spec.DeltaScale
			}
		}
	}
}

// compile builds the sizing.Func the spec describes; constraints
// compose by pointwise minimum (every bound holds).
func (sz *SizeSpec) compile(im *img.Image) sizing.Func {
	var fs []sizing.Func
	if len(sz.PerLabel) > 0 && im != nil {
		byLabel := make(map[img.Label]float64, len(sz.PerLabel))
		for k, h := range sz.PerLabel {
			l, _ := strconv.Atoi(k)
			byLabel[img.Label(l)] = h
		}
		def := sz.Default
		if def <= 0 {
			def = math.Inf(1)
		}
		fs = append(fs, sizing.PerLabel(im, byLabel, def))
	}
	for _, b := range sz.Balls {
		hOut := b.HOut
		if hOut <= 0 {
			hOut = math.Inf(1)
		}
		fs = append(fs, sizing.Ball(
			geom.Vec3{X: b.Center[0], Y: b.Center[1], Z: b.Center[2]}, b.R, b.H, hOut))
	}
	if len(fs) == 1 {
		return fs[0]
	}
	return sizing.Min(fs...)
}

// readSpecRequest splits a request into its JSON spec part (nil when
// the request carries no spec) and its image payload, capped at
// maxBytes in total. Two surfaces are accepted:
//
//   - raw body: the entire body is the NRRD image and there is no spec
//     part — the historical /v1/mesh surface, byte-for-byte unchanged;
//   - multipart/form-data: part "image" is the NRRD payload and part
//     "spec", when present, is the JSON document. A spec part wins
//     wholesale over query parameters (body-over-params precedence —
//     the two are never merged).
//
// An oversized request surfaces as *http.MaxBytesError so the caller
// can answer 413 on either surface.
func readSpecRequest(w http.ResponseWriter, r *http.Request, maxBytes int64) (spec, image []byte, err error) {
	return SplitSpecImage(r.Header.Get("Content-Type"), http.MaxBytesReader(w, r.Body, maxBytes))
}

// SplitSpecImage splits one request body stream into its JSON spec
// part (nil when the request carries none) and its image payload,
// using the declared Content-Type — the same resolution the backend
// handlers apply, exported so the router derives its routing key from
// exactly the bytes the backend will hash. Size capping is the
// caller's job (wrap body in an http.MaxBytesReader); an overflow
// surfaces unwrapped so errors.As finds *http.MaxBytesError.
func SplitSpecImage(contentType string, body io.Reader) (spec, image []byte, err error) {
	mt, params, _ := mime.ParseMediaType(contentType)
	if mt != "multipart/form-data" {
		raw, err := io.ReadAll(body)
		if err != nil {
			return nil, nil, err
		}
		return nil, raw, nil
	}
	boundary := params["boundary"]
	if boundary == "" {
		return nil, nil, fmt.Errorf("multipart request without a boundary")
	}
	mr := multipart.NewReader(body, boundary)
	for {
		p, perr := mr.NextPart()
		if perr == io.EOF {
			break
		}
		if perr != nil {
			var tooBig *http.MaxBytesError
			if errors.As(perr, &tooBig) {
				return nil, nil, perr
			}
			return nil, nil, fmt.Errorf("reading multipart body: %v", perr)
		}
		name := p.FormName()
		data, rerr := io.ReadAll(p)
		p.Close()
		if rerr != nil {
			var tooBig *http.MaxBytesError
			if errors.As(rerr, &tooBig) {
				return nil, nil, rerr
			}
			return nil, nil, fmt.Errorf("reading part %q: %v", name, rerr)
		}
		switch name {
		case "spec":
			spec = data
		case "image":
			image = data
		}
	}
	if image == nil {
		return nil, nil, fmt.Errorf("multipart request without an %q part", "image")
	}
	return spec, image, nil
}
