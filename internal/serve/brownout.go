package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/faultinject"
)

// BrownoutHeader is stamped on every response whose mesh was produced
// at a degraded tier, carrying the 1-based tier number. Full-quality
// responses carry no header at all, so a client (or the router) can
// detect degradation with a single presence check.
const BrownoutHeader = "X-Pi2md-Brownout"

// ErrOverloaded is returned when even the coarsest brownout tier
// cannot plausibly meet the request's deadline: the one case where the
// controller still refuses instead of degrading. It maps to 503 with
// a Retry-After derived from the queue estimate.
var ErrOverloaded = errors.New("serve: overloaded beyond the coarsest brownout tier")

// BrownoutTier is one rung of the degradation ladder: the quality
// bounds a request is relaxed to when the controller is at that tier.
// Zero fields leave the corresponding spec knob alone, and every
// rewrite is relax-only — a tier can never make a request *stricter*
// than the client asked for.
type BrownoutTier struct {
	// MaxRadiusEdge relaxes rule R4 to at least this bound (0 = keep).
	MaxRadiusEdge float64
	// MinFacetAngle relaxes rule R1 down to at most this many degrees
	// (0 = keep).
	MinFacetAngle float64
	// DeltaScale coarsens the effective δ by at least this factor
	// (0 or 1 = keep).
	DeltaScale float64
	// MaxElements caps the mesh at no more than this many elements
	// (0 = keep).
	MaxElements int
}

// DefaultBrownoutLadder is the two-rung ladder both the daemon and the
// tests use unless overridden: tier 1 relaxes the quality bounds past
// the paper's defaults (R4 2→3, R1 30°→15°), tier 2 additionally
// halves the sampling density per axis (~8× fewer samples) and caps
// the element count — a genuine preview mesh.
func DefaultBrownoutLadder() []BrownoutTier {
	return []BrownoutTier{
		{MaxRadiusEdge: 3, MinFacetAngle: 15},
		{MaxRadiusEdge: 4, MinFacetAngle: 10, DeltaScale: 2, MaxElements: 100000},
	}
}

// ParseBrownoutLadder parses the -brownout-ladder flag syntax: tiers
// separated by '/', knobs within a tier separated by ',', each knob
// one of re= (max radius-edge), fa= (min facet angle), ds= (delta
// scale), n= (max elements). Example:
//
//	re=3,fa=15/re=4,fa=10,ds=2,n=100000
//
// An empty string yields the default ladder.
func ParseBrownoutLadder(s string) ([]BrownoutTier, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return DefaultBrownoutLadder(), nil
	}
	var ladder []BrownoutTier
	for i, tierStr := range strings.Split(s, "/") {
		var t BrownoutTier
		for _, kv := range strings.Split(tierStr, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("brownout ladder tier %d: %q is not knob=value", i+1, kv)
			}
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
				return nil, fmt.Errorf("brownout ladder tier %d: bad %s=%q", i+1, k, v)
			}
			switch k {
			case "re":
				if f != 0 && f < 2 {
					return nil, fmt.Errorf("brownout ladder tier %d: re=%g below the provable bound 2", i+1, f)
				}
				t.MaxRadiusEdge = f
			case "fa":
				t.MinFacetAngle = f
			case "ds":
				if f != 0 && f < 1 {
					return nil, fmt.Errorf("brownout ladder tier %d: ds=%g would refine, not coarsen", i+1, f)
				}
				t.DeltaScale = f
			case "n":
				if f != math.Trunc(f) {
					return nil, fmt.Errorf("brownout ladder tier %d: n=%q is not an integer", i+1, v)
				}
				t.MaxElements = int(f)
			default:
				return nil, fmt.Errorf("brownout ladder tier %d: unknown knob %q (want re/fa/ds/n)", i+1, k)
			}
		}
		if t == (BrownoutTier{}) {
			return nil, fmt.Errorf("brownout ladder tier %d is empty", i+1)
		}
		ladder = append(ladder, t)
	}
	return ladder, nil
}

// browned returns a copy of the spec rewritten to tier t's bounds.
// Every rewrite is relax-only: a knob moves only in the cheaper
// direction, so a client that already asked for something coarser than
// the tier keeps what it asked for. The rewrite happens *before*
// variant-key derivation, so the degraded result is cached and
// coalesced under its own honest variant and can never poison a
// full-quality entry.
func (m MeshSpec) browned(t BrownoutTier) MeshSpec {
	if t.MaxRadiusEdge > 0 && (m.MaxRadiusEdge == 0 || m.MaxRadiusEdge < t.MaxRadiusEdge) {
		// 0 means "template default" (the paper's bound 2), which every
		// valid tier relaxes.
		m.MaxRadiusEdge = t.MaxRadiusEdge
	}
	if t.MinFacetAngle > 0 && (m.MinFacetAngle == 0 || m.MinFacetAngle > t.MinFacetAngle) {
		m.MinFacetAngle = t.MinFacetAngle
	}
	if t.DeltaScale > m.DeltaScale && t.DeltaScale > 1 {
		m.DeltaScale = t.DeltaScale
	}
	if t.MaxElements > 0 && (m.MaxElements == 0 || m.MaxElements > t.MaxElements) {
		m.MaxElements = t.MaxElements
	}
	return m
}

// brownoutController is the feedback controller that picks the tier.
// Inputs are the live EDF queue depth, the waiter's deadline headroom,
// and the observed p90 lease time; output is a ladder index (0 = full
// quality) plus a refuse verdict for the hopeless case. Escalation is
// immediate — by the time the queue says "overloaded" the cheap
// response is already late — while de-escalation steps down one tier
// per hold period of calm, the hysteresis that keeps a controller
// sitting at a tier boundary from flapping a client between qualities
// on alternate requests.
type brownoutController struct {
	ladder   []BrownoutTier
	hold     time.Duration
	queueCap float64
	pool     float64

	mu   sync.Mutex
	tier int       // current ladder position, 0..len(ladder)
	calm time.Time // start of the current spell of desired < tier
}

func newBrownoutController(ladder []BrownoutTier, hold time.Duration, queueCap, poolSize int) *brownoutController {
	if hold <= 0 {
		hold = 5 * time.Second
	}
	return &brownoutController{
		ladder:   ladder,
		hold:     hold,
		queueCap: float64(queueCap),
		pool:     math.Max(1, float64(poolSize)),
	}
}

// Tier reports the controller's current ladder position (0 = full
// quality) without advancing it; it feeds the pi2md_brownout_tier
// gauge.
func (b *brownoutController) Tier() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tier
}

// decide advances the controller with one request's worth of evidence
// and returns the tier that request should run at. queued is the
// number of jobs already waiting admission, p90lease the observed p90
// lease seconds, headroom the requester's deadline budget.
func (b *brownoutController) decide(now time.Time, queued int64, p90lease float64, headroom time.Duration) (tier int, refuse bool) {
	n := len(b.ladder)
	if n == 0 {
		return 0, false
	}

	// Desired tier from queue pressure: the fill fraction maps linearly
	// onto the n+1 rungs (full quality plus n degraded tiers), so an
	// empty queue wants tier 0 and a full one wants the deepest tier.
	qf := float64(queued) / b.queueCap
	desired := int(qf * float64(n+1))
	if desired > n {
		desired = n
	}
	if desired < 0 {
		desired = 0
	}

	// Desired tier from deadline pressure: a queue-position wait
	// estimate (this waiter drains behind queued/pool lease slots, plus
	// its own run) against the requester's budget. If the estimate
	// already eats the whole budget, only the deepest tier has a
	// chance; past half the budget, at least some degradation does.
	estWait := (float64(queued)/b.pool + 1) * p90lease
	est := time.Duration(estWait * float64(time.Second))
	if headroom > 0 && p90lease > 0 {
		switch {
		case est > headroom:
			desired = n
		case 2*est > headroom && desired < 1:
			desired = 1
		}
	}

	if faultinject.Fire(faultinject.BrownoutStuck) {
		desired = n
	}

	// Refuse only when even the deepest tier is hopeless: the wait
	// estimate alone — before any meshing — blows far past the budget.
	// The 4× slack acknowledges that estWait is a p90 of *full-quality*
	// runs while the request will run at the coarsest tier.
	refuse = headroom > 0 && desired == n && est > 4*headroom

	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case desired >= b.tier:
		// Escalate (or hold) immediately; any spell of calm is over.
		b.tier = desired
		b.calm = time.Time{}
	default:
		// De-escalate one tier per hold period of sustained calm.
		if b.calm.IsZero() {
			b.calm = now
		} else if now.Sub(b.calm) >= b.hold {
			b.tier--
			b.calm = now
		}
	}
	if refuse {
		return b.tier, true
	}
	return b.tier, false
}

// applyBrownout runs the controller for one request and returns the
// (possibly rewritten) spec plus the tier it was rewritten to. The
// deadline headroom comes from the request context when the caller set
// one, else from the server's default timeout. On refusal the
// overloaded rejection is counted and ErrOverloaded returned.
func (s *Server) applyBrownout(ctx context.Context, spec MeshSpec) (MeshSpec, int, error) {
	headroom := s.cfg.DefaultTimeout
	if dl, ok := ctx.Deadline(); ok {
		headroom = time.Until(dl)
	}
	tier, refuse := s.brownout.decide(time.Now(), s.waiting.Load(), s.mLeaseSeconds.Quantile(0.90), headroom)
	if refuse {
		s.mRejected.With("overloaded").Inc()
		return spec, 0, ErrOverloaded
	}
	if tier <= 0 {
		return spec, 0, nil
	}
	return spec.browned(s.brownout.ladder[tier-1]), tier, nil
}
