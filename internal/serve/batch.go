package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/img"
)

// flight is one single-flight coalescing group: the leader executes
// the run, followers subscribe to done and share the outcome. members
// counts everyone attached (leader included) and is guarded by the
// server's flightMu; out/err are written once, before done closes,
// and read only after.
type flight struct {
	done    chan struct{}
	out     *SnapshotResult
	err     error
	members int
}

// coalesceKey joins the image identity with the tuning variant so
// only jobs requesting the same mesh (same input and same quality
// knobs) can share a run. The response format is deliberately not
// part of the key: encoding happens per-waiter from the shared
// snapshot.
func coalesceKey(key, variant string) string {
	if variant == "" {
		return key
	}
	return key + "|" + variant
}

// MeshSnapshot runs one mesh job end to end — admission, queueing,
// the run under the job deadline — and returns the result as a
// lease-independent snapshot. variant is a canonical encoding of the
// per-job tuning (quality overrides, element budget); jobs agreeing
// on (image key, variant) are coalesced: the first becomes the
// leader and runs, later arrivals subscribe to its outcome without
// consuming a pool session, up to Config.CoalesceMax members per
// flight (a full flight stops accepting and a fresh one forms).
//
// Followers receive the leader's SnapshotResult with their own
// serving metadata (Coalesced=true, their own queue wait); the
// Snapshot pointer is shared and read-only. A follower whose context
// ends before the leader finishes detaches with ErrDeadline or
// ErrCanceled; a leader that fails fans its error out to every
// follower.
func (s *Server) MeshSnapshot(ctx context.Context, key, variant string, image *img.Image, tune func(*core.Config)) (*SnapshotResult, error) {
	if s.draining.Load() {
		s.mRejected.With("draining").Inc()
		return nil, ErrDraining
	}
	// Persistent-cache short-circuit, before any admission machinery: a
	// verified cached entry answers the job without a session lease, a
	// queue slot, a breaker consultation, or a coalescing flight — so a
	// cache hit can never be rejected for capacity and never trips or
	// probes a breaker.
	if sr, ok := s.cachedSnapshot(key, variant); ok {
		return sr, nil
	}
	if faultinject.Fire(faultinject.QueueFull) {
		s.mRejected.With("queue_full").Inc()
		return nil, ErrQueueFull
	}
	s.inflight.Add(1)
	defer s.inflight.Done()

	jctx := ctx
	if jctx == nil {
		jctx = context.Background()
	}
	if _, ok := jctx.Deadline(); !ok {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(jctx, s.cfg.DefaultTimeout)
		defer cancel()
	}

	ckey := coalesceKey(key, variant)
	if s.cfg.CoalesceMax <= 1 || key == "" {
		// No coalescing: the job is its own leader, but the key's
		// circuit breaker still gates it.
		if err := s.admitLeader(ckey, key); err != nil {
			return nil, err
		}
		return s.leadRun(jctx, ckey, key, variant, image, tune)
	}

	s.flightMu.Lock()
	// Join before breaker consultation: followers don't consume a
	// session, and riding an in-flight (possibly half-open probe) run
	// is always safe.
	if f, ok := s.flights[ckey]; ok && f.members < s.cfg.CoalesceMax {
		f.members++
		s.flightMu.Unlock()
		return s.joinFlight(jctx, key, f)
	}
	// Leading a new flight: the key's breaker decides whether this
	// leader may consume a session at all. Open breaker → fast-fail
	// without touching the pool.
	if ok, retry := s.breakers.admitLocked(ckey, time.Now()); !ok {
		s.flightMu.Unlock()
		s.mRejected.With("breaker_open").Inc()
		return nil, &BreakerOpenError{Key: ckey, RetryAfter: retry}
	}
	// A still-running full flight stays reachable by its members but
	// is unlinked from the table, so the next arrival starts over here.
	f := &flight{done: make(chan struct{}), members: 1}
	s.flights[ckey] = f
	s.flightMu.Unlock()

	out, err := s.leadRun(jctx, ckey, key, variant, image, tune)
	f.out, f.err = out, err
	s.flightMu.Lock()
	if s.flights[ckey] == f {
		delete(s.flights, ckey)
	}
	s.flightMu.Unlock()
	close(f.done)
	if f.err != nil {
		return nil, f.err
	}
	return f.out, nil
}

// admitLeader consults the key's circuit breaker for a non-coalesced
// leader (the coalescing path does this inline under flightMu).
func (s *Server) admitLeader(ckey, key string) error {
	if key == "" || !s.breakers.enabled() {
		return nil
	}
	s.flightMu.Lock()
	ok, retry := s.breakers.admitLocked(ckey, time.Now())
	s.flightMu.Unlock()
	if !ok {
		s.mRejected.With("breaker_open").Inc()
		return &BreakerOpenError{Key: ckey, RetryAfter: retry}
	}
	return nil
}

// leadRun executes a breaker-admitted leader run and reports its
// outcome back to the key's breaker. Capacity rejections and caller
// cancellations are deliberately not reported — they say nothing
// about whether the key itself is poisoned — but a half-open probe
// that ends in one still returns its probe slot so the next arrival
// can try.
func (s *Server) leadRun(jctx context.Context, ckey, key, variant string, image *img.Image, tune func(*core.Config)) (*SnapshotResult, error) {
	out, err := s.runOnce(jctx, key, variant, image, tune)
	if key == "" || !s.breakers.enabled() {
		return out, err
	}
	neutral := err != nil && (errors.Is(err, ErrQueueFull) || errors.Is(err, ErrDraining) ||
		errors.Is(err, ErrDeadline) || errors.Is(err, ErrCanceled) || errors.Is(err, ErrPoolClosed))
	s.flightMu.Lock()
	if neutral {
		s.breakers.releaseProbeLocked(ckey)
	} else if s.breakers.reportLocked(ckey, err == nil, time.Now()) {
		s.mBreakerTrips.Inc()
	}
	s.flightMu.Unlock()
	return out, err
}

// joinFlight waits for the flight's leader to finish and adapts the
// shared outcome to this follower: same snapshot, own metadata. A
// follower that gives up first (deadline or cancellation) detaches —
// the leader keeps running for the remaining members.
func (s *Server) joinFlight(jctx context.Context, key string, f *flight) (*SnapshotResult, error) {
	waitStart := time.Now()
	select {
	case <-jctx.Done():
		s.flightMu.Lock()
		f.members--
		s.flightMu.Unlock()
		return nil, s.rejectForCtx(jctx.Err())
	case <-f.done:
	}
	// Counted only now: a follower that detached above was never served
	// from the leader's run, and counting it would break
	// runs == accepted − coalesced − abandoned.
	s.mCoalesced.Inc()
	s.mAccepted.Inc()
	if f.err != nil {
		s.mFailed.Inc()
		return nil, fmt.Errorf("serve: coalesced run: %w", f.err)
	}
	s.mCompleted.Inc()
	sr := &SnapshotResult{
		Summary: JobSummary{
			ImageKey:    key,
			QueueWaitMs: float64(time.Since(waitStart)) / 1e6,
			EDTCacheHit: f.out.Summary.EDTCacheHit,
			WarmRun:     f.out.Summary.WarmRun,
			Coalesced:   true,
			Run:         f.out.Summary.Run,
		},
		Snapshot: f.out.Snapshot,
		ETag:     f.out.ETag,
	}
	return sr, nil
}
