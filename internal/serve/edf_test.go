package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// TestCheckoutEDFOrdering pins the earliest-deadline-first admission
// contract: with the pool exhausted, a later-arriving near-deadline
// job overtakes an earlier long-deadline waiter (the /v1/simulate
// long-solve vs interactive-mesh mix), instead of the old
// FIFO-by-wakeup behavior handing the session to whichever goroutine
// the scheduler woke first.
func TestCheckoutEDFOrdering(t *testing.T) {
	p, err := NewPool(1, core.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	hold, err := p.TryCheckout("")
	if err != nil || hold == nil {
		t.Fatalf("priming checkout: lease=%v err=%v", hold, err)
	}

	// The long solve arrives FIRST with a far deadline; the interactive
	// mesh job arrives second with a near one.
	longCtx, cancelLong := context.WithTimeout(context.Background(), time.Hour)
	defer cancelLong()
	nearCtx, cancelNear := context.WithTimeout(context.Background(), time.Minute)
	defer cancelNear()

	type got struct {
		who   string
		lease *Lease
		err   error
	}
	order := make(chan got, 2)
	var wg sync.WaitGroup
	checkout := func(who string, ctx context.Context) {
		defer wg.Done()
		l, err := p.Checkout(ctx, "")
		order <- got{who, l, err}
	}
	wg.Add(1)
	go checkout("long-solve", longCtx)
	waitWaiters(t, p, 1)
	wg.Add(1)
	go checkout("near-mesh", nearCtx)
	waitWaiters(t, p, 2)

	hold.Release()
	first := <-order
	if first.err != nil {
		t.Fatalf("first grant failed: %v", first.err)
	}
	if first.who != "near-mesh" {
		t.Fatalf("session granted to %q first, want the near-deadline job", first.who)
	}
	first.lease.Release()
	second := <-order
	if second.err != nil {
		t.Fatalf("second grant failed: %v", second.err)
	}
	if second.who != "long-solve" {
		t.Fatalf("second grant went to %q, want long-solve", second.who)
	}
	second.lease.Release()
	wg.Wait()
}

// TestCheckoutEDFDeadlineBeatsNone pins the tie-break: a waiter with
// any deadline outranks one with none, and equal-deadline waiters are
// served FIFO.
func TestCheckoutEDFDeadlineBeatsNone(t *testing.T) {
	p, err := NewPool(1, core.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	hold, err := p.TryCheckout("")
	if err != nil || hold == nil {
		t.Fatalf("priming checkout: lease=%v err=%v", hold, err)
	}

	dlCtx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()

	order := make(chan string, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		l, err := p.Checkout(context.Background(), "") // no deadline, arrives first
		if err != nil {
			t.Errorf("no-deadline checkout: %v", err)
			return
		}
		order <- "none"
		l.Release()
	}()
	waitWaiters(t, p, 1)
	go func() {
		defer wg.Done()
		l, err := p.Checkout(dlCtx, "")
		if err != nil {
			t.Errorf("deadline checkout: %v", err)
			return
		}
		order <- "deadline"
		l.Release()
	}()
	waitWaiters(t, p, 2)

	hold.Release()
	if first := <-order; first != "deadline" {
		t.Fatalf("first grant went to %q, want the deadline-bearing waiter", first)
	}
	<-order
	wg.Wait()
}

// TestCheckoutCanceledWaiterReleasesGrant exercises the grant/cancel
// race: a waiter whose context dies must hand any in-flight grant to
// the next waiter instead of leaking the session.
func TestCheckoutCanceledWaiterReleasesGrant(t *testing.T) {
	p, err := NewPool(1, core.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	hold, err := p.TryCheckout("")
	if err != nil || hold == nil {
		t.Fatalf("priming checkout: lease=%v err=%v", hold, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := p.Checkout(ctx, "")
		errc <- err
	}()
	waitWaiters(t, p, 1)
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("canceled checkout returned a lease")
	}
	hold.Release()
	// The session must still be checkoutable (not leaked to the dead
	// waiter, not double-busy).
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	l, err := p.Checkout(ctx2, "")
	if err != nil {
		t.Fatalf("post-cancel checkout: %v", err)
	}
	l.Release()
}

func waitWaiters(t *testing.T, p *Pool, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.Waiters() < n {
		if time.Now().After(deadline) {
			t.Fatalf("never saw %d waiters (have %d)", n, p.Waiters())
		}
		time.Sleep(time.Millisecond)
	}
}
