package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/meshio"
)

// Handler returns the server's HTTP surface:
//
//	POST /v1/mesh      NRRD body (raw or gzip encoding) → VTK/OFF mesh
//	POST /v1/simulate  multipart spec+image → solved FEM field on the mesh
//	GET  /healthz      liveness (always "ok" while the process is alive)
//	GET  /readyz       readiness (503 while draining or with no healthy sessions)
//	GET  /v1/stats     JSON serving statistics
//	GET  /metrics      Prometheus text exposition
//
// /v1/mesh accepts its knobs two ways, parsed into the same MeshSpec:
// query parameters (format=vtk|off, delta, max_elements,
// max_radius_edge, min_facet_angle, timeout) exactly as before, or a
// multipart/form-data body with a JSON "spec" part and an "image"
// part. When a spec part is present it wins wholesale over the query
// string. Every 4xx/5xx carries the JSON error envelope.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/mesh", s.handleMesh)
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.countRequests(mux)
}

// countRequests wraps the mux to record every response's status code
// and stamp the node identity: every response — success or rejection —
// carries X-Pi2md-Node, so a router test can assert which backend a
// request landed on without parsing bodies.
func (s *Server) countRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(NodeHeader, s.nodeID)
		cw := &codeWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(cw, r)
		s.mRequests.With(strconv.Itoa(cw.code)).Inc()
	})
}

// NodeHeader is the response header carrying the serving backend's
// boot-stable node identity.
const NodeHeader = "X-Pi2md-Node"

type codeWriter struct {
	http.ResponseWriter
	code    int
	written bool
}

func (w *codeWriter) WriteHeader(code int) {
	if !w.written {
		w.code = code
		w.written = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *codeWriter) Write(b []byte) (int, error) {
	w.written = true
	return w.ResponseWriter.Write(b)
}

// readMeshRequest resolves a request into its MeshSpec and image
// payload, honoring body-over-params precedence: a multipart "spec"
// part replaces the query string wholesale, a spec-less request parses
// the query exactly as the server always has.
func (s *Server) readMeshRequest(w http.ResponseWriter, r *http.Request) (MeshSpec, []byte, bool) {
	specJSON, image, err := readSpecRequest(w, r, s.cfg.MaxRequestBytes)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
				"request body exceeds the %d byte cap", s.cfg.MaxRequestBytes)
			return MeshSpec{}, nil, false
		}
		httpError(w, http.StatusBadRequest, CodeBadRequest, "reading body: %v", err)
		return MeshSpec{}, nil, false
	}
	if len(image) == 0 {
		httpError(w, http.StatusBadRequest, CodeBadRequest,
			"empty body: expected an NRRD label image")
		return MeshSpec{}, nil, false
	}
	var spec MeshSpec
	if specJSON != nil {
		spec, err = ParseMeshSpec(specJSON)
	} else {
		spec, err = meshSpecFromQuery(r.URL.Query())
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, CodeBadRequest, "bad request: %v", err)
		return MeshSpec{}, nil, false
	}
	return spec, image, true
}

// writeMeshError maps a MeshSnapshot failure to its HTTP response and
// returns the envelope code it chose — the simulate handler records it
// as the job outcome. Shared by /v1/mesh and /v1/simulate so the two
// endpoints can never disagree on what a rejection looks like.
func (s *Server) writeMeshError(w http.ResponseWriter, err error) string {
	var brkOpen *BreakerOpenError
	switch {
	case errors.Is(err, ErrQueueFull):
		s.setRetryAfter(w)
		httpError(w, http.StatusTooManyRequests, CodeQueueFull, "%v", err)
		return CodeQueueFull
	case errors.Is(err, ErrDeadline):
		// Capacity signal: the job's deadline expired before a
		// session freed up (or mid-run). Worth retrying shortly.
		s.setRetryAfter(w)
		httpError(w, http.StatusServiceUnavailable, CodeDeadline, "%v", err)
		return CodeDeadline
	case errors.As(err, &brkOpen):
		// The breaker knows exactly when it will admit a probe;
		// its own hint beats the latency-derived one.
		secs := int(math.Ceil(brkOpen.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		httpError(w, http.StatusServiceUnavailable, CodeBreakerOpen, "%v", err)
		return CodeBreakerOpen
	case errors.Is(err, ErrWatchdog):
		// The run was abandoned and its session quarantined; by the
		// time a retry lands the pool has likely backfilled.
		s.setRetryAfter(w)
		httpError(w, http.StatusServiceUnavailable, CodeWatchdog, "%v", err)
		return CodeWatchdog
	case errors.Is(err, ErrCanceled):
		// The client gave up; nobody is listening, but the status
		// still lands in logs and metrics (nginx's 499).
		httpError(w, StatusClientClosedRequest, CodeCanceled, "%v", err)
		return CodeCanceled
	case errors.Is(err, ErrDraining):
		httpError(w, http.StatusServiceUnavailable, CodeDraining, "%v", err)
		return CodeDraining
	case errors.Is(err, ErrPoolClosed), errors.Is(err, core.ErrSessionBusy):
		httpError(w, http.StatusServiceUnavailable, CodeUnavailable, "%v", err)
		return CodeUnavailable
	default:
		httpError(w, http.StatusInternalServerError, CodeInternal, "%v", err)
		return CodeInternal
	}
}

// handleMesh is POST /v1/mesh: resolve the spec, read and cap the
// body, admit, run, stream the mesh back.
func (s *Server) handleMesh(w http.ResponseWriter, r *http.Request) {
	spec, body, ok := s.readMeshRequest(w, r)
	if !ok {
		return
	}

	key := ImageKey(body)

	// Per-request quality knobs ride on top of the pool's session
	// template via the tuned-run hook; the common path (no overrides)
	// runs the template verbatim. The variant string canonicalizes the
	// same knobs for the coalescing key and the result cache, so only
	// jobs requesting the same mesh share a run or a cached entry (the
	// format is per-waiter and excluded from the variant — it is part of
	// the entity tag instead, since VTK and OFF bodies differ).
	variant := spec.variant()
	tune := spec.tune()

	// Conditional GET: If-None-Match is answered from the cache index
	// alone — no image decode, no blob read, no session. 304 carries the
	// entity tag back so the client can keep validating with it.
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		if tag, ok := s.CacheETag(key, variant); ok {
			entity := entityTag(tag, spec.Format)
			if etagMatch(inm, entity) {
				w.Header().Set("ETag", entity)
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
	}

	image, err := s.decodeImage(key, body)
	if err != nil {
		httpError(w, http.StatusBadRequest, CodeBadRequest, "decoding image: %v", err)
		return
	}

	ctx := r.Context()
	if spec.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(spec.Timeout))
		defer cancel()
	}

	sr, err := s.MeshSnapshot(ctx, key, variant, image, tune)
	if err != nil {
		s.writeMeshError(w, err)
		return
	}

	// Encode off-lease from the snapshot: the session that produced
	// this mesh is already serving the next job.
	if sr.ETag != "" {
		w.Header().Set("ETag", entityTag(sr.ETag, spec.Format))
	}
	switch spec.Format {
	case "off":
		w.Header().Set("Content-Type", "model/off")
		meshio.WriteOFFSnapshot(w, sr.Snapshot)
	default:
		w.Header().Set("Content-Type", "text/vtk")
		meshio.WriteVTKSnapshot(w, sr.Snapshot)
	}
}

// entityTag builds the quoted HTTP entity tag for a cached snapshot in
// one response format. The format is folded in because the same
// snapshot encodes to different bytes as VTK and OFF — one blob, two
// entities.
func entityTag(etag, format string) string {
	return `"` + etag + "-" + format + `"`
}

// etagMatch implements If-None-Match: a literal "*" matches anything,
// otherwise the comma-separated candidate list is compared tag by tag.
// Weak validators (W/ prefix) compare by their opaque part — weak
// comparison is permitted for If-None-Match.
func etagMatch(header, entity string) bool {
	opaque := func(t string) string {
		t = strings.TrimSpace(t)
		t = strings.TrimPrefix(t, "W/")
		return t
	}
	want := opaque(entity)
	for _, cand := range strings.Split(header, ",") {
		c := opaque(cand)
		if c == "*" || c == want {
			return true
		}
	}
	return false
}

// setRetryAfter stamps the latency-derived Retry-After hint on a
// capacity rejection.
func (s *Server) setRetryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
}

// handleHealthz is pure liveness: if the process can answer, it is
// alive. Draining and pool health are readiness concerns — /readyz —
// so an orchestrator doesn't kill a pod that is merely finishing its
// in-flight work or rebuilding quarantined sessions.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// handleReadyz reports whether the server should receive new traffic:
// 503 while draining or while every pool session is quarantined.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, CodeDraining, "draining")
		return
	}
	if s.pool.Healthy() == 0 {
		httpError(w, http.StatusServiceUnavailable, CodeUnavailable,
			"no healthy sessions (all quarantined)")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ready\n")
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}
