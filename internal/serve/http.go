package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/meshio"
)

// Handler returns the server's HTTP surface:
//
//	POST /v1/mesh    NRRD body (raw or gzip encoding) → VTK/OFF mesh
//	GET  /healthz    liveness (always "ok" while the process is alive)
//	GET  /readyz     readiness (503 while draining or with no healthy sessions)
//	GET  /v1/stats   JSON serving statistics
//	GET  /metrics    Prometheus text exposition
//
// /v1/mesh query parameters: format=vtk|off (default vtk),
// delta=<world units>, max_elements=<n>, max_radius_edge=<r>,
// min_facet_angle=<deg>, timeout=<duration, e.g. 30s>.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/mesh", s.handleMesh)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.countRequests(mux)
}

// countRequests wraps the mux to record every response's status code.
func (s *Server) countRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cw := &codeWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(cw, r)
		s.mRequests.With(strconv.Itoa(cw.code)).Inc()
	})
}

type codeWriter struct {
	http.ResponseWriter
	code    int
	written bool
}

func (w *codeWriter) WriteHeader(code int) {
	if !w.written {
		w.code = code
		w.written = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *codeWriter) Write(b []byte) (int, error) {
	w.written = true
	return w.ResponseWriter.Write(b)
}

// httpError writes a plain-text error with the given status.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(code)
	fmt.Fprintf(w, format+"\n", args...)
}

// meshParams are the per-request knobs parsed from the query string;
// zero values defer to the session template.
type meshParams struct {
	format        string
	delta         float64
	maxElements   int
	maxRadiusEdge float64
	minFacetAngle float64
	timeout       time.Duration
}

func parseMeshParams(r *http.Request) (meshParams, error) {
	q := r.URL.Query()
	p := meshParams{format: "vtk"}
	if f := q.Get("format"); f != "" {
		if f != "vtk" && f != "off" {
			return p, fmt.Errorf("unknown format %q (want vtk or off)", f)
		}
		p.format = f
	}
	parseF := func(name string, dst *float64) error {
		v := q.Get(name)
		if v == "" {
			return nil
		}
		x, err := strconv.ParseFloat(v, 64)
		// ParseFloat accepts "NaN" and "Inf" — and NaN <= 0 is false, so
		// without the explicit checks a delta=NaN request would reach
		// the engine as a NaN-configured run.
		if err != nil || math.IsNaN(x) || math.IsInf(x, 0) || x <= 0 {
			return fmt.Errorf("bad %s=%q (want a positive finite number)", name, v)
		}
		*dst = x
		return nil
	}
	if err := parseF("delta", &p.delta); err != nil {
		return p, err
	}
	if err := parseF("max_radius_edge", &p.maxRadiusEdge); err != nil {
		return p, err
	}
	if p.maxRadiusEdge != 0 && p.maxRadiusEdge < 2 {
		// Below the paper's provable bound the refinement rules are not
		// guaranteed to terminate; a server must not accept a request
		// that can spin until the livelock watchdog.
		return p, fmt.Errorf("max_radius_edge=%g below the provable bound 2", p.maxRadiusEdge)
	}
	if err := parseF("min_facet_angle", &p.minFacetAngle); err != nil {
		return p, err
	}
	if v := q.Get("max_elements"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return p, fmt.Errorf("bad max_elements=%q", v)
		}
		p.maxElements = n
	}
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return p, fmt.Errorf("bad timeout=%q (want a positive duration like 30s)", v)
		}
		p.timeout = d
	}
	return p, nil
}

// handleMesh is POST /v1/mesh: read and cap the body, admit, run,
// stream the mesh back.
func (s *Server) handleMesh(w http.ResponseWriter, r *http.Request) {
	params, err := parseMeshParams(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds the %d byte cap", s.cfg.MaxRequestBytes)
			return
		}
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(body) == 0 {
		httpError(w, http.StatusBadRequest, "empty body: expected an NRRD label image")
		return
	}

	key := ImageKey(body)

	// Per-request quality knobs ride on top of the pool's session
	// template via the tuned-run hook; the common path (no overrides)
	// runs the template verbatim. The variant string canonicalizes the
	// same knobs for the coalescing key and the result cache, so only
	// jobs requesting the same mesh share a run or a cached entry (the
	// format is per-waiter and excluded from the variant — it is part of
	// the entity tag instead, since VTK and OFF bodies differ).
	var tune func(*core.Config)
	var variant string
	if params.delta > 0 || params.maxElements > 0 || params.maxRadiusEdge > 0 || params.minFacetAngle > 0 {
		variant = fmt.Sprintf("d=%g,n=%d,re=%g,fa=%g",
			params.delta, params.maxElements, params.maxRadiusEdge, params.minFacetAngle)
		tune = func(cfg *core.Config) {
			if params.delta > 0 {
				cfg.Delta = params.delta
			}
			if params.maxElements > 0 {
				cfg.MaxElements = params.maxElements
			}
			if params.maxRadiusEdge > 0 {
				cfg.MaxRadiusEdge = params.maxRadiusEdge
			}
			if params.minFacetAngle > 0 {
				cfg.MinFacetAngle = params.minFacetAngle
			}
		}
	}

	// Conditional GET: If-None-Match is answered from the cache index
	// alone — no image decode, no blob read, no session. 304 carries the
	// entity tag back so the client can keep validating with it.
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		if tag, ok := s.CacheETag(key, variant); ok {
			entity := entityTag(tag, params.format)
			if etagMatch(inm, entity) {
				w.Header().Set("ETag", entity)
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
	}

	image, err := s.decodeImage(key, body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "decoding image: %v", err)
		return
	}

	ctx := r.Context()
	if params.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, params.timeout)
		defer cancel()
	}

	sr, err := s.MeshSnapshot(ctx, key, variant, image, tune)
	if err != nil {
		var brkOpen *BreakerOpenError
		switch {
		case errors.Is(err, ErrQueueFull):
			s.setRetryAfter(w)
			httpError(w, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, ErrDeadline):
			// Capacity signal: the job's deadline expired before a
			// session freed up (or mid-run). Worth retrying shortly.
			s.setRetryAfter(w)
			httpError(w, http.StatusServiceUnavailable, "%v", err)
		case errors.As(err, &brkOpen):
			// The breaker knows exactly when it will admit a probe;
			// its own hint beats the latency-derived one.
			secs := int(math.Ceil(brkOpen.RetryAfter.Seconds()))
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			httpError(w, http.StatusServiceUnavailable, "%v", err)
		case errors.Is(err, ErrWatchdog):
			// The run was abandoned and its session quarantined; by the
			// time a retry lands the pool has likely backfilled.
			s.setRetryAfter(w)
			httpError(w, http.StatusServiceUnavailable, "%v", err)
		case errors.Is(err, ErrCanceled):
			// The client gave up; nobody is listening, but the status
			// still lands in logs and metrics (nginx's 499).
			httpError(w, StatusClientClosedRequest, "%v", err)
		case errors.Is(err, ErrDraining), errors.Is(err, ErrPoolClosed):
			httpError(w, http.StatusServiceUnavailable, "%v", err)
		case errors.Is(err, core.ErrSessionBusy):
			// Unreachable through the pool; surfaced for completeness.
			httpError(w, http.StatusServiceUnavailable, "%v", err)
		default:
			httpError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}

	// Encode off-lease from the snapshot: the session that produced
	// this mesh is already serving the next job.
	if sr.ETag != "" {
		w.Header().Set("ETag", entityTag(sr.ETag, params.format))
	}
	switch params.format {
	case "off":
		w.Header().Set("Content-Type", "model/off")
		meshio.WriteOFFSnapshot(w, sr.Snapshot)
	default:
		w.Header().Set("Content-Type", "text/vtk")
		meshio.WriteVTKSnapshot(w, sr.Snapshot)
	}
}

// entityTag builds the quoted HTTP entity tag for a cached snapshot in
// one response format. The format is folded in because the same
// snapshot encodes to different bytes as VTK and OFF — one blob, two
// entities.
func entityTag(etag, format string) string {
	return `"` + etag + "-" + format + `"`
}

// etagMatch implements If-None-Match: a literal "*" matches anything,
// otherwise the comma-separated candidate list is compared tag by tag.
// Weak validators (W/ prefix) compare by their opaque part — weak
// comparison is permitted for If-None-Match.
func etagMatch(header, entity string) bool {
	opaque := func(t string) string {
		t = strings.TrimSpace(t)
		t = strings.TrimPrefix(t, "W/")
		return t
	}
	want := opaque(entity)
	for _, cand := range strings.Split(header, ",") {
		c := opaque(cand)
		if c == "*" || c == want {
			return true
		}
	}
	return false
}

// setRetryAfter stamps the latency-derived Retry-After hint on a
// capacity rejection.
func (s *Server) setRetryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
}

// handleHealthz is pure liveness: if the process can answer, it is
// alive. Draining and pool health are readiness concerns — /readyz —
// so an orchestrator doesn't kill a pod that is merely finishing its
// in-flight work or rebuilding quarantined sessions.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// handleReadyz reports whether the server should receive new traffic:
// 503 while draining or while every pool session is quarantined.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if s.pool.Healthy() == 0 {
		httpError(w, http.StatusServiceUnavailable, "no healthy sessions (all quarantined)")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ready\n")
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}
