package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/meshio"
)

// Handler returns the server's HTTP surface:
//
//	POST /v1/mesh      NRRD body (raw or gzip encoding) → VTK/OFF mesh
//	POST /v1/simulate  multipart spec+image → solved FEM field on the mesh
//	GET  /healthz      liveness (always "ok" while the process is alive)
//	GET  /readyz       readiness (503 while draining or with no healthy sessions)
//	GET  /v1/stats     JSON serving statistics
//	GET  /metrics      Prometheus text exposition
//
// /v1/mesh accepts its knobs two ways, parsed into the same MeshSpec:
// query parameters (format=vtk|off, delta, max_elements,
// max_radius_edge, min_facet_angle, timeout) exactly as before, or a
// multipart/form-data body with a JSON "spec" part and an "image"
// part. When a spec part is present it wins wholesale over the query
// string. Every 4xx/5xx carries the JSON error envelope.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/mesh", s.handleMesh)
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("GET /v1/cache/{imageKey}", s.handleCacheProbe)
	mux.HandleFunc("GET /v1/cache/{imageKey}/{variant...}", s.handleCacheProbe)
	mux.HandleFunc("POST /v1/drain", s.handleDrain)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.countRequests(mux)
}

// CacheOnlyHeader is the cache-only fast-path request header on
// POST /v1/mesh: with value "1" the request is answered straight from
// the persistent result cache — hit → the full encoded response with
// its ETag, miss → 404 cache_miss — and never touches the queue, the
// session pool, coalescing, or breakers. Responses served this way
// (from the header or from GET /v1/cache) echo the same header with
// value "hit", so a proxy can prove no meshing happened. Cache-only
// reads are also served while draining: a draining node stays a read
// replica until the process exits.
const CacheOnlyHeader = "X-Pi2md-Cache-Only"

// ValidImageKey reports whether s has the only shape an image key can
// have: the full SHA-256 content hash as 64 lowercase hex characters.
// Both tiers use it to reject client-vouched keys before they become
// route keys, cache paths, or metric labels.
func ValidImageKey(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// countRequests wraps the mux to record every response's status code
// and stamp the node identity: every response — success or rejection —
// carries X-Pi2md-Node, so a router test can assert which backend a
// request landed on without parsing bodies.
func (s *Server) countRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(NodeHeader, s.nodeID)
		cw := &codeWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(cw, r)
		s.mRequests.With(strconv.Itoa(cw.code)).Inc()
	})
}

// NodeHeader is the response header carrying the serving backend's
// boot-stable node identity.
const NodeHeader = "X-Pi2md-Node"

type codeWriter struct {
	http.ResponseWriter
	code    int
	written bool
}

func (w *codeWriter) WriteHeader(code int) {
	if !w.written {
		w.code = code
		w.written = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *codeWriter) Write(b []byte) (int, error) {
	w.written = true
	return w.ResponseWriter.Write(b)
}

// readMeshRequest resolves a request into its MeshSpec and image
// payload, honoring body-over-params precedence: a multipart "spec"
// part replaces the query string wholesale, a spec-less request parses
// the query exactly as the server always has.
func (s *Server) readMeshRequest(w http.ResponseWriter, r *http.Request) (MeshSpec, []byte, bool) {
	specJSON, image, err := readSpecRequest(w, r, s.cfg.MaxRequestBytes)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
				"request body exceeds the %d byte cap", s.cfg.MaxRequestBytes)
			return MeshSpec{}, nil, false
		}
		httpError(w, http.StatusBadRequest, CodeBadRequest, "reading body: %v", err)
		return MeshSpec{}, nil, false
	}
	if len(image) == 0 {
		httpError(w, http.StatusBadRequest, CodeBadRequest,
			"empty body: expected an NRRD label image")
		return MeshSpec{}, nil, false
	}
	var spec MeshSpec
	if specJSON != nil {
		spec, err = ParseMeshSpec(specJSON)
	} else {
		spec, err = meshSpecFromQuery(r.URL.Query())
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, CodeBadRequest, "bad request: %v", err)
		return MeshSpec{}, nil, false
	}
	return spec, image, true
}

// writeMeshError maps a MeshSnapshot failure to its HTTP response and
// returns the envelope code it chose — the simulate handler records it
// as the job outcome. Shared by /v1/mesh and /v1/simulate so the two
// endpoints can never disagree on what a rejection looks like.
func (s *Server) writeMeshError(w http.ResponseWriter, err error) string {
	var brkOpen *BreakerOpenError
	switch {
	case errors.Is(err, ErrQueueFull):
		s.setRetryAfter(w)
		httpError(w, http.StatusTooManyRequests, CodeQueueFull, "%v", err)
		return CodeQueueFull
	case errors.Is(err, ErrDeadline):
		// Capacity signal: the job's deadline expired before a
		// session freed up (or mid-run). Worth retrying shortly.
		s.setRetryAfter(w)
		httpError(w, http.StatusServiceUnavailable, CodeDeadline, "%v", err)
		return CodeDeadline
	case errors.As(err, &brkOpen):
		// The breaker knows exactly when it will admit a probe;
		// its own hint beats the latency-derived one.
		secs := int(math.Ceil(brkOpen.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		httpError(w, http.StatusServiceUnavailable, CodeBreakerOpen, "%v", err)
		return CodeBreakerOpen
	case errors.Is(err, ErrWatchdog):
		// The run was abandoned and its session quarantined; by the
		// time a retry lands the pool has likely backfilled.
		s.setRetryAfter(w)
		httpError(w, http.StatusServiceUnavailable, CodeWatchdog, "%v", err)
		return CodeWatchdog
	case errors.Is(err, ErrCanceled):
		// The client gave up; nobody is listening, but the status
		// still lands in logs and metrics (nginx's 499).
		httpError(w, StatusClientClosedRequest, CodeCanceled, "%v", err)
		return CodeCanceled
	case errors.Is(err, ErrOverloaded):
		// Even the coarsest brownout tier can't meet the deadline; the
		// queue-position estimate tells the client when it might.
		s.setRetryAfter(w)
		httpError(w, http.StatusServiceUnavailable, CodeOverloaded, "%v", err)
		return CodeOverloaded
	case errors.Is(err, ErrDraining):
		httpError(w, http.StatusServiceUnavailable, CodeDraining, "%v", err)
		return CodeDraining
	case errors.Is(err, ErrPoolClosed), errors.Is(err, core.ErrSessionBusy):
		httpError(w, http.StatusServiceUnavailable, CodeUnavailable, "%v", err)
		return CodeUnavailable
	default:
		httpError(w, http.StatusInternalServerError, CodeInternal, "%v", err)
		return CodeInternal
	}
}

// handleMesh is POST /v1/mesh: resolve the spec, read and cap the
// body, admit, run, stream the mesh back.
func (s *Server) handleMesh(w http.ResponseWriter, r *http.Request) {
	spec, body, ok := s.readMeshRequest(w, r)
	if !ok {
		return
	}

	key := ImageKey(body)

	// Per-request quality knobs ride on top of the pool's session
	// template via the tuned-run hook; the common path (no overrides)
	// runs the template verbatim. The variant string canonicalizes the
	// same knobs for the coalescing key and the result cache, so only
	// jobs requesting the same mesh share a run or a cached entry (the
	// format is per-waiter and excluded from the variant — it is part of
	// the entity tag instead, since VTK and OFF bodies differ).
	variant := spec.variant()
	tune := spec.tune()

	// Conditional GET: If-None-Match is answered from the cache index
	// alone — no image decode, no blob read, no session. 304 carries the
	// entity tag back so the client can keep validating with it.
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		if tag, ok := s.CacheETag(key, variant); ok {
			entity := entityTag(tag, spec.Format)
			if etagMatch(inm, entity) {
				w.Header().Set("ETag", entity)
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
	}

	// Cache-only fast path: answer from the result cache or 404, never
	// touching admission. The body was read only to derive the key; it
	// is not decoded.
	if r.Header.Get(CacheOnlyHeader) == "1" {
		s.serveCacheOnly(w, key, variant, spec.Format)
		return
	}

	image, err := s.decodeImage(key, body)
	if err != nil {
		httpError(w, http.StatusBadRequest, CodeBadRequest, "decoding image: %v", err)
		return
	}

	ctx := r.Context()
	if spec.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(spec.Timeout))
		defer cancel()
	}

	// Brownout: under queue or deadline pressure, rewrite the spec to a
	// degraded quality tier instead of letting the request ride into a
	// 429/503. A cached full-quality result short-circuits first — it
	// is both better and cheaper than any degraded re-mesh — and the
	// rewrite precedes variant derivation, so the degraded mesh lives
	// under its own honest variant key and coalesces only with other
	// same-tier requests.
	tier := 0
	if s.brownout != nil && !s.draining.Load() {
		if sr, ok := s.cachedSnapshot(key, variant); ok {
			s.writeSnapshot(w, spec.Format, sr)
			return
		}
		var err error
		spec, tier, err = s.applyBrownout(ctx, spec)
		if err != nil {
			s.writeMeshError(w, err)
			return
		}
		if tier > 0 {
			variant = spec.variant()
			tune = spec.tune()
			w.Header().Set(BrownoutHeader, strconv.Itoa(tier))
		}
	}

	sr, err := s.MeshSnapshot(ctx, key, variant, image, tune)
	if err != nil {
		s.writeMeshError(w, err)
		return
	}
	if tier > 0 {
		s.mBrownedOut.With(strconv.Itoa(tier)).Inc()
	}

	s.writeSnapshot(w, spec.Format, sr)
}

// writeSnapshot encodes a snapshot result as the response body in the
// requested format, stamping the format-folded entity tag. Encoding
// happens off-lease: the session that produced the mesh is already
// serving the next job.
func (s *Server) writeSnapshot(w http.ResponseWriter, format string, sr *SnapshotResult) {
	if sr.ETag != "" {
		w.Header().Set("ETag", entityTag(sr.ETag, format))
	}
	switch format {
	case "off":
		w.Header().Set("Content-Type", "model/off")
		meshio.WriteOFFSnapshot(w, sr.Snapshot)
	default:
		w.Header().Set("Content-Type", "text/vtk")
		meshio.WriteVTKSnapshot(w, sr.Snapshot)
	}
}

// serveCacheOnly answers a request from the persistent result cache
// alone: a hit streams the encoded snapshot with its entity tag and the
// CacheOnlyHeader: hit marker; a miss is 404 cache_miss. The pool, the
// queue, coalescing, and breakers are never consulted — this is the
// read path a router walks across replicas before paying a re-mesh, so
// it must stay cheap and side-effect-free on miss.
func (s *Server) serveCacheOnly(w http.ResponseWriter, key, variant, format string) {
	sr, ok := s.cachedSnapshot(key, variant)
	if !ok {
		s.mCacheOnlyMiss.Inc()
		httpError(w, http.StatusNotFound, CodeCacheMiss,
			"no cached result for image %.16s… variant %q", key, variant)
		return
	}
	s.mCacheOnlyServed.Inc()
	w.Header().Set(CacheOnlyHeader, "hit")
	s.writeSnapshot(w, format, sr)
}

// handleCacheProbe is GET /v1/cache/{imageKey}/{variant}: the body-less
// cache read. The variant travels path-escaped (it may be empty — the
// default-knob variant — in which case the path is just the key); the
// format query parameter selects the encoding exactly as /v1/mesh does.
// If-None-Match is honored against the cache index so a replica probe
// that already holds the entity costs a 304, not a body.
func (s *Server) handleCacheProbe(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("imageKey")
	if !ValidImageKey(key) {
		httpError(w, http.StatusBadRequest, CodeBadRequest,
			"image key must be 64 lowercase hex characters (the full SHA-256 of the image)")
		return
	}
	variant := r.PathValue("variant")
	if unesc, err := url.PathUnescape(variant); err == nil {
		variant = unesc
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "vtk"
	}
	if format != "vtk" && format != "off" {
		httpError(w, http.StatusBadRequest, CodeBadRequest, "unknown format %q (want vtk or off)", format)
		return
	}
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		if tag, ok := s.CacheETag(key, variant); ok {
			entity := entityTag(tag, format)
			if etagMatch(inm, entity) {
				s.mCacheOnlyServed.Inc()
				w.Header().Set(CacheOnlyHeader, "hit")
				w.Header().Set("ETag", entity)
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
	}
	s.serveCacheOnly(w, key, variant, format)
}

// drainKey is one warm-state handoff entry of the drain response.
type drainKey struct {
	ImageKey string `json:"image_key"`
	Variant  string `json:"variant"`
	ETag     string `json:"etag"`
}

// drainResponse is the POST /v1/drain document.
type drainResponse struct {
	NodeID   string     `json:"node_id"`
	Draining bool       `json:"draining"`
	Keys     []drainKey `json:"keys"`
}

// drainHandoffLimit bounds the MRU list a drain announcement returns —
// enough to pre-warm a router's routing table, small enough that the
// response stays one JSON document.
const drainHandoffLimit = 256

// handleDrain is POST /v1/drain: announce a planned drain. The server
// flips to draining (readyz 503, new mesh jobs rejected) and answers
// with its MRU cached keys so the caller — typically a router about to
// eject this node — can pre-warm replica reads and ETag state before
// traffic re-homes. The process keeps running; the operator still owns
// the real shutdown, and cache-only reads keep working meanwhile.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	keys := s.AnnounceDrain(drainHandoffLimit)
	out := drainResponse{NodeID: s.nodeID, Draining: true, Keys: make([]drainKey, 0, len(keys))}
	for _, ki := range keys {
		out.Keys = append(out.Keys, drainKey{ImageKey: ki.ImageKey, Variant: ki.Variant, ETag: ki.ETag})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// entityTag builds the quoted HTTP entity tag for a cached snapshot in
// one response format. The format is folded in because the same
// snapshot encodes to different bytes as VTK and OFF — one blob, two
// entities.
func entityTag(etag, format string) string {
	return `"` + etag + "-" + format + `"`
}

// EntityTag is entityTag for other tiers: the router builds candidate
// entity tags from its learned raw etags with it, so the two tiers can
// never disagree on the quoting or the format suffix.
func EntityTag(etag, format string) string { return entityTag(etag, format) }

// ETagMatch is etagMatch for other tiers: the router answers local
// 304s with the exact comparison the backend would have used.
func ETagMatch(header, entity string) bool { return etagMatch(header, entity) }

// etagMatch implements If-None-Match: a literal "*" matches anything,
// otherwise the comma-separated candidate list is compared tag by tag.
// Weak validators (W/ prefix) compare by their opaque part — weak
// comparison is permitted for If-None-Match.
func etagMatch(header, entity string) bool {
	opaque := func(t string) string {
		t = strings.TrimSpace(t)
		t = strings.TrimPrefix(t, "W/")
		return t
	}
	want := opaque(entity)
	for _, cand := range strings.Split(header, ",") {
		c := opaque(cand)
		if c == "*" || c == want {
			return true
		}
	}
	return false
}

// setRetryAfter stamps the latency-derived Retry-After hint on a
// capacity rejection.
func (s *Server) setRetryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
}

// handleHealthz is pure liveness: if the process can answer, it is
// alive. Draining and pool health are readiness concerns — /readyz —
// so an orchestrator doesn't kill a pod that is merely finishing its
// in-flight work or rebuilding quarantined sessions.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// handleReadyz reports whether the server should receive new traffic:
// 503 while draining or while every pool session is quarantined.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, CodeDraining, "draining")
		return
	}
	if s.pool.Healthy() == 0 {
		httpError(w, http.StatusServiceUnavailable, CodeUnavailable,
			"no healthy sessions (all quarantined)")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ready\n")
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}
