package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/img"
)

// TestBreakerStateMachine drives the table directly through
// closed → open → half-open → open → half-open → closed.
func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	tb := newBreakerTable(2, time.Second)

	if ok, _ := tb.admitLocked("k", now); !ok {
		t.Fatal("closed breaker denied a leader")
	}
	tb.reportLocked("k", false, now)
	if ok, _ := tb.admitLocked("k", now); !ok {
		t.Fatal("one failure below threshold tripped the breaker")
	}
	if !tb.reportLocked("k", false, now) {
		t.Fatal("second failure did not trip the breaker")
	}
	if ok, retry := tb.admitLocked("k", now.Add(100*time.Millisecond)); ok {
		t.Fatal("open breaker admitted a leader inside the cooldown")
	} else if retry <= 0 || retry > time.Second {
		t.Fatalf("retry hint %v outside (0, cooldown]", retry)
	}

	// Cooldown over: exactly one probe.
	probeAt := now.Add(1100 * time.Millisecond)
	if ok, _ := tb.admitLocked("k", probeAt); !ok {
		t.Fatal("half-open breaker denied the first probe")
	}
	if ok, _ := tb.admitLocked("k", probeAt); ok {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	if n := tb.openCountLocked(); n != 1 {
		t.Fatalf("open count = %d, want 1 (half-open counts)", n)
	}

	// Failed probe reopens; a capacity-rejected probe just returns the
	// slot.
	tb.reportLocked("k", false, probeAt)
	if ok, _ := tb.admitLocked("k", probeAt.Add(10*time.Millisecond)); ok {
		t.Fatal("reopened breaker admitted a leader immediately")
	}
	probe2 := probeAt.Add(1100 * time.Millisecond)
	if ok, _ := tb.admitLocked("k", probe2); !ok {
		t.Fatal("second half-open denied its probe")
	}
	tb.releaseProbeLocked("k")
	if ok, _ := tb.admitLocked("k", probe2); !ok {
		t.Fatal("released probe slot not reusable")
	}

	// Successful probe closes and forgets the breaker.
	tb.reportLocked("k", true, probe2)
	if n := tb.openCountLocked(); n != 0 {
		t.Fatalf("open count = %d after successful probe, want 0", n)
	}
	if _, present := tb.entries["k"]; present {
		t.Error("closed breaker entry not forgotten")
	}
}

// TestBreakerTripsAndRecovers: repeated leader failures for one
// (image, variant) key trip its breaker — fast-fail 503 without
// consuming a session — while other keys keep flowing; after the
// cooldown a successful probe closes it.
func TestBreakerTripsAndRecovers(t *testing.T) {
	srv := newBareServer(t, Config{
		PoolSize:         1,
		CoalesceMax:      1, // breakers must work without coalescing too
		BreakerThreshold: 2,
		BreakerCooldown:  200 * time.Millisecond,
		SuspectThreshold: 10, // keep session quarantine out of this test
	})
	poisoned := img.SpherePhantom(10)
	healthy := img.SpherePhantom(12)
	ctx := context.Background()

	restore := faultinject.Enable(faultinject.New(faultinject.Config{
		Rates:    map[faultinject.Point]float64{faultinject.RunPoisoned: 1},
		MaxFires: map[faultinject.Point]int64{faultinject.RunPoisoned: 2},
	}))
	defer restore()

	for i := 0; i < 2; i++ {
		if _, err := srv.MeshSnapshot(ctx, "poisoned-key", "", poisoned, nil); err == nil {
			t.Fatalf("poisoned run %d returned no error", i)
		}
	}
	if n := srv.mBreakerTrips.Value(); n != 1 {
		t.Fatalf("breaker trips = %d, want 1", n)
	}
	checkoutsBefore := srv.pool.Stats().Checkouts

	// Open breaker: fast-fail with a positive Retry-After, no session
	// consumed.
	_, err := srv.MeshSnapshot(ctx, "poisoned-key", "", poisoned, nil)
	var brk *BreakerOpenError
	if !errors.As(err, &brk) || !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open-breaker request returned %v, want BreakerOpenError", err)
	}
	if brk.RetryAfter <= 0 {
		t.Errorf("breaker Retry-After = %v, want > 0", brk.RetryAfter)
	}
	if n := srv.pool.Stats().Checkouts; n != checkoutsBefore {
		t.Errorf("fast-fail consumed a session (checkouts %d → %d)", checkoutsBefore, n)
	}
	if n := srv.mRejected.Value("breaker_open"); n != 1 {
		t.Errorf("breaker_open rejections = %d, want 1", n)
	}

	// Healthy keys are unaffected while the poisoned key is open.
	if _, err := srv.MeshSnapshot(ctx, "healthy-key", "", healthy, nil); err != nil {
		t.Fatalf("healthy key failed while another key's breaker is open: %v", err)
	}

	// After the cooldown the probe is admitted; the fault storm is
	// exhausted, so it succeeds and closes the breaker.
	time.Sleep(250 * time.Millisecond)
	if _, err := srv.MeshSnapshot(ctx, "poisoned-key", "", poisoned, nil); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if n := srv.Stats().BreakersOpen; n != 0 {
		t.Errorf("breakers open after successful probe = %d, want 0", n)
	}
	if _, err := srv.MeshSnapshot(ctx, "poisoned-key", "", poisoned, nil); err != nil {
		t.Fatalf("run after breaker closed: %v", err)
	}
}

// TestBreakerHalfOpenSingleProbe: while the half-open trial leader is
// still running, a second arrival for the same key is fast-failed —
// exactly one probe at a time.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	srv := newBareServer(t, Config{
		PoolSize:         2,
		CoalesceMax:      1, // forbid joining the probe's flight: force the breaker decision
		BreakerThreshold: 1,
		BreakerCooldown:  50 * time.Millisecond,
		SuspectThreshold: 10,
	})
	image := img.SpherePhantom(10)
	ctx := context.Background()

	restore := faultinject.Enable(faultinject.New(faultinject.Config{
		Rates:    map[faultinject.Point]float64{faultinject.RunPoisoned: 1},
		MaxFires: map[faultinject.Point]int64{faultinject.RunPoisoned: 1},
	}))
	defer restore()
	if _, err := srv.MeshSnapshot(ctx, "probe-key", "v", image, nil); err == nil {
		t.Fatal("poisoned run returned no error")
	}
	time.Sleep(60 * time.Millisecond) // cooldown elapses: next leader is the probe

	entered := make(chan struct{})
	gate := make(chan struct{})
	probec := make(chan error, 1)
	go func() {
		_, err := srv.MeshSnapshot(ctx, "probe-key", "v", image, func(*core.Config) {
			close(entered)
			<-gate
		})
		probec <- err
	}()
	<-entered

	// Probe in flight: same-key arrivals are denied, not queued.
	_, err := srv.MeshSnapshot(ctx, "probe-key", "v", image, nil)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second arrival during probe returned %v, want ErrBreakerOpen", err)
	}

	close(gate)
	if err := <-probec; err != nil {
		t.Fatalf("probe failed: %v", err)
	}
	if n := srv.Stats().BreakersOpen; n != 0 {
		t.Errorf("breakers open after probe success = %d, want 0", n)
	}
}
