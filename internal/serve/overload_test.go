package serve

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// overloadTally is what one overload phase observed from the client
// side: attempts, browned 200s (X-Pi2md-Brownout present), rejections
// (429 queue-full / 503 deadline-or-overloaded), and anything else —
// which is always a failure.
type overloadTally struct {
	total    atomic.Int64
	ok       atomic.Int64
	browned  atomic.Int64
	rejected atomic.Int64
	other    atomic.Int64
}

func (o *overloadTally) rate() float64 {
	t := o.total.Load()
	if t == 0 {
		return 0
	}
	return float64(o.rejected.Load()) / float64(t)
}

// runOverloadPhase boots a one-session server (with or without the
// brownout controller), warms its lease histogram with two full-quality
// runs, then drives it with a closed-loop worker storm at roughly 2x
// queue capacity for the given duration. Every worker posts a distinct
// quality variant (max_elements=10000+w) so nothing coalesces and every
// admitted request is a real meshing run.
func runOverloadPhase(t *testing.T, brownout bool, seed int64, storm time.Duration) (*Server, *httptest.Server, *overloadTally) {
	t.Helper()
	srv, ts := newTestServer(t, Config{
		PoolSize:       1,
		QueueDepth:     4,
		DefaultTimeout: 30 * time.Second,
		Brownout:       brownout,
		BrownoutHold:   200 * time.Millisecond,
		BrownoutLadder: []BrownoutTier{
			{MaxRadiusEdge: 3, MinFacetAngle: 15, DeltaScale: 4},
			{MaxRadiusEdge: 4, MinFacetAngle: 10, DeltaScale: 8, MaxElements: 100000},
		},
	})
	body := nrrdBody(t, 16)
	client := &http.Client{Timeout: time.Minute}

	// Warm-up: two sequential full-quality runs at the storm's own δ
	// populate the lease histogram, so the controller's p90 evidence
	// reflects what a tier-0 run actually costs on this machine (under
	// -race that is seconds, not the bare-metal couple hundred ms).
	// The element cap must not bind — a binding cap truncates
	// refinement early and teaches the controller a lease time far
	// below the storm's real cost.
	for i := 0; i < 2; i++ {
		code, out := post(t, client, ts.URL+"/v1/mesh?delta=0.5&max_elements=20000&timeout=60s", body)
		if code != http.StatusOK {
			t.Fatalf("warmup run %d: status %d: %s", i, code, out)
		}
	}

	// Storm: 7 closed-loop workers against 1 running + 4 queued slots.
	// delta=0.5 makes a full-quality run take ~85ms on this phantom
	// (seconds under -race), so the EDF queue saturates immediately;
	// the ladder tiers (ds=4, ds=8) run the same image 15-80x cheaper.
	const workers = 7
	tally := &overloadTally{}
	deadline := time.Now().Add(storm)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*1000 + int64(w)))
			url := fmt.Sprintf("%s/v1/mesh?delta=0.5&max_elements=%d&timeout=8s", ts.URL, 10000+w)
			for time.Now().Before(deadline) {
				resp, err := client.Post(url, "application/octet-stream", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				tally.total.Add(1)
				switch {
				case resp.StatusCode == http.StatusOK:
					tally.ok.Add(1)
					if resp.Header.Get(BrownoutHeader) != "" {
						tally.browned.Add(1)
					}
				case resp.StatusCode == http.StatusTooManyRequests,
					resp.StatusCode == http.StatusServiceUnavailable:
					tally.rejected.Add(1)
				default:
					tally.other.Add(1)
					t.Errorf("unexpected status %d under overload", resp.StatusCode)
				}
				// A sliver of think time keeps rejected workers from
				// busy-spinning the queue at pure HTTP overhead speed.
				time.Sleep(time.Duration(2+rng.Intn(5)) * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	return srv, ts, tally
}

// TestOverloadBrownout is the overload chaos phase: the same 2x-capacity
// closed-loop storm is thrown at a controller-disabled control server
// and a brownout-enabled one, and the brownout run must convert
// rejections into degraded 200s — a strictly lower rejection rate, at
// least one browned response, zero unexpected statuses — and then walk
// back to full quality once the storm passes.
func TestOverloadBrownout(t *testing.T) {
	if testing.Short() {
		t.Skip("overload soak skipped in -short mode")
	}
	seed := chaosSeed(t)
	// Under -race a tier-0 run costs seconds instead of hundreds of
	// ms; a longer storm keeps one expensive full-quality leader from
	// dominating the whole comparison window.
	storm := 2500 * time.Millisecond
	if raceDetector {
		storm = 6 * time.Second
	}

	_, _, control := runOverloadPhase(t, false, seed, storm)
	srv, ts, browned := runOverloadPhase(t, true, seed, storm)

	t.Logf("control: total=%d ok=%d rejected=%d (rate %.3f)",
		control.total.Load(), control.ok.Load(), control.rejected.Load(), control.rate())
	t.Logf("brownout: total=%d ok=%d browned=%d rejected=%d (rate %.3f)",
		browned.total.Load(), browned.ok.Load(), browned.browned.Load(), browned.rejected.Load(), browned.rate())

	// The control server must actually have been overloaded, or the
	// comparison is vacuous — this guards the workload calibration.
	if control.rejected.Load() == 0 {
		t.Fatal("control run rejected nothing; the storm is not overloading the server")
	}
	if browned.browned.Load() == 0 {
		t.Fatal("brownout run produced no degraded responses")
	}
	if control.other.Load() != 0 || browned.other.Load() != 0 {
		t.Fatal("a request escaped the 200/429/503 overload contract")
	}
	if br, cr := browned.rate(), control.rate(); br >= cr {
		t.Fatalf("brownout rejection rate %.3f not strictly below control %.3f", br, cr)
	}

	// Hysteresis: with the storm gone, cheap polls walk the controller
	// back down one tier per hold period until full quality returns.
	client := &http.Client{Timeout: time.Minute}
	body := nrrdBody(t, 16)
	recovered := false
	for end := time.Now().Add(20 * time.Second); time.Now().Before(end); {
		time.Sleep(50 * time.Millisecond)
		resp, err := client.Post(ts.URL+"/v1/mesh?delta=2&max_elements=777&timeout=10s",
			"application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && resp.Header.Get(BrownoutHeader) == "" {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatal("controller never recovered to full quality after the storm")
	}
	st := srv.Stats()
	if st.BrownedOut == 0 {
		t.Fatal("stats report zero browned-out jobs after a brownout storm")
	}
	if st.BrownoutTier != 0 {
		t.Fatalf("stats report tier %d after recovery, want 0", st.BrownoutTier)
	}
}
