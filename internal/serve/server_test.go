package serve

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/img"
	"repro/internal/meshio"
)

// nrrdBody serializes a small sphere phantom as raw NRRD bytes.
func nrrdBody(t *testing.T, scale int) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := img.WriteNRRD(&b, img.SpherePhantom(scale)); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// gzipNRRDBody re-encodes a raw NRRD as a gzip-encoded one (NRRD's
// own data encoding, not HTTP content encoding).
func gzipNRRDBody(t *testing.T, raw []byte) []byte {
	t.Helper()
	im, err := img.ReadNRRD(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	fmt.Fprintln(&b, "NRRD0004")
	fmt.Fprintln(&b, "type: uint8")
	fmt.Fprintln(&b, "dimension: 3")
	fmt.Fprintf(&b, "sizes: %d %d %d\n", im.NX, im.NY, im.NZ)
	fmt.Fprintf(&b, "spacings: %g %g %g\n", im.Spacing.X, im.Spacing.Y, im.Spacing.Z)
	fmt.Fprintln(&b, "encoding: gzip")
	fmt.Fprintln(&b)
	gz := gzip.NewWriter(&b)
	vox := make([]byte, 0, im.NumVoxels())
	for k := 0; k < im.NZ; k++ {
		for j := 0; j < im.NY; j++ {
			for i := 0; i < im.NX; i++ {
				vox = append(vox, byte(im.At(i, j, k)))
			}
		}
	}
	if _, err := gz.Write(vox); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Session.Workers == 0 {
		cfg.Session.Workers = 1
	}
	if cfg.Session.LivelockTimeout == 0 {
		cfg.Session.LivelockTimeout = time.Minute
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts
}

func post(t *testing.T, c *http.Client, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := c.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// metricValue scans a Prometheus exposition for a sample line.
func metricValue(t *testing.T, exposition, sample string) float64 {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(exposition))
	for sc.Scan() {
		line := sc.Text()
		if name, val, ok := strings.Cut(line, " "); ok && name == sample {
			var f float64
			if _, err := fmt.Sscanf(val, "%g", &f); err == nil {
				return f
			}
		}
	}
	return 0
}

// TestServerEndToEnd is the acceptance test of the serving layer: an
// in-process server over a pool of 2 sessions takes 8 concurrent mesh
// requests, observes warm-session cache hits, suffers injected
// queue-full rejections, and reports consistent counters on /metrics
// and /v1/stats.
func TestServerEndToEnd(t *testing.T) {
	srv, ts := newTestServer(t, Config{PoolSize: 2, QueueDepth: 16})
	client := ts.Client()
	body := nrrdBody(t, 12)

	// Phase 1 — warm-up: the same payload twice, sequentially. The
	// second request must be routed to the warm session and reuse its
	// cached distance transform.
	for i := 0; i < 2; i++ {
		code, out := post(t, client, ts.URL+"/v1/mesh", body)
		if code != http.StatusOK {
			t.Fatalf("warm-up request %d: status %d: %s", i, code, out)
		}
		if _, err := meshio.ReadVTK(bytes.NewReader(out)); err != nil {
			t.Fatalf("warm-up response %d is not parseable VTK: %v", i, err)
		}
	}
	if hits := srv.mEDTHits.Value(); hits < 1 {
		t.Fatalf("warm-up produced %d EDT cache hits, want >= 1", hits)
	}

	// Phase 2 — a storm of 8 concurrent requests with an injected
	// queue-full fault bounded to exactly 2 firings.
	restore := faultinject.Enable(faultinject.New(faultinject.Config{
		Seed:     42,
		Rates:    map[faultinject.Point]float64{faultinject.QueueFull: 1},
		MaxFires: map[faultinject.Point]int64{faultinject.QueueFull: 2},
	}))
	defer restore()

	const storm = 8
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		byStatus = map[int]int{}
	)
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, out := post(t, client, ts.URL+"/v1/mesh", body)
			if code == http.StatusOK {
				if !bytes.Contains(out, []byte("CELL_TYPES")) {
					t.Error("200 response is not a VTK mesh")
				}
			}
			mu.Lock()
			byStatus[code]++
			mu.Unlock()
		}()
	}
	wg.Wait()
	faultinject.Disable()

	if byStatus[http.StatusTooManyRequests] != 2 {
		t.Fatalf("storm statuses %v: want exactly 2 injected 429s", byStatus)
	}
	if byStatus[http.StatusOK] != storm-2 {
		t.Fatalf("storm statuses %v: want %d successes", byStatus, storm-2)
	}

	// Metrics consistency.
	code, metricsOut := post(t, client, ts.URL+"/v1/mesh", nil)
	_ = metricsOut
	if code != http.StatusBadRequest {
		t.Fatalf("empty body: status %d, want 400", code)
	}
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	expo, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(expo)

	completed := metricValue(t, text, "pi2md_jobs_completed_total")
	accepted := metricValue(t, text, "pi2md_jobs_accepted_total")
	failed := metricValue(t, text, "pi2md_jobs_failed_total")
	coalesced := metricValue(t, text, "pi2md_coalesced_jobs_total")
	rejectedFull := metricValue(t, text, `pi2md_jobs_rejected_total{reason="queue_full"}`)
	edtHits := metricValue(t, text, "pi2md_edt_cache_hits_total")
	warmRuns := metricValue(t, text, "pi2md_warm_runs_total")
	waits := metricValue(t, text, "pi2md_queue_wait_seconds_count")
	runs := metricValue(t, text, "pi2md_run_seconds_count")
	ok200 := metricValue(t, text, `pi2md_http_requests_total{code="200"}`)
	cells := metricValue(t, text, "pi2md_cells_total")

	wantCompleted := float64(2 + storm - 2) // warm-up + storm successes
	if completed != wantCompleted {
		t.Errorf("jobs_completed_total = %v, want %v", completed, wantCompleted)
	}
	if rejectedFull != 2 {
		t.Errorf("jobs_rejected_total{queue_full} = %v, want 2", rejectedFull)
	}
	if edtHits < 1 {
		t.Errorf("edt_cache_hits_total = %v, want >= 1", edtHits)
	}
	if warmRuns < 1 {
		t.Errorf("warm_runs_total = %v, want >= 1", warmRuns)
	}
	if accepted != completed+failed {
		t.Errorf("accepted %v != completed %v + failed %v", accepted, completed, failed)
	}
	// Queue-wait and run histograms record leaders only: coalesced
	// followers never wait for a session or run one.
	if leaders := accepted - coalesced; waits != leaders || runs != leaders {
		t.Errorf("histogram counts (wait %v, run %v) disagree with leaders %v (accepted %v - coalesced %v)",
			waits, runs, leaders, accepted, coalesced)
	}
	if ok200 != completed {
		t.Errorf("http 200s %v != completed jobs %v", ok200, completed)
	}
	if cells <= 0 {
		t.Errorf("cells_total = %v, want > 0", cells)
	}

	// /v1/stats must agree with /metrics.
	resp, err = client.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Completed != int64(completed) || st.RejectedFull != int64(rejectedFull) {
		t.Errorf("/v1/stats (completed %d, rejected %d) disagrees with /metrics (%v, %v)",
			st.Completed, st.RejectedFull, completed, rejectedFull)
	}
	if st.Pool.Size != 2 {
		t.Errorf("pool size = %d, want 2", st.Pool.Size)
	}
	if st.Pool.Sessions.WarmEDTHits < 1 {
		t.Errorf("pool sessions report %d EDT hits, want >= 1", st.Pool.Sessions.WarmEDTHits)
	}
	if len(st.RecentRuns) == 0 {
		t.Error("no recent runs in /v1/stats")
	}
}

// TestServerRoundTripReaderWriter drives NRRD → mesh → VTK and OFF
// entirely through io.Reader/io.Writer paths — the request body in, a
// parseable mesh out, no temp files — including a gzip-encoded NRRD
// under the server's size cap.
func TestServerRoundTripReaderWriter(t *testing.T) {
	_, ts := newTestServer(t, Config{PoolSize: 1, MaxRequestBytes: 1 << 20})
	client := ts.Client()
	raw := nrrdBody(t, 12)

	// Raw NRRD → VTK: parse the response back and sanity-check it.
	code, out := post(t, client, ts.URL+"/v1/mesh?format=vtk", raw)
	if code != http.StatusOK {
		t.Fatalf("vtk: status %d: %s", code, out)
	}
	rm, err := meshio.ReadVTK(bytes.NewReader(out))
	if err != nil {
		t.Fatalf("parsing VTK response: %v", err)
	}
	if len(rm.Cells) == 0 || len(rm.Verts) == 0 {
		t.Fatalf("VTK round-trip lost the mesh: %d cells, %d verts", len(rm.Cells), len(rm.Verts))
	}
	if len(rm.Labels) != len(rm.Cells) {
		t.Fatalf("VTK round-trip lost tissue labels: %d labels for %d cells", len(rm.Labels), len(rm.Cells))
	}

	// The same volume gzip-encoded must produce the identical mesh
	// (same voxels, same session template, sequential determinism).
	gzBody := gzipNRRDBody(t, raw)
	if len(gzBody) >= len(raw) {
		t.Fatalf("gzip NRRD (%d bytes) is not smaller than raw (%d)", len(gzBody), len(raw))
	}
	code, out2 := post(t, client, ts.URL+"/v1/mesh?format=vtk", gzBody)
	if code != http.StatusOK {
		t.Fatalf("gzip vtk: status %d: %s", code, out2)
	}
	rm2, err := meshio.ReadVTK(bytes.NewReader(out2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rm2.Cells) != len(rm.Cells) {
		t.Errorf("gzip round-trip: %d cells, raw produced %d", len(rm2.Cells), len(rm.Cells))
	}

	// OFF export of the boundary.
	code, off := post(t, client, ts.URL+"/v1/mesh?format=off", raw)
	if code != http.StatusOK {
		t.Fatalf("off: status %d: %s", code, off)
	}
	if !bytes.HasPrefix(off, []byte("OFF")) {
		t.Fatalf("OFF response does not start with OFF header: %.40s", off)
	}
}

// TestServerHostileInputs covers the abuse paths: oversized bodies
// against the size cap, a gzip bomb that decodes past its declared
// voxel count, junk bytes, and bad parameters.
func TestServerHostileInputs(t *testing.T) {
	_, ts := newTestServer(t, Config{PoolSize: 1, MaxRequestBytes: 4 << 10})
	client := ts.Client()

	// A valid-but-large NRRD over the request cap → 413.
	big := nrrdBody(t, 24) // ~14k voxels > 4k cap
	code, _ := post(t, client, ts.URL+"/v1/mesh", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", code)
	}

	// A gzip-encoded NRRD whose stream inflates past the declared
	// sizes: the bounded reader must reject it without inflating the
	// whole bomb. The header fits the cap; the payload lies.
	var bomb bytes.Buffer
	fmt.Fprintln(&bomb, "NRRD0004")
	fmt.Fprintln(&bomb, "type: uint8")
	fmt.Fprintln(&bomb, "dimension: 3")
	fmt.Fprintln(&bomb, "sizes: 4 4 4") // declares 64 voxels
	fmt.Fprintln(&bomb, "spacings: 1 1 1")
	fmt.Fprintln(&bomb, "encoding: gzip")
	fmt.Fprintln(&bomb)
	gz := gzip.NewWriter(&bomb)
	gz.Write(make([]byte, 2048)) // inflates to 32x the declaration
	gz.Close()
	code, out := post(t, client, ts.URL+"/v1/mesh", bomb.Bytes())
	if code != http.StatusBadRequest {
		t.Errorf("gzip bomb: status %d (%s), want 400", code, out)
	}

	// Junk bytes → 400 from the NRRD parser.
	code, _ = post(t, client, ts.URL+"/v1/mesh", []byte("not an image"))
	if code != http.StatusBadRequest {
		t.Errorf("junk body: status %d, want 400", code)
	}

	// Bad query parameters → 400 before any body processing.
	code, _ = post(t, client, ts.URL+"/v1/mesh?format=stl", nrrdBody(t, 8))
	if code != http.StatusBadRequest {
		t.Errorf("bad format: status %d, want 400", code)
	}
	code, _ = post(t, client, ts.URL+"/v1/mesh?timeout=banana", nrrdBody(t, 8))
	if code != http.StatusBadRequest {
		t.Errorf("bad timeout: status %d, want 400", code)
	}
}

// TestServerDeadlineRejection holds the pool's only session and
// verifies a tightly-bounded request is rejected 503 with the
// deadline reason rather than waiting forever.
func TestServerDeadlineRejection(t *testing.T) {
	srv, ts := newTestServer(t, Config{PoolSize: 1})
	client := ts.Client()

	lease, err := srv.Pool().Checkout(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(ts.URL+"/v1/mesh?timeout=50ms", "application/octet-stream",
		bytes.NewReader(nrrdBody(t, 8)))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("deadline-bound request: status %d (%s), want 503", resp.StatusCode, out)
	}
	// A deadline rejection is a capacity signal; it must invite a retry.
	if resp.Header.Get("Retry-After") == "" {
		t.Error("deadline rejection carries no Retry-After header")
	}
	if srv.mRejected.Value("deadline") != 1 {
		t.Fatalf("deadline rejections = %d, want 1", srv.mRejected.Value("deadline"))
	}
	if n := srv.mRejected.Value("canceled"); n != 0 {
		t.Fatalf("canceled rejections = %d, want 0 (deadline expiry misclassified)", n)
	}
	lease.Release()

	// With the session back, the same request succeeds.
	code, _ := post(t, client, ts.URL+"/v1/mesh?timeout=30s", nrrdBody(t, 8))
	if code != http.StatusOK {
		t.Fatalf("request after release: status %d, want 200", code)
	}
}

// TestServerQualityOverrides verifies per-request knobs reach the run:
// a coarser delta must produce fewer tetrahedra than the default.
func TestServerQualityOverrides(t *testing.T) {
	_, ts := newTestServer(t, Config{PoolSize: 1})
	client := ts.Client()
	body := nrrdBody(t, 16)

	count := func(url string) int {
		code, out := post(t, client, url, body)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", url, code, out)
		}
		rm, err := meshio.ReadVTK(bytes.NewReader(out))
		if err != nil {
			t.Fatal(err)
		}
		return len(rm.Cells)
	}

	fine := count(ts.URL + "/v1/mesh")
	coarse := count(ts.URL + "/v1/mesh?delta=6")
	if coarse >= fine {
		t.Errorf("delta=6 produced %d cells, default produced %d: override did not coarsen", coarse, fine)
	}
	capped := count(ts.URL + "/v1/mesh?max_elements=50")
	if capped > 200 {
		t.Errorf("max_elements=50 produced %d cells", capped)
	}

	// A below-bound radius-edge ratio is rejected up front: it could
	// refine forever, and a server must not accept that.
	code, _ := post(t, client, ts.URL+"/v1/mesh?max_radius_edge=1.5", body)
	if code != http.StatusBadRequest {
		t.Errorf("below-bound radius-edge: status %d, want 400", code)
	}
}

// TestServerDrain verifies the graceful-drain contract: draining
// rejects new work with 503, /readyz flips unready while /healthz
// stays alive (liveness vs readiness), and in-flight jobs complete.
func TestServerDrain(t *testing.T) {
	srv, ts := newTestServer(t, Config{PoolSize: 1})
	client := ts.Client()
	body := nrrdBody(t, 12)

	code, _ := post(t, client, ts.URL+"/v1/mesh", body)
	if code != http.StatusOK {
		t.Fatalf("pre-drain request failed: %d", code)
	}
	resp, err := client.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("readyz before drain: %d, want 200", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Liveness is not readiness: the process still answers (an
	// orchestrator must not kill it mid-drain), but it should stop
	// receiving new traffic.
	resp, err = client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz while drained: %d, want 200 (liveness)", resp.StatusCode)
	}
	resp, err = client.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while drained: %d, want 503", resp.StatusCode)
	}
	code, _ = post(t, client, ts.URL+"/v1/mesh", body)
	if code != http.StatusServiceUnavailable {
		t.Errorf("mesh while drained: %d, want 503", code)
	}
	if srv.mRejected.Value("draining") != 1 {
		t.Errorf("draining rejections = %d, want 1", srv.mRejected.Value("draining"))
	}
}

// TestServerSlowSessionFault exercises the SlowSession inject point:
// with the stall armed, queue wait for a second request grows past
// the injected delay.
func TestServerSlowSessionFault(t *testing.T) {
	srv, ts := newTestServer(t, Config{PoolSize: 1})
	client := ts.Client()
	// Two distinct payloads: identical bodies would coalesce into one
	// run and the follower would never enter the session queue.
	bodies := [][]byte{nrrdBody(t, 12), nrrdBody(t, 13)}

	restore := faultinject.Enable(faultinject.New(faultinject.Config{
		Seed:  7,
		Rates: map[faultinject.Point]float64{faultinject.SlowSession: 1},
		Delay: 50 * time.Millisecond,
	}))
	defer restore()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(body []byte) {
			defer wg.Done()
			if code, out := post(t, client, ts.URL+"/v1/mesh", body); code != http.StatusOK {
				t.Errorf("status %d: %s", code, out)
			}
		}(bodies[i])
	}
	wg.Wait()
	faultinject.Disable()

	if srv.mQueueWait.Sum() < 0.045 {
		t.Errorf("queue wait sum = %vs; the slow-session stall did not back up the queue", srv.mQueueWait.Sum())
	}
}
