package serve

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/img"
)

// newBareServer builds a Server without an HTTP front end for
// direct-API coalescing tests.
func newBareServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Session.Workers == 0 {
		cfg.Session.Workers = 1
	}
	if cfg.Session.LivelockTimeout == 0 {
		cfg.Session.LivelockTimeout = time.Minute
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s
}

// waitMembers polls the flight table until the flight for ckey has at
// least want members (the deterministic join barrier of these tests).
func waitMembers(t *testing.T, s *Server, ckey string, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s.flightMu.Lock()
		n := 0
		if f := s.flights[ckey]; f != nil {
			n = f.members
		}
		s.flightMu.Unlock()
		if n >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("flight %q never reached %d members", ckey, want)
}

type jobOutcome struct {
	sr  *SnapshotResult
	err error
}

// TestCoalesceFanOut is the deterministic single-flight contract: a
// leader gated mid-run (the tune hook executes inside the lease),
// three followers joining the flight, one session checkout, one run,
// and the identical snapshot pointer fanned out to everyone.
func TestCoalesceFanOut(t *testing.T) {
	srv := newBareServer(t, Config{PoolSize: 1})
	image := img.SpherePhantom(8)
	const key = "coalesce-fanout"

	gate := make(chan struct{})
	entered := make(chan struct{})
	leaderc := make(chan jobOutcome, 1)
	go func() {
		sr, err := srv.MeshSnapshot(context.Background(), key, "", image, func(*core.Config) {
			close(entered)
			<-gate
		})
		leaderc <- jobOutcome{sr, err}
	}()
	<-entered // the leader is inside its run, holding the only session

	const followers = 3
	fc := make(chan jobOutcome, followers)
	for i := 0; i < followers; i++ {
		go func() {
			sr, err := srv.MeshSnapshot(context.Background(), key, "", image, nil)
			fc <- jobOutcome{sr, err}
		}()
	}
	waitMembers(t, srv, key, 1+followers)
	close(gate)

	leader := <-leaderc
	if leader.err != nil {
		t.Fatalf("leader: %v", leader.err)
	}
	if leader.sr.Summary.Coalesced {
		t.Error("leader summary marked Coalesced")
	}
	for i := 0; i < followers; i++ {
		f := <-fc
		if f.err != nil {
			t.Fatalf("follower: %v", f.err)
		}
		if f.sr.Snapshot != leader.sr.Snapshot {
			t.Error("follower received a different snapshot than the leader")
		}
		if !f.sr.Summary.Coalesced {
			t.Error("follower summary not marked Coalesced")
		}
		if f.sr.Summary.Run.Elements != leader.sr.Summary.Run.Elements {
			t.Error("follower run summary disagrees with the leader")
		}
	}

	if n := srv.mCoalesced.Value(); n != followers {
		t.Errorf("coalesced_jobs_total = %d, want %d", n, followers)
	}
	if n := srv.mRunSeconds.Count(); n != 1 {
		t.Errorf("run count = %d, want exactly 1 (single flight)", n)
	}
	if n := srv.pool.Stats().Checkouts; n != 1 {
		t.Errorf("pool checkouts = %d, want 1", n)
	}
	if a, c := srv.mAccepted.Value(), srv.mCompleted.Value(); a != 1+followers || c != 1+followers {
		t.Errorf("accepted %d / completed %d, want %d each", a, c, 1+followers)
	}
	srv.flightMu.Lock()
	left := len(srv.flights)
	srv.flightMu.Unlock()
	if left != 0 {
		t.Errorf("%d flights left in the table after completion", left)
	}
}

// TestCoalesceLeaderError: a leader whose run dies (context canceled
// mid-run) must fan the error out — followers get the failure
// promptly, never a hang.
func TestCoalesceLeaderError(t *testing.T) {
	srv := newBareServer(t, Config{PoolSize: 1})
	image := img.SpherePhantom(8)
	const key = "coalesce-leader-error"

	lctx, cancelLeader := context.WithCancel(context.Background())
	gate := make(chan struct{})
	entered := make(chan struct{})
	leaderc := make(chan jobOutcome, 1)
	go func() {
		sr, err := srv.MeshSnapshot(lctx, key, "", image, func(*core.Config) {
			close(entered)
			<-gate
		})
		leaderc <- jobOutcome{sr, err}
	}()
	<-entered

	const followers = 2
	fc := make(chan jobOutcome, followers)
	for i := 0; i < followers; i++ {
		go func() {
			sr, err := srv.MeshSnapshot(context.Background(), key, "", image, nil)
			fc <- jobOutcome{sr, err}
		}()
	}
	waitMembers(t, srv, key, 1+followers)

	cancelLeader()
	close(gate)

	leader := <-leaderc
	if leader.err == nil {
		t.Fatal("canceled leader returned no error")
	}
	for i := 0; i < followers; i++ {
		select {
		case f := <-fc:
			if f.err == nil {
				t.Error("follower of a failed leader returned no error")
			}
		case <-time.After(10 * time.Second):
			t.Fatal("follower hung after leader failure")
		}
	}
	if n := srv.mFailed.Value(); n != 1+followers {
		t.Errorf("jobs_failed_total = %d, want %d (leader + fanned-out followers)", n, 1+followers)
	}
}

// TestCoalesceGroupCap: with CoalesceMax=2 a full flight stops
// accepting members; the third identical job leads a second flight on
// its own session instead of joining.
func TestCoalesceGroupCap(t *testing.T) {
	srv := newBareServer(t, Config{PoolSize: 2, CoalesceMax: 2})
	image := img.SpherePhantom(8)
	const key = "coalesce-cap"

	gate := make(chan struct{})
	entered := make(chan struct{}, 2)
	tune := func(*core.Config) {
		entered <- struct{}{}
		<-gate
	}
	outc := make(chan jobOutcome, 3)
	run := func(tn func(*core.Config)) {
		go func() {
			sr, err := srv.MeshSnapshot(context.Background(), key, "", image, tn)
			outc <- jobOutcome{sr, err}
		}()
	}

	run(tune) // leader 1
	<-entered
	run(nil) // follower fills flight 1
	waitMembers(t, srv, key, 2)
	run(tune) // must start flight 2, not join the full one
	<-entered
	close(gate)

	for i := 0; i < 3; i++ {
		if o := <-outc; o.err != nil {
			t.Fatalf("job %d: %v", i, o.err)
		}
	}
	if n := srv.mCoalesced.Value(); n != 1 {
		t.Errorf("coalesced_jobs_total = %d, want 1 (cap keeps job 3 out)", n)
	}
	if n := srv.pool.Stats().Checkouts; n != 2 {
		t.Errorf("pool checkouts = %d, want 2 (two leaders)", n)
	}
	if n := srv.mRunSeconds.Count(); n != 2 {
		t.Errorf("run count = %d, want 2", n)
	}
}

// TestCoalesceVariantsDoNotShare: same image, different quality knobs
// → different flights (a coalesced waiter must never receive a mesh
// built with someone else's parameters).
func TestCoalesceVariantsDoNotShare(t *testing.T) {
	srv := newBareServer(t, Config{PoolSize: 2})
	image := img.SpherePhantom(8)
	const key = "coalesce-variant"

	gate := make(chan struct{})
	entered := make(chan struct{}, 2)
	tune := func(*core.Config) {
		entered <- struct{}{}
		<-gate
	}
	outc := make(chan jobOutcome, 2)
	go func() {
		sr, err := srv.MeshSnapshot(context.Background(), key, "d=2", image, tune)
		outc <- jobOutcome{sr, err}
	}()
	<-entered
	go func() {
		sr, err := srv.MeshSnapshot(context.Background(), key, "d=3", image, tune)
		outc <- jobOutcome{sr, err}
	}()
	<-entered // the second variant ran its own tune: it did not coalesce
	close(gate)

	for i := 0; i < 2; i++ {
		if o := <-outc; o.err != nil {
			t.Fatalf("job %d: %v", i, o.err)
		}
	}
	if n := srv.mCoalesced.Value(); n != 0 {
		t.Errorf("coalesced_jobs_total = %d, want 0 across variants", n)
	}
}

// TestCoalesceHTTP is the acceptance scenario end to end: N identical
// concurrent POSTs while the pool's only session is held hostage, so
// all N provably overlap → exactly one meshing run, N byte-identical
// bodies, coalesced = N-1.
func TestCoalesceHTTP(t *testing.T) {
	srv, ts := newTestServer(t, Config{PoolSize: 1})
	client := ts.Client()
	body := nrrdBody(t, 10)
	key := ImageKey(body)

	// Hold the only session: the leader queues, followers pile onto
	// its flight, and nothing can run until we let go.
	lease, err := srv.Pool().Checkout(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}

	const n = 4
	type reply struct {
		code int
		out  []byte
	}
	replies := make(chan reply, n)
	for i := 0; i < n; i++ {
		go func() {
			code, out := post(t, client, ts.URL+"/v1/mesh", body)
			replies <- reply{code, out}
		}()
	}
	waitMembers(t, srv, key, n)
	lease.Release()

	var first []byte
	for i := 0; i < n; i++ {
		r := <-replies
		if r.code != http.StatusOK {
			t.Fatalf("status %d: %s", r.code, r.out)
		}
		if first == nil {
			first = r.out
		} else if !bytes.Equal(first, r.out) {
			t.Error("coalesced responses are not byte-identical")
		}
	}
	if c := srv.mCoalesced.Value(); c != n-1 {
		t.Errorf("coalesced_jobs_total = %d, want %d", c, n-1)
	}
	if runs := srv.mRunSeconds.Count(); runs != 1 {
		t.Errorf("meshing runs = %d, want exactly 1", runs)
	}
}

// TestCoalesceSlowSession: the SlowSession fault stalls the leader
// inside its lease while followers wait on the flight. Everyone still
// gets the mesh, the stall shows up in the lease-occupancy histogram,
// and only one run happened.
func TestCoalesceSlowSession(t *testing.T) {
	srv, ts := newTestServer(t, Config{PoolSize: 1})
	client := ts.Client()
	body := nrrdBody(t, 10)
	key := ImageKey(body)

	restore := faultinject.Enable(faultinject.New(faultinject.Config{
		Seed:  3,
		Rates: map[faultinject.Point]float64{faultinject.SlowSession: 1},
		Delay: 150 * time.Millisecond,
	}))
	defer restore()

	lease, err := srv.Pool().Checkout(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	var wg sync.WaitGroup
	var mu sync.Mutex
	var bodies [][]byte
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, out := post(t, client, ts.URL+"/v1/mesh", body)
			if code != http.StatusOK {
				t.Errorf("status %d: %s", code, out)
				return
			}
			mu.Lock()
			bodies = append(bodies, out)
			mu.Unlock()
		}()
	}
	waitMembers(t, srv, key, n)
	lease.Release()
	wg.Wait()
	faultinject.Disable()

	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatal("responses diverged under SlowSession")
		}
	}
	if c := srv.mCoalesced.Value(); c != n-1 {
		t.Errorf("coalesced_jobs_total = %d, want %d", c, n-1)
	}
	if runs := srv.mRunSeconds.Count(); runs != 1 {
		t.Errorf("meshing runs = %d, want 1", runs)
	}
	// The injected stall sits inside the lease window; the occupancy
	// histogram must have seen it.
	if occ := srv.mLeaseSeconds.Snapshot(); occ.Count != 1 || occ.Sum < 0.14 {
		t.Errorf("lease occupancy count=%d sum=%v; expected one lease >= 140ms", occ.Count, occ.Sum)
	}
}

// TestCoalesceLeaderPanic: a leader whose run panics (here: inside
// the tune hook, which executes unguarded in the engine) must not
// strand its followers — the panic is recovered into a flight error
// and fanned out, and the leader's session is quarantined.
func TestCoalesceLeaderPanic(t *testing.T) {
	srv := newBareServer(t, Config{PoolSize: 1, BreakerThreshold: -1})
	image := img.SpherePhantom(8)
	const key = "coalesce-leader-panic"

	gate := make(chan struct{})
	entered := make(chan struct{})
	leaderc := make(chan jobOutcome, 1)
	go func() {
		sr, err := srv.MeshSnapshot(context.Background(), key, "", image, func(*core.Config) {
			close(entered)
			<-gate
			panic("injected tune panic")
		})
		leaderc <- jobOutcome{sr, err}
	}()
	<-entered

	const followers = 2
	fc := make(chan jobOutcome, followers)
	for i := 0; i < followers; i++ {
		go func() {
			sr, err := srv.MeshSnapshot(context.Background(), key, "", image, nil)
			fc <- jobOutcome{sr, err}
		}()
	}
	waitMembers(t, srv, key, 1+followers)
	close(gate)

	leader := <-leaderc
	if leader.err == nil || !strings.Contains(leader.err.Error(), "panicked") {
		t.Fatalf("panicked leader returned %v, want a panic-converted error", leader.err)
	}
	for i := 0; i < followers; i++ {
		select {
		case f := <-fc:
			if f.err == nil {
				t.Error("follower of a panicked leader returned no error")
			}
		case <-time.After(10 * time.Second):
			t.Fatal("follower hung after leader panic")
		}
	}
	if n := srv.mFailed.Value(); n != 1+followers {
		t.Errorf("jobs_failed_total = %d, want %d", n, 1+followers)
	}

	// The panic marked the session bad: quarantined and rebuilt.
	srv.pool.WaitSettled()
	if q := srv.pool.Quarantines(); q != 1 {
		t.Errorf("quarantines = %d, want 1 (panicked session must not return to the pool)", q)
	}
	if h := srv.pool.Healthy(); h != 1 {
		t.Errorf("healthy = %d, want 1", h)
	}
}
