package serve

import (
	"errors"
	"fmt"
	"time"
)

// ErrBreakerOpen is the sentinel wrapped by BreakerOpenError: the
// coalesce key's circuit breaker is open and the job was fast-failed
// without consuming a session. The HTTP layer maps it to 503 with the
// breaker's own Retry-After.
var ErrBreakerOpen = errors.New("serve: circuit breaker open for this image/variant")

// BreakerOpenError rejects a job whose (image key, quality variant)
// breaker is open. RetryAfter is how long until the breaker will admit
// a half-open probe.
type BreakerOpenError struct {
	Key        string
	RetryAfter time.Duration
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("serve: circuit breaker open for key %.24s… (retry in %v)", e.Key, e.RetryAfter.Round(time.Millisecond))
}

// Unwrap lets errors.Is(err, ErrBreakerOpen) match.
func (e *BreakerOpenError) Unwrap() error { return ErrBreakerOpen }

// Breaker states. A key with no entry in the table is implicitly
// closed — entries are materialized only by failures, so the table
// stays empty in healthy operation.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breakerEntry is one per-coalesce-key circuit breaker. All fields are
// guarded by the Server's flightMu: the breaker table and the flight
// table protect the same admission decision (who gets to lead a run
// for this key), so they share a lock by design — admitLocked and
// reportLocked must only be called with flightMu held.
type breakerEntry struct {
	state     int
	fails     int       // consecutive leader failures while closed
	openedAt  time.Time // when the breaker last tripped
	probing   bool      // half-open: one trial leader is in flight
	lastTouch time.Time // for bounded-table pruning
}

// breakerTable is the per-key breaker collection, owned by Server and
// guarded by flightMu.
type breakerTable struct {
	entries   map[string]*breakerEntry
	threshold int           // consecutive failures that trip a breaker
	cooldown  time.Duration // open → half-open delay
}

// maxBreakerEntries bounds the table so an attacker cycling hostile
// images cannot grow it without bound; the least-recently-touched
// entries are pruned first. Losing an entry merely closes its breaker.
const maxBreakerEntries = 1024

func newBreakerTable(threshold int, cooldown time.Duration) *breakerTable {
	return &breakerTable{
		entries:   make(map[string]*breakerEntry),
		threshold: threshold,
		cooldown:  cooldown,
	}
}

// enabled reports whether breakers are active at all (threshold > 0).
func (t *breakerTable) enabled() bool { return t != nil && t.threshold > 0 }

// admitLocked decides whether a would-be leader for ckey may run.
// Caller holds flightMu. Returns ok=true to admit; otherwise
// retryAfter is the time until a probe will be admitted.
func (t *breakerTable) admitLocked(ckey string, now time.Time) (ok bool, retryAfter time.Duration) {
	if !t.enabled() {
		return true, 0
	}
	e, present := t.entries[ckey]
	if !present || e.state == breakerClosed {
		return true, 0
	}
	e.lastTouch = now
	if e.state == breakerOpen {
		if wait := t.cooldown - now.Sub(e.openedAt); wait > 0 {
			return false, wait
		}
		// Cooldown elapsed: move to half-open and admit this caller as
		// the single trial probe.
		e.state = breakerHalfOpen
		e.probing = true
		return true, 0
	}
	// Half-open: exactly one probe at a time.
	if e.probing {
		return false, t.cooldown
	}
	e.probing = true
	return true, 0
}

// reportLocked records the outcome of an admitted leader run for ckey.
// Caller holds flightMu. Capacity rejections and caller cancellations
// are not reported — they say nothing about the key's health.
func (t *breakerTable) reportLocked(ckey string, ok bool, now time.Time) (tripped bool) {
	if !t.enabled() {
		return false
	}
	e, present := t.entries[ckey]
	if ok {
		// Success closes (and forgets) the breaker whatever its state.
		if present {
			delete(t.entries, ckey)
		}
		return false
	}
	if !present {
		e = &breakerEntry{}
		t.entries[ckey] = e
		t.pruneLocked(now)
	}
	e.lastTouch = now
	switch e.state {
	case breakerHalfOpen:
		// The probe failed: back to open, restart the cooldown.
		e.state = breakerOpen
		e.openedAt = now
		e.probing = false
		e.fails = t.threshold
		return true
	case breakerClosed:
		e.fails++
		if e.fails >= t.threshold {
			e.state = breakerOpen
			e.openedAt = now
			return true
		}
	}
	return false
}

// releaseProbeLocked returns a half-open probe slot without recording
// an outcome — the admitted leader was rejected for capacity or
// caller reasons before the key's health could be observed, so the
// next arrival gets to probe. Caller holds flightMu.
func (t *breakerTable) releaseProbeLocked(ckey string) {
	if !t.enabled() {
		return
	}
	if e, ok := t.entries[ckey]; ok && e.state == breakerHalfOpen {
		e.probing = false
	}
}

// openCountLocked counts breakers that are not closed (open or
// half-open) — the pi2md_breaker_state gauge. Caller holds flightMu.
func (t *breakerTable) openCountLocked() int {
	if !t.enabled() {
		return 0
	}
	n := 0
	for _, e := range t.entries {
		if e.state != breakerClosed {
			n++
		}
	}
	return n
}

// openKeysLocked lists the coalesce keys whose breakers are not closed
// — what Drain persists as priors for the next boot. Caller holds
// flightMu.
func (t *breakerTable) openKeysLocked() []string {
	if !t.enabled() {
		return nil
	}
	var keys []string
	for k, e := range t.entries {
		if e.state != breakerClosed {
			keys = append(keys, k)
		}
	}
	return keys
}

// seedLocked re-arms breakers for keys known bad at the last graceful
// shutdown. Each is seeded open with an already-elapsed cooldown, so
// the first arrival for the key is admitted as a half-open probe (one
// session at risk) instead of a full-speed retry storm — and a key
// that was actually fixed across the restart closes on that first
// success. Caller holds flightMu.
func (t *breakerTable) seedLocked(keys []string, now time.Time) {
	if !t.enabled() {
		return
	}
	for _, k := range keys {
		if k == "" {
			continue
		}
		if _, ok := t.entries[k]; ok {
			continue
		}
		t.entries[k] = &breakerEntry{
			state:     breakerOpen,
			fails:     t.threshold,
			openedAt:  now.Add(-t.cooldown),
			lastTouch: now,
		}
	}
	t.pruneLocked(now)
}

// pruneLocked evicts the least-recently-touched entries once the table
// exceeds its bound. Caller holds flightMu.
func (t *breakerTable) pruneLocked(now time.Time) {
	for len(t.entries) > maxBreakerEntries {
		var oldestKey string
		var oldest time.Time
		first := true
		for k, e := range t.entries {
			if first || e.lastTouch.Before(oldest) {
				first = false
				oldestKey, oldest = k, e.lastTouch
			}
		}
		delete(t.entries, oldestKey)
	}
}
