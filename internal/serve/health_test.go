package serve

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/img"
)

// sessionPtr reads the session currently installed in pool slot i.
func sessionPtr(p *Pool, i int) *core.Session {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.entries[i].s
}

// TestAbortedSessionQuarantined is the regression test for the
// pre-fix bug this PR exists for: a WorkerPanic storm exhausts the
// run's panic budget, the run aborts, and — before the health ledger
// — the pool returned that session to the next caller uninspected.
// Now the abort quarantines the slot, an asynchronous rebuild swaps
// in a fresh session, and capacity returns to PoolSize.
func TestAbortedSessionQuarantined(t *testing.T) {
	srv := newBareServer(t, Config{PoolSize: 1, BreakerThreshold: -1})
	image := img.SpherePhantom(12)

	old := sessionPtr(srv.pool, 0)
	restore := faultinject.Enable(faultinject.New(faultinject.Config{
		Seed:  1,
		Rates: map[faultinject.Point]float64{faultinject.WorkerPanic: 1},
		After: map[faultinject.Point]int64{faultinject.WorkerPanic: 20},
	}))
	_, err := srv.MeshSnapshot(context.Background(), "quarantine-abort", "", image, nil)
	restore()
	if err == nil {
		t.Fatal("panic-budget-exhausted run returned no error")
	}
	if !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("unexpected error: %v", err)
	}

	srv.pool.WaitSettled()
	if q := srv.pool.Quarantines(); q != 1 {
		t.Errorf("quarantines = %d, want 1", q)
	}
	if rb := srv.pool.Rebuilds(); rb != 1 {
		t.Errorf("rebuilds = %d, want 1", rb)
	}
	if h := srv.pool.Healthy(); h != 1 {
		t.Errorf("healthy sessions = %d, want 1 (pool must backfill)", h)
	}
	if cur := sessionPtr(srv.pool, 0); cur == old {
		t.Error("slot still holds the aborted session (pre-fix behavior: returned to the pool uninspected)")
	}

	// The rebuilt session serves the next job normally.
	if _, err := srv.MeshSnapshot(context.Background(), "quarantine-abort", "", image, nil); err != nil {
		t.Fatalf("run on rebuilt session: %v", err)
	}
}

// TestSuspectThresholdQuarantine: run errors raise a session's
// suspicion; crossing the threshold quarantines it, while a clean run
// in between resets the count.
func TestSuspectThresholdQuarantine(t *testing.T) {
	srv := newBareServer(t, Config{PoolSize: 1, SuspectThreshold: 2, BreakerThreshold: -1})
	image := img.SpherePhantom(10)
	ctx := context.Background()

	// Part 1: suspect, clean, suspect — never two in a row, so no
	// quarantine with threshold 2.
	for i := 0; i < 2; i++ {
		restore := faultinject.Enable(faultinject.New(faultinject.Config{
			Rates:    map[faultinject.Point]float64{faultinject.RunPoisoned: 1},
			MaxFires: map[faultinject.Point]int64{faultinject.RunPoisoned: 1},
		}))
		if _, err := srv.MeshSnapshot(ctx, "suspect", "", image, nil); err == nil {
			t.Fatal("poisoned run returned no error")
		}
		restore()
		if _, err := srv.MeshSnapshot(ctx, "suspect", "", image, nil); err != nil {
			t.Fatalf("clean run %d: %v", i, err)
		}
	}
	if q := srv.pool.Quarantines(); q != 0 {
		t.Fatalf("quarantines = %d after interleaved clean runs, want 0", q)
	}

	// Part 2: two consecutive suspect runs cross the threshold.
	restore := faultinject.Enable(faultinject.New(faultinject.Config{
		Rates:    map[faultinject.Point]float64{faultinject.RunPoisoned: 1},
		MaxFires: map[faultinject.Point]int64{faultinject.RunPoisoned: 2},
	}))
	for i := 0; i < 2; i++ {
		if _, err := srv.MeshSnapshot(ctx, "suspect", "", image, nil); err == nil {
			t.Fatal("poisoned run returned no error")
		}
		srv.pool.WaitSettled() // let a (possible) rebuild finish before the next run
	}
	restore()
	srv.pool.WaitSettled()
	if q := srv.pool.Quarantines(); q != 1 {
		t.Errorf("quarantines = %d after two consecutive suspect runs, want 1", q)
	}
	if h := srv.pool.Healthy(); h != 1 {
		t.Errorf("healthy = %d, want 1", h)
	}
}

// TestRebuildFailRetry: a quarantined slot whose rebuild attempts fail
// (injected) retries with backoff until one succeeds; the pool ends at
// full healthy capacity with exactly one recorded rebuild.
func TestRebuildFailRetry(t *testing.T) {
	p := testPool(t, 1)
	p.SetHealth(HealthConfig{RebuildBackoff: time.Millisecond})
	in := faultinject.New(faultinject.Config{
		Rates:    map[faultinject.Point]float64{faultinject.RebuildFail: 1},
		MaxFires: map[faultinject.Point]int64{faultinject.RebuildFail: 2},
	})
	restore := faultinject.Enable(in)
	defer restore()

	l, err := p.Checkout(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	l.MarkBad()
	l.Release()

	p.WaitSettled()
	if fired := in.Fired(faultinject.RebuildFail); fired != 2 {
		t.Errorf("rebuild-fail fired %d times, want 2", fired)
	}
	if rb := p.Rebuilds(); rb != 1 {
		t.Errorf("rebuilds = %d, want 1", rb)
	}
	if h := p.Healthy(); h != 1 {
		t.Errorf("healthy = %d, want 1", h)
	}
}

// TestWatchdogAbandon: a run that wedges (ignores its context, holds
// its lease) is canceled by the watchdog, abandoned after the grace
// window, and its session quarantined; the pool backfills and the
// next job runs on a fresh session.
func TestWatchdogAbandon(t *testing.T) {
	srv := newBareServer(t, Config{
		PoolSize:         1,
		WatchdogFactor:   1,
		WatchdogGrace:    50 * time.Millisecond,
		BreakerThreshold: -1,
	})
	image := img.SpherePhantom(10)
	old := sessionPtr(srv.pool, 0)

	restore := faultinject.Enable(faultinject.New(faultinject.Config{
		Rates:    map[faultinject.Point]float64{faultinject.LeaseLeak: 1},
		MaxFires: map[faultinject.Point]int64{faultinject.LeaseLeak: 1},
		Delay:    time.Second,
	}))
	defer restore()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := srv.MeshSnapshot(ctx, "watchdog", "", image, nil)
	if !errors.Is(err, ErrWatchdog) {
		t.Fatalf("wedged run returned %v, want ErrWatchdog", err)
	}
	if elapsed := time.Since(start); elapsed >= time.Second {
		t.Errorf("caller blocked %v — the watchdog did not cut the wedged run loose", elapsed)
	}
	if k := srv.mWatchdogKills.Value(); k != 1 {
		t.Errorf("watchdog kills = %d, want 1", k)
	}
	if a := srv.mWatchdogAbandons.Value(); a != 1 {
		t.Errorf("watchdog abandons = %d, want 1", a)
	}

	srv.pool.WaitSettled()
	if q := srv.pool.Quarantines(); q != 1 {
		t.Errorf("quarantines = %d, want 1", q)
	}
	if h := srv.pool.Healthy(); h != 1 {
		t.Errorf("healthy = %d, want 1 (backfill)", h)
	}
	if cur := sessionPtr(srv.pool, 0); cur == old {
		t.Error("slot still holds the wedged session")
	}

	// The fresh session serves the next job; the wedged run's eventual
	// return must not disturb it (its session is closed by the reaper).
	if _, err := srv.MeshSnapshot(context.Background(), "watchdog", "", image, nil); err != nil {
		t.Fatalf("run after abandon: %v", err)
	}
	time.Sleep(1100 * time.Millisecond) // let the wedged run finish and the reaper close it
	if _, err := srv.MeshSnapshot(context.Background(), "watchdog", "", image, nil); err != nil {
		t.Fatalf("run after reaper: %v", err)
	}
}

// TestReadyzZeroHealthy: with the only session quarantined and its
// rebuild failing, /readyz reports 503 while /healthz stays 200
// (liveness vs readiness); once rebuilds succeed, readiness returns.
func TestReadyzZeroHealthy(t *testing.T) {
	srv, ts := newTestServer(t, Config{PoolSize: 1, BreakerThreshold: -1})
	client := ts.Client()
	image := img.SpherePhantom(10)

	in := faultinject.New(faultinject.Config{
		Rates: map[faultinject.Point]float64{faultinject.RebuildFail: 1},
	})
	restore := faultinject.Enable(in)
	defer restore()

	// A panicking tune hook marks the session bad (the leader-panic
	// guard), quarantining the only slot; RebuildFail keeps it down.
	_, err := srv.MeshSnapshot(context.Background(), "readyz", "v", image,
		func(*core.Config) { panic("injected tune panic") })
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panicking run returned %v, want a panic-converted error", err)
	}

	get := func(path string) int {
		resp, err := client.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.pool.Healthy() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz with zero healthy sessions: %d, want 503", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Errorf("healthz with zero healthy sessions: %d, want 200 (still alive)", code)
	}

	// Let the rebuild succeed: readiness recovers without operator
	// action.
	in.Disarm(faultinject.RebuildFail)
	for time.Now().Before(deadline) {
		if get("/readyz") == http.StatusOK {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Errorf("readyz after rebuild: %d, want 200", code)
	}
	if _, err := srv.MeshSnapshot(context.Background(), "readyz", "", image, nil); err != nil {
		t.Fatalf("run after recovery: %v", err)
	}
}
