// Package serve is the serving layer of PI2M: a bounded pool of warm
// core.Sessions multiplexing concurrent image-to-mesh requests, a job
// admission controller with queue-depth and deadline rejection, an
// HTTP surface (POST /v1/mesh, /healthz, /v1/stats, /metrics), and a
// dependency-free metrics registry with Prometheus text exposition.
//
// The layering: Pool owns sessions and affinity; Server owns
// admission, the image cache, metrics and encoding; the HTTP handlers
// are a thin translation of Server errors into status codes. cmd/pi2md
// is the daemon wrapping a Server in an http.Server with graceful
// drain.
package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative n is ignored).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates float64 observations into cumulative buckets
// (Prometheus histogram semantics: bucket le="x" counts observations
// <= x, plus an implicit +Inf bucket, a sum and a count).
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // sorted upper bounds, +Inf excluded
	counts []int64   // len(bounds)+1; last is the +Inf overflow
	sum    float64
	count  int64
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	if math.IsNaN(x) {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, x)
	h.counts[i]++
	h.sum += x
	h.count++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket
// counts: the upper bound of the first bucket whose cumulative count
// reaches q of the total. Observations in the +Inf overflow bucket
// clamp to the largest finite bound. Returns 0 with no observations.
// The estimate is bucket-granular — good enough for retry hints and
// watchdog limits, which clamp the result anyway.
func (h *Histogram) Quantile(q float64) float64 {
	if q <= 0 || q > 1 {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || len(h.bounds) == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.count)))
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i]
		if cum >= target {
			return b
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// HistogramSnapshot is a consistent copy of a histogram's state:
// per-bucket (non-cumulative) counts aligned with Bounds, plus the
// implicit +Inf overflow bucket as the final Counts entry.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// Snapshot copies the histogram's buckets, sum and count atomically —
// the benchmark harness embeds lease-occupancy histograms in its
// report this way.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
}

// CounterVec is a family of counters split by one label's values
// (e.g. requests_total{code="200"}). Unknown values materialize their
// series on first use.
type CounterVec struct {
	label string
	mu    sync.Mutex
	vals  map[string]*Counter
}

// With returns the counter for the given label value.
func (cv *CounterVec) With(value string) *Counter {
	cv.mu.Lock()
	defer cv.mu.Unlock()
	c, ok := cv.vals[value]
	if !ok {
		c = &Counter{}
		cv.vals[value] = c
	}
	return c
}

// Value returns the count for the given label value (0 if the series
// does not exist yet).
func (cv *CounterVec) Value(value string) int64 {
	cv.mu.Lock()
	defer cv.mu.Unlock()
	if c, ok := cv.vals[value]; ok {
		return c.Value()
	}
	return 0
}

// Total sums the counter across all label values.
func (cv *CounterVec) Total() int64 {
	cv.mu.Lock()
	defer cv.mu.Unlock()
	var t int64
	for _, c := range cv.vals {
		t += c.Value()
	}
	return t
}

// CounterVec2 is a family of counters split by two labels' values
// (e.g. proxied_jobs_total{backend="a",outcome="ok"}). Unknown value
// pairs materialize their series on first use.
type CounterVec2 struct {
	label1, label2 string
	mu             sync.Mutex
	vals           map[[2]string]*Counter
}

// With returns the counter for the given label-value pair.
func (cv *CounterVec2) With(v1, v2 string) *Counter {
	k := [2]string{v1, v2}
	cv.mu.Lock()
	defer cv.mu.Unlock()
	c, ok := cv.vals[k]
	if !ok {
		c = &Counter{}
		cv.vals[k] = c
	}
	return c
}

// Value returns the count for the given label-value pair (0 if the
// series does not exist yet).
func (cv *CounterVec2) Value(v1, v2 string) int64 {
	cv.mu.Lock()
	defer cv.mu.Unlock()
	if c, ok := cv.vals[[2]string{v1, v2}]; ok {
		return c.Value()
	}
	return 0
}

// Total sums the counter across all label-value pairs.
func (cv *CounterVec2) Total() int64 {
	cv.mu.Lock()
	defer cv.mu.Unlock()
	var t int64
	for _, c := range cv.vals {
		t += c.Value()
	}
	return t
}

// TotalLabel2 sums the counter across series whose second label value
// matches (e.g. every backend's outcome="ok").
func (cv *CounterVec2) TotalLabel2(v2 string) int64 {
	cv.mu.Lock()
	defer cv.mu.Unlock()
	var t int64
	for k, c := range cv.vals {
		if k[1] == v2 {
			t += c.Value()
		}
	}
	return t
}

// GaugeVec is a family of gauges split by one label's values (e.g.
// backend_healthy{backend="a"}). Unknown values materialize their
// series on first use.
type GaugeVec struct {
	label string
	mu    sync.Mutex
	vals  map[string]*Gauge
}

// With returns the gauge for the given label value.
func (gv *GaugeVec) With(value string) *Gauge {
	gv.mu.Lock()
	defer gv.mu.Unlock()
	g, ok := gv.vals[value]
	if !ok {
		g = &Gauge{}
		gv.vals[value] = g
	}
	return g
}

// Value returns the gauge for the given label value (0 if the series
// does not exist yet).
func (gv *GaugeVec) Value(value string) int64 {
	gv.mu.Lock()
	defer gv.mu.Unlock()
	if g, ok := gv.vals[value]; ok {
		return g.Value()
	}
	return 0
}

// metric is one registered metric with its exposition metadata.
type metric struct {
	name string
	help string
	typ  string // "counter", "gauge", "histogram"

	counter     *Counter
	gauge       *Gauge
	gaugeFunc   func() float64
	counterFunc func() float64
	histogram   *Histogram
	counterVec  *CounterVec
	counterVec2 *CounterVec2
	gaugeVec    *GaugeVec
}

// Registry is an ordered collection of metrics with Prometheus text
// exposition. The zero value is not usable; use NewRegistry.
// Registration is meant for setup time; observation methods on the
// returned metrics are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.name]; dup {
		panic(fmt.Sprintf("serve: metric %q registered twice", m.name))
	}
	r.byName[m.name] = m
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, typ: "counter", counter: c})
	return c
}

// CounterVec registers and returns a one-label counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	cv := &CounterVec{label: label, vals: make(map[string]*Counter)}
	r.register(&metric{name: name, help: help, typ: "counter", counterVec: cv})
	return cv
}

// CounterVec2 registers and returns a two-label counter family.
func (r *Registry) CounterVec2(name, help, label1, label2 string) *CounterVec2 {
	cv := &CounterVec2{label1: label1, label2: label2, vals: make(map[[2]string]*Counter)}
	r.register(&metric{name: name, help: help, typ: "counter", counterVec2: cv})
	return cv
}

// GaugeVec registers and returns a one-label gauge family.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	gv := &GaugeVec{label: label, vals: make(map[string]*Gauge)}
	r.register(&metric{name: name, help: help, typ: "gauge", gaugeVec: gv})
	return gv
}

// Gauge registers and returns a settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, typ: "gauge", gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is read from f at
// exposition time. f must be safe to call concurrently.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	r.register(&metric{name: name, help: help, typ: "gauge", gaugeFunc: f})
}

// CounterFunc registers a counter whose value is read from f at
// exposition time — for monotone counters owned by another subsystem
// (e.g. the pool's quarantine ledger). f must be safe to call
// concurrently and must never decrease.
func (r *Registry) CounterFunc(name, help string, f func() float64) {
	r.register(&metric{name: name, help: help, typ: "counter", counterFunc: f})
}

// Histogram registers and returns a histogram over the given sorted
// bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{bounds: bs, counts: make([]int64, len(bs)+1)}
	r.register(&metric{name: name, help: help, typ: "histogram", histogram: h})
	return h
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// WritePrometheus writes every registered metric in the Prometheus
// text exposition format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()

	var b strings.Builder
	for _, m := range metrics {
		fmt.Fprintf(&b, "# HELP %s %s\n", m.name, m.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.typ)
		switch {
		case m.counter != nil:
			fmt.Fprintf(&b, "%s %d\n", m.name, m.counter.Value())
		case m.counterVec != nil:
			cv := m.counterVec
			cv.mu.Lock()
			keys := make([]string, 0, len(cv.vals))
			for k := range cv.vals {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, "%s{%s=%q} %d\n", m.name, cv.label, escapeLabel(k), cv.vals[k].Value())
			}
			cv.mu.Unlock()
		case m.counterVec2 != nil:
			cv := m.counterVec2
			cv.mu.Lock()
			keys := make([][2]string, 0, len(cv.vals))
			for k := range cv.vals {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool {
				if keys[i][0] != keys[j][0] {
					return keys[i][0] < keys[j][0]
				}
				return keys[i][1] < keys[j][1]
			})
			for _, k := range keys {
				fmt.Fprintf(&b, "%s{%s=%q,%s=%q} %d\n", m.name,
					cv.label1, escapeLabel(k[0]), cv.label2, escapeLabel(k[1]), cv.vals[k].Value())
			}
			cv.mu.Unlock()
		case m.gaugeVec != nil:
			gv := m.gaugeVec
			gv.mu.Lock()
			keys := make([]string, 0, len(gv.vals))
			for k := range gv.vals {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, "%s{%s=%q} %d\n", m.name, gv.label, escapeLabel(k), gv.vals[k].Value())
			}
			gv.mu.Unlock()
		case m.gauge != nil:
			fmt.Fprintf(&b, "%s %d\n", m.name, m.gauge.Value())
		case m.gaugeFunc != nil:
			fmt.Fprintf(&b, "%s %s\n", m.name, formatFloat(m.gaugeFunc()))
		case m.counterFunc != nil:
			fmt.Fprintf(&b, "%s %s\n", m.name, formatFloat(m.counterFunc()))
		case m.histogram != nil:
			h := m.histogram
			h.mu.Lock()
			var cum int64
			for i, bound := range h.bounds {
				cum += h.counts[i]
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", m.name, formatFloat(bound), cum)
			}
			cum += h.counts[len(h.bounds)]
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum)
			fmt.Fprintf(&b, "%s_sum %s\n", m.name, formatFloat(h.sum))
			fmt.Fprintf(&b, "%s_count %d\n", m.name, h.count)
			h.mu.Unlock()
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
