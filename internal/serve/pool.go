package serve

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/img"
)

// ErrPoolClosed is returned by Checkout after Close.
var ErrPoolClosed = errors.New("serve: pool closed")

// Pool multiplexes work over a fixed number of warm core.Sessions.
// Checkout hands out an exclusive Lease on one session, preferring
// the session that last ran the same image identity so the session's
// cached distance transform actually hits; Checkin returns it. Idle
// sessions can be evicted — their arenas and EDT buffers released —
// and are transparently rebuilt cold on the next checkout.
//
// The pool relies on core.Session's busy-rejection contract
// (ErrSessionBusy) only as a backstop: leases already guarantee
// single ownership, so a busy rejection through a lease indicates a
// caller bug and is surfaced as an error.
type Pool struct {
	cfg    core.Config
	health HealthConfig

	mu      sync.Mutex
	entries []*poolEntry
	closed  bool

	// waiters is the blocked-checkout queue, ordered earliest-deadline-
	// first (ties FIFO by arrival). When a session frees up it is handed
	// to the most deadline-pressed waiter, not whichever goroutine the
	// scheduler happens to wake — a near-deadline interactive mesh job
	// overtakes a queued long-deadline solve.
	waiters   waiterHeap
	waiterSeq uint64

	checkouts    int64
	affinityHits int64
	evictions    int64
	rebuilds     int64

	// Health-ledger counters (see DESIGN.md "Failure model", the
	// serving-layer ladder).
	quarantines    int64
	healthRebuilds int64

	// rebuilds in flight, so tests can wait for the pool to settle.
	rebuildWG sync.WaitGroup
}

// HealthConfig parameterizes the pool's session health ledger.
type HealthConfig struct {
	// SuspectThreshold is the number of consecutive suspect runs
	// (recovered panics, degraded outcomes, run errors) after which a
	// session is quarantined and rebuilt. A clean run resets the
	// counter. Default 3; values <= 0 select the default.
	SuspectThreshold int
	// RebuildBackoff is the initial delay between failed rebuild
	// attempts of a quarantined slot; it doubles up to a 500ms cap.
	// Default 10ms.
	RebuildBackoff time.Duration
}

func (h HealthConfig) withDefaults() HealthConfig {
	if h.SuspectThreshold <= 0 {
		h.SuspectThreshold = 3
	}
	if h.RebuildBackoff <= 0 {
		h.RebuildBackoff = 10 * time.Millisecond
	}
	return h
}

// SetHealth replaces the pool's health-ledger configuration. Call it
// before serving; it is not synchronized against concurrent checkouts.
func (p *Pool) SetHealth(h HealthConfig) { p.health = h.withDefaults() }

// poolEntry is one slot of the pool.
type poolEntry struct {
	s        *core.Session
	key      string // image identity of the last run ("" = never ran)
	busy     bool
	lastUsed time.Time

	// Health ledger: suspicion counts consecutive suspect runs; a
	// quarantined slot is unschedulable until its asynchronous rebuild
	// swaps a fresh session in.
	suspicion   int
	quarantined bool
}

// PoolStats is a snapshot of the pool's behavior.
type PoolStats struct {
	Size         int   `json:"size"`
	Busy         int   `json:"busy"`
	Checkouts    int64 `json:"checkouts"`
	AffinityHits int64 `json:"affinity_hits"`
	Evictions    int64 `json:"evictions"`
	Rebuilds     int64 `json:"rebuilds"`

	// Health ledger: Healthy/Quarantined are the current slot states;
	// Quarantines/HealthRebuilds are lifetime totals.
	Healthy        int   `json:"healthy"`
	Quarantined    int   `json:"quarantined"`
	Quarantines    int64 `json:"quarantines_total"`
	HealthRebuilds int64 `json:"health_rebuilds_total"`

	// Sessions aggregates the member sessions' reuse counters.
	Sessions core.SessionStats `json:"sessions"`
}

// NewPool builds a pool of n sessions sharing one configuration
// template. Sessions start empty (a core.Session allocates lazily on
// first Run), so construction is cheap; the pool warms as it serves.
func NewPool(n int, cfg core.Config) (*Pool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("serve: pool size must be positive, got %d", n)
	}
	cfg.Image = nil
	cfg.Context = nil
	p := &Pool{cfg: cfg, health: HealthConfig{}.withDefaults(), entries: make([]*poolEntry, n)}
	for i := range p.entries {
		s, err := core.NewSession(cfg)
		if err != nil {
			return nil, err
		}
		p.entries[i] = &poolEntry{s: s}
	}
	return p, nil
}

// Size returns the number of sessions in the pool.
func (p *Pool) Size() int { return len(p.entries) }

// SeedAffinity assigns image identities to idle, never-used sessions so
// checkout routing can honor affinity from the first request after a
// restart — the persistent cache's warm start. Keys are consumed in
// order (pass most-recently-used first); sessions that already carry an
// identity, are busy, or are quarantined are left alone. The seeded
// sessions have run nothing, so their EDT caches are still cold; the
// win is stable routing, which turns the second request warm.
func (p *Pool) SeedAffinity(keys []string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	i := 0
	for _, e := range p.entries {
		if i >= len(keys) {
			return
		}
		if e.busy || e.quarantined || e.key != "" {
			continue
		}
		e.key = keys[i]
		i++
	}
}

// Lease verdicts, recorded by the caller between Run and Release and
// folded into the session health ledger at release time.
const (
	verdictClean   = iota // run gave no health signal; resets suspicion
	verdictSuspect        // failure machinery engaged; counts toward quarantine
	verdictBad            // session-poisoning outcome; quarantine immediately
)

// Lease is exclusive ownership of one pool session between Checkout
// and Release.
type Lease struct {
	p        *Pool
	e        *poolEntry
	s        *core.Session // captured at checkout; stable across entry rebuilds
	key      string
	affinity bool
	released bool

	// verdict is the health outcome the caller recorded for this
	// lease's runs; abandoned marks a lease detached by the watchdog.
	verdict   int
	abandoned bool

	// edtHit and warm record the session's reuse behavior across the
	// lease's Run calls.
	edtHit bool
	warm   bool
}

// waitGrant is a session handed to a blocked waiter by the EDF grant
// path: the entry is already marked busy and its affinity accounted.
type waitGrant struct {
	e        *poolEntry
	affinity bool
}

// waiter is one goroutine blocked in Checkout. deadline is the
// caller's context deadline (zero = none, sorts last); seq breaks ties
// FIFO. ch is buffered so the granter never blocks; idx is the heap
// position, -1 once popped (granted) or removed (canceled).
type waiter struct {
	key      string
	deadline time.Time
	seq      uint64
	ch       chan waitGrant
	idx      int
}

// waiterHeap orders waiters earliest-deadline-first; waiters without a
// deadline sort after every deadline-bearing one, and equal deadlines
// fall back to arrival order.
type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	di, dj := h[i].deadline, h[j].deadline
	if di.IsZero() != dj.IsZero() {
		return !di.IsZero()
	}
	if !di.IsZero() && !di.Equal(dj) {
		return di.Before(dj)
	}
	return h[i].seq < h[j].seq
}
func (h waiterHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *waiterHeap) Push(x any) {
	w := x.(*waiter)
	w.idx = len(*h)
	*h = append(*h, w)
}
func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.idx = -1
	*h = old[:n-1]
	return w
}

// grantLocked (p.mu held) hands free sessions to blocked waiters in
// deadline order: the earliest-deadline waiter gets the session its
// affinity prefers. It stops when no session is free or no waiter
// remains.
func (p *Pool) grantLocked() {
	for len(p.waiters) > 0 {
		e := p.pickFree(p.waiters[0].key)
		if e == nil {
			return
		}
		w := heap.Pop(&p.waiters).(*waiter)
		e.busy = true
		p.checkouts++
		hit := w.key != "" && e.key == w.key
		if hit {
			p.affinityHits++
		}
		w.ch <- waitGrant{e: e, affinity: hit}
	}
}

// failWaitersLocked (p.mu held) wakes every blocked waiter with a
// pool-closed verdict by closing their grant channels.
func (p *Pool) failWaitersLocked() {
	for _, w := range p.waiters {
		w.idx = -1
		close(w.ch)
	}
	p.waiters = nil
}

// Waiters reports how many checkouts are currently blocked (test hook
// for the EDF ordering tests).
func (p *Pool) Waiters() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.waiters)
}

// pickFree selects an unleased, unquarantined entry, preferring exact
// image-identity affinity, then any session that has run before (warm
// arenas), then a cold one.
func (p *Pool) pickFree(key string) *poolEntry {
	var warm, cold *poolEntry
	for _, e := range p.entries {
		if e.busy || e.quarantined {
			continue
		}
		if key != "" && e.key == key {
			return e
		}
		if e.key != "" {
			if warm == nil {
				warm = e
			}
		} else if cold == nil {
			cold = e
		}
	}
	if cold != nil {
		return cold // a never-used session beats evicting a warm cache
	}
	return warm
}

// Checkout blocks until a session is free (or ctx is done) and leases
// it. key names the image identity the caller intends to run —
// typically a content hash of the input — and steers the checkout to
// the session most likely to hold a warm distance transform for it.
// Blocked checkouts are served earliest-deadline-first: a freed
// session goes to the waiter whose ctx deadline is nearest, not to an
// arbitrary scheduler wakeup.
func (p *Pool) Checkout(ctx context.Context, key string) (*Lease, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	if err := ctx.Err(); err != nil {
		p.mu.Unlock()
		return nil, err
	}
	if e := p.pickFree(key); e != nil {
		e.busy = true
		p.checkouts++
		hit := key != "" && e.key == key
		if hit {
			p.affinityHits++
		}
		p.mu.Unlock()
		return &Lease{p: p, e: e, s: e.s, key: key, affinity: hit}, nil
	}
	w := &waiter{key: key, seq: p.waiterSeq, ch: make(chan waitGrant, 1)}
	p.waiterSeq++
	if dl, ok := ctx.Deadline(); ok {
		w.deadline = dl
	}
	heap.Push(&p.waiters, w)
	p.mu.Unlock()

	select {
	case g, ok := <-w.ch:
		if !ok {
			return nil, ErrPoolClosed
		}
		return &Lease{p: p, e: g.e, s: g.e.s, key: key, affinity: g.affinity}, nil
	case <-ctx.Done():
		p.mu.Lock()
		if w.idx >= 0 {
			heap.Remove(&p.waiters, w.idx)
			p.mu.Unlock()
			return nil, ctx.Err()
		}
		p.mu.Unlock()
		// Lost the race: a grant (or close) is already in flight. Take
		// it and hand the session straight to the next waiter — it must
		// not leak on this abandoned checkout.
		if g, ok := <-w.ch; ok {
			p.mu.Lock()
			g.e.busy = false
			p.checkouts-- // the grant never became a lease
			if g.affinity {
				p.affinityHits--
			}
			if p.closed {
				g.e.s.Close()
			} else {
				p.grantLocked()
			}
			p.mu.Unlock()
		}
		return nil, ctx.Err()
	}
}

// TryCheckout leases a free session immediately, or returns (nil,
// nil) without blocking when every session is busy. It is the
// admission controller's fast path: a job that finds a free session
// never counts against the wait queue.
func (p *Pool) TryCheckout(key string) (*Lease, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrPoolClosed
	}
	e := p.pickFree(key)
	if e == nil {
		return nil, nil
	}
	e.busy = true
	p.checkouts++
	hit := key != "" && e.key == key
	if hit {
		p.affinityHits++
	}
	return &Lease{p: p, e: e, s: e.s, key: key, affinity: hit}, nil
}

// AffinityHit reports whether the checkout landed on the session that
// last ran the same image identity.
func (l *Lease) AffinityHit() bool { return l.affinity }

// EDTHit reports whether any Run on this lease reused the session's
// cached distance transform.
func (l *Lease) EDTHit() bool { return l.edtHit }

// WarmRun reports whether any Run on this lease reused warm arenas.
func (l *Lease) WarmRun() bool { return l.warm }

// Run executes one image-to-mesh conversion on the leased session.
// The caller must extract everything it needs from the Result before
// releasing the lease: the next Run on the same session recycles the
// mesh arenas underneath it.
func (l *Lease) Run(ctx context.Context, image *img.Image) (*core.Result, error) {
	return l.RunTuned(ctx, image, nil)
}

// RunTuned is Run with per-run configuration overrides; see
// core.Session.RunTuned.
func (l *Lease) RunTuned(ctx context.Context, image *img.Image, tune func(*core.Config)) (*core.Result, error) {
	if l.released {
		return nil, errors.New("serve: Run on a released Lease")
	}
	before := l.s.Stats()
	res, err := l.s.RunTuned(ctx, image, tune)
	after := l.s.Stats()
	if after.WarmEDTHits > before.WarmEDTHits {
		l.edtHit = true
	}
	if after.WarmRuns > before.WarmRuns {
		l.warm = true
	}
	return res, err
}

// MarkSuspect records that this lease's run engaged the failure
// machinery (recovered panics, a degraded outcome, a run error). At
// release, consecutive suspect runs past HealthConfig.SuspectThreshold
// quarantine the session.
func (l *Lease) MarkSuspect() {
	if l.verdict < verdictSuspect {
		l.verdict = verdictSuspect
	}
}

// MarkBad records a session-poisoning outcome (a panicked run, an
// abort for a non-caller reason). At release the session is
// quarantined immediately and rebuilt off the request path.
func (l *Lease) MarkBad() { l.verdict = verdictBad }

// Release returns the session to the pool, folding the lease's health
// verdict into the ledger: a clean run resets suspicion, a suspect run
// counts toward the threshold, and a bad run (or a threshold crossing)
// quarantines the slot and kicks off an asynchronous rebuild.
// Idempotent; a no-op on leases detached by Abandon.
func (l *Lease) Release() {
	if l.released || l.abandoned {
		return
	}
	l.released = true
	p := l.p
	e := l.e
	p.mu.Lock()
	e.busy = false
	switch l.verdict {
	case verdictBad:
		p.quarantineLocked(e, l.s)
	case verdictSuspect:
		e.suspicion++
		if e.suspicion >= p.health.SuspectThreshold {
			p.quarantineLocked(e, l.s)
		}
	default:
		e.suspicion = 0
	}
	if !e.quarantined {
		if l.key != "" {
			e.key = l.key
		}
		e.lastUsed = time.Now()
		if p.closed {
			l.s.Close() // the pool closed while this lease was out
		} else {
			p.grantLocked()
		}
	}
	p.mu.Unlock()
}

// Abandon detaches a lease whose run ignored cancellation: the slot is
// quarantined and backfilled by an asynchronous rebuild so pool
// capacity recovers, while the wedged session stays out of the pool.
// The caller must invoke FinishAbandoned once the runaway run finally
// returns, to close the detached session. Idempotent.
func (l *Lease) Abandon() {
	p := l.p
	p.mu.Lock()
	if l.released || l.abandoned {
		p.mu.Unlock()
		return
	}
	l.abandoned = true
	e := l.e
	e.busy = false
	// The wedged session is NOT handed to the rebuild goroutine for
	// closing — Close would block until the stuck run returns.
	// FinishAbandoned closes it instead.
	p.quarantineLocked(e, nil)
	p.mu.Unlock()
}

// FinishAbandoned closes the session detached by Abandon. Call it
// after the runaway run has returned; Close blocks until the session
// is idle, so calling it early stalls the caller, not the pool.
func (l *Lease) FinishAbandoned() {
	if l.abandoned {
		l.s.Close()
	}
}

// quarantineLocked (p.mu held) marks the slot unschedulable and starts
// its asynchronous rebuild. old, when non-nil, is the session the
// rebuild goroutine closes off the request path.
func (p *Pool) quarantineLocked(e *poolEntry, old *core.Session) {
	if e.quarantined {
		return
	}
	e.quarantined = true
	e.key = ""
	e.suspicion = 0
	p.quarantines++
	if p.closed {
		if old != nil {
			go old.Close()
		}
		return
	}
	p.rebuildWG.Add(1)
	go p.rebuild(e, old)
}

// rebuild replaces a quarantined slot's session with a freshly built
// one, retrying with doubling backoff when construction fails (the
// RebuildFail injection point simulates that), and wakes waiters once
// capacity is restored. Runs off the request path.
func (p *Pool) rebuild(e *poolEntry, old *core.Session) {
	defer p.rebuildWG.Done()
	if old != nil {
		old.Close()
	}
	backoff := p.health.RebuildBackoff
	for {
		p.mu.Lock()
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return
		}
		var fresh *core.Session
		var err error
		if faultinject.Fire(faultinject.RebuildFail) {
			err = errors.New("serve: session rebuild failed (injected)")
		} else {
			fresh, err = core.NewSession(p.cfg)
		}
		if err == nil {
			p.mu.Lock()
			if p.closed {
				p.mu.Unlock()
				fresh.Close()
				return
			}
			e.s = fresh
			e.key = ""
			e.suspicion = 0
			e.quarantined = false
			e.busy = false
			e.lastUsed = time.Time{}
			p.healthRebuilds++
			p.grantLocked()
			p.mu.Unlock()
			return
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 500*time.Millisecond {
			backoff = 500 * time.Millisecond
		}
	}
}

// Healthy returns the number of unquarantined slots — the capacity
// /readyz and the chaos harness reason about.
func (p *Pool) Healthy() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, e := range p.entries {
		if !e.quarantined {
			n++
		}
	}
	return n
}

// Quarantines reports how many sessions the health ledger has pulled
// from rotation since the pool was created. Unlike Stats, this reads
// only the pool's own counters — it never touches a session and so
// never blocks on one mid-run.
func (p *Pool) Quarantines() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.quarantines
}

// Rebuilds reports how many quarantined slots have been rebuilt with
// a fresh session and returned to rotation.
func (p *Pool) Rebuilds() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.healthRebuilds
}

// WaitSettled blocks until every in-flight quarantine rebuild has
// finished (test hook).
func (p *Pool) WaitSettled() { p.rebuildWG.Wait() }

// EvictIdle closes sessions that have been idle longer than maxIdle,
// releasing their retained arenas, grids and EDT buffers, and
// replaces them with empty sessions that rebuild lazily on their next
// checkout. It returns how many sessions were evicted. Sessions that
// never ran are never evicted (there is nothing to release).
func (p *Pool) EvictIdle(maxIdle time.Duration) int {
	cutoff := time.Now().Add(-maxIdle)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0
	}
	n := 0
	for _, e := range p.entries {
		// lastUsed.IsZero with a non-empty key marks an affinity-seeded
		// session that has never actually run: it holds no arenas or EDT
		// buffers, so "evicting" it would only discard the routing hint.
		if e.busy || e.quarantined || e.key == "" || e.lastUsed.IsZero() || e.lastUsed.After(cutoff) {
			continue
		}
		e.s.Close()
		fresh, err := core.NewSession(p.cfg)
		if err != nil {
			// The template validated at NewPool time; a failure here is
			// unreachable, but never leave a closed session in the pool.
			panic(fmt.Sprintf("serve: rebuilding evicted session: %v", err))
		}
		e.s = fresh
		e.key = ""
		e.lastUsed = time.Time{}
		p.evictions++
		p.rebuilds++
		n++
	}
	return n
}

// Stats snapshots the pool counters and the member sessions'
// aggregated reuse counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PoolStats{
		Size:           len(p.entries),
		Checkouts:      p.checkouts,
		AffinityHits:   p.affinityHits,
		Evictions:      p.evictions,
		Rebuilds:       p.rebuilds,
		Quarantines:    p.quarantines,
		HealthRebuilds: p.healthRebuilds,
	}
	for _, e := range p.entries {
		if e.busy {
			st.Busy++
		}
		if e.quarantined {
			// A quarantined slot's session is mid-teardown (possibly a
			// wedged run holding its own lock) — don't block stats on it.
			st.Quarantined++
			continue
		}
		st.Healthy++
		ss := e.s.Stats()
		st.Sessions.Runs += ss.Runs
		st.Sessions.WarmRuns += ss.WarmRuns
		st.Sessions.WarmEDTHits += ss.WarmEDTHits
		st.Sessions.BusyRejects += ss.BusyRejects
	}
	return st
}

// Close fails all pending and future checkouts with ErrPoolClosed and
// closes every idle session. Leases already handed out stay valid
// until released; their sessions close at release. Idempotent.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	for _, e := range p.entries {
		// Quarantined slots are owned by their rebuild goroutine (or an
		// abandoned lease's FinishAbandoned) — closing here could block
		// on a wedged run.
		if !e.busy && !e.quarantined {
			e.s.Close()
		}
	}
	p.failWaitersLocked()
	return nil
}
