package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/img"
)

// ErrPoolClosed is returned by Checkout after Close.
var ErrPoolClosed = errors.New("serve: pool closed")

// Pool multiplexes work over a fixed number of warm core.Sessions.
// Checkout hands out an exclusive Lease on one session, preferring
// the session that last ran the same image identity so the session's
// cached distance transform actually hits; Checkin returns it. Idle
// sessions can be evicted — their arenas and EDT buffers released —
// and are transparently rebuilt cold on the next checkout.
//
// The pool relies on core.Session's busy-rejection contract
// (ErrSessionBusy) only as a backstop: leases already guarantee
// single ownership, so a busy rejection through a lease indicates a
// caller bug and is surfaced as an error.
type Pool struct {
	cfg core.Config

	mu      sync.Mutex
	cond    *sync.Cond
	entries []*poolEntry
	closed  bool

	checkouts    int64
	affinityHits int64
	evictions    int64
	rebuilds     int64
}

// poolEntry is one slot of the pool.
type poolEntry struct {
	s        *core.Session
	key      string // image identity of the last run ("" = never ran)
	busy     bool
	lastUsed time.Time
}

// PoolStats is a snapshot of the pool's behavior.
type PoolStats struct {
	Size         int   `json:"size"`
	Busy         int   `json:"busy"`
	Checkouts    int64 `json:"checkouts"`
	AffinityHits int64 `json:"affinity_hits"`
	Evictions    int64 `json:"evictions"`
	Rebuilds     int64 `json:"rebuilds"`

	// Sessions aggregates the member sessions' reuse counters.
	Sessions core.SessionStats `json:"sessions"`
}

// NewPool builds a pool of n sessions sharing one configuration
// template. Sessions start empty (a core.Session allocates lazily on
// first Run), so construction is cheap; the pool warms as it serves.
func NewPool(n int, cfg core.Config) (*Pool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("serve: pool size must be positive, got %d", n)
	}
	cfg.Image = nil
	cfg.Context = nil
	p := &Pool{cfg: cfg, entries: make([]*poolEntry, n)}
	p.cond = sync.NewCond(&p.mu)
	for i := range p.entries {
		s, err := core.NewSession(cfg)
		if err != nil {
			return nil, err
		}
		p.entries[i] = &poolEntry{s: s}
	}
	return p, nil
}

// Size returns the number of sessions in the pool.
func (p *Pool) Size() int { return len(p.entries) }

// Lease is exclusive ownership of one pool session between Checkout
// and Release.
type Lease struct {
	p        *Pool
	e        *poolEntry
	key      string
	affinity bool
	released bool

	// edtHit and warm record the session's reuse behavior across the
	// lease's Run calls.
	edtHit bool
	warm   bool
}

// pickFree selects an unleased entry, preferring exact image-identity
// affinity, then any session that has run before (warm arenas), then
// a cold one.
func (p *Pool) pickFree(key string) *poolEntry {
	var warm, cold *poolEntry
	for _, e := range p.entries {
		if e.busy {
			continue
		}
		if key != "" && e.key == key {
			return e
		}
		if e.key != "" {
			if warm == nil {
				warm = e
			}
		} else if cold == nil {
			cold = e
		}
	}
	if cold != nil {
		return cold // a never-used session beats evicting a warm cache
	}
	return warm
}

// Checkout blocks until a session is free (or ctx is done) and leases
// it. key names the image identity the caller intends to run —
// typically a content hash of the input — and steers the checkout to
// the session most likely to hold a warm distance transform for it.
func (p *Pool) Checkout(ctx context.Context, key string) (*Lease, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Wake our cond.Wait when the context fires; Broadcast is cheap
	// and the loop re-checks ctx.Err.
	stop := context.AfterFunc(ctx, func() {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	defer stop()

	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed {
			return nil, ErrPoolClosed
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if e := p.pickFree(key); e != nil {
			e.busy = true
			p.checkouts++
			hit := key != "" && e.key == key
			if hit {
				p.affinityHits++
			}
			return &Lease{p: p, e: e, key: key, affinity: hit}, nil
		}
		p.cond.Wait()
	}
}

// TryCheckout leases a free session immediately, or returns (nil,
// nil) without blocking when every session is busy. It is the
// admission controller's fast path: a job that finds a free session
// never counts against the wait queue.
func (p *Pool) TryCheckout(key string) (*Lease, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrPoolClosed
	}
	e := p.pickFree(key)
	if e == nil {
		return nil, nil
	}
	e.busy = true
	p.checkouts++
	hit := key != "" && e.key == key
	if hit {
		p.affinityHits++
	}
	return &Lease{p: p, e: e, key: key, affinity: hit}, nil
}

// AffinityHit reports whether the checkout landed on the session that
// last ran the same image identity.
func (l *Lease) AffinityHit() bool { return l.affinity }

// EDTHit reports whether any Run on this lease reused the session's
// cached distance transform.
func (l *Lease) EDTHit() bool { return l.edtHit }

// WarmRun reports whether any Run on this lease reused warm arenas.
func (l *Lease) WarmRun() bool { return l.warm }

// Run executes one image-to-mesh conversion on the leased session.
// The caller must extract everything it needs from the Result before
// releasing the lease: the next Run on the same session recycles the
// mesh arenas underneath it.
func (l *Lease) Run(ctx context.Context, image *img.Image) (*core.Result, error) {
	return l.RunTuned(ctx, image, nil)
}

// RunTuned is Run with per-run configuration overrides; see
// core.Session.RunTuned.
func (l *Lease) RunTuned(ctx context.Context, image *img.Image, tune func(*core.Config)) (*core.Result, error) {
	if l.released {
		return nil, errors.New("serve: Run on a released Lease")
	}
	before := l.e.s.Stats()
	res, err := l.e.s.RunTuned(ctx, image, tune)
	after := l.e.s.Stats()
	if after.WarmEDTHits > before.WarmEDTHits {
		l.edtHit = true
	}
	if after.WarmRuns > before.WarmRuns {
		l.warm = true
	}
	return res, err
}

// Release returns the session to the pool, recording the lease's
// image identity for future affinity routing. Idempotent.
func (l *Lease) Release() {
	if l.released {
		return
	}
	l.released = true
	p := l.p
	p.mu.Lock()
	l.e.busy = false
	if l.key != "" {
		l.e.key = l.key
	}
	l.e.lastUsed = time.Now()
	if p.closed {
		l.e.s.Close() // the pool closed while this lease was out
	}
	p.cond.Signal()
	p.mu.Unlock()
}

// EvictIdle closes sessions that have been idle longer than maxIdle,
// releasing their retained arenas, grids and EDT buffers, and
// replaces them with empty sessions that rebuild lazily on their next
// checkout. It returns how many sessions were evicted. Sessions that
// never ran are never evicted (there is nothing to release).
func (p *Pool) EvictIdle(maxIdle time.Duration) int {
	cutoff := time.Now().Add(-maxIdle)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0
	}
	n := 0
	for _, e := range p.entries {
		if e.busy || e.key == "" || e.lastUsed.After(cutoff) {
			continue
		}
		e.s.Close()
		fresh, err := core.NewSession(p.cfg)
		if err != nil {
			// The template validated at NewPool time; a failure here is
			// unreachable, but never leave a closed session in the pool.
			panic(fmt.Sprintf("serve: rebuilding evicted session: %v", err))
		}
		e.s = fresh
		e.key = ""
		e.lastUsed = time.Time{}
		p.evictions++
		p.rebuilds++
		n++
	}
	return n
}

// Stats snapshots the pool counters and the member sessions'
// aggregated reuse counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PoolStats{
		Size:         len(p.entries),
		Checkouts:    p.checkouts,
		AffinityHits: p.affinityHits,
		Evictions:    p.evictions,
		Rebuilds:     p.rebuilds,
	}
	for _, e := range p.entries {
		if e.busy {
			st.Busy++
		}
		ss := e.s.Stats()
		st.Sessions.Runs += ss.Runs
		st.Sessions.WarmRuns += ss.WarmRuns
		st.Sessions.WarmEDTHits += ss.WarmEDTHits
		st.Sessions.BusyRejects += ss.BusyRejects
	}
	return st
}

// Close fails all pending and future checkouts with ErrPoolClosed and
// closes every idle session. Leases already handed out stay valid
// until released; their sessions close at release. Idempotent.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	for _, e := range p.entries {
		if !e.busy {
			e.s.Close()
		}
	}
	p.cond.Broadcast()
	return nil
}
