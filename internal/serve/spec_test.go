package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// multipartBody builds a multipart/form-data request body with the
// given parts; the returned content type carries the boundary.
func multipartBody(t *testing.T, parts map[string][]byte) ([]byte, string) {
	t.Helper()
	var b bytes.Buffer
	mw := multipart.NewWriter(&b)
	// Deterministic order: image last, like a streaming client would.
	order := []string{"spec", "image"}
	for _, name := range order {
		data, ok := parts[name]
		if !ok {
			continue
		}
		fw, err := mw.CreateFormFile(name, name)
		if err != nil {
			t.Fatal(err)
		}
		fw.Write(data)
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	return b.Bytes(), mw.FormDataContentType()
}

// TestVariantGolden pins the tuning-variant encoding: the pre-spec
// knob segment is a compatibility contract (persisted cache entries
// and breaker priors resolve through it), and the size segment must be
// canonical — same spec, same string, regardless of JSON key order.
func TestVariantGolden(t *testing.T) {
	cases := []struct {
		name string
		spec MeshSpec
		want string
	}{
		{"empty", MeshSpec{}, ""},
		{"format only", MeshSpec{Format: "off", Timeout: Duration(time.Second)}, ""},
		{"all knobs", MeshSpec{Delta: 0.5, MaxElements: 1000, MaxRadiusEdge: 2.2, MinFacetAngle: 25},
			"d=0.5,n=1000,re=2.2,fa=25"},
		{"delta only", MeshSpec{Delta: 2.5}, "d=2.5,n=0,re=0,fa=0"},
		{"size only", MeshSpec{Size: &SizeSpec{PerLabel: map[string]float64{"1": 2}}},
			"sz=pl{1:2}"},
		{"knobs and size", MeshSpec{Delta: 2.5, Size: &SizeSpec{
			PerLabel: map[string]float64{"2": 0.5, "1": 2}, Default: 3,
			Balls:    []BallSpec{{Center: [3]float64{8, 8, 8}, R: 4, H: 0.5}},
		}}, "d=2.5,n=0,re=0,fa=0,sz=pl{1:2;2:0.5}def=3b(8,8,8;4;0.5;0)"},
	}
	for _, c := range cases {
		if got := c.spec.variant(); got != c.want {
			t.Errorf("%s: variant = %q, want %q", c.name, got, c.want)
		}
	}
}

// TestMeshSpecJSONQueryAgree: the same knobs through the JSON body and
// the query string parse to the same spec — one validation path, no
// drift.
func TestMeshSpecJSONQueryAgree(t *testing.T) {
	fromJSON, err := ParseMeshSpec([]byte(
		`{"format": "off", "delta": 0.5, "max_elements": 1000, "max_radius_edge": 2.2, "min_facet_angle": 25, "timeout": "30s"}`))
	if err != nil {
		t.Fatal(err)
	}
	fromQuery, err := meshSpecFromQuery(queryValues(
		"format=off&delta=0.5&max_elements=1000&max_radius_edge=2.2&min_facet_angle=25&timeout=30s"))
	if err != nil {
		t.Fatal(err)
	}
	if fromJSON != fromQuery {
		t.Errorf("JSON spec %+v != query spec %+v", fromJSON, fromQuery)
	}
	if fromJSON.variant() != fromQuery.variant() {
		t.Errorf("variant mismatch: %q vs %q", fromJSON.variant(), fromQuery.variant())
	}
}

// TestBodySpecPrecedence: a multipart "spec" part replaces the query
// string wholesale — a query knob absent from the body spec does NOT
// leak through.
func TestBodySpecPrecedence(t *testing.T) {
	srv := newBareServer(t, Config{PoolSize: 1})
	body, ctype := multipartBody(t, map[string][]byte{
		"spec":  []byte(`{"delta": 2.5}`),
		"image": []byte("fake-image"),
	})
	r := httptest.NewRequest(http.MethodPost,
		"/v1/mesh?delta=9&max_elements=777&format=off", bytes.NewReader(body))
	r.Header.Set("Content-Type", ctype)
	w := httptest.NewRecorder()
	spec, image, ok := srv.readMeshRequest(w, r)
	if !ok {
		t.Fatalf("readMeshRequest failed: %s", w.Body.String())
	}
	if string(image) != "fake-image" {
		t.Errorf("image part = %q", image)
	}
	if spec.Delta != 2.5 {
		t.Errorf("delta = %g, want the body's 2.5", spec.Delta)
	}
	if spec.MaxElements != 0 {
		t.Errorf("max_elements = %d leaked from the query string, want 0", spec.MaxElements)
	}
	if spec.Format != "vtk" {
		t.Errorf("format = %q leaked from the query string, want the default", spec.Format)
	}

	// Spec-less multipart: the query string applies as always.
	body, ctype = multipartBody(t, map[string][]byte{"image": []byte("fake-image")})
	r = httptest.NewRequest(http.MethodPost, "/v1/mesh?delta=9", bytes.NewReader(body))
	r.Header.Set("Content-Type", ctype)
	w = httptest.NewRecorder()
	spec, _, ok = srv.readMeshRequest(w, r)
	if !ok {
		t.Fatalf("spec-less multipart rejected: %s", w.Body.String())
	}
	if spec.Delta != 9 {
		t.Errorf("delta = %g, want the query's 9", spec.Delta)
	}
}

// TestQuerySurfaceByteIdentical: the historical raw-body-plus-query
// surface returns byte-identical meshes before and after the spec
// redesign — asserted by meshing the same image through the query
// surface and the equivalent JSON body spec and comparing the VTK
// bytes (both resolve to the same variant, so the second request is
// served from the same cached snapshot).
func TestQuerySurfaceByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{PoolSize: 1})
	client := ts.Client()
	image := nrrdBody(t, 8)

	code, viaQuery := post(t, client, ts.URL+"/v1/mesh?delta=2.5", image)
	if code != http.StatusOK {
		t.Fatalf("query-surface request: %d: %s", code, viaQuery)
	}
	if !bytes.HasPrefix(viaQuery, []byte("# vtk DataFile Version 3.0")) {
		t.Fatalf("query surface no longer returns legacy VTK: %q", viaQuery[:40])
	}

	body, ctype := multipartBody(t, map[string][]byte{
		"spec":  []byte(`{"delta": 2.5}`),
		"image": image,
	})
	resp, err := client.Post(ts.URL+"/v1/mesh", ctype, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	viaBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("body-spec request: %d: %s", resp.StatusCode, viaBody)
	}
	if !bytes.Equal(viaQuery, viaBody) {
		t.Error("query-surface and body-spec responses differ for identical knobs")
	}
}

// TestErrorEnvelope: every 4xx/5xx carries the structured JSON
// envelope, and capacity rejections mirror Retry-After into it.
func TestErrorEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{PoolSize: 1})
	client := ts.Client()

	code, body := post(t, client, ts.URL+"/v1/mesh?delta=NaN", []byte("x"))
	if code != http.StatusBadRequest {
		t.Fatalf("hostile query: %d", code)
	}
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("4xx body is not the JSON envelope: %q", body)
	}
	if env.Error.Code != CodeBadRequest || env.Error.Reason == "" {
		t.Errorf("envelope = %+v, want code %q and a reason", env, CodeBadRequest)
	}

	// Retry-After mirroring.
	w := httptest.NewRecorder()
	w.Header().Set("Retry-After", "7")
	httpError(w, http.StatusTooManyRequests, CodeQueueFull, "queue full")
	env = errorEnvelope{}
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.RetryAfterS != 7 {
		t.Errorf("retry_after_s = %d, want 7 (mirrors the header)", env.Error.RetryAfterS)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("error Content-Type = %q", ct)
	}
}
