package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cachestore"
	"repro/internal/faultinject"
)

// newSimServer is newTestServer plus a persistent result cache, so
// repeat simulate requests exercise the cache-hit → solve path.
func newSimServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cache, _, err := cachestore.Open(cachestore.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cache = cache
	return newTestServer(t, cfg)
}

// postSimulate sends a multipart simulate request and returns the
// response.
func postSimulate(t *testing.T, client *http.Client, url string, spec string, image []byte) (*http.Response, []byte) {
	t.Helper()
	body, ctype := multipartBody(t, map[string][]byte{
		"spec":  []byte(spec),
		"image": image,
	})
	resp, err := client.Post(url+"/v1/simulate", ctype, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestSimulateEndToEnd solves -Δu = 1 with u = 0 on the meshed sphere
// boundary through the full serving stack and checks the discrete
// field against the analytic solution u(r) = (R² - r²)/6: the maximum
// sits near R²/6. Also asserts the response carries the field as VTK
// POINT_DATA plus the JSON summary, and that format=summary returns
// the summary alone.
func TestSimulateEndToEnd(t *testing.T) {
	srv, ts := newSimServer(t, Config{PoolSize: 1})
	client := ts.Client()
	const scale = 32
	image := nrrdBody(t, scale)

	spec := `{
		"dirichlet": [{"value": 0}],
		"source": {"uniform": 1},
		"solve": {"tol": 1e-9}
	}`
	resp, body := postSimulate(t, client, ts.URL, spec, image)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/vtk" {
		t.Errorf("Content-Type = %q, want text/vtk", ct)
	}
	text := string(body)
	if !strings.Contains(text, "POINT_DATA") || !strings.Contains(text, "SCALARS u double 1") {
		t.Error("VTK response missing the POINT_DATA field section")
	}
	var summary SimSummary
	if err := json.Unmarshal([]byte(resp.Header.Get("X-Simulate-Summary")), &summary); err != nil {
		t.Fatalf("X-Simulate-Summary is not JSON: %v", err)
	}

	// Analytic: u_max = R²/6 with R = 0.35·scale (the phantom's
	// radius). The serving mesh is the raw refinement snapshot (no
	// surface smoothing), so the tolerance is looser than the fem
	// package's own analytic test.
	R := 0.35 * float64(scale)
	wantMax := R * R / 6
	if summary.FieldMax < wantMax*0.75 || summary.FieldMax > wantMax*1.25 {
		t.Errorf("field max = %g, want within 25%% of analytic %g", summary.FieldMax, wantMax)
	}
	if summary.FieldMin < -wantMax*0.05 {
		t.Errorf("field min = %g, want ~0 (boundary value)", summary.FieldMin)
	}
	if summary.Iterations < 1 || summary.Residual > 1e-8 {
		t.Errorf("solver summary: %d iterations, residual %g", summary.Iterations, summary.Residual)
	}
	if summary.ConstrainedVertices < 1 || summary.Cells < 1 || summary.Vertices < 1 {
		t.Errorf("summary sizes: %+v", summary)
	}
	if summary.Quality.MaxRadiusEdge <= 0 || summary.Quality.MinDihedralDeg <= 0 {
		t.Errorf("quality digest empty: %+v", summary.Quality)
	}
	if v := srv.mSimJobs.Value("ok"); v != 1 {
		t.Errorf("simulate_jobs_total{ok} = %d, want 1", v)
	}
	if srv.mSolveSeconds.Count() != 1 || srv.mSolveIters.Count() != 1 {
		t.Errorf("solve metrics: %d seconds obs, %d iter obs, want 1 each",
			srv.mSolveSeconds.Count(), srv.mSolveIters.Count())
	}

	// format=summary answers with the JSON document alone — and the
	// mesh comes from the cache this time (same image, same variant).
	resp, body = postSimulate(t, client, ts.URL,
		`{"format": "summary", "dirichlet": [{"value": 0}], "source": {"uniform": 1}, "solve": {"tol": 1e-9}}`,
		image)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("summary simulate: %d: %s", resp.StatusCode, body)
	}
	var summary2 SimSummary
	if err := json.Unmarshal(body, &summary2); err != nil {
		t.Fatalf("summary body is not JSON: %v: %s", err, body)
	}
	if !summary2.CacheHit {
		t.Error("second simulate over the same (image, variant) did not reuse the cached mesh")
	}
	if summary2.FieldMax != summary.FieldMax {
		t.Errorf("same problem, different fields: %g vs %g", summary2.FieldMax, summary.FieldMax)
	}
	if runs := srv.mRunSeconds.Count(); runs != 1 {
		t.Errorf("meshing runs = %d, want 1 (second simulate must reuse the snapshot)", runs)
	}
}

// TestSimulateSolveCanceled: a request whose client has already gone
// away by the time the solve starts answers 499 with the canceled
// envelope — the mesh stage was served from cache, so the failure is
// attributable to the solve alone.
func TestSimulateSolveCanceled(t *testing.T) {
	srv, ts := newSimServer(t, Config{PoolSize: 1})
	client := ts.Client()
	image := nrrdBody(t, 16)

	// Prime the mesh cache so the canceled request's mesh stage is a
	// cache hit (cache reads don't consult the context).
	if code, out := post(t, client, ts.URL+"/v1/mesh", image); code != http.StatusOK {
		t.Fatalf("prime mesh: %d: %s", code, out)
	}

	body, ctype := multipartBody(t, map[string][]byte{
		"spec":  []byte(`{"dirichlet": [{"value": 0}], "source": {"uniform": 1}}`),
		"image": image,
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is gone before the handler runs
	r := httptest.NewRequest(http.MethodPost, "/v1/simulate", bytes.NewReader(body)).WithContext(ctx)
	r.Header.Set("Content-Type", ctype)
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, r)

	if w.Code != StatusClientClosedRequest {
		t.Fatalf("canceled solve answered %d, want %d: %s", w.Code, StatusClientClosedRequest, w.Body.String())
	}
	var env errorEnvelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatalf("499 body is not the JSON envelope: %q", w.Body.String())
	}
	if env.Error.Code != CodeCanceled {
		t.Errorf("envelope code = %q, want %q", env.Error.Code, CodeCanceled)
	}
	if v := srv.mSimJobs.Value("canceled"); v != 1 {
		t.Errorf("simulate_jobs_total{canceled} = %d, want 1", v)
	}
}

// TestSimulateBadBC: boundary conditions that constrain no vertex of
// the actual mesh are the client's fault — 400 with code bad_bc, after
// the mesh stage (the mesh itself is fine and stays cached).
func TestSimulateBadBC(t *testing.T) {
	srv, ts := newTestServer(t, Config{PoolSize: 1})
	client := ts.Client()
	image := nrrdBody(t, 16)

	// A sphere predicate nowhere near the mesh selects nothing.
	resp, body := postSimulate(t, client, ts.URL,
		`{"dirichlet": [{"sphere": {"center": [1000, 1000, 1000], "r": 1}, "value": 0}]}`,
		image)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unmatchable BC answered %d, want 400: %s", resp.StatusCode, body)
	}
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("bad_bc body is not the JSON envelope: %q", body)
	}
	if env.Error.Code != CodeBadBC {
		t.Errorf("envelope code = %q, want %q", env.Error.Code, CodeBadBC)
	}
	if v := srv.mSimJobs.Value("bad_bc"); v != 1 {
		t.Errorf("simulate_jobs_total{bad_bc} = %d, want 1", v)
	}

	// Malformed spec: rejected before any meshing.
	resp, body = postSimulate(t, client, ts.URL, `{"dirichlet": []}`, image)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty dirichlet answered %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != CodeBadRequest {
		t.Errorf("pre-mesh rejection envelope: %q", body)
	}
}

// TestSimulateSharedMeshTwoSolves: two simulate requests agreeing on
// (image, mesh variant) but differing in boundary conditions share ONE
// meshing run — via single-flight coalescing when they overlap, via
// the result cache otherwise — and still receive their own distinct
// fields.
func TestSimulateSharedMeshTwoSolves(t *testing.T) {
	srv, ts := newTestServer(t, Config{PoolSize: 1, CoalesceMax: 4})
	client := ts.Client()
	image := nrrdBody(t, 16)

	// Slow the (single) session down so overlapping requests coalesce.
	restore := faultinject.Enable(faultinject.New(faultinject.Config{
		Seed:     1,
		Rates:    map[faultinject.Point]float64{faultinject.SlowSession: 1},
		MaxFires: map[faultinject.Point]int64{faultinject.SlowSession: 1},
		Delay:    300 * time.Millisecond,
	}))
	defer restore()

	specFor := func(value float64) string {
		// No source: the solution of Laplace's equation with u = value on
		// the whole boundary is the constant field u ≡ value.
		return fmt.Sprintf(`{"format": "summary", "dirichlet": [{"value": %g}]}`, value)
	}
	var wg sync.WaitGroup
	summaries := make([]SimSummary, 2)
	errs := make([]error, 2)
	for i, value := range []float64{1, 2} {
		wg.Add(1)
		go func(i int, value float64) {
			defer wg.Done()
			resp, body := postSimulate(t, client, ts.URL, specFor(value), image)
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("simulate %d: %d: %s", i, resp.StatusCode, body)
				return
			}
			errs[i] = json.Unmarshal(body, &summaries[i])
		}(i, value)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	if runs := srv.mRunSeconds.Count(); runs != 1 {
		t.Errorf("meshing runs = %d, want 1 (the mesh must be shared)", runs)
	}
	if shared := srv.mCoalesced.Value() + srv.mCacheServed.Value(); shared < 1 {
		t.Error("neither coalescing nor the cache served the second mesh")
	}
	for i, want := range []float64{1, 2} {
		s := summaries[i]
		if s.FieldMin < want-1e-6 || s.FieldMax > want+1e-6 {
			t.Errorf("solve %d: field in [%g, %g], want the constant %g", i, s.FieldMin, s.FieldMax, want)
		}
	}
	if summaries[0].Cells != summaries[1].Cells || summaries[0].Vertices != summaries[1].Vertices {
		t.Errorf("the two solves ran on different meshes: %+v vs %+v", summaries[0], summaries[1])
	}
}
