//go:build race

package serve

// raceDetector reports whether this test binary was built with -race,
// whose 10-30x slowdown on refinement loops calls for longer soak
// windows.
const raceDetector = true
