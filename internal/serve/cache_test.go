package serve

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cachestore"
	"repro/internal/faultinject"
)

// openTestCache opens a store in a temp dir and closes it with the test.
func openTestCache(t *testing.T, dir string) *cachestore.Store {
	t.Helper()
	c, _, err := cachestore.Open(cachestore.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestCacheHitShortCircuitsAdmission: a repeated request is answered
// from the persistent cache without consuming a pool session, a queue
// slot, or a run — the short-circuit the restart economics depend on.
func TestCacheHitShortCircuitsAdmission(t *testing.T) {
	cache := openTestCache(t, t.TempDir())
	srv, ts := newTestServer(t, Config{PoolSize: 1, Cache: cache})
	client := ts.Client()
	body := nrrdBody(t, 7)

	first, err := client.Post(ts.URL+"/v1/mesh", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	firstBytes, _ := io.ReadAll(first.Body)
	first.Body.Close()
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d", first.StatusCode)
	}
	if first.Header.Get("ETag") == "" {
		t.Fatal("meshed response carries no ETag")
	}
	checkoutsBefore := srv.pool.Stats().Checkouts
	runsBefore := srv.mRunSeconds.Count()

	second, err := client.Post(ts.URL+"/v1/mesh", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	secondBytes, _ := io.ReadAll(second.Body)
	second.Body.Close()
	if second.StatusCode != http.StatusOK {
		t.Fatalf("repeat request: %d", second.StatusCode)
	}
	if !bytes.Equal(firstBytes, secondBytes) {
		t.Fatal("cache-served body differs from the meshed one")
	}
	if got := second.Header.Get("ETag"); got != first.Header.Get("ETag") {
		t.Fatalf("ETag changed across the cache hit: %q vs %q", got, first.Header.Get("ETag"))
	}
	if n := srv.pool.Stats().Checkouts; n != checkoutsBefore {
		t.Fatalf("cache hit consumed a session lease (checkouts %d -> %d)", checkoutsBefore, n)
	}
	if n := srv.mRunSeconds.Count(); n != runsBefore {
		t.Fatal("cache hit triggered a meshing run")
	}
	if srv.mCacheServed.Value() != 1 {
		t.Fatalf("cache-served counter = %d, want 1", srv.mCacheServed.Value())
	}
	// The invariant the chaos soak asserts, in miniature.
	if srv.mAccepted.Value() != srv.mCompleted.Value() {
		t.Fatalf("accepted %d != completed %d", srv.mAccepted.Value(), srv.mCompleted.Value())
	}
	// Variants are distinct cache identities: a different quality knob
	// must mesh, not hit.
	third, err := client.Post(ts.URL+"/v1/mesh?max_elements=500", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	third.Body.Close()
	if third.StatusCode != http.StatusOK {
		t.Fatalf("variant request: %d", third.StatusCode)
	}
	if srv.mCacheServed.Value() != 1 {
		t.Fatal("a different variant was served from the wrong cache entry")
	}
}

// TestCacheSurvivesRestart: a new Server over the same cache directory
// answers a repeated request from disk — no session lease, byte-equal
// body — which is the warm-start the e2e restart test asserts over a
// real kill -9.
func TestCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	body := nrrdBody(t, 7)

	cache1, _, err := cachestore.Open(cachestore.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv1, ts1 := newTestServer(t, Config{PoolSize: 1, Cache: cache1})
	resp, err := ts1.Client().Post(ts1.URL+"/v1/mesh", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	meshed, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if resp.StatusCode != http.StatusOK || etag == "" {
		t.Fatalf("first life: %d etag=%q", resp.StatusCode, etag)
	}
	_ = srv1
	ts1.Close()
	// An unclean end: the store is abandoned without Close, like kill -9
	// (the blob and its journal record are already fsynced by Put).

	cache2, rep, err := cachestore.Open(cachestore.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cache2.Close() })
	if cache2.Len() == 0 {
		t.Fatalf("no entries survived the restart (fsck %+v)", rep)
	}
	srv2, ts2 := newTestServer(t, Config{PoolSize: 1, Cache: cache2})
	again, err := ts2.Client().Post(ts2.URL+"/v1/mesh", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	served, _ := io.ReadAll(again.Body)
	again.Body.Close()
	if again.StatusCode != http.StatusOK {
		t.Fatalf("second life: %d", again.StatusCode)
	}
	if !bytes.Equal(meshed, served) {
		t.Fatal("restarted server served different bytes for the same request")
	}
	if got := again.Header.Get("ETag"); got != etag {
		t.Fatalf("ETag changed across restart: %q vs %q", got, etag)
	}
	if n := srv2.pool.Stats().Checkouts; n != 0 {
		t.Fatalf("restart warm request consumed %d session leases, want 0", n)
	}
	// Warm start seeded the pool's affinity from the recovered index.
	key := ImageKey(body)
	found := false
	for _, e := range srv2.pool.entries {
		if e.key == key {
			found = true
		}
	}
	if !found {
		t.Fatal("pool affinity not seeded from the recovered cache index")
	}
}

// TestConditionalGet: a request carrying the previous response's ETag
// in If-None-Match is answered 304 from the index alone.
func TestConditionalGet(t *testing.T) {
	cache := openTestCache(t, t.TempDir())
	srv, ts := newTestServer(t, Config{PoolSize: 1, Cache: cache})
	client := ts.Client()
	body := nrrdBody(t, 7)

	resp, err := client.Post(ts.URL+"/v1/mesh", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag to validate against")
	}

	req, _ := http.NewRequest("POST", ts.URL+"/v1/mesh", bytes.NewReader(body))
	req.Header.Set("If-None-Match", etag)
	cond, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	condBody, _ := io.ReadAll(cond.Body)
	cond.Body.Close()
	if cond.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional request: %d, want 304", cond.StatusCode)
	}
	if len(condBody) != 0 {
		t.Fatalf("304 carried a %d-byte body", len(condBody))
	}
	if got := cond.Header.Get("ETag"); got != etag {
		t.Fatalf("304 ETag %q, want %q", got, etag)
	}
	// The 304 came from the index: no lease, no run, no blob read.
	if n := srv.mRunSeconds.Count(); n != 1 {
		t.Fatalf("runs = %d after the 304, want 1", n)
	}

	// A stale validator re-serves the full body (200, from cache).
	req2, _ := http.NewRequest("POST", ts.URL+"/v1/mesh", bytes.NewReader(body))
	req2.Header.Set("If-None-Match", `"0000000000000000-vtk"`)
	full, err := client.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, full.Body)
	full.Body.Close()
	if full.StatusCode != http.StatusOK {
		t.Fatalf("stale validator: %d, want 200", full.StatusCode)
	}

	// The format is part of the entity: the VTK tag must not validate an
	// OFF response.
	req3, _ := http.NewRequest("POST", ts.URL+"/v1/mesh?format=off", bytes.NewReader(body))
	req3.Header.Set("If-None-Match", etag)
	off, err := client.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, off.Body)
	off.Body.Close()
	if off.StatusCode != http.StatusOK {
		t.Fatalf("cross-format validator answered %d, want 200", off.StatusCode)
	}
}

// TestEtagMatch pins the If-None-Match comparison rules.
func TestEtagMatch(t *testing.T) {
	e := entityTag("00c0ffee00c0ffee", "vtk")
	cases := []struct {
		header string
		want   bool
	}{
		{e, true},
		{"*", true},
		{`W/` + e, true},
		{`"other"` + ", " + e, true},
		{`"other"`, false},
		{entityTag("00c0ffee00c0ffee", "off"), false},
		{"", false},
	}
	for _, c := range cases {
		if got := etagMatch(c.header, e); got != c.want {
			t.Errorf("etagMatch(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}

// TestCacheDegradedServesEveryRequest: with the disk refusing writes
// (injected ENOSPC), requests keep succeeding, the degraded gauge
// reads 1, and repeated requests are still answered from the store's
// memory read-through — zero failures attributable to the cache.
func TestCacheDegradedServesEveryRequest(t *testing.T) {
	cache, _, err := cachestore.Open(cachestore.Config{
		Dir:             t.TempDir(),
		ReprobeInterval: time.Hour, // stay degraded for the whole test
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cache.Close() })
	srv, ts := newTestServer(t, Config{PoolSize: 1, Cache: cache})
	client := ts.Client()

	in := faultinject.New(faultinject.Config{
		Seed:  7,
		Rates: map[faultinject.Point]float64{faultinject.CacheENOSPC: 1},
	})
	restore := faultinject.Enable(in)
	defer restore()

	body := nrrdBody(t, 7)
	for i := 0; i < 3; i++ {
		resp, err := client.Post(ts.URL+"/v1/mesh", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d under ENOSPC: %d", i, resp.StatusCode)
		}
	}
	if !cache.Degraded() {
		t.Fatal("store not degraded under permanent ENOSPC")
	}
	// Requests 2 and 3 were memory read-through hits, not re-meshes.
	if n := srv.mRunSeconds.Count(); n != 1 {
		t.Fatalf("runs = %d, want 1 (degraded cache must still serve hits)", n)
	}
	// The degraded gauge is exposed.
	rec := httptest.NewRecorder()
	ts.Config.Handler.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !bytes.Contains(rec.Body.Bytes(), []byte("pi2md_cache_degraded 1")) {
		t.Fatal("metrics do not report pi2md_cache_degraded 1")
	}
}

// TestBreakerPriorsRoundTrip: a drain persists open breaker keys next
// to the index; the next boot re-arms them open with an elapsed
// cooldown, so the first arrival is a single half-open probe.
func TestBreakerPriorsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cache1 := openTestCache(t, dir)
	srv1 := newBareServer(t, Config{PoolSize: 1, BreakerThreshold: 3, Cache: cache1})
	now := time.Now()
	srv1.flightMu.Lock()
	for i := 0; i < 3; i++ {
		srv1.breakers.reportLocked("poisoned-key", false, now)
	}
	open := srv1.breakers.openCountLocked()
	srv1.flightMu.Unlock()
	if open != 1 {
		t.Fatalf("breakers open before drain = %d, want 1", open)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv1.Drain(drainCtx); err != nil {
		t.Fatal(err)
	}

	cache2 := openTestCache(t, dir)
	srv2 := newBareServer(t, Config{PoolSize: 1, BreakerThreshold: 3, Cache: cache2})
	srv2.flightMu.Lock()
	ok, _ := srv2.breakers.admitLocked("poisoned-key", time.Now())
	openAfter := srv2.breakers.openCountLocked()
	srv2.flightMu.Unlock()
	if openAfter != 1 {
		t.Fatalf("breakers open after warm start = %d, want 1", openAfter)
	}
	if !ok {
		t.Fatal("seeded breaker refused its first probe: the elapsed cooldown must admit one")
	}
	srv2.flightMu.Lock()
	ok2, _ := srv2.breakers.admitLocked("poisoned-key", time.Now())
	srv2.flightMu.Unlock()
	if ok2 {
		t.Fatal("seeded breaker admitted a second concurrent probe")
	}
}
