package serve

import (
	"math"
	"net/url"
	"testing"
	"time"
)

// TestRetryAfterTracksLatency: the Retry-After hint is derived from
// the rejected waiter's actual queue position — queued/pool lease
// slots plus its own run, each a median lease — instead of a flat wait
// quantile, so a loaded server tells clients to back off for about as
// long as capacity actually takes to free up.
func TestRetryAfterTracksLatency(t *testing.T) {
	srv := newBareServer(t, Config{PoolSize: 1})
	srv.retryJitter = func() float64 { return 0.5 } // ×1.0: deterministic

	// Fast service: sub-millisecond leases round up to the 1s floor.
	for i := 0; i < 100; i++ {
		srv.mLeaseSeconds.Observe(0.01)
	}
	if got := srv.retryAfterSeconds(); got != 1 {
		t.Errorf("fast-server hint = %ds, want 1", got)
	}

	// Load arrives: leases land in the 5s bucket and four jobs are
	// already queued — the hint must account for draining all of them
	// before the retrier's own run.
	for i := 0; i < 1000; i++ {
		srv.mLeaseSeconds.Observe(3)
	}
	srv.waiting.Store(4)
	slow := srv.retryAfterSeconds()
	if slow < 10 {
		t.Errorf("loaded-server hint = %ds, want >= 10 ((4 queued + 1) x p50 lease ~5s)", slow)
	}
	if slow > 30 {
		t.Errorf("hint = %ds exceeds the 30s clamp", slow)
	}

	// Jitter stays inside ±20% and respects the clamps.
	srv.retryJitter = func() float64 { return 0 }
	low := srv.retryAfterSeconds()
	srv.retryJitter = func() float64 { return 1 }
	high := srv.retryAfterSeconds()
	if low > high {
		t.Errorf("jitter inverted: low=%d high=%d", low, high)
	}
	if low < 1 || high > 30 {
		t.Errorf("jittered hints %d..%d escape the [1,30] clamp", low, high)
	}
	srv.waiting.Store(0)
}

// TestRetryAfterMonotoneInQueuePosition: the raw estimate is
// nondecreasing in queue position — a rejection from a deep queue
// never tells its client to come back sooner than a rejection from a
// shallow one.
func TestRetryAfterMonotoneInQueuePosition(t *testing.T) {
	srv := newBareServer(t, Config{PoolSize: 2})
	for i := 0; i < 100; i++ {
		srv.mLeaseSeconds.Observe(0.8)
	}
	prev := -1.0
	for pos := int64(0); pos <= 32; pos++ {
		est := srv.retryAfterEstimate(pos)
		if est < prev {
			t.Fatalf("estimate not monotone: pos %d -> %gs, pos %d -> %gs", pos-1, prev, pos, est)
		}
		prev = est
	}
	if srv.retryAfterEstimate(32) <= srv.retryAfterEstimate(0) {
		t.Fatalf("estimate flat across queue depth: deep=%g shallow=%g",
			srv.retryAfterEstimate(32), srv.retryAfterEstimate(0))
	}
}

// hostileParams is the shared oracle: the query surface must reject
// these outright (no panic, no NaN/Inf/non-positive knob reaching the
// engine).
var hostileParams = []string{
	"delta=NaN",
	"delta=nan",
	"delta=+Inf",
	"delta=-Inf",
	"delta=Infinity",
	"delta=-1",
	"delta=0",
	"delta=1e",
	"max_radius_edge=NaN",
	"max_radius_edge=Inf",
	"max_radius_edge=1.9",
	"max_radius_edge=-2",
	"min_facet_angle=NaN",
	"min_facet_angle=-30",
	"max_elements=-1",
	"max_elements=2.5",
	"max_elements=NaN",
	"timeout=-5s",
	"timeout=0s",
	"timeout=NaN",
	"format=evil",
	"format=vtk%00",
}

func queryValues(qs string) url.Values {
	u, err := url.Parse("/v1/mesh?" + qs)
	if err != nil {
		return url.Values{}
	}
	return u.Query()
}

// TestParseMeshSpecHostile: every hostile/boundary knob yields a parse
// error from the shared query→MeshSpec path (the HTTP layer turns it
// into a 400), never a NaN-configured run. delta=NaN previously
// slipped through because ParseFloat accepts "NaN" and NaN <= 0 is
// false.
func TestParseMeshSpecHostile(t *testing.T) {
	for _, qs := range hostileParams {
		if _, err := meshSpecFromQuery(queryValues(qs)); err == nil {
			t.Errorf("query %q accepted, want an error", qs)
		}
	}
	// Sanity: the legitimate knobs still parse.
	spec, err := meshSpecFromQuery(queryValues(
		"format=off&delta=0.5&max_elements=1000&max_radius_edge=2.2&min_facet_angle=25&timeout=30s"))
	if err != nil {
		t.Fatalf("legitimate query rejected: %v", err)
	}
	if spec.Format != "off" || spec.Delta != 0.5 || spec.MaxElements != 1000 ||
		spec.MaxRadiusEdge != 2.2 || spec.MinFacetAngle != 25 ||
		time.Duration(spec.Timeout) != 30*time.Second {
		t.Errorf("parsed spec %+v does not match the query", spec)
	}
}

// checkSaneMeshSpec is the fuzz oracle shared by the query and JSON
// surfaces: anything either parser accepts must be a sane engine
// configuration.
func checkSaneMeshSpec(t *testing.T, m MeshSpec, input string) {
	t.Helper()
	for name, v := range map[string]float64{
		"delta":           m.Delta,
		"max_radius_edge": m.MaxRadiusEdge,
		"min_facet_angle": m.MinFacetAngle,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Fatalf("accepted %s=%v from %q (NaN/Inf/negative would reach the engine)", name, v, input)
		}
	}
	if m.MaxRadiusEdge != 0 && m.MaxRadiusEdge < 2 {
		t.Fatalf("accepted max_radius_edge=%v below the provable bound from %q", m.MaxRadiusEdge, input)
	}
	if m.MaxElements < 0 {
		t.Fatalf("accepted max_elements=%d from %q", m.MaxElements, input)
	}
	if m.Timeout < 0 {
		t.Fatalf("accepted timeout=%v from %q", time.Duration(m.Timeout), input)
	}
	if m.Format != "vtk" && m.Format != "off" {
		t.Fatalf("accepted format=%q from %q", m.Format, input)
	}
	if m.Size != nil {
		if err := m.Size.validate(); err != nil {
			t.Fatalf("accepted invalid size spec from %q: %v", input, err)
		}
	}
}

// FuzzParseMeshParams: arbitrary query strings must never panic the
// parser, and anything it accepts must be a sane engine configuration
// — finite positive floats, non-negative element budget, radius-edge
// at or above the provable bound, positive timeout.
func FuzzParseMeshParams(f *testing.F) {
	for _, qs := range hostileParams {
		f.Add(qs)
	}
	f.Add("format=vtk&delta=0.5")
	f.Add("delta=1e309")
	f.Add("delta=0x1p-1074")
	f.Add("max_radius_edge=2&min_facet_angle=1e-300")
	f.Add("timeout=9999999999999999999ns")
	f.Add("delta=%GG&max_elements=+0")
	f.Fuzz(func(t *testing.T, qs string) {
		q := url.Values{}
		if u, err := url.Parse("/v1/mesh?" + qs); err == nil {
			q = u.Query()
		}
		m, err := meshSpecFromQuery(q)
		if err != nil {
			return
		}
		checkSaneMeshSpec(t, m, qs)
	})
}

// FuzzParseMeshSpec: the JSON body surface holds to the same oracle as
// the query surface — one shared validation path means one shared
// fuzz contract.
func FuzzParseMeshSpec(f *testing.F) {
	f.Add(`{}`)
	f.Add(`{"delta": 0.5, "format": "off"}`)
	f.Add(`{"delta": null}`)
	f.Add(`{"delta": 1e309}`)
	f.Add(`{"max_radius_edge": 1.99}`)
	f.Add(`{"timeout": "30s"}`)
	f.Add(`{"timeout": 30}`)
	f.Add(`{"timeout": "-5s"}`)
	f.Add(`{"version": 99}`)
	f.Add(`{"unknown_knob": 1}`)
	f.Add(`{"size": {"per_label": {"1": 2}, "balls": [{"center": [8,8,8], "r": 4, "h": 0.5}]}}`)
	f.Add(`{"size": {"per_label": {"evil": 2}}}`)
	f.Add(`{"size": {"balls": [{"center": [0,0,0], "r": -1, "h": 1}]}}`)
	f.Fuzz(func(t *testing.T, body string) {
		m, err := ParseMeshSpec([]byte(body))
		if err != nil {
			return
		}
		checkSaneMeshSpec(t, m, body)
	})
}

// FuzzParseSimSpec: arbitrary JSON must never panic the simulation
// spec parser, and anything it accepts must be fully sane — validated
// mesh knobs, positive finite conductivities, well-formed predicates,
// at least one Dirichlet clause, non-negative solver bounds.
func FuzzParseSimSpec(f *testing.F) {
	f.Add(`{}`)
	f.Add(`{"dirichlet": [{"value": 0}]}`)
	f.Add(`{"dirichlet": [{"label": 1, "value": 0}], "conductivity": {"per_label": {"1": 2.5}}}`)
	f.Add(`{"dirichlet": [{"plane": {"axis": "z", "side": "min"}, "value": 1}], "source": {"uniform": 1}}`)
	f.Add(`{"dirichlet": [{"sphere": {"center": [8,8,8], "r": 3}, "value": 2}]}`)
	f.Add(`{"dirichlet": [{"value": "NaN"}]}`)
	f.Add(`{"dirichlet": [{"plane": {"axis": "w", "side": "min"}, "value": 0}]}`)
	f.Add(`{"dirichlet": [{"value": 0}], "solve": {"tol": -1}}`)
	f.Add(`{"dirichlet": [{"value": 0}], "solve": {"timeout": "1h"}}`)
	f.Add(`{"dirichlet": [{"value": 0}], "mesh": {"delta": 0}}`)
	f.Add(`{"dirichlet": [{"value": 0}], "conductivity": {"per_label": {"1": -1}}}`)
	f.Add(`{"version": 2, "dirichlet": [{"value": 0}]}`)
	f.Fuzz(func(t *testing.T, body string) {
		sp, err := ParseSimSpec([]byte(body))
		if err != nil {
			return
		}
		checkSaneMeshSpec(t, sp.Mesh, body)
		if sp.Format != "vtk" && sp.Format != "summary" {
			t.Fatalf("accepted format=%q from %q", sp.Format, body)
		}
		if len(sp.Dirichlet) == 0 {
			t.Fatalf("accepted a spec with no dirichlet clauses from %q", body)
		}
		for _, bc := range sp.Dirichlet {
			if math.IsNaN(bc.Value) || math.IsInf(bc.Value, 0) {
				t.Fatalf("accepted non-finite dirichlet value from %q", body)
			}
		}
		if c := sp.Conductivity; c != nil {
			for k, v := range c.PerLabel {
				if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("accepted conductivity %s=%v from %q", k, v, body)
				}
			}
		}
		if sp.Solve.Tol < 0 || sp.Solve.MaxIter < 0 || sp.Solve.Timeout < 0 {
			t.Fatalf("accepted negative solver bounds from %q", body)
		}
	})
}
