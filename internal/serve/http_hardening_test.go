package serve

import (
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"
)

// TestRetryAfterTracksLatency: the Retry-After hint follows the
// observed queue-wait p90 + lease p50 instead of a hardcoded "1" — a
// loaded server tells clients to back off for about as long as
// capacity actually takes to free up.
func TestRetryAfterTracksLatency(t *testing.T) {
	srv := newBareServer(t, Config{PoolSize: 1})
	srv.retryJitter = func() float64 { return 0.5 } // ×1.0: deterministic

	// Fast service: sub-millisecond waits round up to the 1s floor.
	for i := 0; i < 100; i++ {
		srv.mQueueWait.Observe(0.0005)
		srv.mLeaseSeconds.Observe(0.01)
	}
	if got := srv.retryAfterSeconds(); got != 1 {
		t.Errorf("fast-server hint = %ds, want 1", got)
	}

	// Load arrives: waits land in the 10s bucket, leases in the 5s
	// bucket — the hint must grow with them.
	for i := 0; i < 1000; i++ {
		srv.mQueueWait.Observe(8)
		srv.mLeaseSeconds.Observe(3)
	}
	slow := srv.retryAfterSeconds()
	if slow < 10 {
		t.Errorf("loaded-server hint = %ds, want >= 10 (p90 wait ~10s bucket)", slow)
	}
	if slow > 30 {
		t.Errorf("hint = %ds exceeds the 30s clamp", slow)
	}

	// Jitter stays inside ±20% and respects the clamps.
	srv.retryJitter = func() float64 { return 0 }
	low := srv.retryAfterSeconds()
	srv.retryJitter = func() float64 { return 1 }
	high := srv.retryAfterSeconds()
	if low > high {
		t.Errorf("jitter inverted: low=%d high=%d", low, high)
	}
	if low < 1 || high > 30 {
		t.Errorf("jittered hints %d..%d escape the [1,30] clamp", low, high)
	}
}

// hostileParams is the shared oracle: parseMeshParams must reject
// these outright (no panic, no NaN/Inf/non-positive knob reaching the
// engine).
var hostileParams = []string{
	"delta=NaN",
	"delta=nan",
	"delta=+Inf",
	"delta=-Inf",
	"delta=Infinity",
	"delta=-1",
	"delta=0",
	"delta=1e",
	"max_radius_edge=NaN",
	"max_radius_edge=Inf",
	"max_radius_edge=1.9",
	"max_radius_edge=-2",
	"min_facet_angle=NaN",
	"min_facet_angle=-30",
	"max_elements=-1",
	"max_elements=2.5",
	"max_elements=NaN",
	"timeout=-5s",
	"timeout=0s",
	"timeout=NaN",
	"format=evil",
	"format=vtk%00",
}

// TestParseMeshParamsHostile: every hostile/boundary knob yields a
// parse error (the HTTP layer turns it into a 400), never a
// NaN-configured run. delta=NaN previously slipped through because
// ParseFloat accepts "NaN" and NaN <= 0 is false.
func TestParseMeshParamsHostile(t *testing.T) {
	for _, qs := range hostileParams {
		r := httptest.NewRequest(http.MethodPost, "/v1/mesh?"+qs, nil)
		if _, err := parseMeshParams(r); err == nil {
			t.Errorf("query %q accepted, want an error", qs)
		}
	}
	// Sanity: the legitimate knobs still parse.
	r := httptest.NewRequest(http.MethodPost,
		"/v1/mesh?format=off&delta=0.5&max_elements=1000&max_radius_edge=2.2&min_facet_angle=25&timeout=30s", nil)
	p, err := parseMeshParams(r)
	if err != nil {
		t.Fatalf("legitimate query rejected: %v", err)
	}
	if p.format != "off" || p.delta != 0.5 || p.maxElements != 1000 ||
		p.maxRadiusEdge != 2.2 || p.minFacetAngle != 25 || p.timeout != 30*time.Second {
		t.Errorf("parsed params %+v do not match the query", p)
	}
}

// FuzzParseMeshParams: arbitrary query strings must never panic the
// parser, and anything it accepts must be a sane engine
// configuration — finite positive floats, non-negative element
// budget, radius-edge at or above the provable bound, positive
// timeout.
func FuzzParseMeshParams(f *testing.F) {
	for _, qs := range hostileParams {
		f.Add(qs)
	}
	f.Add("format=vtk&delta=0.5")
	f.Add("delta=1e309")
	f.Add("delta=0x1p-1074")
	f.Add("max_radius_edge=2&min_facet_angle=1e-300")
	f.Add("timeout=9999999999999999999ns")
	f.Add("delta=%GG&max_elements=+0")
	f.Fuzz(func(t *testing.T, qs string) {
		r := httptest.NewRequest(http.MethodPost, "/v1/mesh", nil)
		if u, err := url.Parse("/v1/mesh?" + qs); err == nil {
			r.URL = u
		}
		p, err := parseMeshParams(r)
		if err != nil {
			return
		}
		for name, v := range map[string]float64{
			"delta":           p.delta,
			"max_radius_edge": p.maxRadiusEdge,
			"min_facet_angle": p.minFacetAngle,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("accepted %s=%v from %q (NaN/Inf/negative would reach the engine)", name, v, qs)
			}
		}
		if p.maxRadiusEdge != 0 && p.maxRadiusEdge < 2 {
			t.Fatalf("accepted max_radius_edge=%v below the provable bound from %q", p.maxRadiusEdge, qs)
		}
		if p.maxElements < 0 {
			t.Fatalf("accepted max_elements=%d from %q", p.maxElements, qs)
		}
		if p.timeout < 0 {
			t.Fatalf("accepted timeout=%v from %q", p.timeout, qs)
		}
		if p.format != "vtk" && p.format != "off" {
			t.Fatalf("accepted format=%q from %q", p.format, qs)
		}
	})
}
