package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/cachestore"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/img"
)

// chaosSeed returns the soak seed: PI2MD_CHAOS_SEED if set (the CI
// matrix), a fixed default otherwise — the run is reproducible either
// way.
func chaosSeed(t *testing.T) int64 {
	if v := os.Getenv("PI2MD_CHAOS_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad PI2MD_CHAOS_SEED=%q: %v", v, err)
		}
		return n
	}
	return 11
}

// chaosOutcome is one request's observed behavior, checked against
// the service invariants after the storm.
type chaosOutcome struct {
	code       int
	body       string
	retryAfter string
}

// TestChaosSoak is the service-level chaos harness: a live Server
// under a seeded randomized workload with injected worker panics,
// slow sessions, queue-full storms, poisoned runs, a wedged run, and
// failing rebuilds. It asserts the self-healing invariants:
//
//   - no request hangs (every worker returns, bounded);
//   - every 4xx/5xx carries a reason, every 429/503 a Retry-After;
//   - the pool returns to PoolSize healthy sessions without operator
//     action, and every breaker closes after recovery probes;
//   - the metrics stay consistent: accepted == completed + failed,
//     runs == accepted − coalesced − watchdog-abandoned − cache-served,
//     and one HTTP 200 per completed job;
//   - the persistent cache, under injected torn writes, bit flips, and
//     disk-full errors, never fails a request (corrupt entries are
//     quarantined and re-meshed, write failures degrade to memory-only).
//
// A JSON invariant report is written to $PI2MD_CHAOS_REPORT if set.
func TestChaosSoak(t *testing.T) {
	seed := chaosSeed(t)
	const poolSize = 2
	cache, _, err := cachestore.Open(cachestore.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cache.Close() })
	srv, ts := newTestServer(t, Config{
		PoolSize:         poolSize,
		QueueDepth:       8,
		DefaultTimeout:   5 * time.Second,
		CoalesceMax:      4,
		SuspectThreshold: 2,
		BreakerThreshold: 3,
		BreakerCooldown:  150 * time.Millisecond,
		WatchdogFactor:   1,
		WatchdogGrace:    50 * time.Millisecond,
		Cache:            cache,
	})
	client := ts.Client()

	bodies := [][]byte{nrrdBody(t, 6), nrrdBody(t, 7), nrrdBody(t, 8)}
	variants := []string{"", "delta=2.5", "max_elements=500"}
	formats := []string{"vtk", "off"}

	// Simulate traffic rides the same storm: a well-posed problem, an
	// unmatchable boundary condition (post-mesh 400), and a malformed
	// spec (pre-mesh 400). Bodies are prebuilt — multipartBody may
	// t.Fatal, which worker goroutines must not.
	simSpecs := []string{
		`{"dirichlet": [{"plane": {"axis": "z", "side": "min"}, "value": 0}], "source": {"uniform": 1}}`,
		`{"dirichlet": [{"sphere": {"center": [9999, 9999, 9999], "r": 1}, "value": 0}]}`,
		`{"dirichlet": []}`,
	}
	type simReq struct {
		body  []byte
		ctype string
	}
	simBodies := make([][]simReq, len(bodies))
	for i, b := range bodies {
		for _, spec := range simSpecs {
			body, ctype := multipartBody(t, map[string][]byte{
				"spec":  []byte(spec),
				"image": b,
			})
			simBodies[i] = append(simBodies[i], simReq{body, ctype})
		}
	}

	// ---- Phase A: the storm. -------------------------------------
	storm := faultinject.New(faultinject.Config{
		Seed: seed,
		Rates: map[faultinject.Point]float64{
			faultinject.WorkerPanic:    0.01,
			faultinject.SlowSession:    0.05,
			faultinject.QueueFull:      0.03,
			faultinject.RunPoisoned:    0.05,
			faultinject.RebuildFail:    1,
			faultinject.CacheWriteFail: 0.05,
			faultinject.CacheTornWrite: 0.05,
			faultinject.CacheBitFlip:   0.05,
			faultinject.CacheENOSPC:    0.03,
		},
		MaxFires: map[faultinject.Point]int64{
			faultinject.RunPoisoned: 6,
			faultinject.RebuildFail: 3,
		},
		After: map[faultinject.Point]int64{
			faultinject.WorkerPanic: 50,
		},
		Delay: 50 * time.Millisecond,
	})
	restore := faultinject.Enable(storm)

	const workers, perWorker = 4, 30
	outcomes := make(chan chaosOutcome, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for i := 0; i < perWorker; i++ {
				url := ts.URL + "/v1/mesh?format=" + formats[rng.Intn(len(formats))]
				if v := variants[rng.Intn(len(variants))]; v != "" {
					url += "&" + v
				}
				bi := rng.Intn(len(bodies))
				body, ctype := bodies[bi], "application/octet-stream"
				switch roll := rng.Intn(100); {
				case roll < 5:
					body = []byte("this is not an NRRD image")
				case roll < 12:
					url += "&timeout=1ms" // doomed: deadline pressure
				case roll < 32:
					// Simulate traffic: mesh + solve through the same pool.
					sim := simBodies[bi][rng.Intn(len(simSpecs))]
					url = ts.URL + "/v1/simulate"
					body, ctype = sim.body, sim.ctype
				}
				resp, err := client.Post(url, ctype, bytes.NewReader(body))
				if err != nil {
					t.Errorf("worker %d request %d: transport error: %v", w, i, err)
					continue
				}
				buf, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
				resp.Body.Close()
				outcomes <- chaosOutcome{
					code:       resp.StatusCode,
					body:       string(buf),
					retryAfter: resp.Header.Get("Retry-After"),
				}
			}
		}(w)
	}
	stormDone := make(chan struct{})
	go func() { wg.Wait(); close(stormDone) }()
	select {
	case <-stormDone:
	case <-time.After(90 * time.Second):
		t.Fatal("storm workload hung: a request never returned")
	}
	restore()

	// ---- Phase B: deterministic kill wave (leader panics). --------
	for i := 0; i < 2; i++ {
		key := fmt.Sprintf("chaos-kill-%d", i)
		im, err := img.ReadNRRD(bytes.NewReader(bodies[i%len(bodies)]))
		if err != nil {
			t.Fatal(err)
		}
		_, err = srv.MeshSnapshot(context.Background(), key, "", im,
			func(*core.Config) { panic("chaos: injected tune panic") })
		if err == nil {
			t.Fatal("panicking kill-wave run returned no error")
		}
	}

	// ---- Phase C: one wedged run for the watchdog. ----------------
	wedge := faultinject.New(faultinject.Config{
		Seed:     seed,
		Rates:    map[faultinject.Point]float64{faultinject.LeaseLeak: 1},
		MaxFires: map[faultinject.Point]int64{faultinject.LeaseLeak: 1},
		Delay:    600 * time.Millisecond,
	})
	restoreWedge := faultinject.Enable(wedge)
	// A fresh body the storm never posted: a cached one would be served
	// from the result cache and short-circuit the run the wedge needs.
	resp, err := client.Post(ts.URL+"/v1/mesh?timeout=100ms", "application/octet-stream",
		bytes.NewReader(nrrdBody(t, 9)))
	if err != nil {
		t.Fatalf("wedge request: %v", err)
	}
	resp.Body.Close()
	restoreWedge()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("wedged run answered %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("wedged-run 503 missing Retry-After")
	}
	if a := srv.mWatchdogAbandons.Value(); a < 1 {
		t.Errorf("watchdog abandons = %d, want >= 1 (the wedge must not leak its lease)", a)
	}

	// ---- Phase D: recovery — self-heal without operator action. ---
	var healed, breakersClosed bool
	recoveryDeadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(recoveryDeadline) {
		srv.pool.WaitSettled()
		// Healthy probes for every (body, variant) pair the storm may
		// have tripped a breaker for; successes close them.
		for _, b := range bodies {
			for _, v := range variants {
				url := ts.URL + "/v1/mesh"
				if v != "" {
					url += "?" + v
				}
				r, err := client.Post(url, "application/octet-stream", bytes.NewReader(b))
				if err != nil {
					t.Fatalf("recovery probe: %v", err)
				}
				r.Body.Close()
			}
		}
		healed = srv.pool.Healthy() == poolSize
		breakersClosed = srv.Stats().BreakersOpen == 0
		if healed && breakersClosed {
			break
		}
		time.Sleep(160 * time.Millisecond) // past the breaker cooldown
	}
	if !healed {
		t.Errorf("pool did not heal: %d/%d healthy sessions", srv.pool.Healthy(), poolSize)
	}
	if !breakersClosed {
		t.Errorf("%d breakers still open after recovery probes", srv.Stats().BreakersOpen)
	}

	// ---- Invariants. ----------------------------------------------
	close(outcomes)
	var fiveXX, fourXX, twoXX int
	for o := range outcomes {
		switch {
		case o.code >= 500 || o.code == StatusClientClosedRequest:
			fiveXX++
		case o.code >= 400:
			fourXX++
		default:
			twoXX++
		}
		if o.code >= 400 {
			// Every rejection is machine-readable: the structured JSON
			// envelope with a code and a human reason, no bare strings.
			var env errorEnvelope
			if err := json.Unmarshal([]byte(o.body), &env); err != nil ||
				env.Error.Code == "" || env.Error.Reason == "" {
				t.Errorf("status %d body is not the error envelope: %q", o.code, o.body)
			}
		}
		if (o.code == http.StatusTooManyRequests || o.code == http.StatusServiceUnavailable) && o.retryAfter == "" {
			t.Errorf("status %d missing Retry-After", o.code)
		}
	}

	accepted := srv.mAccepted.Value()
	completed := srv.mCompleted.Value()
	failed := srv.mFailed.Value()
	coalesced := srv.mCoalesced.Value()
	abandoned := srv.mWatchdogAbandons.Value()
	cacheServed := srv.mCacheServed.Value()
	runs := srv.mRunSeconds.Count()
	if accepted != completed+failed {
		t.Errorf("accepted %d != completed %d + failed %d", accepted, completed, failed)
	}
	if runs != accepted-coalesced-abandoned-cacheServed {
		t.Errorf("runs %d != accepted %d - coalesced %d - abandoned %d - cache-served %d",
			runs, accepted, coalesced, abandoned, cacheServed)
	}
	// A simulate request whose mesh stage completed but whose solve then
	// failed counts as a completed mesh job without a 200 — so the 200
	// ledger balances against completed minus post-mesh solve failures
	// (pre-mesh rejections and mesh_failed never incremented completed).
	postMeshSimFail := int64(0)
	for _, o := range []string{"bad_bc", "solve_failed", "canceled", "deadline", "watchdog"} {
		postMeshSimFail += srv.mSimJobs.Value(o)
	}
	if ok200 := srv.mRequests.Value("200"); ok200 != completed-postMeshSimFail {
		t.Errorf("HTTP 200s %d != completed jobs %d - post-mesh simulate failures %d",
			ok200, completed, postMeshSimFail)
	}
	if srv.mSimJobs.Value("ok") < 1 {
		t.Error("no simulate job completed during the soak")
	}
	if srv.mSimJobs.Value("bad_bc") < 1 {
		t.Error("the unmatchable-BC simulate traffic never produced a bad_bc outcome")
	}
	ps := srv.pool.Stats()
	if ps.Quarantines != ps.HealthRebuilds {
		t.Errorf("quarantines %d != rebuilds %d after settling", ps.Quarantines, ps.HealthRebuilds)
	}
	if ps.Quarantines < 1 {
		t.Errorf("quarantines = %d; the kill wave alone should have quarantined sessions", ps.Quarantines)
	}
	if completed < 1 {
		t.Error("no job completed during the soak")
	}
	// Cache invariants: corrupt blobs were detected (counted), never
	// served — a served corrupt blob would have broken a 200 body, and
	// the store-level soak covers byte-exactness — and no request failed
	// because the disk did (write faults only ever degrade the store).
	cs := cache.Stats()
	if cs.Hits+cs.Misses == 0 {
		t.Error("the soak never exercised the result cache")
	}

	// ---- Invariant report (CI artifact). --------------------------
	if path := os.Getenv("PI2MD_CHAOS_REPORT"); path != "" {
		report := map[string]any{
			"seed":               seed,
			"accepted":           accepted,
			"completed":          completed,
			"failed":             failed,
			"coalesced":          coalesced,
			"runs":               runs,
			"http_2xx":           twoXX,
			"http_4xx":           fourXX,
			"http_5xx":           fiveXX,
			"quarantines":        ps.Quarantines,
			"rebuilds":           ps.HealthRebuilds,
			"healthy":            srv.pool.Healthy(),
			"watchdog_kills":     srv.mWatchdogKills.Value(),
			"watchdog_abandoned": abandoned,
			"breaker_trips":      srv.mBreakerTrips.Value(),
			"breakers_open":      srv.Stats().BreakersOpen,
			"rejected_queue":     srv.mRejected.Value("queue_full"),
			"rejected_deadline":  srv.mRejected.Value("deadline"),
			"rejected_breaker":   srv.mRejected.Value("breaker_open"),
			"pool_healed":        healed,
			"breakers_closed":    breakersClosed,
			"cache_served":       cacheServed,
			"simulate_ok":        srv.mSimJobs.Value("ok"),
			"simulate_failed":    postMeshSimFail,
			"cache_hits":         cs.Hits,
			"cache_misses":       cs.Misses,
			"cache_writes":       cs.Writes,
			"cache_evictions":    cs.Evictions,
			"cache_corrupt":      cs.Corrupt,
			"cache_bytes":        cs.Bytes,
			"cache_degraded":     cs.Degraded,
			"fsck_recovered":     cs.FsckRecovered,
			"fsck_quarantined":   cs.FsckQuarantined,
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatalf("writing chaos report: %v", err)
		}
	}
}
