package img

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestNRRDRoundtrip(t *testing.T) {
	im := AbdominalPhantom(24, 20, 16)
	var buf bytes.Buffer
	if err := WriteNRRD(&buf, im); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNRRD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NX != im.NX || got.NY != im.NY || got.NZ != im.NZ {
		t.Fatalf("dims %dx%dx%d", got.NX, got.NY, got.NZ)
	}
	if got.Spacing != im.Spacing {
		t.Fatalf("spacing %v", got.Spacing)
	}
	for k := 0; k < im.NZ; k++ {
		for j := 0; j < im.NY; j++ {
			for i := 0; i < im.NX; i++ {
				if got.At(i, j, k) != im.At(i, j, k) {
					t.Fatalf("voxel (%d,%d,%d) differs", i, j, k)
				}
			}
		}
	}
}

func TestNRRDFileRoundtrip(t *testing.T) {
	im := SpherePhantom(16)
	path := t.TempDir() + "/sphere.nrrd"
	if err := WriteNRRDFile(path, im); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNRRDFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVoxels() != im.NumVoxels() {
		t.Fatal("voxel count mismatch")
	}
}

func TestNRRDAnisotropicSpacing(t *testing.T) {
	im := New(4, 5, 6, geom.Vec3{X: 0.96, Y: 0.96, Z: 2.4})
	im.Set(2, 2, 3, 7)
	var buf bytes.Buffer
	if err := WriteNRRD(&buf, im); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNRRD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spacing != im.Spacing {
		t.Fatalf("spacing %v", got.Spacing)
	}
	if got.At(2, 2, 3) != 7 {
		t.Fatal("voxel content lost")
	}
}

func TestNRRDGzipEncoding(t *testing.T) {
	im := TorusPhantom(16)
	// Hand-build a gzip-encoded NRRD.
	var data bytes.Buffer
	gz := gzip.NewWriter(&data)
	gz.Write(labelBytes(im))
	gz.Close()
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "NRRD0004\ntype: uint8\ndimension: 3\nsizes: %d %d %d\nspacings: 1 1 1\nencoding: gzip\n\n",
		im.NX, im.NY, im.NZ)
	buf.Write(data.Bytes())

	got, err := ReadNRRD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(8, 8, 8) != im.At(8, 8, 8) || got.NumVoxels() != im.NumVoxels() {
		t.Fatal("gzip roundtrip mismatch")
	}
}

func TestNRRDHeaderVariants(t *testing.T) {
	// Comments, uchar alias, spacing singular.
	body := make([]byte, 8)
	body[3] = 2
	var buf bytes.Buffer
	buf.WriteString("NRRD0001\n# a comment\ntype: uchar\ndimension: 3\nsizes: 2 2 2\nspacing: 1 2 3\nencoding: raw\n\n")
	buf.Write(body)
	got, err := ReadNRRD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spacing != (geom.Vec3{X: 1, Y: 2, Z: 3}) {
		t.Fatalf("spacing %v", got.Spacing)
	}
	if got.At(1, 1, 0) != 2 {
		t.Fatal("data order wrong")
	}
}

func TestNRRDErrors(t *testing.T) {
	cases := map[string]string{
		"bad magic":     "NOPE\n\n",
		"bad type":      "NRRD0004\ntype: float\ndimension: 3\nsizes: 1 1 1\nencoding: raw\n\n",
		"bad dimension": "NRRD0004\ntype: uint8\ndimension: 2\nsizes: 4 4\nencoding: raw\n\n",
		"bad encoding":  "NRRD0004\ntype: uint8\ndimension: 3\nsizes: 1 1 1\nencoding: hex\n\n",
		"detached":      "NRRD0004\ntype: uint8\ndimension: 3\nsizes: 1 1 1\nencoding: raw\ndata file: x.raw\n\n",
		"zero spacing":  "NRRD0004\ntype: uint8\ndimension: 3\nsizes: 1 1 1\nspacings: 0 1 1\nencoding: raw\n\n",
		"short data":    "NRRD0004\ntype: uint8\ndimension: 3\nsizes: 4 4 4\nencoding: raw\n\nxx",
	}
	for name, input := range cases {
		if _, err := ReadNRRD(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestNRRDHostileInputs covers the resource-exhaustion and corruption
// defenses: unbounded header lines, oversized headers, truncated or
// over-long gzip payloads, and absurd voxel counts must all fail with
// an error instead of allocating, hanging, or panicking.
func TestNRRDHostileInputs(t *testing.T) {
	longLine := "NRRD0004\ntype: uint8\n# " + strings.Repeat("x", maxHeaderLine+1024) + "\n"
	var bh strings.Builder
	bh.WriteString("NRRD0004\n")
	for bh.Len() <= maxHeaderBytes {
		bh.WriteString("# padding comment line\n")
	}
	bigHeader := bh.String()
	unterminated := "NRRD0004\ntype: uint8\ndimension: 3" // EOF before separator

	// Gzip payload that decodes to more bytes than the header declares.
	var overlong bytes.Buffer
	gz := gzip.NewWriter(&overlong)
	gz.Write(make([]byte, 8<<10))
	gz.Close()
	overGzip := "NRRD0004\ntype: uint8\ndimension: 3\nsizes: 2 2 2\nencoding: gzip\n\n" + overlong.String()

	// Gzip stream cut mid-payload.
	var full bytes.Buffer
	gz = gzip.NewWriter(&full)
	gz.Write(make([]byte, 64))
	gz.Close()
	truncGzip := "NRRD0004\ntype: uint8\ndimension: 3\nsizes: 4 4 4\nencoding: gzip\n\n" +
		string(full.Bytes()[:full.Len()/2])

	cases := map[string]string{
		"oversized header line": longLine,
		"oversized header":      bigHeader,
		"unterminated header":   unterminated,
		"huge voxel count":      "NRRD0004\ntype: uint8\ndimension: 3\nsizes: 100000 100000 100000\nencoding: raw\n\n",
		"overflowing sizes":     "NRRD0004\ntype: uint8\ndimension: 3\nsizes: 2000000000 2000000000 2000000000\nencoding: raw\n\n",
		"gzip decodes too much": overGzip,
		"gzip truncated":        truncGzip,
		"gzip garbage":          "NRRD0004\ntype: uint8\ndimension: 3\nsizes: 2 2 2\nencoding: gzip\n\nnot gzip at all",
		"malformed field":       "NRRD0004\nno colon here\n\n",
	}
	for name, input := range cases {
		if _, err := ReadNRRD(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		} else {
			t.Logf("%s: %v", name, err)
		}
	}
}

// TestNRRDHeaderLineCapAllowsLegitimate checks the caps do not reject
// ordinary long-ish but legal header content.
func TestNRRDHeaderLineCapAllowsLegitimate(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("NRRD0004\n# " + strings.Repeat("y", 8<<10) + "\n")
	buf.WriteString("type: uint8\ndimension: 3\nsizes: 2 2 2\nspacings: 1 1 1\nencoding: raw\n\n")
	buf.Write(make([]byte, 8))
	if _, err := ReadNRRD(&buf); err != nil {
		t.Fatalf("legitimate 8KB comment rejected: %v", err)
	}
}
