package img

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestNRRDRoundtrip(t *testing.T) {
	im := AbdominalPhantom(24, 20, 16)
	var buf bytes.Buffer
	if err := WriteNRRD(&buf, im); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNRRD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NX != im.NX || got.NY != im.NY || got.NZ != im.NZ {
		t.Fatalf("dims %dx%dx%d", got.NX, got.NY, got.NZ)
	}
	if got.Spacing != im.Spacing {
		t.Fatalf("spacing %v", got.Spacing)
	}
	for k := 0; k < im.NZ; k++ {
		for j := 0; j < im.NY; j++ {
			for i := 0; i < im.NX; i++ {
				if got.At(i, j, k) != im.At(i, j, k) {
					t.Fatalf("voxel (%d,%d,%d) differs", i, j, k)
				}
			}
		}
	}
}

func TestNRRDFileRoundtrip(t *testing.T) {
	im := SpherePhantom(16)
	path := t.TempDir() + "/sphere.nrrd"
	if err := WriteNRRDFile(path, im); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNRRDFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVoxels() != im.NumVoxels() {
		t.Fatal("voxel count mismatch")
	}
}

func TestNRRDAnisotropicSpacing(t *testing.T) {
	im := New(4, 5, 6, geom.Vec3{X: 0.96, Y: 0.96, Z: 2.4})
	im.Set(2, 2, 3, 7)
	var buf bytes.Buffer
	if err := WriteNRRD(&buf, im); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNRRD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spacing != im.Spacing {
		t.Fatalf("spacing %v", got.Spacing)
	}
	if got.At(2, 2, 3) != 7 {
		t.Fatal("voxel content lost")
	}
}

func TestNRRDGzipEncoding(t *testing.T) {
	im := TorusPhantom(16)
	// Hand-build a gzip-encoded NRRD.
	var data bytes.Buffer
	gz := gzip.NewWriter(&data)
	gz.Write(labelBytes(im))
	gz.Close()
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "NRRD0004\ntype: uint8\ndimension: 3\nsizes: %d %d %d\nspacings: 1 1 1\nencoding: gzip\n\n",
		im.NX, im.NY, im.NZ)
	buf.Write(data.Bytes())

	got, err := ReadNRRD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(8, 8, 8) != im.At(8, 8, 8) || got.NumVoxels() != im.NumVoxels() {
		t.Fatal("gzip roundtrip mismatch")
	}
}

func TestNRRDHeaderVariants(t *testing.T) {
	// Comments, uchar alias, spacing singular.
	body := make([]byte, 8)
	body[3] = 2
	var buf bytes.Buffer
	buf.WriteString("NRRD0001\n# a comment\ntype: uchar\ndimension: 3\nsizes: 2 2 2\nspacing: 1 2 3\nencoding: raw\n\n")
	buf.Write(body)
	got, err := ReadNRRD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spacing != (geom.Vec3{X: 1, Y: 2, Z: 3}) {
		t.Fatalf("spacing %v", got.Spacing)
	}
	if got.At(1, 1, 0) != 2 {
		t.Fatal("data order wrong")
	}
}

func TestNRRDErrors(t *testing.T) {
	cases := map[string]string{
		"bad magic":     "NOPE\n\n",
		"bad type":      "NRRD0004\ntype: float\ndimension: 3\nsizes: 1 1 1\nencoding: raw\n\n",
		"bad dimension": "NRRD0004\ntype: uint8\ndimension: 2\nsizes: 4 4\nencoding: raw\n\n",
		"bad encoding":  "NRRD0004\ntype: uint8\ndimension: 3\nsizes: 1 1 1\nencoding: hex\n\n",
		"detached":      "NRRD0004\ntype: uint8\ndimension: 3\nsizes: 1 1 1\nencoding: raw\ndata file: x.raw\n\n",
		"zero spacing":  "NRRD0004\ntype: uint8\ndimension: 3\nsizes: 1 1 1\nspacings: 0 1 1\nencoding: raw\n\n",
		"short data":    "NRRD0004\ntype: uint8\ndimension: 3\nsizes: 4 4 4\nencoding: raw\n\nxx",
	}
	for name, input := range cases {
		if _, err := ReadNRRD(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
