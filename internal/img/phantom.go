package img

import (
	"math"

	"repro/internal/geom"
)

// Primitive is an analytic solid used to build synthetic phantoms.
type Primitive interface {
	// Contains reports whether world point p is inside the solid.
	Contains(p geom.Vec3) bool
}

// Ellipsoid is an axis-aligned ellipsoid.
type Ellipsoid struct {
	Center geom.Vec3
	Radii  geom.Vec3
}

// Contains implements Primitive.
func (e Ellipsoid) Contains(p geom.Vec3) bool {
	d := p.Sub(e.Center)
	x := d.X / e.Radii.X
	y := d.Y / e.Radii.Y
	z := d.Z / e.Radii.Z
	return x*x+y*y+z*z <= 1
}

// Capsule is a cylinder with hemispherical caps between A and B.
type Capsule struct {
	A, B   geom.Vec3
	Radius float64
}

// Contains implements Primitive.
func (c Capsule) Contains(p geom.Vec3) bool {
	ab := c.B.Sub(c.A)
	t := p.Sub(c.A).Dot(ab) / ab.Norm2()
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	closest := c.A.Add(ab.Scale(t))
	return p.Dist2(closest) <= c.Radius*c.Radius
}

// Torus is a torus with major radius R and tube radius Rt, lying in
// the plane through Center perpendicular to Axis.
type Torus struct {
	Center geom.Vec3
	Axis   geom.Vec3 // unit axis
	R, Rt  float64
}

// Contains implements Primitive.
func (t Torus) Contains(p geom.Vec3) bool {
	d := p.Sub(t.Center)
	h := d.Dot(t.Axis)
	radial := d.Sub(t.Axis.Scale(h)).Norm()
	dr := radial - t.R
	return dr*dr+h*h <= t.Rt*t.Rt
}

// Region pairs a primitive with a tissue label. Later regions paint
// over earlier ones when voxelizing.
type Region struct {
	Label Label
	Solid Primitive
}

// Scene is an ordered list of labeled solids defining a phantom
// analytically. It doubles as an exact oracle in tests (the voxelized
// image approximates Scene.LabelAt to within a voxel).
type Scene struct {
	Regions []Region
}

// LabelAt returns the label of the last region containing p, or 0.
func (s *Scene) LabelAt(p geom.Vec3) Label {
	var l Label
	for _, r := range s.Regions {
		if r.Solid.Contains(p) {
			l = r.Label
		}
	}
	return l
}

// Voxelize paints the scene into a fresh image of the given dimensions
// and spacing, sampling at voxel centers.
func (s *Scene) Voxelize(nx, ny, nz int, spacing geom.Vec3) *Image {
	im := New(nx, ny, nz, spacing)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				if l := s.LabelAt(im.VoxelCenter(i, j, k)); l != 0 {
					im.Set(i, j, k, l)
				}
			}
		}
	}
	return im
}

// SpherePhantom returns an n^3 image of a single sphere filling ~70%
// of the image extent — the quickstart input (paper Figure 1's
// single-object pipeline).
func SpherePhantom(n int) *Image {
	s := SphereScene(n)
	return s.Voxelize(n, n, n, geom.Vec3{X: 1, Y: 1, Z: 1})
}

// SphereScene is the analytic scene behind SpherePhantom.
func SphereScene(n int) *Scene {
	c := float64(n) / 2
	r := 0.35 * float64(n)
	return &Scene{Regions: []Region{
		{Label: 1, Solid: Ellipsoid{Center: geom.Vec3{X: c, Y: c, Z: c}, Radii: geom.Vec3{X: r, Y: r, Z: r}}},
	}}
}

// TorusPhantom returns an n^3 image of a torus — a genus-1 surface
// exercising non-trivial topology recovery.
func TorusPhantom(n int) *Image {
	c := float64(n) / 2
	s := &Scene{Regions: []Region{
		{Label: 1, Solid: Torus{
			Center: geom.Vec3{X: c, Y: c, Z: c},
			Axis:   geom.Vec3{Z: 1},
			R:      0.28 * float64(n),
			Rt:     0.12 * float64(n),
		}},
	}}
	return s.Voxelize(n, n, n, geom.Vec3{X: 1, Y: 1, Z: 1})
}

// AbdominalScene models the IRCAD abdominal atlas substitution: a body
// envelope containing liver, two kidneys, spine and aorta, producing
// multiple smooth tissue interfaces and multi-material junctions. All
// coordinates scale with (nx, ny, nz).
func AbdominalScene(nx, ny, nz int, spacing geom.Vec3) *Scene {
	// Work in world units.
	w := geom.Vec3{X: float64(nx) * spacing.X, Y: float64(ny) * spacing.Y, Z: float64(nz) * spacing.Z}
	ctr := w.Scale(0.5)
	return &Scene{Regions: []Region{
		// Body envelope.
		{Label: 1, Solid: Ellipsoid{Center: ctr,
			Radii: geom.Vec3{X: 0.40 * w.X, Y: 0.33 * w.Y, Z: 0.44 * w.Z}}},
		// Liver: large off-center ellipsoid.
		{Label: 2, Solid: Ellipsoid{
			Center: geom.Vec3{X: 0.36 * w.X, Y: 0.45 * w.Y, Z: 0.55 * w.Z},
			Radii:  geom.Vec3{X: 0.17 * w.X, Y: 0.14 * w.Y, Z: 0.16 * w.Z}}},
		// Kidneys.
		{Label: 3, Solid: Ellipsoid{
			Center: geom.Vec3{X: 0.34 * w.X, Y: 0.62 * w.Y, Z: 0.38 * w.Z},
			Radii:  geom.Vec3{X: 0.06 * w.X, Y: 0.05 * w.Y, Z: 0.09 * w.Z}}},
		{Label: 4, Solid: Ellipsoid{
			Center: geom.Vec3{X: 0.66 * w.X, Y: 0.62 * w.Y, Z: 0.38 * w.Z},
			Radii:  geom.Vec3{X: 0.06 * w.X, Y: 0.05 * w.Y, Z: 0.09 * w.Z}}},
		// Spine: vertical capsule at the back.
		{Label: 5, Solid: Capsule{
			A:      geom.Vec3{X: 0.5 * w.X, Y: 0.70 * w.Y, Z: 0.12 * w.Z},
			B:      geom.Vec3{X: 0.5 * w.X, Y: 0.70 * w.Y, Z: 0.88 * w.Z},
			Radius: 0.05 * math.Min(w.X, w.Y)}},
		// Aorta: thinner vessel in front of the spine.
		{Label: 6, Solid: Capsule{
			A:      geom.Vec3{X: 0.52 * w.X, Y: 0.56 * w.Y, Z: 0.14 * w.Z},
			B:      geom.Vec3{X: 0.48 * w.X, Y: 0.56 * w.Y, Z: 0.86 * w.Z},
			Radius: 0.025 * math.Min(w.X, w.Y)}},
	}}
}

// AbdominalPhantom voxelizes AbdominalScene. The paper's input is
// 512x512x219 at 0.96x0.96x2.4mm (Table 3); pass smaller dimensions
// for host-scale runs — structure is preserved under scaling.
func AbdominalPhantom(nx, ny, nz int) *Image {
	spacing := geom.Vec3{X: 1, Y: 1, Z: 1}
	return AbdominalScene(nx, ny, nz, spacing).Voxelize(nx, ny, nz, spacing)
}

// KneeScene models the SPL knee atlas substitution: femur and tibia
// shafts with condyle heads, cartilage plates between them, and a
// meniscus ring, inside a soft-tissue envelope.
func KneeScene(nx, ny, nz int, spacing geom.Vec3) *Scene {
	w := geom.Vec3{X: float64(nx) * spacing.X, Y: float64(ny) * spacing.Y, Z: float64(nz) * spacing.Z}
	cx, cy := 0.5*w.X, 0.5*w.Y
	return &Scene{Regions: []Region{
		// Soft tissue envelope.
		{Label: 1, Solid: Ellipsoid{
			Center: geom.Vec3{X: cx, Y: cy, Z: 0.5 * w.Z},
			Radii:  geom.Vec3{X: 0.38 * w.X, Y: 0.38 * w.Y, Z: 0.46 * w.Z}}},
		// Femur: upper shaft + condyle head.
		{Label: 2, Solid: Capsule{
			A:      geom.Vec3{X: cx, Y: cy, Z: 0.86 * w.Z},
			B:      geom.Vec3{X: cx, Y: cy, Z: 0.62 * w.Z},
			Radius: 0.10 * w.X}},
		{Label: 2, Solid: Ellipsoid{
			Center: geom.Vec3{X: cx, Y: cy, Z: 0.60 * w.Z},
			Radii:  geom.Vec3{X: 0.16 * w.X, Y: 0.13 * w.Y, Z: 0.08 * w.Z}}},
		// Tibia: lower shaft + plateau.
		{Label: 3, Solid: Capsule{
			A:      geom.Vec3{X: cx, Y: cy, Z: 0.14 * w.Z},
			B:      geom.Vec3{X: cx, Y: cy, Z: 0.40 * w.Z},
			Radius: 0.09 * w.X}},
		{Label: 3, Solid: Ellipsoid{
			Center: geom.Vec3{X: cx, Y: cy, Z: 0.42 * w.Z},
			Radii:  geom.Vec3{X: 0.15 * w.X, Y: 0.12 * w.Y, Z: 0.06 * w.Z}}},
		// Cartilage plates in the joint space.
		{Label: 4, Solid: Ellipsoid{
			Center: geom.Vec3{X: cx, Y: cy, Z: 0.52 * w.Z},
			Radii:  geom.Vec3{X: 0.13 * w.X, Y: 0.11 * w.Y, Z: 0.035 * w.Z}}},
		// Meniscus ring around the joint.
		{Label: 5, Solid: Torus{
			Center: geom.Vec3{X: cx, Y: cy, Z: 0.52 * w.Z},
			Axis:   geom.Vec3{Z: 1},
			R:      0.15 * w.X,
			Rt:     0.030 * w.X}},
	}}
}

// KneePhantom voxelizes KneeScene (paper input: 512x512x119 at
// 0.27x0.27x1.4mm).
func KneePhantom(nx, ny, nz int) *Image {
	spacing := geom.Vec3{X: 1, Y: 1, Z: 1}
	return KneeScene(nx, ny, nz, spacing).Voxelize(nx, ny, nz, spacing)
}

// HeadNeckScene models the SPL head-neck atlas substitution: skull
// envelope with brain, an airway tube, and a stack of vertebrae.
func HeadNeckScene(nx, ny, nz int, spacing geom.Vec3) *Scene {
	w := geom.Vec3{X: float64(nx) * spacing.X, Y: float64(ny) * spacing.Y, Z: float64(nz) * spacing.Z}
	cx, cy := 0.5*w.X, 0.45*w.Y
	regions := []Region{
		// Head + neck envelope.
		{Label: 1, Solid: Ellipsoid{
			Center: geom.Vec3{X: cx, Y: cy, Z: 0.68 * w.Z},
			Radii:  geom.Vec3{X: 0.33 * w.X, Y: 0.36 * w.Y, Z: 0.28 * w.Z}}},
		{Label: 1, Solid: Capsule{
			A:      geom.Vec3{X: cx, Y: cy, Z: 0.55 * w.Z},
			B:      geom.Vec3{X: cx, Y: cy, Z: 0.20 * w.Z},
			Radius: 0.16 * w.X}},
		// Brain.
		{Label: 2, Solid: Ellipsoid{
			Center: geom.Vec3{X: cx, Y: cy, Z: 0.72 * w.Z},
			Radii:  geom.Vec3{X: 0.24 * w.X, Y: 0.27 * w.Y, Z: 0.19 * w.Z}}},
		// Airway.
		{Label: 3, Solid: Capsule{
			A:      geom.Vec3{X: cx, Y: 0.30 * w.Y, Z: 0.50 * w.Z},
			B:      geom.Vec3{X: cx, Y: 0.30 * w.Y, Z: 0.10 * w.Z},
			Radius: 0.030 * w.X}},
	}
	// Cervical vertebrae: five stacked lens-shaped bodies.
	for v := 0; v < 5; v++ {
		z := (0.12 + 0.08*float64(v)) * w.Z
		regions = append(regions, Region{Label: 4, Solid: Ellipsoid{
			Center: geom.Vec3{X: cx, Y: 0.58 * w.Y, Z: z},
			Radii:  geom.Vec3{X: 0.07 * w.X, Y: 0.06 * w.Y, Z: 0.030 * w.Z}}})
	}
	return &Scene{Regions: regions}
}

// HeadNeckPhantom voxelizes HeadNeckScene (paper input: 255x255x229 at
// 0.97x0.97x1.4mm).
func HeadNeckPhantom(nx, ny, nz int) *Image {
	spacing := geom.Vec3{X: 1, Y: 1, Z: 1}
	return HeadNeckScene(nx, ny, nz, spacing).Voxelize(nx, ny, nz, spacing)
}

// VesselScene models a branching vessel tree inside a tissue block — a
// stress case for thin structures and junctions (the paper's intro
// motivates blood-flow simulation; vessels are the canonical
// hard-to-mesh anatomy). A trunk splits into two branches, each
// splitting again, with radii shrinking by branching generation.
func VesselScene(nx, ny, nz int, spacing geom.Vec3) *Scene {
	w := geom.Vec3{X: float64(nx) * spacing.X, Y: float64(ny) * spacing.Y, Z: float64(nz) * spacing.Z}
	regions := []Region{
		// Embedding tissue.
		{Label: 1, Solid: Ellipsoid{
			Center: w.Scale(0.5),
			Radii:  geom.Vec3{X: 0.42 * w.X, Y: 0.42 * w.Y, Z: 0.44 * w.Z}}},
	}
	r0 := 0.045 * w.X
	type seg struct {
		a, b geom.Vec3
		r    float64
	}
	root := seg{
		a: geom.Vec3{X: 0.5 * w.X, Y: 0.5 * w.Y, Z: 0.10 * w.Z},
		b: geom.Vec3{X: 0.5 * w.X, Y: 0.5 * w.Y, Z: 0.45 * w.Z},
		r: r0,
	}
	segs := []seg{root}
	// Two generations of symmetric branching.
	level := []seg{root}
	for gen := 0; gen < 2; gen++ {
		var next []seg
		spread := 0.16 * w.X / float64(gen+1)
		up := 0.22 * w.Z
		for i, s := range level {
			dirSign := 1.0
			if i%2 == 1 {
				dirSign = -1
			}
			_ = dirSign
			for _, sx := range []float64{-1, 1} {
				child := seg{
					a: s.b,
					b: s.b.Add(geom.Vec3{X: sx * spread, Y: 0.5 * sx * spread * float64(gen), Z: up}),
					r: s.r * 0.75,
				}
				next = append(next, child)
				segs = append(segs, child)
			}
		}
		level = next
	}
	for _, s := range segs {
		regions = append(regions, Region{Label: 2, Solid: Capsule{A: s.a, B: s.b, Radius: s.r}})
	}
	return &Scene{Regions: regions}
}

// VesselPhantom voxelizes VesselScene at unit spacing.
func VesselPhantom(n int) *Image {
	spacing := geom.Vec3{X: 1, Y: 1, Z: 1}
	return VesselScene(n, n, n, spacing).Voxelize(n, n, n, spacing)
}
