package img

import "repro/internal/geom"

// Image processing utilities for segmented label maps. The paper
// observes that its fidelity numbers suffer from "isolated clusters of
// voxels which seem to be artifacts of the segmentation" (Section 7);
// RemoveIslands cleans those up before meshing. Downsample produces
// preview-resolution images from full atlases.

// RemoveIslands deletes connected foreground components (6-connected,
// same label) smaller than minVoxels, merging them into the label that
// surrounds them most (or background). It returns the number of voxels
// relabeled. The input image is modified in place.
func (im *Image) RemoveIslands(minVoxels int) int {
	n := im.NumVoxels()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}

	var stack []int
	changed := 0
	nextComp := int32(0)
	for start := 0; start < n; start++ {
		if comp[start] >= 0 || im.data[start] == 0 {
			continue
		}
		label := im.data[start]
		id := nextComp
		nextComp++

		// Flood fill this component, collecting its voxels.
		var members []int
		stack = append(stack[:0], start)
		comp[start] = id
		for len(stack) > 0 {
			idx := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, idx)
			i, j, k := im.Unindex(idx)
			for _, d := range [6][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}} {
				ni, nj, nk := i+d[0], j+d[1], k+d[2]
				if ni < 0 || nj < 0 || nk < 0 || ni >= im.NX || nj >= im.NY || nk >= im.NZ {
					continue
				}
				nidx := im.index(ni, nj, nk)
				if comp[nidx] < 0 && im.data[nidx] == label {
					comp[nidx] = id
					stack = append(stack, nidx)
				}
			}
		}
		if len(members) >= minVoxels {
			continue
		}

		// Island: relabel to the most common surrounding label.
		votes := map[Label]int{}
		for _, idx := range members {
			i, j, k := im.Unindex(idx)
			for _, d := range [6][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}} {
				l := im.At(i+d[0], j+d[1], k+d[2])
				if l != label {
					votes[l]++
				}
			}
		}
		var winner Label
		best := -1
		for l, v := range votes {
			if v > best {
				best = v
				winner = l
			}
		}
		for _, idx := range members {
			im.data[idx] = winner
			changed++
		}
	}
	return changed
}

// Downsample returns a half-resolution copy: each output voxel takes
// the majority label of its 2x2x2 input block (ties broken by the
// smaller label; background competes like any label). Spacing doubles,
// so world geometry is preserved. Useful for previewing full-resolution
// atlases at interactive cost.
func (im *Image) Downsample() *Image {
	nx := (im.NX + 1) / 2
	ny := (im.NY + 1) / 2
	nz := (im.NZ + 1) / 2
	out := New(nx, ny, nz, geom.Vec3{
		X: im.Spacing.X * 2, Y: im.Spacing.Y * 2, Z: im.Spacing.Z * 2,
	})
	var counts [256]int
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				var used []Label
				for dz := 0; dz < 2; dz++ {
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							l := im.At(2*i+dx, 2*j+dy, 2*k+dz)
							if counts[l] == 0 {
								used = append(used, l)
							}
							counts[l]++
						}
					}
				}
				var winner Label
				best := -1
				for _, l := range used {
					if counts[l] > best || (counts[l] == best && l < winner) {
						best = counts[l]
						winner = l
					}
					counts[l] = 0
				}
				if winner != 0 {
					out.Set(i, j, k, winner)
				}
			}
		}
	}
	return out
}
