package img

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/geom"
)

// NRRD support for segmented label images: the format the paper's
// input atlases ship in (3D Slicer / ITK ecosystems). The subset
// implemented covers label maps — 3-dimensional uint8 volumes with
// raw or gzip encoding and attached data — which is what PI2M
// consumes; richer NRRD features (detached data, other sample types,
// key/value metadata) are rejected with a clear error.

// WriteNRRD serializes the image as an attached-data NRRD with raw
// encoding.
func WriteNRRD(w io.Writer, im *Image) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "NRRD0004")
	fmt.Fprintln(bw, "# PI2M segmented label image")
	fmt.Fprintln(bw, "type: uint8")
	fmt.Fprintln(bw, "dimension: 3")
	fmt.Fprintf(bw, "sizes: %d %d %d\n", im.NX, im.NY, im.NZ)
	fmt.Fprintf(bw, "spacings: %g %g %g\n", im.Spacing.X, im.Spacing.Y, im.Spacing.Z)
	fmt.Fprintln(bw, "encoding: raw")
	fmt.Fprintln(bw, "endian: little") // uint8: endianness moot, field expected
	fmt.Fprintln(bw)
	if _, err := bw.Write(labelBytes(im)); err != nil {
		return err
	}
	return bw.Flush()
}

// labelBytes exposes the raw voxel data in NRRD's fastest-first (x,
// then y, then z) order, which matches the internal layout.
func labelBytes(im *Image) []byte {
	out := make([]byte, len(im.data))
	for i, l := range im.data {
		out[i] = byte(l)
	}
	return out
}

// Hostile-input bounds for ReadNRRD: a single header line (NRRD
// headers are short field lines) and the whole header (fields plus
// comments) before the data separator.
const (
	maxHeaderLine  = 64 << 10
	maxHeaderBytes = 1 << 20
)

// readHeaderLine reads one newline-terminated header line with both
// caps enforced, so a malicious stream cannot make the parser buffer
// unbounded input. budget is the remaining whole-header allowance.
func readHeaderLine(br *bufio.Reader, budget *int) (string, error) {
	var sb strings.Builder
	for {
		chunk, err := br.ReadSlice('\n')
		*budget -= len(chunk)
		if *budget < 0 {
			return "", fmt.Errorf("nrrd: header exceeds %d bytes", maxHeaderBytes)
		}
		sb.Write(chunk)
		if sb.Len() > maxHeaderLine {
			return "", fmt.Errorf("nrrd: header line exceeds %d bytes", maxHeaderLine)
		}
		if err == bufio.ErrBufferFull {
			continue
		}
		return sb.String(), err
	}
}

// ReadNRRD parses an attached-data uint8 label NRRD.
func ReadNRRD(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	budget := maxHeaderBytes
	magic, err := readHeaderLine(br, &budget)
	if err != nil {
		return nil, fmt.Errorf("nrrd: reading magic: %w", err)
	}
	if !strings.HasPrefix(magic, "NRRD") {
		return nil, fmt.Errorf("nrrd: bad magic %q", strings.TrimSpace(magic))
	}

	var (
		sizes    []int
		spacings = []float64{1, 1, 1}
		encoding = "raw"
		dim      = 0
		typ      = ""
	)
	for {
		line, err := readHeaderLine(br, &budget)
		if err != nil {
			return nil, fmt.Errorf("nrrd: header ended prematurely: %w", err)
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			break // header/data separator
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		key, value, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("nrrd: malformed header line %q", line)
		}
		value = strings.TrimSpace(value)
		switch strings.TrimSpace(strings.ToLower(key)) {
		case "type":
			typ = value
		case "dimension":
			dim, err = strconv.Atoi(value)
			if err != nil {
				return nil, fmt.Errorf("nrrd: bad dimension %q", value)
			}
		case "sizes":
			for _, f := range strings.Fields(value) {
				n, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("nrrd: bad sizes %q", value)
				}
				sizes = append(sizes, n)
			}
		case "spacings", "spacing":
			spacings = spacings[:0]
			for _, f := range strings.Fields(value) {
				x, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return nil, fmt.Errorf("nrrd: bad spacings %q", value)
				}
				spacings = append(spacings, x)
			}
		case "encoding":
			encoding = strings.ToLower(value)
		case "data file", "datafile":
			return nil, fmt.Errorf("nrrd: detached data files are not supported")
		}
	}

	switch typ {
	case "uint8", "uchar", "unsigned char":
	default:
		return nil, fmt.Errorf("nrrd: unsupported type %q (label maps are uint8)", typ)
	}
	if dim != 3 || len(sizes) != 3 {
		return nil, fmt.Errorf("nrrd: need a 3-dimensional image, got dim=%d sizes=%v", dim, sizes)
	}
	// maxVoxels bounds hostile headers: a 256M-voxel label volume is
	// beyond anything this library meshes.
	const maxVoxels = 1 << 28
	total := 1
	for _, n := range sizes {
		if n <= 0 {
			return nil, fmt.Errorf("nrrd: non-positive size in %v", sizes)
		}
		if total > maxVoxels/n {
			return nil, fmt.Errorf("nrrd: image of %v voxels exceeds the %d limit", sizes, maxVoxels)
		}
		total *= n
	}
	if len(spacings) != 3 {
		return nil, fmt.Errorf("nrrd: need 3 spacings, got %v", spacings)
	}
	for _, s := range spacings {
		if !(s > 0) || math.IsInf(s, 1) { // rejects NaN, zero, negatives, +Inf
			return nil, fmt.Errorf("nrrd: invalid spacing %v", spacings)
		}
	}

	var data io.Reader = br
	gzipped := false
	switch encoding {
	case "raw":
	case "gzip", "gz":
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("nrrd: opening gzip data: %w", err)
		}
		defer gz.Close()
		// Decompression bomb bound: the decoded stream must be exactly
		// the voxel array, so never inflate more than total+1 bytes (the
		// extra byte detects an oversized payload).
		data = io.LimitReader(gz, int64(total)+1)
		gzipped = true
	default:
		return nil, fmt.Errorf("nrrd: unsupported encoding %q", encoding)
	}

	im := New(sizes[0], sizes[1], sizes[2],
		geom.Vec3{X: spacings[0], Y: spacings[1], Z: spacings[2]})
	buf := make([]byte, len(im.data))
	if _, err := io.ReadFull(data, buf); err != nil {
		return nil, fmt.Errorf("nrrd: reading %d voxels: %w", len(buf), err)
	}
	if gzipped {
		var extra [1]byte
		if n, _ := data.Read(extra[:]); n != 0 {
			return nil, fmt.Errorf("nrrd: gzip data decodes to more than the declared %d voxels", total)
		}
	}
	for i, b := range buf {
		im.data[i] = Label(b)
	}
	return im, nil
}

// WriteNRRDFile writes the image to a file.
func WriteNRRDFile(path string, im *Image) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteNRRD(f, im); err != nil {
		return err
	}
	return f.Sync()
}

// ReadNRRDFile reads an image from a file.
func ReadNRRDFile(path string) (*Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadNRRD(f)
}
