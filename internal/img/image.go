// Package img provides the segmented multi-label 3D image substrate
// that PI2M meshes: a voxel grid of tissue labels with world-space
// spacing, surface-voxel classification, and sub-voxel isosurface
// intersection, plus synthetic phantoms standing in for the paper's
// CT/MR atlases (IRCAD abdominal, SPL knee, SPL head-neck).
package img

import (
	"fmt"

	"repro/internal/geom"
)

// Label identifies a tissue. Label 0 is the background (outside every
// object O); nonzero labels are foreground tissues.
type Label uint8

// Image is a segmented 3D image: NX*NY*NZ voxels with world-space
// voxel spacing. Voxel (i,j,k) is centered at
// ((i+0.5)*Spacing.X, (j+0.5)*Spacing.Y, (k+0.5)*Spacing.Z); the image
// occupies the world box [0, NX*Spacing.X] x ... x [0, NZ*Spacing.Z].
//
// Images are immutable after construction and safe for concurrent
// reads.
type Image struct {
	NX, NY, NZ int
	Spacing    geom.Vec3
	inv        geom.Vec3 // 1/Spacing componentwise, for hot lookups
	data       []Label
}

// New returns a zero-filled (all background) image.
func New(nx, ny, nz int, spacing geom.Vec3) *Image {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("img: invalid dimensions %dx%dx%d", nx, ny, nz))
	}
	if spacing.X <= 0 || spacing.Y <= 0 || spacing.Z <= 0 {
		panic(fmt.Sprintf("img: invalid spacing %v", spacing))
	}
	return &Image{
		NX: nx, NY: ny, NZ: nz,
		Spacing: spacing,
		inv:     geom.Vec3{X: 1 / spacing.X, Y: 1 / spacing.Y, Z: 1 / spacing.Z},
		data:    make([]Label, nx*ny*nz),
	}
}

func (im *Image) index(i, j, k int) int { return (k*im.NY+j)*im.NX + i }

// At returns the label of voxel (i,j,k); out-of-range indices are
// background.
func (im *Image) At(i, j, k int) Label {
	if i < 0 || j < 0 || k < 0 || i >= im.NX || j >= im.NY || k >= im.NZ {
		return 0
	}
	return im.data[im.index(i, j, k)]
}

// Set assigns the label of voxel (i,j,k). It is intended for image
// construction only and must not race with readers.
func (im *Image) Set(i, j, k int, l Label) {
	im.data[im.index(i, j, k)] = l
}

// VoxelCenter returns the world coordinates of voxel (i,j,k)'s center.
func (im *Image) VoxelCenter(i, j, k int) geom.Vec3 {
	return geom.Vec3{
		X: (float64(i) + 0.5) * im.Spacing.X,
		Y: (float64(j) + 0.5) * im.Spacing.Y,
		Z: (float64(k) + 0.5) * im.Spacing.Z,
	}
}

// Voxel returns the indices of the voxel containing world point p.
// Points outside the image map to out-of-range indices (whose label is
// background by At's convention).
func (im *Image) Voxel(p geom.Vec3) (i, j, k int) {
	return int(p.X * im.inv.X), int(p.Y * im.inv.Y), int(p.Z * im.inv.Z)
}

// LabelAt returns the label at world point p (nearest-voxel lookup).
func (im *Image) LabelAt(p geom.Vec3) Label {
	if p.X < 0 || p.Y < 0 || p.Z < 0 {
		return 0
	}
	i, j, k := im.Voxel(p)
	return im.At(i, j, k)
}

// Inside reports whether world point p lies inside the foreground
// object O (any nonzero label).
func (im *Image) Inside(p geom.Vec3) bool { return im.LabelAt(p) != 0 }

// Bounds returns the world-space bounding box of the image.
func (im *Image) Bounds() (lo, hi geom.Vec3) {
	return geom.Vec3{}, geom.Vec3{
		X: float64(im.NX) * im.Spacing.X,
		Y: float64(im.NY) * im.Spacing.Y,
		Z: float64(im.NZ) * im.Spacing.Z,
	}
}

// MinSpacing returns the smallest voxel spacing component, the natural
// resolution unit for surface marching and the sampling parameter δ.
func (im *Image) MinSpacing() float64 {
	s := im.Spacing.X
	if im.Spacing.Y < s {
		s = im.Spacing.Y
	}
	if im.Spacing.Z < s {
		s = im.Spacing.Z
	}
	return s
}

// IsSurfaceVoxel reports whether voxel (i,j,k) is a surface voxel: a
// foreground voxel with at least one 6-neighbor of a different label
// (including a different tissue or the background). This is the
// paper's definition (Section 3).
func (im *Image) IsSurfaceVoxel(i, j, k int) bool {
	l := im.At(i, j, k)
	if l == 0 {
		return false
	}
	return im.At(i-1, j, k) != l || im.At(i+1, j, k) != l ||
		im.At(i, j-1, k) != l || im.At(i, j+1, k) != l ||
		im.At(i, j, k-1) != l || im.At(i, j, k+1) != l
}

// SurfaceVoxels returns the indices of all surface voxels, flattened
// as the image's linear index. Used to seed the Euclidean distance
// transform.
func (im *Image) SurfaceVoxels() []int {
	var out []int
	for k := 0; k < im.NZ; k++ {
		for j := 0; j < im.NY; j++ {
			for i := 0; i < im.NX; i++ {
				if im.IsSurfaceVoxel(i, j, k) {
					out = append(out, im.index(i, j, k))
				}
			}
		}
	}
	return out
}

// Unindex converts a linear voxel index back to (i,j,k).
func (im *Image) Unindex(idx int) (i, j, k int) {
	i = idx % im.NX
	j = (idx / im.NX) % im.NY
	k = idx / (im.NX * im.NY)
	return
}

// NumVoxels returns the total voxel count.
func (im *Image) NumVoxels() int { return len(im.data) }

// LabelVolumes returns, for each label present, the number of voxels
// carrying it (excluding background).
func (im *Image) LabelVolumes() map[Label]int {
	m := make(map[Label]int)
	for _, l := range im.data {
		if l != 0 {
			m[l]++
		}
	}
	return m
}

// SurfacePoint finds the point where segment p→q crosses a label
// interface, refined by bisection to within tol of the true voxelized
// interface. The segment is first marched in steps of half the minimum
// spacing to bracket the first label change starting from p. ok is
// false when the labels of p and q agree at every sampled position.
func (im *Image) SurfacePoint(p, q geom.Vec3, tol float64) (geom.Vec3, bool) {
	lp := im.LabelAt(p)
	d := q.Sub(p)
	dist := d.Norm()
	if dist == 0 {
		return geom.Vec3{}, false
	}
	step := im.MinSpacing() / 2
	n := int(dist/step) + 1

	// Bracket the first sample with a different label.
	prevT := 0.0
	foundT := -1.0
	for s := 1; s <= n; s++ {
		t := float64(s) / float64(n)
		if im.LabelAt(p.Lerp(q, t)) != lp {
			foundT = t
			break
		}
		prevT = t
	}
	if foundT < 0 {
		return geom.Vec3{}, false
	}

	// Bisect [prevT, foundT] down to tol.
	lo, hi := prevT, foundT
	for hi-lo > tol/dist {
		mid := (lo + hi) / 2
		if im.LabelAt(p.Lerp(q, mid)) != lp {
			hi = mid
		} else {
			lo = mid
		}
	}
	return p.Lerp(q, (lo+hi)/2), true
}
