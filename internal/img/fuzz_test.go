package img

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadNRRD hardens the header parser: arbitrary input must either
// parse into a consistent image or return an error — never panic or
// return an image whose buffers disagree with its header.
func FuzzReadNRRD(f *testing.F) {
	var ok bytes.Buffer
	if err := WriteNRRD(&ok, SpherePhantom(4)); err != nil {
		f.Fatal(err)
	}
	f.Add(ok.Bytes())
	f.Add([]byte("NRRD0004\ntype: uint8\ndimension: 3\nsizes: 2 2 2\nencoding: raw\n\n12345678"))
	f.Add([]byte("NRRD0004\ntype: uint8\ndimension: 3\nsizes: 1000000 1000000 1000000\nencoding: raw\n\n"))
	f.Add([]byte("NRRD0004\n"))
	f.Add([]byte("NRRD0004\ntype: uint8\ndimension: 3\nsizes: -1 2 2\nencoding: raw\n\nxx"))
	f.Add([]byte("NRRD0004\ntype: uint8\ndimension: 3\nsizes: 2 2 2\nspacings: nan 1 1\nencoding: raw\n\n12345678"))
	f.Add([]byte("NRRD0004\ntype: uint8\ndimension: 3\nsizes: 2 2 2\nencoding: gzip\n\nnot-gzip"))
	// Hostile-resource seeds: over-long header line, header flooding,
	// overflow-prone sizes, and a header line with no terminator.
	f.Add([]byte("NRRD0004\n# " + strings.Repeat("A", 1<<16) + "\ntype: uint8\n\n"))
	f.Add([]byte("NRRD0004\n" + strings.Repeat("# x\n", 4096) + "type: uint8\n\n"))
	f.Add([]byte("NRRD0004\ntype: uint8\ndimension: 3\nsizes: 2000000000 2000000000 2000000000\nencoding: raw\n\n"))
	f.Add([]byte("NRRD0004\ntype: uint8\ndimension: 3\nsizes: 2 2 2"))
	f.Add([]byte("NRRD0004\ntype: uint8\ndimension: 3\nsizes: 2 2 2\nspacings: 1 1 inf\nencoding: raw\n\n12345678"))

	f.Fuzz(func(t *testing.T, data []byte) {
		im, err := ReadNRRD(bytes.NewReader(data))
		if err != nil {
			return
		}
		if im.NX <= 0 || im.NY <= 0 || im.NZ <= 0 {
			t.Fatalf("accepted non-positive dims %dx%dx%d", im.NX, im.NY, im.NZ)
		}
		if im.NumVoxels() != im.NX*im.NY*im.NZ {
			t.Fatal("voxel buffer disagrees with header")
		}
		// Accessors must work over the whole advertised range.
		_ = im.At(im.NX-1, im.NY-1, im.NZ-1)
		_ = im.SurfaceVoxels()
	})
}
