package img

import (
	"testing"

	"repro/internal/geom"
)

func TestRemoveIslands(t *testing.T) {
	im := SpherePhantom(32)
	// Plant two artifacts: an isolated foreground voxel in background,
	// and a tiny blob of label 3 inside the sphere.
	im.Set(2, 2, 2, 1)
	center := 16
	im.Set(center, center, center, 3)
	im.Set(center+1, center, center, 3)

	changed := im.RemoveIslands(5)
	if changed != 3 {
		t.Errorf("relabeled %d voxels, want 3", changed)
	}
	if im.At(2, 2, 2) != 0 {
		t.Error("isolated voxel not removed")
	}
	if im.At(center, center, center) != 1 || im.At(center+1, center, center) != 1 {
		t.Error("interior blob not merged into the sphere")
	}
	// The sphere itself (large component) must be untouched.
	if !im.Inside(geom.Vec3{X: 16, Y: 16, Z: 10}) {
		t.Error("main component damaged")
	}
}

func TestRemoveIslandsKeepsLargeComponents(t *testing.T) {
	im := AbdominalPhantom(48, 48, 32)
	before := im.LabelVolumes()
	changed := im.RemoveIslands(4)
	after := im.LabelVolumes()
	// Phantom components are solid; at most stray voxelization slivers
	// may move.
	if changed > im.NumVoxels()/500 {
		t.Errorf("relabeled %d voxels of a clean phantom", changed)
	}
	for l, v := range before {
		if after[l] < v*9/10 {
			t.Errorf("label %d shrank %d -> %d", l, v, after[l])
		}
	}
}

func TestRemoveIslandsImprovesOrKeepsSurfaceCount(t *testing.T) {
	im := SpherePhantom(24)
	im.Set(1, 1, 1, 2)
	before := len(im.SurfaceVoxels())
	im.RemoveIslands(3)
	after := len(im.SurfaceVoxels())
	if after >= before {
		t.Errorf("surface voxels %d -> %d, expected cleanup to reduce", before, after)
	}
}

func TestDownsample(t *testing.T) {
	im := AbdominalPhantom(64, 64, 44)
	half := im.Downsample()
	if half.NX != 32 || half.NY != 32 || half.NZ != 22 {
		t.Fatalf("dims %dx%dx%d", half.NX, half.NY, half.NZ)
	}
	if half.Spacing != (geom.Vec3{X: 2, Y: 2, Z: 2}) {
		t.Fatalf("spacing %v", half.Spacing)
	}
	// World geometry preserved: same label at the same world point for
	// points deep inside structures.
	probes := []geom.Vec3{
		{X: 32, Y: 32, Z: 8},  // body, away from organs
		{X: 23, Y: 29, Z: 24}, // liver center
		{X: 2, Y: 2, Z: 2},    // background
	}
	for _, p := range probes {
		if im.LabelAt(p) != half.LabelAt(p) {
			t.Errorf("label changed at %v: %d -> %d", p, im.LabelAt(p), half.LabelAt(p))
		}
	}
	// All original tissues survive at half resolution.
	if len(half.LabelVolumes()) < len(im.LabelVolumes())-1 {
		t.Errorf("labels lost: %v -> %v", im.LabelVolumes(), half.LabelVolumes())
	}
}

func TestDownsampleOddDims(t *testing.T) {
	im := New(5, 5, 3, geom.Vec3{X: 1, Y: 1, Z: 1})
	im.Set(4, 4, 2, 7)
	half := im.Downsample()
	if half.NX != 3 || half.NY != 3 || half.NZ != 2 {
		t.Fatalf("dims %dx%dx%d", half.NX, half.NY, half.NZ)
	}
	// The lone corner voxel is a 1/8 minority in its block; majority
	// (background) wins.
	if half.At(2, 2, 1) != 0 {
		t.Errorf("minority label won the block")
	}
}

func TestDownsampleMajority(t *testing.T) {
	im := New(2, 2, 2, geom.Vec3{X: 1, Y: 1, Z: 1})
	// 5 voxels of label 2, 3 of label 1.
	vox := [][3]int{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {1, 1, 0}, {0, 0, 1}}
	for _, v := range vox {
		im.Set(v[0], v[1], v[2], 2)
	}
	im.Set(1, 0, 1, 1)
	im.Set(0, 1, 1, 1)
	im.Set(1, 1, 1, 1)
	half := im.Downsample()
	if half.At(0, 0, 0) != 2 {
		t.Errorf("majority label = %d, want 2", half.At(0, 0, 0))
	}
}
