package img

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestNewAndAt(t *testing.T) {
	im := New(4, 5, 6, geom.Vec3{X: 1, Y: 2, Z: 3})
	if im.NumVoxels() != 4*5*6 {
		t.Fatalf("NumVoxels = %d", im.NumVoxels())
	}
	if im.At(1, 2, 3) != 0 {
		t.Error("fresh image not background")
	}
	im.Set(1, 2, 3, 7)
	if im.At(1, 2, 3) != 7 {
		t.Error("Set/At roundtrip failed")
	}
	// Out of range is background.
	if im.At(-1, 0, 0) != 0 || im.At(4, 0, 0) != 0 || im.At(0, 5, 0) != 0 || im.At(0, 0, 6) != 0 {
		t.Error("out-of-range voxels not background")
	}
}

func TestNewPanicsOnBadArgs(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 1, 1, geom.Vec3{X: 1, Y: 1, Z: 1}) },
		func() { New(1, 1, 1, geom.Vec3{X: 0, Y: 1, Z: 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("New accepted invalid arguments")
				}
			}()
			f()
		}()
	}
}

func TestVoxelRoundtrip(t *testing.T) {
	im := New(10, 12, 14, geom.Vec3{X: 0.5, Y: 1.5, Z: 2.0})
	for _, idx := range [][3]int{{0, 0, 0}, {9, 11, 13}, {3, 7, 2}} {
		c := im.VoxelCenter(idx[0], idx[1], idx[2])
		i, j, k := im.Voxel(c)
		if i != idx[0] || j != idx[1] || k != idx[2] {
			t.Errorf("Voxel(VoxelCenter(%v)) = (%d,%d,%d)", idx, i, j, k)
		}
	}
}

func TestUnindexRoundtrip(t *testing.T) {
	im := New(7, 8, 9, geom.Vec3{X: 1, Y: 1, Z: 1})
	for k := 0; k < 9; k++ {
		for j := 0; j < 8; j++ {
			for i := 0; i < 7; i++ {
				ii, jj, kk := im.Unindex(im.index(i, j, k))
				if ii != i || jj != j || kk != k {
					t.Fatalf("Unindex(%d,%d,%d) = (%d,%d,%d)", i, j, k, ii, jj, kk)
				}
			}
		}
	}
}

func TestBounds(t *testing.T) {
	im := New(10, 20, 30, geom.Vec3{X: 1, Y: 0.5, Z: 2})
	lo, hi := im.Bounds()
	if lo != (geom.Vec3{}) {
		t.Errorf("lo = %v", lo)
	}
	if hi != (geom.Vec3{X: 10, Y: 10, Z: 60}) {
		t.Errorf("hi = %v", hi)
	}
	if im.MinSpacing() != 0.5 {
		t.Errorf("MinSpacing = %v", im.MinSpacing())
	}
}

func TestSurfaceVoxels(t *testing.T) {
	// A 1-voxel cube in the middle of a 3x3x3 image: it is entirely
	// surface (its neighbors are background).
	im := New(3, 3, 3, geom.Vec3{X: 1, Y: 1, Z: 1})
	im.Set(1, 1, 1, 1)
	if !im.IsSurfaceVoxel(1, 1, 1) {
		t.Error("isolated voxel should be a surface voxel")
	}
	if im.IsSurfaceVoxel(0, 0, 0) {
		t.Error("background voxel classified as surface")
	}
	sv := im.SurfaceVoxels()
	if len(sv) != 1 {
		t.Errorf("SurfaceVoxels = %d, want 1", len(sv))
	}
}

func TestSurfaceVoxelsSolidCube(t *testing.T) {
	// A 4x4x4 solid block: only its outer shell is surface.
	im := New(8, 8, 8, geom.Vec3{X: 1, Y: 1, Z: 1})
	for k := 2; k < 6; k++ {
		for j := 2; j < 6; j++ {
			for i := 2; i < 6; i++ {
				im.Set(i, j, k, 1)
			}
		}
	}
	want := 4*4*4 - 2*2*2 // all but the 2^3 interior
	if got := len(im.SurfaceVoxels()); got != want {
		t.Errorf("surface voxels = %d, want %d", got, want)
	}
}

func TestMultiLabelInterface(t *testing.T) {
	// Two adjacent tissues: voxels at the interface are surface even
	// though both are foreground.
	im := New(4, 3, 3, geom.Vec3{X: 1, Y: 1, Z: 1})
	for k := 0; k < 3; k++ {
		for j := 0; j < 3; j++ {
			im.Set(1, j, k, 1)
			im.Set(2, j, k, 2)
		}
	}
	if !im.IsSurfaceVoxel(1, 1, 1) || !im.IsSurfaceVoxel(2, 1, 1) {
		t.Error("tissue interface voxels should be surface voxels")
	}
}

func TestLabelAtAndInside(t *testing.T) {
	im := SpherePhantom(32)
	center := geom.Vec3{X: 16, Y: 16, Z: 16}
	if !im.Inside(center) {
		t.Error("sphere center not inside")
	}
	if im.Inside(geom.Vec3{X: 1, Y: 1, Z: 1}) {
		t.Error("image corner inside")
	}
	if im.LabelAt(geom.Vec3{X: -5, Y: 0, Z: 0}) != 0 {
		t.Error("negative coordinates not background")
	}
}

func TestSurfacePointOnSphere(t *testing.T) {
	n := 64
	im := SpherePhantom(n)
	c := geom.Vec3{X: float64(n) / 2, Y: float64(n) / 2, Z: float64(n) / 2}
	r := 0.35 * float64(n)
	// March from the center outward in several directions; the found
	// interface must lie within a voxel of the analytic sphere.
	dirs := []geom.Vec3{
		{X: 1}, {Y: 1}, {Z: 1}, {X: -1}, {Y: -1}, {Z: -1},
		{X: 1, Y: 1, Z: 1}, {X: -1, Y: 2, Z: 0.5},
	}
	for _, d := range dirs {
		q := c.Add(d.Normalize().Scale(float64(n) * 0.49))
		p, ok := im.SurfacePoint(c, q, 1e-3)
		if !ok {
			t.Fatalf("no surface point along %v", d)
		}
		if got := p.Dist(c); math.Abs(got-r) > 1.0 {
			t.Errorf("surface point at radius %v, want %v +- 1 voxel", got, r)
		}
	}
}

func TestSurfacePointNoCrossing(t *testing.T) {
	im := SpherePhantom(32)
	a := geom.Vec3{X: 1, Y: 1, Z: 1}
	b := geom.Vec3{X: 2, Y: 1, Z: 1}
	if _, ok := im.SurfacePoint(a, b, 1e-3); ok {
		t.Error("found a surface point on an all-background segment")
	}
	if _, ok := im.SurfacePoint(a, a, 1e-3); ok {
		t.Error("zero-length segment returned a crossing")
	}
}

func TestSceneMatchesVoxelization(t *testing.T) {
	scene := AbdominalScene(24, 24, 12, geom.Vec3{X: 1, Y: 1, Z: 2})
	im := scene.Voxelize(24, 24, 12, geom.Vec3{X: 1, Y: 1, Z: 2})
	for k := 0; k < 12; k++ {
		for j := 0; j < 24; j++ {
			for i := 0; i < 24; i++ {
				if im.At(i, j, k) != scene.LabelAt(im.VoxelCenter(i, j, k)) {
					t.Fatalf("voxel (%d,%d,%d) disagrees with scene", i, j, k)
				}
			}
		}
	}
}

func TestPhantomsHaveAllTissues(t *testing.T) {
	cases := []struct {
		name   string
		im     *Image
		labels int
	}{
		{"abdominal", AbdominalPhantom(48, 48, 32), 6},
		{"knee", KneePhantom(48, 48, 48), 5},
		{"headneck", HeadNeckPhantom(48, 48, 48), 4},
	}
	for _, c := range cases {
		vols := c.im.LabelVolumes()
		if len(vols) != c.labels {
			t.Errorf("%s: %d labels present, want %d (%v)", c.name, len(vols), c.labels, vols)
		}
		for l, v := range vols {
			if v == 0 {
				t.Errorf("%s: label %d empty", c.name, l)
			}
		}
	}
}

func TestPhantomsDoNotTouchBoundary(t *testing.T) {
	// Closed-2-manifold requirement: no foreground on the image faces.
	ims := map[string]*Image{
		"sphere":    SpherePhantom(32),
		"torus":     TorusPhantom(32),
		"abdominal": AbdominalPhantom(40, 40, 24),
		"knee":      KneePhantom(40, 40, 40),
		"headneck":  HeadNeckPhantom(40, 40, 40),
	}
	for name, im := range ims {
		for k := 0; k < im.NZ; k++ {
			for j := 0; j < im.NY; j++ {
				for i := 0; i < im.NX; i++ {
					onFace := i == 0 || j == 0 || k == 0 || i == im.NX-1 || j == im.NY-1 || k == im.NZ-1
					if onFace && im.At(i, j, k) != 0 {
						t.Fatalf("%s: foreground voxel on image boundary at (%d,%d,%d)", name, i, j, k)
					}
				}
			}
		}
	}
}

func TestPrimitives(t *testing.T) {
	e := Ellipsoid{Center: geom.Vec3{X: 0, Y: 0, Z: 0}, Radii: geom.Vec3{X: 2, Y: 1, Z: 1}}
	if !e.Contains(geom.Vec3{X: 1.9, Y: 0, Z: 0}) || e.Contains(geom.Vec3{X: 0, Y: 1.1, Z: 0}) {
		t.Error("Ellipsoid.Contains wrong")
	}
	c := Capsule{A: geom.Vec3{X: 0, Y: 0, Z: 0}, B: geom.Vec3{X: 10, Y: 0, Z: 0}, Radius: 1}
	if !c.Contains(geom.Vec3{X: 5, Y: 0.9, Z: 0}) || !c.Contains(geom.Vec3{X: -0.9, Y: 0, Z: 0}) {
		t.Error("Capsule.Contains wrong inside")
	}
	if c.Contains(geom.Vec3{X: 5, Y: 1.1, Z: 0}) || c.Contains(geom.Vec3{X: 11.1, Y: 0, Z: 0}) {
		t.Error("Capsule.Contains wrong outside")
	}
	to := Torus{Center: geom.Vec3{}, Axis: geom.Vec3{Z: 1}, R: 3, Rt: 0.5}
	if !to.Contains(geom.Vec3{X: 3, Y: 0, Z: 0.4}) || to.Contains(geom.Vec3{X: 0, Y: 0, Z: 0}) {
		t.Error("Torus.Contains wrong")
	}
}

func TestVesselPhantom(t *testing.T) {
	im := VesselPhantom(48)
	vols := im.LabelVolumes()
	if len(vols) != 2 {
		t.Fatalf("labels = %v", vols)
	}
	if vols[2] == 0 {
		t.Fatal("empty vessel tree")
	}
	// Thin structure: vessels are a small fraction of the tissue.
	if float64(vols[2]) > 0.2*float64(vols[1]) {
		t.Errorf("vessels too fat: %d vs tissue %d", vols[2], vols[1])
	}
	// Nothing on the image boundary.
	for k := 0; k < im.NZ; k++ {
		for j := 0; j < im.NY; j++ {
			for i := 0; i < im.NX; i++ {
				onFace := i == 0 || j == 0 || k == 0 || i == im.NX-1 || j == im.NY-1 || k == im.NZ-1
				if onFace && im.At(i, j, k) != 0 {
					t.Fatalf("foreground on boundary at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}
