package fem

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/img"
	"repro/internal/meshio"
	"repro/internal/smooth"
)

// unitTetraMesh is the reference single-element mesh.
func unitTetraMesh() *meshio.RawMesh {
	return &meshio.RawMesh{
		Verts: []geom.Vec3{
			{X: 0, Y: 0, Z: 0}, {X: 1, Y: 0, Z: 0}, {X: 0, Y: 1, Z: 0}, {X: 0, Y: 0, Z: 1},
		},
		Cells: [][4]int32{{0, 1, 2, 3}},
	}
}

func TestP1GradientsPartitionOfUnity(t *testing.T) {
	p := [4]geom.Vec3{
		{X: 0.3, Y: 0.1, Z: 0.2}, {X: 1.1, Y: 0.2, Z: 0}, {X: 0.2, Y: 1.4, Z: 0.1}, {X: 0, Y: 0.3, Z: 1.2},
	}
	vol := geom.TetraVolume(p[0], p[1], p[2], p[3])
	if vol <= 0 {
		p[0], p[1] = p[1], p[0]
		vol = geom.TetraVolume(p[0], p[1], p[2], p[3])
	}
	g := p1Gradients(p, vol)
	// Basis gradients sum to zero.
	sum := g[0].Add(g[1]).Add(g[2]).Add(g[3])
	if sum.Norm() > 1e-12 {
		t.Fatalf("gradients do not sum to zero: %v", sum)
	}
	// grad_i . (p_j - p_i) reproduces the linear basis: N_i(p_j) = δ_ij.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			v := g[i].Dot(p[j].Sub(p[i]))
			want := 0.0
			if i != j {
				want = -0.0
			}
			_ = want
			if i == j && math.Abs(v) > 1e-12 {
				t.Fatalf("grad_%d at own vertex = %v", i, v)
			}
		}
		// N_i is 1 at p_i and 0 at the others: check via affine form.
		for j := 0; j < 4; j++ {
			ni := 0.0
			if i == j {
				ni = 1.0
			}
			// N_i(x) = N_i(p_i) + grad.(x - p_i) = 1 + grad.(p_j - p_i)
			got := 1 + g[i].Dot(p[j].Sub(p[i]))
			if math.Abs(got-ni) > 1e-9 {
				t.Fatalf("N_%d(p_%d) = %v, want %v", i, j, got, ni)
			}
		}
	}
}

func TestSingleElementLaplace(t *testing.T) {
	// u = x is harmonic; constrain all four vertices to x and solve —
	// the system is fully constrained (error expected) unless one
	// vertex is free. Free vertex 0: solution must reproduce u(0)=0.
	m := unitTetraMesh()
	p := &Problem{
		Mesh: m,
		Dirichlet: map[int32]float64{
			1: 1, 2: 0, 3: 0,
		},
	}
	sys, err := Assemble(p)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := sys.Solve(1e-12, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Exact P1 solution on one element with u = x on 3 vertices: the
	// free vertex value minimizes energy; for the unit tetra the
	// minimizer of |∇u|² with u(1,0,0)=1, others 0 gives u0 = 1/3.
	if math.Abs(sol.U[0]-1.0/3.0) > 1e-9 {
		t.Fatalf("u0 = %v, want 1/3", sol.U[0])
	}
}

func TestFullyConstrainedRejected(t *testing.T) {
	m := unitTetraMesh()
	p := &Problem{Mesh: m, Dirichlet: map[int32]float64{0: 0, 1: 0, 2: 0, 3: 0}}
	if _, err := Assemble(p); err == nil {
		t.Fatal("fully constrained system accepted")
	}
}

func TestEmptyMeshRejected(t *testing.T) {
	if _, err := Assemble(&Problem{Mesh: &meshio.RawMesh{}}); err == nil {
		t.Fatal("empty mesh accepted")
	}
}

// meshedSphere returns a PI2M sphere mesh extracted to RawMesh form,
// with its boundary vertex set.
func meshedSphere(t *testing.T, n int) (*meshio.RawMesh, []bool) {
	t.Helper()
	im := img.SpherePhantom(n)
	res, err := core.Run(core.Config{Image: im, Workers: 2, LivelockTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	s := smooth.Extract(res.Mesh, res.Final, im)
	raw := &meshio.RawMesh{Verts: s.Verts, Cells: s.Cells}
	boundary := make([]bool, len(s.Verts))
	for _, tr := range s.BoundaryTris {
		for _, v := range tr {
			boundary[v] = true
		}
	}
	return raw, boundary
}

// TestHarmonicReproduction is the classic patch test: with boundary
// values from the harmonic function u = z, the P1 solution on ANY mesh
// reproduces u = z exactly (linear fields are in the FE space), so the
// interior error is solver tolerance only. This exercises assembly,
// constraint elimination and CG end-to-end on a real PI2M mesh.
func TestHarmonicReproduction(t *testing.T) {
	raw, boundary := meshedSphere(t, 32)
	dir := map[int32]float64{}
	for v, b := range boundary {
		if b {
			dir[int32(v)] = raw.Verts[v].Z
		}
	}
	sys, err := Assemble(&Problem{Mesh: raw, Dirichlet: dir})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := sys.Solve(1e-10, 20*sys.N)
	if err != nil {
		t.Fatalf("solve: %v (iters=%d res=%g)", err, sol0iters(sol), sol0res(sol))
	}
	worst := 0.0
	for v := range raw.Verts {
		if e := math.Abs(sol.U[v] - raw.Verts[v].Z); e > worst {
			worst = e
		}
	}
	if worst > 1e-6 {
		t.Fatalf("linear patch test failed: max error %g", worst)
	}
	t.Logf("n=%d unknowns, %d CG iterations, max error %.2g", sys.N, sol.Iterations, worst)
}

func sol0iters(s *Solution) int {
	if s == nil {
		return -1
	}
	return s.Iterations
}

func sol0res(s *Solution) float64 {
	if s == nil {
		return math.NaN()
	}
	return s.Residual
}

// TestSourceProblem solves -Δu = 1 with u = 0 on the sphere boundary:
// the exact solution is (R² - r²)/6, maximal at the center. Checks the
// discrete maximum sits near the center with the right magnitude.
func TestSourceProblem(t *testing.T) {
	raw, boundary := meshedSphere(t, 48)
	dir := map[int32]float64{}
	for v, b := range boundary {
		if b {
			dir[int32(v)] = 0
		}
	}
	sys, err := Assemble(&Problem{
		Mesh:      raw,
		Dirichlet: dir,
		Source:    func(geom.Vec3) float64 { return 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := sys.Solve(1e-9, 20*sys.N)
	if err != nil {
		t.Fatal(err)
	}
	// Analytic: u(r) = (R^2 - r^2)/6 with R the sphere radius (0.35*48)
	// around the center (24,24,24).
	R := 0.35 * 48.0
	center := geom.Vec3{X: 24, Y: 24, Z: 24}
	wantMax := R * R / 6
	var gotMax float64
	worstRel := 0.0
	for v, p := range raw.Verts {
		u := sol.U[v]
		if u > gotMax {
			gotMax = u
		}
		r := p.Dist(center)
		if r < R*0.9 { // skip the voxelized boundary band
			want := (R*R - r*r) / 6
			if want > wantMax/4 {
				rel := math.Abs(u-want) / wantMax
				if rel > worstRel {
					worstRel = rel
				}
			}
		}
	}
	if math.Abs(gotMax-wantMax)/wantMax > 0.15 {
		t.Errorf("max u = %.3f, analytic %.3f", gotMax, wantMax)
	}
	if worstRel > 0.15 {
		t.Errorf("interior relative error %.3f", worstRel)
	}
	t.Logf("max u %.3f vs analytic %.3f, %d CG iterations", gotMax, wantMax, sol.Iterations)
}

func TestCSRBasics(t *testing.T) {
	b := newCSRBuilder(3)
	b.add(0, 0, 2)
	b.add(0, 1, -1)
	b.add(0, 1, 0.5) // duplicate merges
	b.add(1, 1, 2)
	b.add(2, 2, 1)
	m := b.build()
	if m.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4", m.NNZ())
	}
	x := []float64{1, 2, 3}
	y := make([]float64, 3)
	m.MulVec(x, y)
	if y[0] != 2*1+(-0.5)*2 || y[1] != 4 || y[2] != 3 {
		t.Fatalf("MulVec = %v", y)
	}
	d := m.Diag()
	if d[0] != 2 || d[1] != 2 || d[2] != 1 {
		t.Fatalf("Diag = %v", d)
	}
}

func TestCGSolvesSPD(t *testing.T) {
	// Small SPD system: tridiagonal Laplacian.
	n := 50
	b := newCSRBuilder(n)
	for i := 0; i < n; i++ {
		b.add(i, i, 2)
		if i > 0 {
			b.add(i, i-1, -1)
		}
		if i < n-1 {
			b.add(i, i+1, -1)
		}
	}
	m := b.build()
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1
	}
	x := make([]float64, n)
	iters, res, err := m.cgJacobi(context.Background(), x, rhs, 1e-12, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-10 {
		t.Fatalf("residual %g after %d iters", res, iters)
	}
	// Verify A x = b.
	y := make([]float64, n)
	m.MulVec(x, y)
	for i := range y {
		if math.Abs(y[i]-rhs[i]) > 1e-8 {
			t.Fatalf("A x != b at %d", i)
		}
	}
}

func TestCGRejectsNonSPD(t *testing.T) {
	b := newCSRBuilder(2)
	b.add(0, 0, -1)
	b.add(1, 1, 1)
	m := b.build()
	x := make([]float64, 2)
	if _, _, err := m.cgJacobi(context.Background(), x, []float64{1, 1}, 1e-10, 10, nil); err == nil {
		t.Fatal("negative diagonal accepted")
	}
}

// TestParallelAssemblyMatchesSequential compares the parallel and
// sequential assemblies as operators (matrix-vector products on random
// vectors) and as solvers.
func TestParallelAssemblyMatchesSequential(t *testing.T) {
	raw, boundary := meshedSphere(t, 32)
	dir := map[int32]float64{}
	for v, b := range boundary {
		if b {
			dir[int32(v)] = raw.Verts[v].Z
		}
	}
	src := func(p geom.Vec3) float64 { return p.X - p.Y }
	prob := &Problem{Mesh: raw, Dirichlet: dir, Source: src}

	seq, err := Assemble(prob)
	if err != nil {
		t.Fatal(err)
	}
	par, err := AssembleParallel(prob, 4)
	if err != nil {
		t.Fatal(err)
	}
	if seq.N != par.N || seq.K.NNZ() != par.K.NNZ() {
		t.Fatalf("shape mismatch: N %d/%d NNZ %d/%d", seq.N, par.N, seq.K.NNZ(), par.K.NNZ())
	}
	for i := range seq.B {
		if math.Abs(seq.B[i]-par.B[i]) > 1e-9*(1+math.Abs(seq.B[i])) {
			t.Fatalf("load vector differs at %d: %v vs %v", i, seq.B[i], par.B[i])
		}
	}
	// Operator comparison on a few vectors.
	x := make([]float64, seq.N)
	y1 := make([]float64, seq.N)
	y2 := make([]float64, seq.N)
	for trial := 0; trial < 5; trial++ {
		for i := range x {
			x[i] = math.Sin(float64(i*(trial+1)) * 0.7)
		}
		seq.K.MulVec(x, y1)
		par.K.MulVec(x, y2)
		for i := range y1 {
			if math.Abs(y1[i]-y2[i]) > 1e-9*(1+math.Abs(y1[i])) {
				t.Fatalf("operator differs at row %d: %v vs %v", i, y1[i], y2[i])
			}
		}
	}
}

func TestParallelAssemblySmallMeshFallsBack(t *testing.T) {
	m := unitTetraMesh()
	p := &Problem{Mesh: m, Dirichlet: map[int32]float64{1: 1, 2: 0, 3: 0}}
	sys, err := AssembleParallel(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := sys.Solve(1e-12, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.U[0]-1.0/3.0) > 1e-9 {
		t.Fatalf("u0 = %v", sol.U[0])
	}
}

// TestHConvergence ties the meshing and solving halves together: for
// the Poisson ball problem (-Δu = 1, u = 0 on ∂O, exact solution
// (R²-r²)/6), refining δ must reduce the discrete solution's interior
// error — the reason FE practitioners want the paper's δ control.
func TestHConvergence(t *testing.T) {
	im := img.SpherePhantom(64)
	R := 0.35 * 64.0
	center := geom.Vec3{X: 32, Y: 32, Z: 32}

	errAt := func(delta float64) float64 {
		res, err := core.Run(core.Config{
			Image: im, Workers: 2, Delta: delta, LivelockTimeout: time.Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
		s := smooth.Extract(res.Mesh, res.Final, im)
		raw := &meshio.RawMesh{Verts: s.Verts, Cells: s.Cells}
		dir := map[int32]float64{}
		for _, tr := range s.BoundaryTris {
			for _, v := range tr {
				dir[v] = 0
			}
		}
		sys, err := Assemble(&Problem{
			Mesh: raw, Dirichlet: dir,
			Source: func(geom.Vec3) float64 { return 1 },
		})
		if err != nil {
			t.Fatal(err)
		}
		sol, err := sys.Solve(1e-9, 50*sys.N)
		if err != nil {
			t.Fatal(err)
		}
		// RMS error over deep-interior vertices (the boundary band is
		// dominated by voxelization, not discretization).
		var sum float64
		n := 0
		for v, p := range raw.Verts {
			r := p.Dist(center)
			if r < 0.7*R {
				want := (R*R - r*r) / 6
				d := sol.U[v] - want
				sum += d * d
				n++
			}
		}
		if n == 0 {
			t.Fatal("no interior vertices")
		}
		return math.Sqrt(sum / float64(n))
	}

	coarse := errAt(8)
	fine := errAt(3)
	t.Logf("RMS interior error: δ=8 -> %.3f, δ=3 -> %.3f", coarse, fine)
	if fine >= coarse {
		t.Errorf("refinement did not reduce FE error: %.4f -> %.4f", coarse, fine)
	}
}
