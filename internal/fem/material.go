package fem

import (
	"fmt"
	"math"

	"repro/internal/meshio"
)

// ConductivityFromLabels maps a mesh's per-cell tissue labels to the
// per-cell conductivity vector Problem.Conductivity expects: cells
// whose label has an entry in byLabel get that value, everything else
// gets def. This is the bridge from an image-to-mesh snapshot (whose
// cells carry the tissue label at their circumcenter) to a
// multi-tissue simulation — the patient-specific workload the source
// paper meshes for.
//
// Every conductivity must be positive and finite: a zero or negative
// k produces a stiffness matrix that is not positive definite, which
// CG cannot solve (and a server must reject before assembling).
func ConductivityFromLabels(m *meshio.RawMesh, byLabel map[int]float64, def float64) ([]float64, error) {
	if def == 0 {
		def = 1
	}
	if err := checkConductivity("default", def); err != nil {
		return nil, err
	}
	for l, k := range byLabel {
		if err := checkConductivity(fmt.Sprintf("label %d", l), k); err != nil {
			return nil, err
		}
	}
	if len(byLabel) == 0 && def == 1 {
		return nil, nil // homogeneous unit conductivity: Assemble's nil fast path
	}
	out := make([]float64, len(m.Cells))
	if len(m.Labels) == len(m.Cells) {
		for i, l := range m.Labels {
			if k, ok := byLabel[l]; ok {
				out[i] = k
			} else {
				out[i] = def
			}
		}
	} else {
		for i := range out {
			out[i] = def
		}
	}
	return out, nil
}

func checkConductivity(what string, k float64) error {
	if k <= 0 || math.IsNaN(k) || math.IsInf(k, 0) {
		return fmt.Errorf("fem: conductivity for %s is %g (want a positive finite number)", what, k)
	}
	return nil
}
