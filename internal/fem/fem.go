// Package fem provides the finite-element substrate the paper's
// meshes exist for: Image-to-Mesh conversion feeds patient-specific FE
// simulation (Section 1), and "the robustness and accuracy of the
// solver rely on the quality of the mesh [3-5]". The package
// implements linear (P1) tetrahedral finite elements for the Poisson
// equation -Δu = f with Dirichlet boundary conditions, assembled into
// a sparse system and solved by (Jacobi-preconditioned) conjugate
// gradients — enough to run a heat-conduction or potential problem on
// a PI2M output mesh and to measure how element quality affects solver
// behavior.
package fem

import (
	"context"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/meshio"
)

// Problem is a Poisson problem on a tetrahedral mesh: -∇·(k∇u) = f in
// the volume, u = g on the constrained vertices.
type Problem struct {
	Mesh *meshio.RawMesh

	// Conductivity per cell (nil = 1 everywhere). Multi-tissue
	// simulations assign per-label conductivities.
	Conductivity []float64

	// Source is f evaluated at vertices (nil = 0).
	Source func(geom.Vec3) float64

	// Dirichlet marks constrained vertices and their values.
	Dirichlet map[int32]float64
}

// System is an assembled linear system K u = b with Dirichlet
// constraints eliminated symmetrically.
type System struct {
	N   int // unknowns (free vertices)
	K   *CSR
	B   []float64
	ids []int32 // free index -> vertex id
	inv []int32 // vertex id -> free index (-1 if constrained)
	u0  []float64
}

// Assemble builds the stiffness matrix and load vector.
func Assemble(p *Problem) (*System, error) {
	m := p.Mesh
	if len(m.Cells) == 0 {
		return nil, fmt.Errorf("fem: empty mesh")
	}
	nv := len(m.Verts)

	inv := make([]int32, nv)
	var ids []int32
	for v := 0; v < nv; v++ {
		if _, fixed := p.Dirichlet[int32(v)]; fixed {
			inv[v] = -1
		} else {
			inv[v] = int32(len(ids))
			ids = append(ids, int32(v))
		}
	}
	n := len(ids)
	if n == 0 {
		return nil, fmt.Errorf("fem: every vertex is constrained")
	}

	// Element-by-element assembly into a triplet builder.
	b := make([]float64, n)
	builder := newCSRBuilder(n)

	for ci, cell := range m.Cells {
		var pos [4]geom.Vec3
		for i, v := range cell {
			pos[i] = m.Verts[v]
		}
		vol := geom.TetraVolume(pos[0], pos[1], pos[2], pos[3])
		if vol <= 0 {
			return nil, fmt.Errorf("fem: cell %d has non-positive volume %g", ci, vol)
		}
		k := 1.0
		if p.Conductivity != nil {
			k = p.Conductivity[ci]
		}

		grads := p1Gradients(pos, vol)
		// Local stiffness: K_ij = k * vol * grad_i . grad_j.
		for i := 0; i < 4; i++ {
			vi := cell[i]
			fi := inv[vi]
			// Load: f integrated with one-point quadrature, lumped.
			if fi >= 0 && p.Source != nil {
				centroid := pos[0].Add(pos[1]).Add(pos[2]).Add(pos[3]).Scale(0.25)
				b[fi] += p.Source(centroid) * vol / 4
			}
			for j := 0; j < 4; j++ {
				vj := cell[j]
				kij := k * vol * grads[i].Dot(grads[j])
				switch {
				case fi >= 0 && inv[vj] >= 0:
					builder.add(int(fi), int(inv[vj]), kij)
				case fi >= 0:
					// Constrained column: move to the RHS.
					b[fi] -= kij * p.Dirichlet[vj]
				}
			}
		}
	}

	u0 := make([]float64, nv)
	for v, g := range p.Dirichlet {
		u0[v] = g
	}
	return &System{N: n, K: builder.build(), B: b, ids: ids, inv: inv, u0: u0}, nil
}

// p1Gradients returns the constant gradients of the four linear basis
// functions on the tetrahedron.
func p1Gradients(p [4]geom.Vec3, vol float64) [4]geom.Vec3 {
	// grad_i = (opposite face normal, inward) / (3 * vol) — computed
	// from the standard formula grad_i = N_i / (6 vol) with N_i the
	// area vector of the face opposite i pointing toward vertex i.
	var g [4]geom.Vec3
	idx := [4][3]int{{1, 2, 3}, {0, 3, 2}, {0, 1, 3}, {0, 2, 1}}
	for i := 0; i < 4; i++ {
		a, b, c := p[idx[i][0]], p[idx[i][1]], p[idx[i][2]]
		n := b.Sub(a).Cross(c.Sub(a)) // area vector, |n| = 2*area
		// Orient toward vertex i.
		if n.Dot(p[i].Sub(a)) < 0 {
			n = n.Scale(-1)
		}
		g[i] = n.Scale(1 / (6 * vol))
	}
	return g
}

// Solution holds the solved field and solver diagnostics.
type Solution struct {
	U          []float64 // per original vertex (Dirichlet values included)
	Iterations int
	Residual   float64
}

// Solve runs preconditioned CG to the given relative tolerance.
func (s *System) Solve(tol float64, maxIter int) (*Solution, error) {
	return s.SolveCtx(context.Background(), SolveOptions{Tol: tol, MaxIter: maxIter})
}

// SolveOptions parameterizes SolveCtx.
type SolveOptions struct {
	// Tol is the relative residual target (default 1e-8).
	Tol float64
	// MaxIter caps CG iterations (default 10 × unknowns).
	MaxIter int
	// Progress, when non-nil, is called periodically from the solving
	// goroutine with the iteration count and current relative residual
	// — the hook a serving layer's supervision uses as a liveness
	// signal. It must be fast; it runs on the solve's critical path.
	Progress func(iter int, relResidual float64)
}

// SolveCtx runs preconditioned CG under a context: cancellation (or
// deadline expiry) is observed every few iterations and surfaces as an
// error wrapping ctx.Err(), so a server can bound a hostile or
// runaway solve without abandoning the goroutine. A canceled solve
// returns no Solution — the partial iterate is not a usable field.
func (s *System) SolveCtx(ctx context.Context, opt SolveOptions) (*Solution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// An already-dead context never starts iterating: CG only observes
	// ctx every few iterations, and a small system can converge before
	// the first check — a canceled caller must not receive a field.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("fem: solve not started: %w", err)
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-8
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 10 * s.N
	}
	x := make([]float64, s.N)
	iters, res, err := s.K.cgJacobi(ctx, x, s.B, opt.Tol, opt.MaxIter, opt.Progress)
	if err != nil {
		return nil, err
	}
	u := append([]float64(nil), s.u0...)
	for fi, v := range s.ids {
		u[v] = x[fi]
	}
	return &Solution{U: u, Iterations: iters, Residual: res}, nil
}

// EnergyNorm returns sqrt(u^T K u) over the free unknowns of a field
// given per original vertex — a scalar to compare discretizations.
func (s *System) EnergyNorm(u []float64) float64 {
	x := make([]float64, s.N)
	for fi, v := range s.ids {
		x[fi] = u[v]
	}
	y := make([]float64, s.N)
	s.K.MulVec(x, y)
	var e float64
	for i := range x {
		e += x[i] * y[i]
	}
	return math.Sqrt(math.Abs(e))
}
