package fem

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestFieldSingleTetra(t *testing.T) {
	m := unitTetraMesh()
	// Linear field u = x + 2y + 3z at the vertices.
	u := []float64{0, 1, 2, 3}
	f := NewField(m, u)

	// Exact at vertices.
	for v, p := range m.Verts {
		got, ok := f.At(p)
		if !ok {
			t.Fatalf("vertex %d not located", v)
		}
		if math.Abs(got-u[v]) > 1e-12 {
			t.Fatalf("At(vertex %d) = %v, want %v", v, got, u[v])
		}
	}
	// Barycentric interpolation at the centroid: mean of the values.
	centroid := geom.Vec3{X: 0.25, Y: 0.25, Z: 0.25}
	got, ok := f.At(centroid)
	if !ok || math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("At(centroid) = %v (%v), want 1.5", got, ok)
	}
	// Outside.
	if _, ok := f.At(geom.Vec3{X: 2, Y: 2, Z: 2}); ok {
		t.Fatal("point outside the mesh located")
	}
}

func TestFieldLinearReproduction(t *testing.T) {
	// On a real mesh, a linear nodal field must interpolate exactly
	// (P1 elements reproduce linears).
	raw, _ := meshedSphere(t, 32)
	u := make([]float64, len(raw.Verts))
	lin := func(p geom.Vec3) float64 { return 2*p.X - p.Y + 0.5*p.Z + 7 }
	for v, p := range raw.Verts {
		u[v] = lin(p)
	}
	f := NewField(raw, u)
	hits := 0
	for i := 0; i < 500; i++ {
		// Points near the sphere center are inside the mesh.
		p := geom.Vec3{
			X: 12 + 8*float64(i%10)/10,
			Y: 12 + 8*float64((i/10)%10)/10,
			Z: 12 + 8*float64(i/100)/10,
		}
		got, ok := f.At(p)
		if !ok {
			continue
		}
		hits++
		if math.Abs(got-lin(p)) > 1e-9 {
			t.Fatalf("linear field not reproduced at %v: %v vs %v", p, got, lin(p))
		}
	}
	if hits < 100 {
		t.Fatalf("only %d interior probes located", hits)
	}
}

func TestFieldSample(t *testing.T) {
	m := unitTetraMesh()
	f := NewField(m, []float64{0, 1, 0, 0}) // u = x
	vals := f.Sample(geom.Vec3{X: 0.05, Y: 0.05, Z: 0.05}, geom.Vec3{X: 0.6, Y: 0.05, Z: 0.05}, 10)
	if len(vals) != 11 {
		t.Fatalf("len = %d", len(vals))
	}
	for i, v := range vals {
		x := 0.05 + (0.6-0.05)*float64(i)/10
		if math.IsNaN(v) {
			t.Fatalf("sample %d NaN", i)
		}
		if math.Abs(v-x) > 1e-12 {
			t.Fatalf("sample %d = %v, want %v", i, v, x)
		}
	}
	// Line exiting the mesh yields NaN tail.
	vals = f.Sample(geom.Vec3{X: 0.05, Y: 0.05, Z: 0.05}, geom.Vec3{X: 3, Y: 0.05, Z: 0.05}, 10)
	if !math.IsNaN(vals[10]) {
		t.Fatal("outside sample not NaN")
	}
}

func TestGradientLinearField(t *testing.T) {
	raw, _ := meshedSphere(t, 24)
	u := make([]float64, len(raw.Verts))
	for v, p := range raw.Verts {
		u[v] = 3*p.X - 2*p.Y + p.Z
	}
	f := NewField(raw, u)
	want := geom.Vec3{X: 3, Y: -2, Z: 1}
	hits := 0
	for i := 0; i < 200; i++ {
		p := geom.Vec3{
			X: 9 + 6*float64(i%10)/10,
			Y: 9 + 6*float64((i/10)%10)/10,
			Z: 9 + 6*float64(i/100)/10,
		}
		g, ok := f.GradientAt(p)
		if !ok {
			continue
		}
		hits++
		if g.Sub(want).Norm() > 1e-9 {
			t.Fatalf("gradient at %v = %v, want %v", p, g, want)
		}
	}
	if hits < 20 {
		t.Fatalf("only %d probes hit the mesh", hits)
	}
}
