package fem

import (
	"context"
	"fmt"
	"math"
	"sort"
)

// CSR is a compressed-sparse-row symmetric matrix.
type CSR struct {
	RowPtr []int
	Col    []int32
	Val    []float64
	n      int
}

// N returns the dimension.
func (m *CSR) N() int { return m.n }

// NNZ returns the stored nonzero count.
func (m *CSR) NNZ() int { return len(m.Val) }

// MulVec computes y = A x.
func (m *CSR) MulVec(x, y []float64) {
	for i := 0; i < m.n; i++ {
		var s float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.Col[k]]
		}
		y[i] = s
	}
}

// Diag extracts the diagonal.
func (m *CSR) Diag() []float64 {
	d := make([]float64, m.n)
	for i := 0; i < m.n; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if int(m.Col[k]) == i {
				d[i] = m.Val[k]
			}
		}
	}
	return d
}

// cgCheckEvery is how many CG iterations run between context checks
// and progress reports: cheap enough to be negligible against the two
// SpMVs per iteration, frequent enough that cancellation lands within
// milliseconds on any realistic system.
const cgCheckEvery = 16

// cgJacobi runs Jacobi-preconditioned conjugate gradients on A x = b,
// overwriting x. Returns iterations and the final relative residual.
// ctx is checked every cgCheckEvery iterations — a canceled solve
// returns ctx's error (wrapped, so errors.Is sees context.Canceled /
// DeadlineExceeded) with x holding the best iterate so far. progress,
// when non-nil, is called on the same cadence with the iteration count
// and current relative residual.
func (m *CSR) cgJacobi(ctx context.Context, x, b []float64, tol float64, maxIter int, progress func(iter int, rel float64)) (int, float64, error) {
	n := m.n
	d := m.Diag()
	for i, v := range d {
		if v <= 0 {
			return 0, 0, fmt.Errorf("fem: non-positive diagonal at %d (%g): matrix not SPD", i, v)
		}
		d[i] = 1 / v
	}

	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	m.MulVec(x, r)
	var bnorm float64
	for i := range r {
		r[i] = b[i] - r[i]
		bnorm += b[i] * b[i]
	}
	bnorm = math.Sqrt(bnorm)
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return 0, 0, nil
	}

	var rz float64
	for i := range r {
		z[i] = d[i] * r[i]
		p[i] = z[i]
		rz += r[i] * z[i]
	}

	for it := 1; it <= maxIter; it++ {
		if it%cgCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				var rnorm float64
				for i := range r {
					rnorm += r[i] * r[i]
				}
				return it, math.Sqrt(rnorm) / bnorm, fmt.Errorf("fem: solve interrupted after %d iterations: %w", it, err)
			}
			if progress != nil {
				var rnorm float64
				for i := range r {
					rnorm += r[i] * r[i]
				}
				progress(it, math.Sqrt(rnorm)/bnorm)
			}
		}
		m.MulVec(p, ap)
		var pap float64
		for i := range p {
			pap += p[i] * ap[i]
		}
		if pap <= 0 {
			return it, math.Inf(1), fmt.Errorf("fem: CG breakdown (p^T A p = %g)", pap)
		}
		alpha := rz / pap
		var rnorm float64
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
			rnorm += r[i] * r[i]
		}
		rnorm = math.Sqrt(rnorm)
		if rnorm <= tol*bnorm {
			return it, rnorm / bnorm, nil
		}
		var rzNew float64
		for i := range r {
			z[i] = d[i] * r[i]
			rzNew += r[i] * z[i]
		}
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	var rnorm float64
	for i := range r {
		rnorm += r[i] * r[i]
	}
	return maxIter, math.Sqrt(rnorm) / bnorm, fmt.Errorf("fem: CG did not converge in %d iterations", maxIter)
}

// csrBuilder accumulates triplets and compresses duplicates.
type csrBuilder struct {
	n    int
	rows [][]entry
}

type entry struct {
	col int32
	val float64
}

func newCSRBuilder(n int) *csrBuilder {
	return &csrBuilder{n: n, rows: make([][]entry, n)}
}

func (b *csrBuilder) add(i, j int, v float64) {
	b.rows[i] = append(b.rows[i], entry{col: int32(j), val: v})
}

func (b *csrBuilder) build() *CSR {
	m := &CSR{n: b.n, RowPtr: make([]int, b.n+1)}
	for i, row := range b.rows {
		sort.Slice(row, func(a, c int) bool { return row[a].col < row[c].col })
		for k := 0; k < len(row); {
			j := row[k].col
			var s float64
			for ; k < len(row) && row[k].col == j; k++ {
				s += row[k].val
			}
			m.Col = append(m.Col, j)
			m.Val = append(m.Val, s)
		}
		m.RowPtr[i+1] = len(m.Col)
	}
	return m
}
