package fem

import (
	"math"

	"repro/internal/geom"
	"repro/internal/meshio"
)

// Field is a solved scalar field over a mesh, evaluable at arbitrary
// points by barycentric interpolation — probing a simulation result
// along a line, at a sensor location, or onto a voxel grid.
type Field struct {
	mesh *meshio.RawMesh
	u    []float64

	// Uniform grid over cell bounding boxes for point-in-cell search.
	lo, hi     geom.Vec3
	inv        float64
	nx, ny, nz int
	buckets    [][]int32
}

// NewField indexes the mesh for evaluation. u is per-vertex (as
// produced by System.Solve).
func NewField(mesh *meshio.RawMesh, u []float64) *Field {
	f := &Field{mesh: mesh, u: u}
	f.lo = mesh.Verts[0]
	f.hi = mesh.Verts[0]
	for _, p := range mesh.Verts {
		f.lo = f.lo.Min(p)
		f.hi = f.hi.Max(p)
	}
	span := f.hi.Sub(f.lo)
	vol := span.X * span.Y * span.Z
	cell := math.Cbrt(vol / (float64(len(mesh.Cells)) + 1))
	if cell <= 0 || math.IsNaN(cell) {
		cell = 1
	}
	f.inv = 1 / cell
	f.nx = int(span.X*f.inv) + 1
	f.ny = int(span.Y*f.inv) + 1
	f.nz = int(span.Z*f.inv) + 1
	f.buckets = make([][]int32, f.nx*f.ny*f.nz)

	for ci, c := range mesh.Cells {
		blo := mesh.Verts[c[0]]
		bhi := blo
		for _, v := range c[1:] {
			blo = blo.Min(mesh.Verts[v])
			bhi = bhi.Max(mesh.Verts[v])
		}
		i0, j0, k0 := f.cellOf(blo)
		i1, j1, k1 := f.cellOf(bhi)
		for k := k0; k <= k1; k++ {
			for j := j0; j <= j1; j++ {
				for i := i0; i <= i1; i++ {
					idx := (k*f.ny+j)*f.nx + i
					f.buckets[idx] = append(f.buckets[idx], int32(ci))
				}
			}
		}
	}
	return f
}

func clampi(v, n int) int {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}

func (f *Field) cellOf(p geom.Vec3) (int, int, int) {
	d := p.Sub(f.lo)
	return clampi(int(d.X*f.inv), f.nx), clampi(int(d.Y*f.inv), f.ny), clampi(int(d.Z*f.inv), f.nz)
}

// barycentric returns the barycentric coordinates of p in cell ci and
// whether p lies inside (within tol).
func (f *Field) barycentric(ci int32, p geom.Vec3) ([4]float64, bool) {
	c := f.mesh.Cells[ci]
	a := f.mesh.Verts[c[0]]
	b := f.mesh.Verts[c[1]]
	cc := f.mesh.Verts[c[2]]
	d := f.mesh.Verts[c[3]]
	vol := geom.TetraVolume(a, b, cc, d)
	if vol == 0 {
		return [4]float64{}, false
	}
	w := [4]float64{
		geom.TetraVolume(p, b, cc, d) / vol,
		geom.TetraVolume(a, p, cc, d) / vol,
		geom.TetraVolume(a, b, p, d) / vol,
		geom.TetraVolume(a, b, cc, p) / vol,
	}
	const tol = -1e-9
	for _, x := range w {
		if x < tol {
			return w, false
		}
	}
	return w, true
}

// At evaluates the field at p. ok is false when p lies outside the
// mesh.
func (f *Field) At(p geom.Vec3) (float64, bool) {
	i, j, k := f.cellOf(p)
	for _, ci := range f.buckets[(k*f.ny+j)*f.nx+i] {
		if w, in := f.barycentric(ci, p); in {
			c := f.mesh.Cells[ci]
			return w[0]*f.u[c[0]] + w[1]*f.u[c[1]] + w[2]*f.u[c[2]] + w[3]*f.u[c[3]], true
		}
	}
	return 0, false
}

// Sample evaluates the field at n+1 evenly spaced points from a to b;
// points outside the mesh yield NaN.
func (f *Field) Sample(a, b geom.Vec3, n int) []float64 {
	out := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		p := a.Lerp(b, float64(i)/float64(n))
		if v, ok := f.At(p); ok {
			out[i] = v
		} else {
			out[i] = math.NaN()
		}
	}
	return out
}

// GradientAt returns the (piecewise-constant) gradient of the field in
// the cell containing p. ok is false outside the mesh.
func (f *Field) GradientAt(p geom.Vec3) (geom.Vec3, bool) {
	i, j, k := f.cellOf(p)
	for _, ci := range f.buckets[(k*f.ny+j)*f.nx+i] {
		if _, in := f.barycentric(ci, p); !in {
			continue
		}
		c := f.mesh.Cells[ci]
		var pos [4]geom.Vec3
		for n, v := range c {
			pos[n] = f.mesh.Verts[v]
		}
		vol := geom.TetraVolume(pos[0], pos[1], pos[2], pos[3])
		if vol <= 0 {
			return geom.Vec3{}, false
		}
		grads := p1Gradients(pos, vol)
		var g geom.Vec3
		for n := 0; n < 4; n++ {
			g = g.Add(grads[n].Scale(f.u[c[n]]))
		}
		return g, true
	}
	return geom.Vec3{}, false
}
