package fem

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/geom"
)

// AssembleParallel is Assemble with element loops fanned out over
// workers (0 = GOMAXPROCS). Patient-specific pipelines assemble right
// after meshing; the paper's related work (Tu et al. [29]) couples
// parallel meshing with the solver, and assembly is the natural
// parallel step on the solver side. Results are identical to Assemble
// up to floating-point summation order within a matrix entry.
func AssembleParallel(p *Problem, workers int) (*System, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m := p.Mesh
	if len(m.Cells) == 0 {
		return nil, fmt.Errorf("fem: empty mesh")
	}
	if workers == 1 || len(m.Cells) < 4*workers {
		return Assemble(p)
	}
	nv := len(m.Verts)

	inv := make([]int32, nv)
	var ids []int32
	for v := 0; v < nv; v++ {
		if _, fixed := p.Dirichlet[int32(v)]; fixed {
			inv[v] = -1
		} else {
			inv[v] = int32(len(ids))
			ids = append(ids, int32(v))
		}
	}
	n := len(ids)
	if n == 0 {
		return nil, fmt.Errorf("fem: every vertex is constrained")
	}

	type partial struct {
		rows [][]entry
		b    []float64
		err  error
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	chunk := (len(m.Cells) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(m.Cells))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			pt := &parts[w]
			pt.rows = make([][]entry, n)
			pt.b = make([]float64, n)
			for ci := lo; ci < hi; ci++ {
				cell := m.Cells[ci]
				var pos [4]geom.Vec3
				for i, v := range cell {
					pos[i] = m.Verts[v]
				}
				vol := geom.TetraVolume(pos[0], pos[1], pos[2], pos[3])
				if vol <= 0 {
					pt.err = fmt.Errorf("fem: cell %d has non-positive volume %g", ci, vol)
					return
				}
				k := 1.0
				if p.Conductivity != nil {
					k = p.Conductivity[ci]
				}
				grads := p1Gradients(pos, vol)
				for i := 0; i < 4; i++ {
					fi := inv[cell[i]]
					if fi < 0 {
						continue
					}
					if p.Source != nil {
						centroid := pos[0].Add(pos[1]).Add(pos[2]).Add(pos[3]).Scale(0.25)
						pt.b[fi] += p.Source(centroid) * vol / 4
					}
					for j := 0; j < 4; j++ {
						kij := k * vol * grads[i].Dot(grads[j])
						if fj := inv[cell[j]]; fj >= 0 {
							pt.rows[fi] = append(pt.rows[fi], entry{col: fj, val: kij})
						} else {
							pt.b[fi] -= kij * p.Dirichlet[cell[j]]
						}
					}
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()

	builder := newCSRBuilder(n)
	b := make([]float64, n)
	for w := range parts {
		pt := &parts[w]
		if pt.err != nil {
			return nil, pt.err
		}
		if pt.rows == nil {
			continue
		}
		for i, row := range pt.rows {
			builder.rows[i] = append(builder.rows[i], row...)
		}
		for i, v := range pt.b {
			b[i] += v
		}
	}

	u0 := make([]float64, nv)
	for v, g := range p.Dirichlet {
		u0[v] = g
	}
	return &System{N: n, K: builder.build(), B: b, ids: ids, inv: inv, u0: u0}, nil
}
