package cm

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCoordinatorLastActiveNeverDeactivates(t *testing.T) {
	c := NewCoordinator(3)
	if !c.TryDeactivate() {
		t.Fatal("first deactivation refused")
	}
	if !c.TryDeactivate() {
		t.Fatal("second deactivation refused")
	}
	if c.TryDeactivate() {
		t.Fatal("last active thread was allowed to deactivate")
	}
	c.Reactivate()
	if !c.TryDeactivate() {
		t.Fatal("deactivation refused after reactivate")
	}
	if c.Inactive() != 2 {
		t.Fatalf("Inactive = %d, want 2", c.Inactive())
	}
}

func TestCoordinatorConcurrent(t *testing.T) {
	const n = 8
	c := NewCoordinator(n)
	var wg sync.WaitGroup
	var everAll atomic.Bool
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 1000; k++ {
				if c.TryDeactivate() {
					if c.Inactive() >= n {
						everAll.Store(true)
					}
					c.Reactivate()
				}
			}
		}()
	}
	wg.Wait()
	if everAll.Load() {
		t.Error("all threads were inactive simultaneously")
	}
	if c.Inactive() != 0 {
		t.Errorf("Inactive = %d at the end", c.Inactive())
	}
}

func TestAggressiveIsNoOp(t *testing.T) {
	m := NewAggressive()
	m.OnRollback(0, 1)
	m.OnSuccess(0)
	if m.WakeOne() {
		t.Error("Aggressive woke someone")
	}
	if m.ContentionNs(0) != 0 {
		t.Error("Aggressive accumulated contention time")
	}
	if m.Name() != "Aggressive-CM" {
		t.Error("name")
	}
}

func TestRandomSleepsAfterLimit(t *testing.T) {
	m := NewRandom(2, 100*time.Microsecond)
	// r+ rollbacks: no sleep yet.
	for i := 0; i < RandomRollbackLimit; i++ {
		m.OnRollback(0, 1)
	}
	if m.ContentionNs(0) != 0 {
		t.Fatal("slept before exceeding the limit")
	}
	m.OnRollback(0, 1) // exceeds
	if m.ContentionNs(0) == 0 {
		t.Fatal("did not sleep after exceeding the limit")
	}
}

func TestRandomSuccessResetsCounter(t *testing.T) {
	m := NewRandom(1, 50*time.Microsecond)
	for i := 0; i < RandomRollbackLimit; i++ {
		m.OnRollback(0, -1)
	}
	m.OnSuccess(0)
	m.OnRollback(0, -1) // only 1 consecutive now
	if m.ContentionNs(0) != 0 {
		t.Fatal("slept although the streak was broken by a success")
	}
}

func TestGlobalBlocksAndWakes(t *testing.T) {
	coord := NewCoordinator(2)
	m := NewGlobal(2, coord)

	var phase atomic.Int32
	done := make(chan struct{})
	go func() {
		phase.Store(1)
		m.OnRollback(0, 1) // should block
		phase.Store(2)
		close(done)
	}()

	// Wait until it is blocked.
	deadline := time.After(2 * time.Second)
	for coord.Inactive() == 0 {
		select {
		case <-deadline:
			t.Fatal("thread never blocked")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if phase.Load() != 1 {
		t.Fatal("unexpected phase")
	}

	// Successes from thread 1 eventually wake it.
	for i := 0; i <= SuccessLimit+1; i++ {
		m.OnSuccess(1)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("blocked thread was never woken by progress")
	}
	if m.ContentionNs(0) == 0 {
		t.Error("no contention time recorded")
	}
}

func TestGlobalLastActiveDoesNotBlock(t *testing.T) {
	coord := NewCoordinator(2)
	m := NewGlobal(2, coord)
	if !coord.TryDeactivate() {
		t.Fatal("setup")
	}
	// Thread 0 is now the only active one: OnRollback must return
	// immediately instead of blocking.
	doneCh := make(chan struct{})
	go func() {
		m.OnRollback(0, 1)
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(2 * time.Second):
		t.Fatal("last active thread blocked")
	}
}

func TestGlobalQuiesceReleasesAll(t *testing.T) {
	coord := NewCoordinator(4)
	m := NewGlobal(4, coord)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			m.OnRollback(tid, 3)
		}(i)
	}
	for coord.Inactive() < 3 {
		time.Sleep(time.Millisecond)
	}
	m.Quiesce()
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(2 * time.Second):
		t.Fatal("Quiesce did not release blocked threads")
	}
}

func TestLocalBlocksOnConflictingThread(t *testing.T) {
	coord := NewCoordinator(2)
	m := NewLocal(2, coord)
	done := make(chan struct{})
	go func() {
		m.OnRollback(0, 1)
		close(done)
	}()
	for coord.Inactive() == 0 {
		time.Sleep(time.Millisecond)
	}
	// Progress by thread 1 wakes thread 0 from CL_1.
	for i := 0; i <= SuccessLimit+1; i++ {
		m.OnSuccess(1)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter on CL_1 never woken")
	}
}

func TestLocalCycleDoesNotDeadlock(t *testing.T) {
	// Two threads conflicting with each other: per Figure 2, at least
	// one must decline to block, and the other is woken by its
	// progress or by WakeOne. We emulate the refiner loop: each thread
	// alternates rollback/success.
	coord := NewCoordinator(2)
	m := NewLocal(2, coord)
	var wg sync.WaitGroup
	stop := atomic.Bool{}
	var remaining atomic.Int32
	remaining.Store(2)
	for tid := 0; tid < 2; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			other := 1 - tid
			for i := 0; i < 200 && !stop.Load(); i++ {
				m.OnRollback(tid, other)
				m.OnSuccess(tid)
				for s := 0; s < SuccessLimit+2; s++ {
					m.OnSuccess(tid)
				}
			}
			// The refiner's idle path: finished threads keep waking
			// waiters (Section 5.3's begging-list interplay).
			remaining.Add(-1)
			for remaining.Load() > 0 {
				m.WakeOne()
				time.Sleep(50 * time.Microsecond)
			}
		}(tid)
	}
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(10 * time.Second):
		stop.Store(true)
		m.Quiesce()
		t.Fatal("two-thread conflict cycle deadlocked")
	}
}

func TestLocalSelfOrUnknownConflictIgnored(t *testing.T) {
	coord := NewCoordinator(2)
	m := NewLocal(2, coord)
	m.OnRollback(0, -1) // unknown owner: must not block
	m.OnRollback(0, 0)  // self: must not block
	if coord.Inactive() != 0 {
		t.Fatal("thread deactivated on a no-dependency rollback")
	}
}

func TestLocalWakeOneScansAllLists(t *testing.T) {
	coord := NewCoordinator(3)
	m := NewLocal(3, coord)
	done := make(chan struct{})
	go func() {
		m.OnRollback(2, 1) // waits on CL_1
		close(done)
	}()
	for coord.Inactive() == 0 {
		time.Sleep(time.Millisecond)
	}
	if !m.WakeOne() {
		t.Fatal("WakeOne found no waiter")
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("WakeOne did not release the waiter")
	}
	if m.WakeOne() {
		t.Error("WakeOne woke a phantom waiter")
	}
}

func TestManagersStress(t *testing.T) {
	// All four managers under randomized rollback/success traffic from
	// many goroutines must neither deadlock nor corrupt counters.
	const n = 6
	coord := NewCoordinator(n)
	mgrs := []Manager{
		NewAggressive(),
		NewRandom(n, time.Microsecond),
		NewGlobal(n, coord),
		NewLocal(n, NewCoordinator(n)),
	}
	for _, m := range mgrs {
		t.Run(m.Name(), func(t *testing.T) {
			var wg sync.WaitGroup
			var remaining atomic.Int32
			remaining.Store(n)
			for tid := 0; tid < n; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					for i := 0; i < 300; i++ {
						if i%3 == 0 {
							m.OnRollback(tid, (tid+1)%n)
						} else {
							m.OnSuccess(tid)
						}
					}
					// Like the refiner's idle path: a finished thread
					// keeps waking waiters so no one starves.
					remaining.Add(-1)
					for remaining.Load() > 0 {
						m.WakeOne()
						time.Sleep(100 * time.Microsecond)
					}
				}(tid)
			}
			fin := make(chan struct{})
			go func() { wg.Wait(); close(fin) }()
			select {
			case <-fin:
			case <-time.After(15 * time.Second):
				m.Quiesce()
				t.Fatal("stress deadlocked")
			}
			m.Quiesce()
		})
	}
}

// TestLocalBlockingDoesNotWakeOwnList reproduces the paper's Figure 4
// hazard: a thread about to busy-wait on another's contention list
// must NOT wake the threads parked on its own list — doing so enables
// an infinite hand-off cycle. We park T0 on CL_1, then make T1 block
// on T2: T0 must remain parked.
func TestLocalBlockingDoesNotWakeOwnList(t *testing.T) {
	coord := NewCoordinator(3)
	m := NewLocal(3, coord)

	t0parked := make(chan struct{})
	go func() {
		m.OnRollback(0, 1) // T0 parks on CL_1
		close(t0parked)
	}()
	for coord.Inactive() == 0 {
		time.Sleep(time.Millisecond)
	}

	// T1 now blocks on T2's list; per Figure 4 it must not wake T0.
	t1done := make(chan struct{})
	go func() {
		m.OnRollback(1, 2)
		close(t1done)
	}()
	for coord.Inactive() < 2 {
		time.Sleep(time.Millisecond)
	}
	select {
	case <-t0parked:
		t.Fatal("blocking thread woke its own contention list (Figure 4 livelock enabled)")
	case <-time.After(50 * time.Millisecond):
		// T0 still parked: correct.
	}
	m.Quiesce()
	<-t0parked
	<-t1done
}

// TestContentionTimeMonotone checks per-thread overhead accounting.
func TestContentionTimeMonotone(t *testing.T) {
	coord := NewCoordinator(2)
	m := NewGlobal(2, coord)
	done := make(chan struct{})
	go func() {
		m.OnRollback(0, 1)
		close(done)
	}()
	for coord.Inactive() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond)
	m.WakeOne()
	<-done
	if m.ContentionNs(0) < int64(2*time.Millisecond) {
		t.Errorf("contention time %d below blocked duration", m.ContentionNs(0))
	}
	if m.ContentionNs(1) != 0 {
		t.Errorf("idle thread accumulated contention time")
	}
}
