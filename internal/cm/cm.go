// Package cm implements the paper's four contention managers (Section
// 5): Aggressive-CM, Random-CM, Global-CM and Local-CM. A contention
// manager decides what a thread does after a rollback — nothing, sleep
// a random interval, or block until a making-progress thread wakes it
// — trading rollback work against idle time and, for the blocking
// schemes, provably eliminating livelocks.
package cm

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Default thresholds from the paper ("the value of r+ is set to 5",
// "the value for s+ is set to 10 ... this value yielded the best
// results"). The constructors accept overrides for ablation studies;
// zero selects these defaults.
const (
	// RandomRollbackLimit is r+: consecutive rollbacks before
	// Random-CM sleeps (Section 5.2).
	RandomRollbackLimit = 5
	// SuccessLimit is s+: consecutive successes before a blocking CM
	// wakes a waiter (Sections 5.3, 5.4).
	SuccessLimit = 10
)

// Manager reacts to the outcome of speculative operations. Methods are
// called by the owning thread only, identified by tid; implementations
// may block inside OnRollback.
type Manager interface {
	Name() string
	// OnRollback is invoked after thread tid rolled back an operation
	// because conflictTid held a needed vertex (-1 when unknown). It
	// may block the calling thread until it should retry.
	OnRollback(tid, conflictTid int)
	// OnSuccess is invoked after thread tid commits an operation.
	OnSuccess(tid int)
	// WakeOne unblocks one waiting thread, if any. Called by the load
	// balancer before a thread starts idling, so that the system never
	// ends up with every thread parked (Section 5.3's interaction with
	// the Begging List).
	WakeOne() bool
	// Quiesce permanently releases every blocked thread (termination).
	Quiesce()
	// ContentionNs reports the total nanoseconds thread tid has spent
	// blocked (or sleeping) inside this manager.
	ContentionNs(tid int) int64
}

// Coordinator tracks how many threads are inactive (blocked in a
// contention list or idling on the begging list) so that the last
// active thread never deactivates — the deadlock-avoidance rule of
// Section 5.3.
type Coordinator struct {
	n        int32
	inactive atomic.Int32
}

// NewCoordinator creates a coordinator for n threads.
func NewCoordinator(n int) *Coordinator { return &Coordinator{n: int32(n)} }

// TryDeactivate marks the caller inactive unless it is the last active
// thread, in which case it reports false and the caller must keep
// running.
func (c *Coordinator) TryDeactivate() bool {
	for {
		cur := c.inactive.Load()
		if cur >= c.n-1 {
			return false
		}
		if c.inactive.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// Reactivate marks the caller active again.
func (c *Coordinator) Reactivate() { c.inactive.Add(-1) }

// Inactive returns the current number of inactive threads.
func (c *Coordinator) Inactive() int { return int(c.inactive.Load()) }

// pad keeps per-thread counters on distinct cache lines.
type padded struct {
	v atomic.Int64
	_ [7]int64
}

type overheads struct {
	ns []padded
}

func newOverheads(n int) overheads {
	return overheads{ns: make([]padded, n)}
}

func (o *overheads) add(tid int, d time.Duration) { o.ns[tid].v.Add(int64(d)) }
func (o *overheads) get(tid int) int64            { return o.ns[tid].v.Load() }

// ---------------------------------------------------------------------
// Aggressive-CM

// Aggressive is the brute-force manager: threads retry immediately
// after a rollback. It is livelock-prone (Section 5.1) and exists as
// the baseline showing that contention management is a correctness
// problem, not just a performance one.
type Aggressive struct{}

// NewAggressive returns the no-op manager.
func NewAggressive() *Aggressive { return &Aggressive{} }

// Name implements Manager.
func (*Aggressive) Name() string { return "Aggressive-CM" }

// OnRollback implements Manager (no reaction).
func (*Aggressive) OnRollback(tid, conflictTid int) {}

// OnSuccess implements Manager (no reaction).
func (*Aggressive) OnSuccess(tid int) {}

// WakeOne implements Manager.
func (*Aggressive) WakeOne() bool { return false }

// Quiesce implements Manager.
func (*Aggressive) Quiesce() {}

// ContentionNs implements Manager.
func (*Aggressive) ContentionNs(tid int) int64 { return 0 }

// ---------------------------------------------------------------------
// Random-CM

// Random sleeps a random interval after r+ consecutive rollbacks
// (Section 5.2). It reduces livelock probability through randomness
// but cannot eliminate livelocks.
type Random struct {
	rollbacks []padded // consecutive rollbacks per thread
	rngs      []*rand.Rand
	ov        overheads
	limit     int64
	// SleepUnit scales the random sleep; the paper uses milliseconds.
	sleepUnit time.Duration
}

// NewRandom creates a Random-CM for n threads. sleepUnit is the
// duration corresponding to the paper's 1 millisecond unit (tests pass
// smaller values).
func NewRandom(n int, sleepUnit time.Duration) *Random {
	return NewRandomLimit(n, sleepUnit, RandomRollbackLimit)
}

// NewRandomLimit is NewRandom with an explicit r+ (for the paper's
// "other values yielded similar results" ablation).
func NewRandomLimit(n int, sleepUnit time.Duration, rPlus int) *Random {
	if rPlus <= 0 {
		rPlus = RandomRollbackLimit
	}
	r := &Random{
		rollbacks: make([]padded, n),
		rngs:      make([]*rand.Rand, n),
		ov:        newOverheads(n),
		limit:     int64(rPlus),
		sleepUnit: sleepUnit,
	}
	for i := range r.rngs {
		r.rngs[i] = rand.New(rand.NewSource(int64(i)*2654435761 + 17))
	}
	return r
}

// Name implements Manager.
func (*Random) Name() string { return "Random-CM" }

// OnRollback implements Manager.
func (r *Random) OnRollback(tid, conflictTid int) {
	n := r.rollbacks[tid].v.Add(1)
	if n > r.limit {
		d := time.Duration(1+r.rngs[tid].Intn(int(r.limit))) * r.sleepUnit
		start := time.Now()
		time.Sleep(d)
		r.ov.add(tid, time.Since(start))
		r.rollbacks[tid].v.Store(0)
	}
}

// OnSuccess implements Manager.
func (r *Random) OnSuccess(tid int) { r.rollbacks[tid].v.Store(0) }

// WakeOne implements Manager.
func (*Random) WakeOne() bool { return false }

// Quiesce implements Manager.
func (*Random) Quiesce() {}

// ContentionNs implements Manager.
func (r *Random) ContentionNs(tid int) int64 { return r.ov.get(tid) }

// ---------------------------------------------------------------------
// Global-CM

// Global maintains one global FIFO contention list: every rolled-back
// thread blocks on it and is woken, in order, by threads that have
// completed s+ consecutive operations (Section 5.3). Blocking schemes
// cannot livelock; the deadlock risk from everyone blocking is removed
// by the Coordinator's last-active-thread rule.
type Global struct {
	mu    sync.Mutex
	queue []int // FIFO of blocked thread ids

	waitFlag []atomic.Bool // true while thread must busy-wait
	success  []padded      // consecutive successes per thread
	sPlus    int64
	done     atomic.Bool
	coord    *Coordinator
	ov       overheads
}

// NewGlobal creates a Global-CM for n threads sharing coord with the
// load balancer.
func NewGlobal(n int, coord *Coordinator) *Global {
	return NewGlobalLimit(n, coord, SuccessLimit)
}

// NewGlobalLimit is NewGlobal with an explicit s+.
func NewGlobalLimit(n int, coord *Coordinator, sPlus int) *Global {
	if sPlus <= 0 {
		sPlus = SuccessLimit
	}
	return &Global{
		queue:    make([]int, 0, n),
		waitFlag: make([]atomic.Bool, n),
		success:  make([]padded, n),
		sPlus:    int64(sPlus),
		coord:    coord,
		ov:       newOverheads(n),
	}
}

// Name implements Manager.
func (*Global) Name() string { return "Global-CM" }

// OnRollback implements Manager.
func (g *Global) OnRollback(tid, conflictTid int) {
	g.success[tid].v.Store(0)
	if g.done.Load() {
		return
	}
	if !g.coord.TryDeactivate() {
		return // last active thread keeps running
	}
	start := time.Now()
	g.waitFlag[tid].Store(true)
	g.mu.Lock()
	g.queue = append(g.queue, tid)
	g.mu.Unlock()
	for g.waitFlag[tid].Load() && !g.done.Load() {
		runtime.Gosched()
	}
	g.coord.Reactivate()
	g.ov.add(tid, time.Since(start))
}

// OnSuccess implements Manager.
func (g *Global) OnSuccess(tid int) {
	if s := g.success[tid].v.Add(1); s > g.sPlus {
		if g.WakeOne() {
			g.success[tid].v.Store(0)
		}
	}
}

// WakeOne implements Manager.
func (g *Global) WakeOne() bool {
	g.mu.Lock()
	if len(g.queue) == 0 {
		g.mu.Unlock()
		return false
	}
	tid := g.queue[0]
	g.queue = g.queue[1:]
	g.mu.Unlock()
	g.waitFlag[tid].Store(false)
	return true
}

// Quiesce implements Manager.
func (g *Global) Quiesce() {
	g.done.Store(true)
	g.mu.Lock()
	q := g.queue
	g.queue = nil
	g.mu.Unlock()
	for _, tid := range q {
		g.waitFlag[tid].Store(false)
	}
}

// ContentionNs implements Manager.
func (g *Global) ContentionNs(tid int) int64 { return g.ov.get(tid) }

// ---------------------------------------------------------------------
// Local-CM

// Local distributes the contention list across threads (Section 5.4,
// Figure 2): thread i blocks on the contention list of the exact
// thread j it conflicted with and is woken when j has made enough
// progress. The busy_wait/conflicting-id handshake under per-thread
// mutexes guarantees that in any dependency cycle at least one thread
// blocks (no livelock) and at least one does not (no deadlock).
type Local struct {
	threads []localThread
	sPlus   int64
	done    atomic.Bool
	coord   *Coordinator
	ov      overheads
}

type localThread struct {
	mu       sync.Mutex
	cl       []int       // contention list: threads blocked on this one
	busyWait atomic.Bool // this thread has decided to block
	success  atomic.Int64
	_        [4]int64 // padding
}

// NewLocal creates a Local-CM for n threads.
func NewLocal(n int, coord *Coordinator) *Local {
	return NewLocalLimit(n, coord, SuccessLimit)
}

// NewLocalLimit is NewLocal with an explicit s+.
func NewLocalLimit(n int, coord *Coordinator, sPlus int) *Local {
	if sPlus <= 0 {
		sPlus = SuccessLimit
	}
	return &Local{threads: make([]localThread, n), sPlus: int64(sPlus), coord: coord, ov: newOverheads(n)}
}

// Name implements Manager.
func (*Local) Name() string { return "Local-CM" }

// OnRollback implements Manager. It is the Rollback_Occurred procedure
// of Figure 2c.
func (l *Local) OnRollback(tid, conflictTid int) {
	me := &l.threads[tid]
	me.success.Store(0)
	if conflictTid < 0 || conflictTid == tid || l.done.Load() {
		return
	}
	other := &l.threads[conflictTid]

	// Lock both threads' mutexes in id order (Figure 2c lines 4-5).
	first, second := me, other
	if conflictTid < tid {
		first, second = other, me
	}
	first.mu.Lock()
	second.mu.Lock()

	if other.busyWait.Load() {
		// The thread we depend on has itself decided to block: blocking
		// too could close a dependency cycle, so keep running (lines
		// 6-10).
		second.mu.Unlock()
		first.mu.Unlock()
		return
	}
	if !l.coord.TryDeactivate() {
		second.mu.Unlock()
		first.mu.Unlock()
		return
	}
	me.busyWait.Store(true)
	second.mu.Unlock()
	first.mu.Unlock()

	// Register on the conflicting thread's contention list and block
	// (lines 15-18).
	other.mu.Lock()
	other.cl = append(other.cl, tid)
	other.mu.Unlock()

	start := time.Now()
	for me.busyWait.Load() && !l.done.Load() {
		runtime.Gosched()
	}
	l.coord.Reactivate()
	l.ov.add(tid, time.Since(start))
}

// OnSuccess implements Manager (Figure 2b).
func (l *Local) OnSuccess(tid int) {
	me := &l.threads[tid]
	if s := me.success.Add(1); s > l.sPlus {
		if l.wakeFrom(tid) {
			me.success.Store(0)
		}
	}
}

// wakeFrom pops one waiter from thread tid's contention list.
func (l *Local) wakeFrom(tid int) bool {
	me := &l.threads[tid]
	me.mu.Lock()
	if len(me.cl) == 0 {
		me.mu.Unlock()
		return false
	}
	waiter := me.cl[0]
	me.cl = me.cl[1:]
	me.mu.Unlock()
	l.threads[waiter].busyWait.Store(false)
	return true
}

// WakeOne implements Manager: scan the per-thread lists for any
// waiter.
func (l *Local) WakeOne() bool {
	for i := range l.threads {
		if l.wakeFrom(i) {
			return true
		}
	}
	return false
}

// Quiesce implements Manager.
func (l *Local) Quiesce() {
	l.done.Store(true)
	for i := range l.threads {
		t := &l.threads[i]
		t.mu.Lock()
		cl := t.cl
		t.cl = nil
		t.mu.Unlock()
		for _, w := range cl {
			l.threads[w].busyWait.Store(false)
		}
	}
}

// ContentionNs implements Manager.
func (l *Local) ContentionNs(tid int) int64 { return l.ov.get(tid) }
