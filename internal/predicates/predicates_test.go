package predicates

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestOrient3DBasic(t *testing.T) {
	a := v3(0, 0, 0)
	b := v3(1, 0, 0)
	c := v3(0, 1, 0)
	if got := Orient3D(a, b, c, v3(0, 0, 1)); got != 1 {
		t.Errorf("above: got %d, want 1", got)
	}
	if got := Orient3D(a, b, c, v3(0, 0, -1)); got != -1 {
		t.Errorf("below: got %d, want -1", got)
	}
	if got := Orient3D(a, b, c, v3(0.3, 0.3, 0)); got != 0 {
		t.Errorf("coplanar: got %d, want 0", got)
	}
}

func TestOrient3DSwapAntisymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		a := v3(rng.Float64(), rng.Float64(), rng.Float64())
		b := v3(rng.Float64(), rng.Float64(), rng.Float64())
		c := v3(rng.Float64(), rng.Float64(), rng.Float64())
		d := v3(rng.Float64(), rng.Float64(), rng.Float64())
		if Orient3D(a, b, c, d) != -Orient3D(b, a, c, d) {
			t.Fatalf("swap antisymmetry violated at %v %v %v %v", a, b, c, d)
		}
	}
}

func TestOrient3DExactMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		a := v3(rng.Float64(), rng.Float64(), rng.Float64())
		b := v3(rng.Float64(), rng.Float64(), rng.Float64())
		c := v3(rng.Float64(), rng.Float64(), rng.Float64())
		d := v3(rng.Float64(), rng.Float64(), rng.Float64())
		if got, want := orient3DExact(a, b, c, d), Orient3D(a, b, c, d); got != want {
			t.Fatalf("exact %d != filtered %d", got, want)
		}
	}
}

func TestOrient3DNearDegenerate(t *testing.T) {
	// d is displaced off the plane by one ulp-scale amount; the filter
	// must escalate to exact arithmetic and still report the true sign.
	a := v3(0, 0, 0)
	b := v3(1, 0, 0)
	c := v3(0, 1, 0)
	eps := 1e-300
	if got := Orient3D(a, b, c, v3(0.5, 0.25, eps)); got != 1 {
		t.Errorf("tiny positive offset: got %d, want 1", got)
	}
	if got := Orient3D(a, b, c, v3(0.5, 0.25, -eps)); got != -1 {
		t.Errorf("tiny negative offset: got %d, want -1", got)
	}
}

func TestInSphereBasic(t *testing.T) {
	// Unit tetra with positive orientation.
	a := v3(0, 0, 0)
	b := v3(1, 0, 0)
	c := v3(0, 1, 0)
	d := v3(0, 0, 1)
	if Orient3D(a, b, c, d) != 1 {
		t.Fatal("test tetra not positively oriented")
	}
	center := v3(0.25, 0.25, 0.25)
	if got := InSphere(a, b, c, d, center); got != 1 {
		t.Errorf("interior point: got %d, want 1", got)
	}
	if got := InSphere(a, b, c, d, v3(10, 10, 10)); got != -1 {
		t.Errorf("far point: got %d, want -1", got)
	}
	// A vertex lies exactly on the sphere.
	if got := InSphere(a, b, c, d, a); got != 0 {
		t.Errorf("vertex on sphere: got %d, want 0", got)
	}
}

func TestInSphereCosphericalExactZero(t *testing.T) {
	// (0,0,0),(1,0,0),(0,1,0),(0,0,1) have circumsphere centered at
	// (.5,.5,.5); (1,1,0) lies on it: 0.25+0.25+0.25 = r2 = 0.75.
	a := v3(0, 0, 0)
	b := v3(1, 0, 0)
	c := v3(0, 1, 0)
	d := v3(0, 0, 1)
	e := v3(1, 1, 0)
	if got := InSphere(a, b, c, d, e); got != 0 {
		t.Errorf("cospherical: got %d, want 0", got)
	}
}

func TestInSphereMatchesCircumsphere(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 300; i++ {
		a := v3(rng.Float64(), rng.Float64(), rng.Float64())
		b := v3(rng.Float64(), rng.Float64(), rng.Float64())
		c := v3(rng.Float64(), rng.Float64(), rng.Float64())
		d := v3(rng.Float64(), rng.Float64(), rng.Float64())
		if Orient3D(a, b, c, d) < 0 {
			c, d = d, c
		}
		if Orient3D(a, b, c, d) == 0 {
			continue
		}
		center, r2, ok := geom.Circumsphere(a, b, c, d)
		if !ok {
			continue
		}
		e := v3(rng.Float64(), rng.Float64(), rng.Float64())
		d2 := center.Dist2(e)
		// Only check when the float circumsphere computation is
		// decisively inside/outside.
		margin := 1e-9 * (1 + r2)
		var want int
		switch {
		case d2 < r2-margin:
			want = 1
		case d2 > r2+margin:
			want = -1
		default:
			continue
		}
		if got := InSphere(a, b, c, d, e); got != want {
			t.Fatalf("InSphere=%d want %d (d2=%v r2=%v)", got, want, d2, r2)
		}
	}
}

func TestInSphereExactMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 200; i++ {
		a := v3(rng.Float64(), rng.Float64(), rng.Float64())
		b := v3(rng.Float64(), rng.Float64(), rng.Float64())
		c := v3(rng.Float64(), rng.Float64(), rng.Float64())
		d := v3(rng.Float64(), rng.Float64(), rng.Float64())
		e := v3(rng.Float64(), rng.Float64(), rng.Float64())
		if got, want := inSphereExact(a, b, c, d, e), InSphere(a, b, c, d, e); got != want {
			t.Fatalf("exact %d != filtered %d", got, want)
		}
	}
}

func TestInSphereOrientationFlip(t *testing.T) {
	// Flipping the orientation of the tetra flips the in-sphere sign.
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 200; i++ {
		a := v3(rng.Float64(), rng.Float64(), rng.Float64())
		b := v3(rng.Float64(), rng.Float64(), rng.Float64())
		c := v3(rng.Float64(), rng.Float64(), rng.Float64())
		d := v3(rng.Float64(), rng.Float64(), rng.Float64())
		e := v3(rng.Float64(), rng.Float64(), rng.Float64())
		if InSphere(a, b, c, d, e) != -InSphere(b, a, c, d, e) {
			t.Fatal("orientation flip did not negate InSphere")
		}
	}
}

func BenchmarkOrient3D(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Vec3, 64)
	for i := range pts {
		pts[i] = v3(rng.Float64(), rng.Float64(), rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % 60
		Orient3D(pts[k], pts[k+1], pts[k+2], pts[k+3])
	}
}

func BenchmarkInSphere(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	pts := make([]geom.Vec3, 64)
	for i := range pts {
		pts[i] = v3(rng.Float64(), rng.Float64(), rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % 59
		InSphere(pts[k], pts[k+1], pts[k+2], pts[k+3], pts[k+4])
	}
}

// v3 builds a point; keeps composite literals keyed per go vet.
func v3(x, y, z float64) geom.Vec3 { return geom.Vec3{X: x, Y: y, Z: z} }

// TestExpansionMatchesRat cross-validates the expansion-based exact
// predicates against the arbitrary-precision rational oracles, on both
// random and exactly-degenerate (voxel-aligned) configurations.
func TestExpansionMatchesRat(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	randPt := func() geom.Vec3 {
		if rng.Intn(2) == 0 {
			// Lattice points: exact degeneracies abound.
			return v3(float64(rng.Intn(8)), float64(rng.Intn(8)), float64(rng.Intn(8)))
		}
		return v3(rng.Float64()*8, rng.Float64()*8, rng.Float64()*8)
	}
	for i := 0; i < 3000; i++ {
		a, b, c, d, e := randPt(), randPt(), randPt(), randPt(), randPt()
		if got, want := orient3DExact(a, b, c, d), orient3DRat(a, b, c, d); got != want {
			t.Fatalf("orient: expansion %d != rat %d for %v %v %v %v", got, want, a, b, c, d)
		}
		if got, want := inSphereExact(a, b, c, d, e), inSphereRat(a, b, c, d, e); got != want {
			t.Fatalf("insphere: expansion %d != rat %d for %v %v %v %v %v", got, want, a, b, c, d, e)
		}
	}
}

func TestExpansionPrimitives(t *testing.T) {
	// twoSum/twoDiff/twoProduct exactness on hard cases.
	cases := [][2]float64{
		{1e16, 1}, {1, 1e-16}, {3.14159, 2.71828}, {1e300, 1e-300},
	}
	for _, c := range cases {
		if hi, lo := twoSum(c[0], c[1]); hi+lo != c[0]+c[1] {
			t.Errorf("twoSum broken for %v", c)
		}
		hi, lo := twoProduct(c[0], c[1])
		if hi != c[0]*c[1] {
			t.Errorf("twoProduct hi wrong for %v", c)
		}
		_ = lo
	}
	// Expansion sum identity: value preserved through splits.
	e := expDiff2(new(expArena), 1e16, 1)
	f := expDiff2(new(expArena), 1, 1e-16)
	s := expSum(new(expArena), e, f)
	var total float64
	for _, x := range s {
		total += x
	}
	if total != (1e16-1)+(1-1e-16) {
		t.Errorf("expSum total %v", total)
	}
	if expSign(nil) != 0 || expSign([]float64{-2}) != -1 || expSign([]float64{3}) != 1 {
		t.Error("expSign wrong")
	}
}

func BenchmarkInSphereExactExpansion(b *testing.B) {
	// Exactly cospherical: forces the exact path every time.
	a := v3(0, 0, 0)
	c := v3(1, 0, 0)
	d := v3(0, 1, 0)
	e := v3(0, 0, 1)
	q := v3(1, 1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inSphereExact(a, c, d, e, q)
	}
}

func BenchmarkInSphereExactRat(b *testing.B) {
	a := v3(0, 0, 0)
	c := v3(1, 0, 0)
	d := v3(0, 1, 0)
	e := v3(0, 0, 1)
	q := v3(1, 1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inSphereRat(a, c, d, e, q)
	}
}
