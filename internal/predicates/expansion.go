package predicates

import (
	"math"
	"sync"
)

// Floating-point expansion arithmetic (Shewchuk, "Adaptive Precision
// Floating-Point Arithmetic and Fast Robust Geometric Predicates",
// 1997). An expansion is a sum of non-overlapping float64 components
// ordered by increasing magnitude; arithmetic on expansions is exact.
// The exact predicate fallbacks are built on these instead of
// math/big rationals: they allocate almost nothing and are an order of
// magnitude faster, which matters because voxel-aligned inputs hit
// truly degenerate (zero-determinant) configurations routinely.
//
// All intermediate expansions live in a pooled bump arena: each exact
// predicate call draws one arena, resets it, and returns it, so the
// steady state performs zero heap allocation. Voxel-aligned meshing
// escalates to the exact path on a large fraction of predicate calls,
// which made these transient slices the single largest allocation
// source of a whole refinement run.

// expArena is a bump allocator for expansion components. Slices handed
// out remain valid when the backing array grows (the old array keeps
// them alive); reset reclaims everything at once.
type expArena struct {
	buf []float64
	off int
}

func (a *expArena) alloc(n int) []float64 {
	if a.off+n > len(a.buf) {
		newCap := 2 * (a.off + n)
		if newCap < 1024 {
			newCap = 1024
		}
		a.buf = make([]float64, newCap)
		a.off = 0
	}
	s := a.buf[a.off : a.off : a.off+n]
	a.off += n
	return s
}

func (a *expArena) reset() { a.off = 0 }

var expPool = sync.Pool{New: func() any { return new(expArena) }}

// twoSum returns (hi, lo) with hi+lo == a+b exactly.
func twoSum(a, b float64) (hi, lo float64) {
	s := a + b
	bv := s - a
	av := s - bv
	br := b - bv
	ar := a - av
	return s, ar + br
}

// fastTwoSum requires |a| >= |b| and returns (hi, lo) with
// hi+lo == a+b exactly.
func fastTwoSum(a, b float64) (hi, lo float64) {
	s := a + b
	return s, b - (s - a)
}

// twoDiff returns (hi, lo) with hi+lo == a-b exactly.
func twoDiff(a, b float64) (hi, lo float64) {
	s := a - b
	bv := a - s
	av := s + bv
	br := bv - b
	ar := a - av
	return s, ar + br
}

// twoProduct returns (hi, lo) with hi+lo == a*b exactly, using FMA.
func twoProduct(a, b float64) (hi, lo float64) {
	p := a * b
	return p, math.FMA(a, b, -p)
}

// expSum adds expansions e and f into a fresh zero-eliminated
// expansion (fast_expansion_sum_zeroelim) drawn from the arena.
func expSum(a *expArena, e, f []float64) []float64 {
	elen, flen := len(e), len(f)
	if elen == 0 {
		return f
	}
	if flen == 0 {
		return e
	}
	h := a.alloc(elen + flen)

	eidx, fidx := 0, 0
	enow, fnow := e[0], f[0]
	var q float64
	if (fnow > enow) == (fnow > -enow) {
		q = enow
		eidx++
	} else {
		q = fnow
		fidx++
	}
	var hh float64
	if eidx < elen && fidx < flen {
		enow, fnow = e[eidx], f[fidx]
		if (fnow > enow) == (fnow > -enow) {
			q, hh = fastTwoSum(enow, q)
			eidx++
		} else {
			q, hh = fastTwoSum(fnow, q)
			fidx++
		}
		if hh != 0 {
			h = append(h, hh)
		}
		for eidx < elen && fidx < flen {
			enow, fnow = e[eidx], f[fidx]
			if (fnow > enow) == (fnow > -enow) {
				q, hh = twoSum(q, enow)
				eidx++
			} else {
				q, hh = twoSum(q, fnow)
				fidx++
			}
			if hh != 0 {
				h = append(h, hh)
			}
		}
	}
	for eidx < elen {
		q, hh = twoSum(q, e[eidx])
		eidx++
		if hh != 0 {
			h = append(h, hh)
		}
	}
	for fidx < flen {
		q, hh = twoSum(q, f[fidx])
		fidx++
		if hh != 0 {
			h = append(h, hh)
		}
	}
	if q != 0 {
		h = append(h, q)
	}
	return h
}

// expScale multiplies expansion e by scalar b into a fresh
// zero-eliminated expansion (scale_expansion_zeroelim) drawn from the
// arena.
func expScale(a *expArena, e []float64, b float64) []float64 {
	if len(e) == 0 || b == 0 {
		return nil
	}
	h := a.alloc(2 * len(e))
	q, hh := twoProduct(e[0], b)
	if hh != 0 {
		h = append(h, hh)
	}
	for i := 1; i < len(e); i++ {
		p1, p0 := twoProduct(e[i], b)
		var sum float64
		sum, hh = twoSum(q, p0)
		if hh != 0 {
			h = append(h, hh)
		}
		q, hh = fastTwoSum(p1, sum)
		if hh != 0 {
			h = append(h, hh)
		}
	}
	if q != 0 {
		h = append(h, q)
	}
	return h
}

// expMul multiplies two expansions exactly.
func expMul(a *expArena, e, f []float64) []float64 {
	if len(e) == 0 || len(f) == 0 {
		return nil
	}
	// Distribute over the shorter operand.
	if len(e) < len(f) {
		e, f = f, e
	}
	var acc []float64
	for _, fi := range f {
		acc = expSum(a, acc, expScale(a, e, fi))
	}
	return acc
}

// expNeg negates an expansion in place and returns it.
func expNeg(e []float64) []float64 {
	for i := range e {
		e[i] = -e[i]
	}
	return e
}

// expSign returns the sign of the expansion's exact value.
func expSign(e []float64) int {
	if len(e) == 0 {
		return 0
	}
	// Largest-magnitude component is last and determines the sign.
	switch {
	case e[len(e)-1] > 0:
		return 1
	case e[len(e)-1] < 0:
		return -1
	}
	return 0
}

// expDiff2 returns the 2-component expansion of a-b.
func expDiff2(ar *expArena, a, b float64) []float64 {
	hi, lo := twoDiff(a, b)
	if lo == 0 {
		if hi == 0 {
			return nil
		}
		return append(ar.alloc(1), hi)
	}
	return append(ar.alloc(2), lo, hi)
}

// det3Exp computes the exact 3x3 determinant
//
//	| a1 a2 a3 |
//	| b1 b2 b3 |
//	| c1 c2 c3 |
//
// over expansion entries.
func det3Exp(a *expArena, a1, a2, a3, b1, b2, b3, c1, c2, c3 []float64) []float64 {
	t := expMul(a, a1, expSum(a, expMul(a, b2, c3), expNeg(expMul(a, b3, c2))))
	u := expMul(a, a2, expSum(a, expMul(a, b1, c3), expNeg(expMul(a, b3, c1))))
	v := expMul(a, a3, expSum(a, expMul(a, b1, c2), expNeg(expMul(a, b2, c1))))
	return expSum(a, expSum(a, t, expNeg(u)), v)
}
