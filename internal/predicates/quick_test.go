package predicates

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// exactValue sums an expansion with big.Float at high precision.
func exactValue(e []float64) *big.Float {
	sum := new(big.Float).SetPrec(400)
	for _, x := range e {
		sum.Add(sum, new(big.Float).SetPrec(400).SetFloat64(x))
	}
	return sum
}

func finite(xs ...float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e18 {
			return false
		}
	}
	return true
}

func TestQuickTwoSumExact(t *testing.T) {
	f := func(a, b float64) bool {
		if !finite(a, b) {
			return true
		}
		hi, lo := twoSum(a, b)
		// hi must be the rounded sum and hi+lo the exact sum.
		want := new(big.Float).SetPrec(200).SetFloat64(a)
		want.Add(want, new(big.Float).SetPrec(200).SetFloat64(b))
		got := new(big.Float).SetPrec(200).SetFloat64(hi)
		got.Add(got, new(big.Float).SetPrec(200).SetFloat64(lo))
		return want.Cmp(got) == 0
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickTwoProductExact(t *testing.T) {
	f := func(a, b float64) bool {
		if !finite(a, b) || math.Abs(a) > 1e150 || math.Abs(b) > 1e150 ||
			(a != 0 && math.Abs(a) < 1e-150) || (b != 0 && math.Abs(b) < 1e-150) {
			return true // avoid overflow/denormal edge cases of the FMA trick
		}
		hi, lo := twoProduct(a, b)
		want := new(big.Float).SetPrec(200).SetFloat64(a)
		want.Mul(want, new(big.Float).SetPrec(200).SetFloat64(b))
		got := new(big.Float).SetPrec(200).SetFloat64(hi)
		got.Add(got, new(big.Float).SetPrec(200).SetFloat64(lo))
		return want.Cmp(got) == 0
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(37))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickExpSumExact(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		if !finite(a, b, c, d) {
			return true
		}
		e := expDiff2(new(expArena), a, b)
		g := expDiff2(new(expArena), c, d)
		s := expSum(new(expArena), e, g)
		want := exactValue(e)
		want.Add(want, exactValue(g))
		return want.Cmp(exactValue(s)) == 0
	}
	cfg := &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickExpMulExact(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		for _, x := range []float64{a, b, c, d} {
			if !finite(x) || math.Abs(x) > 1e100 {
				return true
			}
		}
		e := expDiff2(new(expArena), a, b)
		g := expDiff2(new(expArena), c, d)
		p := expMul(new(expArena), e, g)
		want := exactValue(e)
		want.Mul(want, exactValue(g))
		return want.Cmp(exactValue(p)) == 0
	}
	cfg := &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(43))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickOrientConsistency(t *testing.T) {
	// Orientation flips under swaps and is invariant under even
	// permutations, on lattice points where exact zeros are common.
	rng := rand.New(rand.NewSource(47))
	pt := func() geom.Vec3 {
		return v3(float64(rng.Intn(6)), float64(rng.Intn(6)), float64(rng.Intn(6)))
	}
	for i := 0; i < 2000; i++ {
		a, b, c, d := pt(), pt(), pt(), pt()
		o := Orient3D(a, b, c, d)
		if Orient3D(b, a, c, d) != -o {
			t.Fatalf("swap(a,b) did not negate at %v %v %v %v", a, b, c, d)
		}
		if Orient3D(b, c, a, d) != o {
			t.Fatalf("3-cycle changed sign at %v %v %v %v", a, b, c, d)
		}
	}
}

func TestQuickSoSNeverZero(t *testing.T) {
	// For five pairwise-distinct points with a non-degenerate base
	// tetra, InSphereSoS must never return 0 — the whole point of the
	// perturbation.
	rng := rand.New(rand.NewSource(53))
	pt := func() geom.Vec3 {
		return v3(float64(rng.Intn(4)), float64(rng.Intn(4)), float64(rng.Intn(4)))
	}
	checked := 0
	for i := 0; i < 20000 && checked < 2000; i++ {
		a, b, c, d, e := pt(), pt(), pt(), pt(), pt()
		// Require distinctness and a positively oriented tetra.
		pts := []geom.Vec3{a, b, c, d, e}
		distinct := true
		for x := 0; x < 5; x++ {
			for y := x + 1; y < 5; y++ {
				if pts[x] == pts[y] {
					distinct = false
				}
			}
		}
		if !distinct || Orient3D(a, b, c, d) <= 0 {
			continue
		}
		checked++
		if InSphereSoS(a, b, c, d, e) == 0 {
			t.Fatalf("SoS returned 0 for %v %v %v %v %v", a, b, c, d, e)
		}
	}
	if checked < 500 {
		t.Fatalf("only %d configurations checked", checked)
	}
}

func TestQuickSoSConsistentAcrossCells(t *testing.T) {
	// The same (facet, apexes) configuration seen from the two cells
	// sharing the facet must agree: if e is "inside" the sphere of
	// (a,b,c,d) then d is "inside" the sphere of the mirrored cell
	// (a,c,b,e) — the flip condition of Delaunay edge-flipping, which
	// SoS must keep antisymmetric even for cospherical points.
	rng := rand.New(rand.NewSource(59))
	pt := func() geom.Vec3 {
		return v3(float64(rng.Intn(4)), float64(rng.Intn(4)), float64(rng.Intn(4)))
	}
	checked := 0
	for i := 0; i < 20000 && checked < 1000; i++ {
		a, b, c, d, e := pt(), pt(), pt(), pt(), pt()
		if Orient3D(a, b, c, d) <= 0 || Orient3D(a, c, b, e) <= 0 {
			continue
		}
		pts := []geom.Vec3{a, b, c, d, e}
		distinct := true
		for x := 0; x < 5; x++ {
			for y := x + 1; y < 5; y++ {
				if pts[x] == pts[y] {
					distinct = false
				}
			}
		}
		if !distinct {
			continue
		}
		checked++
		s1 := InSphereSoS(a, b, c, d, e)
		s2 := InSphereSoS(a, c, b, e, d)
		if s1 != s2 {
			t.Fatalf("facet view mismatch: %d vs %d at %v %v %v %v %v", s1, s2, a, b, c, d, e)
		}
	}
	if checked < 200 {
		t.Fatalf("only %d configurations checked", checked)
	}
}
