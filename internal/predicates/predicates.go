// Package predicates implements robust geometric orientation and
// in-sphere predicates for 3D Delaunay triangulation.
//
// Each predicate is evaluated first in fast floating-point arithmetic
// with a Shewchuk-style static error filter; when the filter cannot
// certify the sign, the computation is repeated exactly with
// arbitrary-precision rationals (math/big.Rat), for which conversion
// from float64 is exact. The result is therefore always the exact sign
// of the underlying determinant, as required for the Bowyer-Watson
// kernel to stay consistent ("exact predicates", paper Section 7).
package predicates

import (
	"math"
	"math/big"
	"sync/atomic"

	"repro/internal/geom"
)

// epsilon is the float64 machine epsilon 2^-53 used by the error
// filters below (Shewchuk, "Adaptive Precision Floating-Point
// Arithmetic and Fast Robust Geometric Predicates").
const epsilon = 1.0 / (1 << 53)

var (
	o3dErrBound = (7.0 + 56.0*epsilon) * epsilon
	ispErrBound = (16.0 + 224.0*epsilon) * epsilon
)

// Orient3D returns +1 if point d lies below the plane through (a,b,c)
// (i.e. the tetrahedron a,b,c,d is positively oriented), -1 if above,
// and 0 if the four points are exactly coplanar.
//
// "Below" follows the right-hand rule: positive when (b-a)x(c-a) . (d-a) > 0.
func Orient3D(a, b, c, d geom.Vec3) int {
	adx, ady, adz := a.X-d.X, a.Y-d.Y, a.Z-d.Z
	bdx, bdy, bdz := b.X-d.X, b.Y-d.Y, b.Z-d.Z
	cdx, cdy, cdz := c.X-d.X, c.Y-d.Y, c.Z-d.Z

	bdxcdy := bdx * cdy
	cdxbdy := cdx * bdy
	cdxady := cdx * ady
	adxcdy := adx * cdy
	adxbdy := adx * bdy
	bdxady := bdx * ady

	det := adz*(bdxcdy-cdxbdy) + bdz*(cdxady-adxcdy) + cdz*(adxbdy-bdxady)

	permanent := (math.Abs(bdxcdy)+math.Abs(cdxbdy))*math.Abs(adz) +
		(math.Abs(cdxady)+math.Abs(adxcdy))*math.Abs(bdz) +
		(math.Abs(adxbdy)+math.Abs(bdxady))*math.Abs(cdz)
	errBound := o3dErrBound * permanent
	if det > errBound {
		return -1
	}
	if -det > errBound {
		return 1
	}
	ExactCalls.Orient.Add(1)
	return orient3DExact(a, b, c, d)
}

// InSphere returns +1 if point e lies strictly inside the circumsphere
// of the positively oriented tetrahedron (a,b,c,d), -1 if strictly
// outside, and 0 if exactly on the sphere.
//
// The caller must pass a positively oriented tetrahedron
// (Orient3D(a,b,c,d) > 0); otherwise the sign is flipped.
func InSphere(a, b, c, d, e geom.Vec3) int {
	aex, aey, aez := a.X-e.X, a.Y-e.Y, a.Z-e.Z
	bex, bey, bez := b.X-e.X, b.Y-e.Y, b.Z-e.Z
	cex, cey, cez := c.X-e.X, c.Y-e.Y, c.Z-e.Z
	dex, dey, dez := d.X-e.X, d.Y-e.Y, d.Z-e.Z

	aexbey := aex * bey
	bexaey := bex * aey
	ab := aexbey - bexaey
	bexcey := bex * cey
	cexbey := cex * bey
	bc := bexcey - cexbey
	cexdey := cex * dey
	dexcey := dex * cey
	cd := cexdey - dexcey
	dexaey := dex * aey
	aexdey := aex * dey
	da := dexaey - aexdey

	aexcey := aex * cey
	cexaey := cex * aey
	ac := aexcey - cexaey
	bexdey := bex * dey
	dexbey := dex * bey
	bd := bexdey - dexbey

	abc := aez*bc - bez*ac + cez*ab
	bcd := bez*cd - cez*bd + dez*bc
	cda := cez*da + dez*ac + aez*cd
	dab := dez*ab + aez*bd + bez*da

	alift := aex*aex + aey*aey + aez*aez
	blift := bex*bex + bey*bey + bez*bez
	clift := cex*cex + cey*cey + cez*cez
	dlift := dex*dex + dey*dey + dez*dez

	det := (dlift*abc - clift*dab) + (blift*cda - alift*bcd)

	aezplus := math.Abs(aez)
	bezplus := math.Abs(bez)
	cezplus := math.Abs(cez)
	dezplus := math.Abs(dez)
	aexbeyplus := math.Abs(aexbey)
	bexaeyplus := math.Abs(bexaey)
	bexceyplus := math.Abs(bexcey)
	cexbeyplus := math.Abs(cexbey)
	cexdeyplus := math.Abs(cexdey)
	dexceyplus := math.Abs(dexcey)
	dexaeyplus := math.Abs(dexaey)
	aexdeyplus := math.Abs(aexdey)
	aexceyplus := math.Abs(aexcey)
	cexaeyplus := math.Abs(cexaey)
	bexdeyplus := math.Abs(bexdey)
	dexbeyplus := math.Abs(dexbey)
	permanent := ((cexdeyplus+dexceyplus)*bezplus+
		(dexbeyplus+bexdeyplus)*cezplus+
		(bexceyplus+cexbeyplus)*dezplus)*alift +
		((dexaeyplus+aexdeyplus)*cezplus+
			(aexceyplus+cexaeyplus)*dezplus+
			(cexdeyplus+dexceyplus)*aezplus)*blift +
		((aexbeyplus+bexaeyplus)*dezplus+
			(bexdeyplus+dexbeyplus)*aezplus+
			(dexaeyplus+aexdeyplus)*bezplus)*clift +
		((bexceyplus+cexbeyplus)*aezplus+
			(cexaeyplus+aexceyplus)*bezplus+
			(aexbeyplus+bexaeyplus)*cezplus)*dlift

	errBound := ispErrBound * permanent
	if det > errBound {
		return -1
	}
	if -det > errBound {
		return 1
	}
	ExactCalls.InSphere.Add(1)
	return inSphereExact(a, b, c, d, e)
}

// InSphereSoS is InSphere with a symbolic perturbation that removes
// degeneracies: cospherical configurations are resolved as if every
// point's lifted coordinate were lowered by an infinitesimal weight
// growing with the point's lexicographic (x, y, z) rank. The result is
// never 0 for five pairwise-distinct points, and is globally
// consistent — all callers see the same "perturbed Delaunay"
// triangulation, which is what makes the vertex-removal
// re-triangulation match the shared mesh exactly (paper Section 4.2).
//
// Derivation: with rows (a, b, c, d, e) in the 5x5 in-sphere matrix
// and the lift column perturbed by -eps_i, the perturbed determinant's
// sign is decided by the cofactor of the highest-ranked point, which
// is an Orient3D of the other four points (in their original order,
// with alternating sign). For a positively oriented (a, b, c, d) the
// final fallback, the query point's own cofactor, is
// -Orient3D(a,b,c,d) != 0, so the scan always terminates.
func InSphereSoS(a, b, c, d, e geom.Vec3) int {
	if s := InSphere(a, b, c, d, e); s != 0 {
		return s
	}
	pts := [5]geom.Vec3{a, b, c, d, e}
	// Cofactor of each row i (sign of d E / d eps_i).
	cof := [5]func() int{
		func() int { return -Orient3D(b, c, d, e) },
		func() int { return Orient3D(a, c, d, e) },
		func() int { return -Orient3D(a, b, d, e) },
		func() int { return Orient3D(a, b, c, e) },
		func() int { return -Orient3D(a, b, c, d) },
	}
	// Indices sorted by lexicographic rank, descending: the
	// largest-ranked point carries the dominant perturbation.
	order := [5]int{0, 1, 2, 3, 4}
	for i := 1; i < 5; i++ {
		for j := i; j > 0 && lexLess(pts[order[j-1]], pts[order[j]]); j-- {
			order[j-1], order[j] = order[j], order[j-1]
		}
	}
	for _, i := range order {
		if s := cof[i](); s != 0 {
			return s
		}
	}
	return 0 // unreachable for five distinct points with oriented (a,b,c,d)
}

func lexLess(p, q geom.Vec3) bool {
	if p.X != q.X {
		return p.X < q.X
	}
	if p.Y != q.Y {
		return p.Y < q.Y
	}
	return p.Z < q.Z
}

// ratVec converts a point to exact rational coordinates.
type ratVec struct {
	x, y, z *big.Rat
}

func toRat(v geom.Vec3) ratVec {
	return ratVec{
		new(big.Rat).SetFloat64(v.X),
		new(big.Rat).SetFloat64(v.Y),
		new(big.Rat).SetFloat64(v.Z),
	}
}

// det3 computes the exact 3x3 determinant
// | a1 a2 a3 |
// | b1 b2 b3 |
// | c1 c2 c3 |
func det3(a1, a2, a3, b1, b2, b3, c1, c2, c3 *big.Rat) *big.Rat {
	t := new(big.Rat)
	u := new(big.Rat)
	res := new(big.Rat)

	// a1*(b2*c3 - b3*c2)
	t.Mul(b2, c3)
	u.Mul(b3, c2)
	t.Sub(t, u)
	res.Mul(a1, t)

	// - a2*(b1*c3 - b3*c1)
	t.Mul(b1, c3)
	u.Mul(b3, c1)
	t.Sub(t, u)
	t.Mul(a2, t)
	res.Sub(res, t)

	// + a3*(b1*c2 - b2*c1)
	t.Mul(b1, c2)
	u.Mul(b2, c1)
	t.Sub(t, u)
	t.Mul(a3, t)
	res.Add(res, t)

	return res
}

// orient3DExact evaluates the orientation determinant exactly with
// expansion arithmetic over a pooled arena.
func orient3DExact(a, b, c, d geom.Vec3) int {
	ar := expPool.Get().(*expArena)
	ar.reset()
	det := det3Exp(ar,
		expDiff2(ar, a.X, d.X), expDiff2(ar, a.Y, d.Y), expDiff2(ar, a.Z, d.Z),
		expDiff2(ar, b.X, d.X), expDiff2(ar, b.Y, d.Y), expDiff2(ar, b.Z, d.Z),
		expDiff2(ar, c.X, d.X), expDiff2(ar, c.Y, d.Y), expDiff2(ar, c.Z, d.Z),
	)
	s := -expSign(det)
	expPool.Put(ar)
	return s
}

// orient3DRat is the arbitrary-precision rational implementation, kept
// as the test oracle for the expansion code.
func orient3DRat(a, b, c, d geom.Vec3) int {
	ra, rb, rc, rd := toRat(a), toRat(b), toRat(c), toRat(d)
	sub := func(p, q *big.Rat) *big.Rat { return new(big.Rat).Sub(p, q) }
	det := det3(
		sub(ra.x, rd.x), sub(ra.y, rd.y), sub(ra.z, rd.z),
		sub(rb.x, rd.x), sub(rb.y, rd.y), sub(rb.z, rd.z),
		sub(rc.x, rd.x), sub(rc.y, rd.y), sub(rc.z, rd.z),
	)
	return -det.Sign()
}

// inSphereExact evaluates the in-sphere determinant exactly with
// expansion arithmetic over a pooled arena, expanding the 4x4
// difference matrix along the lifted column.
func inSphereExact(a, b, c, d, e geom.Vec3) int {
	ar := expPool.Get().(*expArena)
	ar.reset()
	pts := [4]geom.Vec3{a, b, c, d}
	var rows [4][4][]float64
	for i, p := range pts {
		dx := expDiff2(ar, p.X, e.X)
		dy := expDiff2(ar, p.Y, e.Y)
		dz := expDiff2(ar, p.Z, e.Z)
		lift := expSum(ar, expSum(ar, expMul(ar, dx, dx), expMul(ar, dy, dy)), expMul(ar, dz, dz))
		rows[i] = [4][]float64{dx, dy, dz, lift}
	}
	var det []float64
	for i := 0; i < 4; i++ {
		var m [3][3][]float64
		k := 0
		for j := 0; j < 4; j++ {
			if j == i {
				continue
			}
			m[k] = [3][]float64{rows[j][0], rows[j][1], rows[j][2]}
			k++
		}
		minor := det3Exp(ar,
			m[0][0], m[0][1], m[0][2],
			m[1][0], m[1][1], m[1][2],
			m[2][0], m[2][1], m[2][2],
		)
		term := expMul(ar, rows[i][3], minor)
		if (i+3)%2 == 1 {
			term = expNeg(term)
		}
		det = expSum(ar, det, term)
	}
	s := -expSign(det)
	expPool.Put(ar)
	return s
}

// inSphereRat is the arbitrary-precision rational implementation, kept
// as the test oracle for the expansion code.
func inSphereRat(a, b, c, d, e geom.Vec3) int {
	pts := [4]ratVec{toRat(a), toRat(b), toRat(c), toRat(d)}
	re := toRat(e)

	// Rows: (px-ex, py-ey, pz-ez, |p-e|^2) for p in {a,b,c,d}.
	var rows [4][4]*big.Rat
	for i, p := range pts {
		dx := new(big.Rat).Sub(p.x, re.x)
		dy := new(big.Rat).Sub(p.y, re.y)
		dz := new(big.Rat).Sub(p.z, re.z)
		l := new(big.Rat)
		t := new(big.Rat)
		l.Mul(dx, dx)
		t.Mul(dy, dy)
		l.Add(l, t)
		t.Mul(dz, dz)
		l.Add(l, t)
		rows[i] = [4]*big.Rat{dx, dy, dz, l}
	}

	// 4x4 determinant by cofactor expansion along the last column.
	det := new(big.Rat)
	for i := 0; i < 4; i++ {
		var m [3][3]*big.Rat
		k := 0
		for j := 0; j < 4; j++ {
			if j == i {
				continue
			}
			m[k] = [3]*big.Rat{rows[j][0], rows[j][1], rows[j][2]}
			k++
		}
		minor := det3(
			m[0][0], m[0][1], m[0][2],
			m[1][0], m[1][1], m[1][2],
			m[2][0], m[2][1], m[2][2],
		)
		term := new(big.Rat).Mul(rows[i][3], minor)
		// Sign pattern for expansion along column 3: (-1)^(i+3).
		if (i+3)%2 == 1 {
			det.Sub(det, term)
		} else {
			det.Add(det, term)
		}
	}
	return -det.Sign()
}

// ExactCalls counts escalations to exact arithmetic (diagnostics).
var ExactCalls struct {
	Orient, InSphere atomic.Int64
}
