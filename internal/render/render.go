// Package render rasterizes cross-sections of tetrahedral meshes into
// PNG images — a self-contained way to look at the output meshes the
// paper shows in Figures 7-9 without an external viewer. Pixels are
// colored by tissue label; element edges crossing the section plane
// are darkened so the triangulation structure is visible.
package render

import (
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
	"os"

	"repro/internal/geom"
	"repro/internal/meshio"
)

// palette assigns stable distinguishable colors to tissue labels
// (label 0 / outside stays white).
var palette = []color.RGBA{
	{255, 255, 255, 255}, // background
	{239, 204, 164, 255}, // 1: soft tissue
	{170, 68, 57, 255},   // 2: liver-ish red
	{126, 160, 83, 255},  // 3: green
	{94, 129, 181, 255},  // 4: blue
	{222, 222, 222, 255}, // 5: bone
	{205, 92, 158, 255},  // 6: vessel
	{240, 180, 60, 255},  // 7
	{120, 120, 200, 255}, // 8
}

// Options controls the rasterization.
type Options struct {
	// Z is the world-space height of the section plane.
	Z float64
	// PixelsPerUnit scales the image (default 8).
	PixelsPerUnit float64
	// Edges draws element wireframes on the section (default true via
	// NoEdges=false).
	NoEdges bool
}

// Section renders the z = opts.Z cross-section of the mesh.
func Section(m *meshio.RawMesh, opts Options) *image.RGBA {
	if opts.PixelsPerUnit <= 0 {
		opts.PixelsPerUnit = 8
	}
	lo := m.Verts[0]
	hi := m.Verts[0]
	for _, p := range m.Verts {
		lo = lo.Min(p)
		hi = hi.Max(p)
	}
	w := int(math.Ceil((hi.X-lo.X)*opts.PixelsPerUnit)) + 1
	h := int(math.Ceil((hi.Y-lo.Y)*opts.PixelsPerUnit)) + 1
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for i := range img.Pix {
		img.Pix[i] = 255
	}

	for ci, cell := range m.Cells {
		var pos [4]geom.Vec3
		zmin, zmax := math.Inf(1), math.Inf(-1)
		for i, v := range cell {
			pos[i] = m.Verts[v]
			zmin = math.Min(zmin, pos[i].Z)
			zmax = math.Max(zmax, pos[i].Z)
		}
		if opts.Z < zmin || opts.Z > zmax {
			continue
		}
		label := 1
		if len(m.Labels) > 0 {
			label = m.Labels[ci]
		}
		fill := palette[label%len(palette)]

		// Rasterize the cell's bounding rectangle, testing containment
		// of each pixel center in the tetrahedron at height Z.
		xmin, xmax := math.Inf(1), math.Inf(-1)
		ymin, ymax := math.Inf(1), math.Inf(-1)
		for _, p := range pos {
			xmin = math.Min(xmin, p.X)
			xmax = math.Max(xmax, p.X)
			ymin = math.Min(ymin, p.Y)
			ymax = math.Max(ymax, p.Y)
		}
		px0 := int((xmin - lo.X) * opts.PixelsPerUnit)
		px1 := int((xmax-lo.X)*opts.PixelsPerUnit) + 1
		py0 := int((ymin - lo.Y) * opts.PixelsPerUnit)
		py1 := int((ymax-lo.Y)*opts.PixelsPerUnit) + 1
		for py := max(py0, 0); py <= min(py1, h-1); py++ {
			for px := max(px0, 0); px <= min(px1, w-1); px++ {
				p := geom.Vec3{
					X: lo.X + float64(px)/opts.PixelsPerUnit,
					Y: lo.Y + float64(py)/opts.PixelsPerUnit,
					Z: opts.Z,
				}
				in, nearFace := insideTetra(pos, p)
				if !in {
					continue
				}
				c := fill
				if !opts.NoEdges && nearFace {
					c = color.RGBA{
						R: uint8(int(fill.R) * 55 / 100),
						G: uint8(int(fill.G) * 55 / 100),
						B: uint8(int(fill.B) * 55 / 100),
						A: 255,
					}
				}
				// Flip y so the image is oriented like the phantom
				// slices (y up).
				img.SetRGBA(px, h-1-py, c)
			}
		}
	}
	return img
}

// insideTetra reports whether p lies inside the tetrahedron, and
// whether it lies close to one of its faces (for wireframe shading).
// Uses signed volumes; near-degenerate cells simply render without
// edges.
func insideTetra(pos [4]geom.Vec3, p geom.Vec3) (inside, nearFace bool) {
	vol := geom.TetraVolume(pos[0], pos[1], pos[2], pos[3])
	if vol == 0 {
		return false, false
	}
	w := [4]float64{
		geom.TetraVolume(p, pos[1], pos[2], pos[3]) / vol,
		geom.TetraVolume(pos[0], p, pos[2], pos[3]) / vol,
		geom.TetraVolume(pos[0], pos[1], p, pos[3]) / vol,
		geom.TetraVolume(pos[0], pos[1], pos[2], p) / vol,
	}
	minW := math.Inf(1)
	for _, x := range w {
		if x < -1e-9 {
			return false, false
		}
		minW = math.Min(minW, x)
	}
	return true, minW < 0.06
}

// WritePNG renders a section and encodes it.
func WritePNG(w io.Writer, m *meshio.RawMesh, opts Options) error {
	return png.Encode(w, Section(m, opts))
}

// WritePNGFile renders a section to a file.
func WritePNGFile(path string, m *meshio.RawMesh, opts Options) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WritePNG(f, m, opts); err != nil {
		return err
	}
	return f.Sync()
}
