package render

import (
	"bytes"
	"image/color"
	"image/png"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/img"
	"repro/internal/meshio"
	"repro/internal/smooth"
)

func singleTetra(label int) *meshio.RawMesh {
	m := &meshio.RawMesh{
		Verts: []geom.Vec3{
			{X: 0, Y: 0, Z: 0}, {X: 4, Y: 0, Z: 0}, {X: 0, Y: 4, Z: 0}, {X: 0, Y: 0, Z: 4},
		},
		Cells: [][4]int32{{0, 1, 2, 3}},
	}
	if label > 0 {
		m.Labels = []int{label}
	}
	return m
}

func TestSectionHitsInterior(t *testing.T) {
	m := singleTetra(2)
	im := Section(m, Options{Z: 0.5, PixelsPerUnit: 16})
	if im.Bounds().Dx() < 32 || im.Bounds().Dy() < 32 {
		t.Fatalf("image too small: %v", im.Bounds())
	}
	// A point well inside the cut triangle must carry label 2's color.
	want := palette[2]
	found := false
	b := im.Bounds()
	for y := b.Min.Y; y < b.Max.Y && !found; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			c := im.RGBAAt(x, y)
			if c == want {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("tissue color not present in section")
	}
	// Corners stay background white.
	if im.RGBAAt(b.Max.X-1, 0) != (color.RGBA{255, 255, 255, 255}) {
		t.Fatal("background not white")
	}
}

func TestSectionAboveMeshEmpty(t *testing.T) {
	m := singleTetra(1)
	im := Section(m, Options{Z: 10, PixelsPerUnit: 8})
	b := im.Bounds()
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			if im.RGBAAt(x, y) != (color.RGBA{255, 255, 255, 255}) {
				t.Fatal("non-background pixel above the mesh")
			}
		}
	}
}

func TestWritePNG(t *testing.T) {
	image := img.AbdominalPhantom(40, 40, 28)
	res, err := core.Run(core.Config{Image: image, Workers: 2, LivelockTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ext := smooth.Extract(res.Mesh, res.Final, image)
	raw := &meshio.RawMesh{Verts: ext.Verts, Cells: ext.Cells}
	for _, l := range ext.Labels {
		raw.Labels = append(raw.Labels, int(l))
	}
	var buf bytes.Buffer
	if err := WritePNG(&buf, raw, Options{Z: 14}); err != nil {
		t.Fatal(err)
	}
	decoded, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Bounds().Dx() == 0 {
		t.Fatal("empty png")
	}
	// Multiple tissue colors should appear in the section.
	colors := map[color.Color]bool{}
	b := decoded.Bounds()
	for y := b.Min.Y; y < b.Max.Y; y += 2 {
		for x := b.Min.X; x < b.Max.X; x += 2 {
			colors[decoded.At(x, y)] = true
		}
	}
	if len(colors) < 3 {
		t.Fatalf("only %d distinct colors in a multi-tissue section", len(colors))
	}
}

func TestWritePNGFile(t *testing.T) {
	m := singleTetra(1)
	path := t.TempDir() + "/s.png"
	if err := WritePNGFile(path, m, Options{Z: 1}); err != nil {
		t.Fatal(err)
	}
}
