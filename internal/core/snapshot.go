package core

import (
	"repro/internal/arena"
	"repro/internal/geom"
	"repro/internal/img"
	"repro/internal/quality"
)

// MeshSnapshot is a compact, self-contained copy of a run's final
// mesh: the vertex positions used by the final cells (compacted in
// first-seen order, exactly the order meshio.WriteVTK emits), the
// cells as indices into that vertex slice, the per-cell tissue labels,
// and the run summary. Unlike a Result — whose Mesh and Final handles
// are recycled by the session's next Run — a snapshot owns its memory
// outright and stays valid forever, so it can cross a pool lease
// boundary: take it inside the lease window, release the session, and
// encode or analyze at leisure.
//
// A snapshot is immutable after creation and safe to share across
// goroutines; encoders must treat it as read-only.
type MeshSnapshot struct {
	// Verts holds the positions of every vertex referenced by a final
	// cell, compacted in first-seen order over Final.
	Verts []geom.Vec3
	// Cells indexes each final tetrahedron's four vertices into Verts,
	// preserving the cell's positive orientation.
	Cells [][4]int32
	// Labels carries each cell's tissue label (the label at its
	// circumcenter); nil when the run had no image attached.
	Labels []img.Label
	// Summary is the run digest captured with the geometry.
	Summary RunSummary
}

// Snapshot copies the final mesh out of the Result into an
// independent MeshSnapshot. It must be called while the Result is
// still valid — before the next Run on the owning session — and is
// the serving layer's bridge out of the lease window.
func (r *Result) Snapshot() *MeshSnapshot {
	s := &MeshSnapshot{
		Summary: r.Summary(),
		Cells:   make([][4]int32, len(r.Final)),
	}
	im := r.Config.Image
	if im != nil {
		s.Labels = make([]img.Label, len(r.Final))
	}
	index := make(map[arena.Handle]int32, 4*len(r.Final))
	for i, h := range r.Final {
		c := r.Mesh.Cells.At(h)
		for j := 0; j < 4; j++ {
			vh := c.V[j]
			idx, ok := index[vh]
			if !ok {
				idx = int32(len(s.Verts))
				index[vh] = idx
				s.Verts = append(s.Verts, r.Mesh.Pos(vh))
			}
			s.Cells[i][j] = idx
		}
		if im != nil {
			s.Labels[i] = im.LabelAt(c.CC)
		}
	}
	return s
}

// Elements returns the number of tetrahedra in the snapshot.
func (s *MeshSnapshot) Elements() int { return len(s.Cells) }

// SizeBytes estimates the retained size of the snapshot's geometry
// payload (vertices, cells, labels) — what a serving layer's
// snapshot-size metric observes.
func (s *MeshSnapshot) SizeBytes() int {
	return 24*len(s.Verts) + 16*len(s.Cells) + len(s.Labels)
}

// label returns cell i's tissue label (0 when the run had no image).
func (s *MeshSnapshot) label(i int32) img.Label {
	if s.Labels == nil {
		return 0
	}
	return s.Labels[i]
}

// snapFaces mirrors delaunay's face table: face i is the face opposite
// vertex i, ordered so that Orient3D(face, V[i]) > 0 for a positively
// oriented cell.
var snapFaces = [4][3]int{{1, 3, 2}, {0, 2, 3}, {0, 3, 1}, {0, 1, 2}}

// ExteriorVertices returns the vertices on the snapshot's exterior
// surface — vertices of facets owned by exactly one cell (the domain
// boundary ∂O; tissue-interface facets between two cells are interior
// and excluded) — along with, for each such vertex, the set of tissue
// labels of the boundary cells it touches. verts is sorted ascending
// and duplicate-free; labels[v] lists each label at most once, in
// first-seen order.
//
// This is the selection surface for boundary conditions: a Dirichlet
// clause constrains exterior vertices, optionally filtered by the
// tissue they bound or by a geometric predicate on their position.
func (s *MeshSnapshot) ExteriorVertices() (verts []int32, labels map[int32][]img.Label) {
	type fkey [3]int32
	canon := func(a, b, c int32) fkey {
		if a > b {
			a, b = b, a
		}
		if b > c {
			b, c = c, b
		}
		if a > b {
			a, b = b, a
		}
		return fkey{a, b, c}
	}
	// Count face owners; faces seen once are exterior.
	owners := make(map[fkey]int32, 2*len(s.Cells))
	for ci, c := range s.Cells {
		for f := 0; f < 4; f++ {
			k := canon(c[snapFaces[f][0]], c[snapFaces[f][1]], c[snapFaces[f][2]])
			if _, ok := owners[k]; ok {
				owners[k] = -1 // shared: interior
			} else {
				owners[k] = int32(ci)
			}
		}
	}
	labels = make(map[int32][]img.Label)
	seen := make(map[int32]bool)
	for ci, c := range s.Cells {
		for f := 0; f < 4; f++ {
			k := canon(c[snapFaces[f][0]], c[snapFaces[f][1]], c[snapFaces[f][2]])
			if owners[k] != int32(ci) {
				continue
			}
			l := s.label(int32(ci))
			for _, j := range snapFaces[f] {
				v := c[j]
				if !seen[v] {
					seen[v] = true
					verts = append(verts, v)
				}
				if !containsLabel(labels[v], l) {
					labels[v] = append(labels[v], l)
				}
			}
		}
	}
	sortInt32s(verts)
	return verts, labels
}

func containsLabel(ls []img.Label, l img.Label) bool {
	for _, x := range ls {
		if x == l {
			return true
		}
	}
	return false
}

func sortInt32s(v []int32) {
	// Insertion-free stdlib sort without pulling in a generics dep here.
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// BoundaryTriangles extracts the boundary facets of the snapshot: a
// facet belonging to exactly one cell, or shared by two cells of
// different tissues. It is the off-lease equivalent of
// quality.BoundaryTriangles — same triangle set (interface facets
// emitted once), derived purely from the copied geometry, so OFF
// encoding needs neither the mesh nor the lease.
func (s *MeshSnapshot) BoundaryTriangles() []quality.Triangle {
	type fkey [3]int32
	canon := func(a, b, c int32) fkey {
		if a > b {
			a, b = b, a
		}
		if b > c {
			b, c = c, b
		}
		if a > b {
			a, b = b, a
		}
		return fkey{a, b, c}
	}
	// Pass 1: adjacency by canonical face key ([2]int32{owner, other};
	// -1 marks an unshared slot).
	adj := make(map[fkey][2]int32, 2*len(s.Cells))
	for ci, c := range s.Cells {
		for f := 0; f < 4; f++ {
			k := canon(c[snapFaces[f][0]], c[snapFaces[f][1]], c[snapFaces[f][2]])
			if p, ok := adj[k]; ok {
				p[1] = int32(ci)
				adj[k] = p
			} else {
				adj[k] = [2]int32{int32(ci), -1}
			}
		}
	}
	// Pass 2: emit in cell order, faces 0-3, keeping each cell's face
	// orientation; interface facets come once, from the lower-indexed
	// side.
	var out []quality.Triangle
	for ci, c := range s.Cells {
		for f := 0; f < 4; f++ {
			k := canon(c[snapFaces[f][0]], c[snapFaces[f][1]], c[snapFaces[f][2]])
			p := adj[k]
			other := p[0]
			if other == int32(ci) {
				other = p[1]
			}
			if other >= 0 && (s.label(int32(ci)) == s.label(other) || int32(ci) > other) {
				continue
			}
			out = append(out, quality.Triangle{
				A: s.Verts[c[snapFaces[f][0]]],
				B: s.Verts[c[snapFaces[f][1]]],
				C: s.Verts[c[snapFaces[f][2]]],
			})
		}
	}
	return out
}
