package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arena"
	"repro/internal/balance"
	"repro/internal/cm"
	"repro/internal/delaunay"
	"repro/internal/edt"
	"repro/internal/geom"
	"repro/internal/img"
	"repro/internal/spatial"
)

// Refiner runs the parallel image-to-mesh conversion.
type Refiner struct {
	cfg  Config
	im   *img.Image
	edt  *edt.Transform
	mesh *delaunay.Mesh

	isoGrid *spatial.Grid // isosurface samples (Kind Iso/Surface), spacing δ
	ccGrid  *spatial.Grid // inserted circumcenters, for R6

	cmgr  cm.Manager
	bal   balance.Balancer
	coord *cm.Coordinator

	threads []*thread

	done        atomic.Bool
	aborted     atomic.Bool // livelock watchdog fired
	ops         atomic.Int64
	insideCount atomic.Int64 // live final-mesh cells (for MaxElements)

	startWall time.Time
	timeline  []TimelinePoint
	tlMu      sync.Mutex
}

// thread is the per-worker refinement state.
type thread struct {
	id int
	w  *delaunay.Worker

	pel      []pelItem      // poor element list (LIFO)
	removals []arena.Handle // pending R6 victim vertices

	inbox struct {
		mu    sync.Mutex
		items []pelItem
	}

	inside []arena.Handle // cells created with circumcenter inside O

	// poorCount tracks the valid poor elements currently in this
	// thread's PEL (paper Section 4.4): incremented when an element is
	// pushed here (by anyone), decremented by whichever thread pops or
	// invalidates it. Cell.Aux holds the owning thread id + 1 while an
	// element is counted, so increment/decrement pair up exactly once.
	poorCount atomic.Int64

	// Overheads (paper Section 5.5). Contention time lives in the CM,
	// idle time in the balancer; rollbackNs is the partially-completed
	// work thrown away by rollbacks.
	rollbackNs int64

	ruleCount [7]int64 // indexed by Rule
	scratch   []pelItem
}

// pelItem is a poor element, optionally with a classification already
// computed (act.rule != RuleNone): a conflicted operation re-queues
// its element with the action cached so the retry skips
// re-classification.
type pelItem struct {
	cell arena.Handle
	act  action
}

// Run performs the complete PI2M pipeline on cfg: parallel EDT, then
// parallel Delaunay refinement to the quality/fidelity criteria, then
// final-mesh extraction.
func Run(cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	r := &Refiner{cfg: cfg, im: cfg.Image}

	res := &Result{Config: cfg}
	wallStart := time.Now()

	// Pre-processing: the parallel Euclidean distance transform.
	edtStart := time.Now()
	r.edt = edt.Compute(r.im, cfg.EDTWorkers)
	res.EDTTime = time.Since(edtStart)

	// The virtual box is the image's world bounding box.
	lo, hi := r.im.Bounds()
	r.mesh = delaunay.NewMesh(lo, hi)
	r.isoGrid = spatial.NewGrid(lo, hi, cfg.Delta)
	r.ccGrid = spatial.NewGrid(lo, hi, 2*cfg.Delta)

	r.coord = cm.NewCoordinator(cfg.Workers)
	r.cmgr = cfg.newCM(r.coord)
	r.bal = cfg.newBalancer()

	r.threads = make([]*thread, cfg.Workers)
	for i := range r.threads {
		r.threads[i] = &thread{id: i, w: r.mesh.NewWorker(i)}
	}

	// Seed thread 0 with the bootstrap cells (only the main thread has
	// work initially, Section 4.4).
	t0 := r.threads[0]
	r.mesh.LiveCells(func(h arena.Handle, c *delaunay.Cell) {
		r.noteCreated(t0, h, c)
	})
	r.flushScratch(t0)

	r.startWall = time.Now()
	stopAux := r.startAux()

	var wg sync.WaitGroup
	for _, t := range r.threads {
		wg.Add(1)
		go func(t *thread) {
			defer wg.Done()
			r.workerLoop(t)
		}(t)
	}
	wg.Wait()
	stopAux()

	res.RefineTime = time.Since(r.startWall)
	res.TotalTime = time.Since(wallStart)
	res.Livelocked = r.aborted.Load()
	r.collect(res)
	return res, nil
}

// noteCreated classifies a fresh (or bootstrap) cell: records it in
// the final-mesh list when its circumcenter is inside O, and appends
// it to the thread's PEL when a rule applies.
func (r *Refiner) noteCreated(t *thread, h arena.Handle, c *delaunay.Cell) {
	if r.im.LabelAt(c.CC) != 0 {
		c.SetInside(true)
		t.inside = append(t.inside, h)
		r.insideCount.Add(1)
	}
	if r.poorQuick(c) {
		t.scratch = append(t.scratch, pelItem{cell: h})
	}
}

// flushScratch moves newly found poor elements to the thread's own PEL
// or donates them to a beggar. Per Section 4.4, a thread may only give
// work away while its own counter of valid poor elements is at least
// the threshold.
func (r *Refiner) flushScratch(t *thread) {
	if len(t.scratch) == 0 {
		return
	}
	if t.poorCount.Load() >= int64(r.cfg.DonateThreshold) {
		if beggar, ok := r.bal.ClaimBeggar(t.id); ok {
			bt := r.threads[beggar]
			for _, item := range t.scratch {
				r.countIn(bt, item.cell)
			}
			bt.inbox.mu.Lock()
			bt.inbox.items = append(bt.inbox.items, t.scratch...)
			bt.inbox.mu.Unlock()
			r.bal.Wake(beggar)
			t.scratch = t.scratch[:0]
			return
		}
	}
	for _, item := range t.scratch {
		r.countIn(t, item.cell)
	}
	t.pel = append(t.pel, t.scratch...)
	t.scratch = t.scratch[:0]
}

// countIn marks cell ch as a counted poor element of thread t.
func (r *Refiner) countIn(t *thread, ch arena.Handle) {
	r.mesh.Cells.At(ch).Aux.Store(uint64(t.id + 1))
	t.poorCount.Add(1)
}

// countOut releases the poor-element count for ch, whichever thread
// holds it; reports whether it was still counted.
func (r *Refiner) countOut(ch arena.Handle) bool {
	old := r.mesh.Cells.At(ch).Aux.Swap(0)
	if old == 0 {
		return false
	}
	r.threads[old-1].poorCount.Add(-1)
	return true
}

func (t *thread) drainInbox() {
	t.inbox.mu.Lock()
	if len(t.inbox.items) > 0 {
		t.pel = append(t.pel, t.inbox.items...)
		t.inbox.items = t.inbox.items[:0]
	}
	t.inbox.mu.Unlock()
}

// workerLoop is Algorithm 1: pop a poor element, apply the rule's
// operation speculatively, handle rollbacks through the contention
// manager, update PELs, and balance load until global termination.
func (r *Refiner) workerLoop(t *thread) {
	for !r.done.Load() {
		t.drainInbox()

		// Pending R6 removals first: they unblock termination near the
		// isosurface.
		if len(t.removals) > 0 {
			vh := t.removals[len(t.removals)-1]
			t.removals = t.removals[:len(t.removals)-1]
			r.doRemoval(t, vh)
			continue
		}

		if len(t.pel) == 0 {
			if !r.idle(t) {
				return
			}
			continue
		}

		item := t.pel[len(t.pel)-1]
		t.pel = t.pel[:len(t.pel)-1]
		r.countOut(item.cell)
		c := r.mesh.Cells.At(item.cell)
		if c.Dead() {
			continue // invalidated while queued (Section 4.3)
		}
		act := item.act
		// Fresh items carry no classification (the creating thread only
		// ran the cheap poorness test); conflicted retries carry theirs,
		// revalidated against the sparsity gates that newer samples may
		// have closed.
		fresh := act.rule == RuleNone
		stale := (act.rule == R1 && r.isoGrid.AnyWithin(act.point, r.cfg.Delta)) ||
			(act.rule == R3 && r.isoGrid.AnyWithin(act.point, r.cfg.Delta/4))
		if fresh || stale {
			var ok bool
			act, ok = r.classify(item.cell, c)
			if !ok {
				continue
			}
		}
		r.doInsertion(t, item.cell, act)
	}
}

// doInsertion executes one rule-driven point insertion.
func (r *Refiner) doInsertion(t *thread, ch arena.Handle, act action) {
	start := time.Now()
	res, st := t.w.Insert(act.point, act.kind, ch)
	switch st {
	case delaunay.OK:
		t.ruleCount[act.rule]++
		r.ops.Add(1)
		r.postCommit(t, act, res)
		r.cmgr.OnSuccess(t.id)
		r.flushScratch(t)
	case delaunay.Conflict:
		atomic.AddInt64(&t.rollbackNs, int64(time.Since(start)))
		// The element was not refined: it goes back to the PEL — to the
		// bottom of the stack, so the thread "moves on to the next bad
		// element" (Section 4.2) — and the thread consults the
		// contention manager (Section 4.5).
		r.countIn(t, ch)
		t.pel = append(t.pel, pelItem{cell: ch, act: act})
		if n := len(t.pel) - 1; n > 0 {
			t.pel[0], t.pel[n] = t.pel[n], t.pel[0]
		}
		r.cmgr.OnRollback(t.id, t.w.ConflictTid)
	case delaunay.Stale:
		// The cell died between pop and operation; its replacements
		// were classified by whoever killed it.
	case delaunay.Failed, delaunay.Outside:
		// Geometric failure (duplicate sample raced in, or a
		// circumcenter outside the hull): drop. If the region still
		// violates a rule, a later operation re-discovers it.
	}
}

// doRemoval executes one R6 vertex removal.
func (r *Refiner) doRemoval(t *thread, vh arena.Handle) {
	v := r.mesh.Verts.At(vh)
	if v.Dead() || v.Kind != delaunay.KindCircum {
		return
	}
	start := time.Now()
	res, st := t.w.Remove(vh)
	switch st {
	case delaunay.OK:
		t.ruleCount[R6]++
		r.ops.Add(1)
		r.postCommit(t, action{rule: R6}, res)
		r.cmgr.OnSuccess(t.id)
		r.flushScratch(t)
	case delaunay.Conflict:
		atomic.AddInt64(&t.rollbackNs, int64(time.Since(start)))
		t.removals = append([]arena.Handle{vh}, t.removals...)
		r.cmgr.OnRollback(t.id, t.w.ConflictTid)
	case delaunay.Stale, delaunay.Failed:
		// Already removed, or a degenerate link: keep the vertex (the
		// quality rules still hold; R6 is a termination aid).
	}
}

// cellBudgetExceeded reports whether the MaxElements cap is hit.
func (r *Refiner) cellBudgetExceeded() bool {
	return r.cfg.MaxElements > 0 && r.insideCount.Load() >= int64(r.cfg.MaxElements)
}

// postCommit performs the bookkeeping after a committed operation:
// classify created cells, register new samples in the spatial grids,
// and trigger R6 removals around new isosurface vertices.
func (r *Refiner) postCommit(t *thread, act action, res *delaunay.OpResult) {
	// Invalidated elements release their poor-element counts (Section
	// 4.4: "when T_i invalidates an element c ... it decreases
	// accordingly the counter of the thread that contains c in its
	// PEL").
	for _, kh := range res.Killed {
		r.countOut(kh)
		if r.mesh.Cells.At(kh).Inside() {
			r.insideCount.Add(-1)
		}
	}
	for _, nh := range res.Created {
		r.noteCreated(t, nh, r.mesh.Cells.At(nh))
	}
	if r.cellBudgetExceeded() {
		r.finish()
	}
	if res.NewVert == arena.Nil {
		return
	}
	switch act.kind {
	case delaunay.KindIso, delaunay.KindSurface:
		r.isoGrid.Add(act.point, uint32(res.NewVert))
		if !r.cfg.DisableRemovals {
			// R6: already inserted circumcenters closer than 2δ to the
			// new isosurface vertex are deleted.
			r.ccGrid.ForEachWithin(act.point, 2*r.deltaAt(act.point), func(id uint32, q geom.Vec3) bool {
				vh := arena.Handle(id)
				if !r.mesh.Verts.At(vh).Dead() {
					t.removals = append(t.removals, vh)
				}
				return true
			})
		}
	case delaunay.KindCircum:
		r.ccGrid.Add(act.point, uint32(res.NewVert))
	}
}

// idle parks the thread on the begging list. It returns false when the
// run is over. The last active thread never parks: it first wakes a
// contention-list waiter, and if there is none — every other thread is
// parked with an empty PEL — it declares termination (the deadlock
// rule of Section 5.3).
func (r *Refiner) idle(t *thread) bool {
	for {
		if r.done.Load() {
			return false
		}
		if r.coord.TryDeactivate() {
			ok := r.bal.AwaitWork(t.id)
			r.coord.Reactivate()
			if !ok {
				return false
			}
			t.drainInbox()
			return true
		}
		// Last active thread.
		if r.cmgr.WakeOne() {
			runtime.Gosched()
			t.drainInbox()
			if len(t.pel) > 0 || len(t.removals) > 0 {
				return true
			}
			continue
		}
		t.drainInbox()
		if len(t.pel) > 0 || len(t.removals) > 0 {
			return true
		}
		// Work may have been donated to a parked thread that has not
		// resumed yet; its inbox is the only place it can hide.
		if r.anyInboxPending() {
			runtime.Gosched()
			continue
		}
		// No work anywhere: terminate the run.
		r.finish()
		return false
	}
}

// anyInboxPending reports whether any thread has undelivered donated
// work.
func (r *Refiner) anyInboxPending() bool {
	for _, t := range r.threads {
		t.inbox.mu.Lock()
		n := len(t.inbox.items)
		t.inbox.mu.Unlock()
		if n > 0 {
			return true
		}
	}
	return false
}

// finish flips the done flag and releases every parked or blocked
// thread.
func (r *Refiner) finish() {
	if r.done.CompareAndSwap(false, true) {
		r.cmgr.Quiesce()
		r.bal.Quiesce()
	}
}

// startAux launches the livelock watchdog and the timeline sampler;
// the returned function stops them.
func (r *Refiner) startAux() func() {
	stop := make(chan struct{})
	var wg sync.WaitGroup

	if r.cfg.LivelockTimeout > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(r.cfg.LivelockTimeout / 10)
			defer tick.Stop()
			last := r.ops.Load()
			lastChange := time.Now()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					cur := r.ops.Load()
					if cur != last {
						last = cur
						lastChange = time.Now()
						continue
					}
					if time.Since(lastChange) >= r.cfg.LivelockTimeout {
						r.aborted.Store(true)
						r.finish()
						return
					}
				}
			}
		}()
	}

	if r.cfg.Progress != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(r.cfg.ProgressSample)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					r.cfg.Progress(Progress{
						Wall:       time.Since(r.startWall),
						Operations: r.ops.Load(),
						Elements:   r.insideCount.Load(),
					})
				}
			}
		}()
	}

	if r.cfg.TimelineSample > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(r.cfg.TimelineSample)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					r.sampleTimeline()
				}
			}
		}()
	}

	return func() {
		close(stop)
		wg.Wait()
	}
}

func (r *Refiner) sampleTimeline() {
	var totalNs int64
	for i, t := range r.threads {
		totalNs += r.cmgr.ContentionNs(i) + r.bal.IdleNs(i) + atomic.LoadInt64(&t.rollbackNs)
	}
	pt := TimelinePoint{
		Wall:       time.Since(r.startWall),
		OverheadNs: totalNs,
	}
	r.tlMu.Lock()
	r.timeline = append(r.timeline, pt)
	r.tlMu.Unlock()
}
