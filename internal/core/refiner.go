package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arena"
	"repro/internal/balance"
	"repro/internal/cm"
	"repro/internal/delaunay"
	"repro/internal/edt"
	"repro/internal/geom"
	"repro/internal/img"
	"repro/internal/spatial"
)

// Refiner runs the parallel image-to-mesh conversion.
type Refiner struct {
	cfg  Config
	im   *img.Image
	edt  *edt.Transform
	mesh *delaunay.Mesh

	isoGrid *spatial.Grid // isosurface samples (Kind Iso/Surface), spacing δ
	ccGrid  *spatial.Grid // inserted circumcenters, for R6

	// cmSlot holds the active contention manager; the livelock
	// watchdog may hot-swap it mid-run (see escalate), so every access
	// goes through cm(). cmBaseNs accumulates the per-thread contention
	// time of retired managers.
	cmSlot   atomic.Pointer[cmEntry]
	cmBaseNs []atomic.Int64

	bal   balance.Balancer
	coord *cm.Coordinator

	threads []*thread

	done       atomic.Bool
	failed     atomic.Bool // run aborted: the Result is partial
	livelocked atomic.Bool // the stall watchdog exhausted the ladder
	seqDrain   atomic.Bool // degradation: all work drains through thread 0

	ops         atomic.Int64
	insideCount atomic.Int64 // live final-mesh cells (for MaxElements)

	recoveredPanics atomic.Int64
	droppedItems    atomic.Int64
	callbackPanics  atomic.Int64

	// trMu guards the transition log and the abort reason.
	trMu        sync.Mutex
	transitions []Transition
	reason      string

	startWall time.Time
	timeline  []TimelinePoint
	tlMu      sync.Mutex
}

// cmEntry pairs a contention manager with its selector name, so the
// escalation ladder knows what is currently installed.
type cmEntry struct {
	name string
	m    cm.Manager
}

// thread is the per-worker refinement state.
type thread struct {
	id int
	w  *delaunay.Worker

	pel      []pelItem      // poor element list (LIFO)
	removals []arena.Handle // pending R6 victim vertices

	inbox struct {
		mu       sync.Mutex
		items    []pelItem
		removals []arena.Handle // forwarded R6 work (sequential drain)
	}

	inside []arena.Handle // cells created with circumcenter inside O

	// poorCount tracks the valid poor elements currently in this
	// thread's PEL (paper Section 4.4): incremented when an element is
	// pushed here (by anyone), decremented by whichever thread pops or
	// invalidates it. Cell.Aux holds the owning thread id + 1 while an
	// element is counted, so increment/decrement pair up exactly once.
	poorCount atomic.Int64

	// panics counts operations this thread recovered from a panic; the
	// run aborts once it exceeds Config.PanicBudget.
	panics int

	// cur describes the operation in flight, so the panic handler can
	// re-queue it. curKind is curNone outside an operation.
	cur     pelItem
	curVert arena.Handle
	curKind uint8

	// Overheads (paper Section 5.5). Contention time lives in the CM,
	// idle time in the balancer; rollbackNs is the partially-completed
	// work thrown away by rollbacks.
	rollbackNs int64

	ruleCount [7]int64 // indexed by Rule
	scratch   []pelItem
}

const (
	curNone uint8 = iota
	curInsertion
	curRemoval
)

// pelItem is a poor element, optionally with a classification already
// computed (act.rule != RuleNone): a conflicted operation re-queues
// its element with the action cached so the retry skips
// re-classification. retries counts panic-recovery re-queues of this
// item, bounded by Config.RetryBudget.
type pelItem struct {
	cell    arena.Handle
	act     action
	retries int
}

// cm returns the active contention manager.
func (r *Refiner) cm() cm.Manager { return r.cmSlot.Load().m }

// cmName returns the active contention manager's selector name.
func (r *Refiner) cmName() string { return r.cmSlot.Load().name }

// Run performs the complete PI2M pipeline on cfg: parallel EDT, then
// parallel Delaunay refinement to the quality/fidelity criteria, then
// final-mesh extraction. It is a one-shot Session: callers meshing
// repeatedly should create a Session once and Run it per image, which
// reuses the arena, grid and scratch allocations across runs.
func Run(cfg Config) (*Result, error) {
	s, err := NewSession(cfg)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.Run(cfg.Context, cfg.Image)
}

// noteCreated classifies a fresh (or bootstrap) cell: records it in
// the final-mesh list when its circumcenter is inside O, and appends
// it to the thread's PEL when a rule applies.
func (r *Refiner) noteCreated(t *thread, h arena.Handle, c *delaunay.Cell) {
	if r.im.LabelAt(c.CC) != 0 {
		c.SetInside(true)
		t.inside = append(t.inside, h)
		r.insideCount.Add(1)
	}
	if r.poorQuick(c) {
		t.scratch = append(t.scratch, pelItem{cell: h})
	}
}

// flushScratch moves newly found poor elements to the thread's own PEL
// or donates them to a beggar. Per Section 4.4, a thread may only give
// work away while its own counter of valid poor elements is at least
// the threshold. In sequential-drain mode donation is disabled: work
// must flow toward thread 0, never away from it.
func (r *Refiner) flushScratch(t *thread) {
	if len(t.scratch) == 0 {
		return
	}
	if !r.seqDrain.Load() && t.poorCount.Load() >= int64(r.cfg.DonateThreshold) {
		if beggar, ok := r.bal.ClaimBeggar(t.id); ok {
			bt := r.threads[beggar]
			for _, item := range t.scratch {
				r.countIn(bt, item.cell)
			}
			bt.inbox.mu.Lock()
			bt.inbox.items = append(bt.inbox.items, t.scratch...)
			bt.inbox.mu.Unlock()
			r.bal.Wake(beggar)
			t.scratch = t.scratch[:0]
			return
		}
	}
	for _, item := range t.scratch {
		r.countIn(t, item.cell)
	}
	t.pel = append(t.pel, t.scratch...)
	t.scratch = t.scratch[:0]
}

// countIn marks cell ch as a counted poor element of thread t.
func (r *Refiner) countIn(t *thread, ch arena.Handle) {
	r.mesh.Cells.At(ch).Aux.Store(uint64(t.id + 1))
	t.poorCount.Add(1)
}

// countOut releases the poor-element count for ch, whichever thread
// holds it; reports whether it was still counted.
func (r *Refiner) countOut(ch arena.Handle) bool {
	old := r.mesh.Cells.At(ch).Aux.Swap(0)
	if old == 0 {
		return false
	}
	r.threads[old-1].poorCount.Add(-1)
	return true
}

func (t *thread) drainInbox() {
	t.inbox.mu.Lock()
	if len(t.inbox.items) > 0 {
		t.pel = append(t.pel, t.inbox.items...)
		t.inbox.items = t.inbox.items[:0]
	}
	if len(t.inbox.removals) > 0 {
		t.removals = append(t.removals, t.inbox.removals...)
		t.inbox.removals = t.inbox.removals[:0]
	}
	t.inbox.mu.Unlock()
}

// workerLoop is Algorithm 1: pop a poor element, apply the rule's
// operation speculatively, handle rollbacks through the contention
// manager, update PELs, and balance load until global termination.
// Each iteration runs panic-isolated (see iterate): a panic in the
// kernel, the rules, or injected by the fault harness is recovered,
// counted, and the in-flight element re-queued, instead of killing the
// process.
func (r *Refiner) workerLoop(t *thread) {
	for !r.done.Load() {
		if !r.iterate(t) {
			return
		}
	}
}

// iterate executes one protected iteration. It returns false when the
// worker must exit (termination, or this thread's panic budget is
// exhausted).
func (r *Refiner) iterate(t *thread) (cont bool) {
	t.curKind = curNone
	defer func() {
		if p := recover(); p != nil {
			cont = r.recoverWorker(t, p)
		}
	}()

	t.drainInbox()

	// Degradation mode: every thread but 0 forwards its work and then
	// parks through the regular idle path.
	if r.seqDrain.Load() && t.id != 0 {
		r.handoff(t)
	}

	// Pending R6 removals first: they unblock termination near the
	// isosurface.
	if len(t.removals) > 0 {
		vh := t.removals[len(t.removals)-1]
		t.removals = t.removals[:len(t.removals)-1]
		t.curVert, t.curKind = vh, curRemoval
		r.doRemoval(t, vh)
		return true
	}

	if len(t.pel) == 0 {
		return r.idle(t)
	}

	item := t.pel[len(t.pel)-1]
	t.pel = t.pel[:len(t.pel)-1]
	r.countOut(item.cell)
	c := r.mesh.Cells.At(item.cell)
	if c.Dead() {
		return true // invalidated while queued (Section 4.3)
	}
	t.cur, t.curKind = item, curInsertion
	act := item.act
	// Fresh items carry no classification (the creating thread only
	// ran the cheap poorness test); conflicted retries carry theirs,
	// revalidated against the sparsity gates that newer samples may
	// have closed.
	fresh := act.rule == RuleNone
	stale := (act.rule == R1 && r.isoGrid.AnyWithin(act.point, r.cfg.Delta)) ||
		(act.rule == R3 && r.isoGrid.AnyWithin(act.point, r.cfg.Delta/4))
	if fresh || stale {
		var ok bool
		act, ok = r.classify(item.cell, c)
		if !ok {
			return true
		}
		t.cur.act = act
	}
	r.doInsertion(t, item.cell, act)
	return true
}

// recoverWorker is the panic handler of one worker iteration: release
// the locks the unwound operation still holds (in reverse), count the
// fault, re-queue the in-flight element within its retry budget, and
// keep the worker running until its panic budget is exhausted — then
// escalate to a clean structured abort of the whole run.
func (r *Refiner) recoverWorker(t *thread, p any) (cont bool) {
	t.w.RecoverFromPanic()
	r.recoveredPanics.Add(1)
	t.panics++

	// Poor elements discovered by the unwound operation stay with this
	// thread (donation could deadlock against a half-recovered state).
	for _, item := range t.scratch {
		r.countIn(t, item.cell)
	}
	t.pel = append(t.pel, t.scratch...)
	t.scratch = t.scratch[:0]

	switch t.curKind {
	case curInsertion:
		if t.cur.retries < r.cfg.RetryBudget {
			t.cur.retries++
			r.countIn(t, t.cur.cell)
			t.pel = append(t.pel, t.cur)
		} else {
			r.droppedItems.Add(1)
		}
	case curRemoval:
		// R6 is a termination aid, not a correctness requirement: a
		// removal that panicked is dropped rather than retried.
		r.droppedItems.Add(1)
	}
	t.curKind = curNone

	if t.panics > r.cfg.PanicBudget {
		reason := fmt.Sprintf("panic budget exhausted: thread %d recovered %d panics, last: %v",
			t.id, t.panics, p)
		r.recordTransition("abort", reason)
		r.abortRun(reason)
		return false
	}
	return true
}

// handoff forwards a non-zero thread's pending work to thread 0's
// inbox (sequential-drain mode), transferring the poor-element counts
// with it.
func (r *Refiner) handoff(t *thread) {
	if len(t.pel) == 0 && len(t.removals) == 0 {
		return
	}
	t0 := r.threads[0]
	for _, item := range t.pel {
		if r.countOut(item.cell) {
			r.countIn(t0, item.cell)
		}
	}
	t0.inbox.mu.Lock()
	t0.inbox.items = append(t0.inbox.items, t.pel...)
	t0.inbox.removals = append(t0.inbox.removals, t.removals...)
	t0.inbox.mu.Unlock()
	t.pel = t.pel[:0]
	t.removals = t.removals[:0]
	r.bal.Wake(0)
}

// doInsertion executes one rule-driven point insertion.
func (r *Refiner) doInsertion(t *thread, ch arena.Handle, act action) {
	start := time.Now()
	res, st := t.w.Insert(act.point, act.kind, ch)
	switch st {
	case delaunay.OK:
		t.ruleCount[act.rule]++
		r.ops.Add(1)
		r.postCommit(t, act, res)
		r.cm().OnSuccess(t.id)
		r.flushScratch(t)
	case delaunay.Conflict:
		atomic.AddInt64(&t.rollbackNs, int64(time.Since(start)))
		// The element was not refined: it goes back to the PEL — to the
		// bottom of the stack, so the thread "moves on to the next bad
		// element" (Section 4.2) — and the thread consults the
		// contention manager (Section 4.5).
		r.countIn(t, ch)
		t.pel = append(t.pel, pelItem{cell: ch, act: act, retries: t.cur.retries})
		if n := len(t.pel) - 1; n > 0 {
			t.pel[0], t.pel[n] = t.pel[n], t.pel[0]
		}
		r.cm().OnRollback(t.id, t.w.ConflictTid)
	case delaunay.Stale:
		// The cell died between pop and operation; its replacements
		// were classified by whoever killed it.
	case delaunay.Failed, delaunay.Outside:
		// Geometric failure (duplicate sample raced in, or a
		// circumcenter outside the hull): drop. If the region still
		// violates a rule, a later operation re-discovers it.
	}
}

// doRemoval executes one R6 vertex removal.
func (r *Refiner) doRemoval(t *thread, vh arena.Handle) {
	v := r.mesh.Verts.At(vh)
	if v.Dead() || v.Kind != delaunay.KindCircum {
		return
	}
	start := time.Now()
	res, st := t.w.Remove(vh)
	switch st {
	case delaunay.OK:
		t.ruleCount[R6]++
		r.ops.Add(1)
		r.postCommit(t, action{rule: R6}, res)
		r.cm().OnSuccess(t.id)
		r.flushScratch(t)
	case delaunay.Conflict:
		atomic.AddInt64(&t.rollbackNs, int64(time.Since(start)))
		t.removals = append([]arena.Handle{vh}, t.removals...)
		r.cm().OnRollback(t.id, t.w.ConflictTid)
	case delaunay.Stale, delaunay.Failed:
		// Already removed, or a degenerate link: keep the vertex (the
		// quality rules still hold; R6 is a termination aid).
	}
}

// cellBudgetExceeded reports whether the MaxElements cap is hit.
func (r *Refiner) cellBudgetExceeded() bool {
	return r.cfg.MaxElements > 0 && r.insideCount.Load() >= int64(r.cfg.MaxElements)
}

// postCommit performs the bookkeeping after a committed operation:
// classify created cells, register new samples in the spatial grids,
// and trigger R6 removals around new isosurface vertices.
func (r *Refiner) postCommit(t *thread, act action, res *delaunay.OpResult) {
	// Invalidated elements release their poor-element counts (Section
	// 4.4: "when T_i invalidates an element c ... it decreases
	// accordingly the counter of the thread that contains c in its
	// PEL").
	for _, kh := range res.Killed {
		r.countOut(kh)
		if r.mesh.Cells.At(kh).Inside() {
			r.insideCount.Add(-1)
		}
	}
	for _, nh := range res.Created {
		r.noteCreated(t, nh, r.mesh.Cells.At(nh))
	}
	if r.cellBudgetExceeded() {
		r.finish()
	}
	if res.NewVert == arena.Nil {
		return
	}
	switch act.kind {
	case delaunay.KindIso, delaunay.KindSurface:
		r.isoGrid.Add(act.point, uint32(res.NewVert))
		if !r.cfg.DisableRemovals {
			// R6: already inserted circumcenters closer than 2δ to the
			// new isosurface vertex are deleted.
			r.ccGrid.ForEachWithin(act.point, 2*r.deltaAt(act.point), func(id uint32, q geom.Vec3) bool {
				vh := arena.Handle(id)
				if !r.mesh.Verts.At(vh).Dead() {
					t.removals = append(t.removals, vh)
				}
				return true
			})
		}
	case delaunay.KindCircum:
		r.ccGrid.Add(act.point, uint32(res.NewVert))
	}
}

// idle parks the thread on the begging list. It returns false when the
// run is over. The last active thread never parks: it first wakes a
// contention-list waiter, and if there is none — every other thread is
// parked with an empty PEL — it declares termination (the deadlock
// rule of Section 5.3).
func (r *Refiner) idle(t *thread) bool {
	for {
		if r.done.Load() {
			return false
		}
		if r.coord.TryDeactivate() {
			ok := r.bal.AwaitWork(t.id)
			r.coord.Reactivate()
			if !ok {
				return false
			}
			t.drainInbox()
			return true
		}
		// Last active thread.
		if r.cm().WakeOne() {
			runtime.Gosched()
			t.drainInbox()
			if len(t.pel) > 0 || len(t.removals) > 0 {
				return true
			}
			continue
		}
		t.drainInbox()
		if len(t.pel) > 0 || len(t.removals) > 0 {
			return true
		}
		// Work may have been donated to a parked thread that has not
		// resumed yet; its inbox is the only place it can hide.
		if r.anyInboxPending() {
			runtime.Gosched()
			continue
		}
		// A thread that deactivated in the coordinator but has not yet
		// registered in the contention list (or parked on the begging
		// list) is invisible to WakeOne — and may still hold a full PEL.
		// Only threads actually parked on the begging list are known to
		// be empty-handed, so termination requires all of them there.
		if r.bal.Idle() != len(r.threads)-1 {
			runtime.Gosched()
			continue
		}
		// No work anywhere: terminate the run.
		r.finish()
		return false
	}
}

// anyInboxPending reports whether any thread has undelivered donated
// work.
func (r *Refiner) anyInboxPending() bool {
	for _, t := range r.threads {
		t.inbox.mu.Lock()
		n := len(t.inbox.items) + len(t.inbox.removals)
		t.inbox.mu.Unlock()
		if n > 0 {
			return true
		}
	}
	return false
}

// finish flips the done flag and releases every parked or blocked
// thread.
func (r *Refiner) finish() {
	if r.done.CompareAndSwap(false, true) {
		r.cm().Quiesce()
		r.bal.Quiesce()
	}
}

// abortRun terminates the run with a structured reason; the Result is
// partial but consistent (every committed operation is atomic under
// the locking protocol).
func (r *Refiner) abortRun(reason string) {
	r.trMu.Lock()
	if r.reason == "" {
		r.reason = reason
	}
	r.trMu.Unlock()
	r.failed.Store(true)
	r.finish()
}

// recordTransition appends an event to the run's transition log and
// notifies the (panic-guarded) Config.OnTransition callback.
func (r *Refiner) recordTransition(event, detail string) {
	tr := Transition{Wall: time.Since(r.startWall), Event: event, Detail: detail}
	r.trMu.Lock()
	r.transitions = append(r.transitions, tr)
	r.trMu.Unlock()
	if cb := r.cfg.OnTransition; cb != nil {
		func() {
			defer func() {
				if p := recover(); p != nil {
					r.noteCallbackPanic("OnTransition", p)
				}
			}()
			cb(tr)
		}()
	}
}

// noteCallbackPanic counts a recovered panic in user-supplied callback
// code; the first one is recorded in the transition log so the run is
// marked Degraded.
func (r *Refiner) noteCallbackPanic(name string, p any) {
	if r.callbackPanics.Add(1) == 1 {
		tr := Transition{Wall: time.Since(r.startWall), Event: "callback-panic",
			Detail: fmt.Sprintf("%s: %v", name, p)}
		r.trMu.Lock()
		r.transitions = append(r.transitions, tr)
		r.trMu.Unlock()
	}
}

// escalate is the graceful-degradation ladder, invoked by the stall
// watchdog instead of the old immediate abort. Rung 1: hot-swap the
// contention manager to Local-CM, which provably cannot livelock
// (Section 5.4). Rung 2: drain all PELs through a single thread —
// sequential refinement cannot roll back, so it cannot livelock
// either. Rung 3: abort with a structured reason. It returns false
// when the ladder is exhausted and the run was aborted.
func (r *Refiner) escalate(stalledFor time.Duration) bool {
	switch {
	case r.cfg.Workers > 1 && r.cmName() != "local" && !r.seqDrain.Load():
		from := r.cmName()
		r.swapCM("local")
		r.recordTransition("cm-swap",
			fmt.Sprintf("stalled %v under %s: hot-swapped to Local-CM", stalledFor.Round(time.Millisecond), from))
		return true
	case r.cfg.Workers > 1 && !r.seqDrain.Load():
		from := r.cmName() // engageSeqDrain swaps the CM; name the one that stalled
		r.engageSeqDrain()
		r.recordTransition("sequential-drain",
			fmt.Sprintf("stalled %v under %s: draining all PELs through thread 0", stalledFor.Round(time.Millisecond), from))
		return true
	default:
		reason := fmt.Sprintf("livelock: no committed operation for %v and the degradation ladder is exhausted", stalledFor.Round(time.Millisecond))
		r.livelocked.Store(true)
		r.recordTransition("abort", reason)
		r.abortRun(reason)
		return false
	}
}

// swapCM installs the named contention manager and retires the current
// one, releasing any threads blocked inside it.
func (r *Refiner) swapCM(name string) {
	cfg := r.cfg
	cfg.ContentionManager = name
	next := &cmEntry{name: name, m: cfg.newCM(r.coord)}
	old := r.cmSlot.Swap(next)
	// New rollbacks now consult the new manager; release everyone still
	// blocked in the old one, then bank its contention time. (Threads
	// released this instant may add a final slice to the old manager
	// after the snapshot — a bounded undercount, noted in DESIGN.md.)
	old.m.Quiesce()
	for i := range r.cmBaseNs {
		r.cmBaseNs[i].Add(old.m.ContentionNs(i))
	}
}

// engageSeqDrain switches the run into sequential-drain mode: the
// contention manager becomes a no-op (a single active thread cannot
// conflict), and every parked thread is woken so it forwards its work
// to thread 0 and re-parks.
func (r *Refiner) engageSeqDrain() {
	r.seqDrain.Store(true)
	r.swapCM("aggressive")
	for i := range r.threads {
		r.bal.Wake(i)
	}
}

// startAux launches the stall watchdog, the context watcher, and the
// timeline/progress samplers; the returned function stops them.
func (r *Refiner) startAux() func() {
	stop := make(chan struct{})
	var wg sync.WaitGroup

	if r.cfg.LivelockTimeout > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(r.cfg.LivelockTimeout / 10)
			defer tick.Stop()
			last := r.ops.Load()
			lastChange := time.Now()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					cur := r.ops.Load()
					if cur != last {
						last = cur
						lastChange = time.Now()
						continue
					}
					if stalled := time.Since(lastChange); stalled >= r.cfg.LivelockTimeout {
						if !r.escalate(stalled) {
							return // ladder exhausted: run aborted
						}
						// Give the new rung a full window to make progress.
						last = r.ops.Load()
						lastChange = time.Now()
					}
				}
			}
		}()
	}

	if ctx := r.cfg.Context; ctx != nil {
		if err := ctx.Err(); err != nil {
			// Already canceled before the first worker starts: abort
			// synchronously. The watcher goroutine alone races tiny
			// runs, which can complete before it is ever scheduled and
			// return StatusCompleted for a canceled job.
			reason := fmt.Sprintf("canceled: %v", err)
			r.recordTransition("cancel", reason)
			r.abortRun(reason)
		} else {
			wg.Add(1)
			go func() {
				defer wg.Done()
				select {
				case <-stop:
				case <-ctx.Done():
					reason := fmt.Sprintf("canceled: %v", ctx.Err())
					r.recordTransition("cancel", reason)
					r.abortRun(reason)
				}
			}()
		}
	}

	if r.cfg.Progress != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(r.cfg.ProgressSample)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					r.cfg.Progress(Progress{
						Wall:       time.Since(r.startWall),
						Operations: r.ops.Load(),
						Elements:   r.insideCount.Load(),
					})
				}
			}
		}()
	}

	if r.cfg.TimelineSample > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(r.cfg.TimelineSample)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					r.sampleTimeline()
				}
			}
		}()
	}

	return func() {
		close(stop)
		wg.Wait()
	}
}

func (r *Refiner) sampleTimeline() {
	var totalNs int64
	mgr := r.cm()
	for i, t := range r.threads {
		totalNs += r.cmBaseNs[i].Load() + mgr.ContentionNs(i) +
			r.bal.IdleNs(i) + atomic.LoadInt64(&t.rollbackNs)
	}
	pt := TimelinePoint{
		Wall:       time.Since(r.startWall),
		OverheadNs: totalNs,
	}
	r.tlMu.Lock()
	r.timeline = append(r.timeline, pt)
	r.tlMu.Unlock()
}

// guardCallbacks wraps the user-supplied callbacks so a panic in user
// code is recovered and degrades the run instead of crashing a worker
// or sampler goroutine.
func (r *Refiner) guardCallbacks() {
	if f := r.cfg.userSizeFunc; f != nil {
		r.cfg.SizeFunc = func(p geom.Vec3) (out float64) {
			defer func() {
				if pv := recover(); pv != nil {
					r.noteCallbackPanic("SizeFunc", pv)
					out = noSizeBound
				}
			}()
			return f(p)
		}
	}
	if f := r.cfg.DeltaFunc; f != nil {
		r.cfg.DeltaFunc = func(p geom.Vec3) (out float64) {
			defer func() {
				if pv := recover(); pv != nil {
					r.noteCallbackPanic("DeltaFunc", pv)
					out = r.cfg.Delta
				}
			}()
			return f(p)
		}
	}
	if f := r.cfg.Progress; f != nil {
		var disabled atomic.Bool
		r.cfg.Progress = func(p Progress) {
			if disabled.Load() {
				return
			}
			defer func() {
				if pv := recover(); pv != nil {
					r.noteCallbackPanic("Progress", pv)
					disabled.Store(true)
				}
			}()
			f(p)
		}
	}
}
