// Package core implements PI2M itself: the parallel Delaunay
// image-to-mesh refinement algorithm of the paper (Sections 3-4). It
// drives the concurrent Delaunay kernel with the refinement rules
// R1-R6, per-thread Poor Element Lists, contention management,
// begging-list load balancing, and on-the-fly final-mesh extraction.
package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/balance"
	"repro/internal/cm"
	"repro/internal/geom"
	"repro/internal/img"
)

// SizeFunc is the user size function sf(.) of rule R5: an upper bound
// on the circumradius of tetrahedra whose circumcenter lies at the
// given point.
type SizeFunc func(geom.Vec3) float64

// Config parameterizes a PI2M run.
type Config struct {
	// Image is the segmented multi-label input (required).
	Image *img.Image

	// Delta is the δ sampling parameter (world units): target spacing
	// of isosurface samples, fidelity knob of Theorem 1, and the mesh
	// size control of the weak-scaling study. Default: 2x the minimum
	// voxel spacing.
	Delta float64

	// DeltaFunc optionally varies δ over space (paper Section 2:
	// "parts of the isosurface of high curvature can be meshed with
	// more elements"; surface density is user-controllable like the
	// volume density). Values are clamped to [Delta/4, Delta]; Delta
	// remains the coarse bound and the sparsity-grid resolution.
	DeltaFunc SizeFunc

	// MaxElements stops refinement early once the final mesh reaches
	// this many tetrahedra (0 = unlimited). The mesh remains valid;
	// quality/fidelity criteria may be unmet where refinement stopped.
	MaxElements int

	// SizeFunc is sf(.) of rule R5; nil means no size constraint
	// (quality rules only).
	SizeFunc SizeFunc

	// MaxRadiusEdge is the radius-edge ratio bound of rule R4
	// (default 2, the paper's provable bound).
	MaxRadiusEdge float64

	// MinFacetAngle is the boundary planar angle bound of rule R3 in
	// degrees (default 30).
	MinFacetAngle float64

	// Workers is the number of refinement threads (default
	// GOMAXPROCS).
	Workers int

	// Topology models the machine for the load balancer (default: a
	// Blacklight-shaped topology sized for Workers).
	Topology balance.Topology

	// ContentionManager selects the CM: "aggressive", "random",
	// "global", "local" (default "local").
	ContentionManager string

	// Balancer selects the begging-list organization: "rws" or "hws"
	// (default "hws").
	Balancer string

	// DisableRemovals turns off rule R6 (for ablation).
	DisableRemovals bool

	// DonateThreshold is the minimum number of valid poor elements a
	// thread must hold before it may give work away (Section 4.4; the
	// paper "set that threshold equal to 5, since it yielded the best
	// results"). Zero selects 5.
	DonateThreshold int

	// SuccessLimit overrides s+ for the blocking contention managers;
	// RollbackLimit overrides r+ for Random-CM (both Section 5 tuning
	// knobs; zero selects the paper's 10 and 5).
	SuccessLimit  int
	RollbackLimit int

	// EDTWorkers is the parallelism of the distance-transform
	// pre-processing (default Workers).
	EDTWorkers int

	// LivelockTimeout aborts the run when no operation commits for
	// this long — the watchdog that detects Aggressive-CM/Random-CM
	// livelocks (Section 5.5). Zero disables it.
	LivelockTimeout time.Duration

	// TimelineSample enables the Figure 6 overhead timeline with the
	// given sampling period. Zero disables it.
	TimelineSample time.Duration

	// Progress, when non-nil, is called from a sampler goroutine every
	// ProgressSample (default 250ms) with a running snapshot — for
	// long-running CLI feedback. It must be fast and thread-safe. A
	// panic in the callback is recovered (the run degrades, further
	// progress reports are dropped) rather than crashing the process.
	Progress       func(Progress)
	ProgressSample time.Duration

	// Context, when non-nil, cooperatively cancels the refinement: once
	// it is done (deadline or cancel), the workers stop at the next
	// operation boundary and Run returns a partial Result with
	// StatusAborted, the final-mesh cells extracted so far, and the
	// cancellation reason. The mesh remains structurally valid — every
	// committed operation is atomic under the locking protocol.
	//
	// Deprecated: pass the context to Session.Run instead. A context
	// given to Session.Run takes precedence over this field.
	Context context.Context

	// PanicBudget is the number of panics a single worker thread may
	// recover from (releasing its vertex locks and re-queuing the
	// in-flight element) before the run is aborted with a structured
	// reason. Zero selects 3; negative disables the budget (unlimited
	// recoveries).
	PanicBudget int

	// RetryBudget bounds how many times a poor element whose operation
	// panicked is re-queued before being dropped. Zero selects 2.
	RetryBudget int

	// OnTransition, when non-nil, is called (panic-guarded) each time
	// the failure-handling machinery records a Transition: a
	// contention-manager hot-swap, the switch to sequential drain, a
	// cancellation, or an abort. It must be thread-safe.
	OnTransition func(Transition)

	// userSizeFunc keeps the caller's unwrapped SizeFunc so the panic
	// guard wraps exactly the user code, not the default.
	userSizeFunc SizeFunc
}

// noSizeBound is the R5 bound meaning "no constraint"; also the value
// a panicking user SizeFunc degrades to.
var noSizeBound = math.Inf(1)

// Progress is a point-in-time snapshot of a running refinement.
type Progress struct {
	Wall       time.Duration
	Operations int64
	Elements   int64 // current final-mesh cell count (approximate)
}

// validate checks every knob that does not depend on the input image,
// so a Session can reject a bad template at construction time.
func (cfg Config) validate() error {
	if cfg.Delta < 0 {
		return fmt.Errorf("core: negative Delta")
	}
	if cfg.MaxRadiusEdge != 0 && cfg.MaxRadiusEdge < 0.5 {
		return fmt.Errorf("core: MaxRadiusEdge %g below the provable bound", cfg.MaxRadiusEdge)
	}
	switch cfg.ContentionManager {
	case "", "aggressive", "random", "global", "local":
	default:
		return fmt.Errorf("core: unknown contention manager %q", cfg.ContentionManager)
	}
	switch cfg.Balancer {
	case "", "rws", "hws":
	default:
		return fmt.Errorf("core: unknown balancer %q", cfg.Balancer)
	}
	return nil
}

// withDefaults validates cfg and fills in defaults.
func (cfg Config) withDefaults() (Config, error) {
	if err := cfg.validate(); err != nil {
		return cfg, err
	}
	if cfg.Image == nil {
		return cfg, fmt.Errorf("core: Config.Image is required")
	}
	if cfg.Delta == 0 {
		cfg.Delta = 2 * cfg.Image.MinSpacing()
	}
	if cfg.MaxRadiusEdge == 0 {
		cfg.MaxRadiusEdge = 2
	}
	if cfg.MinFacetAngle == 0 {
		cfg.MinFacetAngle = 30
	}
	cfg.userSizeFunc = cfg.SizeFunc
	if cfg.SizeFunc == nil {
		cfg.SizeFunc = func(geom.Vec3) float64 { return noSizeBound }
	}
	if cfg.PanicBudget == 0 {
		cfg.PanicBudget = 3
	} else if cfg.PanicBudget < 0 {
		cfg.PanicBudget = math.MaxInt
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 2
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.EDTWorkers <= 0 {
		cfg.EDTWorkers = cfg.Workers
	}
	if cfg.Topology == (balance.Topology{}) {
		cfg.Topology = balance.ForWorkers(cfg.Workers)
	}
	if cfg.DonateThreshold <= 0 {
		cfg.DonateThreshold = 5
	}
	if cfg.ProgressSample <= 0 {
		cfg.ProgressSample = 250 * time.Millisecond
	}
	if cfg.ContentionManager == "" {
		cfg.ContentionManager = "local"
	}
	if cfg.Balancer == "" {
		cfg.Balancer = "hws"
	}
	return cfg, nil
}

func (cfg Config) newCM(coord *cm.Coordinator) cm.Manager {
	switch cfg.ContentionManager {
	case "aggressive":
		return cm.NewAggressive()
	case "random":
		return cm.NewRandomLimit(cfg.Workers, time.Millisecond, cfg.RollbackLimit)
	case "global":
		return cm.NewGlobalLimit(cfg.Workers, coord, cfg.SuccessLimit)
	default:
		return cm.NewLocalLimit(cfg.Workers, coord, cfg.SuccessLimit)
	}
}

func (cfg Config) newBalancer() balance.Balancer {
	if cfg.Balancer == "rws" {
		return balance.NewRWS(cfg.Workers, cfg.Topology)
	}
	return balance.NewHWS(cfg.Workers, cfg.Topology)
}
