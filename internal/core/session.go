package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arena"
	"repro/internal/cm"
	"repro/internal/delaunay"
	"repro/internal/edt"
	"repro/internal/img"
	"repro/internal/spatial"
)

// Session is a reusable run engine: it owns the long-lived allocations
// of the PI2M pipeline — the mesh's cell/vertex arenas, the spatial
// hash grids, the EDT working buffers, and the per-thread refinement
// state (PELs, inboxes, kernel workers) — so that consecutive Run
// calls on same-shaped inputs reset-and-reuse instead of reallocating.
//
// A Session is safe for use from multiple goroutines, but it executes
// one run at a time: a Run that finds another Run in flight fails
// fast with ErrSessionBusy instead of queueing behind it. Callers
// that want to multiplex concurrent work over warm sessions should
// hold several sessions (see internal/serve.Pool, which relies on
// exactly this busy-rejection contract). The Result of a Run (its
// Mesh and Final handles) remains valid only until the next Run on
// the same session, which recycles the arenas underneath it; extract
// what you need (quality stats, I/O) before re-running, or use
// separate sessions.
//
// Reuse does not change output: a warm Run produces exactly the mesh a
// cold Run would for the same configuration and image (bit-identical
// with Workers=1; statistically identical under speculative
// parallelism, exactly as two cold runs are).
// ErrSessionBusy is returned by Session.Run when another Run is
// already in flight on the same session. The session is unharmed;
// retry after the in-flight run returns, or use another session.
var ErrSessionBusy = errors.New("core: session busy: concurrent Run on the same Session")

type Session struct {
	// running is the in-use flag: Run sets it with a CAS and clears it
	// on return, so a concurrent Run fails fast with ErrSessionBusy
	// instead of blocking on mu for the whole duration of the run.
	running     atomic.Bool
	busyRejects atomic.Int64

	mu     sync.Mutex
	tmpl   Config
	closed bool

	mesh    *delaunay.Mesh
	threads []*thread

	isoGrid *spatial.Grid
	ccGrid  *spatial.Grid

	// EDT working buffers plus a cache of the last transform, keyed by
	// image pointer identity: re-running on the same *img.Image skips
	// the transform entirely.
	edtComp    edt.Computer
	edtIm      *img.Image
	edtWorkers int
	edtTr      *edt.Transform

	stats SessionStats
}

// SessionStats counts a session's reuse behavior.
type SessionStats struct {
	// Runs is the number of completed Run calls.
	Runs int
	// WarmRuns counts runs that reused the mesh arenas and per-thread
	// state of a previous run (every run after the first, unless the
	// worker count changed).
	WarmRuns int
	// WarmEDTHits counts runs that reused the cached distance
	// transform outright (same image pointer, same EDT parallelism).
	WarmEDTHits int
	// BusyRejects counts Run calls rejected with ErrSessionBusy
	// because another Run was in flight.
	BusyRejects int64
}

// NewSession validates the configuration knobs and returns an empty
// session. cfg.Image and cfg.Context are ignored here — the image (and
// a context) are per-Run arguments; all other fields act as the
// template for every Run.
func NewSession(cfg Config) (*Session, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Session{tmpl: cfg}, nil
}

// Stats returns a snapshot of the session's reuse counters.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.BusyRejects = s.busyRejects.Load()
	return st
}

// Busy reports whether a Run is currently in flight. It is a racy
// snapshot — by the time the caller acts, the run may have finished —
// but a false return after the caller has serialized checkouts (as
// the serve pool does) is authoritative.
func (s *Session) Busy() bool { return s.running.Load() }

// Invalidate drops the cached distance transform. Call it after
// mutating an image in place before re-running on it; runs on a
// different *img.Image never see stale data (the cache is keyed by
// pointer identity).
func (s *Session) Invalidate() {
	s.mu.Lock()
	s.edtIm, s.edtTr = nil, nil
	s.mu.Unlock()
}

// Close releases the session's pooled per-worker scratch back to the
// package pools and marks the session unusable. The mesh of the last
// Result is left intact — it remains valid after Close. Close is
// idempotent.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	for _, t := range s.threads {
		t.w.Release()
	}
	s.threads = nil
	s.isoGrid, s.ccGrid = nil, nil
	s.edtIm, s.edtTr = nil, nil
	s.edtComp = edt.Computer{}
	return nil
}

// Run performs the complete PI2M pipeline — parallel EDT, parallel
// Delaunay refinement, final-mesh extraction — on the given image,
// reusing the session's retained allocations from previous runs where
// the shapes allow. ctx, when non-nil, cooperatively cancels the
// refinement exactly like the deprecated Config.Context.
//
// Run does not queue: if another Run is already in flight on this
// session it returns ErrSessionBusy immediately.
func (s *Session) Run(ctx context.Context, image *img.Image) (*Result, error) {
	return s.RunTuned(ctx, image, nil)
}

// RunTuned is Run with per-run configuration overrides: tune, when
// non-nil, receives a copy of the session template (image attached)
// and may adjust per-run knobs — Delta, MaxElements, MaxRadiusEdge,
// MinFacetAngle, SizeFunc — before validation. The template itself is
// never modified, and the session's retained allocations adapt: a
// grid that no longer fits the tuned Delta is rebuilt, everything
// else reuses warm. This is the hook the serving layer's pool uses to
// honor per-request quality knobs over shared sessions.
func (s *Session) RunTuned(ctx context.Context, image *img.Image, tune func(*Config)) (*Result, error) {
	if !s.running.CompareAndSwap(false, true) {
		s.busyRejects.Add(1)
		return nil, ErrSessionBusy
	}
	defer s.running.Store(false)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("core: Run on closed Session")
	}
	cfg := s.tmpl
	cfg.Image = image
	if ctx != nil {
		cfg.Context = ctx
	}
	if tune != nil {
		tune(&cfg)
		// The per-run image and context always win over a tune that
		// clobbers them.
		cfg.Image = image
		if ctx != nil {
			cfg.Context = ctx
		}
		// Worker-count changes are a template-level decision: the
		// per-thread state is sized by the template, so a tuned run
		// keeps the session's parallelism.
		cfg.Workers = s.tmpl.Workers
		cfg.EDTWorkers = s.tmpl.EDTWorkers
		if err := cfg.validate(); err != nil {
			return nil, err
		}
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return s.run(cfg)
}

// run executes one refinement with the session lock held and cfg fully
// defaulted.
func (s *Session) run(cfg Config) (*Result, error) {
	r := &Refiner{cfg: cfg, im: cfg.Image}
	r.guardCallbacks()

	res := &Result{Config: cfg}
	wallStart := time.Now()

	// Pre-processing: the parallel Euclidean distance transform. The
	// session reuses the Computer's buffers always, and the finished
	// transform itself when the image and parallelism are unchanged.
	edtStart := time.Now()
	if s.edtTr != nil && s.edtIm == cfg.Image && s.edtWorkers == cfg.EDTWorkers {
		s.stats.WarmEDTHits++
	} else {
		s.edtTr = s.edtComp.Compute(cfg.Image, cfg.EDTWorkers)
		s.edtIm, s.edtWorkers = cfg.Image, cfg.EDTWorkers
	}
	r.edt = s.edtTr
	res.EDTTime = time.Since(edtStart)

	// The virtual box is the image's world bounding box. A retained
	// mesh resets in place, recycling its arena chunks.
	lo, hi := r.im.Bounds()
	warm := s.mesh != nil
	if warm {
		if err := s.mesh.Reset(lo, hi); err != nil {
			return nil, fmt.Errorf("core: bootstrap triangulation: %w", err)
		}
	} else {
		m, err := delaunay.NewMesh(lo, hi)
		if err != nil {
			return nil, fmt.Errorf("core: bootstrap triangulation: %w", err)
		}
		s.mesh = m
	}
	r.mesh = s.mesh
	// Panics the fault harness injected into the (single-owner)
	// bootstrap were recovered and retried in place; they still count
	// toward the run's failure accounting.
	r.recoveredPanics.Add(s.mesh.BootstrapPanicRecoveries())

	if s.isoGrid != nil && s.isoGrid.Fits(lo, hi, cfg.Delta) {
		s.isoGrid.Reset()
	} else {
		s.isoGrid = spatial.NewGrid(lo, hi, cfg.Delta)
	}
	if s.ccGrid != nil && s.ccGrid.Fits(lo, hi, 2*cfg.Delta) {
		s.ccGrid.Reset()
	} else {
		s.ccGrid = spatial.NewGrid(lo, hi, 2*cfg.Delta)
	}
	r.isoGrid, r.ccGrid = s.isoGrid, s.ccGrid

	// Coordination state is cheap and run-scoped: built fresh.
	r.coord = cm.NewCoordinator(cfg.Workers)
	r.cmSlot.Store(&cmEntry{name: cfg.ContentionManager, m: cfg.newCM(r.coord)})
	r.cmBaseNs = make([]atomic.Int64, cfg.Workers)
	r.bal = cfg.newBalancer()

	// Per-thread state: retained threads reset (keeping PEL/inbox/
	// inside capacity and the kernel workers' removal scratch meshes);
	// a changed worker count rebuilds.
	if warm && len(s.threads) == cfg.Workers {
		for _, t := range s.threads {
			t.resetForRun()
		}
		s.stats.WarmRuns++
	} else {
		for _, t := range s.threads {
			t.w.Release()
		}
		s.threads = make([]*thread, cfg.Workers)
		for i := range s.threads {
			s.threads[i] = &thread{id: i, w: s.mesh.NewWorker(i)}
		}
	}
	r.threads = s.threads

	// Seed thread 0 with the bootstrap cells (only the main thread has
	// work initially, Section 4.4).
	t0 := r.threads[0]
	r.mesh.LiveCells(func(h arena.Handle, c *delaunay.Cell) {
		r.noteCreated(t0, h, c)
	})
	r.flushScratch(t0)

	r.startWall = time.Now()
	stopAux := r.startAux()

	var wg sync.WaitGroup
	for _, t := range r.threads {
		wg.Add(1)
		go func(t *thread) {
			defer wg.Done()
			r.workerLoop(t)
		}(t)
	}
	wg.Wait()
	stopAux()

	res.RefineTime = time.Since(r.startWall)
	res.TotalTime = time.Since(wallStart)
	r.collect(res)
	s.stats.Runs++
	return res, nil
}

// resetForRun readies a retained thread for a fresh run: every slice
// keeps its capacity, every counter restarts, and the kernel worker
// re-attaches to the recycled arenas.
func (t *thread) resetForRun() {
	t.w.PrepareReuse()
	t.pel = t.pel[:0]
	t.removals = t.removals[:0]
	t.inbox.items = t.inbox.items[:0]
	t.inbox.removals = t.inbox.removals[:0]
	t.inside = t.inside[:0]
	t.poorCount.Store(0)
	t.panics = 0
	t.cur = pelItem{}
	t.curVert = arena.Nil
	t.curKind = curNone
	t.rollbackNs = 0
	t.ruleCount = [7]int64{}
	t.scratch = t.scratch[:0]
}
