package core

import (
	"math"

	"repro/internal/arena"
	"repro/internal/delaunay"
	"repro/internal/geom"
)

// Rule identifies which refinement rule (Section 3) fired.
type Rule int

// The refinement rules.
const (
	RuleNone Rule = iota
	R1            // isosurface sample for a surface-crossing circumball
	R2            // circumcenter of a large surface-crossing tetrahedron
	R3            // surface-center of a boundary facet
	R4            // circumcenter of a poor-quality interior tetrahedron
	R5            // circumcenter of an oversized interior tetrahedron
	R6            // removal of circumcenters crowding an isosurface vertex
)

func (r Rule) String() string {
	switch r {
	case R1:
		return "R1"
	case R2:
		return "R2"
	case R3:
		return "R3"
	case R4:
		return "R4"
	case R5:
		return "R5"
	case R6:
		return "R6"
	}
	return "none"
}

// action is a planned refinement operation for one poor element.
type action struct {
	rule  Rule
	kind  delaunay.VertKind
	point geom.Vec3
}

// surfaceTol is the bisection tolerance for isosurface intersections,
// as a fraction of the minimum voxel spacing.
const surfaceTol = 1e-3

// deltaAt evaluates the (possibly spatially varying) sampling spacing
// at p, clamped so the sparsity grid and termination bounds stay
// valid.
func (r *Refiner) deltaAt(p geom.Vec3) float64 {
	if r.cfg.DeltaFunc == nil {
		return r.cfg.Delta
	}
	d := r.cfg.DeltaFunc(p)
	if d > r.cfg.Delta {
		return r.cfg.Delta
	}
	if min := r.cfg.Delta / 4; d < min {
		return min
	}
	return d
}

// distanceToSurface estimates the distance from p to the isosurface,
// clamping points outside the image onto its boundary (huge early
// cells have circumcenters far outside the image).
func (r *Refiner) distanceToSurface(p geom.Vec3) (float64, geom.Vec3, bool) {
	lo, hi := r.im.Bounds()
	eps := r.im.MinSpacing() / 2
	q := p.Max(lo.Add(geom.Vec3{X: eps, Y: eps, Z: eps})).
		Min(hi.Sub(geom.Vec3{X: eps, Y: eps, Z: eps}))
	sv, ok := r.edt.NearestSurfaceVoxel(q)
	if !ok {
		return math.Inf(1), geom.Vec3{}, false
	}
	return p.Dist(sv), sv, true
}

// isoPointNear computes ẑ, the isosurface point closest to p (paper
// Section 3): the EDT yields the nearest surface voxel q, and the ray
// p→q is marched and bisected across the label interface. The ray is
// extended one voxel past q because the sub-voxel interface can lie
// just behind the voxel center.
func (r *Refiner) isoPointNear(p geom.Vec3, sv geom.Vec3) (geom.Vec3, bool) {
	dir := sv.Sub(p)
	if n := dir.Norm(); n > 0 {
		dir = dir.Scale((n + 2*r.im.MinSpacing()) / n)
	} else {
		dir = geom.Vec3{X: 2 * r.im.MinSpacing()}
	}
	return r.im.SurfacePoint(p, p.Add(dir), surfaceTol*r.im.MinSpacing())
}

// poorQuick is the creation-time poorness test: a cheap conservative
// over-approximation of "some rule applies", used when the creating
// thread classifies new cells for its PEL and for donation (Section
// 4.4). The expensive geometry (surface marches) is deferred to the
// full classify at pop time.
func (r *Refiner) poorQuick(c *delaunay.Cell) bool {
	if math.IsInf(c.R2, 1) {
		return false
	}
	cc := c.CC
	rad := math.Sqrt(c.R2)
	dist, _, haveSurface := r.distanceToSurface(cc)
	margin := 2*r.im.MinSpacing() + r.im.Spacing.Norm()
	if haveSurface && dist <= rad+margin {
		return true // R1/R2/R3 candidate near the surface
	}
	if r.im.LabelAt(cc) != 0 {
		se := shortestEdge(r.mesh, c)
		if se > 0 && rad/se > r.cfg.MaxRadiusEdge {
			return true // R4
		}
		if rad > r.cfg.SizeFunc(cc) {
			return true // R5
		}
	}
	// R3 across a facet whose Voronoi edge strays near the surface
	// while this circumcenter is far: the neighbor's own quick test
	// covers it from the other side, and the full classify at pop
	// checks both directions.
	return false
}

// classify decides which rule, if any, applies to live cell ch and
// returns the operation to perform. Rules are evaluated in the paper's
// order R1..R5; R6 is triggered separately when isosurface vertices
// are committed.
func (r *Refiner) classify(ch arena.Handle, c *delaunay.Cell) (action, bool) {
	if c.Dead() {
		return action{}, false
	}
	if math.IsInf(c.R2, 1) {
		return action{}, false
	}
	cc := c.CC
	rad := math.Sqrt(c.R2)

	dist, sv, haveSurface := r.distanceToSurface(cc)
	if haveSurface && dist <= rad {
		// The circumball intersects ∂O.
		// R1: sample the isosurface at ẑ if no sample is within δ(ẑ).
		if z, ok := r.isoPointNear(cc, sv); ok && !r.isoGrid.AnyWithin(z, r.deltaAt(z)) {
			return action{rule: R1, kind: delaunay.KindIso, point: z}, true
		}
		// R2: large surface-crossing tetrahedra are split.
		if rad > 2*r.deltaAt(cc) {
			return action{rule: R2, kind: delaunay.KindCircum, point: cc}, true
		}
	}

	// R3: boundary facets (Voronoi edge crosses ∂O) with a small
	// planar angle or a vertex off the isosurface get their
	// surface-center inserted. A δ/4 sparsity gate guarantees
	// termination on the voxelized (non-smooth) isosurface.
	m := r.mesh
	for f := 0; f < 4; f++ {
		nbh := c.Neighbor(f)
		if nbh == arena.Nil {
			continue
		}
		nb := m.Cells.At(nbh)
		if math.IsInf(nb.R2, 1) {
			continue
		}
		// Cheap rejection: every point of the Voronoi edge is at least
		// dist - |edge| from the surface, so the edge cannot cross ∂O
		// when dist exceeds its length (plus a voxel-quantization
		// margin, since dist is measured to voxel centers).
		segLen := cc.Dist(nb.CC)
		if haveSurface && dist > segLen+2*r.im.MinSpacing()+r.im.Spacing.Norm() {
			continue
		}
		cSurf, ok := r.im.SurfacePoint(cc, nb.CC, surfaceTol*r.im.MinSpacing())
		if !ok {
			continue
		}
		face := c.Face(f)
		offSurface := false
		for _, vh := range face {
			k := m.Verts.At(vh).Kind
			if k != delaunay.KindIso && k != delaunay.KindSurface {
				offSurface = true
				break
			}
		}
		if !offSurface {
			a := m.Pos(face[0])
			b := m.Pos(face[1])
			c3 := m.Pos(face[2])
			offSurface = geom.MinTriangleAngle(a, b, c3) < r.cfg.MinFacetAngle
		}
		if offSurface && !r.isoGrid.AnyWithin(cSurf, r.deltaAt(cSurf)/4) {
			return action{rule: R3, kind: delaunay.KindSurface, point: cSurf}, true
		}
	}

	// Interior rules need the circumcenter inside O.
	if r.im.LabelAt(cc) != 0 {
		// R4: radius-edge quality.
		se := shortestEdge(m, c)
		if se > 0 && rad/se > r.cfg.MaxRadiusEdge {
			return action{rule: R4, kind: delaunay.KindCircum, point: cc}, true
		}
		// R5: user size function.
		if rad > r.cfg.SizeFunc(cc) {
			return action{rule: R5, kind: delaunay.KindCircum, point: cc}, true
		}
	}
	return action{}, false
}

func shortestEdge(m *delaunay.Mesh, c *delaunay.Cell) float64 {
	return geom.ShortestEdge(m.Pos(c.V[0]), m.Pos(c.V[1]), m.Pos(c.V[2]), m.Pos(c.V[3]))
}
