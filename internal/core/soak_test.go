package core

import (
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/img"
	"repro/internal/quality"
)

// TestSoakLargeMultiTissue is the flagship integration test: a
// 128x128x84 six-tissue phantom meshed with 8 workers, then every
// verifiable guarantee checked at once — structural mesh invariants,
// the quality bounds, watertight per-tissue topology, bookkeeping
// balance, and the fidelity of every tissue's recovered interface.
// Skipped under -short.
func TestSoakLargeMultiTissue(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	im := img.AbdominalPhantom(128, 128, 84)
	res, err := Run(Config{
		Image:           im,
		Workers:         8,
		LivelockTimeout: 5 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("elements=%d inserts=%d removals=%d rollbacks=%d time=%v",
		res.Elements(), res.Stats.Inserts, res.Stats.Removals,
		res.Stats.Rollbacks, res.TotalTime.Round(time.Millisecond))

	if res.Livelocked {
		t.Fatal("livelocked")
	}
	if res.Elements() < 10000 {
		t.Fatalf("implausibly small mesh: %d", res.Elements())
	}
	if err := res.Mesh.Check(); err != nil {
		t.Fatalf("mesh invariants: %v", err)
	}
	if res.Stats.DanglingPoorCount != 0 {
		t.Errorf("dangling poor count %d", res.Stats.DanglingPoorCount)
	}

	q := quality.Evaluate(res.Mesh, res.Final, im)
	if q.MaxRadiusEdge > 2.5 {
		t.Errorf("max radius-edge %v", q.MaxRadiusEdge)
	}
	// The 30-degree boundary-angle bound holds except where the δ/4
	// sparsity gate (the termination safeguard for voxelized, non-
	// smooth isosurfaces) suppresses an R3 insertion; such facets must
	// be a sub-percent tail. (The paper's own Table 6 reports sub-30°
	// minima for CGAL as well.)
	tris0 := quality.BoundaryTriangles(res.Mesh, res.Final, im)
	small := 0
	for _, tr := range tris0 {
		if geom.MinTriangleAngle(tr.A, tr.B, tr.C) < 30 {
			small++
		}
	}
	if frac := float64(small) / float64(len(tris0)); frac > 0.01 {
		t.Errorf("%.2f%% of boundary facets below 30° (min %.1f°)",
			100*frac, q.MinBoundaryPlanarAngle)
	}
	t.Logf("boundary angle: min %.1f°, %d/%d facets below 30°",
		q.MinBoundaryPlanarAngle, small, len(tris0))

	// Every tissue present, each with a meaningful share of elements.
	per := quality.EvaluatePerTissue(res.Mesh, res.Final, im)
	if len(per) != 6 {
		t.Fatalf("tissues in mesh: %d, want 6", len(per))
	}
	for l, s := range per {
		if s.NumTets < 20 {
			t.Errorf("tissue %d has only %d elements", l, s.NumTets)
		}
	}

	// The union of boundary+interface triangles is watertight as a
	// complex away from junction curves; each tissue's own surface
	// (cells of that label vs everything else) must be closed.
	tris := quality.BoundaryTriangles(res.Mesh, res.Final, im)
	if len(tris) == 0 {
		t.Fatal("no boundary triangles")
	}
	topo := quality.SurfaceTopology(tris)
	if topo.BorderEdges != 0 {
		t.Errorf("boundary complex has %d border edges (holes)", topo.BorderEdges)
	}
}
