package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/img"
	"repro/internal/quality"
)

// TestSoakLargeMultiTissue is the flagship integration test: a
// 128x128x84 six-tissue phantom meshed with 8 workers, then every
// verifiable guarantee checked at once — structural mesh invariants,
// the quality bounds, watertight per-tissue topology, bookkeeping
// balance, and the fidelity of every tissue's recovered interface.
// Skipped under -short.
func TestSoakLargeMultiTissue(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	im := img.AbdominalPhantom(128, 128, 84)
	res, err := Run(Config{
		Image:           im,
		Workers:         8,
		LivelockTimeout: 5 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("elements=%d inserts=%d removals=%d rollbacks=%d time=%v",
		res.Elements(), res.Stats.Inserts, res.Stats.Removals,
		res.Stats.Rollbacks, res.TotalTime.Round(time.Millisecond))

	if res.Livelocked {
		t.Fatal("livelocked")
	}
	if res.Elements() < 10000 {
		t.Fatalf("implausibly small mesh: %d", res.Elements())
	}
	if err := res.Mesh.Check(); err != nil {
		t.Fatalf("mesh invariants: %v", err)
	}
	if res.Stats.DanglingPoorCount != 0 {
		t.Errorf("dangling poor count %d", res.Stats.DanglingPoorCount)
	}

	q := quality.Evaluate(res.Mesh, res.Final, im)
	if q.MaxRadiusEdge > 2.5 {
		t.Errorf("max radius-edge %v", q.MaxRadiusEdge)
	}
	// The 30-degree boundary-angle bound holds except where the δ/4
	// sparsity gate (the termination safeguard for voxelized, non-
	// smooth isosurfaces) suppresses an R3 insertion; such facets must
	// be a sub-percent tail. (The paper's own Table 6 reports sub-30°
	// minima for CGAL as well.)
	tris0 := quality.BoundaryTriangles(res.Mesh, res.Final, im)
	small := 0
	for _, tr := range tris0 {
		if geom.MinTriangleAngle(tr.A, tr.B, tr.C) < 30 {
			small++
		}
	}
	if frac := float64(small) / float64(len(tris0)); frac > 0.01 {
		t.Errorf("%.2f%% of boundary facets below 30° (min %.1f°)",
			100*frac, q.MinBoundaryPlanarAngle)
	}
	t.Logf("boundary angle: min %.1f°, %d/%d facets below 30°",
		q.MinBoundaryPlanarAngle, small, len(tris0))

	// Every tissue present, each with a meaningful share of elements.
	per := quality.EvaluatePerTissue(res.Mesh, res.Final, im)
	if len(per) != 6 {
		t.Fatalf("tissues in mesh: %d, want 6", len(per))
	}
	for l, s := range per {
		if s.NumTets < 20 {
			t.Errorf("tissue %d has only %d elements", l, s.NumTets)
		}
	}

	// The union of boundary+interface triangles is watertight as a
	// complex away from junction curves; each tissue's own surface
	// (cells of that label vs everything else) must be closed.
	tris := quality.BoundaryTriangles(res.Mesh, res.Final, im)
	if len(tris) == 0 {
		t.Fatal("no boundary triangles")
	}
	topo := quality.SurfaceTopology(tris)
	if topo.BorderEdges != 0 {
		t.Errorf("boundary complex has %d border edges (holes)", topo.BorderEdges)
	}
}

// hasTransition reports whether the result recorded a transition with
// the given event.
func hasTransition(res *Result, event string) bool {
	for _, tr := range res.Transitions {
		if tr.Event == event {
			return true
		}
	}
	return false
}

// checkMeshIntegrity asserts the invariants that must survive any
// fault: structural mesh validity, balanced poor-element bookkeeping,
// and a watertight boundary complex of whatever was extracted.
func checkMeshIntegrity(t *testing.T, res *Result, im *img.Image) {
	t.Helper()
	if err := res.Mesh.Check(); err != nil {
		t.Fatalf("mesh invariants: %v", err)
	}
	if res.Stats.DanglingPoorCount != 0 {
		t.Errorf("dangling poor count %d", res.Stats.DanglingPoorCount)
	}
	if res.Elements() == 0 {
		t.Fatal("empty final mesh")
	}
	tris := quality.BoundaryTriangles(res.Mesh, res.Final, im)
	if len(tris) == 0 {
		t.Fatal("no boundary triangles")
	}
	if topo := quality.SurfaceTopology(tris); topo.BorderEdges != 0 {
		t.Errorf("boundary complex has %d border edges (holes)", topo.BorderEdges)
	}
}

// TestSoakFaultStorm drives a full refinement through a combined fault
// storm — random CAS-lock denials, worker panics at the pre-commit
// point, dropped work-steals, and delayed commits — and requires the
// run to finish with a valid watertight mesh, every panic recovered,
// and the bookkeeping balanced.
func TestSoakFaultStorm(t *testing.T) {
	inj := faultinject.New(faultinject.Config{
		Seed: 42,
		Rates: map[faultinject.Point]float64{
			faultinject.LockDeny:    0.02,
			faultinject.WorkerPanic: 0.05,
			faultinject.DropSteal:   0.25,
			faultinject.CommitDelay: 0.002,
		},
		MaxFires: map[faultinject.Point]int64{faultinject.WorkerPanic: 10},
		// Clear the bootstrap: the virtual-box corners insert through the
		// same kernel, and a denied corner is a (correctly reported)
		// construction error, not the refinement storm under test.
		After: map[faultinject.Point]int64{
			faultinject.WorkerPanic: 20,
			faultinject.LockDeny:    500,
		},
		Delay: 200 * time.Microsecond,
	})
	defer faultinject.Enable(inj)()

	im := img.SpherePhantom(32)
	res, err := Run(Config{
		Image:           im,
		Workers:         4,
		PanicBudget:     -1, // the storm may concentrate on one thread
		LivelockTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("status=%v panics=%d dropped=%d denials=%d elements=%d",
		res.Status, res.Stats.RecoveredPanics, res.Stats.DroppedItems,
		inj.Fired(faultinject.LockDeny), res.Elements())

	if fired := inj.Fired(faultinject.WorkerPanic); fired == 0 {
		t.Fatal("storm injected no panics; the test exercised nothing")
	} else if res.Stats.RecoveredPanics != fired {
		t.Errorf("recovered %d panics, injected %d", res.Stats.RecoveredPanics, fired)
	}
	if res.Status != StatusDegraded {
		t.Errorf("status %v, want degraded", res.Status)
	}
	if res.Err() != nil {
		t.Errorf("Err() = %v for a non-aborted run", res.Err())
	}
	checkMeshIntegrity(t, res, im)
}

// TestLivelockRecoveredByCMSwap is the acceptance test for rung 1 of
// the degradation ladder: a total lock-denial storm under Aggressive-CM
// (which cannot resolve livelocks) stalls the run; the watchdog must
// hot-swap to Local-CM and record the transition. The storm is disarmed
// at the swap — the observable under test is the recorded escalation,
// not the storm itself — after which the run must complete.
func TestLivelockRecoveredByCMSwap(t *testing.T) {
	inj := faultinject.New(faultinject.Config{
		Seed:  7,
		Rates: map[faultinject.Point]float64{faultinject.LockDeny: 1},
		After: map[faultinject.Point]int64{faultinject.LockDeny: 4000},
	})
	defer faultinject.Enable(inj)()

	im := img.SpherePhantom(32)
	res, err := Run(Config{
		Image:             im,
		Workers:           4,
		ContentionManager: "aggressive",
		LivelockTimeout:   200 * time.Millisecond,
		OnTransition: func(tr Transition) {
			if tr.Event == "cm-swap" {
				inj.Disarm(faultinject.LockDeny)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("status=%v transitions=%+v denials=%d", res.Status, res.Transitions, inj.Fired(faultinject.LockDeny))

	if inj.Fired(faultinject.LockDeny) == 0 {
		t.Fatal("the storm never started; nothing was tested")
	}
	if !hasTransition(res, "cm-swap") {
		t.Fatalf("no cm-swap transition recorded: %+v", res.Transitions)
	}
	if res.Livelocked {
		t.Fatal("run reported livelock although the CM swap recovered it")
	}
	if res.Status != StatusDegraded {
		t.Errorf("status %v, want degraded", res.Status)
	}
	checkMeshIntegrity(t, res, im)
}

// TestLivelockRecoveredBySequentialDrain exercises rung 2: the run
// already uses Local-CM, so the watchdog's only remaining move short of
// aborting is the single-threaded sequential drain. The storm ends at
// that transition and the drain must then finish the mesh.
func TestLivelockRecoveredBySequentialDrain(t *testing.T) {
	inj := faultinject.New(faultinject.Config{
		Seed:  11,
		Rates: map[faultinject.Point]float64{faultinject.LockDeny: 1},
		After: map[faultinject.Point]int64{faultinject.LockDeny: 4000},
	})
	defer faultinject.Enable(inj)()

	im := img.SpherePhantom(32)
	res, err := Run(Config{
		Image:             im,
		Workers:           4,
		ContentionManager: "local",
		LivelockTimeout:   200 * time.Millisecond,
		OnTransition: func(tr Transition) {
			if tr.Event == "sequential-drain" {
				inj.Disarm(faultinject.LockDeny)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("status=%v transitions=%+v", res.Status, res.Transitions)

	if inj.Fired(faultinject.LockDeny) == 0 {
		t.Fatal("the storm never started; nothing was tested")
	}
	if !hasTransition(res, "sequential-drain") {
		t.Fatalf("no sequential-drain transition recorded: %+v", res.Transitions)
	}
	if res.Livelocked || res.Status != StatusDegraded {
		t.Errorf("status %v livelocked=%v, want degraded/false", res.Status, res.Livelocked)
	}
	checkMeshIntegrity(t, res, im)
}

// TestLadderExhaustionAborts leaves a total denial storm armed through
// every rung: CM swap and sequential drain both stall, and the run must
// end with a structured abort — partial but valid — rather than a hang
// or a crash.
func TestLadderExhaustionAborts(t *testing.T) {
	inj := faultinject.New(faultinject.Config{
		Seed:  3,
		Rates: map[faultinject.Point]float64{faultinject.LockDeny: 1},
		After: map[faultinject.Point]int64{faultinject.LockDeny: 1000},
	})
	defer faultinject.Enable(inj)()

	im := img.SpherePhantom(16)
	res, err := Run(Config{
		Image:             im,
		Workers:           4,
		ContentionManager: "aggressive",
		LivelockTimeout:   150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("status=%v reason=%q transitions=%+v", res.Status, res.Reason, res.Transitions)

	if res.Status != StatusAborted {
		t.Fatalf("status %v, want aborted", res.Status)
	}
	if !res.Livelocked {
		t.Error("Livelocked not set after ladder exhaustion")
	}
	if res.Err() == nil || !strings.Contains(res.Err().Error(), "livelock") {
		t.Errorf("Err() = %v, want a livelock reason", res.Err())
	}
	for _, ev := range []string{"cm-swap", "sequential-drain", "abort"} {
		if !hasTransition(res, ev) {
			t.Errorf("missing %q transition: %+v", ev, res.Transitions)
		}
	}
	if err := res.Mesh.Check(); err != nil {
		t.Fatalf("partial mesh invariants: %v", err)
	}
}

// TestPanicBudgetAborts arms an unbounded panic storm against the
// default per-thread budget: the run must stop with a structured abort
// naming the exhausted budget, not crash.
func TestPanicBudgetAborts(t *testing.T) {
	inj := faultinject.New(faultinject.Config{
		Seed:  5,
		Rates: map[faultinject.Point]float64{faultinject.WorkerPanic: 1},
		After: map[faultinject.Point]int64{faultinject.WorkerPanic: 20}, // clear the bootstrap
	})
	defer faultinject.Enable(inj)()

	res, err := Run(Config{
		Image:       img.SpherePhantom(24),
		Workers:     2,
		PanicBudget: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusAborted {
		t.Fatalf("status %v, want aborted", res.Status)
	}
	if !strings.Contains(res.Reason, "panic budget") {
		t.Errorf("reason %q does not name the panic budget", res.Reason)
	}
	if res.Stats.RecoveredPanics == 0 {
		t.Error("no recovered panics counted")
	}
	if err := res.Mesh.Check(); err != nil {
		t.Fatalf("partial mesh invariants: %v", err)
	}
}

// TestContextCancellation cancels a sizable run from its first progress
// sample and requires a clean partial result: aborted status, the
// cancellation transition and reason, and a structurally valid mesh of
// whatever committed before the cut.
func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := Run(Config{
		Image:          img.AbdominalPhantom(64, 64, 42),
		Workers:        2,
		Context:        ctx,
		ProgressSample: 2 * time.Millisecond,
		Progress:       func(Progress) { cancel() },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("status=%v reason=%q elements=%d", res.Status, res.Reason, res.Elements())

	if res.Status != StatusAborted {
		t.Fatalf("status %v, want aborted", res.Status)
	}
	if !hasTransition(res, "cancel") {
		t.Fatalf("no cancel transition: %+v", res.Transitions)
	}
	if res.Err() == nil || !strings.Contains(res.Err().Error(), "canceled") {
		t.Errorf("Err() = %v, want a cancellation reason", res.Err())
	}
	if err := res.Mesh.Check(); err != nil {
		t.Fatalf("partial mesh invariants: %v", err)
	}
}

// TestContextPreCanceled starts the run with an already-canceled
// context: it must return promptly with an aborted partial result.
func TestContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(Config{
		Image:   img.SpherePhantom(32),
		Workers: 2,
		Context: ctx,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusAborted {
		t.Fatalf("status %v, want aborted", res.Status)
	}
	if err := res.Mesh.Check(); err != nil {
		t.Fatalf("partial mesh invariants: %v", err)
	}
}

// TestCallbackPanicsRecovered supplies user callbacks that panic on
// every call; the run must degrade — infinite size bound, progress
// reporting disabled — and still produce a complete valid mesh.
func TestCallbackPanicsRecovered(t *testing.T) {
	im := img.SpherePhantom(32)
	res, err := Run(Config{
		Image:          im,
		Workers:        2,
		SizeFunc:       func(geom.Vec3) float64 { panic("user size function bug") },
		ProgressSample: 2 * time.Millisecond,
		Progress:       func(Progress) { panic("user progress bug") },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("status=%v callbackPanics=%d", res.Status, res.Stats.CallbackPanics)

	if res.Stats.CallbackPanics == 0 {
		t.Fatal("no callback panics recorded")
	}
	if res.Status != StatusDegraded {
		t.Errorf("status %v, want degraded", res.Status)
	}
	if !hasTransition(res, "callback-panic") {
		t.Errorf("no callback-panic transition: %+v", res.Transitions)
	}
	checkMeshIntegrity(t, res, im)
}
