package core_test

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/img"
)

// ExampleRun meshes a small synthetic sphere with defaults.
func ExampleRun() {
	image := img.SpherePhantom(24)
	result, err := core.Run(core.Config{
		Image:           image,
		Workers:         1,
		LivelockTimeout: time.Minute,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("non-empty mesh:", result.Elements() > 0)
	fmt.Println("all rules accounted:", result.Stats.Inserts+result.Stats.Removals > 0)
	// Output:
	// non-empty mesh: true
	// all rules accounted: true
}

// ExampleConfig_sizeFunction shows rule R5 driven by a custom size
// function: a focus ball meshed finer than the rest.
func ExampleConfig_sizeFunction() {
	image := img.SpherePhantom(32)
	center := geom.Vec3{X: 16, Y: 16, Z: 16}
	coarse, _ := core.Run(core.Config{Image: image, Workers: 1, LivelockTimeout: time.Minute})
	fine, _ := core.Run(core.Config{
		Image:   image,
		Workers: 1,
		SizeFunc: func(p geom.Vec3) float64 {
			if p.Dist(center) < 6 {
				return 2
			}
			return 1e18
		},
		LivelockTimeout: time.Minute,
	})
	fmt.Println("size function densifies:", fine.Elements() > coarse.Elements())
	// Output:
	// size function densifies: true
}

// ExampleResult_Energy applies the Section 8 energy model to a run.
func ExampleResult_Energy() {
	image := img.SpherePhantom(24)
	result, _ := core.Run(core.Config{Image: image, Workers: 2, LivelockTimeout: time.Minute})
	report := result.Energy(core.DefaultEnergyModel())
	fmt.Println("DVFS never costs more:", report.DVFSJoules <= report.BusyWaitJoules)
	// Output:
	// DVFS never costs more: true
}
