package core

import (
	"testing"
	"time"

	"repro/internal/img"
)

func TestEnergyModelArithmetic(t *testing.T) {
	// Synthetic result: 4 threads, 10 s wall, 8 thread-seconds of
	// overhead. Busy-wait bills 40 thread-seconds at 15 W = 600 J;
	// DVFS bills 32 s at 15 W + 8 s at 3 W = 504 J.
	r := &Result{RefineTime: 10 * time.Second}
	r.Stats.Threads = 4
	r.Stats.LoadBalanceNs = 8e9
	rep := r.Energy(DefaultEnergyModel())
	if rep.BusyWaitJoules != 600 {
		t.Errorf("busy-wait joules = %v, want 600", rep.BusyWaitJoules)
	}
	if rep.DVFSJoules != 504 {
		t.Errorf("DVFS joules = %v, want 504", rep.DVFSJoules)
	}
}

func TestEnergyReport(t *testing.T) {
	im := img.SpherePhantom(32)
	res, err := Run(Config{Image: im, Workers: 4, LivelockTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Energy(DefaultEnergyModel())
	if rep.BusyWaitJoules <= 0 || rep.DVFSJoules <= 0 {
		t.Fatalf("non-positive energy: %+v", rep)
	}
	if rep.DVFSJoules > rep.BusyWaitJoules {
		t.Error("DVFS policy costs more than busy-wait")
	}
	if rep.SavingsFraction < 0 || rep.SavingsFraction >= 1 {
		t.Errorf("savings fraction %v", rep.SavingsFraction)
	}
	if rep.ElementsPerJouleDVFS < rep.ElementsPerJouleBusy {
		t.Error("DVFS worsened Elements/Joule")
	}
	if rep.UsefulSeconds < 0 || rep.OverheadSeconds < 0 {
		t.Errorf("negative time split: %+v", rep)
	}
	total := float64(res.Stats.Threads) * res.RefineTime.Seconds()
	if got := rep.UsefulSeconds + rep.OverheadSeconds; got > total*1.001 {
		t.Errorf("time split %v exceeds total %v", got, total)
	}
}

func TestEnergyOverheadClamped(t *testing.T) {
	// If accounting noise makes overhead exceed wall*threads, the model
	// must clamp rather than go negative.
	r := &Result{RefineTime: time.Millisecond}
	r.Stats.Threads = 1
	r.Stats.ContentionNs = int64(10 * time.Second)
	rep := r.Energy(DefaultEnergyModel())
	if rep.UsefulSeconds < 0 {
		t.Errorf("negative useful time: %+v", rep)
	}
}
