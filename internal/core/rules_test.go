package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/img"
)

// TestR4Fires drives the interior quality rule. R4 is mostly subsumed
// by R2 (an interior tetrahedron with a bad radius-edge ratio usually
// has a circumball large enough to reach the surface) and by R5; it
// only fires deep inside a large object with a dense size function,
// where quality cascades happen far from ∂O.
func TestR4Fires(t *testing.T) {
	im := img.SpherePhantom(96)
	res, err := Run(Config{
		Image:           im,
		Workers:         1,
		SizeFunc:        func(geom.Vec3) float64 { return 3 },
		LivelockTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RuleCounts[R4] == 0 {
		t.Errorf("R4 never fired at coarse delta (rules: %v)", res.Stats.RuleCounts)
	}
	// The bound must still hold.
	worst := 0.0
	for _, h := range res.Final {
		c := res.Mesh.Cells.At(h)
		if r := geom.RadiusEdgeRatio(res.Mesh.Pos(c.V[0]), res.Mesh.Pos(c.V[1]),
			res.Mesh.Pos(c.V[2]), res.Mesh.Pos(c.V[3])); r > worst {
			worst = r
		}
	}
	if worst > 2.5 {
		t.Errorf("worst ratio %.3f with coarse delta", worst)
	}
}

func TestRuleStrings(t *testing.T) {
	want := map[Rule]string{
		RuleNone: "none", R1: "R1", R2: "R2", R3: "R3", R4: "R4", R5: "R5", R6: "R6",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("Rule(%d).String() = %q", r, r.String())
		}
	}
}

// TestOversubscription runs with more workers than GOMAXPROCS (the
// Table 5 configuration) and checks nothing deadlocks or degrades into
// livelock.
func TestOversubscription(t *testing.T) {
	im := img.SpherePhantom(24)
	res, err := Run(Config{
		Image:           im,
		Workers:         16,
		LivelockTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Livelocked {
		t.Fatal("livelocked under oversubscription")
	}
	if res.Elements() == 0 {
		t.Fatal("empty mesh")
	}
	if err := res.Mesh.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestTimelineRecorded(t *testing.T) {
	im := img.SpherePhantom(40)
	res, err := Run(Config{
		Image:           im,
		Workers:         4,
		TimelineSample:  2 * time.Millisecond,
		LivelockTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) == 0 {
		t.Skip("run finished before the first sample (very fast host)")
	}
	for i := 1; i < len(res.Timeline); i++ {
		if res.Timeline[i].OverheadNs < res.Timeline[i-1].OverheadNs {
			t.Fatal("overhead timeline not monotone")
		}
	}
}

// TestKneeAndHeadNeckPhantoms exercises the remaining Table 3 inputs
// end to end.
func TestKneeAndHeadNeckPhantoms(t *testing.T) {
	for name, im := range map[string]*img.Image{
		"knee":     img.KneePhantom(40, 40, 40),
		"headneck": img.HeadNeckPhantom(40, 40, 40),
	} {
		res, err := Run(Config{Image: im, Workers: 2, LivelockTimeout: time.Minute})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Elements() == 0 {
			t.Fatalf("%s: empty mesh", name)
		}
		if err := res.Mesh.Check(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestEDTTimeReported checks the pre-processing accounting the paper
// includes in its timings ("the execution time reported for PI2M
// incorporates the ... Euclidean distance transform").
func TestEDTTimeReported(t *testing.T) {
	im := img.SpherePhantom(32)
	res, err := Run(Config{Image: im, Workers: 1, LivelockTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if res.EDTTime <= 0 {
		t.Error("EDT time not recorded")
	}
	if res.TotalTime < res.EDTTime {
		t.Error("total time excludes the EDT")
	}
	if res.RefineTime <= 0 || res.TotalTime < res.RefineTime {
		t.Error("refine time inconsistent")
	}
}

// TestPoorCounterBalanced verifies the Section 4.4 counter protocol:
// every counted poor element is released exactly once (by its popper
// or its invalidator), so all counters drain to zero at termination.
func TestPoorCounterBalanced(t *testing.T) {
	for _, workers := range []int{1, 4} {
		res, err := Run(Config{
			Image:           img.AbdominalPhantom(40, 40, 28),
			Workers:         workers,
			LivelockTimeout: time.Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.DanglingPoorCount != 0 {
			t.Errorf("workers=%d: dangling poor count %d", workers, res.Stats.DanglingPoorCount)
		}
	}
}

func TestElementsPerSecond(t *testing.T) {
	r := &Result{}
	if r.ElementsPerSecond() != 0 {
		t.Error("zero-time rate should be 0")
	}
}

// TestDeltaFuncDensifiesSurface checks the variable surface density
// (Section 2's curvature-adaptive sampling): a δ function that
// sharpens near one hemisphere must put more isosurface samples there.
func TestDeltaFuncDensifiesSurface(t *testing.T) {
	im := img.SpherePhantom(48)
	focus := geom.Vec3{X: 24, Y: 24, Z: 40} // top of the sphere
	res, err := Run(Config{
		Image:   im,
		Workers: 2,
		Delta:   4,
		DeltaFunc: func(p geom.Vec3) float64 {
			if p.Dist(focus) < 12 {
				return 1 // clamped to Delta/4
			}
			return 4
		},
		LivelockTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := Run(Config{Image: im, Workers: 2, Delta: 4, LivelockTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elements() <= uniform.Elements() {
		t.Errorf("focused delta did not densify: %d vs %d", res.Elements(), uniform.Elements())
	}
	if err := res.Mesh.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestMaxElementsStopsEarly checks the element budget: the run ends
// once the cap is reached, with a valid (if unfinished) mesh.
func TestMaxElementsStopsEarly(t *testing.T) {
	im := img.SpherePhantom(64)
	full, err := Run(Config{Image: im, Workers: 2, LivelockTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	cap := full.Elements() / 4
	capped, err := Run(Config{
		Image:           im,
		Workers:         2,
		MaxElements:     cap,
		LivelockTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The cap is checked after each commit, so slight overshoot by the
	// last concurrent operations is expected — but not runaway.
	if capped.Elements() < cap/2 || capped.Elements() > full.Elements()/2 {
		t.Errorf("capped run produced %d elements (cap %d, full %d)",
			capped.Elements(), cap, full.Elements())
	}
	if err := capped.Mesh.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestSingleWorkerDeterminism: with one worker the pipeline is fully
// deterministic (seeded walk randomness, sequential commits), so two
// identical runs must produce identical meshes — a regression canary
// for accidental nondeterminism.
func TestSingleWorkerDeterminism(t *testing.T) {
	im := img.KneePhantom(40, 40, 40)
	run := func() (int, int, int64) {
		res, err := Run(Config{Image: im, Workers: 1, LivelockTimeout: time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elements(), res.Mesh.NumVerts(), res.Stats.Inserts
	}
	e1, v1, i1 := run()
	e2, v2, i2 := run()
	if e1 != e2 || v1 != v2 || i1 != i2 {
		t.Errorf("nondeterministic single-worker run: (%d,%d,%d) vs (%d,%d,%d)",
			e1, v1, i1, e2, v2, i2)
	}
}

// TestVesselPhantomThinStructures meshes the branching vessel tree:
// the thin tubes must survive into the final mesh as a connected,
// watertight tissue (fidelity on the anatomy the paper's intro
// motivates: blood-flow simulation).
func TestVesselPhantomThinStructures(t *testing.T) {
	im := img.VesselPhantom(64)
	res, err := Run(Config{Image: im, Workers: 2, LivelockTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Mesh.Check(); err != nil {
		t.Fatal(err)
	}
	vessel := 0
	for _, h := range res.Final {
		if im.LabelAt(res.Mesh.Cells.At(h).CC) == 2 {
			vessel++
		}
	}
	if vessel < 50 {
		t.Fatalf("vessel tree nearly lost: %d cells", vessel)
	}
	t.Logf("vessel cells: %d of %d", vessel, res.Elements())
}

// TestProgressCallback checks the sampler delivers monotone snapshots.
func TestProgressCallback(t *testing.T) {
	var mu sync.Mutex
	var snaps []Progress
	_, err := Run(Config{
		Image:          img.AbdominalPhantom(72, 72, 48),
		Workers:        2,
		ProgressSample: time.Millisecond,
		Progress: func(p Progress) {
			mu.Lock()
			snaps = append(snaps, p)
			mu.Unlock()
		},
		LivelockTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(snaps) == 0 {
		t.Skip("run finished before the first sample")
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Operations < snaps[i-1].Operations {
			t.Fatal("operations went backward")
		}
		if snaps[i].Wall < snaps[i-1].Wall {
			t.Fatal("wall time went backward")
		}
	}
	if last := snaps[len(snaps)-1]; last.Elements <= 0 || last.Operations <= 0 {
		t.Errorf("empty final snapshot: %+v", last)
	}
}
