package core

import "time"

// EnergyModel estimates the energy cost of a run under a two-state
// per-core power model, the trade-off the paper's Section 8 puts
// forward as future work: "threads spend time idling on the contention
// and load balancing lists... the CPU frequency could be decreased
// during such an idling", maximizing Elements/(second·Watt).
//
// Each worker's wall time splits into useful work (billed at
// ActiveWatts) and overhead time spent parked on contention or begging
// lists or discarded by rollbacks. A conventional runtime burns
// ActiveWatts throughout (busy-waiting); a DVFS-aware runtime drops
// parked cores to IdleWatts. Both are reported so the paper's
// opportunity — the gap between them — can be quantified per run.
type EnergyModel struct {
	ActiveWatts float64 // per-core power while doing useful work
	IdleWatts   float64 // per-core power while parked, after DVFS
}

// DefaultEnergyModel uses 15 W active / 3 W idle per core, the rough
// proportions of the paper-era Xeon X7560 (130 W TDP / 8 cores, deep
// C-states at ~20%).
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{ActiveWatts: 15, IdleWatts: 3}
}

// EnergyReport is the outcome of applying an EnergyModel to a run.
type EnergyReport struct {
	// BusyWaitJoules bills every thread at active power for the whole
	// run (the measured implementation's busy-wait behavior).
	BusyWaitJoules float64
	// DVFSJoules bills overhead time at idle power instead.
	DVFSJoules float64
	// SavingsFraction is 1 - DVFS/BusyWait.
	SavingsFraction float64

	// ElementsPerJoule under each policy — the paper's
	// Elements/(second*Watt) merit figure, integrated over the run.
	ElementsPerJouleBusy float64
	ElementsPerJouleDVFS float64

	UsefulSeconds   float64 // across threads
	OverheadSeconds float64 // across threads
}

// Energy applies the model to this result.
func (r *Result) Energy(m EnergyModel) EnergyReport {
	threads := float64(r.Stats.Threads)
	wall := r.RefineTime.Seconds()
	total := threads * wall
	overhead := float64(r.Stats.TotalOverheadNs()) / float64(time.Second)
	if overhead > total {
		overhead = total
	}
	useful := total - overhead

	rep := EnergyReport{
		UsefulSeconds:   useful,
		OverheadSeconds: overhead,
	}
	rep.BusyWaitJoules = m.ActiveWatts * total
	rep.DVFSJoules = m.ActiveWatts*useful + m.IdleWatts*overhead
	if rep.BusyWaitJoules > 0 {
		rep.SavingsFraction = 1 - rep.DVFSJoules/rep.BusyWaitJoules
		rep.ElementsPerJouleBusy = float64(r.Elements()) / rep.BusyWaitJoules
	}
	if rep.DVFSJoules > 0 {
		rep.ElementsPerJouleDVFS = float64(r.Elements()) / rep.DVFSJoules
	}
	return rep
}
