package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/img"
)

// TestSessionConcurrentRunBusy is the contract the serve pool relies
// on: concurrent Run calls on one Session never queue — exactly the
// overlapping ones fail fast with ErrSessionBusy, the session stays
// usable, and the rejections are counted. Run under -race in CI.
func TestSessionConcurrentRunBusy(t *testing.T) {
	im := img.SpherePhantom(16)
	s, err := NewSession(Config{Workers: 2, LivelockTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const callers = 8
	var (
		wg        sync.WaitGroup
		completed atomic.Int64
		busy      atomic.Int64
	)
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			res, err := s.Run(context.Background(), im)
			switch {
			case errors.Is(err, ErrSessionBusy):
				if res != nil {
					t.Error("ErrSessionBusy came with a non-nil Result")
				}
				busy.Add(1)
			case err != nil:
				t.Errorf("Run: %v", err)
			default:
				if res.Elements() == 0 {
					t.Error("successful Run produced an empty mesh")
				}
				completed.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()

	if completed.Load() == 0 {
		t.Fatal("no Run completed")
	}
	if completed.Load()+busy.Load() != callers {
		t.Fatalf("runs %d + busy %d != callers %d", completed.Load(), busy.Load(), callers)
	}
	st := s.Stats()
	if st.BusyRejects != busy.Load() {
		t.Errorf("Stats().BusyRejects = %d, observed %d rejections", st.BusyRejects, busy.Load())
	}
	if int64(st.Runs) != completed.Load() {
		t.Errorf("Stats().Runs = %d, observed %d completions", st.Runs, completed.Load())
	}

	// The session must still be fully usable after rejections.
	res, err := s.Run(context.Background(), im)
	if err != nil {
		t.Fatalf("Run after busy rejections: %v", err)
	}
	if res.Elements() == 0 {
		t.Fatal("post-rejection Run produced an empty mesh")
	}
}
