package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/img"
)

// TestSnapshotSurvivesNextRun pins the snapshot lifetime guarantee: a
// MeshSnapshot taken from one run stays bit-for-bit intact after the
// owning session's next Run recycles the mesh arenas underneath the
// original Result. This is the property the serving layer's off-lease
// encoding depends on.
func TestSnapshotSurvivesNextRun(t *testing.T) {
	s, err := NewSession(Config{Workers: 1, LivelockTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	res, err := s.Run(context.Background(), img.SpherePhantom(10))
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Snapshot()
	if snap.Elements() == 0 || snap.Elements() != len(res.Final) {
		t.Fatalf("snapshot has %d cells, run produced %d", snap.Elements(), len(res.Final))
	}
	if len(snap.Labels) != len(snap.Cells) {
		t.Fatalf("snapshot has %d labels for %d cells", len(snap.Labels), len(snap.Cells))
	}
	for _, c := range snap.Cells {
		for _, v := range c {
			if v < 0 || int(v) >= len(snap.Verts) {
				t.Fatalf("cell vertex index %d out of range [0,%d)", v, len(snap.Verts))
			}
		}
	}
	savedVerts := make([][3]float64, len(snap.Verts))
	for i, v := range snap.Verts {
		savedVerts[i] = [3]float64{v.X, v.Y, v.Z}
	}
	savedCells := append([][4]int32(nil), snap.Cells...)
	savedLabels := append([]img.Label(nil), snap.Labels...)

	// Recycle the session's arenas with a different image.
	if _, err := s.Run(context.Background(), img.TorusPhantom(12)); err != nil {
		t.Fatal(err)
	}

	for i, v := range snap.Verts {
		if savedVerts[i] != [3]float64{v.X, v.Y, v.Z} {
			t.Fatal("snapshot vertices mutated by the session's next run")
		}
	}
	for i, c := range snap.Cells {
		if savedCells[i] != c {
			t.Fatal("snapshot cells mutated by the session's next run")
		}
	}
	for i, l := range snap.Labels {
		if savedLabels[i] != l {
			t.Fatal("snapshot labels mutated by the session's next run")
		}
	}
}

// TestSnapshotSizeBytes sanity-checks the metric feed: the estimate
// must scale with the actual payload.
func TestSnapshotSizeBytes(t *testing.T) {
	res, err := Run(Config{Image: img.SpherePhantom(10), Workers: 1, LivelockTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Snapshot()
	want := 24*len(snap.Verts) + 16*len(snap.Cells) + len(snap.Labels)
	if got := snap.SizeBytes(); got != want || got <= 0 {
		t.Fatalf("SizeBytes = %d, want %d", got, want)
	}
}
