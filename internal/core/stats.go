package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/arena"
	"repro/internal/balance"
	"repro/internal/delaunay"
	"repro/internal/quality"
)

// TimelinePoint is one sample of the Figure 6 overhead curve: by wall
// time Wall, the threads had cumulatively wasted OverheadNs
// nanoseconds on contention, idling and rollbacks.
type TimelinePoint struct {
	Wall       time.Duration
	OverheadNs int64
}

// RunStats aggregates the per-thread counters of a run (the wasted-
// cycles breakdown of Section 5.5).
type RunStats struct {
	Threads int

	// Committed operations.
	Inserts  int64
	Removals int64

	// Outcomes of failed speculative attempts.
	Rollbacks int64
	StaleOps  int64
	FailedOps int64

	// RuleCounts[rule] counts committed operations per refinement rule.
	RuleCounts [7]int64

	// The three overhead components (totals across threads).
	ContentionNs  int64 // busy-waiting in / accessing the contention manager
	LoadBalanceNs int64 // idling on the begging list
	RollbackNs    int64 // partially-completed work discarded by rollbacks

	// PerThreadOverheadNs is the per-thread sum of all three.
	PerThreadOverheadNs []int64

	Transfers balance.TransferStats

	// Kernel-level counters.
	WalkSteps     int64
	LocksAcquired int64
	CavityCells   int64

	// DanglingPoorCount is the sum of the per-thread poor-element
	// counters at termination; the push/pop/invalidate protocol pairs
	// every increment with exactly one decrement, so it must be zero.
	DanglingPoorCount int64

	// Failure-model counters (see DESIGN.md "Failure model").
	RecoveredPanics int64 // worker panics recovered in place
	DroppedItems    int64 // elements/removals dropped after exhausting RetryBudget
	CallbackPanics  int64 // panics recovered inside user callbacks
}

// TotalOverheadNs is the sum of the three overhead components.
func (s *RunStats) TotalOverheadNs() int64 {
	return s.ContentionNs + s.LoadBalanceNs + s.RollbackNs
}

// Status classifies how a run ended.
type Status int

const (
	// StatusCompleted: the run terminated normally with all criteria
	// met and no failure handling engaged.
	StatusCompleted Status = iota
	// StatusDegraded: the run produced a complete, valid mesh, but the
	// failure machinery engaged along the way (recovered panics, a
	// contention-manager hot-swap, a sequential drain, or a callback
	// panic). Transitions and the stats say what happened.
	StatusDegraded
	// StatusAborted: the run stopped early (cancellation, panic budget,
	// or an exhausted degradation ladder). The Result is partial: the
	// mesh is structurally valid but quality/fidelity criteria may be
	// unmet; Reason carries the structured cause.
	StatusAborted
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case StatusCompleted:
		return "completed"
	case StatusDegraded:
		return "degraded"
	case StatusAborted:
		return "aborted"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Transition is one recorded action of the failure-handling machinery:
// a contention-manager hot-swap, the switch to sequential drain, a
// cancellation, a callback panic, or an abort.
type Transition struct {
	// Wall is the refinement wall-clock time of the transition.
	Wall time.Duration
	// Event is the machine-readable kind: "cm-swap",
	// "sequential-drain", "cancel", "callback-panic", "abort".
	Event string
	// Detail is the human-readable explanation.
	Detail string
}

// Result is the outcome of a PI2M run.
type Result struct {
	Config Config

	// Mesh is the full triangulation; Final lists the cells whose
	// circumcenter lies inside the object O — the output mesh M of
	// Figure 1c.
	Mesh  *delaunay.Mesh
	Final []arena.Handle

	EDTTime    time.Duration
	RefineTime time.Duration
	TotalTime  time.Duration

	// Status classifies the outcome; Reason is the structured cause
	// when the run aborted (empty otherwise).
	Status Status
	Reason string

	// Transitions logs every failure-handling action in order.
	Transitions []Transition

	// Livelocked reports that the stall watchdog exhausted the whole
	// degradation ladder (CM hot-swap, then sequential drain) without
	// recovering progress and aborted the run. Kept for backward
	// compatibility; new code should inspect Status/Transitions.
	Livelocked bool

	Stats    RunStats
	Timeline []TimelinePoint
}

// Err returns a non-nil error when the run aborted, carrying the
// structured reason; nil for completed and degraded runs.
func (r *Result) Err() error {
	if r.Status != StatusAborted {
		return nil
	}
	if r.Reason != "" {
		return fmt.Errorf("core: run aborted: %s", r.Reason)
	}
	return fmt.Errorf("core: run aborted")
}

// Elements returns the number of tetrahedra in the final mesh.
func (r *Result) Elements() int { return len(r.Final) }

// Quality evaluates the paper's quality metrics (dihedral angles,
// radius-edge ratios, boundary planar angles) over the final mesh —
// quality.Evaluate with the run's own mesh, cell list and image.
func (r *Result) Quality() quality.Stats {
	return quality.Evaluate(r.Mesh, r.Final, r.Config.Image)
}

// Boundary extracts the final mesh's boundary triangles (material
// interfaces included) — quality.BoundaryTriangles with the run's own
// mesh, cell list and image.
func (r *Result) Boundary() []quality.Triangle {
	return quality.BoundaryTriangles(r.Mesh, r.Final, r.Config.Image)
}

// Topology computes the surface topology (Euler characteristic,
// components, closedness) of the final mesh's boundary —
// quality.SurfaceTopology over Boundary().
func (r *Result) Topology() quality.Topology {
	return quality.SurfaceTopology(r.Boundary())
}

// RunSummary is a compact, serialization-friendly digest of a Result
// — what a serving layer logs, exposes over a stats endpoint, or
// folds into metrics without holding the mesh alive.
type RunSummary struct {
	Status          string  `json:"status"`
	Reason          string  `json:"reason,omitempty"`
	Elements        int     `json:"elements"`
	CellsPerSec     float64 `json:"cells_per_sec"`
	EDTMillis       float64 `json:"edt_ms"`
	RefineMillis    float64 `json:"refine_ms"`
	TotalMillis     float64 `json:"total_ms"`
	Threads         int     `json:"threads"`
	Inserts         int64   `json:"inserts"`
	Removals        int64   `json:"removals"`
	Rollbacks       int64   `json:"rollbacks"`
	RecoveredPanics int64   `json:"recovered_panics,omitempty"`
	DroppedItems    int64   `json:"dropped_items,omitempty"`
	Transitions     int     `json:"transitions,omitempty"`
}

// Summary digests the run into a RunSummary.
func (r *Result) Summary() RunSummary {
	return RunSummary{
		Status:          r.Status.String(),
		Reason:          r.Reason,
		Elements:        r.Elements(),
		CellsPerSec:     r.ElementsPerSecond(),
		EDTMillis:       float64(r.EDTTime) / 1e6,
		RefineMillis:    float64(r.RefineTime) / 1e6,
		TotalMillis:     float64(r.TotalTime) / 1e6,
		Threads:         r.Stats.Threads,
		Inserts:         r.Stats.Inserts,
		Removals:        r.Stats.Removals,
		Rollbacks:       r.Stats.Rollbacks,
		RecoveredPanics: r.Stats.RecoveredPanics,
		DroppedItems:    r.Stats.DroppedItems,
		Transitions:     len(r.Transitions),
	}
}

// ElementsPerSecond is the generation rate the paper reports.
func (r *Result) ElementsPerSecond() float64 {
	if r.TotalTime <= 0 {
		return 0
	}
	return float64(r.Elements()) / r.TotalTime.Seconds()
}

// collect assembles the Result after the workers have quiesced.
func (r *Refiner) collect(res *Result) {
	// Panics recovered inside the removal scratch meshes' bootstraps
	// count as recovered worker panics (they fired on a worker's
	// operation path and were handled in place).
	for _, t := range r.threads {
		r.recoveredPanics.Add(t.w.ScratchPanicRecoveries())
	}
	res.Mesh = r.mesh
	res.Timeline = r.timeline
	res.Livelocked = r.livelocked.Load()
	res.Transitions = r.transitions
	res.Reason = r.reason
	switch {
	case r.failed.Load():
		res.Status = StatusAborted
	case len(r.transitions) > 0 || r.recoveredPanics.Load() > 0 || r.callbackPanics.Load() > 0:
		res.Status = StatusDegraded
	default:
		res.Status = StatusCompleted
	}

	s := &res.Stats
	s.Threads = r.cfg.Workers
	s.RecoveredPanics = r.recoveredPanics.Load()
	s.DroppedItems = r.droppedItems.Load()
	s.CallbackPanics = r.callbackPanics.Load()
	s.PerThreadOverheadNs = make([]int64, r.cfg.Workers)
	mgr := r.cm()
	for i, t := range r.threads {
		ws := t.w.Stats
		s.Inserts += ws.Inserts
		s.Removals += ws.Removals
		s.Rollbacks += ws.Rollbacks
		s.StaleOps += ws.StaleOps
		s.FailedOps += ws.FailedOps
		s.WalkSteps += ws.WalkSteps
		s.LocksAcquired += ws.LocksAcquired
		s.CavityCells += ws.CavityCells
		for rule, n := range t.ruleCount {
			s.RuleCounts[rule] += n
		}
		cn := r.cmBaseNs[i].Load() + mgr.ContentionNs(i)
		ln := r.bal.IdleNs(i)
		rn := atomic.LoadInt64(&t.rollbackNs)
		s.ContentionNs += cn
		s.LoadBalanceNs += ln
		s.RollbackNs += rn
		s.PerThreadOverheadNs[i] = cn + ln + rn
	}
	s.Transfers = r.bal.Transfers()
	for _, t := range r.threads {
		s.DanglingPoorCount += t.poorCount.Load()
	}

	// Final mesh: the per-thread inside lists, filtered for cells that
	// survived refinement (Section 4.3's on-the-fly bookkeeping).
	for _, t := range r.threads {
		for _, h := range t.inside {
			if !r.mesh.Cells.At(h).Dead() {
				res.Final = append(res.Final, h)
			}
		}
	}
}
